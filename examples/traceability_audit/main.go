// Traceability audit: run only the data-collection and traceability
// stages, then drill into individual verdicts — which bots request
// data-exposing permissions while disclosing nothing (the 95.67%
// broken-traceability headline).
//
//	go run ./examples/traceability_audit
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/traceability"
)

func main() {
	log.SetFlags(0)

	auditor, err := core.NewAuditor(core.Options{Seed: 7, NumBots: 600})
	if err != nil {
		log.Fatal(err)
	}
	defer auditor.Close()

	ctx := context.Background()
	records, err := auditor.CollectContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	data, dataTypes := auditor.TraceabilityContext(ctx, records)
	report.Table2(os.Stdout, data)
	fmt.Println()
	report.DataTypes(os.Stdout, dataTypes)

	// Drill-down: the most dangerous broken-traceability bots — admin
	// permission, not a word of disclosure.
	var an traceability.Analyzer
	fmt.Println("\nWorst offenders (administrator permission, broken traceability):")
	shown := 0
	for _, r := range records {
		if r == nil || !r.PermsValid || !r.Perms.IsAdmin() {
			continue
		}
		v := an.AnalyzePolicy(r.PolicyText, r.Perms)
		if v.HasPolicy {
			continue
		}
		fmt.Printf("  %-24s exposes: %v\n", r.Name, v.UndisclosedPerms)
		if shown++; shown >= 8 {
			break
		}
	}

	// And a live policy, with what the keyword analyzer found in it.
	for _, r := range records {
		if r == nil || r.PolicyText == "" {
			continue
		}
		v := an.AnalyzePolicy(r.PolicyText, r.Perms)
		fmt.Printf("\nSample policy for %s — class %s, matched keywords:\n", r.Name, v.Class)
		for cat, hits := range v.Hits {
			fmt.Printf("  %-8s <- %v\n", cat, hits)
		}
		break
	}
}
