// Longitudinal trends: the paper's future-work measurement (§5),
// simulated. The ecosystem evolves over epochs — new bots arrive, some
// are delisted, privacy-policy adoption slowly rises (as the paper
// expects, mirroring what happened with voice assistants), and
// permissions creep toward administrator. Each epoch is re-measured
// with the pipeline's analyzers, and the trend table plus the riskiest
// bots are printed.
//
//	go run ./examples/longitudinal_trends
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/listing"
	"repro/internal/longitudinal"
	"repro/internal/permissions"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	eco := synth.Generate(synth.Config{Seed: 2022, NumBots: 3000})
	churn := longitudinal.DefaultChurn()
	churn.NewBots = 120

	series := longitudinal.Run(eco, 7, 10, churn)
	longitudinal.Report(os.Stdout, series)

	first, last := series[0], series[len(series)-1]
	fmt.Printf("\nOver %d epochs: policy adoption %.1f%% -> %.1f%%, broken traceability %.1f%% -> %.1f%%,\n",
		last.Epoch, first.PolicyPct, last.PolicyPct, first.BrokenPct, last.BrokenPct)
	fmt.Printf("administrator share %.1f%% -> %.1f%% (permission creep), complete policies %d -> %d.\n",
		first.AdminPct, last.AdminPct, first.CompleteCount, last.CompleteCount)

	// The riskiest active bots at the end of the study, by risk score.
	var sets []permissions.Permission
	var bots []*listing.Bot
	for _, b := range eco.Bots {
		if b.InviteHealth == listing.InviteOK {
			sets = append(sets, b.Perms)
			bots = append(bots, b)
		}
	}
	fmt.Println("\nRiskiest active bots at the final epoch:")
	for i, idx := range permissions.RankByRisk(sets) {
		if i >= 5 {
			break
		}
		b := bots[idx]
		fmt.Printf("  %-24s score %3d (%s) — %s\n",
			b.Name, b.Perms.RiskScore(), b.Perms.Level(), summarize(b.Perms))
	}
}

func summarize(p permissions.Permission) string {
	if p.IsAdmin() {
		return "administrator (subsumes everything)"
	}
	names := p.Names()
	if len(names) > 4 {
		return fmt.Sprintf("%s, … (%d permissions)", names[0], len(names))
	}
	return fmt.Sprint(names)
}
