// Platform comparison: Discord vs Slack/MS Teams access-control models
// (§6 of the paper). Discord ships only install-time consent and trusts
// bot developers to check invokers; Slack-style platforms add a runtime
// policy enforcer. This example runs the same permission re-delegation
// attack against both configurations of our platform and shows the
// enforcer closing the hole that 97.35% of Python bots leave open.
//
//	go run ./examples/platform_comparison
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/botsdk"
	"repro/internal/enforcer"
	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/platform"
)

// naiveModBot never checks its invoker — the common pattern the paper's
// code analysis found.
func naiveModBot(sess *botsdk.Session) {
	sess.OnMessage(func(s *botsdk.Session, m *botsdk.Message) {
		if m.AuthorBot || !strings.HasPrefix(m.Content, "!kick ") {
			return
		}
		target := strings.TrimPrefix(m.Content, "!kick ")
		go func() {
			if err := s.Kick(m.GuildID, target); err != nil {
				s.Send(m.ChannelID, "kick failed: "+err.Error())
				return
			}
			s.Send(m.ChannelID, "kicked "+target)
		}()
	})
}

func attack(enforced bool) {
	p := platform.New(platform.Options{})
	defer p.Close()
	gw, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	if enforced {
		enf := enforcer.New(p, enforcer.Options{Window: 30 * time.Second})
		defer enf.Close()
		gw.SetInterceptor(enf.Intercept)
		defer func() {
			s := enf.Stats()
			fmt.Printf("  enforcer stats: %d allowed, %d re-delegations blocked, %d context-free blocked\n",
				s.Allowed, s.DeniedRedelegate, s.DeniedNoContext)
		}()
	}

	owner := p.CreateUser("owner")
	guild, _ := p.CreateGuild(owner.ID, "office", false)
	var general *platform.Channel
	for _, ch := range guild.Channels {
		general = ch
	}
	attacker := p.CreateUser("attacker")
	victim := p.CreateUser("victim")
	p.JoinGuild(attacker.ID, guild.ID)
	p.JoinGuild(victim.ID, guild.ID)

	bot, _ := p.RegisterBot(owner.ID, "modbot")
	role, _ := p.InstallBot(owner.ID, guild.ID, bot.ID,
		permissions.ViewChannel|permissions.SendMessages|permissions.KickMembers)
	p.MoveRole(owner.ID, guild.ID, role.ID, 10)

	sess, err := botsdk.Dial(gw.Addr(), bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	naiveModBot(sess)

	p.SendMessage(attacker.ID, general.ID, "!kick "+victim.ID.String())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && p.IsMember(guild.ID, victim.ID) {
		time.Sleep(20 * time.Millisecond)
	}
	if p.IsMember(guild.ID, victim.ID) {
		fmt.Println("  attack FAILED — the platform's runtime enforcer blocked the re-delegation")
	} else {
		fmt.Println("  attack SUCCEEDED — victim kicked by an unprivileged user's command")
	}
	msgs, _ := p.ChannelMessages(general.ID)
	for _, m := range msgs {
		if m.AuthorID == bot.ID {
			fmt.Printf("  bot replied: %q\n", m.Content)
		}
	}
}

// interactionAttack runs the same scenario on the modern slash-command
// model: the interaction names its invoker, so the enforcer attributes
// the action exactly instead of guessing from the latest chat message.
func interactionAttack() {
	p := platform.New(platform.Options{})
	defer p.Close()
	gw, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	enf := enforcer.New(p, enforcer.Options{Window: 30 * time.Second})
	defer enf.Close()
	gw.SetInterceptor(enf.Intercept)

	owner := p.CreateUser("owner")
	guild, _ := p.CreateGuild(owner.ID, "office", false)
	var general *platform.Channel
	for _, ch := range guild.Channels {
		general = ch
	}
	attacker := p.CreateUser("attacker")
	victim := p.CreateUser("victim")
	p.JoinGuild(attacker.ID, guild.ID)
	p.JoinGuild(victim.ID, guild.ID)
	bot, _ := p.RegisterBot(owner.ID, "modbot")
	role, _ := p.InstallBot(owner.ID, guild.ID, bot.ID,
		permissions.ViewChannel|permissions.SendMessages|permissions.KickMembers)
	p.MoveRole(owner.ID, guild.ID, role.ID, 10)

	sess, err := botsdk.Dial(gw.Addr(), bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	sess.OnInteraction(func(s *botsdk.Session, in *botsdk.Interaction) {
		if in.Command != "kick" {
			return
		}
		go func() {
			// The bot cites the interaction: attribution is exact.
			if err := s.KickVia(in.ID, in.GuildID, in.Args); err != nil {
				s.Respond(in.GuildID, in.ID, "kick failed: "+err.Error())
				return
			}
			s.Respond(in.GuildID, in.ID, "kicked "+in.Args)
		}()
	})

	// A privileged mod chats right before the attack — the heuristic
	// would have been fooled; exact attribution is not.
	mod := p.CreateUser("mod")
	p.JoinGuild(mod.ID, guild.ID)
	modRole, _ := p.CreateRole(owner.ID, guild.ID, "mods", permissions.KickMembers, 5)
	p.GrantRole(owner.ID, guild.ID, mod.ID, modRole.ID)
	p.SendMessage(mod.ID, general.ID, "everything looks fine here")
	p.Flush()
	time.Sleep(30 * time.Millisecond)

	if _, err := p.Interact(attacker.ID, bot.ID, general.ID, "kick", victim.ID.String()); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && p.IsMember(guild.ID, victim.ID) {
		time.Sleep(20 * time.Millisecond)
	}
	if p.IsMember(guild.ID, victim.ID) {
		fmt.Println("  attack FAILED — the interaction named the attacker, and they lack kick-members")
	} else {
		fmt.Println("  attack SUCCEEDED (unexpected)")
	}
	msgs, _ := p.ChannelMessages(general.ID)
	for _, m := range msgs {
		if m.AuthorID == bot.ID {
			fmt.Printf("  bot replied: %q\n", m.Content)
		}
	}
}

func main() {
	log.SetFlags(0)
	fmt.Println("== Discord model: install-time consent only, no runtime enforcer ==")
	attack(false)
	fmt.Println()
	fmt.Println("== Slack/Teams model: OAuth + runtime policy enforcer (last-speaker heuristic) ==")
	attack(true)
	fmt.Println()
	fmt.Println("== Interactions model: slash commands carry the invoker; enforcement is exact ==")
	interactionAttack()
}
