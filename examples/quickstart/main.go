// Quickstart: run the complete audit pipeline on a small synthetic
// ecosystem and print every table and figure the paper reports.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	// One call stands up the whole simulated world: a top.gg-style
	// listing, a GitHub-style code host, the messaging platform with
	// its gateway, and the canary trigger service.
	auditor, err := core.NewAuditor(core.Options{
		Seed:    1,
		NumBots: 400,
		Honeypot: core.HoneypotOptions{
			Sample: 30,
			Settle: 400 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer auditor.Close()

	fmt.Printf("listing service running at %s\n", auditor.ListingURL())
	fmt.Printf("population: %d bots\n\n", len(auditor.Ecosystem().Bots))

	// Stage 1-4: scrape, traceability, code analysis, honeypot.
	results, err := auditor.RunAllContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	results.Report(os.Stdout)
}
