// Honeypot sting: reconstruct the paper's Melonian incident end to
// end. A snooping bot is installed into an isolated honeypot guild
// seeded with four canary tokens (URL, email, Word doc, PDF) and a
// believable conversation feed. The bot reads the channel, opens the
// documents, follows the links, mails the address — and every action
// phones home to the trigger service.
//
//	go run ./examples/honeypot_sting
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/canary"
	"repro/internal/corpus"
	"repro/internal/gateway"
	"repro/internal/honeypot"
	"repro/internal/permissions"
	"repro/internal/platform"
)

func main() {
	log.SetFlags(0)

	// Infrastructure: platform + gateway + canary collector.
	p := platform.New(platform.Options{})
	defer p.Close()
	gw, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	svc, err := canary.NewService("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	env := honeypot.Env{
		Platform: p,
		Gateway:  gw.Addr(),
		Canary:   svc,
		Minter:   svc.NewMinter("canary.example", nil),
		Feed:     corpus.New(42),
	}

	// Watch triggers live, like canaryd does.
	go func() {
		for trg := range svc.Watch() {
			fmt.Printf("  [trigger] %-5s token in %s via %s\n", trg.Kind, trg.GuildTag, trg.Via)
		}
	}()

	cfg := honeypot.DefaultConfig()
	cfg.Settle = time.Second

	fmt.Println("== experiment 1: a benign responder bot ==")
	clean, err := honeypot.Run(env, cfg, honeypot.Subject{
		Name:   "FriendlyHelper",
		Perms:  permissions.ViewChannel | permissions.SendMessages,
		Prefix: "!",
		Runner: honeypot.ResponderBot{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triggered=%v responded=%v\n\n", clean.Triggered, clean.Responded)

	fmt.Println("== experiment 2: the Melonian-style snoop ==")
	dirty, err := honeypot.Run(env, cfg, honeypot.Subject{
		Name: "Melonian",
		Perms: permissions.ViewChannel | permissions.ReadMessageHistory |
			permissions.SendMessages | permissions.AttachFiles,
		Runner: &honeypot.SnoopBot{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triggered=%v, %d triggers across kinds %v\n", dirty.Triggered, len(dirty.Triggers), dirty.TriggeredKinds)
	for _, msg := range dirty.BotMessages {
		fmt.Printf("the bot account posted: %q  <- not an automated message\n", msg)
	}
	fmt.Println("\nusers would never have noticed without the tokens — exactly the paper's point.")
}
