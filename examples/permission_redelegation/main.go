// Permission re-delegation: the paper's §5 attack, live. A moderation
// bot holds kick-members. A guild member WITHOUT kick-members asks the
// bot to kick a victim. Whether the attack works depends entirely on
// whether the bot's developer checked the invoking user's permissions —
// the platform never does (Discord has no runtime enforcer).
//
//	go run ./examples/permission_redelegation
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/botsdk"
	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/platform"
)

// modBot wires a "!kick @user" command. checked selects whether it
// verifies the invoker — the exact difference the paper's Table 3 scan
// measures in real bot code.
func modBot(checked bool) func(s *botsdk.Session, m *botsdk.Message) {
	return func(s *botsdk.Session, m *botsdk.Message) {
		if m.AuthorBot || !strings.HasPrefix(m.Content, "!kick ") {
			return
		}
		target := strings.TrimPrefix(m.Content, "!kick ")
		go func() {
			if checked {
				// The responsible pattern: hasPermission(invoker).
				ok, err := s.HasPermission(m.GuildID, m.AuthorID, permissions.KickMembers)
				if err != nil || !ok {
					s.Send(m.ChannelID, "you lack kick-members; refusing")
					return
				}
			}
			if err := s.Kick(m.GuildID, target); err != nil {
				s.Send(m.ChannelID, "kick failed: "+err.Error())
				return
			}
			s.Send(m.ChannelID, "kicked "+target)
		}()
	}
}

func run(checked bool) {
	p := platform.New(platform.Options{})
	defer p.Close()
	gw, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	owner := p.CreateUser("owner")
	guild, _ := p.CreateGuild(owner.ID, "workplace", false)
	var general *platform.Channel
	for _, ch := range guild.Channels {
		general = ch
	}
	attacker := p.CreateUser("attacker")
	victim := p.CreateUser("victim")
	p.JoinGuild(attacker.ID, guild.ID)
	p.JoinGuild(victim.ID, guild.ID)

	bot, _ := p.RegisterBot(owner.ID, "modbot")
	role, err := p.InstallBot(owner.ID, guild.ID, bot.ID,
		permissions.ViewChannel|permissions.SendMessages|permissions.KickMembers)
	if err != nil {
		log.Fatal(err)
	}
	// The owner raises the bot's role so it outranks ordinary members
	// (hierarchy rule iv requires it).
	if err := p.MoveRole(owner.ID, guild.ID, role.ID, 10); err != nil {
		log.Fatal(err)
	}

	sess, err := botsdk.Dial(gw.Addr(), bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	sess.OnMessage(modBot(checked))

	// The attacker cannot kick directly…
	if err := p.KickMember(attacker.ID, guild.ID, victim.ID); err != nil {
		fmt.Printf("  attacker kicks directly -> %v\n", err)
	}
	// …so they command the bot instead.
	p.SendMessage(attacker.ID, general.ID, "!kick "+victim.ID.String())

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !p.IsMember(guild.ID, victim.ID) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if p.IsMember(guild.ID, victim.ID) {
		fmt.Println("  victim still in guild — the bot refused the re-delegated action")
	} else {
		fmt.Println("  VICTIM KICKED — privilege re-delegated through the bot")
	}
	msgs, _ := p.ChannelMessages(general.ID)
	for _, m := range msgs {
		if m.AuthorID == bot.ID {
			fmt.Printf("  bot said: %q\n", m.Content)
		}
	}
}

func main() {
	log.SetFlags(0)
	fmt.Println("== bot WITHOUT an invoker permission check (97.35% of Python repos per the paper) ==")
	run(false)
	fmt.Println()
	fmt.Println("== bot WITH an invoker permission check (.hasPermission pattern) ==")
	run(true)
}
