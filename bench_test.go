// Package repro's benchmark harness regenerates every table and figure
// from the paper's evaluation (see DESIGN.md's per-experiment index).
// Each benchmark runs the corresponding pipeline stage against a
// calibrated synthetic ecosystem and reports the headline quantities as
// custom metrics, so `go test -bench` output can be compared row by row
// with the paper (EXPERIMENTS.md records the comparison).
//
// Populations are scaled down from the paper's 20,915 bots for
// wall-clock sanity; the *proportions* are what the calibration fixes.
// Pass -bench-bots to change the scale.
package repro

import (
	"context"
	"flag"
	"io"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/botsdk"
	"repro/internal/canary"
	"repro/internal/codeanalysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/enforcer"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/honeypot"
	"repro/internal/htmlparse"
	"repro/internal/listing"
	"repro/internal/longitudinal"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/permissions"
	"repro/internal/platform"
	"repro/internal/policygen"
	"repro/internal/report"
	"repro/internal/scraper"
	"repro/internal/synth"
	"repro/internal/traceability"
	"repro/internal/vetting"
)

var benchBots = flag.Int("bench-bots", 1000, "population size for table/figure benchmarks")

// ---- shared fixtures ----

// crawlFixture stands up listing + scraper over a seeded population and
// crawls it once, returning the records the table benchmarks consume.
func crawlFixture(b *testing.B, n int) (*core.Auditor, []*scraper.Record) {
	b.Helper()
	a, err := core.NewAuditor(core.Options{Seed: 2022, NumBots: n, Honeypot: core.HoneypotOptions{Sample: 1}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(a.Close)
	records, err := a.CollectContext(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return a, records
}

// ---- FIG1: the full pipeline ----

func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := core.NewAuditor(core.Options{
			Seed:    int64(i + 1),
			NumBots: 150,
			Honeypot: core.HoneypotOptions{
				Sample: 10,
				Settle: 300 * time.Millisecond,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.RunAllContext(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		res.Report(io.Discard)
		a.Close()
	}
}

// ---- FIG3: permission distribution ----

func BenchmarkFigure3PermissionDistribution(b *testing.B) {
	_, records := crawlFixture(b, *benchBots)
	b.ResetTimer()
	var dist []scraper.PermissionShare
	for i := 0; i < b.N; i++ {
		dist = scraper.PermissionDistribution(records)
	}
	b.StopTimer()
	report.Figure3(io.Discard, dist)
	for _, d := range dist {
		switch d.Perm {
		case permissions.SendMessages:
			b.ReportMetric(d.Pct, "send_messages_%")
		case permissions.Administrator:
			b.ReportMetric(d.Pct, "administrator_%")
		}
	}
}

// ---- TAB1: bots per developer ----

func BenchmarkTable1DeveloperDistribution(b *testing.B) {
	eco := synth.Generate(synth.Config{Seed: 2022, NumBots: *benchBots})
	botsPerDev := make(map[string]int, len(eco.Developers))
	for dev, ids := range eco.Developers {
		botsPerDev[dev] = len(ids)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table1(io.Discard, botsPerDev)
	}
	b.StopTimer()
	ones, total := 0, 0
	for _, k := range botsPerDev {
		total++
		if k == 1 {
			ones++
		}
	}
	b.ReportMetric(100*float64(ones)/float64(total), "single_bot_devs_%")
}

// ---- TAB2: traceability ----

func BenchmarkTable2Traceability(b *testing.B) {
	a, records := crawlFixture(b, *benchBots)
	b.ResetTimer()
	var data report.Table2Data
	for i := 0; i < b.N; i++ {
		data, _ = a.TraceabilityContext(context.Background(), records)
	}
	b.StopTimer()
	report.Table2(io.Discard, data)
	b.ReportMetric(100*float64(data.WebsiteLink)/float64(data.ActiveBots), "website_%")
	b.ReportMetric(100*float64(data.PolicyValid)/float64(data.ActiveBots), "valid_policy_%")
	b.ReportMetric(data.Traceability.BrokenPct(), "broken_%")
	if data.Traceability.Complete != 0 {
		b.Fatalf("complete policies = %d, paper found none", data.Traceability.Complete)
	}
}

// ---- TAB3 + TEXT2: code analysis ----

func BenchmarkTable3CodeAnalysis(b *testing.B) {
	a, records := crawlFixture(b, *benchBots)
	b.ResetTimer()
	var res *codeanalysis.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = a.CodeAnalysisContext(context.Background(), records)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report.Table3(io.Discard, res)
	report.CodeTaxonomy(io.Discard, res)
	b.ReportMetric(100*res.CheckRate("JavaScript"), "js_check_%")
	b.ReportMetric(100*res.CheckRate("Python"), "py_check_%")
	b.ReportMetric(100*float64(res.ValidRepos())/float64(res.WithLink), "valid_repo_%")
}

func BenchmarkGitHubLinkTaxonomy(b *testing.B) {
	a, records := crawlFixture(b, *benchBots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := a.CodeAnalysisContext(context.Background(), records)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.StopTimer()
			b.ReportMetric(100*float64(res.WithLink)/float64(res.ActiveBots), "link_rate_%")
			b.ReportMetric(float64(res.WithSource()), "repos_with_source")
			b.StartTimer()
		}
	}
}

// ---- TEXT1: scrape yield ----

func BenchmarkScrapeYield(b *testing.B) {
	eco := synth.Generate(synth.Config{Seed: 2022, NumBots: 300})
	srv, err := listing.NewServer(listing.NewDirectory(eco.Bots), listing.AntiScrape{}, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ResetTimer()
	var records []*scraper.Record
	for i := 0; i < b.N; i++ {
		c, err := scraper.NewClient(scraper.ClientConfig{BaseURL: srv.BaseURL(), Timeout: 500 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		cres, err := scraper.CrawlResultContext(context.Background(), c, scraper.Config{Workers: 8, Strict: true})
		if err != nil {
			b.Fatal(err)
		}
		records = cres.Records
	}
	b.StopTimer()
	report.ScrapeYield(io.Discard, records)
	valid := 0
	for _, r := range records {
		if r.PermsValid {
			valid++
		}
	}
	b.ReportMetric(100*float64(valid)/float64(len(records)), "valid_perm_%")
	b.ReportMetric(float64(len(records))/b.Elapsed().Seconds()*float64(b.N), "bots_per_sec")
}

// ---- CHAOS: crawl throughput under fault injection ----

// BenchmarkCrawlFaultResilience measures crawl throughput against a
// clean listing site vs one injecting ~10% transport faults, reporting
// bots/sec and how many bots each condition quarantined. The delta is
// the price of degradation-aware retries.
func BenchmarkCrawlFaultResilience(b *testing.B) {
	cases := []struct {
		name string
		prof faults.Profile
	}{
		{"faults-0pct", faults.Profile{Name: "bench-zero"}},
		{"faults-10pct", faults.Profile{
			Name:    "bench-ten",
			Default: faults.Rates{ServerError: 0.06, ConnReset: 0.02, TruncatedBody: 0.02},
		}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			eco := synth.Generate(synth.Config{Seed: 2022, NumBots: 300})
			srv, err := listing.NewServer(listing.NewDirectory(eco.Bots), listing.AntiScrape{}, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			bots, quarantined := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inj := faults.New(bc.prof, int64(i+1), faults.Options{})
				srv.SetMiddleware(inj.Middleware)
				c, err := scraper.NewClient(scraper.ClientConfig{BaseURL: srv.BaseURL(), Timeout: 500 * time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
				res, err := scraper.CrawlResultContext(context.Background(), c, scraper.Config{Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				bots += len(res.Records)
				quarantined += len(res.Quarantined)
			}
			b.StopTimer()
			srv.SetMiddleware(nil)
			b.ReportMetric(float64(bots)/b.Elapsed().Seconds(), "bots_per_sec")
			b.ReportMetric(float64(quarantined)/float64(b.N), "quarantined/op")
		})
	}
}

// ---- HONEY: the honeypot campaign ----

func BenchmarkHoneypotCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := platform.New(platform.Options{})
		gw, err := gateway.NewServer(p, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		svc, err := canary.NewService("127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		eco := synth.Generate(synth.Config{Seed: 2022, NumBots: 400})
		env := honeypot.Env{
			Platform: p, Gateway: gw.Addr(), Canary: svc,
			Minter: svc.NewMinter("canary.invalid", nil),
			Feed:   corpus.New(7),
		}
		cfg := honeypot.DefaultConfig()
		cfg.Settle = 300 * time.Millisecond
		res, err := honeypot.CampaignContext(context.Background(), env, eco, honeypot.CampaignConfig{
			SampleSize: 25, Concurrency: 12, Experiment: cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Triggered) != 1 || res.Triggered[0].Subject.Name != "Melonian" {
			b.Fatalf("campaign verdicts wrong: %+v", res.Triggered)
		}
		b.ReportMetric(float64(res.Tested), "bots_tested")
		b.ReportMetric(float64(len(res.Triggered)), "bots_triggered")
		gw.Close()
		svc.Close()
		p.Close()
	}
}

// ---- SCALE: sharded work-stealing executor smoke ----

// BenchmarkShardedScaleSmoke runs the full pipeline over a 2,000-bot
// population on the sharded work-stealing executor — the scaled-down
// rehearsal of the paper-scale 20,915-bot run that produces
// BENCH_SCALE.json — and reports end-to-end scheduler throughput.
func BenchmarkShardedScaleSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := core.NewAuditor(core.Options{
			Seed:    2022,
			NumBots: 2000,
			Honeypot: core.HoneypotOptions{
				Sample:      50,
				Concurrency: 16,
				Settle:      200 * time.Millisecond,
			},
			Exec: core.ExecOptions{Shards: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.RunAllContext(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Scale == nil || res.Scale.Items == 0 {
			b.Fatal("sharded run reported no scale stats")
		}
		b.ReportMetric(res.Scale.BotsPerSec, "bots_per_sec")
		b.ReportMetric(float64(res.Scale.Steals), "steals")
		b.ReportMetric(res.Scale.ShardImbalance, "shard_imbalance")
		a.Close()
	}
}

// ---- TRACE-V: traceability validation ----

func BenchmarkTraceabilityValidation(b *testing.B) {
	g := policygen.New(2022)
	var an traceability.Analyzer
	specs := make([]policygen.Spec, 0, 100)
	texts := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		var covered []policygen.Category
		for _, c := range policygen.AllCategories {
			if (i>>uint(c))&1 == 1 {
				covered = append(covered, c)
			}
		}
		spec := policygen.Spec{BotName: "b", Covered: covered, Generic: i%7 == 6, GenericTemplate: i}
		specs = append(specs, spec)
		texts = append(texts, g.Generate(spec))
	}
	b.ResetTimer()
	mis := 0
	for i := 0; i < b.N; i++ {
		mis = 0
		for j, text := range texts {
			v := an.AnalyzePolicy(text, permissions.ViewChannel)
			if v.Class != specs[j].TruthClass() {
				mis++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(mis), "misclassified_of_100")
	if mis != 0 {
		b.Fatalf("misclassified %d/100", mis)
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationTraceabilityMatchers compares the word-boundary
// matcher against the naive substring baseline, in both speed and
// false-positive count on keyword-free text.
func BenchmarkAblationTraceabilityMatchers(b *testing.B) {
	// Text with many embedded false-substring traps.
	trap := "Our museum of bookkeeping recordings is housed in a warehouse. " +
		"Reusable accessories amuse the user-base. Chartreuse houses refuse obtuse excuses."
	for _, mode := range []struct {
		name string
		an   traceability.Analyzer
	}{
		{"word-boundary", traceability.Analyzer{}},
		{"substring", traceability.Analyzer{Substring: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			falsePos := 0
			for i := 0; i < b.N; i++ {
				v := mode.an.AnalyzePolicy(trap, permissions.None)
				if v.Class != policygen.Broken {
					falsePos++
				}
			}
			b.ReportMetric(float64(boolToInt(falsePos > 0)), "false_positive")
		})
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// BenchmarkAblationLocators compares element-locator strategies on a
// realistic listing page, mirroring Selenium locator cost.
func BenchmarkAblationLocators(b *testing.B) {
	// Two pages so the page-1 render includes the next-page link.
	eco := synth.Generate(synth.Config{Seed: 3, NumBots: 2 * listing.PageSize})
	srv, err := listing.NewServer(listing.NewDirectory(eco.Bots), listing.AntiScrape{}, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := scraper.NewClient(scraper.ClientConfig{BaseURL: srv.BaseURL(), Timeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	doc, err := c.GetContext(context.Background(), "/bots?page=1")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("by-id", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if doc.ByID("next-page") == nil {
				b.Fatal("locator miss")
			}
		}
	})
	b.Run("css-selector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(doc.Select("ul.bot-list > li.bot-card")) == 0 {
				b.Fatal("locator miss")
			}
		}
	})
	b.Run("full-walk-text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(doc.ByText("Next")) == 0 {
				b.Fatal("locator miss")
			}
		}
	})
}

// BenchmarkAblationScrapeConcurrency sweeps crawl parallelism under the
// listing's rate limiter — the operating point §3's self-rate-limiting
// navigates.
func BenchmarkAblationScrapeConcurrency(b *testing.B) {
	eco := synth.Generate(synth.Config{Seed: 5, NumBots: 100})
	srv, err := listing.NewServer(listing.NewDirectory(eco.Bots),
		listing.AntiScrape{RequestsPerSecond: 2000, Burst: 100}, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, workers := range []int{1, 4, 16} {
		b.Run(benchName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := scraper.NewClient(scraper.ClientConfig{BaseURL: srv.BaseURL(), Timeout: time.Second})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := scraper.CrawlResultContext(context.Background(), c, scraper.Config{Workers: workers, Strict: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	switch workers {
	case 1:
		return "workers-1"
	case 4:
		return "workers-4"
	default:
		return "workers-16"
	}
}

// BenchmarkAblationHoneypotIsolation contrasts per-bot isolated guilds
// (exact attribution) with a shared guild (every co-located bot becomes
// a suspect).
func BenchmarkAblationHoneypotIsolation(b *testing.B) {
	subjects := func() []honeypot.Subject {
		return []honeypot.Subject{
			{Name: "InnocentA", Perms: snoopPermsBench, Runner: honeypot.IdleBot{}},
			{Name: "Sneaky", Perms: snoopPermsBench, Runner: &honeypot.SnoopBot{}},
			{Name: "InnocentB", Perms: snoopPermsBench, Prefix: "!", Runner: honeypot.ResponderBot{}},
		}
	}
	newBenchEnv := func(b *testing.B) (honeypot.Env, func()) {
		p := platform.New(platform.Options{})
		gw, err := gateway.NewServer(p, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		svc, err := canary.NewService("127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		env := honeypot.Env{
			Platform: p, Gateway: gw.Addr(), Canary: svc,
			Minter: svc.NewMinter("canary.invalid", nil), Feed: corpus.New(11),
		}
		return env, func() { gw.Close(); svc.Close(); p.Close() }
	}
	cfg := honeypot.DefaultConfig()
	cfg.Settle = 600 * time.Millisecond

	b.Run("isolated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env, done := newBenchEnv(b)
			suspects := 0
			for _, sub := range subjects() {
				v, err := honeypot.Run(env, cfg, sub)
				if err != nil {
					b.Fatal(err)
				}
				if v.Triggered {
					suspects++
				}
			}
			done()
			if suspects != 1 {
				b.Fatalf("isolated run blamed %d bots", suspects)
			}
			b.ReportMetric(float64(suspects), "suspects")
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env, done := newBenchEnv(b)
			v, err := honeypot.RunShared(env, cfg, subjects())
			if err != nil {
				b.Fatal(err)
			}
			done()
			if !v.Triggered {
				b.Fatal("shared run saw no trigger")
			}
			b.ReportMetric(float64(len(v.SuspectNames)), "suspects")
		}
	})
}

const snoopPermsBench = permissions.ViewChannel | permissions.ReadMessageHistory |
	permissions.SendMessages | permissions.AttachFiles

// BenchmarkAblationRuntimeEnforcer measures what the Slack/Teams-style
// runtime policy enforcer (§6 comparison) costs per gateway action, and
// confirms the attack-success delta: without it the re-delegated kick
// lands, with it the kick is denied.
func BenchmarkAblationRuntimeEnforcer(b *testing.B) {
	setup := func(b *testing.B, enforced bool) (*platform.Platform, *botsdk.Session, *platform.Guild, *platform.User, func()) {
		p := platform.New(platform.Options{})
		gw, err := gateway.NewServer(p, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		var enf *enforcer.Enforcer
		if enforced {
			enf = enforcer.New(p, enforcer.Options{Window: time.Hour})
			gw.SetInterceptor(enf.Intercept)
		}
		owner := p.CreateUser("owner")
		g, _ := p.CreateGuild(owner.ID, "bench", false)
		var general *platform.Channel
		for _, ch := range g.Channels {
			general = ch
		}
		bot, _ := p.RegisterBot(owner.ID, "b")
		role, _ := p.InstallBot(owner.ID, g.ID, bot.ID,
			permissions.ViewChannel|permissions.SendMessages|permissions.KickMembers)
		if err := p.MoveRole(owner.ID, g.ID, role.ID, 10); err != nil {
			b.Fatal(err)
		}
		// The owner (privileged) speaks so enforced actions are
		// authorized; flush so the tracker has seen it.
		if _, err := p.SendMessage(owner.ID, general.ID, "!kick them"); err != nil {
			b.Fatal(err)
		}
		p.Flush()
		time.Sleep(10 * time.Millisecond)
		sess, err := botsdk.Dial(gw.Addr(), bot.Token, botsdk.Options{RequestTimeout: 5 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		cleanup := func() {
			sess.Close()
			gw.Close()
			if enf != nil {
				enf.Close()
			}
			p.Close()
		}
		return p, sess, g, owner, cleanup
	}
	for _, mode := range []struct {
		name     string
		enforced bool
	}{{"discord-model", false}, {"enforced-model", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p, sess, g, _, cleanup := setup(b, mode.enforced)
			defer cleanup()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				victim := p.CreateUser("victim")
				if err := p.JoinGuild(victim.ID, g.ID); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := sess.Kick(g.ID.String(), victim.ID.String()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- extension benchmarks ----

// BenchmarkLongitudinalEpochs measures one evolve+measure epoch over a
// population — the unit cost of the §5 future-work longitudinal study.
func BenchmarkLongitudinalEpochs(b *testing.B) {
	eco := synth.Generate(synth.Config{Seed: 2022, NumBots: 3000})
	ev := longitudinal.NewEvolver(eco, 7)
	churn := longitudinal.DefaultChurn()
	b.ResetTimer()
	var last longitudinal.EpochStats
	for i := 0; i < b.N; i++ {
		ev.Step(churn)
		last = longitudinal.Measure(eco, ev.Epoch())
	}
	b.StopTimer()
	b.ReportMetric(last.PolicyPct, "final_policy_%")
	b.ReportMetric(last.AdminPct, "final_admin_%")
}

// BenchmarkVettingPopulation measures the §7 mitigation over a crawled
// population and reports its verdict split.
func BenchmarkVettingPopulation(b *testing.B) {
	_, records := crawlFixture(b, *benchBots)
	b.ResetTimer()
	var sum vetting.Summary
	for i := 0; i < b.N; i++ {
		_, sum = vetting.VetAll(records)
	}
	b.StopTimer()
	b.ReportMetric(100*float64(sum.Rejected)/float64(sum.Total), "reject_%")
	b.ReportMetric(100*float64(sum.Approved)/float64(sum.Total), "approve_%")
}

// BenchmarkDataTypeAudit measures the ontology audit per policy.
func BenchmarkDataTypeAudit(b *testing.B) {
	policy := "We collect message content and uploaded files. We use and store them."
	perms := permissions.Administrator
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if traceability.DataTypeGapCount(policy, perms) == 0 {
			b.Fatal("admin with partial mention should gap")
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkHTMLParseListingPage(b *testing.B) {
	eco := synth.Generate(synth.Config{Seed: 3, NumBots: listing.PageSize})
	srv, err := listing.NewServer(listing.NewDirectory(eco.Bots), listing.AntiScrape{}, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, _ := scraper.NewClient(scraper.ClientConfig{BaseURL: srv.BaseURL(), Timeout: time.Second})
	raw, err := c.GetRawContext(context.Background(), "/bots?page=1")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := htmlparse.Parse(raw)
		if len(doc.Select("li.bot-card")) == 0 {
			b.Fatal("parse lost the cards")
		}
	}
}

func BenchmarkPlatformSendMessage(b *testing.B) {
	p := platform.New(platform.Options{})
	defer p.Close()
	owner := p.CreateUser("o")
	g, _ := p.CreateGuild(owner.ID, "bench", false)
	var ch *platform.Channel
	for _, c := range g.Channels {
		ch = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SendMessage(owner.ID, ch.ID, "benchmark message"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGatewayRoundTrip(b *testing.B) {
	p := platform.New(platform.Options{})
	defer p.Close()
	gw, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	owner := p.CreateUser("o")
	g, _ := p.CreateGuild(owner.ID, "bench", false)
	bot, _ := p.RegisterBot(owner.ID, "bench-bot")
	if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.ViewChannel|permissions.SendMessages); err != nil {
		b.Fatal(err)
	}
	sess, err := botsdk.Dial(gw.Addr(), bot.Token, botsdk.Options{RequestTimeout: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	var chID string
	_, _, chans, err := sess.GuildInfo(g.ID.String())
	if err != nil || len(chans) == 0 {
		b.Fatal("guild info failed")
	}
	chID = chans[0].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Send(chID, "ping"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanaryDocxRoundTrip(b *testing.B) {
	m := canary.NewMinter("http://127.0.0.1:1", "c.test", canary.SequentialIDs("b"))
	tok := m.Mint(canary.KindWord, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := canary.WordDocument(tok, "bench body")
		if err != nil {
			b.Fatal(err)
		}
		refs, err := canary.ExternalRefsFromWord(doc)
		if err != nil || len(refs) != 1 {
			b.Fatal("roundtrip failed")
		}
	}
}

func BenchmarkSynthGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eco := synth.Generate(synth.Config{Seed: int64(i), NumBots: 2000})
		if len(eco.Bots) != 2000 {
			b.Fatal("generation failed")
		}
	}
}

// ---- journal hot path ----

// BenchmarkJournalEmit measures the instrumented fast path: concurrent
// emitters against a draining flusher. This is the per-event cost every
// pipeline stage pays when a journal is configured.
func BenchmarkJournalEmit(b *testing.B) {
	reg := obs.NewRegistry()
	j := journal.New(io.Discard, journal.Options{Buffer: 4096, Obs: reg})
	ev := journal.Event{
		Kind: journal.KindPageFetched, Component: "bench",
		RunID: "bench-run", BotID: 7,
		Fields: map[string]any{"ref": "/bot/7", "status": 200},
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j.Emit(ev)
		}
	})
	b.StopTimer()
	j.Close()
	total := float64(reg.Counter("journal_events_total").Value() +
		reg.Counter("journal_events_dropped_total").Value())
	b.ReportMetric(100*float64(reg.Counter("journal_events_dropped_total").Value())/total, "dropped_%")
}

// stalledWriter never completes a write until released — it wedges the
// flusher so the buffer saturates.
type stalledWriter struct{ release chan struct{} }

func (w *stalledWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

// BenchmarkJournalEmitSaturated is the contention worst case: the
// flusher is wedged on a stalled writer, the buffer is full, and every
// concurrent Emit must drop instead of blocking the pipeline. The drop
// accounting must equal the emit attempts exactly — no event may both
// block and be lost silently.
func BenchmarkJournalEmitSaturated(b *testing.B) {
	reg := obs.NewRegistry()
	w := &stalledWriter{release: make(chan struct{})}
	j := journal.New(w, journal.Options{Buffer: 64, Obs: reg})
	ev := journal.Event{Kind: journal.KindCanaryTriggered, Component: "bench"}
	// Saturate before timing so the steady state is pure drop path.
	for i := 0; i < 128; i++ {
		j.Emit(ev)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j.Emit(ev)
		}
	})
	b.StopTimer()
	close(w.release)
	j.Close()
	emitted := reg.Counter("journal_events_total").Value()
	dropped := reg.Counter("journal_events_dropped_total").Value()
	if emitted+dropped != int64(b.N)+128 {
		b.Fatalf("accounting leak: emitted %d + dropped %d != %d attempts", emitted, dropped, b.N+128)
	}
	if dropped == 0 {
		b.Fatal("saturated journal dropped nothing — Emit must have blocked")
	}
	b.ReportMetric(100*float64(dropped)/float64(emitted+dropped), "dropped_%")
}

// ---- evidence ledger write path ----

// ledgerBenchWorkload writes n pipeline-shaped events through a journal
// in the given ledger mode onto a real temp file and returns the
// wall-clock time for the full path: Emit, marshal, hash chain, ledger
// records, flush, seal.
func ledgerBenchWorkload(tb testing.TB, mode journal.LedgerMode, n int) time.Duration {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "ledger.jsonl")
	j, err := journal.Open(path, journal.Options{
		Buffer: n + 1, // never drop: the comparison must write identical workloads
		Obs:    obs.NewRegistry(),
		Ledger: journal.LedgerOptions{Mode: mode, Batch: 64},
	})
	if err != nil {
		tb.Fatal(err)
	}
	ev := journal.Event{
		Kind: journal.KindPageFetched, Component: "bench", RunID: "bench-run",
		Fields: map[string]any{"ref": "/bot/12345", "status": 200},
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		e := ev
		e.BotID = i + 1
		j.Emit(e)
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	if mode != journal.LedgerOff {
		res, err := journal.VerifyFile(path)
		if err != nil || !res.OK {
			tb.Fatalf("benched ledger does not verify: %v %s", err, res.Err)
		}
		if res.Events != n {
			tb.Fatalf("benched ledger covers %d events, want %d", res.Events, n)
		}
	}
	return elapsed
}

// BenchmarkJournalLedgerWrite measures what tamper-evidence costs on
// the journal's write path, one sub-benchmark per mode. BENCH_LEDGER.json
// (written by `botscan bench-ledger`) records the checked-in numbers at
// the BENCH_SCALE workload.
func BenchmarkJournalLedgerWrite(b *testing.B) {
	for _, mode := range []journal.LedgerMode{journal.LedgerOff, journal.LedgerChain, journal.LedgerMerkle} {
		b.Run(string(mode), func(b *testing.B) {
			elapsed := ledgerBenchWorkload(b, mode, b.N)
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "events/sec")
			b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ns/event")
		})
	}
}

// TestLedgerOverheadSmoke is the CI guard on the ledger's write-path
// cost: merkle mode must stay within 2x of off mode on a small
// workload. The bound is deliberately loose — CI machines are noisy and
// the workload short; the honest overhead number (< 15% at the
// BENCH_SCALE workload) lives in BENCH_LEDGER.json, regenerated with
// `botscan bench-ledger`. What this guard catches is a regression that
// makes tamper-evidence wildly expensive (per-event fsync, quadratic
// batch handling), not single-digit drift.
func TestLedgerOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke test")
	}
	const n = 20000
	med := func(mode journal.LedgerMode) time.Duration {
		ds := make([]time.Duration, 3)
		for i := range ds {
			ds[i] = ledgerBenchWorkload(t, mode, n)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[1]
	}
	off := med(journal.LedgerOff)
	merkle := med(journal.LedgerMerkle)
	t.Logf("off=%v merkle=%v overhead=%.1f%%", off, merkle, 100*float64(merkle-off)/float64(off))
	if merkle > 2*off {
		t.Fatalf("merkle ledger costs %v vs %v off — over the 2x smoke bound", merkle, off)
	}
}
