// Command loadgen drives persona traffic — many guilds, many chatting
// users, a fleet of bot sessions over live gateway sockets — against a
// self-hosted platform + gateway, and reports sustained fan-out
// throughput plus the server's overload accounting (shed, dropped,
// reaped). It is the traffic-plane counterpart of botscan's pipeline
// benchmarks: where botscan measures the audit, loadgen measures the
// platform surviving its users.
//
// Usage:
//
//	loadgen -sessions 1000 -guilds 16 -duration 10s -fault-profile moderate
//	loadgen -sessions 200 -max-sessions 150 -stalled 1 -slow-consumer drop-oldest
//	loadgen -sessions 500 -out run.json -journal run.jsonl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/obs/journal"
	"repro/internal/report"
)

func main() {
	var (
		guilds    = flag.Int("guilds", 8, "guild count")
		users     = flag.Int("users-per-guild", 20, "chatting users per guild")
		sessions  = flag.Int("sessions", 64, "bot sessions to connect")
		tenants   = flag.Int("tenants", 8, "distinct bot owners the sessions divide into")
		stalled   = flag.Int("stalled", 0, "clients that identify and then never read (slow-consumer torture)")
		duration  = flag.Duration("duration", 5*time.Second, "publishing window")
		msgRate   = flag.Float64("msg-rate", 50, "user messages/sec per guild")
		reqRate   = flag.Float64("req-rate", 2, "requests/sec per responder bot")
		respFrac  = flag.Float64("responders", 0.25, "fraction of bots that also issue requests")
		profile   = flag.String("fault-profile", "", fmt.Sprintf("inject gateway faults using this named profile (%s)", strings.Join(faults.Names(), ", ")))
		faultSeed = flag.Int64("fault-seed", 1, "fault injector seed")

		maxSessions = flag.Int("max-sessions", 0, "admission cap; connections beyond it are shed (0 = unlimited)")
		identRPS    = flag.Float64("identify-rps", 0, "identify-rate throttle across the listener (0 = unlimited)")
		identBurst  = flag.Int("identify-burst", 0, "identify throttle burst")
		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant (bot owner) aggregate request rate (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst")
		sessionRPS  = flag.Float64("session-rps", 0, "per-session request rate (0 = unlimited)")
		sessBurst   = flag.Int("session-burst", 0, "per-session burst")
		sendQueue   = flag.Int("send-queue", 0, "bounded per-session event queue (0 = default 256)")
		slowPolicy  = flag.String("slow-consumer", "block", "full-queue policy: block, drop-oldest, disconnect")
		writeTO     = flag.Duration("write-timeout", 0, "socket write / blocking-enqueue deadline (0 = default 5s)")
		hbTimeout   = flag.Duration("heartbeat-timeout", 0, "reap sessions silent for this long (0 = off)")

		seed        = flag.Int64("seed", 1, "workload seed")
		out         = flag.String("out", "", "also write the run result as JSON to this file")
		journalPath = flag.String("journal", "", "append gateway lifecycle/shed events to this JSONL journal")
	)
	flag.Parse()
	logger := journal.NewLogger("loadgen", os.Stderr, slog.LevelInfo)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	policy, err := gateway.ParseSlowConsumerPolicy(*slowPolicy)
	if err != nil {
		fatal("slow-consumer", err)
	}
	cfg := loadgen.Config{
		Guilds:        *guilds,
		UsersPerGuild: *users,
		Sessions:      *sessions,
		Tenants:       *tenants,
		Stalled:       *stalled,
		Duration:      *duration,
		MsgRate:       *msgRate,
		ReqRate:       *reqRate,
		ResponderFrac: *respFrac,
		FaultProfile:  *profile,
		FaultSeed:     *faultSeed,
		SessionRPS:    *sessionRPS,
		SessionBurst:  *sessBurst,
		Seed:          *seed,
		Limits: gateway.Limits{
			MaxSessions:      *maxSessions,
			IdentifyRPS:      *identRPS,
			IdentifyBurst:    *identBurst,
			TenantRPS:        *tenantRPS,
			TenantBurst:      *tenantBurst,
			SendQueue:        *sendQueue,
			SlowConsumer:     policy,
			WriteTimeout:     *writeTO,
			HeartbeatTimeout: *hbTimeout,
		},
		Logf: func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
	}
	if *journalPath != "" {
		j, err := journal.Open(*journalPath, journal.Options{})
		if err != nil {
			fatal("open journal", err)
		}
		defer j.Close()
		cfg.Journal = j
	}

	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fatal("loadgen", err)
	}
	report.GatewayLoad(os.Stdout, res)
	if *out != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal("marshal result", err)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fatal("write result", err)
		}
		logger.Info("result written", "path", *out)
	}
}
