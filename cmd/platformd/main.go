// Command platformd runs a standalone messaging platform with its
// gateway, pre-seeded with a demo guild, users and a registered bot
// whose token is printed so external bot processes can connect. The
// gateway speaks raw TCP, so the operational surface (/metrics,
// /healthz, /readyz, /debug/pprof) gets its own HTTP listener via
// -ops-addr, and -journal records every permission denial the platform
// issues.
//
// Usage:
//
//	platformd -gateway 127.0.0.1:7000 -ops-addr 127.0.0.1:7070
package main

import (
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/gateway"
	"repro/internal/obs/journal"
	"repro/internal/obs/ops"
	"repro/internal/permissions"
	"repro/internal/platform"
)

func main() {
	var (
		gwAddr      = flag.String("gateway", "127.0.0.1:7000", "gateway listen address")
		opsAddr     = flag.String("ops-addr", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address (empty = disabled)")
		journalPath = flag.String("journal", "", "append platform/gateway events to this JSONL journal")
	)
	flag.Parse()
	logger := journal.NewLogger("platformd", os.Stderr, slog.LevelInfo)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	var j *journal.Journal
	if *journalPath != "" {
		var err error
		if j, err = journal.Open(*journalPath, journal.Options{}); err != nil {
			fatal("open journal", err)
		}
		defer j.Close()
		logger.Info("journal enabled", "path", *journalPath)
	}

	p := platform.New(platform.Options{Journal: j})
	defer p.Close()

	owner := p.CreateUser("admin")
	p.VerifyUser(owner.ID)
	guild, err := p.CreateGuild(owner.ID, "demo-guild", false)
	if err != nil {
		fatal("create guild", err)
	}
	bot, err := p.RegisterBot(owner.ID, "demo-bot")
	if err != nil {
		fatal("register bot", err)
	}
	if _, err := p.InstallBot(owner.ID, guild.ID, bot.ID,
		permissions.ViewChannel|permissions.SendMessages|permissions.ReadMessageHistory); err != nil {
		fatal("install bot", err)
	}

	gw, err := gateway.NewServer(p, *gwAddr)
	if err != nil {
		fatal("start gateway", err)
	}
	defer gw.Close()
	gw.SetJournal(j)

	// The gateway is a raw TCP protocol, so the HTTP operational surface
	// lives on its own listener.
	ready := func() bool { return true }
	if *opsAddr != "" {
		ln, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fatal("listen ops", err)
		}
		defer ln.Close()
		go http.Serve(ln, ops.Mux(nil, ready))
		logger.Info("operational endpoints up", "url", "http://"+ln.Addr().String()+"/healthz")
	}

	logger.Info("gateway listening", "addr", gw.Addr())
	logger.Info("demo guild created", "guild", guild.ID.String(), "owner", owner.Tag())
	logger.Info("bot registered", "token", bot.Token)
	logger.Info("connect with botsdk.Dial", "addr", gw.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
