// Command platformd runs a standalone messaging platform with its
// gateway, pre-seeded with a demo guild, users and a registered bot
// whose token is printed so external bot processes can connect.
//
// Usage:
//
//	platformd -gateway 127.0.0.1:7000
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("platformd: ")

	var (
		gwAddr = flag.String("gateway", "127.0.0.1:7000", "gateway listen address")
	)
	flag.Parse()

	p := platform.New(platform.Options{})
	defer p.Close()

	owner := p.CreateUser("admin")
	p.VerifyUser(owner.ID)
	guild, err := p.CreateGuild(owner.ID, "demo-guild", false)
	if err != nil {
		log.Fatal(err)
	}
	bot, err := p.RegisterBot(owner.ID, "demo-bot")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.InstallBot(owner.ID, guild.ID, bot.ID,
		permissions.ViewChannel|permissions.SendMessages|permissions.ReadMessageHistory); err != nil {
		log.Fatal(err)
	}

	gw, err := gateway.NewServer(p, *gwAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	log.Printf("gateway listening on %s", gw.Addr())
	log.Printf("demo guild %s created by %s", guild.ID, owner.Tag())
	log.Printf("bot token: %s", bot.Token)
	log.Printf("connect with botsdk.Dial(%q, token, opts)", gw.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
