// Command botvet applies the listing-time vetting rules (the paper's
// §7 mitigation) to a previously exported records dataset — re-vetting
// without re-crawling, the "continuous" half of "continuous rigorous
// vetting process".
//
// Usage:
//
//	botscan -bots 2000 -export-dir ./out
//	botvet -records ./out/records.jsonl -show-rejected 5
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/dataset"
	"repro/internal/obs/journal"
	"repro/internal/report"
	"repro/internal/vetting"
)

func main() {
	var (
		recordsPath = flag.String("records", "", "path to a records.jsonl export (required)")
		showN       = flag.Int("show-rejected", 3, "print detailed findings for the first N rejected bots")
	)
	flag.Parse()
	logger := journal.NewLogger("botvet", os.Stderr, slog.LevelInfo)
	if *recordsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*recordsPath)
	if err != nil {
		logger.Error("open records", "err", err)
		os.Exit(1)
	}
	defer f.Close()
	records, err := dataset.ReadRecords(f)
	if err != nil {
		logger.Error("read records", "err", err)
		os.Exit(1)
	}
	logger.Info("records loaded", "count", len(records), "path", *recordsPath)

	reports, summary := vetting.VetAll(records)
	report.Vetting(os.Stdout, summary)

	shown := 0
	for _, rep := range reports {
		if rep.Verdict != vetting.Reject || shown >= *showN {
			continue
		}
		shown++
		fmt.Printf("\nREJECT %s (bot %d):\n", rep.Name, rep.BotID)
		for _, fd := range rep.Findings {
			fmt.Printf("  [%s] %s — %s\n", fd.Severity, fd.Rule, fd.Detail)
		}
	}
}
