// Command botscan runs the complete chatbot security & privacy audit
// pipeline (Figure 1 of the paper) against a freshly generated
// synthetic ecosystem: scrape the listing, analyze traceability, scan
// linked source repositories, and run the honeypot campaign. It prints
// every table and figure the paper reports.
//
// Usage:
//
//	botscan -bots 2000 -sample 100 -seed 42
//	botscan -bots 2000 -journal run.jsonl
//	botscan -bots 2000 -journal run.jsonl -ledger-mode merkle   # tamper-evident
//	botscan -bots 2000 -checkpoint-dir ckpt     # crash-safe snapshots
//	botscan -bots 2000 -checkpoint-dir ckpt -resume latest
//	botscan -bots 2000 -shards 8 -trace-out traces/run1   # per-bot tracing
//	botscan journal -file run.jsonl             # summarize a journal
//	botscan journal -file run.jsonl -timeline   # per-bot replay
//	botscan trace summary -file traces/run1/spans.jsonl   # span-log views
//	botscan trace slowest -file traces/run1/spans.jsonl -n 10
//	botscan trace critical-path -file traces/run1/spans.jsonl
//	botscan verify-ledger run.jsonl             # prove evidence integrity
//	botscan bench-ledger -out BENCH_LEDGER.json # cost of tamper-evidence
//	botscan bench-trace -out BENCH_TRACE.json   # cost of per-bot tracing
//	botscan bench-gateway -out BENCH_GATEWAY.json # traffic plane under load
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/listing"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/ops"
	bottrace "repro/internal/obs/trace"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "journal":
			journalMode(os.Args[2:])
			return
		case "verify-ledger":
			verifyLedgerMode(os.Args[2:])
			return
		case "bench-ledger":
			benchLedgerMode(os.Args[2:])
			return
		case "trace":
			traceMode(os.Args[2:])
			return
		case "bench-trace":
			benchTraceMode(os.Args[2:])
			return
		case "bench-gateway":
			benchGatewayMode(os.Args[2:])
			return
		case "soak":
			soakMode(os.Args[2:])
			return
		}
	}

	var (
		seed         = flag.Int64("seed", 2022, "ecosystem generation seed")
		bots         = flag.Int("bots", 2000, "listing population size (paper: 20915)")
		sample       = flag.Int("sample", 100, "honeypot sample size (paper: 500)")
		workers      = flag.Int("workers", 8, "scraper parallelism (sequential executor)")
		shards       = flag.Int("shards", 0, "run the sharded work-stealing executor with this many shards (0 = sequential)")
		stageWorkers = flag.Int("stage-workers", 0, "per-stage concurrency bound under -shards (0 = one per shard)")
		benchScale   = flag.String("bench-scale", "", "append this run's scheduler/throughput stats to this JSON file (requires -shards)")
		settle       = flag.Duration("settle", 500*time.Millisecond, "honeypot trigger-watch window per bot")
		defences     = flag.Bool("defences", false, "enable listing anti-scraping defences (captcha, flaky pages, rate limit)")
		fullScale    = flag.Bool("full-scale", false, "use the paper's full 20,915-bot population (slow)")
		exportDir    = flag.String("export-dir", "", "write records/code/verdicts/triggers as JSON Lines into this directory")
		metricsAddr  = flag.String("metrics-addr", "", "also serve the operational endpoints (/metrics, /healthz, /debug/pprof) on this address")
		journalPath  = flag.String("journal", "", "append every pipeline event to this JSONL journal (inspect with 'botscan journal')")
		ledgerMode   = flag.String("ledger-mode", "off", "journal tamper-evidence: off, chain (per-event hash chain), or merkle (batched roots)")
		ledgerBatch  = flag.Int("ledger-batch", 64, "merkle ledger batch size (events per committed root)")
		ledgerWait   = flag.Int("ledger-wait-ms", 50, "commit a partial ledger batch after this many milliseconds")
		faultProf    = flag.String("fault-profile", "", fmt.Sprintf("inject deterministic faults using this named profile (%s)", strings.Join(faults.Names(), ", ")))
		faultSeed    = flag.Int64("fault-seed", 1, "fault injector seed (same seed + profile replays the same fault ledger)")
		ckptDir      = flag.String("checkpoint-dir", "", "write crash-safe progress snapshots into this directory")
		ckptEvery    = flag.Int("checkpoint-every", 25, "also snapshot after this many freshly settled bots (stage boundaries always snapshot)")
		resumeRun    = flag.String("resume", "", "resume a checkpointed run: a run ID, or 'latest' (requires -checkpoint-dir)")
		breakers     = flag.Bool("breakers", false, "wrap scraper/code-host/gateway transports in per-endpoint-class circuit breakers")
		traceOut     = flag.String("trace-out", "", "write per-bot trace artifacts (spans.jsonl, trace.json, profile.json) into this directory")
		traceLevel   = flag.String("trace-level", "", "per-bot tracing level: off, bots, or full (defaults to full when -trace-out is set)")
		stageDL      = flag.Duration("stage-deadline", 0, "soft per-stage watchdog deadline (0 disables; a stalled stage is dumped and cancelled)")
		verbose      = flag.Bool("v", false, "debug-level logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := journal.NewLogger("botscan", os.Stderr, level)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	if *resumeRun != "" && *ckptDir == "" {
		fatal("resume", fmt.Errorf("-resume requires -checkpoint-dir"))
	}

	// The whole run configuration is one options literal; NewAuditor
	// resolves profile names, directories, and breaker configs into
	// live subsystems.
	reg := obs.NewRegistry()
	opts := core.Options{
		Seed:    *seed,
		NumBots: *bots,
		Scrape:  core.ScrapeOptions{Workers: *workers},
		Honeypot: core.HoneypotOptions{
			Sample:      *sample,
			Concurrency: 16,
			Settle:      *settle,
		},
		Exec: core.ExecOptions{
			Shards: *shards,
			StageWorkers: core.StageWorkers{
				Collect:  *stageWorkers,
				Code:     *stageWorkers,
				Honeypot: *stageWorkers,
			},
			StageSoftDeadline: *stageDL,
		},
		Faults:     core.FaultOptions{Profile: *faultProf, Seed: *faultSeed},
		Checkpoint: core.CheckpointOptions{Dir: *ckptDir, Every: *ckptEvery, Resume: *resumeRun},
		Breakers:   core.BreakerOptions{Enabled: *breakers},
		Obs:        reg,
	}
	if *fullScale {
		opts.NumBots = 0 // defaults to 20,915
	}
	levelName := *traceLevel
	if levelName == "" && *traceOut != "" {
		levelName = "full"
	}
	if levelName != "" {
		lvl, err := bottrace.ParseLevel(levelName)
		if err != nil {
			fatal("trace level", err)
		}
		opts.Trace.Level = lvl
	}
	if *defences {
		opts.Scrape.AntiScrape = listing.AntiScrape{
			RequestsPerSecond: 500,
			Burst:             50,
			CaptchaEvery:      200,
			FlakyEvery:        10,
		}
	}
	var j *journal.Journal
	if *journalPath != "" {
		mode, err := journal.ParseLedgerMode(*ledgerMode)
		if err != nil {
			fatal("ledger mode", err)
		}
		j, err = journal.Open(*journalPath, journal.Options{
			Obs: reg,
			// A resumed run appends to the pre-crash journal (re-anchoring
			// its hash chain on the prior segment) instead of destroying it.
			Resume: *resumeRun != "",
			Ledger: journal.LedgerOptions{
				Mode:  mode,
				Batch: *ledgerBatch,
				Wait:  time.Duration(*ledgerWait) * time.Millisecond,
			},
		})
		if err != nil {
			fatal("open journal", err)
		}
		defer j.Close()
		opts.Journal = j
		logger.Info("journal enabled", "path", *journalPath, "ledger", string(mode))
		if ls := j.Ledger(); ls.Resumed {
			logger.Info("ledger re-anchored on prior segment",
				"prior_events", ls.PriorEvents, "recovered_tail", ls.Recovered)
		}
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("listen metrics", err)
		}
		defer ln.Close()
		go http.Serve(ln, ops.Mux(reg, nil))
		logger.Info("operational endpoints up", "url", "http://"+ln.Addr().String()+"/metrics")
	}

	start := time.Now()
	a, err := core.NewAuditor(opts)
	if err != nil {
		fatal("start auditor", err)
	}
	defer a.Close()
	if opts.Faults.Profile != "" {
		logger.Info("fault injection enabled", "profile", opts.Faults.Profile, "seed", *faultSeed)
	}
	if *ckptDir != "" {
		logger.Info("checkpointing enabled", "dir", *ckptDir, "every", *ckptEvery, "resume", *resumeRun)
	}
	if *breakers {
		logger.Info("circuit breakers enabled")
	}
	logger.Info("ecosystem generated",
		"bots", len(a.Ecosystem().Bots), "listing", a.ListingURL(), "metrics", a.MetricsURL())

	res, err := a.RunAllContext(context.Background())
	if err != nil {
		fatal("pipeline", err)
	}
	res.Report(os.Stdout)
	fmt.Printf("\ntotal pipeline time: %v\n", time.Since(start).Round(time.Millisecond))
	logger.Info("pipeline complete", "run_id", res.RunID, "elapsed", time.Since(start).Round(time.Millisecond))
	if inj := a.Faults(); inj != nil {
		logger.Info("fault ledger",
			"profile", inj.Profile().Name, "faults", inj.Count(),
			"quarantined", len(res.Quarantined), "degraded", res.Degraded)
	}

	if *exportDir != "" {
		if err := exportAll(*exportDir, a, res); err != nil {
			fatal("export", err)
		}
		logger.Info("datasets written", "dir", *exportDir)
	}
	if *traceOut != "" {
		if res.BotTrace == nil {
			fatal("trace-out", fmt.Errorf("-trace-out requires a tracing level other than off"))
		}
		if err := writeTraceArtifacts(*traceOut, res.BotTrace); err != nil {
			fatal("trace-out", err)
		}
		logger.Info("trace artifacts written", "dir", *traceOut,
			"spans", res.BotTrace.Len(), "level", res.BotTrace.Level().String())
	}
	if *benchScale != "" {
		if res.Scale == nil {
			fatal("bench-scale", fmt.Errorf("-bench-scale requires -shards"))
		}
		if err := appendBenchScale(*benchScale, res.Scale); err != nil {
			fatal("bench-scale", err)
		}
		logger.Info("scale benchmark appended", "path", *benchScale, "shards", res.Scale.Shards,
			"bots_per_sec", fmt.Sprintf("%.1f", res.Scale.BotsPerSec))
	}
	// Close (idempotent with the defer) so the ledger seals before we
	// report its head — the value to note out-of-band for true
	// tamper-proofing, since a tamper-evident file alone can be
	// rewritten wholesale.
	if j != nil {
		if err := j.Close(); err != nil {
			fatal("close journal", err)
		}
		if ls := j.Ledger(); ls.Mode != "" && ls.Mode != journal.LedgerOff {
			logger.Info("ledger sealed — note the chain head out-of-band",
				"mode", string(ls.Mode), "events", ls.Seq, "records", ls.Records, "head", ls.Head)
		}
	}
}

// verifyLedgerMode is the forensic subcommand: replay a ledgered
// journal, recompute its hash chain and Merkle roots, and report either
// an intact-evidence verdict or the first unverifiable line.
func verifyLedgerMode(args []string) {
	fs := flag.NewFlagSet("botscan verify-ledger", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress the report; exit status only")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: botscan verify-ledger [-q] <journal.jsonl>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	res, err := journal.VerifyFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "botscan: verify-ledger: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		report.LedgerVerdict(os.Stdout, path, res)
	}
	if !res.OK {
		os.Exit(1)
	}
}

// benchLedgerMode measures the write-path cost of tamper-evidence: it
// replays a BENCH_SCALE-shaped synthetic event workload through a real
// journal in each ledger mode and records throughput into a JSON file
// (see EXPERIMENTS.md, LEDGER).
func benchLedgerMode(args []string) {
	fs := flag.NewFlagSet("botscan bench-ledger", flag.ExitOnError)
	var (
		out    = fs.String("out", "BENCH_LEDGER.json", "write results to this JSON file")
		events = fs.Int("events", 62745, "events per run (default ≈ 3 per bot at the paper's 20,915-bot scale)")
		batch  = fs.Int("batch", 64, "merkle batch size")
		waitMS = fs.Int("wait-ms", 50, "merkle partial-batch wait")
		reps   = fs.Int("repeats", 3, "runs per mode; the median is recorded")
	)
	fs.Parse(args)
	logger := journal.NewLogger("botscan", os.Stderr, slog.LevelInfo)
	doc, err := benchLedger(*events, *batch, *waitMS, *reps)
	if err != nil {
		logger.Error("bench-ledger", "err", err)
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		logger.Error("bench-ledger", "err", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		logger.Error("bench-ledger", "err", err)
		os.Exit(1)
	}
	for _, r := range doc.Runs {
		logger.Info("ledger bench", "mode", r.Mode, "events_per_sec", fmt.Sprintf("%.0f", r.EventsPerSec),
			"overhead_pct", fmt.Sprintf("%.1f", r.OverheadPct), "records", r.Records)
	}
	logger.Info("ledger benchmark written", "path", *out)
}

// ledgerBenchDoc is the BENCH_LEDGER.json shape.
type ledgerBenchDoc struct {
	Workload ledgerBenchWorkload `json:"workload"`
	Runs     []ledgerBenchRun    `json:"runs"`
}

type ledgerBenchWorkload struct {
	Events  int    `json:"events"`
	Batch   int    `json:"batch"`
	WaitMS  int    `json:"wait_ms"`
	Repeats int    `json:"repeats"`
	Source  string `json:"source"`
}

type ledgerBenchRun struct {
	Mode         string  `json:"mode"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Bytes        int64   `json:"journal_bytes"`
	Records      int     `json:"ledger_records"`
	OverheadPct  float64 `json:"overhead_pct_vs_off"`
}

// benchLedger runs the three-mode grid. Events mirror the pipeline's
// real mix (fetch/discovery/audit/verdict shapes) so the marshal and
// hash cost is representative, and every run writes through journal.New
// onto a real temp file so the measured path is the production one.
func benchLedger(events, batch, waitMS, reps int) (*ledgerBenchDoc, error) {
	doc := &ledgerBenchDoc{
		Workload: ledgerBenchWorkload{
			Events:  events,
			Batch:   batch,
			WaitMS:  waitMS,
			Repeats: reps,
			Source:  "BENCH_SCALE.json 20,915-bot workload, ~3 journal events per bot",
		},
	}
	var offNs float64
	for _, mode := range []journal.LedgerMode{journal.LedgerOff, journal.LedgerChain, journal.LedgerMerkle} {
		var nsSamples []float64
		var bytes int64
		var records int
		for rep := 0; rep < reps; rep++ {
			ns, b, recs, err := ledgerBenchRunOnce(mode, events, batch, waitMS)
			if err != nil {
				return nil, err
			}
			nsSamples = append(nsSamples, ns)
			bytes, records = b, recs
		}
		ns := median(nsSamples)
		run := ledgerBenchRun{
			Mode:         string(mode),
			EventsPerSec: 1e9 / ns,
			NsPerEvent:   ns,
			Bytes:        bytes,
			Records:      records,
		}
		if mode == journal.LedgerOff {
			offNs = ns
		} else if offNs > 0 {
			run.OverheadPct = 100 * (ns - offNs) / offNs
		}
		doc.Runs = append(doc.Runs, run)
	}
	return doc, nil
}

// ledgerBenchRunOnce writes the synthetic workload through one journal
// and returns ns/event, file size, and ledger record count.
func ledgerBenchRunOnce(mode journal.LedgerMode, events, batch, waitMS int) (nsPerEvent float64, size int64, records int, err error) {
	dir, err := os.MkdirTemp("", "ledgerbench")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.jsonl")
	j, err := journal.Open(path, journal.Options{
		// The buffer holds the whole workload so the comparison measures
		// the write path, never drop accounting.
		Buffer: events + 1,
		Obs:    obs.NewRegistry(),
		Ledger: journal.LedgerOptions{
			Mode:  mode,
			Batch: batch,
			Wait:  time.Duration(waitMS) * time.Millisecond,
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	shapes := benchEventShapes()
	start := time.Now()
	for i := 0; i < events; i++ {
		e := shapes[i%len(shapes)]
		e.BotID = i%20915 + 1
		j.Emit(e)
	}
	if err := j.Close(); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, 0, err
	}
	return float64(elapsed.Nanoseconds()) / float64(events), fi.Size(), j.Ledger().Records, nil
}

// benchEventShapes mirrors the stage mix a real 20,915-bot run journals
// (page fetches dominate, then policy audits, code flags, verdicts).
func benchEventShapes() []journal.Event {
	return []journal.Event{
		{Kind: journal.KindPageFetched, Component: "scraper", RunID: "bench", Fields: map[string]any{"ref": "/bot/12345", "status": 200}},
		{Kind: journal.KindPageFetched, Component: "scraper", RunID: "bench", Fields: map[string]any{"ref": "/bot/12345/policy", "status": 200}},
		{Kind: journal.KindBotDiscovered, Component: "scraper", RunID: "bench", Bot: "HelperBot", Fields: map[string]any{"perms": 8}},
		{Kind: journal.KindPolicyAudited, Component: "core", RunID: "bench", Bot: "HelperBot", Fields: map[string]any{"class": "broken", "covered": 1}},
		{Kind: journal.KindCodeFlag, Component: "codeanalysis", RunID: "bench", Fields: map[string]any{"flag": "token_exfil", "file": "bot.py"}},
		{Kind: journal.KindExperimentSettled, Component: "honeypot", RunID: "bench", ExperimentID: "hp-HelperBot", Fields: map[string]any{"verdict": "leaky", "personas": 5}},
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// appendBenchScale read-modify-writes the BENCH_SCALE.json run list so
// successive runs (different shard counts) accumulate in one file.
func appendBenchScale(path string, s *core.ScaleStats) error {
	doc := struct {
		Runs []*core.ScaleStats `json:"runs"`
	}{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("bench-scale: %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc.Runs = append(doc.Runs, s)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// writeTraceArtifacts materialises a run's tracer as the three
// -trace-out files: the JSONL span log (for `botscan trace`), the
// Chrome trace-event JSON (load trace.json in Perfetto / chrome://
// tracing), and the timing profile that seeds the scheduler.
func writeTraceArtifacts(dir string, tr *bottrace.Tracer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("spans.jsonl", tr.WriteJSONL); err != nil {
		return err
	}
	if err := write("trace.json", tr.WriteChromeTrace); err != nil {
		return err
	}
	return write("profile.json", func(w io.Writer) error {
		return bottrace.WriteProfile(w, tr.BuildProfile())
	})
}

// traceMode is the span-log inspection subcommand: decode a
// spans.jsonl written by -trace-out and render one of the four views.
func traceMode(args []string) {
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: botscan trace <summary|slowest|by-stage|critical-path> -file spans.jsonl [-n 10]")
	}
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		usage()
		os.Exit(2)
	}
	view := args[0]
	fs := flag.NewFlagSet("botscan trace "+view, flag.ExitOnError)
	var (
		file = fs.String("file", "", "span log to inspect (spans.jsonl from -trace-out; required)")
		topN = fs.Int("n", 10, "bots to list under 'slowest'")
	)
	fs.Parse(args[1:])
	logger := journal.NewLogger("botscan", os.Stderr, slog.LevelInfo)
	if *file == "" {
		usage()
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		logger.Error("open span log", "err", err)
		os.Exit(1)
	}
	defer f.Close()
	h, spans, skipped, err := bottrace.DecodeJSONL(f)
	if err != nil {
		logger.Error("decode span log", "err", err)
		os.Exit(1)
	}
	if skipped > 0 {
		logger.Warn("skipped undecodable lines", "skipped", skipped)
	}
	switch view {
	case "summary":
		report.TraceSummary(os.Stdout, bottrace.Summarize(h, spans))
	case "slowest":
		report.TraceSlowest(os.Stdout, bottrace.SlowestBots(spans, *topN))
	case "by-stage":
		report.TraceByStage(os.Stdout, bottrace.ByStage(h, spans))
	case "critical-path":
		report.TraceCriticalPath(os.Stdout, bottrace.CriticalPath(spans))
	default:
		usage()
		os.Exit(2)
	}
}

// benchTraceMode measures what per-bot tracing costs end to end: the
// real sharded pipeline runs once per level (off, bots, full) on the
// same workload and the throughput delta vs off lands in a JSON file
// (see EXPERIMENTS.md, TRACE).
func benchTraceMode(args []string) {
	fs := flag.NewFlagSet("botscan bench-trace", flag.ExitOnError)
	var (
		out    = fs.String("out", "BENCH_TRACE.json", "write results to this JSON file")
		bots   = fs.Int("bots", 0, "listing population (0 = the paper's 20,915)")
		sample = fs.Int("sample", 500, "honeypot sample size")
		shards = fs.Int("shards", 8, "sharded-executor shard count")
		settle = fs.Duration("settle", 200*time.Millisecond, "honeypot trigger-watch window per bot")
		seed   = fs.Int64("seed", 2022, "ecosystem generation seed")
		reps   = fs.Int("repeats", 1, "runs per level; the median is recorded")
		smoke  = fs.Int("smoke", 0, "smoke mode: use this small population with a scaled-down sample and settle (tier-1 CI)")
	)
	fs.Parse(args)
	logger := journal.NewLogger("botscan", os.Stderr, slog.LevelInfo)
	if *smoke > 0 {
		*bots = *smoke
		if *sample > *smoke/4 {
			*sample = *smoke / 4
		}
		if *sample < 1 {
			*sample = 1
		}
		*settle = 5 * time.Millisecond
	}
	doc, err := benchTrace(*bots, *sample, *shards, *settle, *seed, *reps)
	if err != nil {
		logger.Error("bench-trace", "err", err)
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		logger.Error("bench-trace", "err", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		logger.Error("bench-trace", "err", err)
		os.Exit(1)
	}
	for _, r := range doc.Runs {
		logger.Info("trace bench", "level", r.Level, "bots_per_sec", fmt.Sprintf("%.1f", r.BotsPerSec),
			"overhead_pct", fmt.Sprintf("%.1f", r.OverheadPct), "spans", r.Spans)
	}
	logger.Info("trace benchmark written", "path", *out)
}

// traceBenchDoc is the BENCH_TRACE.json shape.
type traceBenchDoc struct {
	Workload traceBenchWorkload `json:"workload"`
	Runs     []traceBenchRun    `json:"runs"`
}

type traceBenchWorkload struct {
	Bots     int    `json:"bots"`
	Sample   int    `json:"sample"`
	Shards   int    `json:"shards"`
	SettleMS int    `json:"settle_ms"`
	Seed     int64  `json:"seed"`
	Repeats  int    `json:"repeats"`
	Source   string `json:"source"`
}

type traceBenchRun struct {
	Level       string  `json:"level"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	BotsPerSec  float64 `json:"bots_per_sec"`
	Spans       int     `json:"spans"`
	OverheadPct float64 `json:"overhead_pct_vs_off"`
}

// benchTrace runs the three-level grid over the real sharded pipeline.
func benchTrace(bots, sample, shards int, settle time.Duration, seed int64, reps int) (*traceBenchDoc, error) {
	declared := bots
	if declared == 0 {
		declared = synth.PaperPopulation
	}
	doc := &traceBenchDoc{
		Workload: traceBenchWorkload{
			Bots: declared, Sample: sample, Shards: shards,
			SettleMS: int(settle.Milliseconds()), Seed: seed, Repeats: reps,
			Source: "full sharded pipeline, level off vs bots vs full",
		},
	}
	var offSec float64
	for _, lvl := range []bottrace.Level{bottrace.LevelOff, bottrace.LevelBots, bottrace.LevelFull} {
		var elapsed, persec []float64
		var spans int
		for rep := 0; rep < reps; rep++ {
			ems, bps, n, err := benchTraceRunOnce(lvl, bots, sample, shards, settle, seed)
			if err != nil {
				return nil, err
			}
			elapsed = append(elapsed, ems)
			persec = append(persec, bps)
			spans = n
		}
		run := traceBenchRun{
			Level:      lvl.String(),
			ElapsedMS:  median(elapsed),
			BotsPerSec: median(persec),
			Spans:      spans,
		}
		if lvl == bottrace.LevelOff {
			offSec = run.BotsPerSec
		} else if offSec > 0 {
			// Throughput loss vs the untraced run; negative means the
			// traced run was faster (noise).
			run.OverheadPct = 100 * (offSec - run.BotsPerSec) / offSec
		}
		doc.Runs = append(doc.Runs, run)
	}
	return doc, nil
}

// benchTraceRunOnce runs the pipeline once at one tracing level.
func benchTraceRunOnce(lvl bottrace.Level, bots, sample, shards int, settle time.Duration, seed int64) (elapsedMS, botsPerSec float64, spans int, err error) {
	a, err := core.NewAuditor(core.Options{
		Seed:    seed,
		NumBots: bots,
		Honeypot: core.HoneypotOptions{
			Sample:      sample,
			Concurrency: 16,
			Settle:      settle,
		},
		Exec:  core.ExecOptions{Shards: shards},
		Trace: core.TraceOptions{Level: lvl},
		Obs:   obs.NewRegistry(),
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer a.Close()
	res, err := a.RunAllContext(context.Background())
	if err != nil {
		return 0, 0, 0, err
	}
	if res.Scale == nil {
		return 0, 0, 0, fmt.Errorf("bench-trace: sharded run reported no scale stats")
	}
	return res.Scale.ElapsedMS, res.Scale.BotsPerSec, res.BotTrace.Len(), nil
}

// benchGatewayMode measures the traffic plane under load: the loadgen
// engine runs once per fault profile (none, then moderate) against the
// full overload configuration — admission cap, identify throttle,
// per-tenant request limits, bounded drop-oldest send queues, heartbeat
// reaping, and a deliberately stalled client — and records sustained
// msgs/sec plus connected sessions into BENCH_GATEWAY.json
// (see EXPERIMENTS.md, GATEWAY).
func benchGatewayMode(args []string) {
	fs := flag.NewFlagSet("botscan bench-gateway", flag.ExitOnError)
	var (
		out      = fs.String("out", "BENCH_GATEWAY.json", "write results to this JSON file")
		sessions = fs.Int("sessions", 1000, "bot sessions to connect per run")
		guilds   = fs.Int("guilds", 16, "guild count")
		users    = fs.Int("users", 30, "chatting users per guild")
		tenants  = fs.Int("tenants", 32, "distinct bot owners the fleet divides into")
		duration = fs.Duration("duration", 10*time.Second, "publishing window per run")
		msgRate  = fs.Float64("msg-rate", 40, "user messages/sec per guild")
		reqRate  = fs.Float64("req-rate", 2, "requests/sec per responder bot")
		stalled  = fs.Int("stalled", 1, "deliberately stalled clients per run")
		seed     = fs.Int64("seed", 2022, "workload and fault seed")
		smoke    = fs.Int("smoke", 0, "smoke mode: use this many sessions with a scaled-down topology and window (tier-1 CI)")
	)
	fs.Parse(args)
	logger := journal.NewLogger("botscan", os.Stderr, slog.LevelInfo)
	if *smoke > 0 {
		*sessions = *smoke
		*guilds = 4
		*users = 5
		*tenants = 4
		*duration = 1500 * time.Millisecond
		*msgRate = 20
	}
	doc, err := benchGateway(*sessions, *guilds, *users, *tenants, *stalled, *duration, *msgRate, *reqRate, *seed, logger)
	if err != nil {
		logger.Error("bench-gateway", "err", err)
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		logger.Error("bench-gateway", "err", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		logger.Error("bench-gateway", "err", err)
		os.Exit(1)
	}
	logger.Info("gateway benchmark written", "path", *out)
}

// gatewayBenchDoc is the BENCH_GATEWAY.json shape.
type gatewayBenchDoc struct {
	Workload gatewayBenchWorkload `json:"workload"`
	Runs     []*loadgen.Result    `json:"runs"`
}

type gatewayBenchWorkload struct {
	Sessions           int     `json:"sessions"`
	Guilds             int     `json:"guilds"`
	UsersPerGuild      int     `json:"users_per_guild"`
	Tenants            int     `json:"tenants"`
	Stalled            int     `json:"stalled_clients"`
	DurationMS         int     `json:"duration_ms"`
	MsgRate            float64 `json:"msg_rate_per_guild"`
	ReqRate            float64 `json:"req_rate_per_responder"`
	MaxSessions        int     `json:"max_sessions"`
	IdentifyRPS        float64 `json:"identify_rps"`
	TenantRPS          float64 `json:"tenant_rps"`
	SendQueue          int     `json:"send_queue"`
	SlowConsumer       string  `json:"slow_consumer"`
	WriteTimeoutMS     int     `json:"write_timeout_ms"`
	HeartbeatTimeoutMS int     `json:"heartbeat_timeout_ms"`
	Seed               int64   `json:"seed"`
	Source             string  `json:"source"`
}

// benchGateway runs the clean-network baseline and then the moderate
// fault profile over the same topology and overload knobs.
func benchGateway(sessions, guilds, users, tenants, stalled int, duration time.Duration,
	msgRate, reqRate float64, seed int64, logger *slog.Logger) (*gatewayBenchDoc, error) {
	limits := gateway.Limits{
		// Headroom above the fleet so the bench measures sustained
		// throughput at full strength; the dial storm itself is paced by
		// the identify throttle (shed dials retry on the server's hint).
		MaxSessions:      sessions + stalled + 16,
		IdentifyRPS:      400,
		IdentifyBurst:    200,
		TenantRPS:        10,
		TenantBurst:      20,
		SendQueue:        128,
		SlowConsumer:     gateway.SlowDropOldest,
		WriteTimeout:     2 * time.Second,
		HeartbeatTimeout: 10 * time.Second,
	}
	doc := &gatewayBenchDoc{
		Workload: gatewayBenchWorkload{
			Sessions: sessions, Guilds: guilds, UsersPerGuild: users, Tenants: tenants,
			Stalled: stalled, DurationMS: int(duration.Milliseconds()),
			MsgRate: msgRate, ReqRate: reqRate,
			MaxSessions: limits.MaxSessions, IdentifyRPS: limits.IdentifyRPS,
			TenantRPS: limits.TenantRPS, SendQueue: limits.SendQueue,
			SlowConsumer:       limits.SlowConsumer.String(),
			WriteTimeoutMS:     int(limits.WriteTimeout.Milliseconds()),
			HeartbeatTimeoutMS: int(limits.HeartbeatTimeout.Milliseconds()),
			Seed:               seed,
			Source:             "live TCP fleet via internal/loadgen, profile none vs moderate",
		},
	}
	for _, profile := range []string{"none", "moderate"} {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Guilds:        guilds,
			UsersPerGuild: users,
			Sessions:      sessions,
			Tenants:       tenants,
			Stalled:       stalled,
			Duration:      duration,
			MsgRate:       msgRate,
			ReqRate:       reqRate,
			FaultProfile:  profile,
			FaultSeed:     seed,
			Limits:        limits,
			Seed:          seed,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...), "profile", profile)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("bench-gateway: profile %s: %w", profile, err)
		}
		if res.Delivered == 0 {
			return nil, fmt.Errorf("bench-gateway: profile %s delivered no events", profile)
		}
		logger.Info("gateway bench",
			"profile", profile,
			"sessions", fmt.Sprintf("%d/%d", res.SessionsConnected, res.SessionsTarget),
			"msgs_per_sec", fmt.Sprintf("%.1f", res.PublishedPerSec),
			"delivered_per_sec", fmt.Sprintf("%.1f", res.DeliveredPerSec),
			"delivery_ratio", fmt.Sprintf("%.3f", res.DeliveryRatio),
			"shed", res.Shed, "dropped", res.EventsDropped, "reaped", res.Reaped)
		doc.Runs = append(doc.Runs, res)
	}
	return doc, nil
}

// journalMode is the inspection subcommand: decode a journal written by
// a previous run, filter it, and render either the aggregate summary or
// the per-bot replay timeline.
func journalMode(args []string) {
	fs := flag.NewFlagSet("botscan journal", flag.ExitOnError)
	var (
		file      = fs.String("file", "", "journal JSONL file to inspect (required)")
		timeline  = fs.Bool("timeline", false, "render the per-bot replay timeline instead of the summary")
		kind      = fs.String("kind", "", "only events of this kind (e.g. permission_denied)")
		component = fs.String("component", "", "only events from this component (e.g. honeypot)")
		botName   = fs.String("bot", "", "only events correlated to this bot name")
		botID     = fs.Int("botid", 0, "only events correlated to this listing ID")
		runID     = fs.String("run", "", "only events from this run ID")
	)
	fs.Parse(args)
	logger := journal.NewLogger("botscan", os.Stderr, slog.LevelInfo)
	if *file == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		logger.Error("open journal", "err", err)
		os.Exit(1)
	}
	defer f.Close()
	events, skipped, err := journal.Decode(f)
	if err != nil {
		logger.Error("decode journal", "err", err)
		os.Exit(1)
	}
	if skipped > 0 {
		logger.Warn("skipped undecodable lines", "skipped", skipped)
	}
	events = journal.Filter(events, journal.Query{
		Kind:      journal.Kind(*kind),
		Component: *component,
		Bot:       *botName,
		BotID:     *botID,
		RunID:     *runID,
	})
	if *timeline {
		report.JournalTimeline(os.Stdout, events)
		return
	}
	report.JournalSummary(os.Stdout, journal.Summarize(events))
}

// exportAll snapshots every stage's output as JSON Lines.
func exportAll(dir string, a *core.Auditor, res *core.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("records.jsonl", func(f *os.File) error {
		return dataset.WriteRecords(f, res.Records)
	}); err != nil {
		return err
	}
	if err := write("code.jsonl", func(f *os.File) error {
		return dataset.WriteCodeAnalyses(f, res.Analyses)
	}); err != nil {
		return err
	}
	if err := write("verdicts.jsonl", func(f *os.File) error {
		return dataset.WriteVerdicts(f, res.Honeypot.Verdicts)
	}); err != nil {
		return err
	}
	return write("triggers.jsonl", func(f *os.File) error {
		return dataset.WriteTriggers(f, a.CanaryTriggers())
	})
}
