// Command botscan runs the complete chatbot security & privacy audit
// pipeline (Figure 1 of the paper) against a freshly generated
// synthetic ecosystem: scrape the listing, analyze traceability, scan
// linked source repositories, and run the honeypot campaign. It prints
// every table and figure the paper reports.
//
// Usage:
//
//	botscan -bots 2000 -sample 100 -seed 42
//	botscan -bots 2000 -journal run.jsonl
//	botscan -bots 2000 -checkpoint-dir ckpt     # crash-safe snapshots
//	botscan -bots 2000 -checkpoint-dir ckpt -resume latest
//	botscan journal -file run.jsonl             # summarize a journal
//	botscan journal -file run.jsonl -timeline   # per-bot replay
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/listing"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/ops"
	"repro/internal/report"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "journal" {
		journalMode(os.Args[2:])
		return
	}

	var (
		seed         = flag.Int64("seed", 2022, "ecosystem generation seed")
		bots         = flag.Int("bots", 2000, "listing population size (paper: 20915)")
		sample       = flag.Int("sample", 100, "honeypot sample size (paper: 500)")
		workers      = flag.Int("workers", 8, "scraper parallelism (sequential executor)")
		shards       = flag.Int("shards", 0, "run the sharded work-stealing executor with this many shards (0 = sequential)")
		stageWorkers = flag.Int("stage-workers", 0, "per-stage concurrency bound under -shards (0 = one per shard)")
		benchScale   = flag.String("bench-scale", "", "append this run's scheduler/throughput stats to this JSON file (requires -shards)")
		settle       = flag.Duration("settle", 500*time.Millisecond, "honeypot trigger-watch window per bot")
		defences     = flag.Bool("defences", false, "enable listing anti-scraping defences (captcha, flaky pages, rate limit)")
		fullScale    = flag.Bool("full-scale", false, "use the paper's full 20,915-bot population (slow)")
		exportDir    = flag.String("export-dir", "", "write records/code/verdicts/triggers as JSON Lines into this directory")
		metricsAddr  = flag.String("metrics-addr", "", "also serve the operational endpoints (/metrics, /healthz, /debug/pprof) on this address")
		journalPath  = flag.String("journal", "", "append every pipeline event to this JSONL journal (inspect with 'botscan journal')")
		faultProf    = flag.String("fault-profile", "", fmt.Sprintf("inject deterministic faults using this named profile (%s)", strings.Join(faults.Names(), ", ")))
		faultSeed    = flag.Int64("fault-seed", 1, "fault injector seed (same seed + profile replays the same fault ledger)")
		ckptDir      = flag.String("checkpoint-dir", "", "write crash-safe progress snapshots into this directory")
		ckptEvery    = flag.Int("checkpoint-every", 25, "also snapshot after this many freshly settled bots (stage boundaries always snapshot)")
		resumeRun    = flag.String("resume", "", "resume a checkpointed run: a run ID, or 'latest' (requires -checkpoint-dir)")
		breakers     = flag.Bool("breakers", false, "wrap scraper/code-host/gateway transports in per-endpoint-class circuit breakers")
		stageDL      = flag.Duration("stage-deadline", 0, "soft per-stage watchdog deadline (0 disables; a stalled stage is dumped and cancelled)")
		verbose      = flag.Bool("v", false, "debug-level logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := journal.NewLogger("botscan", os.Stderr, level)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	if *resumeRun != "" && *ckptDir == "" {
		fatal("resume", fmt.Errorf("-resume requires -checkpoint-dir"))
	}

	// The whole run configuration is one options literal; NewAuditor
	// resolves profile names, directories, and breaker configs into
	// live subsystems.
	reg := obs.NewRegistry()
	opts := core.Options{
		Seed:    *seed,
		NumBots: *bots,
		Scrape:  core.ScrapeOptions{Workers: *workers},
		Honeypot: core.HoneypotOptions{
			Sample:      *sample,
			Concurrency: 16,
			Settle:      *settle,
		},
		Exec: core.ExecOptions{
			Shards: *shards,
			StageWorkers: core.StageWorkers{
				Collect:  *stageWorkers,
				Code:     *stageWorkers,
				Honeypot: *stageWorkers,
			},
			StageSoftDeadline: *stageDL,
		},
		Faults:     core.FaultOptions{Profile: *faultProf, Seed: *faultSeed},
		Checkpoint: core.CheckpointOptions{Dir: *ckptDir, Every: *ckptEvery, Resume: *resumeRun},
		Breakers:   core.BreakerOptions{Enabled: *breakers},
		Obs:        reg,
	}
	if *fullScale {
		opts.NumBots = 0 // defaults to 20,915
	}
	if *defences {
		opts.Scrape.AntiScrape = listing.AntiScrape{
			RequestsPerSecond: 500,
			Burst:             50,
			CaptchaEvery:      200,
			FlakyEvery:        10,
		}
	}
	if *journalPath != "" {
		j, err := journal.Open(*journalPath, journal.Options{Obs: reg})
		if err != nil {
			fatal("open journal", err)
		}
		defer j.Close()
		opts.Journal = j
		logger.Info("journal enabled", "path", *journalPath)
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("listen metrics", err)
		}
		defer ln.Close()
		go http.Serve(ln, ops.Mux(reg, nil))
		logger.Info("operational endpoints up", "url", "http://"+ln.Addr().String()+"/metrics")
	}

	start := time.Now()
	a, err := core.NewAuditor(opts)
	if err != nil {
		fatal("start auditor", err)
	}
	defer a.Close()
	if opts.Faults.Profile != "" {
		logger.Info("fault injection enabled", "profile", opts.Faults.Profile, "seed", *faultSeed)
	}
	if *ckptDir != "" {
		logger.Info("checkpointing enabled", "dir", *ckptDir, "every", *ckptEvery, "resume", *resumeRun)
	}
	if *breakers {
		logger.Info("circuit breakers enabled")
	}
	logger.Info("ecosystem generated",
		"bots", len(a.Ecosystem().Bots), "listing", a.ListingURL(), "metrics", a.MetricsURL())

	res, err := a.RunAllContext(context.Background())
	if err != nil {
		fatal("pipeline", err)
	}
	res.Report(os.Stdout)
	fmt.Printf("\ntotal pipeline time: %v\n", time.Since(start).Round(time.Millisecond))
	logger.Info("pipeline complete", "run_id", res.RunID, "elapsed", time.Since(start).Round(time.Millisecond))
	if inj := a.Faults(); inj != nil {
		logger.Info("fault ledger",
			"profile", inj.Profile().Name, "faults", inj.Count(),
			"quarantined", len(res.Quarantined), "degraded", res.Degraded)
	}

	if *exportDir != "" {
		if err := exportAll(*exportDir, a, res); err != nil {
			fatal("export", err)
		}
		logger.Info("datasets written", "dir", *exportDir)
	}
	if *benchScale != "" {
		if res.Scale == nil {
			fatal("bench-scale", fmt.Errorf("-bench-scale requires -shards"))
		}
		if err := appendBenchScale(*benchScale, res.Scale); err != nil {
			fatal("bench-scale", err)
		}
		logger.Info("scale benchmark appended", "path", *benchScale, "shards", res.Scale.Shards,
			"bots_per_sec", fmt.Sprintf("%.1f", res.Scale.BotsPerSec))
	}
}

// appendBenchScale read-modify-writes the BENCH_SCALE.json run list so
// successive runs (different shard counts) accumulate in one file.
func appendBenchScale(path string, s *core.ScaleStats) error {
	doc := struct {
		Runs []*core.ScaleStats `json:"runs"`
	}{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("bench-scale: %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc.Runs = append(doc.Runs, s)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// journalMode is the inspection subcommand: decode a journal written by
// a previous run, filter it, and render either the aggregate summary or
// the per-bot replay timeline.
func journalMode(args []string) {
	fs := flag.NewFlagSet("botscan journal", flag.ExitOnError)
	var (
		file      = fs.String("file", "", "journal JSONL file to inspect (required)")
		timeline  = fs.Bool("timeline", false, "render the per-bot replay timeline instead of the summary")
		kind      = fs.String("kind", "", "only events of this kind (e.g. permission_denied)")
		component = fs.String("component", "", "only events from this component (e.g. honeypot)")
		botName   = fs.String("bot", "", "only events correlated to this bot name")
		botID     = fs.Int("botid", 0, "only events correlated to this listing ID")
		runID     = fs.String("run", "", "only events from this run ID")
	)
	fs.Parse(args)
	logger := journal.NewLogger("botscan", os.Stderr, slog.LevelInfo)
	if *file == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		logger.Error("open journal", "err", err)
		os.Exit(1)
	}
	defer f.Close()
	events, skipped, err := journal.Decode(f)
	if err != nil {
		logger.Error("decode journal", "err", err)
		os.Exit(1)
	}
	if skipped > 0 {
		logger.Warn("skipped undecodable lines", "skipped", skipped)
	}
	events = journal.Filter(events, journal.Query{
		Kind:      journal.Kind(*kind),
		Component: *component,
		Bot:       *botName,
		BotID:     *botID,
		RunID:     *runID,
	})
	if *timeline {
		report.JournalTimeline(os.Stdout, events)
		return
	}
	report.JournalSummary(os.Stdout, journal.Summarize(events))
}

// exportAll snapshots every stage's output as JSON Lines.
func exportAll(dir string, a *core.Auditor, res *core.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("records.jsonl", func(f *os.File) error {
		return dataset.WriteRecords(f, res.Records)
	}); err != nil {
		return err
	}
	if err := write("code.jsonl", func(f *os.File) error {
		return dataset.WriteCodeAnalyses(f, res.Analyses)
	}); err != nil {
		return err
	}
	if err := write("verdicts.jsonl", func(f *os.File) error {
		return dataset.WriteVerdicts(f, res.Honeypot.Verdicts)
	}); err != nil {
		return err
	}
	return write("triggers.jsonl", func(f *os.File) error {
		return dataset.WriteTriggers(f, a.CanaryTriggers())
	})
}
