// Command botscan runs the complete chatbot security & privacy audit
// pipeline (Figure 1 of the paper) against a freshly generated
// synthetic ecosystem: scrape the listing, analyze traceability, scan
// linked source repositories, and run the honeypot campaign. It prints
// every table and figure the paper reports.
//
// Usage:
//
//	botscan -bots 2000 -sample 100 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/listing"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("botscan: ")

	var (
		seed        = flag.Int64("seed", 2022, "ecosystem generation seed")
		bots        = flag.Int("bots", 2000, "listing population size (paper: 20915)")
		sample      = flag.Int("sample", 100, "honeypot sample size (paper: 500)")
		workers     = flag.Int("workers", 8, "scraper parallelism")
		settle      = flag.Duration("settle", 500*time.Millisecond, "honeypot trigger-watch window per bot")
		defences    = flag.Bool("defences", false, "enable listing anti-scraping defences (captcha, flaky pages, rate limit)")
		fullScale   = flag.Bool("full-scale", false, "use the paper's full 20,915-bot population (slow)")
		exportDir   = flag.String("export-dir", "", "write records/code/verdicts/triggers as JSON Lines into this directory")
		metricsAddr = flag.String("metrics-addr", "", "also serve the observability registry on this address (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()

	opts := core.Options{
		Seed:                *seed,
		NumBots:             *bots,
		ScrapeWorkers:       *workers,
		HoneypotSample:      *sample,
		HoneypotConcurrency: 16,
		HoneypotSettle:      *settle,
	}
	if *fullScale {
		opts.NumBots = 0 // defaults to 20,915
	}
	if *defences {
		opts.AntiScrape = listing.AntiScrape{
			RequestsPerSecond: 500,
			Burst:             50,
			CaptchaEvery:      200,
			FlakyEvery:        10,
		}
	}

	reg := obs.NewRegistry()
	opts.Obs = reg
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go http.Serve(ln, mux)
		log.Printf("metrics at http://%s/metrics", ln.Addr())
	}

	start := time.Now()
	a, err := core.NewAuditor(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	log.Printf("ecosystem of %d bots generated; listing at %s (metrics at %s)", len(a.Ecosystem().Bots), a.ListingURL(), a.MetricsURL())

	res, err := a.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	res.Report(os.Stdout)
	fmt.Printf("\ntotal pipeline time: %v\n", time.Since(start).Round(time.Millisecond))

	if *exportDir != "" {
		if err := exportAll(*exportDir, a, res); err != nil {
			log.Fatal(err)
		}
		log.Printf("datasets written to %s", *exportDir)
	}
}

// exportAll snapshots every stage's output as JSON Lines.
func exportAll(dir string, a *core.Auditor, res *core.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("records.jsonl", func(f *os.File) error {
		return dataset.WriteRecords(f, res.Records)
	}); err != nil {
		return err
	}
	if err := write("code.jsonl", func(f *os.File) error {
		return dataset.WriteCodeAnalyses(f, res.Analyses)
	}); err != nil {
		return err
	}
	if err := write("verdicts.jsonl", func(f *os.File) error {
		return dataset.WriteVerdicts(f, res.Honeypot.Verdicts)
	}); err != nil {
		return err
	}
	return write("triggers.jsonl", func(f *os.File) error {
		return dataset.WriteTriggers(f, a.CanaryTriggers())
	})
}
