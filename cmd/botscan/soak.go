package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/report"
	"repro/internal/soak"
	"repro/internal/soak/invariant"
)

// soakMode runs the invariant-checked chaos soak: the full pipeline
// plus loadgen traffic against one live gateway under a phased fault
// schedule, reconciled by the invariant checker afterwards. Exit 0
// means every invariant holds; exit 1 names the first inconsistent
// artifact; exit 2 is a usage error.
func soakMode(args []string) {
	fs := flag.NewFlagSet("botscan soak", flag.ExitOnError)
	var (
		schedFile = fs.String("schedule", "", "phased chaos schedule JSON (see internal/soak/schedules)")
		smoke     = fs.Bool("smoke", false, "run the bundled ~30s smoke schedule (tier-1 CI)")
		full      = fs.Bool("full", false, "run the bundled full schedule (the BENCH_SOAK.json workload)")
		dir       = fs.String("dir", "", "artifact directory for journal/checkpoints/soak.json (default: a temp dir)")
		out       = fs.String("out", "", "also write the soak outcome to this JSON file (e.g. BENCH_SOAK.json)")
		check     = fs.String("check", "", "post-hoc mode: re-verify a prior soak's artifact directory and exit")

		seed      = fs.Int64("seed", 42, "ecosystem and fault seed")
		bots      = fs.Int("bots", 0, "listing population (default 600)")
		sample    = fs.Int("sample", 0, "honeypot sample (default 80)")
		shards    = fs.Int("shards", 0, "sharded executor width (default 4)")
		settle    = fs.Duration("settle", 0, "honeypot trigger-watch window (default 400ms)")
		ckptEvery = fs.Int("checkpoint-every", 0, "settled bots between snapshots (default 5)")

		sessions = fs.Int("sessions", 0, "loadgen bot sessions (default 32)")
		guilds   = fs.Int("guilds", 0, "loadgen guilds (default 4)")
		users    = fs.Int("users", 0, "chatting users per loadgen guild (default 8)")
		tenants  = fs.Int("tenants", 0, "distinct loadgen bot owners (default 4)")
		msgRate  = fs.Float64("msg-rate", 0, "user messages/sec per loadgen guild (default 30)")
		quiet    = fs.Bool("q", false, "suppress progress logging")
	)
	fs.Parse(args)

	if *check != "" {
		rep, err := invariant.CheckDir(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "botscan soak: %v\n", err)
			os.Exit(1)
		}
		for _, c := range rep.Checks {
			mark := "ok  "
			if !c.OK {
				mark = "FAIL"
			}
			fmt.Printf("%s  %-26s %s\n", mark, c.Name, c.Detail)
		}
		if !rep.OK {
			fmt.Fprintf(os.Stderr, "botscan soak: %s\n", rep.First)
			os.Exit(1)
		}
		fmt.Printf("all %d invariants hold\n", len(rep.Checks))
		return
	}

	var sched *soak.Schedule
	switch {
	case *schedFile != "":
		f, err := os.Open(*schedFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "botscan soak: %v\n", err)
			os.Exit(2)
		}
		sched, err = soak.DecodeSchedule(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "botscan soak: %v\n", err)
			os.Exit(2)
		}
	case *smoke:
		sched = soak.Smoke()
	case *full:
		sched = soak.Full()
	default:
		fmt.Fprintln(os.Stderr, "usage: botscan soak (-schedule <file> | -smoke | -full) [-dir out] [-out BENCH_SOAK.json]")
		fmt.Fprintln(os.Stderr, "       botscan soak -check <dir>")
		os.Exit(2)
	}

	adir := *dir
	if adir == "" {
		var err error
		adir, err = os.MkdirTemp("", "soak-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "botscan soak: %v\n", err)
			os.Exit(1)
		}
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	start := time.Now()
	outcome, err := soak.Run(context.Background(), soak.Options{
		Schedule:        sched,
		Dir:             adir,
		Seed:            *seed,
		NumBots:         *bots,
		Sample:          *sample,
		Shards:          *shards,
		Settle:          *settle,
		CheckpointEvery: *ckptEvery,
		Sessions:        *sessions,
		Guilds:          *guilds,
		UsersPerGuild:   *users,
		Tenants:         *tenants,
		MsgRate:         *msgRate,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "botscan soak: %v\n", err)
		os.Exit(1)
	}

	report.SoakVerdict(os.Stdout, outcome.ReportData())
	fmt.Printf("artifacts: %s (%.1fs)\n", adir, time.Since(start).Seconds())

	if *out != "" {
		raw, err := json.MarshalIndent(outcome, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "botscan soak: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "botscan soak: %v\n", err)
			os.Exit(1)
		}
	}
	if !outcome.OK() {
		fmt.Fprintf(os.Stderr, "botscan soak: %s\n", outcome.Invariants.First)
		os.Exit(1)
	}
}
