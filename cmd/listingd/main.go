// Command listingd serves a standalone top.gg-style chatbot listing
// over a synthetic population, with configurable anti-scraping
// defences. Point a browser or the scraper at it. The operational
// surface (/metrics, /healthz, /readyz, /debug/pprof) is mounted on the
// same listener.
//
// Usage:
//
//	listingd -addr 127.0.0.1:8080 -bots 500 -captcha-every 100
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"

	"repro/internal/listing"
	"repro/internal/obs/journal"
	"repro/internal/obs/ops"
	"repro/internal/synth"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed         = flag.Int64("seed", 2022, "population seed")
		bots         = flag.Int("bots", 500, "population size")
		rps          = flag.Float64("rps", 0, "per-client requests/second (0 = unlimited)")
		captchaEvery = flag.Int("captcha-every", 0, "challenge a client every N requests (0 = never)")
		flakyEvery   = flag.Int("flaky-every", 0, "one in N detail pages is flaky on first render (0 = never)")
	)
	flag.Parse()
	logger := journal.NewLogger("listingd", os.Stderr, slog.LevelInfo)

	eco := synth.Generate(synth.Config{Seed: *seed, NumBots: *bots})
	srv, err := listing.NewServer(listing.NewDirectory(eco.Bots), listing.AntiScrape{
		RequestsPerSecond: *rps,
		CaptchaEvery:      *captchaEvery,
		FlakyEvery:        *flakyEvery,
	}, *addr)
	if err != nil {
		logger.Error("start listing server", "err", err)
		os.Exit(1)
	}
	defer srv.Close()
	ops.Mount(srv, nil, nil)
	logger.Info("serving", "bots", *bots, "url", srv.BaseURL(),
		"catalog", srv.BaseURL()+"/bots", "health", srv.BaseURL()+"/healthz")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	logger.Info("shutting down", "requests", srv.Requests())
}
