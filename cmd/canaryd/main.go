// Command canaryd runs a standalone canary trigger service and streams
// every trigger to stdout. Mint tokens with the printed base URL.
//
// Usage:
//
//	canaryd -addr 127.0.0.1:9000
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"repro/internal/canary"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("canaryd: ")

	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	demo := flag.Bool("demo", false, "mint a demo token set and print the artifacts' trigger URLs")
	flag.Parse()

	svc, err := canary.NewService(*addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	log.Printf("trigger service at %s", svc.BaseURL())

	if *demo {
		m := svc.NewMinter("canary.local", nil)
		for _, tok := range m.MintSet("demo-guild") {
			switch tok.Kind {
			case canary.KindEmail:
				log.Printf("minted %-5s token %s -> address %s", tok.Kind, tok.ID, tok.Address)
			default:
				log.Printf("minted %-5s token %s -> %s", tok.Kind, tok.ID, tok.TriggerURL)
			}
		}
	}

	go func() {
		for trg := range svc.Watch() {
			log.Printf("TRIGGER kind=%s guild=%s token=%s via=%s ip=%s",
				trg.Kind, trg.GuildTag, trg.TokenID, trg.Via, trg.RemoteIP)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("%d triggers recorded", len(svc.Triggers()))
}
