// Command canaryd runs a standalone canary trigger service and streams
// every trigger to stdout. Mint tokens with the printed base URL. The
// operational surface (/metrics, /healthz, /readyz, /debug/pprof) is
// mounted alongside the trigger endpoints, and -journal records every
// attributed trigger as a canary_triggered event.
//
// Usage:
//
//	canaryd -addr 127.0.0.1:9000
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"

	"repro/internal/canary"
	"repro/internal/obs/journal"
	"repro/internal/obs/ops"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	demo := flag.Bool("demo", false, "mint a demo token set and print the artifacts' trigger URLs")
	journalPath := flag.String("journal", "", "append canary_triggered events to this JSONL journal")
	flag.Parse()
	logger := journal.NewLogger("canaryd", os.Stderr, slog.LevelInfo)

	svc, err := canary.NewService(*addr, nil)
	if err != nil {
		logger.Error("start trigger service", "err", err)
		os.Exit(1)
	}
	defer svc.Close()
	ops.Mount(svc, nil, nil)
	if *journalPath != "" {
		j, err := journal.Open(*journalPath, journal.Options{})
		if err != nil {
			logger.Error("open journal", "err", err)
			os.Exit(1)
		}
		defer j.Close()
		svc.SetJournal(j)
		logger.Info("journal enabled", "path", *journalPath)
	}
	logger.Info("trigger service up", "url", svc.BaseURL())

	if *demo {
		m := svc.NewMinter("canary.local", nil)
		for _, tok := range m.MintSet("demo-guild") {
			switch tok.Kind {
			case canary.KindEmail:
				logger.Info("minted token", "kind", tok.Kind.String(), "id", tok.ID, "address", tok.Address)
			default:
				logger.Info("minted token", "kind", tok.Kind.String(), "id", tok.ID, "url", tok.TriggerURL)
			}
		}
	}

	go func() {
		for trg := range svc.Watch() {
			logger.Info("trigger",
				"kind", trg.Kind.String(), "guild", trg.GuildTag,
				"token", trg.TokenID, "via", trg.Via, "ip", trg.RemoteIP)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	logger.Info("shutting down", "triggers", len(svc.Triggers()))
}
