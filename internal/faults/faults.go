// Package faults is the chaos substrate for the pipeline: a
// deterministic, seedable fault injector that wraps the synthetic
// ecosystem's HTTP services (listing server, code host) as handler
// middleware or an http.RoundTripper, and the gateway's event pump as a
// frame-level fault policy.
//
// Every decision is a pure function of (seed, endpoint key, nth request
// to that endpoint): the same seed and profile reproduce the same fault
// schedule byte for byte, which is what lets chaos tests assert an
// exact degradation ledger instead of a statistical one. The injector
// records every fault it fires; Log and WriteLedger expose the record
// in a canonical order for cross-run comparison.
package faults

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// Kind names one injectable failure mode.
type Kind string

const (
	// KindServerError replaces the response with a 503.
	KindServerError Kind = "server_error"
	// KindConnReset tears the TCP connection down mid-request.
	KindConnReset Kind = "conn_reset"
	// KindTruncatedBody declares the full Content-Length but sends only
	// half the body, so clients see io.ErrUnexpectedEOF.
	KindTruncatedBody Kind = "truncated_body"
	// KindStall holds the request far beyond client timeouts before
	// answering.
	KindStall Kind = "stall"
	// KindLatency adds a small fixed delay, then serves normally.
	KindLatency Kind = "latency"
	// KindGatewayDropFrame silently drops one gateway event frame.
	KindGatewayDropFrame Kind = "gw_drop_frame"
	// KindGatewayDisconnect closes a gateway session mid-stream.
	KindGatewayDisconnect Kind = "gw_disconnect"
)

// ErrInjectedReset is the transport error surfaced by the RoundTripper
// for KindConnReset faults.
var ErrInjectedReset = errors.New("faults: injected connection reset")

// Rates holds per-kind fault probabilities for HTTP traffic. They are
// walked cumulatively in declaration order, so at most one fault fires
// per request and the sum must stay ≤ 1.
type Rates struct {
	ServerError   float64
	ConnReset     float64
	TruncatedBody float64
	Stall         float64
	Latency       float64
}

func (r Rates) total() float64 {
	return r.ServerError + r.ConnReset + r.TruncatedBody + r.Stall + r.Latency
}

// Profile is a named chaos level: default HTTP rates, optional
// per-endpoint overrides (longest path-prefix match wins), and
// gateway-side frame fault rates.
type Profile struct {
	Name    string
	Default Rates
	// PerEndpoint overrides Default for request paths matching a prefix.
	PerEndpoint map[string]Rates
	// StallFor is how long a KindStall fault holds the request (default 2s).
	StallFor time.Duration
	// ExtraLatency is the delay a KindLatency fault adds (default 5ms).
	ExtraLatency time.Duration
	// GatewayDropFrame and GatewayDisconnect are per-frame probabilities
	// applied by EventFault, walked cumulatively (drop first).
	GatewayDropFrame  float64
	GatewayDisconnect float64
}

// Named returns a built-in profile by name. The vocabulary:
//
//   - none:     all rates zero — a wired injector that never fires.
//   - mild:     ~5% retryable HTTP faults plus light latency.
//   - moderate: ~15% retryable HTTP faults, 10% latency, light gateway
//     frame loss — the CI chaos level.
//   - storm:    ~30% HTTP faults including stalls past client timeouts,
//     heavier gateway loss.
func Named(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("faults: unknown profile %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// Names lists the built-in profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var profiles = map[string]Profile{
	"none": {Name: "none"},
	"mild": {
		Name:         "mild",
		Default:      Rates{ServerError: 0.03, ConnReset: 0.01, TruncatedBody: 0.01, Latency: 0.05},
		ExtraLatency: 5 * time.Millisecond,
	},
	"moderate": {
		Name:              "moderate",
		Default:           Rates{ServerError: 0.09, ConnReset: 0.03, TruncatedBody: 0.03, Latency: 0.10},
		ExtraLatency:      5 * time.Millisecond,
		GatewayDropFrame:  0.02,
		GatewayDisconnect: 0.01,
	},
	"storm": {
		Name:              "storm",
		Default:           Rates{ServerError: 0.15, ConnReset: 0.06, TruncatedBody: 0.05, Stall: 0.04, Latency: 0.15},
		StallFor:          2 * time.Second,
		ExtraLatency:      10 * time.Millisecond,
		GatewayDropFrame:  0.05,
		GatewayDisconnect: 0.03,
	},
}

// Fault is one fired fault, as recorded in the degradation ledger.
// Endpoint is "METHOD uri" for HTTP faults and "GW bot" for gateway
// frame faults; Attempt is the 1-based index of that request among all
// requests to the same endpoint.
type Fault struct {
	Endpoint string `json:"endpoint"`
	Attempt  int    `json:"attempt"`
	Kind     Kind   `json:"kind"`
}

// Options wires the injector into the observability plane.
type Options struct {
	Obs     *obs.Registry
	Journal *journal.Journal
}

// Injector decides, injects, and records faults. All methods are safe
// for concurrent use; a nil *Injector is a valid no-op.
type Injector struct {
	seed int64

	cTotal  *obs.Counter
	cByKind map[Kind]*obs.Counter

	mu       sync.Mutex
	prof     Profile
	jnl      *journal.Journal
	attempts map[string]int
	log      []Fault
}

// New builds an injector for a profile and seed. Equal (profile, seed)
// pairs produce identical fault schedules for identical request
// sequences.
func New(prof Profile, seed int64, opts Options) *Injector {
	if prof.StallFor <= 0 {
		prof.StallFor = 2 * time.Second
	}
	if prof.ExtraLatency <= 0 {
		prof.ExtraLatency = 5 * time.Millisecond
	}
	reg := obs.Or(opts.Obs)
	inj := &Injector{
		prof:     prof,
		seed:     seed,
		jnl:      opts.Journal,
		cTotal:   reg.Counter("faults_injected_total"),
		cByKind:  make(map[Kind]*obs.Counter),
		attempts: make(map[string]int),
	}
	for _, k := range []Kind{KindServerError, KindConnReset, KindTruncatedBody, KindStall, KindLatency, KindGatewayDropFrame, KindGatewayDisconnect} {
		inj.cByKind[k] = reg.Counter("faults_injected_" + string(k) + "_total")
	}
	return inj
}

// Profile reports the profile the injector runs.
func (i *Injector) Profile() Profile {
	if i == nil {
		return Profile{Name: "none"}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.prof
}

// SetProfile swaps the active profile at runtime — the soak conductor's
// ramp knob. Attempt counters are NOT reset, so decisions stay a pure
// function of (seed, endpoint key, attempt) within each profile window.
// Safe for concurrent use; a nil injector ignores the call.
func (i *Injector) SetProfile(prof Profile) {
	if i == nil {
		return
	}
	if prof.StallFor <= 0 {
		prof.StallFor = 2 * time.Second
	}
	if prof.ExtraLatency <= 0 {
		prof.ExtraLatency = 5 * time.Millisecond
	}
	i.mu.Lock()
	i.prof = prof
	i.mu.Unlock()
}

// SetJournal re-points fault-event emission at a new journal — needed
// when a kill/resume harness reopens the journal between run segments.
func (i *Injector) SetJournal(j *journal.Journal) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.jnl = j
	i.mu.Unlock()
}

// profile snapshots the active profile under the lock.
func (i *Injector) profile() Profile {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.prof
}

// exemptPrefixes are operational surfaces the injector never touches:
// health and metrics must stay honest under chaos, and the captcha
// endpoint is part of the anti-scraping defence, not the network.
var exemptPrefixes = []string{"/metrics", "/healthz", "/readyz", "/debug/", "/captcha"}

func exempt(path string) bool {
	for _, p := range exemptPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// ratesFor resolves the effective rates for a path: the longest
// matching PerEndpoint prefix, else the profile default.
func (i *Injector) ratesFor(path string) Rates {
	prof := i.profile()
	r := prof.Default
	best := -1
	for prefix, pr := range prof.PerEndpoint {
		if strings.HasPrefix(path, prefix) && len(prefix) > best {
			best = len(prefix)
			r = pr
		}
	}
	return r
}

// hashFloat maps (seed, key, attempt) to a uniform draw in [0, 1).
func hashFloat(seed int64, key string, attempt int) float64 {
	h := fnv.New64a()
	var b [8]byte
	for n := 0; n < 8; n++ {
		b[n] = byte(seed >> (8 * n))
	}
	h.Write(b[:])
	io.WriteString(h, key)
	h.Write([]byte{'#'})
	io.WriteString(h, strconv.Itoa(attempt))
	// FNV alone has weak avalanche on trailing-byte changes, which is
	// exactly what sequential attempt indices are — finalize with a
	// murmur3-style mixer so consecutive attempts draw uniformly.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(uint64(1)<<53)
}

// decide assigns the next attempt index for key and picks at most one
// fault kind by walking thresholds against the deterministic draw.
func (i *Injector) decide(key string, thresholds []struct {
	k    Kind
	rate float64
}) (Kind, int) {
	i.mu.Lock()
	attempt := i.attempts[key] + 1
	i.attempts[key] = attempt
	i.mu.Unlock()

	draw := hashFloat(i.seed, key, attempt)
	acc := 0.0
	for _, t := range thresholds {
		acc += t.rate
		if t.rate > 0 && draw < acc {
			i.record(Fault{Endpoint: key, Attempt: attempt, Kind: t.k})
			return t.k, attempt
		}
	}
	return "", attempt
}

func (i *Injector) record(f Fault) {
	i.mu.Lock()
	i.log = append(i.log, f)
	jnl := i.jnl
	i.mu.Unlock()
	i.cTotal.Inc()
	if c, ok := i.cByKind[f.Kind]; ok {
		c.Inc()
	}
	jnl.Emit(journal.Event{
		Kind:      journal.KindFaultInjected,
		Component: "faults",
		Fields: map[string]any{
			"endpoint": f.Endpoint,
			"attempt":  f.Attempt,
			"fault":    string(f.Kind),
		},
	})
}

// httpDecide picks a fault for one HTTP request.
func (i *Injector) httpDecide(method, uri, path string) (Kind, int) {
	r := i.ratesFor(path)
	return i.decide(method+" "+uri, []struct {
		k    Kind
		rate float64
	}{
		{KindServerError, r.ServerError},
		{KindConnReset, r.ConnReset},
		{KindTruncatedBody, r.TruncatedBody},
		{KindStall, r.Stall},
		{KindLatency, r.Latency},
	})
}

// EventFault decides the fate of one gateway event frame destined for
// bot: drop it, or tear the session down. It satisfies the gateway's
// FaultPolicy interface without the gateway importing this package.
func (i *Injector) EventFault(bot string) (drop, disconnect bool) {
	if i == nil {
		return false, false
	}
	prof := i.profile()
	if prof.GatewayDropFrame <= 0 && prof.GatewayDisconnect <= 0 {
		return false, false
	}
	kind, _ := i.decide("GW "+bot, []struct {
		k    Kind
		rate float64
	}{
		{KindGatewayDropFrame, prof.GatewayDropFrame},
		{KindGatewayDisconnect, prof.GatewayDisconnect},
	})
	switch kind {
	case KindGatewayDropFrame:
		return true, false
	case KindGatewayDisconnect:
		return false, true
	}
	return false, false
}

// Middleware wraps an http.Handler with fault injection. Operational
// endpoints (/metrics, /healthz, /readyz, /debug/, /captcha) pass
// through untouched and are not counted.
func (i *Injector) Middleware(next http.Handler) http.Handler {
	if i == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		kind, _ := i.httpDecide(r.Method, r.URL.RequestURI(), r.URL.Path)
		switch kind {
		case KindServerError:
			http.Error(w, "injected fault: server_error", http.StatusServiceUnavailable)
		case KindConnReset:
			abortConn(w)
		case KindTruncatedBody:
			i.serveTruncated(w, r, next)
		case KindStall:
			select {
			case <-time.After(i.profile().StallFor):
			case <-r.Context().Done():
				return
			}
			next.ServeHTTP(w, r)
		case KindLatency:
			select {
			case <-time.After(i.profile().ExtraLatency):
			case <-r.Context().Done():
				return
			}
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// abortConn kills the underlying TCP connection without a response.
func abortConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// serveTruncated captures the real response, declares its full length,
// and sends only the first half, so the client's body read fails with
// io.ErrUnexpectedEOF.
func (i *Injector) serveTruncated(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := &captureWriter{header: make(http.Header), code: http.StatusOK}
	next.ServeHTTP(rec, r)
	body := rec.buf.Bytes()
	if len(body) < 2 {
		abortConn(w)
		return
	}
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.code)
	w.Write(body[:len(body)/2])
	// Returning with fewer bytes written than declared makes net/http
	// sever the connection, which is exactly the failure we want.
}

type captureWriter struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (c *captureWriter) Header() http.Header { return c.header }
func (c *captureWriter) WriteHeader(code int) {
	c.code = code
}
func (c *captureWriter) Write(p []byte) (int, error) { return c.buf.Write(p) }

// RoundTripper wraps a client-side transport with the same fault
// vocabulary, for callers that cannot interpose on the server. next nil
// means http.DefaultTransport.
func (i *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	if i == nil {
		return next
	}
	return roundTripper{inj: i, next: next}
}

type roundTripper struct {
	inj  *Injector
	next http.RoundTripper
}

func (t roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if exempt(req.URL.Path) {
		return t.next.RoundTrip(req)
	}
	kind, _ := t.inj.httpDecide(req.Method, req.URL.RequestURI(), req.URL.Path)
	switch kind {
	case KindServerError:
		body := "injected fault: server_error\n"
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case KindConnReset:
		return nil, ErrInjectedReset
	case KindTruncatedBody:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || len(data) < 2 {
			return nil, ErrInjectedReset
		}
		resp.Body = io.NopCloser(io.MultiReader(
			bytes.NewReader(data[:len(data)/2]),
			errReader{io.ErrUnexpectedEOF},
		))
		resp.ContentLength = int64(len(data))
		return resp, nil
	case KindStall:
		select {
		case <-time.After(t.inj.profile().StallFor):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)
	case KindLatency:
		select {
		case <-time.After(t.inj.profile().ExtraLatency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)
	default:
		return t.next.RoundTrip(req)
	}
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// Count reports the number of faults fired so far.
func (i *Injector) Count() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.log)
}

// Log returns the fault record in canonical order (endpoint, attempt,
// kind) — the shape compared across runs for determinism.
func (i *Injector) Log() []Fault {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	out := make([]Fault, len(i.log))
	copy(out, i.log)
	i.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Endpoint != out[b].Endpoint {
			return out[a].Endpoint < out[b].Endpoint
		}
		if out[a].Attempt != out[b].Attempt {
			return out[a].Attempt < out[b].Attempt
		}
		return out[a].Kind < out[b].Kind
	})
	return out
}

// WriteLedger writes the canonical fault ledger as text, one fault per
// line. Equal seeds and profiles produce byte-identical ledgers.
func (i *Injector) WriteLedger(w io.Writer) error {
	for _, f := range i.Log() {
		if _, err := fmt.Fprintf(w, "%s #%d %s\n", f.Endpoint, f.Attempt, f.Kind); err != nil {
			return err
		}
	}
	return nil
}
