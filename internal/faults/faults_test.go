package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, string(b), err
}

func TestLedgerDeterminism(t *testing.T) {
	prof := Profile{
		Name:    "test",
		Default: Rates{ServerError: 0.2, ConnReset: 0.1, TruncatedBody: 0.1},
	}
	run := func() string {
		inj := New(prof, 99, Options{Obs: obs.NewRegistry()})
		for n := 0; n < 50; n++ {
			inj.httpDecide("GET", "/bots?page=1", "/bots")
			inj.httpDecide("GET", "/bot/7", "/bot/7")
			inj.EventFault("melonian")
		}
		var buf bytes.Buffer
		if err := inj.WriteLedger(&buf); err != nil {
			t.Fatalf("WriteLedger: %v", err)
		}
		return buf.String()
	}
	// EventFault with zero gateway rates must not consume decisions.
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed+profile produced different ledgers:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("20%+ rates over 100 requests fired no faults — decision logic broken")
	}

	// A different seed must (for this pair) give a different schedule.
	inj2 := New(prof, 100, Options{Obs: obs.NewRegistry()})
	for n := 0; n < 50; n++ {
		inj2.httpDecide("GET", "/bots?page=1", "/bots")
		inj2.httpDecide("GET", "/bot/7", "/bot/7")
	}
	var buf2 bytes.Buffer
	inj2.WriteLedger(&buf2)
	if buf2.String() == a {
		t.Fatal("different seeds produced identical ledgers")
	}
}

func TestMiddlewareServerError(t *testing.T) {
	// Rate 1.0 → every request takes the fault.
	inj := New(Profile{Default: Rates{ServerError: 1}}, 1, Options{Obs: obs.NewRegistry()})
	srv := httptest.NewServer(inj.Middleware(okHandler("hello")))
	defer srv.Close()

	resp, body, err := get(t, srv.Client(), srv.URL+"/page")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "server_error") {
		t.Fatalf("body = %q", body)
	}
	if inj.Count() != 1 {
		t.Fatalf("Count = %d, want 1", inj.Count())
	}
}

func TestMiddlewareConnReset(t *testing.T) {
	inj := New(Profile{Default: Rates{ConnReset: 1}}, 1, Options{Obs: obs.NewRegistry()})
	srv := httptest.NewServer(inj.Middleware(okHandler("hello")))
	defer srv.Close()

	_, _, err := get(t, srv.Client(), srv.URL+"/page")
	if err == nil {
		t.Fatal("expected a transport error from the injected reset")
	}
}

func TestMiddlewareTruncatedBody(t *testing.T) {
	inj := New(Profile{Default: Rates{TruncatedBody: 1}}, 1, Options{Obs: obs.NewRegistry()})
	srv := httptest.NewServer(inj.Middleware(okHandler(strings.Repeat("x", 4096))))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/page")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (truncation hits the body, not the status)", resp.StatusCode)
	}
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("reading a truncated body should fail")
	}
}

func TestMiddlewareLatencyStillServes(t *testing.T) {
	inj := New(Profile{Default: Rates{Latency: 1}, ExtraLatency: 10 * time.Millisecond}, 1, Options{Obs: obs.NewRegistry()})
	srv := httptest.NewServer(inj.Middleware(okHandler("hello")))
	defer srv.Close()

	start := time.Now()
	resp, body, err := get(t, srv.Client(), srv.URL+"/page")
	if err != nil || resp.StatusCode != http.StatusOK || body != "hello" {
		t.Fatalf("latency fault must still serve: %v %v %q", err, resp, body)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("no added latency observed")
	}
}

func TestMiddlewareExemptPaths(t *testing.T) {
	inj := New(Profile{Default: Rates{ServerError: 1}}, 1, Options{Obs: obs.NewRegistry()})
	srv := httptest.NewServer(inj.Middleware(okHandler("ok")))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/healthz", "/readyz", "/debug/pprof/", "/captcha?x=1"} {
		resp, body, err := get(t, srv.Client(), srv.URL+path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK || body != "ok" {
			t.Fatalf("exempt path %s was faulted: %d %q", path, resp.StatusCode, body)
		}
	}
	if inj.Count() != 0 {
		t.Fatalf("exempt traffic was recorded: Count = %d", inj.Count())
	}
}

func TestRoundTripperFaults(t *testing.T) {
	srv := httptest.NewServer(okHandler(strings.Repeat("y", 1024)))
	defer srv.Close()

	// server_error: synthesized 503, no request reaches the server.
	inj := New(Profile{Default: Rates{ServerError: 1}}, 1, Options{Obs: obs.NewRegistry()})
	client := &http.Client{Transport: inj.RoundTripper(nil)}
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}

	// conn_reset: transport error carrying the sentinel.
	inj = New(Profile{Default: Rates{ConnReset: 1}}, 1, Options{Obs: obs.NewRegistry()})
	client = &http.Client{Transport: inj.RoundTripper(nil)}
	_, err = client.Get(srv.URL + "/x")
	if err == nil || !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}

	// truncated_body: 200 whose body read dies halfway.
	inj = New(Profile{Default: Rates{TruncatedBody: 1}}, 1, Options{Obs: obs.NewRegistry()})
	client = &http.Client{Transport: inj.RoundTripper(nil)}
	resp, err = client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("body read err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestStallRespectsClientTimeout(t *testing.T) {
	inj := New(Profile{Default: Rates{Stall: 1}, StallFor: 5 * time.Second}, 1, Options{Obs: obs.NewRegistry()})
	srv := httptest.NewServer(inj.Middleware(okHandler("hello")))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/page", nil)
	start := time.Now()
	_, err := srv.Client().Do(req)
	if err == nil {
		t.Fatal("expected a timeout against a stalled endpoint")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("stall ignored the client's context (took %v)", time.Since(start))
	}
}

func TestPerEndpointOverrides(t *testing.T) {
	prof := Profile{
		Default:     Rates{},
		PerEndpoint: map[string]Rates{"/bot/": {ServerError: 1}},
	}
	inj := New(prof, 1, Options{Obs: obs.NewRegistry()})
	srv := httptest.NewServer(inj.Middleware(okHandler("ok")))
	defer srv.Close()

	resp, _, err := get(t, srv.Client(), srv.URL+"/bots?page=0")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("default-rate path faulted: %v %v", err, resp)
	}
	resp, _, err = get(t, srv.Client(), srv.URL+"/bot/3")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("per-endpoint override not applied: status = %d", resp.StatusCode)
	}
}

func TestNamedProfiles(t *testing.T) {
	for _, name := range Names() {
		p, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("profile %q carries name %q", name, p.Name)
		}
		if total := p.Default.total(); total > 1 {
			t.Fatalf("profile %q rates sum to %v > 1", name, total)
		}
	}
	if _, err := Named("hurricane"); err == nil {
		t.Fatal("unknown profile must error")
	}
	none, _ := Named("none")
	inj := New(none, 1, Options{Obs: obs.NewRegistry()})
	for n := 0; n < 200; n++ {
		if k, _ := inj.httpDecide("GET", "/bots", "/bots"); k != "" {
			t.Fatalf("none profile fired %s", k)
		}
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	h := inj.Middleware(okHandler("ok"))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, body, err := get(t, srv.Client(), srv.URL+"/p")
	if err != nil || resp.StatusCode != 200 || body != "ok" {
		t.Fatalf("nil middleware altered behavior: %v %v %q", err, resp, body)
	}
	if drop, disc := inj.EventFault("x"); drop || disc {
		t.Fatal("nil EventFault fired")
	}
	if inj.Count() != 0 || inj.Log() != nil {
		t.Fatal("nil injector has state")
	}
}

func TestGatewayEventFaults(t *testing.T) {
	inj := New(Profile{GatewayDropFrame: 0.5, GatewayDisconnect: 0.25}, 7, Options{Obs: obs.NewRegistry()})
	drops, disconnects := 0, 0
	for n := 0; n < 400; n++ {
		drop, disc := inj.EventFault("bot-a")
		if drop {
			drops++
		}
		if disc {
			disconnects++
		}
		if drop && disc {
			t.Fatal("one frame drew two faults")
		}
	}
	if drops < 100 || drops > 300 {
		t.Fatalf("drop rate off: %d/400 at p=0.5", drops)
	}
	if disconnects < 40 || disconnects > 180 {
		t.Fatalf("disconnect rate off: %d/400 at p=0.25", disconnects)
	}
	if inj.Count() != drops+disconnects {
		t.Fatalf("ledger size %d != fired %d", inj.Count(), drops+disconnects)
	}
}
