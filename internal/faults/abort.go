package faults

import "sync/atomic"

// AbortInjector simulates a SIGKILL-style process death at a chosen
// point: the Nth Tick fires the abort exactly once. Unlike the HTTP and
// gateway fault kinds, an abort is not absorbed by retries — it models
// the whole process disappearing, which is what the checkpoint/resume
// layer exists to survive.
//
// The chaos harness wires Tick to checkpoint writes (via the store's
// AfterSave hook) and fire to the run context's cancel: the "kill"
// lands immediately after a snapshot reached disk, the exact moment a
// real crash is recoverable from.
type AbortInjector struct {
	at    int64 // fire on the at-th tick (1-based)
	ticks atomic.Int64
	fired atomic.Bool
	fire  func()
}

// NewAbort builds an injector that invokes fire on the at-th Tick.
// at <= 0 never fires (a disabled injector, like a nil one).
func NewAbort(at int, fire func()) *AbortInjector {
	return &AbortInjector{at: int64(at), fire: fire}
}

// Tick counts one abort opportunity and fires the abort when the
// configured point is reached. Safe for concurrent use; the abort runs
// exactly once. A nil injector never fires.
func (a *AbortInjector) Tick() {
	if a == nil || a.at <= 0 {
		return
	}
	if a.ticks.Add(1) == a.at && a.fired.CompareAndSwap(false, true) {
		a.fire()
	}
}

// Fired reports whether the abort has gone off.
func (a *AbortInjector) Fired() bool {
	return a != nil && a.fired.Load()
}

// Ticks reports how many opportunities have been counted so far.
func (a *AbortInjector) Ticks() int {
	if a == nil {
		return 0
	}
	return int(a.ticks.Load())
}
