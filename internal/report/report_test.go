package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/codeanalysis"
	"repro/internal/honeypot"
	"repro/internal/obs/journal"
	"repro/internal/permissions"
	"repro/internal/scraper"
	"repro/internal/traceability"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Headers: []string{"a", "longer-header"},
	}
	tb.AddRow("wide-cell-content", "x")
	tb.AddRow("y", "z")
	var buf bytes.Buffer
	tb.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	// All table rows have equal width.
	w := len(lines[1])
	for _, ln := range lines[2:] {
		if len(ln) != w {
			t.Errorf("misaligned row %q (want width %d)", ln, w)
		}
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Errorf("missing title: %q", lines[0])
	}
}

func TestFigure3Rendering(t *testing.T) {
	dist := []scraper.PermissionShare{
		{Perm: permissions.SendMessages, Count: 59, Pct: 59.18},
		{Perm: permissions.Administrator, Count: 54, Pct: 54.86},
	}
	var buf bytes.Buffer
	Figure3(&buf, dist)
	out := buf.String()
	if !strings.Contains(out, "send messages") || !strings.Contains(out, "59.18%") {
		t.Errorf("figure missing series:\n%s", out)
	}
	// Bars scale with percentage: send messages bar longer than admin's.
	var sendBar, adminBar int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		if strings.Contains(line, "send messages") {
			sendBar = n
		}
		if strings.Contains(line, "administrator") {
			adminBar = n
		}
	}
	if sendBar <= adminBar {
		t.Errorf("bar lengths wrong: send=%d admin=%d", sendBar, adminBar)
	}
}

func TestTable1Rendering(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, map[string]int{"a#1": 1, "b#2": 1, "c#3": 2})
	out := buf.String()
	if !strings.Contains(out, "66.67%") {
		t.Errorf("one-bot developer share missing:\n%s", out)
	}
	if !strings.Contains(out, "| 2") {
		t.Errorf("two-bot row missing:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	var buf bytes.Buffer
	d := Table2Data{ActiveBots: 200, WebsiteLink: 74, PolicyLink: 9, PolicyValid: 8}
	d.Traceability = traceability.Result{Total: 200, Broken: 192, Partial: 8}
	Table2(&buf, d)
	out := buf.String()
	for _, want := range []string{"Unique active chatbots", "37.00%", "4.50%", "4.00%", "broken 192 (96.00%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
	// Zero-division safety.
	var empty bytes.Buffer
	Table2(&empty, Table2Data{})
	if !strings.Contains(empty.String(), "0%") {
		t.Error("empty Table 2 should render 0%")
	}
}

func TestTable3AndTaxonomyRendering(t *testing.T) {
	res := &codeanalysis.Result{
		ActiveBots: 100, WithLink: 20,
		Outcomes:   map[codeanalysis.LinkOutcome]int{codeanalysis.OutcomeValidRepo: 12, codeanalysis.OutcomeDead: 8},
		ByLanguage: map[string]int{"JavaScript": 6, "Python": 4, "": 2},
		JSAnalyzed: 6, JSChecked: 4, PyAnalyzed: 4, PyChecked: 0,
		PatternHits: map[string]int{".has(": 3, "userPermissions": 1},
	}
	var buf bytes.Buffer
	Table3(&buf, res)
	CodeTaxonomy(&buf, res)
	out := buf.String()
	for _, want := range []string{
		".hasPermission(", "userPermissions", "66.67%", "0.00%",
		"valid repositories: 12 (60.00% of links)",
		"no identifiable code: 2",
		"language JavaScript",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("code report missing %q:\n%s", want, out)
		}
	}
}

func TestScrapeYieldRendering(t *testing.T) {
	records := []*scraper.Record{
		{ID: 1, PermsValid: true},
		{ID: 2, InvalidReason: scraper.InvalidRemoved},
		{ID: 3, InvalidReason: scraper.InvalidTimeout},
		nil,
	}
	var buf bytes.Buffer
	ScrapeYield(&buf, records)
	out := buf.String()
	if !strings.Contains(out, "3 bots collected") {
		t.Errorf("yield header wrong:\n%s", out)
	}
	if !strings.Contains(out, "removed") || !strings.Contains(out, "slow-redirect-timeout") {
		t.Errorf("invalid causes missing:\n%s", out)
	}
}

func TestHoneypotRendering(t *testing.T) {
	res := &honeypot.CampaignResult{
		Tested: 10,
		GiveawayMessages: map[string][]string{
			"Melonian": {"wtf is this bro"},
		},
	}
	v := &honeypot.Verdict{
		Subject:  honeypot.Subject{Name: "Melonian"},
		GuildTag: "hp-Melonian", Triggered: true,
	}
	res.Triggered = append(res.Triggered, v)
	var buf bytes.Buffer
	Honeypot(&buf, res)
	out := buf.String()
	for _, want := range []string{"10 bots tested", "Melonian", "wtf is this bro"} {
		if !strings.Contains(out, want) {
			t.Errorf("honeypot report missing %q:\n%s", want, out)
		}
	}
}

func TestLedgerVerdictRendering(t *testing.T) {
	var buf bytes.Buffer
	LedgerVerdict(&buf, "run.jsonl", journal.VerifyResult{
		OK: true, Mode: journal.LedgerMerkle,
		Lines: 110, Events: 100, Records: 10, Batches: 8, Segments: 2,
		Sealed: true, Head: "abc123",
	})
	out := buf.String()
	for _, want := range []string{"OK", "merkle", "100", "2 segment(s)", "abc123", "out-of-band"} {
		if !strings.Contains(out, want) {
			t.Errorf("verdict report missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	LedgerVerdict(&buf, "run.jsonl", journal.VerifyResult{
		OK: false, Mode: journal.LedgerChain,
		Err: "line 7: chain mismatch", FirstBad: 7, BadEnd: 7,
	})
	out = buf.String()
	for _, want := range []string{"FAILED", "chain mismatch", "First unverifiable line: 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("failure report missing %q:\n%s", want, out)
		}
	}

	// Chain mode's blast radius is one event plus its record, so the
	// event line is reported exactly even when BadEnd is the record.
	buf.Reset()
	LedgerVerdict(&buf, "run.jsonl", journal.VerifyResult{
		OK: false, Mode: journal.LedgerChain,
		Err: "line 43: chain mismatch", FirstBad: 42, BadEnd: 43,
	})
	out = buf.String()
	if !strings.Contains(out, "First unverifiable line: 42") {
		t.Errorf("chain mode did not pinpoint the exact line:\n%s", out)
	}

	buf.Reset()
	LedgerVerdict(&buf, "run.jsonl", journal.VerifyResult{
		OK: false, Mode: journal.LedgerMerkle,
		Err: "line 20: merkle root mismatch", FirstBad: 12, BadEnd: 20, Uncovered: 3,
	})
	out = buf.String()
	if !strings.Contains(out, "[12, 20]") || !strings.Contains(out, "uncovered tail") {
		t.Errorf("batch blast radius missing:\n%s", out)
	}
}
