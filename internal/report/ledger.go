package report

import (
	"fmt"
	"io"

	"repro/internal/obs/journal"
)

// LedgerVerdict renders a ledger verification outcome — the output of
// `botscan verify-ledger` — as a human-readable verdict plus the
// accounting a forensic reader wants: how much evidence the chain
// covers, across how many segments, and where the chain head to anchor
// out-of-band sits. On failure it prints the first unverifiable line
// (exact in chain mode, batch-bounded in merkle mode) and why.
func LedgerVerdict(w io.Writer, path string, res journal.VerifyResult) {
	t := &Table{
		Title:   fmt.Sprintf("Ledger verification: %s", path),
		Headers: []string{"Field", "Value"},
	}
	verdict := "FAILED"
	if res.OK {
		verdict = "OK"
	}
	t.AddRow("verdict", verdict)
	if res.Mode != "" {
		t.AddRow("mode", string(res.Mode))
	}
	t.AddRow("lines", fmt.Sprintf("%d", res.Lines))
	t.AddRow("events covered", fmt.Sprintf("%d", res.Events))
	t.AddRow("ledger records", fmt.Sprintf("%d (%d batches)", res.Records, res.Batches))
	t.AddRow("segments", fmt.Sprintf("%d", res.Segments))
	t.AddRow("sealed", fmt.Sprintf("%v", res.Sealed))
	if res.Uncovered > 0 {
		t.AddRow("uncovered tail", fmt.Sprintf("%d lines", res.Uncovered))
	}
	if res.Head != "" {
		t.AddRow("chain head", res.Head)
	}
	if res.AnchorChecked {
		if res.AnchorOK {
			t.AddRow("external anchor", "matches")
		} else {
			t.AddRow("external anchor", "MISMATCH")
		}
		if res.AnchorHead != "" {
			t.AddRow("anchored head", fmt.Sprintf("%s (seq %d)", res.AnchorHead, res.AnchorSeq))
		}
	}
	t.Render(w)

	if res.OK {
		fmt.Fprintf(w, "Evidence intact: %d events across %d segment(s), chain head %s\n",
			res.Events, res.Segments, res.Head)
		if res.AnchorChecked {
			fmt.Fprintln(w, "External anchor side file confirms the sealed head.")
		} else {
			fmt.Fprintln(w, "Note the chain head out-of-band; the ledger is tamper-evident, not tamper-proof.")
		}
		return
	}
	if res.AnchorChecked && !res.AnchorOK && res.Err == "" {
		// The file replays cleanly but disagrees with its external
		// commitment — a wholesale rewrite, not in-file damage.
		fmt.Fprintf(w, "Evidence NOT verifiable (external anchor): %s\n", res.AnchorErr)
		return
	}
	fmt.Fprintf(w, "Evidence NOT verifiable: %s\n", res.Err)
	if res.AnchorChecked && !res.AnchorOK {
		fmt.Fprintf(w, "External anchor also disagrees: %s\n", res.AnchorErr)
	} else if res.AnchorChecked && res.AnchorOK {
		fmt.Fprintln(w, "External anchor matches the recomputed head: damage is in-file, not a rewrite.")
	}
	if res.FirstBad > 0 {
		// Chain mode commits every event individually, so the blast
		// radius is one event plus its record — FirstBad IS the line.
		if res.FirstBad == res.BadEnd || res.Mode == journal.LedgerChain {
			fmt.Fprintf(w, "First unverifiable line: %d\n", res.FirstBad)
		} else {
			fmt.Fprintf(w, "First unverifiable line in [%d, %d] (re-run in chain mode for per-line pinpointing)\n", res.FirstBad, res.BadEnd)
		}
	}
}
