package report

import (
	"fmt"
	"io"

	"repro/internal/loadgen"
)

// GatewayLoad renders one load-generation run as the human-facing
// counterpart of the BENCH_GATEWAY.json record.
func GatewayLoad(w io.Writer, r *loadgen.Result) {
	fmt.Fprintf(w, "GATEWAY LOAD — profile=%s\n", r.Profile)
	fmt.Fprintf(w, "  topology    %d guilds × %d users, %d/%d sessions connected (%d alive at end, %d stalled)\n",
		r.Guilds, r.UsersPerGuild, r.SessionsConnected, r.SessionsTarget, r.SessionsAliveEnd, r.StalledClients)
	fmt.Fprintf(w, "  traffic     %.0f msgs/s published → %.0f events/s delivered (%.1f%% of ideal fan-out) over %.1fs\n",
		r.PublishedPerSec, r.DeliveredPerSec, 100*r.DeliveryRatio, r.DurationMS/1000)
	fmt.Fprintf(w, "  requests    %d ok, %d failed, %d throttled (%d tenant-level)\n",
		r.RequestsOK, r.RequestsFailed, r.Throttled, r.TenantThrottled)
	fmt.Fprintf(w, "  degradation %d shed, %d shed dials, %d events dropped, %d sub drops, %d slow-consumer disconnects, %d reaped, %d reconnects, %d faults\n",
		r.Shed, r.ShedDials, r.EventsDropped, r.SubDropped, r.SlowDisconnects, r.Reaped, r.Reconnects, r.FaultsInjected)
	if r.Shed > 0 {
		fmt.Fprintf(w, "  shed by     %d max_sessions, %d identify_rate, %d tenant_rate\n",
			r.ShedMaxSessions, r.ShedIdentifyRate, r.ShedTenantRate)
	}
}
