// Package report renders the pipeline's results in the shape of the
// paper's tables and figures: plain-text tables and horizontal bar
// charts suitable for terminals and for EXPERIMENTS.md diffs.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/codeanalysis"
	"repro/internal/honeypot"
	"repro/internal/obs"
	"repro/internal/policygen"
	"repro/internal/scraper"
	"repro/internal/traceability"
	"repro/internal/vetting"
)

// Table is a simple text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table, column-aligned.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Figure3 renders the permission-distribution bar chart from scraped
// records — the paper's Figure 3.
func Figure3(w io.Writer, dist []scraper.PermissionShare) {
	fmt.Fprintln(w, "Figure 3: Percentage distribution of permissions requested by chatbots")
	maxName := 0
	for _, d := range dist {
		if n := len(d.Perm.Name()); n > maxName {
			maxName = n
		}
	}
	for _, d := range dist {
		bars := int(d.Pct / 2) // 50 chars == 100%
		fmt.Fprintf(w, "  %s %s %6.2f%% (%d)\n",
			pad(d.Perm.Name(), maxName), pad(strings.Repeat("#", bars), 30), d.Pct, d.Count)
	}
}

// Table1 renders the bots-per-developer distribution. developers maps
// developer tags to their bot counts.
func Table1(w io.Writer, botsPerDev map[string]int) {
	counts := make(map[int]int) // k bots -> number of developers
	total := 0
	for _, k := range botsPerDev {
		counts[k]++
		total++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	t := &Table{
		Title:   "Table 1: Bots distribution by number of developers",
		Headers: []string{"No of Bots", "Developers (No.)", "Developers (%)"},
	}
	for _, k := range keys {
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", counts[k]),
			fmt.Sprintf("%.2f%%", 100*float64(counts[k])/float64(total)))
	}
	t.Render(w)
}

// Table2Data carries the traceability counts of the paper's Table 2.
type Table2Data struct {
	ActiveBots   int
	WebsiteLink  int
	PolicyLink   int
	PolicyValid  int
	Traceability traceability.Result
}

// Table2 renders the Discord traceability results.
func Table2(w io.Writer, d Table2Data) {
	pct := func(n int) string {
		if d.ActiveBots == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(d.ActiveBots))
	}
	t := &Table{
		Title:   "Table 2: Discord Traceability Results",
		Headers: []string{"Features", "Count", "Percent"},
	}
	t.AddRow("Unique active chatbots", fmt.Sprintf("%d", d.ActiveBots), "100%")
	t.AddRow("Website Link", fmt.Sprintf("%d", d.WebsiteLink), pct(d.WebsiteLink))
	t.AddRow("Privacy Policy Link", fmt.Sprintf("%d", d.PolicyLink), pct(d.PolicyLink))
	t.AddRow("Privacy Policy", fmt.Sprintf("%d", d.PolicyValid), pct(d.PolicyValid))
	t.Render(w)
	fmt.Fprintf(w, "Disclosure classes: broken %d (%.2f%%), partial %d, complete %d\n",
		d.Traceability.Broken, d.Traceability.BrokenPct(),
		d.Traceability.Partial, d.Traceability.Complete)
}

// DataTypes renders the ontology-based exposure-vs-disclosure audit —
// the refinement of Table 2 this reproduction adds (the paper's §5
// notes existing ontologies miss this ecosystem's data types).
func DataTypes(w io.Writer, r *traceability.DataTypeResult) {
	fmt.Fprintf(w, "Data-type audit (ontology): %d bots; %d (%.2f%%) mention every data type they expose\n",
		r.Bots, r.FullyAccounted(), pctOf(r.FullyAccounted(), r.Bots))
	t := &Table{Headers: []string{"Data type", "Exposed (bots)", "Mentioned (bots)"}}
	keys := make([]string, 0, len(r.ExposedByData))
	for dt := range r.ExposedByData {
		keys = append(keys, string(dt))
	}
	sort.Slice(keys, func(i, j int) bool {
		return r.ExposedByData[policyDataType(keys[i])] > r.ExposedByData[policyDataType(keys[j])]
	})
	for _, k := range keys {
		dt := policyDataType(k)
		t.AddRow(k, fmt.Sprintf("%d", r.ExposedByData[dt]), fmt.Sprintf("%d", r.MentionedByData[dt]))
	}
	t.Render(w)
}

func pctOf(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}

func policyDataType(s string) policygen.DataType { return policygen.DataType(s) }

// Table3 renders the permission-check API hit counts plus the
// per-language check rates from §4.2.
func Table3(w io.Writer, res *codeanalysis.Result) {
	t := &Table{
		Title:   "Table 3: Permission/role checks found in JavaScript & Python",
		Headers: []string{"Check API", "Repos containing it"},
	}
	for _, p := range codeanalysis.Table3Patterns {
		t.AddRow(p.Name, fmt.Sprintf("%d", res.PatternHits[p.Name]))
	}
	t.Render(w)
	fmt.Fprintf(w, "JavaScript: %d analyzed, %d (%.2f%%) perform checks\n",
		res.JSAnalyzed, res.JSChecked, 100*res.CheckRate("JavaScript"))
	fmt.Fprintf(w, "Python:     %d analyzed, %d (%.2f%%) perform checks\n",
		res.PyAnalyzed, res.PyChecked, 100*res.CheckRate("Python"))
}

// CodeTaxonomy renders the §4.2 GitHub-link yield text statistics.
func CodeTaxonomy(w io.Writer, res *codeanalysis.Result) {
	pctOf := func(n, of int) string {
		if of == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(of))
	}
	fmt.Fprintf(w, "GitHub link taxonomy (of %d active bots):\n", res.ActiveBots)
	fmt.Fprintf(w, "  with GitHub link:   %d (%s of active)\n", res.WithLink, pctOf(res.WithLink, res.ActiveBots))
	fmt.Fprintf(w, "  valid repositories: %d (%s of links)\n", res.ValidRepos(), pctOf(res.ValidRepos(), res.WithLink))
	fmt.Fprintf(w, "  with source code:   %d (%s of active)\n", res.WithSource(), pctOf(res.WithSource(), res.ActiveBots))
	langs := make([]string, 0, len(res.ByLanguage))
	for l := range res.ByLanguage {
		if l != "" {
			langs = append(langs, l)
		}
	}
	sort.Slice(langs, func(i, j int) bool { return res.ByLanguage[langs[i]] > res.ByLanguage[langs[j]] })
	for _, l := range langs {
		fmt.Fprintf(w, "  language %-12s %d (%s of valid repos)\n", l+":", res.ByLanguage[l], pctOf(res.ByLanguage[l], res.ValidRepos()))
	}
	if n := res.ByLanguage[""]; n > 0 {
		fmt.Fprintf(w, "  no identifiable code: %d\n", n)
	}
}

// ScrapeYield renders the §4.2 collection yield: valid vs invalid
// permissions, by cause.
func ScrapeYield(w io.Writer, records []*scraper.Record) {
	total, valid := 0, 0
	causes := make(map[scraper.InvalidReason]int)
	for _, r := range records {
		if r == nil {
			continue
		}
		total++
		if r.PermsValid {
			valid++
		} else {
			causes[r.InvalidReason]++
		}
	}
	fmt.Fprintf(w, "Scrape yield: %d bots collected; %d (%.2f%%) valid permissions, %d (%.2f%%) invalid\n",
		total, valid, 100*float64(valid)/float64(total), total-valid, 100*float64(total-valid)/float64(total))
	reasons := make([]string, 0, len(causes))
	for r := range causes {
		reasons = append(reasons, string(r))
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "  invalid cause %-26s %d\n", r+":", causes[scraper.InvalidReason(r)])
	}
}

// Vetting renders the mitigation summary: what a listing-time vetting
// process (the paper's §7 recommendation) would do to this population.
func Vetting(w io.Writer, s vetting.Summary) {
	fmt.Fprintf(w, "Vetting (listing-time mitigation): %d bots — %d approve (%.2f%%), %d flag (%.2f%%), %d reject (%.2f%%)\n",
		s.Total,
		s.Approved, pctOf(s.Approved, s.Total),
		s.Flagged, pctOf(s.Flagged, s.Total),
		s.Rejected, pctOf(s.Rejected, s.Total))
	for _, rule := range s.TopRules() {
		fmt.Fprintf(w, "  rule %-28s hit %d bots\n", rule+":", s.ByRule[rule])
	}
}

// StageDegradation carries the per-stage degradation tallies shown
// alongside timings: how many retries the stage burned, how many bots
// it quarantined, and how many stage-level errors it absorbed while
// running in lenient mode.
type StageDegradation struct {
	Retries     int
	Quarantined int
	Errors      int
	// BudgetLeft is the stage's remaining shared retry budget when the
	// stage finished; -1 means the stage ran unbudgeted (historical
	// per-fetch pools) and renders as "-".
	BudgetLeft int
}

// StageTimings renders the per-stage timing table of a pipeline trace:
// one row per top-level span, with child-span count and mean child
// duration where the stage fanned out (per-bot crawls, per-repo
// analyses, per-guild experiments).
func StageTimings(w io.Writer, tr *obs.Trace) {
	StageTimingsDegraded(w, tr, nil)
}

// StageTimingsDegraded renders StageTimings with two extra columns —
// Retries and Quarantined — fed from a stage-name-keyed degradation
// map. A nil map renders the plain timing table.
func StageTimingsDegraded(w io.Writer, tr *obs.Trace, deg map[string]StageDegradation) {
	if tr == nil {
		return
	}
	sum := tr.Summary()
	headers := []string{"Stage", "Duration", "Children", "Mean child"}
	if deg != nil {
		headers = append(headers, "Retries", "Quarantined", "Budget left")
	}
	t := &Table{
		Title:   fmt.Sprintf("Stage timings (trace %q)", sum.Name),
		Headers: headers,
	}
	anyConcurrent := false
	for _, s := range sum.Spans {
		childCell, meanCell := "-", "-"
		if n := len(s.Children); n > 0 {
			var total float64
			for _, c := range s.Children {
				total += c.DurationMS
			}
			childCell = fmt.Sprintf("%d", n)
			meanCell = fmt.Sprintf("%.1fms", total/float64(n))
		}
		// A concurrent stage shares its wall-clock window with sibling
		// stages; its honest per-stage figure is summed span time, marked
		// so the asterisked column is never read as sequential wall time.
		durCell := fmt.Sprintf("%.1fms", s.DurationMS)
		if s.Concurrent {
			durCell = fmt.Sprintf("%.1fms*", s.BusyMS)
			anyConcurrent = true
		}
		row := []string{s.Name, durCell, childCell, meanCell}
		if deg != nil {
			d, ok := deg[s.Name]
			if ok {
				budgetCell := "-"
				if d.BudgetLeft >= 0 {
					budgetCell = fmt.Sprintf("%d", d.BudgetLeft)
				}
				row = append(row, fmt.Sprintf("%d", d.Retries), fmt.Sprintf("%d", d.Quarantined), budgetCell)
			} else {
				row = append(row, "-", "-", "-")
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
	if anyConcurrent {
		fmt.Fprintln(w, "* concurrent stage: summed per-item span time; stages interleaved, so wall clock overlaps siblings")
	}
}

// Honeypot renders a campaign summary.
func Honeypot(w io.Writer, res *honeypot.CampaignResult) {
	fmt.Fprintf(w, "Honeypot campaign: %d bots tested in isolated guilds\n", res.Tested)
	if d := res.Diversity; d.TagCoverage != nil && res.Tested > 0 {
		tags := make([]string, 0, len(d.TagCoverage))
		for tg := range d.TagCoverage {
			tags = append(tags, tg)
		}
		sort.Strings(tags)
		fmt.Fprintf(w, "  sample diversity: guild count %d..%d, votes %d..%d, purposes %s\n",
			d.GuildCountMin, d.GuildCountMax, d.VotesMin, d.VotesMax, strings.Join(tags, "/"))
	}
	fmt.Fprintf(w, "  bots triggering canary tokens: %d\n", len(res.Triggered))
	for _, v := range res.Triggered {
		kinds := make([]string, 0, len(v.TriggeredKinds))
		for _, k := range v.TriggeredKinds {
			kinds = append(kinds, k.String())
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "  * %s (guild %s): tokens %s, %d trigger(s)\n",
			v.Subject.Name, v.GuildTag, strings.Join(kinds, "+"), len(v.Triggers))
		for _, msg := range res.GiveawayMessages[v.Subject.Name] {
			fmt.Fprintf(w, "    bot posted: %q\n", msg)
		}
	}
}
