package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs/journal"
)

// JournalSummary renders the aggregate view of a decoded journal: event
// counts by kind, plus the correlation cardinalities (runs, bots,
// experiments seen).
func JournalSummary(w io.Writer, sum journal.Summary) {
	t := &Table{
		Title:   fmt.Sprintf("Journal summary: %d events, %d runs, %d bots, %d experiments", sum.Total, len(sum.Runs), sum.Bots, sum.Experiments),
		Headers: []string{"Kind", "Events"},
	}
	for _, k := range sum.Kinds() {
		t.AddRow(string(k), fmt.Sprintf("%d", sum.ByKind[k]))
	}
	t.Render(w)
	if len(sum.ByComponent) > 0 {
		comps := make([]string, 0, len(sum.ByComponent))
		for c := range sum.ByComponent {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		parts := make([]string, 0, len(comps))
		for _, c := range comps {
			parts = append(parts, fmt.Sprintf("%s=%d", c, sum.ByComponent[c]))
		}
		fmt.Fprintf(w, "By component: %s\n", strings.Join(parts, " "))
	}
}

// JournalTimeline renders events as a per-bot timeline: run-scoped
// events (stage brackets) first, then one section per bot in first-seen
// order, each row offset from the journal's first event. This is the
// replay view — a crawl-to-verdict trace of what happened to each bot.
func JournalTimeline(w io.Writer, events []journal.Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "Journal timeline: no events")
		return
	}
	sorted := make([]journal.Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At.Before(sorted[j].At) })
	epoch := sorted[0].At

	// Group by listing ID when present (early crawl events know only the
	// ID; the name arrives with bot_discovered), by name otherwise, and
	// label each section with the best name learned for it.
	botKey := func(e journal.Event) string {
		switch {
		case e.BotID != 0:
			return fmt.Sprintf("#%d", e.BotID)
		case e.Bot != "":
			return e.Bot
		default:
			return ""
		}
	}
	var order []string
	byBot := make(map[string][]journal.Event)
	label := make(map[string]string)
	var runScoped []journal.Event
	for _, e := range sorted {
		k := botKey(e)
		if k == "" {
			runScoped = append(runScoped, e)
			continue
		}
		if _, seen := byBot[k]; !seen {
			order = append(order, k)
			label[k] = k
		}
		if e.Bot != "" {
			if e.BotID != 0 {
				label[k] = fmt.Sprintf("%s (#%d)", e.Bot, e.BotID)
			} else {
				label[k] = e.Bot
			}
		}
		byBot[k] = append(byBot[k], e)
	}

	row := func(e journal.Event) string {
		return fmt.Sprintf("  %8.1fms  %-12s %-20s %s",
			float64(e.At.Sub(epoch).Microseconds())/1000, e.Component, string(e.Kind), fieldLine(e.Fields))
	}
	fmt.Fprintf(w, "Journal timeline: %d events, %d bots\n", len(sorted), len(order))
	if len(runScoped) > 0 {
		fmt.Fprintln(w, "(run)")
		for _, e := range runScoped {
			fmt.Fprintln(w, row(e))
		}
	}
	for _, k := range order {
		fmt.Fprintln(w, label[k])
		for _, e := range byBot[k] {
			fmt.Fprintln(w, row(e))
		}
	}
}

// fieldLine flattens an event's free-form fields into a stable
// "k=v k=v" string, keys sorted for diffable output.
func fieldLine(fields map[string]any) string {
	if len(fields) == 0 {
		return ""
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, fields[k]))
	}
	return strings.Join(parts, " ")
}
