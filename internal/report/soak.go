package report

import (
	"fmt"
	"io"

	"repro/internal/loadgen"
)

// SoakPhase is one schedule phase as it actually ran.
type SoakPhase struct {
	Name         string
	StartMS      int
	DurationMS   int
	FaultProfile string
	StallClients int
	KillArmed    bool
	KillFired    bool
}

// SoakInvariant is one cross-artifact invariant's verdict.
type SoakInvariant struct {
	Name     string
	Artifact string
	Detail   string
	OK       bool
}

// SoakData is the renderer-facing view of a soak run (defined here
// rather than in internal/soak to keep report import-cycle-free; the
// soak package converts its Outcome into this shape).
type SoakData struct {
	Schedule   string
	DurationMS float64
	RunID      string

	Segments   int
	KillsArmed int
	KillsFired int

	Bots                int
	Records             int
	Quarantined         int
	HoneypotTested      int
	HoneypotQuarantined int

	Loadgen    *loadgen.Result
	Phases     []SoakPhase
	Invariants []SoakInvariant

	OK             bool
	FirstViolation string
}

// SoakVerdict renders a soak run: what chaos the schedule applied,
// what the pipeline and traffic plane survived, and whether every
// artifact reconciles.
func SoakVerdict(w io.Writer, d *SoakData) {
	fmt.Fprintf(w, "SOAK VERDICT — schedule=%s run=%s %.1fs\n", d.Schedule, d.RunID, d.DurationMS/1000)
	fmt.Fprintf(w, "  pipeline    %d bots → %d records, %d quarantined; honeypot %d tested + %d quarantined\n",
		d.Bots, d.Records, d.Quarantined, d.HoneypotTested, d.HoneypotQuarantined)
	fmt.Fprintf(w, "  chaos       %d kills armed, %d fired → %d ledger segment(s)\n",
		d.KillsArmed, d.KillsFired, d.Segments)
	fmt.Fprintf(w, "  phases:\n")
	for _, p := range d.Phases {
		line := fmt.Sprintf("    %-14s t+%-6s %-6s", p.Name,
			fmt.Sprintf("%.1fs", float64(p.StartMS)/1000),
			fmt.Sprintf("%.1fs", float64(p.DurationMS)/1000))
		if p.FaultProfile != "" {
			line += fmt.Sprintf("  profile=%s", p.FaultProfile)
		}
		if p.StallClients > 0 {
			line += fmt.Sprintf("  stalls=%d", p.StallClients)
		}
		switch {
		case p.KillFired:
			line += "  kill=FIRED"
		case p.KillArmed:
			line += "  kill=armed (never fired)"
		}
		fmt.Fprintln(w, line)
	}
	if d.Loadgen != nil {
		GatewayLoad(w, d.Loadgen)
	}
	fmt.Fprintf(w, "  invariants:\n")
	for _, iv := range d.Invariants {
		mark := "ok  "
		if !iv.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "    %s  %-26s %s\n", mark, iv.Name, iv.Detail)
	}
	if d.OK {
		fmt.Fprintf(w, "  VERDICT: all %d invariants hold — every artifact reconciles\n", len(d.Invariants))
	} else {
		fmt.Fprintf(w, "  VERDICT: VIOLATED — %s\n", d.FirstViolation)
	}
}
