package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current renderer output")

// loadFixtureSpans decodes the handcrafted span log the trace
// renderers are goldened against.
func loadFixtureSpans(t *testing.T) (trace.Header, []trace.Op) {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "trace_spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, ops, skipped, err := trace.DecodeJSONL(f)
	if err != nil || skipped != 0 {
		t.Fatalf("fixture decode: skipped %d, err %v", skipped, err)
	}
	return h, ops
}

// TestTraceSummaryGolden pins the exact `botscan trace summary` output
// for a fixed span log, so rendering regressions show up as a readable
// text diff. Regenerate with: go test ./internal/report -run Golden -update
func TestTraceSummaryGolden(t *testing.T) {
	h, ops := loadFixtureSpans(t)
	var buf bytes.Buffer
	TraceSummary(&buf, trace.Summarize(h, ops))
	golden := filepath.Join("testdata", "trace_summary.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("trace summary drifted from golden file\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestTraceSlowestRendersStageColumns(t *testing.T) {
	_, ops := loadFixtureSpans(t)
	var buf bytes.Buffer
	TraceSlowest(&buf, trace.SlowestBots(ops, 2))
	out := buf.String()
	// The fixture's most expensive bot is BetaQuizzer2 (29ms across
	// three stages), then GammaScribe3 (25ms of collect).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("short output:\n%s", out)
	}
	if !strings.Contains(lines[3], "BetaQuizzer2") {
		t.Errorf("row 1 should be BetaQuizzer2:\n%s", out)
	}
	if !strings.Contains(lines[4], "GammaScribe3") {
		t.Errorf("row 2 should be GammaScribe3:\n%s", out)
	}
	for _, col := range []string{"collect", "honeypot", "traceability"} {
		if !strings.Contains(lines[1], col) {
			t.Errorf("missing stage column %q:\n%s", col, out)
		}
	}
}

func TestTraceCriticalPathEndsAtLastSpan(t *testing.T) {
	_, ops := loadFixtureSpans(t)
	var buf bytes.Buffer
	TraceCriticalPath(&buf, trace.CriticalPath(ops))
	out := buf.String()
	// The last-finishing bot span is GammaScribe3's collect (ends at
	// 36ms on shard 0); the chain starts at AlphaGreeter1.
	if !strings.Contains(out, "GammaScribe3") || !strings.Contains(out, "AlphaGreeter1") {
		t.Errorf("critical path missing chain endpoints:\n%s", out)
	}
	if !strings.Contains(out, "shard 0") {
		t.Errorf("critical path should sit on shard 0:\n%s", out)
	}
	if !strings.Contains(out, "gap") {
		t.Errorf("expected an idle gap between the two collect spans:\n%s", out)
	}
}

func TestTraceByStageOrdersByTotal(t *testing.T) {
	h, ops := loadFixtureSpans(t)
	var buf bytes.Buffer
	TraceByStage(&buf, trace.ByStage(h, ops))
	out := buf.String()
	// collect (39ms) > honeypot (22ms) > traceability (2ms).
	ci := strings.Index(out, "collect")
	hi := strings.Index(out, "honeypot")
	ti := strings.Index(out, "traceability")
	if !(ci < hi && hi < ti) {
		t.Errorf("stages out of cost order (collect=%d honeypot=%d traceability=%d):\n%s", ci, hi, ti, out)
	}
}
