// Trace renderers: the `botscan trace` subcommand views over a span
// log captured with -trace-out (summary, slowest bots, per-stage
// costs, critical path).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs/trace"
)

// TraceSummary renders the headline view of a span log.
func TraceSummary(w io.Writer, s trace.Summary) {
	fmt.Fprintf(w, "Trace summary: run %s (level %s, %d shards)\n", s.RunID, s.Level, s.Shards)
	fmt.Fprintf(w, "  wall clock   %s\n", fmtMS(s.WallMS))
	fmt.Fprintf(w, "  ops          %d (%d bot-stage, %d sub-op, %d instant, %d counter, %d run)\n",
		s.Ops, s.StageOps, s.SubOps, s.Instants, s.Counters, s.RunSpans)
	fmt.Fprintf(w, "  bots traced  %d\n", s.Bots)
	fmt.Fprintf(w, "  steals       %d\n", s.Steals)
	fmt.Fprintf(w, "  busy (sum)   %s across shards\n", fmtMS(s.BusyMS))
	fmt.Fprintln(w)
	t := &Table{
		Title:   "Per-stage bot span cost",
		Headers: []string{"Stage", "Spans", "Total", "P50", "P95", "Max", "Max Bot"},
	}
	for _, st := range s.Stages {
		t.AddRow(st.Stage, fmt.Sprintf("%d", st.Count), fmtMS(st.TotalMS),
			fmtMS(st.P50MS), fmtMS(st.P95MS), fmtMS(st.MaxMS), fmt.Sprintf("%d", st.MaxBot))
	}
	t.Render(w)
	if len(s.ShardLoad) == 0 {
		return
	}
	fmt.Fprintln(w)
	lt := &Table{
		Title:   "Per-shard load",
		Headers: []string{"Shard", "Items", "Busy", "Steals From"},
	}
	for _, sl := range s.ShardLoad {
		shard := fmt.Sprintf("%d", sl.Shard)
		if sl.Shard == trace.ControlShard {
			shard = "control"
		}
		lt.AddRow(shard, fmt.Sprintf("%d", sl.Items), fmtMS(sl.BusyMS), fmt.Sprintf("%d", sl.Steals))
	}
	lt.Render(w)
}

// TraceSlowest renders the top-n most expensive bots with their
// per-stage split.
func TraceSlowest(w io.Writer, bots []trace.BotCost) {
	if len(bots) == 0 {
		fmt.Fprintln(w, "no bot-stage spans in trace (was it captured with -trace-level bots or full?)")
		return
	}
	// Stage columns: union of stages seen, widest first for stability.
	stageSet := map[string]bool{}
	for _, b := range bots {
		for st := range b.StageMS {
			stageSet[st] = true
		}
	}
	stages := make([]string, 0, len(stageSet))
	for st := range stageSet {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	headers := []string{"#", "Bot", "ID", "Shard", "Total"}
	for _, st := range stages {
		headers = append(headers, st)
	}
	t := &Table{Title: fmt.Sprintf("Slowest %d bots by traced span time", len(bots)), Headers: headers}
	for i, b := range bots {
		name := b.Bot
		if name == "" {
			name = "-"
		}
		row := []string{fmt.Sprintf("%d", i+1), name, fmt.Sprintf("%d", b.BotID),
			fmt.Sprintf("%d", b.Shard), fmtMS(b.TotalMS)}
		for _, st := range stages {
			if d, ok := b.StageMS[st]; ok {
				row = append(row, fmtMS(d))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// TraceByStage renders per-stage costs sorted by total time.
func TraceByStage(w io.Writer, stages []trace.StageCost) {
	t := &Table{
		Title:   "Stage cost (bot spans, most expensive first)",
		Headers: []string{"Stage", "Spans", "Total", "P50", "P95", "Max", "Max Bot"},
	}
	for _, st := range stages {
		t.AddRow(st.Stage, fmt.Sprintf("%d", st.Count), fmtMS(st.TotalMS),
			fmtMS(st.P50MS), fmtMS(st.P95MS), fmtMS(st.MaxMS), fmt.Sprintf("%d", st.MaxBot))
	}
	t.Render(w)
}

// TraceCriticalPath renders the back-to-back chain of spans that ends
// at the run's last-finishing bot span — where wall-clock time went on
// the longest shard.
func TraceCriticalPath(w io.Writer, steps []trace.PathStep) {
	if len(steps) == 0 {
		fmt.Fprintln(w, "no spans with duration in trace")
		return
	}
	shard := steps[len(steps)-1].Op.Shard
	var onPath, gaps float64
	for _, s := range steps {
		onPath += s.OnCritMS
		gaps += s.GapMS
	}
	fmt.Fprintf(w, "Critical path: %d spans on shard %d — %s busy, %s idle gaps\n",
		len(steps), shard, fmtMS(onPath), fmtMS(gaps))
	for _, s := range steps {
		op := s.Op
		who := op.Bot
		if who == "" && op.BotID != 0 {
			who = fmt.Sprintf("bot %d", op.BotID)
		}
		if who == "" {
			who = "(run)"
		}
		fmt.Fprintf(w, "  %s %s %s [%s]\n",
			pad(fmtMS(s.OnCritMS), 10), pad(op.Stage, 14), pad(who, 24), bar(s.OnCritMS, onPath))
		if s.GapMS > 0 {
			fmt.Fprintf(w, "  %s %s (shard idle)\n", pad(fmtMS(s.GapMS), 10), pad("·· gap", 14))
		}
	}
}

// bar renders a proportional 20-char bar for the critical-path view.
func bar(ms, total float64) string {
	if total <= 0 {
		return ""
	}
	n := int(20 * ms / total)
	if n < 1 {
		n = 1
	}
	if n > 20 {
		n = 20
	}
	return strings.Repeat("#", n)
}

// fmtMS renders a millisecond figure compactly (µs under 1ms, seconds
// above 10s).
func fmtMS(ms float64) string {
	switch {
	case ms <= 0:
		return "0"
	case ms < 1:
		return fmt.Sprintf("%.0fµs", ms*1000)
	case ms < 10_000:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.2fs", ms/1000)
	}
}
