package platform

import (
	"errors"
	"testing"

	"repro/internal/permissions"
)

func TestCreateRoleRules(t *testing.T) {
	p, owner, g, _ := fixture(t)
	mod := addUser(t, p, g, "mod")
	modRole, err := p.CreateRole(owner.ID, g.ID, "mod", permissions.ManageRoles|permissions.KickMembers, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID); err != nil {
		t.Fatal(err)
	}
	// Rule ii: mod can create a role below itself with perms it holds…
	if _, err := p.CreateRole(mod.ID, g.ID, "junior", permissions.KickMembers, 2); err != nil {
		t.Errorf("held-perm role create err = %v", err)
	}
	// …but not with perms it lacks, not at/above its position, not at 0.
	if _, err := p.CreateRole(mod.ID, g.ID, "x", permissions.BanMembers, 2); !errors.Is(err, ErrHierarchy) {
		t.Errorf("unheld-perm create err = %v", err)
	}
	if _, err := p.CreateRole(mod.ID, g.ID, "x", permissions.KickMembers, 5); !errors.Is(err, ErrHierarchy) {
		t.Errorf("same-position create err = %v", err)
	}
	if _, err := p.CreateRole(owner.ID, g.ID, "x", permissions.KickMembers, 0); !errors.Is(err, ErrHierarchy) {
		t.Errorf("position-0 create err = %v", err)
	}
	if _, err := p.CreateRole(owner.ID, g.ID, "x", permissions.Permission(1<<55), 1); !errors.Is(err, ErrUndefinedPerms) {
		t.Errorf("undefined perms err = %v", err)
	}
	pleb := addUser(t, p, g, "pleb")
	if _, err := p.CreateRole(pleb.ID, g.ID, "x", permissions.SendMessages, 1); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("pleb create err = %v", err)
	}
}

func TestEditRoleRules(t *testing.T) {
	p, owner, g, _ := fixture(t)
	mod := addUser(t, p, g, "mod")
	modRole, _ := p.CreateRole(owner.ID, g.ID, "mod", permissions.ManageRoles|permissions.KickMembers, 5)
	low, _ := p.CreateRole(owner.ID, g.ID, "low", permissions.None, 2)
	p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID)

	if err := p.EditRole(mod.ID, g.ID, low.ID, permissions.KickMembers); err != nil {
		t.Errorf("edit lower role with held perm: %v", err)
	}
	if err := p.EditRole(mod.ID, g.ID, low.ID, permissions.BanMembers); !errors.Is(err, ErrHierarchy) {
		t.Errorf("rule ii violation err = %v", err)
	}
	if err := p.EditRole(mod.ID, g.ID, modRole.ID, permissions.None); !errors.Is(err, ErrHierarchy) {
		t.Errorf("edit own-position role err = %v", err)
	}
	if err := p.EditRole(owner.ID, g.ID, 999, permissions.None); !errors.Is(err, ErrNotFound) {
		t.Errorf("edit ghost role err = %v", err)
	}
	// Managed bot roles are immutable through EditRole.
	bot, _ := p.RegisterBot(owner.ID, "b")
	br, _ := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.SendMessages|permissions.ViewChannel)
	if err := p.EditRole(owner.ID, g.ID, br.ID, permissions.All); !errors.Is(err, ErrRoleManaged) {
		t.Errorf("edit managed role err = %v", err)
	}
}

func TestMoveRoleRules(t *testing.T) {
	p, owner, g, _ := fixture(t)
	mod := addUser(t, p, g, "mod")
	modRole, _ := p.CreateRole(owner.ID, g.ID, "mod", permissions.ManageRoles, 5)
	low, _ := p.CreateRole(owner.ID, g.ID, "low", permissions.None, 2)
	p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID)

	if err := p.MoveRole(mod.ID, g.ID, low.ID, 3); err != nil {
		t.Errorf("move lower role: %v", err)
	}
	if err := p.MoveRole(mod.ID, g.ID, low.ID, 5); !errors.Is(err, ErrHierarchy) {
		t.Errorf("move to own position err = %v", err)
	}
	if err := p.MoveRole(mod.ID, g.ID, modRole.ID, 1); !errors.Is(err, ErrHierarchy) {
		t.Errorf("move own role err = %v", err)
	}
	if err := p.MoveRole(owner.ID, g.ID, g.EveryoneRoleID(), 1); !errors.Is(err, ErrEveryoneImmutable) {
		t.Errorf("move @everyone err = %v", err)
	}
}

func TestGrantRevokeRoleRules(t *testing.T) {
	p, owner, g, _ := fixture(t)
	mod := addUser(t, p, g, "mod")
	pleb := addUser(t, p, g, "pleb")
	modRole, _ := p.CreateRole(owner.ID, g.ID, "mod", permissions.ManageRoles, 5)
	high, _ := p.CreateRole(owner.ID, g.ID, "high", permissions.None, 7)
	low, _ := p.CreateRole(owner.ID, g.ID, "low", permissions.None, 2)
	p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID)

	if err := p.GrantRole(mod.ID, g.ID, pleb.ID, low.ID); err != nil {
		t.Errorf("grant lower role: %v", err)
	}
	if err := p.GrantRole(mod.ID, g.ID, pleb.ID, low.ID); err != nil {
		t.Errorf("regrant should be idempotent: %v", err)
	}
	if err := p.GrantRole(mod.ID, g.ID, pleb.ID, high.ID); !errors.Is(err, ErrHierarchy) {
		t.Errorf("rule i violation err = %v", err)
	}
	if err := p.GrantRole(pleb.ID, g.ID, mod.ID, low.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("grant without manage-roles err = %v", err)
	}
	if err := p.RevokeRole(mod.ID, g.ID, pleb.ID, low.ID); err != nil {
		t.Errorf("revoke lower role: %v", err)
	}
	if err := p.RevokeRole(mod.ID, g.ID, pleb.ID, high.ID); !errors.Is(err, ErrHierarchy) {
		t.Errorf("revoke higher role err = %v", err)
	}
	stranger := p.CreateUser("stranger")
	if err := p.GrantRole(mod.ID, g.ID, stranger.ID, low.ID); !errors.Is(err, ErrNotMember) {
		t.Errorf("grant to non-member err = %v", err)
	}
}

func TestKickBanHierarchy(t *testing.T) {
	p, owner, g, _ := fixture(t)
	mod := addUser(t, p, g, "mod")
	pleb := addUser(t, p, g, "pleb")
	peer := addUser(t, p, g, "peer")
	modRole, _ := p.CreateRole(owner.ID, g.ID, "mod", permissions.KickMembers|permissions.BanMembers, 5)
	p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID)
	p.GrantRole(owner.ID, g.ID, peer.ID, modRole.ID)

	if err := p.KickMember(mod.ID, g.ID, peer.ID); !errors.Is(err, ErrHierarchy) {
		t.Errorf("kick equal-position member err = %v", err)
	}
	if err := p.KickMember(mod.ID, g.ID, owner.ID); !errors.Is(err, ErrOwnerImmune) {
		t.Errorf("kick owner err = %v", err)
	}
	if err := p.KickMember(mod.ID, g.ID, mod.ID); !errors.Is(err, ErrSelfModeration) {
		t.Errorf("self kick err = %v", err)
	}
	if err := p.KickMember(pleb.ID, g.ID, mod.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("permless kick err = %v", err)
	}
	if err := p.KickMember(mod.ID, g.ID, pleb.ID); err != nil {
		t.Fatalf("valid kick: %v", err)
	}
	if _, ok := g.Members[pleb.ID]; ok {
		t.Error("kicked member still present")
	}
	// Kicked users may rejoin; banned users may not.
	if err := p.JoinGuild(pleb.ID, g.ID); err != nil {
		t.Fatalf("rejoin after kick: %v", err)
	}
	if err := p.BanMember(mod.ID, g.ID, pleb.ID); err != nil {
		t.Fatalf("ban: %v", err)
	}
	if err := p.JoinGuild(pleb.ID, g.ID); !errors.Is(err, ErrBanned) {
		t.Errorf("rejoin after ban err = %v", err)
	}
	if err := p.BanMember(mod.ID, g.ID, pleb.ID); !errors.Is(err, ErrAlreadyBanned) {
		t.Errorf("double ban err = %v", err)
	}
	if err := p.UnbanMember(mod.ID, g.ID, pleb.ID); err != nil {
		t.Fatalf("unban: %v", err)
	}
	if err := p.JoinGuild(pleb.ID, g.ID); err != nil {
		t.Errorf("rejoin after unban: %v", err)
	}
	if err := p.UnbanMember(mod.ID, g.ID, pleb.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("unban non-banned err = %v", err)
	}
}

func TestEditNickname(t *testing.T) {
	p, owner, g, _ := fixture(t)
	mod := addUser(t, p, g, "mod")
	pleb := addUser(t, p, g, "pleb")
	modRole, _ := p.CreateRole(owner.ID, g.ID, "mod", permissions.ManageNicknames, 5)
	p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID)

	if err := p.EditNickname(mod.ID, g.ID, pleb.ID, "renamed"); err != nil {
		t.Fatal(err)
	}
	if g.Members[pleb.ID].Nick != "renamed" {
		t.Error("nickname not applied")
	}
	if err := p.EditNickname(pleb.ID, g.ID, mod.ID, "revenge"); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("permless rename err = %v", err)
	}
	// Self-rename uses change-nickname, held by @everyone.
	if err := p.EditNickname(pleb.ID, g.ID, pleb.ID, "myself"); err != nil {
		t.Errorf("self rename err = %v", err)
	}
	if err := p.EditNickname(mod.ID, g.ID, owner.ID, "boss"); !errors.Is(err, ErrOwnerImmune) {
		t.Errorf("rename owner err = %v", err)
	}
}

func TestBotRedelegationScenario(t *testing.T) {
	// The paper's §5 scenario: a bot holding kick-members acts on behalf
	// of a commanding user who lacks it. The PLATFORM allows the bot's
	// action — the check is the developer's job.
	p, owner, g, _ := fixture(t)
	victim := addUser(t, p, g, "victim")
	_ = addUser(t, p, g, "attacker")
	bot, _ := p.RegisterBot(owner.ID, "modbot")
	role, err := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.KickMembers|permissions.ViewChannel|permissions.SendMessages)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MoveRole(owner.ID, g.ID, role.ID, 10); err != nil {
		t.Fatal(err)
	}
	// The attacker cannot kick directly…
	attackerID := ID(0)
	for id, m := range g.Members {
		if u, _ := p.UserByID(m.UserID); u != nil && u.Name == "attacker" {
			attackerID = id
		}
	}
	if err := p.KickMember(attackerID, g.ID, victim.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("attacker direct kick err = %v", err)
	}
	// …but the bot, acting on the attacker's command, can: nothing on
	// the platform ties the bot's action to the commanding user.
	if err := p.KickMember(bot.ID, g.ID, victim.ID); err != nil {
		t.Fatalf("bot kick (re-delegation) err = %v", err)
	}
}
