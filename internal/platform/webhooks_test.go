package platform

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/permissions"
)

func TestWebhookLifecycle(t *testing.T) {
	p, owner, g, general := fixture(t)
	wh, err := p.CreateWebhook(owner.ID, general.ID, "announcer")
	if err != nil {
		t.Fatal(err)
	}
	if wh.Token == "" || wh.ChannelID != general.ID {
		t.Fatalf("webhook = %+v", wh)
	}
	msg, err := p.ExecuteWebhook(wh.Token, "Totally A Human", "big news")
	if err != nil {
		t.Fatal(err)
	}
	if msg.AuthorID != wh.ID {
		t.Errorf("author = %s, want webhook identity %s", msg.AuthorID, wh.ID)
	}
	if !strings.Contains(msg.Content, "Totally A Human") {
		t.Errorf("display name lost: %q", msg.Content)
	}
	hooks, err := p.WebhooksOf(owner.ID, g.ID)
	if err != nil || len(hooks) != 1 {
		t.Fatalf("webhooks = %v, %v", hooks, err)
	}
	if err := p.DeleteWebhook(owner.ID, wh.Token); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExecuteWebhook(wh.Token, "", "late"); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("execute after delete err = %v", err)
	}
	if err := p.DeleteWebhook(owner.ID, wh.Token); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestWebhookPermissionGates(t *testing.T) {
	p, owner, g, general := fixture(t)
	pleb := addUser(t, p, g, "pleb")
	if _, err := p.CreateWebhook(pleb.ID, general.ID, "x"); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("pleb create err = %v", err)
	}
	voice, _ := p.CreateChannel(owner.ID, g.ID, "v", ChannelVoice)
	if _, err := p.CreateWebhook(owner.ID, voice.ID, "x"); !errors.Is(err, ErrWrongChannelKind) {
		t.Errorf("voice webhook err = %v", err)
	}
	wh, _ := p.CreateWebhook(owner.ID, general.ID, "keeper")
	if err := p.DeleteWebhook(pleb.ID, wh.Token); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("pleb delete err = %v", err)
	}
	if _, err := p.WebhooksOf(pleb.ID, g.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("pleb list err = %v", err)
	}
	if _, err := p.ExecuteWebhook(wh.Token, "", ""); !errors.Is(err, ErrEmptyContent) {
		t.Errorf("empty execute err = %v", err)
	}
}

func TestWebhookLaunderingScenario(t *testing.T) {
	// The threat: a bot with manage-webhooks mints a webhook, and the
	// token keeps working even after the bot itself is uninstalled —
	// persistence beyond the consent the installer granted.
	p, owner, g, general := fixture(t)
	bot, _ := p.RegisterBot(owner.ID, "launderer")
	if _, err := p.InstallBot(owner.ID, g.ID, bot.ID,
		permissions.ViewChannel|permissions.ManageWebhooks); err != nil {
		t.Fatal(err)
	}
	wh, err := p.CreateWebhook(bot.ID, general.ID, "innocent-news")
	if err != nil {
		t.Fatal(err)
	}
	// The bot is uninstalled; its grant is gone…
	if err := p.UninstallBot(owner.ID, g.ID, bot.ID); err != nil {
		t.Fatal(err)
	}
	// …but the webhook token still posts, with a fabricated identity.
	msg, err := p.ExecuteWebhook(wh.Token, "Alice from HR", "please open payroll.docx")
	if err != nil {
		t.Fatalf("laundered post failed: %v", err)
	}
	if msg.AuthorID == bot.ID {
		t.Error("message should not carry the bot's account identity")
	}
	// Forensics: the audit log still attributes webhook creation.
	entries, _ := p.AuditLog(Nil, g.ID)
	found := false
	for _, e := range entries {
		if e.Action == "webhook.create" && e.ActorID == bot.ID {
			found = true
		}
	}
	if !found {
		t.Error("webhook.create not attributed to the bot in the audit log")
	}
}

func TestWebhookEventsDispatched(t *testing.T) {
	p, owner, _, general := fixture(t)
	sub := p.Subscribe(8, func(e Event) bool { return e.Type == EventWebhookUpdate })
	defer p.Unsubscribe(sub)
	wh, err := p.CreateWebhook(owner.ID, general.ID, "evt")
	if err != nil {
		t.Fatal(err)
	}
	p.Flush()
	select {
	case e := <-sub.C:
		if e.ChannelID != general.ID {
			t.Errorf("event = %+v", e)
		}
	default:
		t.Fatal("no webhook event")
	}
	_ = wh
}
