package platform

import "repro/internal/permissions"

// CreateChannel adds a channel to the guild. Requires manage-channels.
func (p *Platform) CreateChannel(actorID, guildID ID, name string, kind ChannelKind) (*Channel, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	if err := p.requireLocked(g, actorID, permissions.ManageChannels); err != nil {
		return nil, err
	}
	ch := &Channel{ID: p.ids.Next(), GuildID: guildID, Name: name, Kind: kind}
	g.Channels[ch.ID] = ch
	p.auditLocked(guildID, actorID, "channel.create", name, kind.String())
	return ch, nil
}

// SetOverwrite installs or replaces a permission overwrite on a channel.
// Requires manage-roles, and rule ii applies: the actor can only allow
// permissions it holds itself.
func (p *Platform) SetOverwrite(actorID, channelID ID, ow Overwrite) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return err
	}
	actor := p.actorLocked(g, actorID)
	if !actor.Perms.Effective().Has(permissions.ManageRoles) {
		return ErrPermissionDenied
	}
	if !actor.Perms.Effective().Has(ow.Allow) {
		return ErrHierarchy
	}
	for i := range ch.Overwrites {
		if ch.Overwrites[i].Kind == ow.Kind && ch.Overwrites[i].TargetID == ow.TargetID {
			ch.Overwrites[i] = ow
			p.auditLocked(g.ID, actorID, "overwrite.update", ch.Name, ow.Allow.String())
			return nil
		}
	}
	ch.Overwrites = append(ch.Overwrites, ow)
	p.auditLocked(g.ID, actorID, "overwrite.create", ch.Name, ow.Allow.String())
	return nil
}

// CreateRole adds a role below the actor's highest role. Rule ii: the
// role may only carry permissions the actor holds.
func (p *Platform) CreateRole(actorID, guildID ID, name string, perms permissions.Permission, pos permissions.RolePosition) (*Role, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	if !perms.Defined() {
		return nil, ErrUndefinedPerms
	}
	actor := p.actorLocked(g, actorID)
	if !permissions.CanEditRole(actor, pos, perms) {
		if !actor.Perms.Effective().Has(permissions.ManageRoles) {
			return nil, ErrPermissionDenied
		}
		return nil, ErrHierarchy
	}
	if pos <= 0 {
		return nil, ErrHierarchy // cannot create at or below @everyone
	}
	r := &Role{ID: p.ids.Next(), GuildID: guildID, Name: name, Position: pos, Perms: perms}
	g.Roles[r.ID] = r
	p.auditLocked(guildID, actorID, "role.create", name, perms.String())
	return r, nil
}

// EditRole changes a role's permission set (rule ii).
func (p *Platform) EditRole(actorID, guildID, roleID ID, perms permissions.Permission) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	r, ok := g.Roles[roleID]
	if !ok {
		return ErrNotFound
	}
	if r.Managed {
		return ErrRoleManaged
	}
	if !perms.Defined() {
		return ErrUndefinedPerms
	}
	actor := p.actorLocked(g, actorID)
	if roleID == g.everyoneRole {
		// @everyone sits at position 0, below every real role, so any
		// manage-roles holder may edit it, subject to rule ii.
		if !actor.Perms.Effective().Has(permissions.ManageRoles) {
			return ErrPermissionDenied
		}
		if !actor.Perms.Effective().Has(perms) {
			return ErrHierarchy
		}
	} else if !permissions.CanEditRole(actor, r.Position, perms) {
		if !actor.Perms.Effective().Has(permissions.ManageRoles) {
			return ErrPermissionDenied
		}
		return ErrHierarchy
	}
	r.Perms = perms
	p.auditLocked(guildID, actorID, "role.edit", r.Name, perms.String())
	p.publishLocked(Event{Type: EventRoleUpdate, GuildID: guildID, At: p.now()})
	return nil
}

// MoveRole changes a role's position (rule iii).
func (p *Platform) MoveRole(actorID, guildID, roleID ID, pos permissions.RolePosition) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	r, ok := g.Roles[roleID]
	if !ok {
		return ErrNotFound
	}
	if roleID == g.everyoneRole {
		return ErrEveryoneImmutable
	}
	actor := p.actorLocked(g, actorID)
	if !permissions.CanSortRole(actor, r.Position) {
		if !actor.Perms.Effective().Has(permissions.ManageRoles) {
			return ErrPermissionDenied
		}
		return ErrHierarchy
	}
	if pos <= 0 || pos >= actor.HighestRole {
		return ErrHierarchy
	}
	r.Position = pos
	p.auditLocked(guildID, actorID, "role.move", r.Name, "")
	p.publishLocked(Event{Type: EventRoleUpdate, GuildID: guildID, At: p.now()})
	return nil
}

// GrantRole assigns an existing role to a member (rule i).
func (p *Platform) GrantRole(actorID, guildID, targetID, roleID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	r, ok := g.Roles[roleID]
	if !ok {
		return ErrNotFound
	}
	m, ok := g.Members[targetID]
	if !ok {
		return ErrNotMember
	}
	actor := p.actorLocked(g, actorID)
	if !permissions.CanGrantRole(actor, r.Position) {
		if !actor.Perms.Effective().Has(permissions.ManageRoles) {
			return ErrPermissionDenied
		}
		return ErrHierarchy
	}
	for _, rid := range m.RoleIDs {
		if rid == roleID {
			return nil // idempotent
		}
	}
	m.RoleIDs = append(m.RoleIDs, roleID)
	p.auditLocked(guildID, actorID, "role.grant", targetID.String(), r.Name)
	p.publishLocked(Event{Type: EventRoleUpdate, GuildID: guildID, UserID: targetID, At: p.now()})
	return nil
}

// RevokeRole removes a role from a member (governed like rule i).
func (p *Platform) RevokeRole(actorID, guildID, targetID, roleID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	r, ok := g.Roles[roleID]
	if !ok {
		return ErrNotFound
	}
	m, ok := g.Members[targetID]
	if !ok {
		return ErrNotMember
	}
	actor := p.actorLocked(g, actorID)
	if !permissions.CanGrantRole(actor, r.Position) {
		if !actor.Perms.Effective().Has(permissions.ManageRoles) {
			return ErrPermissionDenied
		}
		return ErrHierarchy
	}
	for i, rid := range m.RoleIDs {
		if rid == roleID {
			m.RoleIDs = append(m.RoleIDs[:i], m.RoleIDs[i+1:]...)
			break
		}
	}
	p.auditLocked(guildID, actorID, "role.revoke", targetID.String(), r.Name)
	return nil
}
