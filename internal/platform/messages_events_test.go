package platform

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/permissions"
)

func TestSendMessageAndHistory(t *testing.T) {
	p, owner, g, general := fixture(t)
	u := addUser(t, p, g, "alice")
	for i := 0; i < 5; i++ {
		if _, err := p.SendMessage(u.ID, general.ID, fmt.Sprintf("msg %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := p.History(owner.ID, general.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || msgs[0].Content != "msg 2" || msgs[2].Content != "msg 4" {
		t.Errorf("history window wrong: %v", msgs)
	}
	all, _ := p.History(owner.ID, general.ID, 0)
	if len(all) != 5 {
		t.Errorf("full history = %d msgs", len(all))
	}
	if _, err := p.SendMessage(u.ID, general.ID, ""); !errors.Is(err, ErrEmptyContent) {
		t.Errorf("empty message err = %v", err)
	}
	if _, err := p.SendMessage(u.ID, 999, "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost channel err = %v", err)
	}
	stranger := p.CreateUser("stranger")
	if _, err := p.SendMessage(stranger.ID, general.ID, "hi"); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member send err = %v", err)
	}
}

func TestVoiceChannelRejectsText(t *testing.T) {
	p, owner, g, _ := fixture(t)
	voice, err := p.CreateChannel(owner.ID, g.ID, "lounge", ChannelVoice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendMessage(owner.ID, voice.ID, "hello?"); !errors.Is(err, ErrWrongChannelKind) {
		t.Errorf("text in voice err = %v", err)
	}
	if _, err := p.History(owner.ID, voice.ID, 1); !errors.Is(err, ErrWrongChannelKind) {
		t.Errorf("history in voice err = %v", err)
	}
}

func TestCreateChannelRequiresPermission(t *testing.T) {
	p, _, g, _ := fixture(t)
	pleb := addUser(t, p, g, "pleb")
	if _, err := p.CreateChannel(pleb.ID, g.ID, "mine", ChannelText); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("pleb channel create err = %v", err)
	}
	if _, err := p.CreateChannel(pleb.ID, 999, "x", ChannelText); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost guild err = %v", err)
	}
}

func TestHistoryRequiresReadHistory(t *testing.T) {
	p, owner, g, general := fixture(t)
	u := addUser(t, p, g, "limited")
	p.SendMessage(owner.ID, general.ID, "secret backlog")
	err := p.SetOverwrite(owner.ID, general.ID, Overwrite{
		Kind: OverwriteMember, TargetID: u.ID, Deny: permissions.ReadMessageHistory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.History(u.ID, general.ID, 10); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("history without read-message-history err = %v", err)
	}
	// Still able to post.
	if _, err := p.SendMessage(u.ID, general.ID, "live"); err != nil {
		t.Errorf("send blocked: %v", err)
	}
}

func TestAttachments(t *testing.T) {
	p, owner, g, general := fixture(t)
	u := addUser(t, p, g, "uploader")
	doc := Attachment{Filename: "report.docx", ContentType: "application/vnd.openxmlformats-officedocument.wordprocessingml.document", Data: []byte("PK...")}
	msg, err := p.SendMessage(u.ID, general.ID, "see attached", doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Attachments) != 1 || msg.Attachments[0].ID == Nil {
		t.Fatalf("attachment not stored: %+v", msg.Attachments)
	}
	got, err := p.Attachment(owner.ID, general.ID, msg.ID, msg.Attachments[0].ID)
	if err != nil || got.Filename != "report.docx" {
		t.Fatalf("fetch attachment = %v, %v", got, err)
	}
	if _, err := p.Attachment(owner.ID, general.ID, msg.ID, 424242); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost attachment err = %v", err)
	}
	// Deny attach-files and retry.
	p.SetOverwrite(owner.ID, general.ID, Overwrite{Kind: OverwriteMember, TargetID: u.ID, Deny: permissions.AttachFiles})
	if _, err := p.SendMessage(u.ID, general.ID, "again", doc); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("attach without permission err = %v", err)
	}
}

func TestDeleteMessage(t *testing.T) {
	p, owner, g, general := fixture(t)
	author := addUser(t, p, g, "author")
	other := addUser(t, p, g, "other")
	msg, _ := p.SendMessage(author.ID, general.ID, "oops")
	if err := p.DeleteMessage(other.ID, general.ID, msg.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("foreign delete without manage-messages err = %v", err)
	}
	if err := p.DeleteMessage(author.ID, general.ID, msg.ID); err != nil {
		t.Fatalf("own delete: %v", err)
	}
	if err := p.DeleteMessage(author.ID, general.ID, msg.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	msg2, _ := p.SendMessage(author.ID, general.ID, "modme")
	if err := p.DeleteMessage(owner.ID, general.ID, msg2.ID); err != nil {
		t.Errorf("owner (admin) delete: %v", err)
	}
}

func TestEventDelivery(t *testing.T) {
	p, owner, g, general := fixture(t)
	sub := p.Subscribe(16, func(e Event) bool { return e.Type == EventMessageCreate })
	defer p.Unsubscribe(sub)
	u := addUser(t, p, g, "talker")
	if _, err := p.SendMessage(u.ID, general.ID, "hello events"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-sub.C:
		if e.Type != EventMessageCreate || e.Message == nil || e.Message.Content != "hello events" {
			t.Errorf("unexpected event %+v", e)
		}
		if e.GuildID != g.ID || e.ChannelID != general.ID || e.UserID != u.ID {
			t.Errorf("event routing fields wrong: %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
	// Filter means the member-add from addUser was not delivered.
	p.Flush()
	select {
	case e := <-sub.C:
		t.Errorf("unexpected extra event: %+v", e)
	default:
	}
	_ = owner
}

func TestEventDropOnSlowSubscriber(t *testing.T) {
	p, owner, g, general := fixture(t)
	sub := p.Subscribe(1, nil)
	defer p.Unsubscribe(sub)
	for i := 0; i < 10; i++ {
		if _, err := p.SendMessage(owner.ID, general.ID, "spam"); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	if sub.Dropped() == 0 {
		t.Error("expected drops on a full subscriber buffer")
	}
	_ = g
}

func TestUnsubscribeClosesChannel(t *testing.T) {
	p, _, _, _ := fixture(t)
	sub := p.Subscribe(1, nil)
	p.Unsubscribe(sub)
	if _, ok := <-sub.C; ok {
		t.Error("channel should be closed after Unsubscribe")
	}
	p.Unsubscribe(sub) // double-unsubscribe must not panic
}

func TestAuditLogAccess(t *testing.T) {
	p, owner, g, _ := fixture(t)
	bot, _ := p.RegisterBot(owner.ID, "b")
	p.InstallBot(owner.ID, g.ID, bot.ID, permissions.SendMessages|permissions.ViewChannel)
	entries, err := p.AuditLog(owner.ID, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	var sawInstall bool
	for _, e := range entries {
		if e.Action == "bot.install" {
			sawInstall = true
		}
	}
	if !sawInstall {
		t.Error("bot.install not audited")
	}
	pleb := addUser(t, p, g, "pleb")
	if _, err := p.AuditLog(pleb.ID, g.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("pleb audit access err = %v", err)
	}
	// Nil actor = trusted internal access for honeypot forensics.
	if _, err := p.AuditLog(Nil, g.ID); err != nil {
		t.Errorf("internal audit access err = %v", err)
	}
}

func TestConcurrentMessagingSafety(t *testing.T) {
	p, _, g, general := fixture(t)
	var users []*User
	for i := 0; i < 8; i++ {
		users = append(users, addUser(t, p, g, fmt.Sprintf("u%d", i)))
	}
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u *User) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := p.SendMessage(u.ID, general.ID, "concurrent"); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	msgs, err := p.History(users[0].ID, general.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8*50 {
		t.Errorf("got %d messages, want %d", len(msgs), 8*50)
	}
	seen := make(map[ID]bool, len(msgs))
	for _, m := range msgs {
		if seen[m.ID] {
			t.Fatalf("duplicate message ID %s", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestDeterministicClock(t *testing.T) {
	base := time.Date(2022, 10, 25, 9, 0, 0, 0, time.UTC) // IMC '22 day one
	var tick int
	p := New(Options{Now: func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	}})
	owner := p.CreateUser("owner")
	g, _ := p.CreateGuild(owner.ID, "g", false)
	var ch *Channel
	for _, c := range g.Channels {
		ch = c
	}
	m1, _ := p.SendMessage(owner.ID, ch.ID, "first")
	m2, _ := p.SendMessage(owner.ID, ch.ID, "second")
	if !m1.Timestamp.Before(m2.Timestamp) {
		t.Error("timestamps not monotone under injected clock")
	}
	if m1.Timestamp.Year() != 2022 {
		t.Error("injected clock ignored")
	}
}
