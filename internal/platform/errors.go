package platform

import "errors"

// Sentinel errors returned by platform operations. Callers branch on
// these with errors.Is.
var (
	ErrNotFound          = errors.New("platform: entity not found")
	ErrPermissionDenied  = errors.New("platform: permission denied")
	ErrHierarchy         = errors.New("platform: role hierarchy forbids action")
	ErrNotMember         = errors.New("platform: user is not a guild member")
	ErrAlreadyMember     = errors.New("platform: user is already a member")
	ErrBanned            = errors.New("platform: user is banned from guild")
	ErrPrivateGuild      = errors.New("platform: private guild requires an invite")
	ErrGuildLimit        = errors.New("platform: normal users are limited in guild count")
	ErrVerification      = errors.New("platform: mobile verification required")
	ErrNotBot            = errors.New("platform: account is not a bot")
	ErrNotNormalUser     = errors.New("platform: account is not a normal user")
	ErrInvalidToken      = errors.New("platform: invalid bot token")
	ErrWrongChannelKind  = errors.New("platform: operation not valid for channel kind")
	ErrUndefinedPerms    = errors.New("platform: undefined permission bits requested")
	ErrEmptyContent      = errors.New("platform: empty message content")
	ErrSelfModeration    = errors.New("platform: cannot moderate yourself")
	ErrOwnerImmune       = errors.New("platform: guild owner cannot be moderated")
	ErrInviteExpired     = errors.New("platform: invite is expired or invalid")
	ErrAlreadyBanned     = errors.New("platform: user is already banned")
	ErrRapidJoinFlagged  = errors.New("platform: account flagged for joining guilds too quickly")
	ErrRoleManaged       = errors.New("platform: managed roles cannot be edited directly")
	ErrEveryoneImmutable = errors.New("platform: the everyone role cannot be moved or deleted")
	ErrAlreadyResponded  = errors.New("platform: interaction already responded to")
)
