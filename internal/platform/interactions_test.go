package platform

import (
	"errors"
	"testing"

	"repro/internal/permissions"
)

func interactionFixture(t *testing.T) (*Platform, *User, *Guild, *Channel, *User) {
	t.Helper()
	p, owner, g, general := fixture(t)
	bot, err := p.RegisterBot(owner.ID, "slashbot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.ViewChannel|permissions.SendMessages); err != nil {
		t.Fatal(err)
	}
	return p, owner, g, general, bot
}

func TestInteractionLifecycle(t *testing.T) {
	p, owner, g, general, bot := interactionFixture(t)
	in, err := p.Interact(owner.ID, bot.ID, general.ID, "kick", "@victim")
	if err != nil {
		t.Fatal(err)
	}
	if in.UserID != owner.ID || in.BotID != bot.ID || in.Command != "kick" {
		t.Errorf("interaction = %+v", in)
	}
	got, err := p.InteractionByID(g.ID, in.ID)
	if err != nil || got.Args != "@victim" {
		t.Errorf("lookup = %+v, %v", got, err)
	}
	msg, err := p.RespondInteraction(bot.ID, g.ID, in.ID, "done")
	if err != nil {
		t.Fatal(err)
	}
	if msg.AuthorID != bot.ID || msg.ChannelID != general.ID {
		t.Errorf("reply = %+v", msg)
	}
	// Single response only.
	if _, err := p.RespondInteraction(bot.ID, g.ID, in.ID, "again"); !errors.Is(err, ErrAlreadyResponded) {
		t.Errorf("double respond err = %v", err)
	}
}

func TestInteractionValidation(t *testing.T) {
	p, owner, g, general, bot := interactionFixture(t)
	human := addUser(t, p, g, "human")

	if _, err := p.Interact(owner.ID, human.ID, general.ID, "x", ""); !errors.Is(err, ErrNotBot) {
		t.Errorf("interact with human err = %v", err)
	}
	stranger := p.CreateUser("stranger")
	if _, err := p.Interact(stranger.ID, bot.ID, general.ID, "x", ""); !errors.Is(err, ErrNotMember) {
		t.Errorf("stranger interact err = %v", err)
	}
	voice, _ := p.CreateChannel(owner.ID, g.ID, "v", ChannelVoice)
	if _, err := p.Interact(owner.ID, bot.ID, voice.ID, "x", ""); !errors.Is(err, ErrWrongChannelKind) {
		t.Errorf("voice interact err = %v", err)
	}
	otherBot, _ := p.RegisterBot(owner.ID, "other")
	p.InstallBot(owner.ID, g.ID, otherBot.ID, permissions.ViewChannel)
	in, err := p.Interact(owner.ID, bot.ID, general.ID, "x", "")
	if err != nil {
		t.Fatal(err)
	}
	// Only the targeted bot may respond.
	if _, err := p.RespondInteraction(otherBot.ID, g.ID, in.ID, "hijack"); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("foreign respond err = %v", err)
	}
	if _, err := p.RespondInteraction(bot.ID, g.ID, in.ID, ""); !errors.Is(err, ErrEmptyContent) {
		t.Errorf("empty respond err = %v", err)
	}
	if _, err := p.InteractionByID(g.ID, 99999); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost interaction err = %v", err)
	}
}

func TestInteractionReplyBypassesSendOverwrites(t *testing.T) {
	p, owner, g, general, bot := interactionFixture(t)
	// Deny the bot send-messages in the channel; interaction replies
	// still land (the user invited the response).
	if err := p.SetOverwrite(owner.ID, general.ID, Overwrite{
		Kind: OverwriteMember, TargetID: bot.ID, Deny: permissions.SendMessages,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendMessage(bot.ID, general.ID, "direct"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("direct send should be denied: %v", err)
	}
	in, err := p.Interact(owner.ID, bot.ID, general.ID, "ping", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RespondInteraction(bot.ID, g.ID, in.ID, "pong"); err != nil {
		t.Fatalf("interaction reply blocked by overwrite: %v", err)
	}
}

func TestInteractionEventTargeting(t *testing.T) {
	p, owner, g, general, bot := interactionFixture(t)
	sub := p.Subscribe(8, func(e Event) bool { return e.Type == EventInteractionCreate })
	defer p.Unsubscribe(sub)
	in, err := p.Interact(owner.ID, bot.ID, general.ID, "help", "")
	if err != nil {
		t.Fatal(err)
	}
	p.Flush()
	select {
	case e := <-sub.C:
		if e.Interaction == nil || e.Interaction.ID != in.ID || e.UserID != owner.ID {
			t.Errorf("event = %+v", e)
		}
		_ = g
	default:
		t.Fatal("no interaction event dispatched")
	}
}
