// Package platform implements a Discord-like instant-messaging platform:
// users and bot accounts, guilds with role-based access control, text and
// voice channels with permission overwrites, messages with attachments,
// invites, bot installation via an OAuth-style consent step, moderation
// governed by the role hierarchy, an audit log, and an event bus that the
// gateway serves to connected bots.
//
// Faithful to the paper's §2/§4.1 threat model, the platform enforces
// permissions of the *acting account only*: when a user commands a bot,
// nothing here checks the commanding user's permissions — that check is
// entrusted to the bot's developer, which is exactly the gap the paper's
// code analysis measures.
package platform

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/permissions"
)

// DefaultEveryonePerms is the permission set granted to the implicit
// @everyone role of a new guild, mirroring Discord's defaults: members
// can converse but not administrate.
const DefaultEveryonePerms = permissions.ViewChannel |
	permissions.SendMessages | permissions.ReadMessageHistory |
	permissions.AddReactions | permissions.EmbedLinks |
	permissions.AttachFiles | permissions.Connect | permissions.Speak |
	permissions.UseVAD | permissions.ChangeNickname |
	permissions.CreateInstantInvite | permissions.UseExternalEmojis |
	permissions.SendTTSMessages | permissions.MentionEveryone

// Options configures a Platform.
type Options struct {
	// Epoch offsets the snowflake counter; platforms with distinct
	// epochs mint non-colliding IDs.
	Epoch uint64
	// NormalGuildLimit caps how many guilds a verified normal user may
	// join (Discord: 100). Bots are unlimited (paper §4.1). Zero means
	// the default of 100.
	NormalGuildLimit int
	// UnverifiedJoinLimit caps guild joins for accounts that have not
	// completed mobile verification; exceeding it returns
	// ErrVerification (paper §4.2: rapid joiners get flagged). Zero
	// means the default of 10.
	UnverifiedJoinLimit int
	// Now supplies timestamps; defaults to time.Now. Tests inject a
	// fake clock for deterministic message ordering.
	Now func() time.Time
	// Obs receives the platform's counters (messages posted, permission
	// denials); nil uses the process-default registry.
	Obs *obs.Registry
	// Journal receives a permission_denied event for every action the
	// platform refuses for missing permissions; nil disables emission.
	Journal *journal.Journal
}

// Platform is the in-memory messaging service. All methods are safe for
// concurrent use.
type Platform struct {
	mu       sync.RWMutex
	ids      *idSource
	users    map[ID]*User
	tokens   map[string]ID // bot token -> bot user ID
	guilds   map[ID]*Guild
	invites  map[string]ID       // invite code -> guild ID
	webhooks map[string]*Webhook // webhook token -> webhook
	audit    []AuditEntry

	normalGuildLimit    int
	unverifiedJoinLimit int
	now                 func() time.Time

	cMessages *obs.Counter
	cDenials  *obs.Counter
	journal   *journal.Journal

	bus *bus
}

// New creates an empty platform.
func New(opts Options) *Platform {
	if opts.NormalGuildLimit == 0 {
		opts.NormalGuildLimit = 100
	}
	if opts.UnverifiedJoinLimit == 0 {
		opts.UnverifiedJoinLimit = 10
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	reg := obs.Or(opts.Obs)
	return &Platform{
		ids:                 newIDSource(opts.Epoch),
		users:               make(map[ID]*User),
		tokens:              make(map[string]ID),
		guilds:              make(map[ID]*Guild),
		invites:             make(map[string]ID),
		normalGuildLimit:    opts.NormalGuildLimit,
		unverifiedJoinLimit: opts.UnverifiedJoinLimit,
		now:                 opts.Now,
		cMessages:           reg.Counter("platform_messages_total"),
		cDenials:            reg.Counter("platform_permission_denials_total"),
		journal:             opts.Journal,
		bus:                 newBus(),
	}
}

// SetJournal attaches (or detaches) the permission-denial event journal
// after construction; the core auditor wires it once the pipeline's
// journal exists.
func (p *Platform) SetJournal(j *journal.Journal) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.journal = j
}

// ---- accounts ----

// CreateUser registers a normal (human) account.
func (p *Platform) CreateUser(name string) *User {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := &User{
		ID:            p.ids.Next(),
		Name:          name,
		Discriminator: fmt.Sprintf("%04d", uint64(p.ids.Next())%10000),
		Kind:          KindNormal,
		CreatedAt:     p.now(),
	}
	p.users[u.ID] = u
	return u
}

// VerifyUser marks an account as mobile-verified, lifting the rapid-join
// restriction.
func (p *Platform) VerifyUser(id ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	u, ok := p.users[id]
	if !ok {
		return ErrNotFound
	}
	u.Verified = true
	return nil
}

// RegisterBot creates a bot account owned by a normal user and returns
// it together with its authentication token.
func (p *Platform) RegisterBot(ownerID ID, name string) (*User, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	owner, ok := p.users[ownerID]
	if !ok {
		return nil, ErrNotFound
	}
	if owner.Kind != KindNormal {
		return nil, ErrNotNormalUser
	}
	tok := newToken()
	b := &User{
		ID:            p.ids.Next(),
		Name:          name,
		Discriminator: fmt.Sprintf("%04d", uint64(p.ids.Next())%10000),
		Kind:          KindBot,
		OwnerID:       ownerID,
		Token:         tok,
		Verified:      true,
		CreatedAt:     p.now(),
	}
	p.users[b.ID] = b
	p.tokens[tok] = b.ID
	return b, nil
}

func newToken() string {
	var b [18]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("platform: crypto/rand unavailable: " + err.Error())
	}
	return "bot." + hex.EncodeToString(b[:])
}

// UserByID returns a copy-safe pointer to the account. Callers must not
// mutate the returned struct.
func (p *Platform) UserByID(id ID) (*User, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	u, ok := p.users[id]
	if !ok {
		return nil, ErrNotFound
	}
	return u, nil
}

// BotByToken authenticates a bot credential.
func (p *Platform) BotByToken(token string) (*User, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	id, ok := p.tokens[token]
	if !ok {
		return nil, ErrInvalidToken
	}
	return p.users[id], nil
}

// ---- guilds ----

// CreateGuild creates a guild owned by ownerID, with an @everyone role
// at position 0 and a default "general" text channel. The owner joins
// automatically and the guild does not count against join limits.
func (p *Platform) CreateGuild(ownerID ID, name string, private bool) (*Guild, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	owner, ok := p.users[ownerID]
	if !ok {
		return nil, ErrNotFound
	}
	if owner.Kind != KindNormal {
		return nil, ErrNotNormalUser
	}
	g := &Guild{
		ID:       p.ids.Next(),
		Name:     name,
		OwnerID:  ownerID,
		Private:  private,
		Roles:    make(map[ID]*Role),
		Channels: make(map[ID]*Channel),
		Members:  make(map[ID]*Member),
		Banned:   make(map[ID]bool),
	}
	everyone := &Role{
		ID:       p.ids.Next(),
		GuildID:  g.ID,
		Name:     "@everyone",
		Position: 0,
		Perms:    DefaultEveryonePerms,
	}
	g.Roles[everyone.ID] = everyone
	g.everyoneRole = everyone.ID
	general := &Channel{ID: p.ids.Next(), GuildID: g.ID, Name: "general", Kind: ChannelText}
	g.Channels[general.ID] = general
	g.Members[ownerID] = &Member{UserID: ownerID, JoinedAt: p.now()}
	p.guilds[g.ID] = g
	p.auditLocked(g.ID, ownerID, "guild.create", g.ID.String(), name)
	return g, nil
}

// Guild returns the live guild structure. The platform lock does not
// protect callers that retain it; prefer the query helpers for reads
// outside tests.
func (p *Platform) Guild(id ID) (*Guild, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[id]
	if !ok {
		return nil, ErrNotFound
	}
	return g, nil
}

// GuildsOf lists the IDs of every guild the user belongs to, sorted.
func (p *Platform) GuildsOf(userID ID) []ID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.guildsOfLocked(userID)
}

func (p *Platform) guildsOfLocked(userID ID) []ID {
	var out []ID
	for id, g := range p.guilds {
		if _, ok := g.Members[userID]; ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// JoinGuild adds a user to a public guild, enforcing bans, verification
// flags, and the normal-user guild limit. Bots cannot self-join; they
// are installed (paper §4.1).
func (p *Platform) JoinGuild(userID, guildID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if g.Private {
		return ErrPrivateGuild
	}
	return p.admitLocked(g, userID)
}

func (p *Platform) admitLocked(g *Guild, userID ID) error {
	u, ok := p.users[userID]
	if !ok {
		return ErrNotFound
	}
	if u.Kind == KindBot {
		return ErrNotNormalUser
	}
	if g.Banned[userID] {
		return ErrBanned
	}
	if _, already := g.Members[userID]; already {
		return ErrAlreadyMember
	}
	n := len(p.guildsOfLocked(userID))
	if !u.Verified && n >= p.unverifiedJoinLimit {
		return ErrVerification
	}
	if n >= p.normalGuildLimit {
		return ErrGuildLimit
	}
	g.Members[userID] = &Member{UserID: userID, JoinedAt: p.now()}
	p.publishLocked(Event{Type: EventGuildMemberAdd, GuildID: g.ID, UserID: userID, At: p.now()})
	return nil
}

// CreateInvite mints an invite code for a guild. The actor needs the
// create-invite permission.
func (p *Platform) CreateInvite(actorID, guildID ID) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return "", ErrNotFound
	}
	if err := p.requireLocked(g, actorID, permissions.CreateInstantInvite); err != nil {
		return "", err
	}
	code := newToken()[:12]
	p.invites[code] = guildID
	p.auditLocked(guildID, actorID, "invite.create", code, "")
	return code, nil
}

// RedeemInvite joins the user to the invited guild, private or not.
func (p *Platform) RedeemInvite(userID ID, code string) (ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gid, ok := p.invites[code]
	if !ok {
		return Nil, ErrInviteExpired
	}
	g := p.guilds[gid]
	if g == nil {
		return Nil, ErrInviteExpired
	}
	if err := p.admitLocked(g, userID); err != nil {
		return Nil, err
	}
	return gid, nil
}

// LeaveGuild removes the member. The owner cannot leave their guild.
func (p *Platform) LeaveGuild(userID, guildID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if g.OwnerID == userID {
		return ErrOwnerImmune
	}
	if _, ok := g.Members[userID]; !ok {
		return ErrNotMember
	}
	delete(g.Members, userID)
	p.publishLocked(Event{Type: EventGuildMemberRemove, GuildID: guildID, UserID: userID, At: p.now()})
	return nil
}

// ---- bot installation (OAuth-style consent) ----

// InstallBot installs a bot into a guild with the requested permission
// set, modelling the OAuth consent screen of Figure 2: the installer
// must hold manage-server in the guild (paper §4.1), the requested set
// must decode to defined bits, and the grant is materialised as a
// managed role dedicated to the bot, positioned just above @everyone.
func (p *Platform) InstallBot(installerID, guildID, botID ID, requested permissions.Permission) (*Role, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	bot, ok := p.users[botID]
	if !ok {
		return nil, ErrNotFound
	}
	if !bot.IsBot() {
		return nil, ErrNotBot
	}
	if !requested.Defined() {
		return nil, ErrUndefinedPerms
	}
	if err := p.requireLocked(g, installerID, permissions.ManageGuild); err != nil {
		return nil, err
	}
	if g.Banned[botID] {
		return nil, ErrBanned
	}
	if _, already := g.Members[botID]; already {
		return nil, ErrAlreadyMember
	}
	role := &Role{
		ID:       p.ids.Next(),
		GuildID:  guildID,
		Name:     "bot:" + bot.Name,
		Position: 1,
		Perms:    requested,
		Managed:  true,
	}
	// Shift existing roles up so the managed role slots in at 1.
	for _, r := range g.Roles {
		if r.Position >= 1 {
			r.Position++
		}
	}
	g.Roles[role.ID] = role
	g.Members[botID] = &Member{UserID: botID, RoleIDs: []ID{role.ID}, JoinedAt: p.now()}
	p.auditLocked(guildID, installerID, "bot.install", bot.Tag(), requested.String())
	p.publishLocked(Event{Type: EventGuildMemberAdd, GuildID: guildID, UserID: botID, At: p.now()})
	return role, nil
}

// UninstallBot removes a bot and its managed role from the guild.
func (p *Platform) UninstallBot(actorID, guildID, botID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if err := p.requireLocked(g, actorID, permissions.ManageGuild); err != nil {
		return err
	}
	m, ok := g.Members[botID]
	if !ok {
		return ErrNotMember
	}
	for _, rid := range m.RoleIDs {
		if r := g.Roles[rid]; r != nil && r.Managed {
			delete(g.Roles, rid)
		}
	}
	delete(g.Members, botID)
	p.auditLocked(guildID, actorID, "bot.uninstall", botID.String(), "")
	p.publishLocked(Event{Type: EventGuildMemberRemove, GuildID: guildID, UserID: botID, At: p.now()})
	return nil
}

// ---- audit ----

func (p *Platform) auditLocked(guildID, actorID ID, action, target, detail string) {
	p.audit = append(p.audit, AuditEntry{
		At: p.now(), GuildID: guildID, ActorID: actorID,
		Action: action, Target: target, Detail: detail,
	})
}

// AuditLog returns a copy of the audit entries for a guild, in order.
// Viewing it requires the view-audit-log permission unless actorID is
// Nil (trusted internal access for the honeypot's forensics).
func (p *Platform) AuditLog(actorID, guildID ID) ([]AuditEntry, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	if actorID != Nil {
		if err := p.requireLocked(g, actorID, permissions.ViewAuditLog); err != nil {
			return nil, err
		}
	}
	var out []AuditEntry
	for _, e := range p.audit {
		if e.GuildID == guildID {
			out = append(out, e)
		}
	}
	return out, nil
}
