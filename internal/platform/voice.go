package platform

import (
	"time"

	"repro/internal/permissions"
)

// VoiceState records a member's presence in a voice channel — the
// "voice metadata" Discord's privacy policy says bots can access, and
// one of the data types the paper's traceability ontology covers.
type VoiceState struct {
	UserID    ID
	ChannelID ID
	Muted     bool // server-muted
	Deafened  bool // server-deafened
	Since     time.Time
}

// EventVoiceStateUpdate is dispatched on joins, leaves, mutes and
// deafens.
const EventVoiceStateUpdate EventType = "VOICE_STATE_UPDATE"

// voiceStatesLocked lazily initializes the guild's voice map.
func (g *Guild) voiceStatesLocked() map[ID]*VoiceState {
	if g.voice == nil {
		g.voice = make(map[ID]*VoiceState)
	}
	return g.voice
}

// JoinVoice puts a member into a voice channel. Requires the
// view-channel and connect permissions in that channel; joining another
// channel moves the member.
func (p *Platform) JoinVoice(actorID, channelID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return err
	}
	if ch.Kind != ChannelVoice {
		return ErrWrongChannelKind
	}
	need := permissions.ViewChannel | permissions.Connect
	if err := p.requireChannelLocked(g, ch, actorID, need); err != nil {
		return err
	}
	states := g.voiceStatesLocked()
	st, ok := states[actorID]
	if !ok {
		st = &VoiceState{UserID: actorID}
		states[actorID] = st
	}
	st.ChannelID = channelID
	st.Since = p.now()
	p.publishLocked(Event{Type: EventVoiceStateUpdate, GuildID: g.ID, ChannelID: channelID, UserID: actorID, At: p.now()})
	return nil
}

// LeaveVoice removes a member from voice.
func (p *Platform) LeaveVoice(actorID, guildID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if _, ok := g.voiceStatesLocked()[actorID]; !ok {
		return ErrNotFound
	}
	delete(g.voice, actorID)
	p.publishLocked(Event{Type: EventVoiceStateUpdate, GuildID: guildID, UserID: actorID, At: p.now()})
	return nil
}

// SetVoiceMute server-mutes or unmutes a member in voice. Requires
// mute-members; per hierarchy rule v this permission does not consult
// role positions.
func (p *Platform) SetVoiceMute(actorID, guildID, targetID ID, muted bool) error {
	return p.setVoiceFlag(actorID, guildID, targetID, permissions.MuteMembers, func(st *VoiceState) {
		st.Muted = muted
	})
}

// SetVoiceDeafen server-deafens or undeafens a member in voice.
// Requires deafen-members (again hierarchy-exempt, rule v).
func (p *Platform) SetVoiceDeafen(actorID, guildID, targetID ID, deafened bool) error {
	return p.setVoiceFlag(actorID, guildID, targetID, permissions.DeafenMembers, func(st *VoiceState) {
		st.Deafened = deafened
	})
}

func (p *Platform) setVoiceFlag(actorID, guildID, targetID ID, need permissions.Permission, apply func(*VoiceState)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if err := p.requireLocked(g, actorID, need); err != nil {
		return err
	}
	st, ok := g.voiceStatesLocked()[targetID]
	if !ok {
		return ErrNotFound
	}
	apply(st)
	p.auditLocked(guildID, actorID, "voice.flag", targetID.String(), need.String())
	p.publishLocked(Event{Type: EventVoiceStateUpdate, GuildID: guildID, ChannelID: st.ChannelID, UserID: targetID, At: p.now()})
	return nil
}

// VoiceStates returns the guild's voice metadata, visible to any member
// holding view-channel — which is precisely why over-permissioned bots
// can harvest it.
func (p *Platform) VoiceStates(actorID, guildID ID) ([]VoiceState, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	if err := p.requireLocked(g, actorID, permissions.ViewChannel); err != nil {
		return nil, err
	}
	out := make([]VoiceState, 0, len(g.voice))
	for _, st := range g.voice {
		out = append(out, *st)
	}
	return out, nil
}
