package platform

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/permissions"
)

// TestRandomOperationInvariants drives long random operation sequences
// against one platform and asserts structural invariants after every
// step. Errors from individual operations are expected (permission
// denials, hierarchy blocks); what must never happen is a broken
// invariant.
func TestRandomOperationInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runInvariantSequence(t, seed, 400)
		})
	}
}

func runInvariantSequence(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	p := New(Options{})
	defer p.Close()

	owner := p.CreateUser("owner")
	p.VerifyUser(owner.ID)
	g, err := p.CreateGuild(owner.ID, "fuzz", false)
	if err != nil {
		t.Fatal(err)
	}
	var channels []ID
	for _, ch := range g.Channels {
		channels = append(channels, ch.ID)
	}
	users := []ID{owner.ID}
	var bots []ID
	var roles []ID

	randUser := func() ID { return users[rng.Intn(len(users))] }
	randPerms := func() permissions.Permission {
		return permissions.Permission(rng.Uint64()) & permissions.All
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(12) {
		case 0: // new user joins
			u := p.CreateUser(fmt.Sprintf("u%d", step))
			p.VerifyUser(u.ID)
			if err := p.JoinGuild(u.ID, g.ID); err == nil {
				users = append(users, u.ID)
			}
		case 1: // someone leaves
			p.LeaveGuild(randUser(), g.ID)
		case 2: // role created by random actor
			if r, err := p.CreateRole(randUser(), g.ID, fmt.Sprintf("r%d", step), randPerms(), permissions.RolePosition(1+rng.Intn(10))); err == nil {
				roles = append(roles, r.ID)
			}
		case 3: // role granted
			if len(roles) > 0 {
				p.GrantRole(randUser(), g.ID, randUser(), roles[rng.Intn(len(roles))])
			}
		case 4: // role revoked
			if len(roles) > 0 {
				p.RevokeRole(randUser(), g.ID, randUser(), roles[rng.Intn(len(roles))])
			}
		case 5: // kick attempt
			p.KickMember(randUser(), g.ID, randUser())
		case 6: // ban attempt
			p.BanMember(randUser(), g.ID, randUser())
		case 7: // unban attempt
			p.UnbanMember(randUser(), g.ID, randUser())
		case 8: // message
			p.SendMessage(randUser(), channels[rng.Intn(len(channels))], "fuzz")
		case 9: // bot install
			if b, err := p.RegisterBot(owner.ID, fmt.Sprintf("b%d", step)); err == nil {
				if _, err := p.InstallBot(randUser(), g.ID, b.ID, randPerms()); err == nil {
					bots = append(bots, b.ID)
				}
			}
		case 10: // bot uninstall
			if len(bots) > 0 {
				p.UninstallBot(randUser(), g.ID, bots[rng.Intn(len(bots))])
			}
		case 11: // channel overwrite
			if len(roles) > 0 {
				p.SetOverwrite(randUser(), channels[rng.Intn(len(channels))], Overwrite{
					Kind: OverwriteRole, TargetID: roles[rng.Intn(len(roles))],
					Allow: randPerms() &^ permissions.Administrator,
					Deny:  randPerms() &^ permissions.Administrator,
				})
			}
		}
		checkInvariants(t, p, g, step)
		if t.Failed() {
			t.Fatalf("invariant broken at step %d (seed run)", step)
		}
	}
}

func checkInvariants(t *testing.T, p *Platform, g *Guild, step int) {
	t.Helper()
	// Owner is always a member.
	if _, ok := g.Members[g.OwnerID]; !ok {
		t.Errorf("step %d: owner lost membership", step)
	}
	// Banned users are never members.
	for id := range g.Banned {
		if _, ok := g.Members[id]; ok {
			t.Errorf("step %d: banned user %s is a member", step, id)
		}
	}
	// @everyone exists at position 0 and was never granted admin.
	ev := g.Roles[g.EveryoneRoleID()]
	if ev == nil || ev.Position != 0 {
		t.Errorf("step %d: everyone role corrupted", step)
	}
	for _, m := range g.Members {
		seen := make(map[ID]bool)
		for _, rid := range m.RoleIDs {
			// Held roles exist…
			if _, ok := g.Roles[rid]; !ok {
				t.Errorf("step %d: member %s holds deleted role %s", step, m.UserID, rid)
			}
			// …and are not duplicated.
			if seen[rid] {
				t.Errorf("step %d: member %s holds duplicate role %s", step, m.UserID, rid)
			}
			seen[rid] = true
		}
	}
	// Role positions: nothing below @everyone; managed roles belong to
	// current bot members only.
	for _, r := range g.Roles {
		if r.ID != g.EveryoneRoleID() && r.Position <= 0 {
			t.Errorf("step %d: role %s at position %d", step, r.Name, r.Position)
		}
	}
	// Owner's effective permissions are always everything.
	perms, err := p.Permissions(g.ID, g.OwnerID)
	if err != nil || perms != permissions.All {
		t.Errorf("step %d: owner perms = %s, %v", step, perms, err)
	}
	// Every message in every channel has a positive ID and a known author
	// account (the author may have since left the guild, but the account
	// must exist).
	for _, ch := range g.Channels {
		for _, msg := range ch.Messages {
			if msg.ID == Nil {
				t.Errorf("step %d: message without ID", step)
			}
			if _, err := p.UserByID(msg.AuthorID); err != nil {
				t.Errorf("step %d: message by unknown account %s", step, msg.AuthorID)
			}
		}
	}
}
