package platform

import "repro/internal/permissions"

// moderationTargetLocked validates the common preconditions of rule-iv
// actions and returns the target's membership record.
func (p *Platform) moderationTargetLocked(g *Guild, actorID, targetID ID, action permissions.ModerationAction) (*Member, error) {
	if actorID == targetID {
		return nil, ErrSelfModeration
	}
	if g.OwnerID == targetID {
		return nil, ErrOwnerImmune
	}
	m, ok := g.Members[targetID]
	if !ok {
		return nil, ErrNotMember
	}
	actor := p.actorLocked(g, actorID)
	if !actor.Perms.Effective().Has(actionPerm(action)) {
		return nil, ErrPermissionDenied
	}
	if !permissions.CanModerate(actor, action, memberHighestRoleLocked(g, targetID)) {
		return nil, ErrHierarchy
	}
	return m, nil
}

func actionPerm(a permissions.ModerationAction) permissions.Permission {
	switch a {
	case permissions.ActionKick:
		return permissions.KickMembers
	case permissions.ActionBan:
		return permissions.BanMembers
	default:
		return permissions.ManageNicknames
	}
}

// KickMember removes a member from the guild (hierarchy rule iv).
func (p *Platform) KickMember(actorID, guildID, targetID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if _, err := p.moderationTargetLocked(g, actorID, targetID, permissions.ActionKick); err != nil {
		return err
	}
	delete(g.Members, targetID)
	p.auditLocked(guildID, actorID, "member.kick", targetID.String(), "")
	p.publishLocked(Event{Type: EventGuildMemberRemove, GuildID: guildID, UserID: targetID, At: p.now()})
	return nil
}

// BanMember removes a member and blocks rejoining (hierarchy rule iv).
func (p *Platform) BanMember(actorID, guildID, targetID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if g.Banned[targetID] {
		return ErrAlreadyBanned
	}
	if _, err := p.moderationTargetLocked(g, actorID, targetID, permissions.ActionBan); err != nil {
		return err
	}
	delete(g.Members, targetID)
	g.Banned[targetID] = true
	p.auditLocked(guildID, actorID, "member.ban", targetID.String(), "")
	p.publishLocked(Event{Type: EventGuildBanAdd, GuildID: guildID, UserID: targetID, At: p.now()})
	return nil
}

// UnbanMember lifts a ban. Requires ban-members.
func (p *Platform) UnbanMember(actorID, guildID, targetID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if err := p.requireLocked(g, actorID, permissions.BanMembers); err != nil {
		return err
	}
	if !g.Banned[targetID] {
		return ErrNotFound
	}
	delete(g.Banned, targetID)
	p.auditLocked(guildID, actorID, "member.unban", targetID.String(), "")
	return nil
}

// EditNickname changes a member's guild nickname (hierarchy rule iv).
// Members may change their own nickname with change-nickname instead.
func (p *Platform) EditNickname(actorID, guildID, targetID ID, nick string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return ErrNotFound
	}
	if actorID == targetID {
		m, ok := g.Members[targetID]
		if !ok {
			return ErrNotMember
		}
		if err := p.requireLocked(g, actorID, permissions.ChangeNickname); err != nil {
			return err
		}
		m.Nick = nick
		return nil
	}
	m, err := p.moderationTargetLocked(g, actorID, targetID, permissions.ActionEditNickname)
	if err != nil {
		return err
	}
	m.Nick = nick
	p.auditLocked(guildID, actorID, "member.nick", targetID.String(), nick)
	return nil
}
