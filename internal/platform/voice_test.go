package platform

import (
	"errors"
	"testing"

	"repro/internal/permissions"
)

func voiceFixture(t *testing.T) (*Platform, *User, *Guild, *Channel) {
	t.Helper()
	p, owner, g, _ := fixture(t)
	lounge, err := p.CreateChannel(owner.ID, g.ID, "lounge", ChannelVoice)
	if err != nil {
		t.Fatal(err)
	}
	return p, owner, g, lounge
}

func TestJoinLeaveVoice(t *testing.T) {
	p, owner, g, lounge := voiceFixture(t)
	u := addUser(t, p, g, "talker")
	if err := p.JoinVoice(u.ID, lounge.ID); err != nil {
		t.Fatal(err)
	}
	states, err := p.VoiceStates(owner.ID, g.ID)
	if err != nil || len(states) != 1 {
		t.Fatalf("states = %v, %v", states, err)
	}
	if states[0].UserID != u.ID || states[0].ChannelID != lounge.ID {
		t.Errorf("state = %+v", states[0])
	}
	if err := p.LeaveVoice(u.ID, g.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.LeaveVoice(u.ID, g.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double leave err = %v", err)
	}
	states, _ = p.VoiceStates(owner.ID, g.ID)
	if len(states) != 0 {
		t.Errorf("states after leave = %v", states)
	}
}

func TestJoinVoiceChecksKindAndPerms(t *testing.T) {
	p, owner, g, lounge := voiceFixture(t)
	u := addUser(t, p, g, "muted-out")
	var text *Channel
	for _, ch := range g.Channels {
		if ch.Kind == ChannelText {
			text = ch
		}
	}
	if err := p.JoinVoice(u.ID, text.ID); !errors.Is(err, ErrWrongChannelKind) {
		t.Errorf("join text channel err = %v", err)
	}
	// Deny connect on the lounge for this member.
	if err := p.SetOverwrite(owner.ID, lounge.ID, Overwrite{
		Kind: OverwriteMember, TargetID: u.ID, Deny: permissions.Connect,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.JoinVoice(u.ID, lounge.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("denied connect err = %v", err)
	}
	stranger := p.CreateUser("stranger")
	if err := p.JoinVoice(stranger.ID, lounge.ID); !errors.Is(err, ErrNotMember) {
		t.Errorf("stranger join err = %v", err)
	}
	if err := p.JoinVoice(u.ID, 999); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost channel err = %v", err)
	}
}

func TestVoiceMoveBetweenChannels(t *testing.T) {
	p, owner, g, lounge := voiceFixture(t)
	stage, _ := p.CreateChannel(owner.ID, g.ID, "stage", ChannelVoice)
	u := addUser(t, p, g, "mover")
	p.JoinVoice(u.ID, lounge.ID)
	if err := p.JoinVoice(u.ID, stage.ID); err != nil {
		t.Fatal(err)
	}
	states, _ := p.VoiceStates(owner.ID, g.ID)
	if len(states) != 1 || states[0].ChannelID != stage.ID {
		t.Errorf("move produced states %v", states)
	}
}

func TestVoiceMuteDeafenHierarchyExempt(t *testing.T) {
	p, owner, g, lounge := voiceFixture(t)
	mod := addUser(t, p, g, "mod")
	target := addUser(t, p, g, "target")
	// Give the mod mute/deafen via a LOW role and the target a HIGHER
	// role: rule v says these permissions ignore the hierarchy.
	modRole, _ := p.CreateRole(owner.ID, g.ID, "voicemod", permissions.MuteMembers|permissions.DeafenMembers, 2)
	highRole, _ := p.CreateRole(owner.ID, g.ID, "vip", permissions.None, 8)
	p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID)
	p.GrantRole(owner.ID, g.ID, target.ID, highRole.ID)
	if err := p.JoinVoice(target.ID, lounge.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.SetVoiceMute(mod.ID, g.ID, target.ID, true); err != nil {
		t.Fatalf("hierarchy-exempt mute failed: %v", err)
	}
	if err := p.SetVoiceDeafen(mod.ID, g.ID, target.ID, true); err != nil {
		t.Fatalf("hierarchy-exempt deafen failed: %v", err)
	}
	states, _ := p.VoiceStates(owner.ID, g.ID)
	if !states[0].Muted || !states[0].Deafened {
		t.Errorf("flags not applied: %+v", states[0])
	}
	// Unmute path.
	if err := p.SetVoiceMute(mod.ID, g.ID, target.ID, false); err != nil {
		t.Fatal(err)
	}
	states, _ = p.VoiceStates(owner.ID, g.ID)
	if states[0].Muted {
		t.Error("unmute not applied")
	}
	// Without the permission, the action is denied.
	pleb := addUser(t, p, g, "pleb")
	if err := p.SetVoiceMute(pleb.ID, g.ID, target.ID, true); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("permless mute err = %v", err)
	}
	// Target not in voice -> not found.
	if err := p.SetVoiceMute(mod.ID, g.ID, pleb.ID, true); !errors.Is(err, ErrNotFound) {
		t.Errorf("mute non-voice member err = %v", err)
	}
}

func TestVoiceStateEventsDispatched(t *testing.T) {
	p, _, g, lounge := voiceFixture(t)
	sub := p.Subscribe(16, func(e Event) bool { return e.Type == EventVoiceStateUpdate })
	defer p.Unsubscribe(sub)
	u := addUser(t, p, g, "streamer")
	if err := p.JoinVoice(u.ID, lounge.ID); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	select {
	case e := <-sub.C:
		if e.UserID != u.ID || e.ChannelID != lounge.ID {
			t.Errorf("event = %+v", e)
		}
	default:
		t.Fatal("no voice event dispatched")
	}
}

func TestVoiceMetadataRequiresViewChannel(t *testing.T) {
	p, owner, g, lounge := voiceFixture(t)
	u := addUser(t, p, g, "snooper")
	p.JoinVoice(owner.ID, lounge.ID)
	// Strip view-channel from this member.
	everyone := g.EveryoneRoleID()
	if err := p.EditRole(owner.ID, g.ID, everyone, DefaultEveryonePerms.Remove(permissions.ViewChannel)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.VoiceStates(u.ID, g.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("voice metadata without view-channel err = %v", err)
	}
}
