package platform

import (
	"errors"
	"testing"

	"repro/internal/permissions"
)

// fixture builds a platform with an owner, a guild and its default
// channel.
func fixture(t *testing.T) (*Platform, *User, *Guild, *Channel) {
	t.Helper()
	p := New(Options{})
	owner := p.CreateUser("owner")
	g, err := p.CreateGuild(owner.ID, "testguild", false)
	if err != nil {
		t.Fatal(err)
	}
	var general *Channel
	for _, ch := range g.Channels {
		general = ch
	}
	return p, owner, g, general
}

func addUser(t *testing.T, p *Platform, g *Guild, name string) *User {
	t.Helper()
	u := p.CreateUser(name)
	if err := p.JoinGuild(u.ID, g.ID); err != nil {
		t.Fatalf("join %s: %v", name, err)
	}
	return u
}

func TestCreateUserAndTag(t *testing.T) {
	p := New(Options{})
	u := p.CreateUser("editid")
	if u.ID == Nil {
		t.Fatal("zero ID allocated")
	}
	if u.Kind != KindNormal || u.IsBot() {
		t.Error("new account should be a normal user")
	}
	if tag := u.Tag(); len(tag) < len("editid#0") {
		t.Errorf("Tag() = %q", tag)
	}
	got, err := p.UserByID(u.ID)
	if err != nil || got.Name != "editid" {
		t.Errorf("UserByID = %v, %v", got, err)
	}
	if _, err := p.UserByID(9999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing user err = %v", err)
	}
}

func TestRegisterBotAndToken(t *testing.T) {
	p := New(Options{})
	owner := p.CreateUser("dev")
	bot, err := p.RegisterBot(owner.ID, "helper")
	if err != nil {
		t.Fatal(err)
	}
	if !bot.IsBot() || bot.OwnerID != owner.ID {
		t.Error("bot identity wrong")
	}
	if bot.Token == "" {
		t.Fatal("bot has no token")
	}
	got, err := p.BotByToken(bot.Token)
	if err != nil || got.ID != bot.ID {
		t.Errorf("BotByToken = %v, %v", got, err)
	}
	if _, err := p.BotByToken("bogus"); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("bad token err = %v", err)
	}
	// A bot cannot own another bot.
	if _, err := p.RegisterBot(bot.ID, "nested"); !errors.Is(err, ErrNotNormalUser) {
		t.Errorf("bot-owned bot err = %v", err)
	}
	if _, err := p.RegisterBot(424242, "orphan"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing owner err = %v", err)
	}
}

func TestCreateGuildDefaults(t *testing.T) {
	p, owner, g, general := fixture(t)
	if g.OwnerID != owner.ID {
		t.Error("owner not set")
	}
	if general == nil || general.Kind != ChannelText {
		t.Fatal("default text channel missing")
	}
	ev := g.Roles[g.EveryoneRoleID()]
	if ev == nil || ev.Position != 0 {
		t.Fatal("@everyone role missing or mispositioned")
	}
	if !ev.Perms.Has(permissions.SendMessages) {
		t.Error("@everyone lacks send messages")
	}
	if ev.Perms.HasAny(permissions.Administrator | permissions.ManageGuild) {
		t.Error("@everyone must not hold dangerous bits by default")
	}
	if _, ok := g.Members[owner.ID]; !ok {
		t.Error("owner not auto-joined")
	}
	if _, err := p.Guild(123456); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing guild err = %v", err)
	}
	bot, _ := p.RegisterBot(owner.ID, "b")
	if _, err := p.CreateGuild(bot.ID, "botguild", false); !errors.Is(err, ErrNotNormalUser) {
		t.Errorf("bot-owned guild err = %v", err)
	}
}

func TestJoinGuildRules(t *testing.T) {
	p, owner, g, _ := fixture(t)
	u := p.CreateUser("alice")
	if err := p.JoinGuild(u.ID, g.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.JoinGuild(u.ID, g.ID); !errors.Is(err, ErrAlreadyMember) {
		t.Errorf("rejoin err = %v", err)
	}
	if err := p.JoinGuild(999, g.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost join err = %v", err)
	}
	if err := p.JoinGuild(u.ID, 999); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost guild err = %v", err)
	}
	bot, _ := p.RegisterBot(owner.ID, "b")
	if err := p.JoinGuild(bot.ID, g.ID); !errors.Is(err, ErrNotNormalUser) {
		t.Errorf("bots must be installed, not joined: %v", err)
	}
	priv, _ := p.CreateGuild(owner.ID, "private", true)
	if err := p.JoinGuild(u.ID, priv.ID); !errors.Is(err, ErrPrivateGuild) {
		t.Errorf("private join err = %v", err)
	}
}

func TestUnverifiedRapidJoinFlag(t *testing.T) {
	p := New(Options{UnverifiedJoinLimit: 3})
	owner := p.CreateUser("owner")
	u := p.CreateUser("joiner")
	var guilds []*Guild
	for i := 0; i < 5; i++ {
		g, err := p.CreateGuild(owner.ID, "g", false)
		if err != nil {
			t.Fatal(err)
		}
		guilds = append(guilds, g)
	}
	for i := 0; i < 3; i++ {
		if err := p.JoinGuild(u.ID, guilds[i].ID); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := p.JoinGuild(u.ID, guilds[3].ID); !errors.Is(err, ErrVerification) {
		t.Fatalf("4th unverified join err = %v, want ErrVerification", err)
	}
	// Paper §4.2: the verification step is completed manually; after it
	// the account may continue joining.
	if err := p.VerifyUser(u.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.JoinGuild(u.ID, guilds[3].ID); err != nil {
		t.Fatalf("verified join err = %v", err)
	}
	if err := p.VerifyUser(31337); !errors.Is(err, ErrNotFound) {
		t.Errorf("verify ghost err = %v", err)
	}
}

func TestNormalGuildLimit(t *testing.T) {
	p := New(Options{NormalGuildLimit: 2, UnverifiedJoinLimit: 2})
	owner := p.CreateUser("owner")
	u := p.CreateUser("capped")
	p.VerifyUser(u.ID)
	g1, _ := p.CreateGuild(owner.ID, "a", false)
	g2, _ := p.CreateGuild(owner.ID, "b", false)
	g3, _ := p.CreateGuild(owner.ID, "c", false)
	if err := p.JoinGuild(u.ID, g1.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.JoinGuild(u.ID, g2.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.JoinGuild(u.ID, g3.ID); !errors.Is(err, ErrGuildLimit) {
		t.Fatalf("over-limit join err = %v", err)
	}
	// Bots have no limit (paper §4.1): install the same bot everywhere.
	bot, _ := p.RegisterBot(owner.ID, "everywhere")
	for _, g := range []*Guild{g1, g2, g3} {
		if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.SendMessages|permissions.ViewChannel); err != nil {
			t.Fatalf("install into %s: %v", g.Name, err)
		}
	}
	if n := len(p.GuildsOf(bot.ID)); n != 3 {
		t.Errorf("bot in %d guilds, want 3", n)
	}
}

func TestInviteFlow(t *testing.T) {
	p, owner, _, _ := fixture(t)
	priv, _ := p.CreateGuild(owner.ID, "secret", true)
	code, err := p.CreateInvite(owner.ID, priv.ID)
	if err != nil {
		t.Fatal(err)
	}
	u := p.CreateUser("guest")
	gid, err := p.RedeemInvite(u.ID, code)
	if err != nil || gid != priv.ID {
		t.Fatalf("redeem = %v, %v", gid, err)
	}
	if _, err := p.RedeemInvite(u.ID, "nope"); !errors.Is(err, ErrInviteExpired) {
		t.Errorf("bad code err = %v", err)
	}
	// Non-member cannot mint invites; a member without the bit cannot
	// either once @everyone loses it.
	stranger := p.CreateUser("stranger")
	if _, err := p.CreateInvite(stranger.ID, priv.ID); !errors.Is(err, ErrNotMember) {
		t.Errorf("stranger invite err = %v", err)
	}
	if err := p.EditRole(owner.ID, priv.ID, priv.EveryoneRoleID(), DefaultEveryonePerms.Remove(permissions.CreateInstantInvite)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateInvite(u.ID, priv.ID); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("no-perm invite err = %v", err)
	}
}

func TestLeaveGuild(t *testing.T) {
	p, owner, g, _ := fixture(t)
	u := addUser(t, p, g, "alice")
	if err := p.LeaveGuild(u.ID, g.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.LeaveGuild(u.ID, g.ID); !errors.Is(err, ErrNotMember) {
		t.Errorf("double leave err = %v", err)
	}
	if err := p.LeaveGuild(owner.ID, g.ID); !errors.Is(err, ErrOwnerImmune) {
		t.Errorf("owner leave err = %v", err)
	}
	if err := p.LeaveGuild(u.ID, 777); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost guild err = %v", err)
	}
}

func TestInstallBotConsent(t *testing.T) {
	p, owner, g, _ := fixture(t)
	bot, _ := p.RegisterBot(owner.ID, "moder")
	req := permissions.SendMessages | permissions.ViewChannel | permissions.KickMembers

	// Installer must hold manage-server (paper: "manage guild" needed).
	pleb := addUser(t, p, g, "pleb")
	if _, err := p.InstallBot(pleb.ID, g.ID, bot.ID, req); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("pleb install err = %v", err)
	}
	role, err := p.InstallBot(owner.ID, g.ID, bot.ID, req)
	if err != nil {
		t.Fatal(err)
	}
	if !role.Managed || role.Perms != req {
		t.Errorf("managed role wrong: %+v", role)
	}
	got, err := p.Permissions(g.ID, bot.ID)
	if err != nil || !got.Has(req) {
		t.Errorf("bot perms = %s, %v", got, err)
	}
	// Reinstall is rejected; undefined bits are rejected; normal users
	// cannot be installed.
	if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, req); !errors.Is(err, ErrAlreadyMember) {
		t.Errorf("reinstall err = %v", err)
	}
	bot2, _ := p.RegisterBot(owner.ID, "x")
	if _, err := p.InstallBot(owner.ID, g.ID, bot2.ID, permissions.Permission(1<<60)); !errors.Is(err, ErrUndefinedPerms) {
		t.Errorf("undefined perms err = %v", err)
	}
	if _, err := p.InstallBot(owner.ID, g.ID, pleb.ID, req); !errors.Is(err, ErrNotBot) {
		t.Errorf("install human err = %v", err)
	}
}

func TestUninstallBot(t *testing.T) {
	p, owner, g, _ := fixture(t)
	bot, _ := p.RegisterBot(owner.ID, "temp")
	role, err := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.SendMessages|permissions.ViewChannel)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UninstallBot(owner.ID, g.ID, bot.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Members[bot.ID]; ok {
		t.Error("bot still a member after uninstall")
	}
	if _, ok := g.Roles[role.ID]; ok {
		t.Error("managed role not cleaned up")
	}
	if err := p.UninstallBot(owner.ID, g.ID, bot.ID); !errors.Is(err, ErrNotMember) {
		t.Errorf("double uninstall err = %v", err)
	}
}

func TestAdministratorBypassesOverwrites(t *testing.T) {
	p, owner, g, general := fixture(t)
	u := addUser(t, p, g, "admin2b")
	admin, err := p.CreateRole(owner.ID, g.ID, "admin", permissions.Administrator, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Deny everything in the channel for @everyone.
	err = p.SetOverwrite(owner.ID, general.ID, Overwrite{
		Kind: OverwriteRole, TargetID: g.EveryoneRoleID(), Deny: permissions.All,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendMessage(u.ID, general.ID, "blocked"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("denied member could post: %v", err)
	}
	if err := p.GrantRole(owner.ID, g.ID, u.ID, admin.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SendMessage(u.ID, general.ID, "admin passes"); err != nil {
		t.Fatalf("admin blocked by overwrite: %v", err)
	}
}

func TestChannelOverwriteOrdering(t *testing.T) {
	p, owner, g, general := fixture(t)
	u := addUser(t, p, g, "target")
	muted, _ := p.CreateRole(owner.ID, g.ID, "muted", permissions.None, 2)
	helper, _ := p.CreateRole(owner.ID, g.ID, "helper", permissions.None, 3)
	p.GrantRole(owner.ID, g.ID, u.ID, muted.ID)
	p.GrantRole(owner.ID, g.ID, u.ID, helper.ID)

	// Role-level deny (muted) and allow (helper): allow wins within the
	// aggregated role stage, like Discord.
	p.SetOverwrite(owner.ID, general.ID, Overwrite{Kind: OverwriteRole, TargetID: muted.ID, Deny: permissions.SendMessages})
	p.SetOverwrite(owner.ID, general.ID, Overwrite{Kind: OverwriteRole, TargetID: helper.ID, Allow: permissions.SendMessages})
	if _, err := p.SendMessage(u.ID, general.ID, "role allow beats role deny"); err != nil {
		t.Fatalf("aggregated role allow lost: %v", err)
	}
	// Member-level deny beats everything before it.
	p.SetOverwrite(owner.ID, general.ID, Overwrite{Kind: OverwriteMember, TargetID: u.ID, Deny: permissions.SendMessages})
	if _, err := p.SendMessage(u.ID, general.ID, "x"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("member deny ignored: %v", err)
	}
	// Replacing the member overwrite with an allow restores access.
	p.SetOverwrite(owner.ID, general.ID, Overwrite{Kind: OverwriteMember, TargetID: u.ID, Allow: permissions.SendMessages})
	if _, err := p.SendMessage(u.ID, general.ID, "back"); err != nil {
		t.Fatalf("member allow ignored: %v", err)
	}
	perms, err := p.ChannelPermissions(general.ID, u.ID)
	if err != nil || !perms.Has(permissions.SendMessages) {
		t.Errorf("ChannelPermissions = %s, %v", perms, err)
	}
}

func TestSetOverwriteRequiresHeldPerms(t *testing.T) {
	p, owner, g, general := fixture(t)
	mod := addUser(t, p, g, "mod")
	r, _ := p.CreateRole(owner.ID, g.ID, "mod", permissions.ManageRoles|permissions.KickMembers, 4)
	p.GrantRole(owner.ID, g.ID, mod.ID, r.ID)
	// Rule ii at channel level: cannot allow a permission you lack.
	err := p.SetOverwrite(mod.ID, general.ID, Overwrite{
		Kind: OverwriteRole, TargetID: g.EveryoneRoleID(), Allow: permissions.BanMembers,
	})
	if !errors.Is(err, ErrHierarchy) {
		t.Errorf("overwrite grant of unheld perm err = %v", err)
	}
	err = p.SetOverwrite(mod.ID, general.ID, Overwrite{
		Kind: OverwriteRole, TargetID: g.EveryoneRoleID(), Allow: permissions.KickMembers,
	})
	if err != nil {
		t.Errorf("overwrite of held perm err = %v", err)
	}
	pleb := addUser(t, p, g, "pleb")
	err = p.SetOverwrite(pleb.ID, general.ID, Overwrite{Kind: OverwriteMember, TargetID: pleb.ID, Allow: permissions.SendMessages})
	if !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("pleb overwrite err = %v", err)
	}
}
