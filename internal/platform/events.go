package platform

import (
	"sync"
	"time"
)

// EventType labels platform events delivered over the gateway.
type EventType string

// Event types.
const (
	EventMessageCreate     EventType = "MESSAGE_CREATE"
	EventGuildMemberAdd    EventType = "GUILD_MEMBER_ADD"
	EventGuildMemberRemove EventType = "GUILD_MEMBER_REMOVE"
	EventGuildBanAdd       EventType = "GUILD_BAN_ADD"
	EventRoleUpdate        EventType = "GUILD_ROLE_UPDATE"
)

// eventFlush is an internal marker used by Flush; never delivered to
// subscribers.
const eventFlush EventType = "__FLUSH__"

// Event is a platform occurrence. Message is set for MESSAGE_CREATE.
type Event struct {
	Type        EventType
	GuildID     ID
	ChannelID   ID
	UserID      ID
	Message     *Message
	Interaction *Interaction
	At          time.Time

	flush chan struct{}
}

// Subscription receives events matching its filter on C. If a
// subscriber falls behind its buffer, events are dropped and counted —
// the same back-pressure behaviour a real gateway applies to slow bots.
type Subscription struct {
	C      chan Event
	id     int
	filter func(Event) bool

	mu      sync.Mutex
	dropped int
	onDrop  func(total int)
	closed  bool
}

// Dropped reports how many events were discarded because the subscriber
// was slow.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SetDropHook installs a callback invoked (outside the subscription
// lock) with the running drop total each time an event is discarded, so
// consumers like the gateway can account for upstream backpressure
// losses live instead of only at teardown.
func (s *Subscription) SetDropHook(fn func(total int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onDrop = fn
}

func (s *Subscription) deliver(e Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.filter != nil && !s.filter(e) {
		s.mu.Unlock()
		return
	}
	var hook func(int)
	var total int
	select {
	case s.C <- e:
	default:
		s.dropped++
		hook, total = s.onDrop, s.dropped
	}
	s.mu.Unlock()
	if hook != nil {
		hook(total)
	}
}

func (s *Subscription) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.C)
	}
}

// bus fans platform events out to subscribers. Delivery happens on a
// dedicated dispatcher goroutine so that publishing — which occurs while
// the platform write-lock is held — never invokes subscriber filters
// that might re-enter the platform (and self-deadlock on the RWMutex).
type bus struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Event
	stopped bool
	nextID  int
	subs    map[int]*Subscription
}

func newBus() *bus {
	b := &bus{subs: make(map[int]*Subscription)}
	b.cond = sync.NewCond(&b.mu)
	go b.run()
	return b
}

// run drains the queue in order, delivering outside any platform lock.
func (b *bus) run() {
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.stopped {
			b.cond.Wait()
		}
		if b.stopped && len(b.queue) == 0 {
			b.mu.Unlock()
			return
		}
		batch := b.queue
		b.queue = nil
		subs := make([]*Subscription, 0, len(b.subs))
		for _, s := range b.subs {
			subs = append(subs, s)
		}
		b.mu.Unlock()
		for _, e := range batch {
			if e.Type == eventFlush {
				close(e.flush)
				continue
			}
			for _, s := range subs {
				s.deliver(e)
			}
		}
	}
}

func (b *bus) stop() {
	b.mu.Lock()
	b.stopped = true
	b.cond.Signal()
	b.mu.Unlock()
}

// Subscribe registers for events. filter may be nil for all events;
// buffer is the channel depth before drops begin (min 1).
func (p *Platform) Subscribe(buffer int, filter func(Event) bool) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	p.bus.mu.Lock()
	defer p.bus.mu.Unlock()
	s := &Subscription{C: make(chan Event, buffer), id: p.bus.nextID, filter: filter}
	p.bus.nextID++
	p.bus.subs[s.id] = s
	return s
}

// Unsubscribe removes the subscription and closes its channel.
func (p *Platform) Unsubscribe(s *Subscription) {
	p.bus.mu.Lock()
	delete(p.bus.subs, s.id)
	p.bus.mu.Unlock()
	s.close()
}

// publishLocked enqueues an event for asynchronous fan-out. Callers
// hold p.mu; enqueueing never blocks and never runs subscriber code.
func (p *Platform) publishLocked(e Event) {
	p.bus.mu.Lock()
	if !p.bus.stopped {
		p.bus.queue = append(p.bus.queue, e)
		p.bus.cond.Signal()
	}
	p.bus.mu.Unlock()
}

// Close stops the event dispatcher. Pending events are still delivered;
// subsequent publishes are dropped.
func (p *Platform) Close() {
	p.bus.stop()
}

// Flush blocks until every event published before the call has been
// handed to subscribers — useful in tests and in the honeypot's
// settle phase.
func (p *Platform) Flush() {
	done := make(chan struct{})
	p.bus.mu.Lock()
	if p.bus.stopped {
		p.bus.mu.Unlock()
		close(done)
		<-done
		return
	}
	p.bus.queue = append(p.bus.queue, Event{Type: eventFlush, flush: done})
	p.bus.cond.Signal()
	p.bus.mu.Unlock()
	<-done
}
