package platform

import (
	"time"

	"repro/internal/permissions"
)

// Slash-command interactions. The prefix-command model the paper
// studies gives the platform no idea which user asked a bot to act —
// the root cause of re-delegation (§5). Discord's later "interactions"
// model changes that: a command invocation is a first-class platform
// object carrying the invoking user, which bots (and a runtime
// enforcer) can attribute actions to exactly. This file models that
// evolution so the enforcer's heuristic and exact modes can be
// compared.

// Interaction is one slash-command invocation of a bot by a user.
type Interaction struct {
	ID        ID
	GuildID   ID
	ChannelID ID
	UserID    ID // the invoking user — the context prefix commands lack
	BotID     ID
	Command   string
	Args      string
	At        time.Time

	responded bool
}

// EventInteractionCreate is dispatched to the target bot's gateway
// session when a user invokes one of its commands.
const EventInteractionCreate EventType = "INTERACTION_CREATE"

// Interact invokes a slash command on a bot. The invoking user needs
// view-channel and send-messages in the channel (the "use application
// commands" surface); the bot must be a guild member.
func (p *Platform) Interact(userID, botID, channelID ID, command, args string) (*Interaction, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return nil, err
	}
	if ch.Kind != ChannelText {
		return nil, ErrWrongChannelKind
	}
	bot, ok := p.users[botID]
	if !ok {
		return nil, ErrNotFound
	}
	if !bot.IsBot() {
		return nil, ErrNotBot
	}
	if _, ok := g.Members[botID]; !ok {
		return nil, ErrNotMember
	}
	need := permissions.ViewChannel | permissions.SendMessages
	if err := p.requireChannelLocked(g, ch, userID, need); err != nil {
		return nil, err
	}
	in := &Interaction{
		ID: p.ids.Next(), GuildID: g.ID, ChannelID: channelID,
		UserID: userID, BotID: botID, Command: command, Args: args, At: p.now(),
	}
	if g.interactions == nil {
		g.interactions = make(map[ID]*Interaction)
	}
	g.interactions[in.ID] = in
	p.publishLocked(Event{
		Type: EventInteractionCreate, GuildID: g.ID, ChannelID: channelID,
		UserID: userID, Interaction: in, At: in.At,
	})
	return in, nil
}

// InteractionByID resolves a stored interaction within a guild.
func (p *Platform) InteractionByID(guildID, interactionID ID) (*Interaction, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	in, ok := g.interactions[interactionID]
	if !ok {
		return nil, ErrNotFound
	}
	cp := *in
	return &cp, nil
}

// RespondInteraction posts the bot's reply to an interaction. Only the
// targeted bot may respond, and only once. Like Discord, interaction
// replies bypass channel send-permission overwrites: the user invited
// the response.
func (p *Platform) RespondInteraction(botID, guildID, interactionID ID, content string) (*Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	in, ok := g.interactions[interactionID]
	if !ok {
		return nil, ErrNotFound
	}
	if in.BotID != botID {
		return nil, ErrPermissionDenied
	}
	if in.responded {
		return nil, ErrAlreadyResponded
	}
	ch, ok := g.Channels[in.ChannelID]
	if !ok {
		return nil, ErrNotFound
	}
	if content == "" {
		return nil, ErrEmptyContent
	}
	in.responded = true
	msg := &Message{
		ID: p.ids.Next(), ChannelID: ch.ID, GuildID: g.ID,
		AuthorID: botID, Content: content, Timestamp: p.now(),
	}
	ch.Messages = append(ch.Messages, msg)
	p.publishLocked(Event{
		Type: EventMessageCreate, GuildID: g.ID, ChannelID: ch.ID,
		UserID: botID, Message: msg, At: msg.Timestamp,
	})
	return msg, nil
}
