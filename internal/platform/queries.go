package platform

import "sort"

// IsMember reports whether the user belongs to the guild.
func (p *Platform) IsMember(guildID, userID ID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return false
	}
	_, ok = g.Members[userID]
	return ok
}

// ChannelInfo is a read-only channel summary for gateway consumers.
type ChannelInfo struct {
	ID   ID
	Name string
	Kind ChannelKind
}

// GuildInfo is a read-only guild summary for gateway consumers.
type GuildInfo struct {
	ID       ID
	Name     string
	OwnerID  ID
	Private  bool
	Members  int
	Channels []ChannelInfo
}

// GuildSummary returns a read-only snapshot of a guild the user belongs
// to.
func (p *Platform) GuildSummary(guildID, userID ID) (GuildInfo, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return GuildInfo{}, ErrNotFound
	}
	if _, ok := g.Members[userID]; !ok {
		return GuildInfo{}, ErrNotMember
	}
	info := GuildInfo{ID: g.ID, Name: g.Name, OwnerID: g.OwnerID, Private: g.Private, Members: len(g.Members)}
	for _, ch := range g.Channels {
		info.Channels = append(info.Channels, ChannelInfo{ID: ch.ID, Name: ch.Name, Kind: ch.Kind})
	}
	sort.Slice(info.Channels, func(i, j int) bool { return info.Channels[i].ID < info.Channels[j].ID })
	return info, nil
}

// ChannelMessages returns a copy of every message in a channel without
// a permission check — trusted internal access for experiment
// forensics, the counterpart of AuditLog's Nil-actor path.
func (p *Platform) ChannelMessages(channelID ID) ([]*Message, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ch, _, err := p.channelLocked(channelID)
	if err != nil {
		return nil, err
	}
	out := make([]*Message, len(ch.Messages))
	copy(out, ch.Messages)
	return out, nil
}

// MemberCount returns the number of members in a guild.
func (p *Platform) MemberCount(guildID ID) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return 0
	}
	return len(g.Members)
}
