package platform

import "repro/internal/permissions"

// Webhooks. Figure 3 shows ~9% of bots request manage-webhooks; the
// threat model cares because a webhook is an identity-laundering
// channel: whoever holds the webhook token can post into the channel
// with an arbitrary display name, unauthenticated — so a bot that
// creates one can keep posting (or exfiltrating) even after losing its
// own permissions, and messages no longer carry the bot's identity.

// Webhook is a channel-bound posting endpoint.
type Webhook struct {
	ID        ID
	ChannelID ID
	GuildID   ID
	Name      string
	Token     string // bearer credential: possession is authorization
	CreatorID ID
}

// EventWebhookUpdate is dispatched on webhook creation and deletion.
const EventWebhookUpdate EventType = "WEBHOOKS_UPDATE"

// CreateWebhook creates a webhook on a text channel. Requires
// manage-webhooks in that channel.
func (p *Platform) CreateWebhook(actorID, channelID ID, name string) (*Webhook, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return nil, err
	}
	if ch.Kind != ChannelText {
		return nil, ErrWrongChannelKind
	}
	if err := p.requireChannelLocked(g, ch, actorID, permissions.ManageWebhooks); err != nil {
		return nil, err
	}
	wh := &Webhook{
		ID: p.ids.Next(), ChannelID: channelID, GuildID: g.ID,
		Name: name, Token: newToken(), CreatorID: actorID,
	}
	if p.webhooks == nil {
		p.webhooks = make(map[string]*Webhook)
	}
	p.webhooks[wh.Token] = wh
	p.auditLocked(g.ID, actorID, "webhook.create", name, ch.Name)
	p.publishLocked(Event{Type: EventWebhookUpdate, GuildID: g.ID, ChannelID: channelID, UserID: actorID, At: p.now()})
	return wh, nil
}

// DeleteWebhook removes a webhook. Requires manage-webhooks.
func (p *Platform) DeleteWebhook(actorID ID, token string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	wh, ok := p.webhooks[token]
	if !ok {
		return ErrNotFound
	}
	ch, g, err := p.channelLocked(wh.ChannelID)
	if err != nil {
		return err
	}
	if err := p.requireChannelLocked(g, ch, actorID, permissions.ManageWebhooks); err != nil {
		return err
	}
	delete(p.webhooks, token)
	p.auditLocked(g.ID, actorID, "webhook.delete", wh.Name, ch.Name)
	p.publishLocked(Event{Type: EventWebhookUpdate, GuildID: g.ID, ChannelID: wh.ChannelID, UserID: actorID, At: p.now()})
	return nil
}

// ExecuteWebhook posts through a webhook. Deliberately NO account
// authentication and NO permission check: possession of the token is
// the whole credential, exactly the property that makes leaked webhook
// tokens (and webhook-laundering bots) dangerous. The message's
// AuthorID is the webhook's ID, not any user's.
func (p *Platform) ExecuteWebhook(token, displayName, content string) (*Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wh, ok := p.webhooks[token]
	if !ok {
		return nil, ErrInvalidToken
	}
	if content == "" {
		return nil, ErrEmptyContent
	}
	ch, g, err := p.channelLocked(wh.ChannelID)
	if err != nil {
		return nil, err
	}
	name := displayName
	if name == "" {
		name = wh.Name
	}
	msg := &Message{
		ID: p.ids.Next(), ChannelID: ch.ID, GuildID: g.ID,
		AuthorID:  wh.ID, // webhook identity, not a user account
		Content:   "[" + name + "] " + content,
		Timestamp: p.now(),
	}
	ch.Messages = append(ch.Messages, msg)
	p.publishLocked(Event{Type: EventMessageCreate, GuildID: g.ID, ChannelID: ch.ID, UserID: wh.ID, Message: msg, At: msg.Timestamp})
	return msg, nil
}

// WebhooksOf lists a guild's webhooks (manage-webhooks required):
// tokens included, since holders of this permission can read them —
// which is why granting it to a bot is listed among the dangerous
// permissions.
func (p *Platform) WebhooksOf(actorID, guildID ID) ([]*Webhook, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return nil, ErrNotFound
	}
	if err := p.requireLocked(g, actorID, permissions.ManageWebhooks); err != nil {
		return nil, err
	}
	var out []*Webhook
	for _, wh := range p.webhooks {
		if wh.GuildID == guildID {
			cp := *wh
			out = append(out, &cp)
		}
	}
	return out, nil
}
