package platform

import (
	"strconv"
	"sync/atomic"
)

// ID is a snowflake-style identifier. Real Discord snowflakes encode a
// millisecond timestamp, worker id and sequence number; for reproducible
// experiments we only need uniqueness and monotonicity, so IDs are
// allocated from a per-platform counter seeded by a configurable epoch.
type ID uint64

// Nil is the zero ID, never allocated to an entity.
const Nil ID = 0

// String renders the ID the way Discord renders snowflakes: a decimal
// integer.
func (id ID) String() string { return strconv.FormatUint(uint64(id), 10) }

// ParseID parses a decimal snowflake.
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	return ID(v), err
}

// idSource hands out unique IDs. The epoch shifts the counter so IDs
// from differently-seeded platforms don't collide in mixed fixtures.
type idSource struct {
	next uint64
}

func newIDSource(epoch uint64) *idSource {
	if epoch == 0 {
		epoch = 1 // reserve 0 for Nil
	}
	return &idSource{next: epoch}
}

func (s *idSource) Next() ID {
	return ID(atomic.AddUint64(&s.next, 1))
}
