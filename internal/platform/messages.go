package platform

import "repro/internal/permissions"

// SendMessage posts a message to a text channel on behalf of actorID.
// Requires view-channel and send-messages in the channel, plus
// attach-files when attachments are present. Returns the stored message.
func (p *Platform) SendMessage(actorID, channelID ID, content string, atts ...Attachment) (*Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return nil, err
	}
	if ch.Kind != ChannelText {
		return nil, ErrWrongChannelKind
	}
	if content == "" && len(atts) == 0 {
		return nil, ErrEmptyContent
	}
	need := permissions.ViewChannel | permissions.SendMessages
	if len(atts) > 0 {
		need |= permissions.AttachFiles
	}
	if err := p.requireChannelLocked(g, ch, actorID, need); err != nil {
		return nil, err
	}
	msg := &Message{
		ID:        p.ids.Next(),
		ChannelID: channelID,
		GuildID:   g.ID,
		AuthorID:  actorID,
		Content:   content,
		Timestamp: p.now(),
	}
	for _, a := range atts {
		a.ID = p.ids.Next()
		msg.Attachments = append(msg.Attachments, a)
	}
	ch.Messages = append(ch.Messages, msg)
	p.cMessages.Inc()
	p.publishLocked(Event{
		Type: EventMessageCreate, GuildID: g.ID, ChannelID: channelID,
		UserID: actorID, Message: msg, At: msg.Timestamp,
	})
	return msg, nil
}

// History returns up to limit most-recent messages, oldest first.
// Requires view-channel and read-message-history.
func (p *Platform) History(actorID, channelID ID, limit int) ([]*Message, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return nil, err
	}
	if ch.Kind != ChannelText {
		return nil, ErrWrongChannelKind
	}
	need := permissions.ViewChannel | permissions.ReadMessageHistory
	if err := p.requireChannelLocked(g, ch, actorID, need); err != nil {
		return nil, err
	}
	msgs := ch.Messages
	if limit > 0 && len(msgs) > limit {
		msgs = msgs[len(msgs)-limit:]
	}
	out := make([]*Message, len(msgs))
	copy(out, msgs)
	return out, nil
}

// DeleteMessage removes a message. Authors may delete their own;
// otherwise manage-messages is required.
func (p *Platform) DeleteMessage(actorID, channelID, messageID ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return err
	}
	for i, m := range ch.Messages {
		if m.ID != messageID {
			continue
		}
		if m.AuthorID != actorID {
			if err := p.requireChannelLocked(g, ch, actorID, permissions.ManageMessages); err != nil {
				return err
			}
		}
		ch.Messages = append(ch.Messages[:i], ch.Messages[i+1:]...)
		p.auditLocked(g.ID, actorID, "message.delete", messageID.String(), "")
		return nil
	}
	return ErrNotFound
}

// Attachment fetches a posted attachment by message and attachment ID.
// Requires view-channel; the paper's canary documents are retrieved this
// way by bots before being "opened".
func (p *Platform) Attachment(actorID, channelID, messageID, attachmentID ID) (*Attachment, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return nil, err
	}
	if err := p.requireChannelLocked(g, ch, actorID, permissions.ViewChannel); err != nil {
		return nil, err
	}
	for _, m := range ch.Messages {
		if m.ID != messageID {
			continue
		}
		for i := range m.Attachments {
			if m.Attachments[i].ID == attachmentID {
				a := m.Attachments[i]
				return &a, nil
			}
		}
	}
	return nil, ErrNotFound
}
