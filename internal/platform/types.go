package platform

import (
	"time"

	"repro/internal/permissions"
)

// UserKind distinguishes the two account classes the paper's §4.1
// describes: normal users and bot users owned by a normal user.
type UserKind int

// User kinds.
const (
	KindNormal UserKind = iota
	KindBot
)

func (k UserKind) String() string {
	if k == KindBot {
		return "bot"
	}
	return "normal"
}

// User is a platform account. Bot accounts carry the ID of the normal
// user that owns them and authenticate with a token.
type User struct {
	ID            ID
	Name          string
	Discriminator string // e.g. "6714" in "editid#6714"
	Kind          UserKind
	Email         string
	OwnerID       ID     // for bots: the owning normal user
	Token         string // for bots: gateway/REST credential
	Verified      bool   // mobile-verified; joining many guilds quickly requires it
	CreatedAt     time.Time
}

// Tag renders the user the way Discord shows it, e.g. "editid#6714".
func (u *User) Tag() string { return u.Name + "#" + u.Discriminator }

// IsBot reports whether the account is a chatbot.
func (u *User) IsBot() bool { return u.Kind == KindBot }

// Role is a named permission bundle within a guild. Position 0 is the
// implicit @everyone role every member holds.
type Role struct {
	ID       ID
	GuildID  ID
	Name     string
	Position permissions.RolePosition
	Perms    permissions.Permission
	Managed  bool // created automatically for an installed bot
}

// OverwriteKind says whether a channel overwrite targets a role or a
// specific member.
type OverwriteKind int

// Overwrite kinds.
const (
	OverwriteRole OverwriteKind = iota
	OverwriteMember
)

// Overwrite adjusts channel-level permissions for a role or member.
// Deny is applied before Allow, as on Discord.
type Overwrite struct {
	Kind     OverwriteKind
	TargetID ID // role or user ID
	Allow    permissions.Permission
	Deny     permissions.Permission
}

// ChannelKind distinguishes text and voice channels.
type ChannelKind int

// Channel kinds.
const (
	ChannelText ChannelKind = iota
	ChannelVoice
)

func (k ChannelKind) String() string {
	if k == ChannelVoice {
		return "voice"
	}
	return "text"
}

// Channel is a guild text or voice channel.
type Channel struct {
	ID         ID
	GuildID    ID
	Name       string
	Kind       ChannelKind
	Overwrites []Overwrite
	Messages   []*Message // text channels only, append-ordered
}

// Member is a user's membership record within one guild.
type Member struct {
	UserID   ID
	Nick     string
	RoleIDs  []ID // excluding the implicit @everyone role
	JoinedAt time.Time
}

// Guild is a server: a role list, channels, and members. Private guilds
// require an invite to join (paper §4.1).
type Guild struct {
	ID       ID
	Name     string
	OwnerID  ID
	Private  bool
	Roles    map[ID]*Role
	Channels map[ID]*Channel
	Members  map[ID]*Member
	Banned   map[ID]bool

	everyoneRole ID
	voice        map[ID]*VoiceState
	interactions map[ID]*Interaction
}

// EveryoneRoleID returns the ID of the guild's implicit @everyone role.
func (g *Guild) EveryoneRoleID() ID { return g.everyoneRole }

// Attachment is a file posted with a message. Data is held inline; the
// canary experiments post small DOCX/PDF artifacts.
type Attachment struct {
	ID          ID
	Filename    string
	ContentType string
	Data        []byte
}

// Message is a text-channel message.
type Message struct {
	ID          ID
	ChannelID   ID
	GuildID     ID
	AuthorID    ID
	Content     string
	Attachments []Attachment
	Timestamp   time.Time
}

// AuditEntry records a privileged platform action for later forensics —
// the honeypot uses it to corroborate canary triggers.
type AuditEntry struct {
	At      time.Time
	GuildID ID
	ActorID ID
	Action  string
	Target  string
	Detail  string
}
