package platform

import (
	"math"

	"repro/internal/obs/journal"
	"repro/internal/permissions"
)

// memberHighestRoleLocked returns the position of the member's highest
// role. The guild owner outranks everything.
func memberHighestRoleLocked(g *Guild, userID ID) permissions.RolePosition {
	if g.OwnerID == userID {
		return permissions.RolePosition(math.MaxInt32)
	}
	m, ok := g.Members[userID]
	if !ok {
		return -1
	}
	best := permissions.RolePosition(0) // implicit @everyone
	for _, rid := range m.RoleIDs {
		if r := g.Roles[rid]; r != nil && r.Position > best {
			best = r.Position
		}
	}
	return best
}

// basePermsLocked computes the guild-level permission set of a member:
// the union of @everyone and every held role, with the administrator
// bit (or guild ownership) expanding to everything.
func basePermsLocked(g *Guild, userID ID) (permissions.Permission, error) {
	if g.OwnerID == userID {
		return permissions.All, nil
	}
	m, ok := g.Members[userID]
	if !ok {
		return permissions.None, ErrNotMember
	}
	perms := g.Roles[g.everyoneRole].Perms
	for _, rid := range m.RoleIDs {
		if r := g.Roles[rid]; r != nil {
			perms |= r.Perms
		}
	}
	if perms.IsAdmin() {
		return permissions.All, nil
	}
	return perms, nil
}

// channelPermsLocked applies channel overwrites on top of the base set,
// in Discord's documented order: @everyone overwrite, aggregated role
// overwrites (all denies then all allows), then the member overwrite.
// Administrators and the owner bypass overwrites entirely (paper §4.2:
// "the administrator permission ... bypasses channel permission
// overwrites").
func channelPermsLocked(g *Guild, ch *Channel, userID ID) (permissions.Permission, error) {
	base, err := basePermsLocked(g, userID)
	if err != nil {
		return permissions.None, err
	}
	if base == permissions.All {
		return base, nil
	}
	m := g.Members[userID]
	held := make(map[ID]bool, len(m.RoleIDs)+1)
	held[g.everyoneRole] = true
	for _, rid := range m.RoleIDs {
		held[rid] = true
	}

	perms := base
	// 1. @everyone overwrite.
	for _, ow := range ch.Overwrites {
		if ow.Kind == OverwriteRole && ow.TargetID == g.everyoneRole {
			perms = perms.Remove(ow.Deny).Add(ow.Allow)
		}
	}
	// 2. Held-role overwrites: all denies first, then all allows.
	var deny, allow permissions.Permission
	for _, ow := range ch.Overwrites {
		if ow.Kind == OverwriteRole && ow.TargetID != g.everyoneRole && held[ow.TargetID] {
			deny |= ow.Deny
			allow |= ow.Allow
		}
	}
	perms = perms.Remove(deny).Add(allow)
	// 3. Member overwrite.
	for _, ow := range ch.Overwrites {
		if ow.Kind == OverwriteMember && ow.TargetID == userID {
			perms = perms.Remove(ow.Deny).Add(ow.Allow)
		}
	}
	return perms, nil
}

// Permissions returns the effective guild-level permission set of a
// member.
func (p *Platform) Permissions(guildID, userID ID) (permissions.Permission, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return permissions.None, ErrNotFound
	}
	return basePermsLocked(g, userID)
}

// ChannelPermissions returns the effective permission set of a member
// within one channel, after overwrites.
func (p *Platform) ChannelPermissions(channelID, userID ID) (permissions.Permission, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ch, g, err := p.channelLocked(channelID)
	if err != nil {
		return permissions.None, err
	}
	return channelPermsLocked(g, ch, userID)
}

// HighestRole returns the member's highest role position, with the
// owner reported as the maximum position.
func (p *Platform) HighestRole(guildID, userID ID) (permissions.RolePosition, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g, ok := p.guilds[guildID]
	if !ok {
		return -1, ErrNotFound
	}
	if _, ok := g.Members[userID]; !ok && g.OwnerID != userID {
		return -1, ErrNotMember
	}
	return memberHighestRoleLocked(g, userID), nil
}

// requireLocked verifies the actor is a member holding need at guild
// level.
func (p *Platform) requireLocked(g *Guild, actorID ID, need permissions.Permission) error {
	perms, err := basePermsLocked(g, actorID)
	if err != nil {
		return err
	}
	if !perms.Has(need) {
		p.denyLocked(g, actorID, need, "")
		return ErrPermissionDenied
	}
	return nil
}

// requireChannelLocked verifies the actor holds need within a channel.
func (p *Platform) requireChannelLocked(g *Guild, ch *Channel, actorID ID, need permissions.Permission) error {
	perms, err := channelPermsLocked(g, ch, actorID)
	if err != nil {
		return err
	}
	if !perms.Has(need) {
		p.denyLocked(g, actorID, need, ch.Name)
		return ErrPermissionDenied
	}
	return nil
}

// denyLocked counts a permission denial and journals it with enough
// context to attribute the refused action: who, where, which bits.
func (p *Platform) denyLocked(g *Guild, actorID ID, need permissions.Permission, channel string) {
	p.cDenials.Inc()
	if p.journal == nil {
		return
	}
	actor := ""
	if u := p.users[actorID]; u != nil {
		actor = u.Name
	}
	fields := map[string]any{
		"guild": g.Name,
		"actor": actor,
		"need":  need.Names(),
	}
	if channel != "" {
		fields["channel"] = channel
	}
	p.journal.Emit(journal.Event{
		Kind:      journal.KindPermissionDenied,
		Component: "platform",
		Fields:    fields,
	})
}

func (p *Platform) channelLocked(channelID ID) (*Channel, *Guild, error) {
	for _, g := range p.guilds {
		if ch, ok := g.Channels[channelID]; ok {
			return ch, g, nil
		}
	}
	return nil, nil, ErrNotFound
}

func (p *Platform) actorLocked(g *Guild, actorID ID) permissions.Actor {
	perms, _ := basePermsLocked(g, actorID)
	return permissions.Actor{
		HighestRole: memberHighestRoleLocked(g, actorID),
		Perms:       perms,
	}
}
