// Package longitudinal implements the paper's stated future work (§5):
// "a large-scale measurement that quantifies the prevalence of such
// phenomena" over time. It evolves a synthetic ecosystem through
// epochs — bot churn, permission creep, and gradually rising privacy-
// policy adoption (the paper "expect[s] that including privacy policies
// will become the norm in the future", as it did for voice assistants)
// — and measures each epoch with the same analyzers the pipeline uses,
// yielding trend series for the paper's headline metrics.
package longitudinal

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/listing"
	"repro/internal/permissions"
	"repro/internal/policygen"
	"repro/internal/synth"
	"repro/internal/traceability"
)

// EpochStats is one epoch's measurement.
type EpochStats struct {
	Epoch int
	Bots  int
	// ActivePct is the share of bots with readable (valid) invites.
	ActivePct float64
	// AdminPct is the share of active bots requesting administrator.
	AdminPct float64
	// PolicyPct is the share of active bots with a live policy.
	PolicyPct float64
	// BrokenPct is the broken-traceability share among active bots.
	BrokenPct float64
	// CompleteCount counts fully-disclosing policies.
	CompleteCount int
	// MeanRisk is the mean permission risk score of active bots.
	MeanRisk float64
	// CriticalPct is the share of active bots at critical risk level.
	CriticalPct float64
}

// Churn configures one evolution step.
type Churn struct {
	// NewBots arrive this epoch (developers keep publishing).
	NewBots int
	// RemovalRate is the probability an existing bot is delisted.
	RemovalRate float64
	// PolicyAdoptionRate is the probability a policy-less active bot
	// gains one this epoch.
	PolicyAdoptionRate float64
	// PolicyImprovementRate is the probability an existing partial
	// policy is rewritten to cover all four categories (the ecosystem
	// maturing toward complete disclosure).
	PolicyImprovementRate float64
	// PermCreepRate is the probability a non-admin bot escalates to
	// administrator (the path of least resistance the paper laments).
	PermCreepRate float64
}

// DefaultChurn models a slowly professionalizing ecosystem.
func DefaultChurn() Churn {
	return Churn{
		NewBots:               50,
		RemovalRate:           0.02,
		PolicyAdoptionRate:    0.08,
		PolicyImprovementRate: 0.05,
		PermCreepRate:         0.01,
	}
}

// Evolver mutates an ecosystem across epochs.
type Evolver struct {
	eco    *synth.Ecosystem
	rng    *rand.Rand
	pg     *policygen.Generator
	nextID int
	epoch  int
}

// NewEvolver wraps an ecosystem for evolution. The ecosystem is
// mutated in place.
func NewEvolver(eco *synth.Ecosystem, seed int64) *Evolver {
	maxID := 0
	for _, b := range eco.Bots {
		if b.ID > maxID {
			maxID = b.ID
		}
	}
	return &Evolver{
		eco:    eco,
		rng:    rand.New(rand.NewSource(seed)),
		pg:     policygen.New(seed ^ 0x10ad),
		nextID: maxID + 1,
	}
}

// Epoch returns how many steps have been applied.
func (e *Evolver) Epoch() int { return e.epoch }

// Step applies one epoch of churn.
func (e *Evolver) Step(c Churn) {
	e.epoch++
	kept := e.eco.Bots[:0]
	for _, b := range e.eco.Bots {
		if b.ID != e.eco.MaliciousID && e.rng.Float64() < c.RemovalRate {
			continue // delisted
		}
		e.evolveBot(b, c)
		kept = append(kept, b)
	}
	e.eco.Bots = kept
	for i := 0; i < c.NewBots; i++ {
		e.eco.Bots = append(e.eco.Bots, e.newBot())
	}
}

func (e *Evolver) evolveBot(b *listing.Bot, c Churn) {
	// Policy adoption: a policy-less bot publishes one (partial, like
	// the rest of the ecosystem at first).
	if b.InviteHealth == listing.InviteOK && b.PolicyText == "" &&
		e.rng.Float64() < c.PolicyAdoptionRate {
		b.HasWebsite = true
		b.HasPolicyLink = true
		b.PolicyDead = false
		b.PolicyText = e.pg.Generate(policygen.Spec{
			BotName: b.Name,
			Covered: []policygen.Category{policygen.Collect, policygen.Use},
		})
	}
	// Policy improvement: an existing policy is rewritten to complete.
	if b.PolicyText != "" && !b.PolicyDead && e.rng.Float64() < c.PolicyImprovementRate {
		b.PolicyText = e.pg.Generate(policygen.Spec{
			BotName: b.Name,
			Covered: policygen.AllCategories,
		})
	}
	// Permission creep.
	if !b.Perms.IsAdmin() && e.rng.Float64() < c.PermCreepRate {
		b.Perms |= permissions.Administrator
	}
}

func (e *Evolver) newBot() *listing.Bot {
	id := e.nextID
	e.nextID++
	b := &listing.Bot{
		ID:         id,
		Name:       fmt.Sprintf("Newcomer%d", id),
		Developers: []string{fmt.Sprintf("newdev%d#%04d", id, e.rng.Intn(10000))},
		Tags:       []string{"utility"},
		Prefix:     "!",
		Votes:      e.rng.Intn(500),
		GuildCount: e.rng.Intn(200),
		Perms:      permissions.SendMessages | permissions.ViewChannel,
	}
	if e.rng.Float64() < 0.55 {
		b.Perms |= permissions.Administrator
	}
	if e.rng.Float64() > 0.74 {
		b.InviteHealth = listing.InviteBroken
	}
	return b
}

// Measure computes an epoch's statistics with the pipeline's analyzers
// (traceability keyword classes, permission risk scoring) applied
// directly to the ecosystem's ground truth.
func Measure(eco *synth.Ecosystem, epoch int) EpochStats {
	var an traceability.Analyzer
	st := EpochStats{Epoch: epoch, Bots: len(eco.Bots)}
	active, admin, withPolicy, broken, critical := 0, 0, 0, 0, 0
	riskTotal := 0
	for _, b := range eco.Bots {
		if b.InviteHealth != listing.InviteOK {
			continue
		}
		active++
		if b.Perms.IsAdmin() {
			admin++
		}
		policy := ""
		if b.HasPolicyLink && !b.PolicyDead {
			policy = b.PolicyText
		}
		if policy != "" {
			withPolicy++
		}
		v := an.AnalyzePolicy(policy, b.Perms)
		switch v.Class {
		case policygen.Broken:
			broken++
		case policygen.Complete:
			st.CompleteCount++
		}
		riskTotal += b.Perms.RiskScore()
		if b.Perms.Level() == permissions.RiskCritical {
			critical++
		}
	}
	if active > 0 {
		st.ActivePct = 100 * float64(active) / float64(len(eco.Bots))
		st.AdminPct = 100 * float64(admin) / float64(active)
		st.PolicyPct = 100 * float64(withPolicy) / float64(active)
		st.BrokenPct = 100 * float64(broken) / float64(active)
		st.MeanRisk = float64(riskTotal) / float64(active)
		st.CriticalPct = 100 * float64(critical) / float64(active)
	}
	return st
}

// Run evolves the ecosystem for n epochs under churn c, measuring
// before the first step and after each step (n+1 rows).
func Run(eco *synth.Ecosystem, seed int64, n int, c Churn) []EpochStats {
	ev := NewEvolver(eco, seed)
	out := []EpochStats{Measure(eco, 0)}
	for i := 0; i < n; i++ {
		ev.Step(c)
		out = append(out, Measure(eco, ev.Epoch()))
	}
	return out
}

// Report renders the trend table.
func Report(w io.Writer, series []EpochStats) {
	fmt.Fprintln(w, "Longitudinal trends (per epoch):")
	fmt.Fprintf(w, "  %-6s %-6s %-8s %-7s %-8s %-8s %-9s %-9s %s\n",
		"epoch", "bots", "active%", "admin%", "policy%", "broken%", "complete", "meanRisk", "critical%")
	for _, s := range series {
		fmt.Fprintf(w, "  %-6d %-6d %-8.2f %-7.2f %-8.2f %-8.2f %-9d %-9.1f %.2f\n",
			s.Epoch, s.Bots, s.ActivePct, s.AdminPct, s.PolicyPct, s.BrokenPct,
			s.CompleteCount, s.MeanRisk, s.CriticalPct)
	}
}
