package longitudinal

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
)

func testEco(seed int64, n int) *synth.Ecosystem {
	return synth.Generate(synth.Config{Seed: seed, NumBots: n})
}

func TestMeasureBaselineMatchesPaperShape(t *testing.T) {
	eco := testEco(1, 4000)
	st := Measure(eco, 0)
	if st.Bots != 4000 {
		t.Fatalf("bots = %d", st.Bots)
	}
	if st.ActivePct < 70 || st.ActivePct > 78 {
		t.Errorf("active%% = %.2f", st.ActivePct)
	}
	if st.AdminPct < 50 || st.AdminPct > 60 {
		t.Errorf("admin%% = %.2f", st.AdminPct)
	}
	if st.BrokenPct < 92 || st.BrokenPct > 99 {
		t.Errorf("broken%% = %.2f", st.BrokenPct)
	}
	if st.CompleteCount != 0 {
		t.Errorf("complete = %d at epoch 0", st.CompleteCount)
	}
	if st.MeanRisk <= 0 || st.CriticalPct <= 0 {
		t.Errorf("risk stats empty: %+v", st)
	}
}

func TestRunTrendsDirections(t *testing.T) {
	eco := testEco(2, 3000)
	churn := DefaultChurn()
	churn.NewBots = 100 // outpace the 2% removal of a 3000-bot population
	series := Run(eco, 7, 12, churn)
	if len(series) != 13 {
		t.Fatalf("series length = %d", len(series))
	}
	first, last := series[0], series[len(series)-1]
	// Policy adoption must rise under positive adoption churn.
	if last.PolicyPct <= first.PolicyPct {
		t.Errorf("policy%% did not rise: %.2f -> %.2f", first.PolicyPct, last.PolicyPct)
	}
	// Broken traceability correspondingly falls.
	if last.BrokenPct >= first.BrokenPct {
		t.Errorf("broken%% did not fall: %.2f -> %.2f", first.BrokenPct, last.BrokenPct)
	}
	// Complete policies appear as improvement churn lands.
	if last.CompleteCount == 0 {
		t.Error("no complete policies after 12 improvement epochs")
	}
	// Permission creep pushes admin share and risk up.
	if last.AdminPct <= first.AdminPct {
		t.Errorf("admin%% did not creep: %.2f -> %.2f", first.AdminPct, last.AdminPct)
	}
	if last.MeanRisk <= first.MeanRisk {
		t.Errorf("mean risk did not rise: %.1f -> %.1f", first.MeanRisk, last.MeanRisk)
	}
	// Population grows on net (50 new vs ~2% of 3000 removed).
	if last.Bots <= first.Bots {
		t.Errorf("population did not grow: %d -> %d", first.Bots, last.Bots)
	}
}

func TestEvolutionDeterministic(t *testing.T) {
	a := Run(testEco(3, 800), 11, 5, DefaultChurn())
	b := Run(testEco(3, 800), 11, 5, DefaultChurn())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMaliciousBotSurvivesChurn(t *testing.T) {
	eco := testEco(4, 500)
	churn := DefaultChurn()
	churn.RemovalRate = 0.5 // aggressive delisting
	ev := NewEvolver(eco, 9)
	for i := 0; i < 6; i++ {
		ev.Step(churn)
	}
	found := false
	for _, b := range eco.Bots {
		if b.ID == eco.MaliciousID {
			found = true
		}
	}
	if !found {
		t.Error("the planted malicious bot must persist for the honeypot thread")
	}
	if ev.Epoch() != 6 {
		t.Errorf("epoch = %d", ev.Epoch())
	}
}

func TestNewBotIDsUnique(t *testing.T) {
	eco := testEco(5, 300)
	ev := NewEvolver(eco, 1)
	for i := 0; i < 4; i++ {
		ev.Step(Churn{NewBots: 100})
	}
	seen := make(map[int]bool)
	for _, b := range eco.Bots {
		if seen[b.ID] {
			t.Fatalf("duplicate bot ID %d after evolution", b.ID)
		}
		seen[b.ID] = true
	}
	if len(eco.Bots) != 700 {
		t.Errorf("population = %d, want 700", len(eco.Bots))
	}
}

func TestZeroChurnIsStasis(t *testing.T) {
	eco := testEco(6, 400)
	before := Measure(eco, 0)
	series := Run(eco, 1, 3, Churn{})
	for _, st := range series {
		if st.Bots != before.Bots || st.AdminPct != before.AdminPct ||
			st.PolicyPct != before.PolicyPct {
			t.Fatalf("zero churn changed the ecosystem: %+v vs %+v", st, before)
		}
	}
}

func TestReportRendering(t *testing.T) {
	eco := testEco(7, 300)
	series := Run(eco, 2, 2, DefaultChurn())
	var buf bytes.Buffer
	Report(&buf, series)
	out := buf.String()
	if !strings.Contains(out, "Longitudinal trends") || !strings.Contains(out, "admin%") {
		t.Errorf("report header missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("too few rows:\n%s", out)
	}
}
