package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/codeanalysis"
	"repro/internal/honeypot"
	"repro/internal/scraper"
)

func sample(runID string) *Snapshot {
	return &Snapshot{
		RunID:          runID,
		Seed:           7,
		NumBots:        120,
		HoneypotSample: 12,
		BotIDs:         []int{3, 1, 2},
		Records: []*scraper.Record{
			{ID: 1, Name: "alpha", Votes: 10, PermsValid: true, Tags: []string{"fun"}},
			{ID: 2, Name: "beta", InvalidReason: scraper.InvalidRemoved},
		},
		CollectQuarantine: []QEntry{{BotID: 3, Err: "endpoint unavailable after retries"}},
		CodeLinks: map[string]*codeanalysis.RepoAnalysis{
			"/gh/dev/repo": {Link: "/gh/dev/repo", Outcome: codeanalysis.OutcomeValidRepo, MainLanguage: "Python"},
		},
		CodeLinkErrs: map[string]string{"/gh/dead": "503 after retries"},
		Verdicts: []*honeypot.Verdict{
			{Subject: honeypot.Subject{ListingID: 1, Name: "alpha"}, GuildTag: "hp-alpha", Triggered: true},
		},
		HoneypotQuarantine: []QEntry{{BotID: 9, Name: "gamma", Err: "gateway down"}},
		BudgetLeft:         map[string]int{"collect": 41, "codeanalysis": 60},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sample("run-1")
	var buf bytes.Buffer
	if err := Encode(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Settled() != 2+1+1+1+1+1 {
		t.Fatalf("Settled() = %d", got.Settled())
	}
}

// TestDecodeDetectsDamage: every class of structural damage must
// surface ErrCorrupt with a nil snapshot — never a partial load.
func TestDecodeDetectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sample("run-2")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	cases := map[string][]byte{
		"empty":            {},
		"no newline":       []byte(magic + " 1 10 00000000"),
		"bad magic":        append([]byte("nope"), whole[len(magic):]...),
		"truncated header": whole[:5],
		"truncated body":   whole[:len(whole)-7],
		"trailing bytes":   append(append([]byte{}, whole...), " {}"...),
		"flipped byte": func() []byte {
			b := append([]byte{}, whole...)
			b[len(b)-3] ^= 0x40
			return b
		}(),
		"declared longer than body": []byte(magic + " 1 9999 00000000\n{}"),
		"negative length":           []byte(magic + " 1 -4 00000000\n{}"),
		"not json payload": func() []byte {
			// Valid header and checksum over a non-JSON payload.
			var b bytes.Buffer
			payload := "certainly-not-json"
			fmt.Fprintf(&b, "%s 1 %d %08x\n%s", magic, len(payload), crc32Castagnoli([]byte(payload)), payload)
			return b.Bytes()
		}(),
	}
	for name, data := range cases {
		s, err := Decode(bytes.NewReader(data))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
		if s != nil {
			t.Errorf("%s: got non-nil snapshot %+v from damaged input", name, s)
		}
	}
}

func crc32Castagnoli(b []byte) uint32 {
	return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
}

func TestDecodeFutureSchema(t *testing.T) {
	payload := `{"schema":99,"run_id":"run-x"}`
	header := fmt.Sprintf("%s 99 %d %08x\n", magic, len(payload), crc32Castagnoli([]byte(payload)))
	_, err := Decode(strings.NewReader(header + payload))
	if !errors.Is(err, ErrFutureSchema) {
		t.Fatalf("err = %v, want ErrFutureSchema", err)
	}
}

func TestStoreSaveLoadLatest(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	first := sample("run-100")
	if err := st.Save(first); err != nil {
		t.Fatal(err)
	}
	second := sample("run-200")
	second.Completed = true
	if err := st.Save(second); err != nil {
		t.Fatal(err)
	}

	got, err := st.Load("run-100")
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != "run-100" {
		t.Fatalf("Load returned run %q", got.RunID)
	}

	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"run-100", "run-200"}) {
		t.Fatalf("List = %v", ids)
	}

	latest, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.RunID != "run-200" || !latest.Completed {
		t.Fatalf("Latest = %q (completed %v)", latest.RunID, latest.Completed)
	}

	// Overwrite is atomic: the new snapshot fully replaces the old.
	first.Completed = true
	if err := st.Save(first); err != nil {
		t.Fatal(err)
	}
	got, err = st.Load("run-100")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Completed {
		t.Fatal("overwritten snapshot not visible after Save")
	}

	// No stray temp files survive a save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestStoreLatestEmpty(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Latest(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Latest on empty store: %v, want ErrNotExist", err)
	}
}

func TestStoreRejectsCorruptFile(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sample("run-7")); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write from a crashed run that bypassed rename.
	path := st.Path("run-7")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("run-7"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of truncated file: %v, want ErrCorrupt", err)
	}
	if _, err := st.Latest(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Latest over truncated file: %v, want ErrCorrupt", err)
	}
}

func TestStoreAfterSaveHook(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	st.AfterSave = func(s *Snapshot) { calls++ }
	for i := 0; i < 3; i++ {
		if err := st.Save(sample("run-h")); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("AfterSave ran %d times, want 3", calls)
	}
}

func TestStoreSanitizesRunID(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hostile := "run/..\\weird id"
	if err := st.Save(sample(hostile)); err != nil {
		t.Fatal(err)
	}
	if got := st.Path(hostile); filepath.Dir(got) != st.Dir() {
		t.Fatalf("sanitized path escaped the store dir: %s", got)
	}
	if _, err := st.Load(hostile); err != nil {
		t.Fatalf("load with hostile run ID: %v", err)
	}
}

// TestStoreConcurrentSaves exercises Save/Load/Latest under -race: the
// core checkpointer serializes saves, but the store itself must stay
// safe when a reader inspects mid-run.
func TestStoreConcurrentSaves(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runID := fmt.Sprintf("run-%d", g)
			for i := 0; i < 10; i++ {
				if err := st.Save(sample(runID)); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Load(runID); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := st.Latest(); err != nil {
		t.Fatal(err)
	}
}
