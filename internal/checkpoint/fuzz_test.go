package checkpoint

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzSnapshotDecode guards the strict-decoder contract — the mirror
// image of the journal's lenient FuzzDecode: whatever bytes a crashed
// or hostile writer left behind, Decode must never panic, and must
// either return a fully verified snapshot or a typed error with a nil
// snapshot. Corrupt and truncated inputs are detected, never silently
// half-loaded.
func FuzzSnapshotDecode(f *testing.F) {
	var good bytes.Buffer
	if err := Encode(&good, &Snapshot{RunID: "run-seed", Seed: 1, NumBots: 10}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:good.Len()/2])
	f.Add([]byte(magic + " 1 2 00000000\n{}"))
	f.Add([]byte(magic + " 99 2 00000000\n{}"))
	f.Add([]byte(magic + " 1 -1 00000000\n{}"))
	f.Add([]byte("not a snapshot at all"))
	f.Add([]byte{})
	f.Add([]byte(magic + " 1 1000000000000 00000000\n"))
	f.Add(append(append([]byte{}, good.Bytes()...), "trailing"...))

	f.Fuzz(func(t *testing.T, input []byte) {
		s, err := Decode(bytes.NewReader(input))
		switch {
		case err != nil:
			if s != nil {
				t.Fatalf("error %v with non-nil snapshot: half-loaded state", err)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFutureSchema) {
				t.Fatalf("untyped decode error: %v", err)
			}
		default:
			if s == nil {
				t.Fatal("nil snapshot with nil error")
			}
			if s.RunID == "" {
				t.Fatal("accepted snapshot without run ID")
			}
			// An accepted snapshot must re-encode and re-decode cleanly.
			var buf bytes.Buffer
			if err := Encode(&buf, s); err != nil {
				t.Fatalf("re-encode of accepted snapshot failed: %v", err)
			}
			if _, err := Decode(strings.NewReader(buf.String())); err != nil {
				t.Fatalf("re-decode of accepted snapshot failed: %v", err)
			}
		}
	})
}
