// Package checkpoint persists pipeline progress as crash-safe
// snapshots so a run killed mid-crawl can resume instead of repeating
// days of settled work. A Snapshot records, keyed by run ID, everything
// the pipeline has settled so far: the discovery order, per-bot collect
// records, per-link code analyses, per-bot honeypot verdicts, every
// stage's quarantine ledger, and the per-stage retry-budget remainders.
//
// Snapshots are written atomically — encode to a temp file in the
// store directory, fsync, rename into place — so a crash mid-write
// leaves the previous snapshot intact. The on-disk format is a
// self-describing header (schema version, payload length, CRC-32C)
// followed by one JSON payload; Decode verifies all three and fails on
// any mismatch. Unlike the journal's lenient decoder, snapshot decoding
// is strict: a corrupt or truncated snapshot is an error, never a
// silently half-loaded state, because resuming from partial state would
// silently re-run or drop work.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/codeanalysis"
	"repro/internal/honeypot"
	"repro/internal/scraper"
)

// SchemaVersion is stamped in the header and payload of every snapshot
// this build writes. Decode rejects snapshots from future schemas
// rather than guessing at their shape.
const SchemaVersion = 1

// magic opens every snapshot header line.
const magic = "ckptv1"

// ErrCorrupt marks a snapshot that failed structural validation —
// truncated payload, checksum mismatch, trailing garbage, or a
// malformed header. A corrupt snapshot is never partially loaded.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// ErrFutureSchema marks a snapshot written by a newer build.
var ErrFutureSchema = errors.New("checkpoint: snapshot from a future schema")

// QEntry is one quarantine-ledger line: a bot (or bot-owned link) whose
// stage work failed on infrastructure errors in the checkpointed run.
// The error survives as text only — chains do not round-trip disk.
type QEntry struct {
	BotID int    `json:"bot_id"`
	Name  string `json:"name,omitempty"`
	Link  string `json:"link,omitempty"`
	Err   string `json:"err"`
}

// Snapshot is one pipeline progress record. Every field is settled
// work: replaying a snapshot must never re-execute any (bot, stage)
// pair it contains.
type Snapshot struct {
	Schema int    `json:"schema"`
	RunID  string `json:"run_id"`

	// Ecosystem identity: resuming against a differently generated
	// population would mix incompatible work.
	Seed           int64 `json:"seed"`
	NumBots        int   `json:"num_bots"`
	HoneypotSample int   `json:"honeypot_sample"`

	// Completed marks a snapshot written after the full pipeline
	// finished; resuming it skips every stage.
	Completed bool `json:"completed,omitempty"`

	// BotIDs is the full listing discovery order, recorded once
	// pagination completed without error; nil means pagination must be
	// re-walked on resume.
	BotIDs []int `json:"bot_ids,omitempty"`

	// Collect stage: settled records and quarantines.
	Records           []*scraper.Record `json:"records,omitempty"`
	CollectQuarantine []QEntry          `json:"collect_quarantine,omitempty"`

	// Code-analysis stage, keyed by unique link (the stage's own dedup
	// unit). CodeLinkErrs records links abandoned after retries.
	CodeLinks    map[string]*codeanalysis.RepoAnalysis `json:"code_links,omitempty"`
	CodeLinkErrs map[string]string                     `json:"code_link_errs,omitempty"`

	// Honeypot stage: settled verdicts and quarantines. Restored
	// verdicts carry no Runner (it is process state, not evidence).
	Verdicts           []*honeypot.Verdict `json:"verdicts,omitempty"`
	HoneypotQuarantine []QEntry            `json:"honeypot_quarantine,omitempty"`

	// BudgetLeft is the per-stage retry-budget remainder at write time,
	// restored on resume so a resumed run cannot out-retry an
	// uninterrupted one. Stages absent from the map ran unbudgeted.
	BudgetLeft map[string]int `json:"budget_left,omitempty"`
}

// Settled reports how many (bot, stage) pairs the snapshot has settled
// across all stages — the unit the resume accounting is verified in.
func (s *Snapshot) Settled() int {
	n := len(s.Records) + len(s.CollectQuarantine) +
		len(s.Verdicts) + len(s.HoneypotQuarantine)
	// Code work settles per unique link, not per bot: bots sharing a
	// link settle together when the link does.
	n += len(s.CodeLinks) + len(s.CodeLinkErrs)
	return n
}

// Encode writes the snapshot to w in the checked on-disk format:
//
//	ckptv1 <schema> <payload-len> <crc32c-hex>\n
//	<payload JSON>
func Encode(w io.Writer, s *Snapshot) error {
	if s.Schema == 0 {
		s.Schema = SchemaVersion
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	sum := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	if _, err := fmt.Fprintf(w, "%s %d %d %08x\n", magic, s.Schema, len(payload), sum); err != nil {
		return fmt.Errorf("checkpoint: encode header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: encode payload: %w", err)
	}
	return nil
}

// maxPayload bounds a snapshot payload during decoding so a corrupt
// header cannot demand an absurd allocation.
const maxPayload = 1 << 30

// Decode reads and verifies one snapshot. Any structural damage —
// short or malformed header, payload shorter or longer than declared,
// checksum mismatch, invalid JSON — returns ErrCorrupt; a schema newer
// than this build returns ErrFutureSchema. On error the returned
// snapshot is always nil: no partial loads.
func Decode(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: unterminated header", ErrCorrupt)
	}
	var gotMagic string
	var schema, length int
	var sum uint32
	if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"), "%s %d %d %08x", &gotMagic, &schema, &length, &sum); err != nil || gotMagic != magic {
		return nil, fmt.Errorf("%w: malformed header %q", ErrCorrupt, strings.TrimSpace(header))
	}
	if schema > SchemaVersion {
		return nil, fmt.Errorf("%w: schema %d > %d", ErrFutureSchema, schema, SchemaVersion)
	}
	if length < 0 || length > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after payload", ErrCorrupt)
	}
	if got := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorrupt, got, sum)
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("%w: payload not valid JSON: %v", ErrCorrupt, err)
	}
	if s.RunID == "" {
		return nil, fmt.Errorf("%w: snapshot without run ID", ErrCorrupt)
	}
	return &s, nil
}

// Store keeps snapshots in one directory, one file per run ID.
type Store struct {
	dir string

	// AfterSave, when set, runs after every successful Save — the
	// chaos harness's hook for injecting SIGKILL-style aborts exactly
	// at checkpoint boundaries (see faults.AbortInjector).
	AfterSave func(*Snapshot)
}

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's directory.
func (st *Store) Dir() string { return st.dir }

// Path returns the snapshot file path for a run ID.
func (st *Store) Path(runID string) string {
	return filepath.Join(st.dir, sanitize(runID)+".ckpt")
}

// sanitize maps a run ID onto a safe filename stem.
func sanitize(runID string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, runID)
}

// Save writes the snapshot atomically: encode to a temp file in the
// store directory, fsync, then rename into place over any previous
// snapshot for the same run. A crash at any point leaves either the
// old snapshot or the new one — never a torn file.
func (st *Store) Save(s *Snapshot) error {
	if s.RunID == "" {
		return errors.New("checkpoint: snapshot without run ID")
	}
	tmp, err := os.CreateTemp(st.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := Encode(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, st.Path(s.RunID)); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if st.AfterSave != nil {
		st.AfterSave(s)
	}
	return nil
}

// Load reads and verifies the snapshot for a run ID.
func (st *Store) Load(runID string) (*Snapshot, error) {
	f, err := os.Open(st.Path(runID))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load %s: %w", runID, err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load %s: %w", runID, err)
	}
	return s, nil
}

// List returns the run IDs with snapshots in the store, sorted.
func (st *Store) List() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") || strings.HasPrefix(name, ".") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".ckpt"))
	}
	sort.Strings(ids)
	return ids, nil
}

// Latest loads the most recently written snapshot in the store
// (newest modification time; ties broken by name). It returns
// os.ErrNotExist (wrapped) when the store holds no snapshots.
func (st *Store) Latest() (*Snapshot, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: latest: %w", err)
	}
	best := ""
	var bestMod int64 = -1
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") || strings.HasPrefix(name, ".") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		mod := info.ModTime().UnixNano()
		if mod > bestMod || (mod == bestMod && name > best) {
			bestMod, best = mod, name
		}
	}
	if best == "" {
		return nil, fmt.Errorf("checkpoint: latest: %w", os.ErrNotExist)
	}
	f, err := os.Open(filepath.Join(st.dir, best))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: latest: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: latest %s: %w", best, err)
	}
	return s, nil
}
