// Package enforcer implements the runtime policy enforcer that Discord
// lacks. The paper's §6 contrasts Discord with Slack and MS Teams,
// whose app model uses "a two-level access control system consisting of
// the OAuth protocol and a runtime policy enforcer": beyond the install
// grant, the platform itself checks at runtime that a bot's privileged
// action is justified by the interaction that triggered it.
//
// Installed on the gateway (gateway.Server.SetInterceptor), the
// Enforcer attributes each privileged bot action to the most recent
// human interaction in the guild and denies the action when that user
// does not hold the required permission — closing the permission
// re-delegation attack (§5) at the platform layer instead of trusting
// 20,915 third-party developers to close it themselves.
package enforcer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/platform"
)

// Errors returned to bots whose actions the enforcer blocks.
var (
	// ErrNoInteraction means the bot acted with no recent human
	// interaction to attribute the action to.
	ErrNoInteraction = errors.New("enforcer: privileged action without a triggering interaction")
	// ErrReDelegation means the triggering user lacks the permission
	// the action requires.
	ErrReDelegation = errors.New("enforcer: triggering user lacks the required permission")
)

// privileged maps gateway methods to the permission their *triggering
// user* must hold under the Slack/Teams model.
var privileged = map[string]permissions.Permission{
	gateway.MethodKick:         permissions.KickMembers,
	gateway.MethodBan:          permissions.BanMembers,
	gateway.MethodEditNickname: permissions.ManageNicknames,
}

// interaction records the latest human message per guild.
type interaction struct {
	userID platform.ID
	at     time.Time
}

// Stats counts enforcement outcomes.
type Stats struct {
	Allowed          int
	DeniedNoContext  int
	DeniedRedelegate int
}

// Enforcer is the runtime policy layer.
type Enforcer struct {
	p      *platform.Platform
	window time.Duration
	now    func() time.Time

	mu    sync.Mutex
	last  map[platform.ID]interaction // guild -> latest human interaction
	stats Stats

	sub *platform.Subscription
}

// Options tunes an Enforcer.
type Options struct {
	// Window is how long an interaction authorizes follow-up actions
	// (default 30s). Slack interaction payloads are similarly
	// short-lived.
	Window time.Duration
	// Now injects a clock for tests.
	Now func() time.Time
}

// New creates an enforcer and begins tracking interactions on the
// platform's event bus. Call Close when done.
func New(p *platform.Platform, opts Options) *Enforcer {
	if opts.Window <= 0 {
		opts.Window = 30 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	e := &Enforcer{
		p:      p,
		window: opts.Window,
		now:    opts.Now,
		last:   make(map[platform.ID]interaction),
	}
	e.sub = p.Subscribe(1024, func(ev platform.Event) bool {
		return ev.Type == platform.EventMessageCreate
	})
	go e.track()
	return e
}

// Close stops interaction tracking.
func (e *Enforcer) Close() {
	e.p.Unsubscribe(e.sub)
}

func (e *Enforcer) track() {
	for ev := range e.sub.C {
		u, err := e.p.UserByID(ev.UserID)
		if err != nil || u.IsBot() {
			continue // only human interactions authorize actions
		}
		e.mu.Lock()
		e.last[ev.GuildID] = interaction{userID: ev.UserID, at: ev.At}
		e.mu.Unlock()
	}
}

// Stats returns a copy of the counters.
func (e *Enforcer) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ErrForgedInteraction means the bot cited an interaction that does not
// exist, belongs to another bot, or happened in a different guild.
var ErrForgedInteraction = errors.New("enforcer: cited interaction is invalid for this bot")

// Intercept is the gateway hook: install with
// gw.SetInterceptor(enf.Intercept).
//
// Attribution is exact when the bot cites the slash-command interaction
// that requested the action (args["interaction_id"], the modern
// interactions model): the enforcer verifies the interaction targets
// this bot in this guild and checks THAT user's permissions. Without a
// citation it falls back to the latest-human-interaction heuristic the
// prefix-command world allows.
func (e *Enforcer) Intercept(bot *platform.User, method string, args map[string]any) error {
	need, isPrivileged := privileged[method]
	if !isPrivileged {
		return nil // reads and sends pass through
	}
	guildID := parseID(args, "guild_id")

	var triggerUser platform.ID
	if inID := parseID(args, "interaction_id"); inID != platform.Nil {
		in, err := e.p.InteractionByID(guildID, inID)
		if err != nil || in.BotID != bot.ID || e.now().Sub(in.At) > e.window {
			e.count(func(s *Stats) { s.DeniedNoContext++ })
			return fmt.Errorf("%w (method %s)", ErrForgedInteraction, method)
		}
		triggerUser = in.UserID
	} else {
		e.mu.Lock()
		trigger, ok := e.last[guildID]
		e.mu.Unlock()
		if !ok || e.now().Sub(trigger.at) > e.window {
			e.count(func(s *Stats) { s.DeniedNoContext++ })
			return fmt.Errorf("%w (method %s)", ErrNoInteraction, method)
		}
		triggerUser = trigger.userID
	}
	perms, err := e.p.Permissions(guildID, triggerUser)
	if err != nil || !perms.Effective().Has(need) {
		e.count(func(s *Stats) { s.DeniedRedelegate++ })
		return fmt.Errorf("%w: user %s needs %s", ErrReDelegation, triggerUser, need)
	}
	e.count(func(s *Stats) { s.Allowed++ })
	return nil
}

func (e *Enforcer) count(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

func parseID(args map[string]any, key string) platform.ID {
	s, _ := args[key].(string)
	id, err := platform.ParseID(s)
	if err != nil {
		return platform.Nil
	}
	return id
}
