package enforcer

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/botsdk"
	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/platform"
)

// rig: platform + gateway + enforcer, a guild with a privileged mod, an
// unprivileged pleb, a victim, and a connected bot holding kick/ban.
type rig struct {
	p       *platform.Platform
	enf     *Enforcer
	guild   *platform.Guild
	general *platform.Channel
	mod     *platform.User
	pleb    *platform.User
	victim  *platform.User
	sess    *botsdk.Session
}

func newRig(t *testing.T, window time.Duration) *rig {
	t.Helper()
	p := platform.New(platform.Options{})
	gw, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	enf := New(p, Options{Window: window})
	gw.SetInterceptor(enf.Intercept)
	t.Cleanup(func() {
		gw.Close()
		enf.Close()
		p.Close()
	})

	owner := p.CreateUser("owner")
	g, _ := p.CreateGuild(owner.ID, "enforced", false)
	var general *platform.Channel
	for _, ch := range g.Channels {
		general = ch
	}
	mod := p.CreateUser("mod")
	pleb := p.CreateUser("pleb")
	victim := p.CreateUser("victim")
	for _, u := range []*platform.User{mod, pleb, victim} {
		if err := p.JoinGuild(u.ID, g.ID); err != nil {
			t.Fatal(err)
		}
	}
	modRole, err := p.CreateRole(owner.ID, g.ID, "mods", permissions.KickMembers|permissions.BanMembers|permissions.ManageNicknames, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.GrantRole(owner.ID, g.ID, mod.ID, modRole.ID); err != nil {
		t.Fatal(err)
	}

	bot, _ := p.RegisterBot(owner.ID, "modbot")
	botRole, err := p.InstallBot(owner.ID, g.ID, bot.ID,
		permissions.ViewChannel|permissions.SendMessages|permissions.KickMembers|permissions.BanMembers|permissions.ManageNicknames)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MoveRole(owner.ID, g.ID, botRole.ID, 10); err != nil {
		t.Fatal(err)
	}
	sess, err := botsdk.Dial(gw.Addr(), bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return &rig{p: p, enf: enf, guild: g, general: general, mod: mod, pleb: pleb, victim: victim, sess: sess}
}

// speak posts a human message and waits for the enforcer to see it.
func (r *rig) speak(t *testing.T, u *platform.User, text string) {
	t.Helper()
	if _, err := r.p.SendMessage(u.ID, r.general.ID, text); err != nil {
		t.Fatal(err)
	}
	r.p.Flush()
	// The enforcer's tracker runs on its own goroutine; give it a beat.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		r.enf.mu.Lock()
		last, ok := r.enf.last[r.guild.ID]
		r.enf.mu.Unlock()
		if ok && last.userID == u.ID {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("enforcer never observed the interaction")
}

func TestPrivilegedUserActionAllowed(t *testing.T) {
	r := newRig(t, time.Minute)
	r.speak(t, r.mod, "!kick victim")
	if err := r.sess.Kick(r.guild.ID.String(), r.victim.ID.String()); err != nil {
		t.Fatalf("kick triggered by a privileged mod was denied: %v", err)
	}
	if r.p.IsMember(r.guild.ID, r.victim.ID) {
		t.Error("victim still present")
	}
	if s := r.enf.Stats(); s.Allowed != 1 || s.DeniedRedelegate != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestReDelegationBlocked(t *testing.T) {
	r := newRig(t, time.Minute)
	r.speak(t, r.pleb, "!kick victim")
	err := r.sess.Kick(r.guild.ID.String(), r.victim.ID.String())
	if err == nil {
		t.Fatal("re-delegated kick allowed — the enforcer failed")
	}
	if !strings.Contains(err.Error(), "lacks the required permission") {
		t.Errorf("err = %v", err)
	}
	if !r.p.IsMember(r.guild.ID, r.victim.ID) {
		t.Error("victim was kicked despite the block")
	}
	if s := r.enf.Stats(); s.DeniedRedelegate != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNoInteractionContextBlocked(t *testing.T) {
	r := newRig(t, time.Minute)
	// No human has spoken: the bot acts spontaneously (the Melonian
	// pattern — owner-driven, not interaction-driven).
	err := r.sess.Ban(r.guild.ID.String(), r.victim.ID.String())
	if err == nil {
		t.Fatal("spontaneous privileged action allowed")
	}
	if !strings.Contains(err.Error(), "without a triggering interaction") {
		t.Errorf("err = %v", err)
	}
	if s := r.enf.Stats(); s.DeniedNoContext != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInteractionWindowExpires(t *testing.T) {
	r := newRig(t, 60*time.Millisecond)
	r.speak(t, r.mod, "!nick victim")
	time.Sleep(120 * time.Millisecond)
	err := r.sess.EditNickname(r.guild.ID.String(), r.victim.ID.String(), "stale")
	if err == nil {
		t.Fatal("action authorized by an expired interaction")
	}
	if s := r.enf.Stats(); s.DeniedNoContext != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBotMessagesDoNotAuthorize(t *testing.T) {
	r := newRig(t, time.Minute)
	// The bot itself speaks; its own message must not count as a human
	// interaction.
	if _, err := r.sess.Send(r.general.ID.String(), "I will now moderate"); err != nil {
		t.Fatal(err)
	}
	r.p.Flush()
	time.Sleep(20 * time.Millisecond)
	if err := r.sess.Kick(r.guild.ID.String(), r.victim.ID.String()); err == nil {
		t.Fatal("bot self-authorized via its own message")
	}
}

func TestReadsAndSendsPassThrough(t *testing.T) {
	r := newRig(t, time.Minute)
	// Unprivileged methods are not gated: the enforcer governs
	// privileged actions, not conversation.
	if _, err := r.sess.Send(r.general.ID.String(), "hello"); err != nil {
		t.Fatalf("send gated: %v", err)
	}
	if _, err := r.sess.Guilds(); err != nil {
		t.Fatalf("guilds gated: %v", err)
	}
	if s := r.enf.Stats(); s.Allowed != 0 && s.DeniedNoContext != 0 {
		t.Errorf("pass-through counted: %+v", s)
	}
}

func TestLatestInteractionWins(t *testing.T) {
	r := newRig(t, time.Minute)
	r.speak(t, r.mod, "looks fine to me")
	r.speak(t, r.pleb, "!kick victim") // pleb speaks last
	err := r.sess.Kick(r.guild.ID.String(), r.victim.ID.String())
	if err == nil {
		t.Fatal("kick attributed to the earlier privileged speaker")
	}
	if !errors.Is(errForTest(err), ErrReDelegation) && !strings.Contains(err.Error(), "lacks the required") {
		t.Errorf("err = %v", err)
	}
}

// errForTest normalizes errors that crossed the wire as strings.
func errForTest(err error) error { return err }

func TestEnforcerPerGuildScoping(t *testing.T) {
	r := newRig(t, time.Minute)
	// A mod interaction in ANOTHER guild must not authorize actions in
	// this one.
	owner2 := r.p.CreateUser("owner2")
	g2, _ := r.p.CreateGuild(owner2.ID, "other", false)
	var ch2 *platform.Channel
	for _, c := range g2.Channels {
		ch2 = c
	}
	if _, err := r.p.SendMessage(owner2.ID, ch2.ID, "unrelated chatter"); err != nil {
		t.Fatal(err)
	}
	r.p.Flush()
	time.Sleep(20 * time.Millisecond)
	if err := r.sess.Kick(r.guild.ID.String(), r.victim.ID.String()); err == nil {
		t.Fatal("cross-guild interaction authorized the action")
	}
}
