package enforcer

import (
	"strings"
	"testing"
	"time"

	"repro/internal/botsdk"
	"repro/internal/platform"
)

// interactionBot wires a /kick slash command that cites its interaction
// when acting — the modern, attributable pattern.
func wireInteractionKick(sess *botsdk.Session) {
	sess.OnInteraction(func(s *botsdk.Session, in *botsdk.Interaction) {
		if in.Command != "kick" {
			return
		}
		go func() {
			if err := s.KickVia(in.ID, in.GuildID, in.Args); err != nil {
				s.Respond(in.GuildID, in.ID, "kick failed: "+err.Error())
				return
			}
			s.Respond(in.GuildID, in.ID, "kicked "+in.Args)
		}()
	})
}

func waitGone(t *testing.T, r *rig, timeout time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if !r.p.IsMember(r.guild.ID, r.victim.ID) {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

func TestExactAttributionAllowsPrivilegedInvoker(t *testing.T) {
	r := newRig(t, time.Minute)
	wireInteractionKick(r.sess)
	// Adversarial ordering: the PLEB speaks last (the heuristic would
	// blame them), but the MOD's interaction carries the true invoker.
	r.speak(t, r.pleb, "unrelated chatter")
	botID, _ := platform.ParseID(r.sess.BotID())
	if _, err := r.p.Interact(r.mod.ID, botID, r.general.ID, "kick", r.victim.ID.String()); err != nil {
		t.Fatal(err)
	}
	if !waitGone(t, r, 2*time.Second) {
		t.Fatal("mod-invoked kick denied despite exact attribution")
	}
	if s := r.enf.Stats(); s.Allowed != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestExactAttributionBlocksUnprivilegedInvoker(t *testing.T) {
	r := newRig(t, time.Minute)
	wireInteractionKick(r.sess)
	// Reverse adversarial ordering: the MOD speaks last (heuristic
	// would allow), but the PLEB's interaction is the true invoker.
	r.speak(t, r.mod, "I approve of nothing")
	botID, _ := platform.ParseID(r.sess.BotID())
	if _, err := r.p.Interact(r.pleb.ID, botID, r.general.ID, "kick", r.victim.ID.String()); err != nil {
		t.Fatal(err)
	}
	if waitGone(t, r, 700*time.Millisecond) {
		t.Fatal("pleb-invoked kick allowed — exact attribution failed")
	}
	if s := r.enf.Stats(); s.DeniedRedelegate != 1 {
		t.Errorf("stats = %+v", s)
	}
	// The bot's failure reply names the re-delegation.
	msgs, _ := r.p.ChannelMessages(r.general.ID)
	found := false
	for _, m := range msgs {
		if strings.Contains(m.Content, "kick failed") &&
			strings.Contains(m.Content, "lacks the required permission") {
			found = true
		}
	}
	if !found {
		t.Error("bot reply with enforcement error missing")
	}
}

func TestForgedInteractionRejected(t *testing.T) {
	r := newRig(t, time.Minute)
	// A mod interaction exists, but for ANOTHER bot: citing it must not
	// authorize this bot's action.
	owner, _ := r.p.UserByID(r.guild.OwnerID)
	otherBot, err := r.p.RegisterBot(owner.ID, "decoy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.p.InstallBot(owner.ID, r.guild.ID, otherBot.ID, 0); err != nil {
		t.Fatal(err)
	}
	in, err := r.p.Interact(r.mod.ID, otherBot.ID, r.general.ID, "kick", "x")
	if err != nil {
		t.Fatal(err)
	}
	err = r.sess.KickVia(in.ID.String(), r.guild.ID.String(), r.victim.ID.String())
	if err == nil || !strings.Contains(err.Error(), "invalid for this bot") {
		t.Fatalf("forged citation err = %v", err)
	}
	// Citing a nonexistent interaction fails the same way.
	err = r.sess.KickVia("999999", r.guild.ID.String(), r.victim.ID.String())
	if err == nil {
		t.Fatal("nonexistent citation accepted")
	}
	if s := r.enf.Stats(); s.DeniedNoContext != 2 {
		t.Errorf("stats = %+v", s)
	}
}
