// Package corpus generates short, informal, OSN-style conversation the
// honeypot uses to make its guilds look active. The paper's §3 notes
// that instant-messaging style is "shorter and less formal than email",
// so it seeded honeypot channels from public social-network posts
// instead of the Enron corpus; this package is the offline equivalent: a
// seeded generator over Reddit-flavoured templates and word banks that
// produces an endless, deterministic message feed.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Persona is a synthetic account used to post feed messages.
type Persona struct {
	Username string
	Style    Style
}

// Style biases a persona's template pool.
type Style int

// Persona styles.
const (
	StyleCasual Style = iota
	StyleGamer
	StyleTechie
	StyleLurker
)

var styleNames = map[Style]string{
	StyleCasual: "casual", StyleGamer: "gamer",
	StyleTechie: "techie", StyleLurker: "lurker",
}

// String names the style.
func (s Style) String() string { return styleNames[s] }

var (
	adjectives = []string{
		"wild", "cursed", "based", "broken", "shiny", "ancient", "spicy",
		"sus", "epic", "mid", "legendary", "fresh", "haunted", "golden",
	}
	nouns = []string{
		"keyboard", "raid", "patch", "meme", "playlist", "stream",
		"build", "recipe", "deadline", "server", "update", "skin",
		"queue", "lobby", "ticket", "sticker",
	}
	games = []string{
		"the new season", "ranked", "the expansion", "co-op", "the beta",
		"speedruns", "the tournament", "that indie game",
	}
	techThings = []string{
		"the CI pipeline", "my dotfiles", "the merge conflict",
		"that regex", "the standup", "prod", "the docker build",
		"my mechanical keyboard",
	}
	reactions = []string{
		"lol", "lmao", "no way", "fr fr", "honestly same", "big mood",
		"rip", "oof", "W", "L take", "can't even", "say less",
	}
	greetings = []string{
		"yo", "hey all", "morning", "sup", "o/", "back again",
		"anyone around?", "hi chat",
	}
	nameParts1 = []string{
		"pixel", "noodle", "turbo", "mellow", "crypto", "salty", "fuzzy",
		"hyper", "sleepy", "quantum", "disco", "mocha", "static", "velvet",
	}
	nameParts2 = []string{
		"panda", "wizard", "goblin", "falcon", "otter", "bandit", "nova",
		"biscuit", "raven", "moth", "yeti", "pickle", "comet", "badger",
	}
)

// Generator produces deterministic feed messages. It is safe for
// concurrent use; note that concurrent callers interleave draws from
// one stream, so per-caller determinism requires per-caller generators
// (see Derive).
type Generator struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a generator with the given seed; equal seeds yield equal
// output streams.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Derive mints an independent generator whose stream depends only on
// the receiver's identity-independent salt — the way concurrent
// experiments get deterministic, non-interleaved feeds.
func Derive(baseSeed, salt int64) *Generator {
	const mix = int64(0x5851F42D4C957F2D) // LCG multiplier, odd
	return New(baseSeed ^ (salt * mix))
}

// Persona mints a synthetic account with a plausible OSN username.
func (g *Generator) Persona() Persona {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.persona()
}

func (g *Generator) persona() Persona {
	style := Style(g.rng.Intn(4))
	name := nameParts1[g.rng.Intn(len(nameParts1))] +
		nameParts2[g.rng.Intn(len(nameParts2))]
	if g.rng.Intn(2) == 0 {
		name = fmt.Sprintf("%s%d", name, g.rng.Intn(100))
	}
	return Persona{Username: name, Style: style}
}

// Personas mints n distinct personas. Username collisions are resolved
// by numeric suffixing so the result is always n unique accounts.
func (g *Generator) Personas(n int) []Persona {
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := make(map[string]bool, n)
	out := make([]Persona, 0, n)
	for len(out) < n {
		p := g.persona()
		for seen[p.Username] {
			p.Username = fmt.Sprintf("%s_%d", p.Username, g.rng.Intn(1000))
		}
		seen[p.Username] = true
		out = append(out, p)
	}
	return out
}

func (g *Generator) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

// Message produces one short message in the persona's register.
func (g *Generator) Message(p Persona) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.message(p)
}

func (g *Generator) message(p Persona) string {
	switch p.Style {
	case StyleGamer:
		return g.gamerLine()
	case StyleTechie:
		return g.techieLine()
	case StyleLurker:
		return g.pick(reactions)
	default:
		return g.casualLine()
	}
}

func (g *Generator) casualLine() string {
	switch g.rng.Intn(5) {
	case 0:
		return g.pick(greetings)
	case 1:
		return fmt.Sprintf("just saw a %s %s, %s",
			g.pick(adjectives), g.pick(nouns), g.pick(reactions))
	case 2:
		return fmt.Sprintf("anyone else think the %s is %s?",
			g.pick(nouns), g.pick(adjectives))
	case 3:
		return fmt.Sprintf("ok the %s situation is getting %s",
			g.pick(nouns), g.pick(adjectives))
	default:
		return fmt.Sprintf("%s. that's it, that's the post", g.pick(reactions))
	}
}

func (g *Generator) gamerLine() string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("anyone up for %s tonight?", g.pick(games))
	case 1:
		return fmt.Sprintf("just got a %s %s drop %s",
			g.pick(adjectives), g.pick(nouns), g.pick(reactions))
	case 2:
		return fmt.Sprintf("%s is so %s after the patch", g.pick(games), g.pick(adjectives))
	default:
		return fmt.Sprintf("queue times for %s are %s rn", g.pick(games), g.pick(adjectives))
	}
}

func (g *Generator) techieLine() string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s broke again, %s", g.pick(techThings), g.pick(reactions))
	case 1:
		return fmt.Sprintf("finally fixed %s. it was a %s %s all along",
			g.pick(techThings), g.pick(adjectives), g.pick(nouns))
	case 2:
		return fmt.Sprintf("hot take: %s is just a %s %s",
			g.pick(techThings), g.pick(adjectives), g.pick(nouns))
	default:
		return fmt.Sprintf("spent 3 hours on %s today", g.pick(techThings))
	}
}

// Exchange is one message of a scripted conversation.
type Exchange struct {
	Author Persona
	Text   string
}

// Conversation scripts n messages alternating across the personas so
// interactions "resemble legitimate conversations between actual users"
// (§4.2). It never posts two consecutive messages by the same persona
// when more than one persona is available.
func (g *Generator) Conversation(personas []Persona, n int) []Exchange {
	if len(personas) == 0 || n <= 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Exchange, 0, n)
	last := -1
	for i := 0; i < n; i++ {
		idx := g.rng.Intn(len(personas))
		if idx == last && len(personas) > 1 {
			idx = (idx + 1 + g.rng.Intn(len(personas)-1)) % len(personas)
		}
		last = idx
		p := personas[idx]
		text := g.message(p)
		// Occasionally address the previous speaker for realism.
		if i > 0 && g.rng.Intn(5) == 0 {
			text = "@" + out[i-1].Author.Username + " " + g.pick(reactions)
		}
		out = append(out, Exchange{Author: p, Text: text})
	}
	return out
}

// AverageWords reports the mean message length in words — a sanity
// metric asserting the feed stays in the short, informal IM register.
func AverageWords(ex []Exchange) float64 {
	if len(ex) == 0 {
		return 0
	}
	total := 0
	for _, e := range ex {
		total += len(strings.Fields(e.Text))
	}
	return float64(total) / float64(len(ex))
}
