package corpus

import (
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	pa, pb := a.Personas(5), b.Personas(5)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("personas diverge at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	ca := a.Conversation(pa, 25)
	cb := b.Conversation(pb, 25)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("conversation diverges at %d", i)
		}
	}
	// A different seed must diverge somewhere.
	c := New(8)
	pc := c.Personas(5)
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical personas")
	}
}

func TestPersonasUnique(t *testing.T) {
	g := New(1)
	ps := g.Personas(200)
	seen := make(map[string]bool)
	for _, p := range ps {
		if seen[p.Username] {
			t.Fatalf("duplicate username %q", p.Username)
		}
		seen[p.Username] = true
	}
	if len(ps) != 200 {
		t.Errorf("got %d personas", len(ps))
	}
}

func TestConversationAlternation(t *testing.T) {
	g := New(3)
	ps := g.Personas(5)
	conv := g.Conversation(ps, 100)
	if len(conv) != 100 {
		t.Fatalf("conversation length = %d", len(conv))
	}
	for i := 1; i < len(conv); i++ {
		if conv[i].Author.Username == conv[i-1].Author.Username {
			t.Fatalf("consecutive messages by %q at %d", conv[i].Author.Username, i)
		}
	}
}

func TestConversationSingletonAndEmpty(t *testing.T) {
	g := New(3)
	solo := g.Personas(1)
	conv := g.Conversation(solo, 10)
	if len(conv) != 10 {
		t.Errorf("solo conversation length = %d", len(conv))
	}
	if got := g.Conversation(nil, 10); got != nil {
		t.Error("nil personas should yield nil conversation")
	}
	if got := g.Conversation(solo, 0); got != nil {
		t.Error("zero-length conversation should be nil")
	}
}

func TestMessagesShortAndInformal(t *testing.T) {
	// §3: IM style is "shorter and less formal than email". Assert the
	// feed stays in that register: short average length, no long-form
	// prose.
	g := New(11)
	ps := g.Personas(8)
	conv := g.Conversation(ps, 500)
	avg := AverageWords(conv)
	if avg < 2 || avg > 12 {
		t.Errorf("average message length %.1f words, want IM-like 2..12", avg)
	}
	for _, e := range conv {
		if len(e.Text) > 120 {
			t.Errorf("message too long for IM register: %q", e.Text)
		}
		if e.Text == "" {
			t.Error("empty message generated")
		}
	}
	if AverageWords(nil) != 0 {
		t.Error("AverageWords(nil) should be 0")
	}
}

func TestStyleCoverage(t *testing.T) {
	g := New(5)
	ps := g.Personas(100)
	styles := make(map[Style]int)
	for _, p := range ps {
		styles[p.Style]++
	}
	for _, s := range []Style{StyleCasual, StyleGamer, StyleTechie, StyleLurker} {
		if styles[s] == 0 {
			t.Errorf("style %s never generated in 100 personas", s)
		}
		if s.String() == "" {
			t.Errorf("style %d has no name", s)
		}
	}
}

func TestMentionsReferencePreviousSpeaker(t *testing.T) {
	g := New(99)
	ps := g.Personas(6)
	conv := g.Conversation(ps, 400)
	mentions := 0
	for i := 1; i < len(conv); i++ {
		if strings.HasPrefix(conv[i].Text, "@") {
			mentions++
			if !strings.HasPrefix(conv[i].Text, "@"+conv[i-1].Author.Username) {
				t.Errorf("mention at %d targets a non-previous speaker: %q", i, conv[i].Text)
			}
		}
	}
	if mentions == 0 {
		t.Error("no mentions generated in 400 messages")
	}
}
