package vetting

import (
	"testing"

	"repro/internal/permissions"
	"repro/internal/scraper"
)

func record(id int, name string, perms permissions.Permission, policy string) *scraper.Record {
	return &scraper.Record{
		ID: id, Name: name, PermsValid: true, Perms: perms, PolicyText: policy,
	}
}

const goodPolicy = `We collect message content, message metadata, voice metadata,
uploaded files, server configuration and command usage statistics.
We use them for features, store them briefly, and never share them with third parties.`

func TestCleanBotApproved(t *testing.T) {
	v := New()
	r := record(1, "Clean", permissions.SendMessages|permissions.ViewChannel|permissions.ReadMessageHistory, goodPolicy)
	rep := v.Vet(r)
	if rep.Verdict != Approve {
		t.Fatalf("verdict = %s, findings = %+v", rep.Verdict, rep.Findings)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("clean bot has findings: %+v", rep.Findings)
	}
}

func TestAdminRedundancyFlagged(t *testing.T) {
	v := New()
	r := record(2, "Greedy", permissions.Administrator|permissions.SendMessages, goodPolicy)
	rep := v.Vet(r)
	if rep.Verdict != Flag {
		t.Fatalf("verdict = %s, findings = %+v", rep.Verdict, rep.Findings)
	}
	if !hasRule(rep, "admin-redundancy") {
		t.Errorf("missing admin-redundancy: %+v", rep.Findings)
	}
}

func TestNoPolicyDataAccessRejected(t *testing.T) {
	v := New()
	r := record(3, "Silent", permissions.ViewChannel|permissions.ReadMessageHistory, "")
	rep := v.Vet(r)
	if rep.Verdict != Reject {
		t.Fatalf("verdict = %s", rep.Verdict)
	}
	if !hasRule(rep, "undisclosed-data-access") {
		t.Errorf("findings = %+v", rep.Findings)
	}
}

func TestCriticalRiskNoPolicyRejected(t *testing.T) {
	v := New()
	r := record(4, "Admin", permissions.Administrator, "")
	rep := v.Vet(r)
	if rep.Verdict != Reject {
		t.Fatalf("verdict = %s", rep.Verdict)
	}
	if !hasRule(rep, "critical-risk-no-policy") || !hasRule(rep, "unauditable-high-privilege") {
		t.Errorf("findings = %+v", rep.Findings)
	}
}

func TestAuditableHighPrivilegeNotUnauditable(t *testing.T) {
	v := New()
	r := record(5, "OpenSource", permissions.Administrator, "")
	r.GitHubURL = "/dev/opensource"
	rep := v.Vet(r)
	if hasRule(rep, "unauditable-high-privilege") {
		t.Errorf("public-source bot marked unauditable: %+v", rep.Findings)
	}
}

func TestUnreadablePermissionsRejected(t *testing.T) {
	v := New()
	r := &scraper.Record{ID: 6, Name: "Broken", InvalidReason: scraper.InvalidTimeout}
	rep := v.Vet(r)
	if rep.Verdict != Reject || !hasRule(rep, "unreadable-permissions") {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestDataTypeGapsFlagged(t *testing.T) {
	v := New()
	// Policy discloses collection generally but not the voice metadata
	// the connect permission exposes.
	policy := "We collect message content. We use it, store it, and never share it."
	r := record(7, "Voicey", permissions.ViewChannel|permissions.Connect, policy)
	rep := v.Vet(r)
	if !hasRule(rep, "data-type-gaps") {
		t.Errorf("findings = %+v", rep.Findings)
	}
	if rep.Verdict != Flag {
		t.Errorf("verdict = %s", rep.Verdict)
	}
}

func TestBoilerplateDetectionAcrossPopulation(t *testing.T) {
	tpl := func(name string) string {
		return "Privacy Policy for " + name + ": we collect and use basic data for features."
	}
	records := []*scraper.Record{
		record(1, "A", permissions.ViewChannel, tpl("A")),
		record(2, "B", permissions.ViewChannel, tpl("B")),
		record(3, "C", permissions.ViewChannel, tpl("C")),
		record(4, "D", permissions.ViewChannel, "A bespoke policy: we collect message content, use, store, share nothing."),
	}
	reports, _ := VetAll(records)
	for _, rep := range reports[:3] {
		if !hasRuleR(rep, "boilerplate-policy") {
			t.Errorf("bot %s: boilerplate not detected: %+v", rep.Name, rep.Findings)
		}
	}
	if hasRuleR(reports[3], "boilerplate-policy") {
		t.Errorf("bespoke policy misdetected: %+v", reports[3].Findings)
	}
}

func TestVetAllSummary(t *testing.T) {
	records := []*scraper.Record{
		record(1, "Clean", permissions.SendMessages|permissions.ViewChannel|permissions.ReadMessageHistory, goodPolicy),
		record(2, "Greedy", permissions.Administrator|permissions.SendMessages, goodPolicy),
		record(3, "Silent", permissions.Administrator, ""),
		nil,
	}
	reports, sum := VetAll(records)
	if len(reports) != 3 || sum.Total != 3 {
		t.Fatalf("reports = %d, total = %d", len(reports), sum.Total)
	}
	if sum.Approved != 1 || sum.Flagged != 1 || sum.Rejected != 1 {
		t.Errorf("summary = %+v", sum)
	}
	top := sum.TopRules()
	if len(top) == 0 {
		t.Fatal("no rules in summary")
	}
	for i := 1; i < len(top); i++ {
		if sum.ByRule[top[i-1]] < sum.ByRule[top[i]] {
			t.Errorf("TopRules not sorted: %v", top)
		}
	}
}

func TestVerdictAndSeverityStrings(t *testing.T) {
	if Approve.String() != "approve" || Flag.String() != "flag" || Reject.String() != "reject" {
		t.Error("verdict labels wrong")
	}
	if SevInfo.String() != "info" || SevWarn.String() != "warn" || SevCritical.String() != "critical" {
		t.Error("severity labels wrong")
	}
}

func hasRule(rep *Report, rule string) bool { return hasRuleR(rep, rule) }

func hasRuleR(rep *Report, rule string) bool {
	for _, f := range rep.Findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}
