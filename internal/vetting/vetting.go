// Package vetting operationalizes the paper's mitigation
// recommendation (§7): "Adopting stricter scrutiny when developers
// collect data and a continuous rigorous vetting process by the
// platform's provider could help mitigate risks." It scores each
// listed bot against rules derived directly from the paper's findings —
// administrator redundancy (§5), undisclosed data collection (Table 2),
// ontology gaps, boilerplate policy reuse (§4.2), and unverifiable
// high-privilege bots — and issues approve/flag/reject verdicts a
// marketplace could enforce at listing time and on every update.
package vetting

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/permissions"
	"repro/internal/scraper"
	"repro/internal/traceability"
)

// Verdict is the vetting outcome for one bot.
type Verdict int

// Verdicts, from best to worst.
const (
	Approve Verdict = iota
	Flag
	Reject
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Reject:
		return "reject"
	case Flag:
		return "flag"
	default:
		return "approve"
	}
}

// Severity grades a finding.
type Severity int

// Severities.
const (
	SevInfo Severity = iota
	SevWarn
	SevCritical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevCritical:
		return "critical"
	case SevWarn:
		return "warn"
	default:
		return "info"
	}
}

// Finding is one rule hit.
type Finding struct {
	Rule     string
	Severity Severity
	Detail   string
}

// Report is the vetting result for one bot.
type Report struct {
	BotID    int
	Name     string
	Verdict  Verdict
	Findings []Finding
}

// Vetter holds population-level context (needed for boilerplate-reuse
// detection) and the rule thresholds.
type Vetter struct {
	// RejectRiskScore is the risk score at or above which a bot with
	// broken traceability is rejected outright.
	RejectRiskScore int
	// BoilerplateMinShare is how many bots must share a normalized
	// policy before it counts as reused boilerplate.
	BoilerplateMinShare int

	policyUses map[string]int
}

// New creates a vetter with the default thresholds.
func New() *Vetter {
	return &Vetter{
		RejectRiskScore:     80,
		BoilerplateMinShare: 3,
		policyUses:          make(map[string]int),
	}
}

// normalizePolicy strips the bot's own name so verbatim-reused
// boilerplate hashes identically across bots (§4.2's observation).
func normalizePolicy(name, policy string) string {
	return strings.ToLower(strings.ReplaceAll(policy, name, "{bot}"))
}

// Observe ingests the population before vetting so population-level
// rules (policy reuse) have context. Call once per record set.
func (v *Vetter) Observe(records []*scraper.Record) {
	for _, r := range records {
		if r == nil || r.PolicyText == "" {
			continue
		}
		v.policyUses[normalizePolicy(r.Name, r.PolicyText)]++
	}
}

// Vet evaluates one bot.
func (v *Vetter) Vet(r *scraper.Record) *Report {
	rep := &Report{BotID: r.ID, Name: r.Name}
	if !r.PermsValid {
		rep.Findings = append(rep.Findings, Finding{
			Rule: "unreadable-permissions", Severity: SevCritical,
			Detail: fmt.Sprintf("invite link does not disclose permissions (%s)", r.InvalidReason),
		})
		rep.Verdict = Reject
		return rep
	}
	var an traceability.Analyzer
	tv := an.AnalyzePolicy(r.PolicyText, r.Perms)
	risk := r.Perms.RiskScore()

	// §5: admin plus extras is redundant and signals a developer who
	// does not understand the permission model.
	if r.Perms.RedundantWithAdmin() {
		rep.Findings = append(rep.Findings, Finding{
			Rule: "admin-redundancy", Severity: SevWarn,
			Detail: fmt.Sprintf("administrator plus %d redundant extra permissions", r.Perms.Count()-1),
		})
	}
	// Table 2: data access without any disclosure.
	if len(tv.UndisclosedPerms) > 0 {
		sev := SevWarn
		if !tv.HasPolicy {
			sev = SevCritical
		}
		rep.Findings = append(rep.Findings, Finding{
			Rule: "undisclosed-data-access", Severity: sev,
			Detail: fmt.Sprintf("%d data-exposing permissions with no collection disclosure", len(tv.UndisclosedPerms)),
		})
	}
	// Ontology refinement: specific exposed-but-unmentioned data types.
	if gaps := traceability.DataTypeGapCount(r.PolicyText, r.Perms); gaps > 0 && tv.HasPolicy {
		rep.Findings = append(rep.Findings, Finding{
			Rule: "data-type-gaps", Severity: SevWarn,
			Detail: fmt.Sprintf("policy silent on %d exposed data types", gaps),
		})
	}
	// §4.2: verbatim policy reuse across bots.
	if r.PolicyText != "" && v.policyUses[normalizePolicy(r.Name, r.PolicyText)] >= v.BoilerplateMinShare {
		rep.Findings = append(rep.Findings, Finding{
			Rule: "boilerplate-policy", Severity: SevInfo,
			Detail: "privacy policy is generic boilerplate shared by other bots",
		})
	}
	// High privilege with nothing to audit.
	if risk >= v.RejectRiskScore && r.GitHubURL == "" && !tv.HasPolicy {
		rep.Findings = append(rep.Findings, Finding{
			Rule: "unauditable-high-privilege", Severity: SevCritical,
			Detail: fmt.Sprintf("risk score %d with no policy and no public source", risk),
		})
	}
	if r.Perms.Level() == permissions.RiskCritical && !tv.HasPolicy {
		rep.Findings = append(rep.Findings, Finding{
			Rule: "critical-risk-no-policy", Severity: SevCritical,
			Detail: "critical-risk permission set without a privacy policy",
		})
	}

	rep.Verdict = verdictFor(rep.Findings)
	return rep
}

func verdictFor(fs []Finding) Verdict {
	criticals, warns := 0, 0
	for _, f := range fs {
		switch f.Severity {
		case SevCritical:
			criticals++
		case SevWarn:
			warns++
		}
	}
	switch {
	case criticals > 0:
		return Reject
	case warns > 0:
		return Flag
	default:
		return Approve
	}
}

// Summary aggregates a vetting pass.
type Summary struct {
	Total    int
	Approved int
	Flagged  int
	Rejected int
	// ByRule counts how many bots each rule hit.
	ByRule map[string]int
}

// VetAll observes and vets the whole record set, returning per-bot
// reports (in input order, nil records skipped) and the aggregate.
func VetAll(records []*scraper.Record) ([]*Report, Summary) {
	v := New()
	v.Observe(records)
	sum := Summary{ByRule: make(map[string]int)}
	var reports []*Report
	for _, r := range records {
		if r == nil {
			continue
		}
		rep := v.Vet(r)
		reports = append(reports, rep)
		sum.Total++
		switch rep.Verdict {
		case Approve:
			sum.Approved++
		case Flag:
			sum.Flagged++
		case Reject:
			sum.Rejected++
		}
		for _, f := range rep.Findings {
			sum.ByRule[f.Rule]++
		}
	}
	return reports, sum
}

// TopRules returns rule names ordered by hit count descending.
func (s Summary) TopRules() []string {
	rules := make([]string, 0, len(s.ByRule))
	for r := range s.ByRule {
		rules = append(rules, r)
	}
	sort.Slice(rules, func(i, j int) bool {
		if s.ByRule[rules[i]] != s.ByRule[rules[j]] {
			return s.ByRule[rules[i]] > s.ByRule[rules[j]]
		}
		return rules[i] < rules[j]
	})
	return rules
}
