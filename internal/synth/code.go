package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/codehost"
	"repro/internal/listing"
)

// GitHub link kinds. Listed GitHubURL values are host-relative paths
// ("/owner/repo", "/owner", dead paths); the code-analysis stage joins
// them with the code-host base URL, the way the paper's scraper visited
// absolute github.com links.
const deadLinkPath = "/gone/repository-404"

// jsCheckSnippets are the Table 3 permission-check APIs as they appear
// in discord.js-style code.
var jsCheckSnippets = []string{
	`  if (!message.member.hasPermission('KICK_MEMBERS')) {
    return message.reply('you lack permission to do that');
  }`,
	`  if (!message.member.permissions.has('BAN_MEMBERS')) {
    return message.reply('missing ban permission');
  }`,
	`  const staff = message.member.roles.cache.some(r => r.name === 'staff');
  if (!staff) return message.reply('staff only');`,
}

// pyCheckSnippet is the Table 3 `userPermissions` pattern in
// discord.py-style code.
const pyCheckSnippet = `    userPermissions = ctx.author.guild_permissions
    if not userPermissions.kick_members:
        await ctx.send("you lack permission to do that")
        return`

// populateCodeHost assigns GitHub links to bots and creates the hosted
// repositories, following the §4.2 taxonomy.
func populateCodeHost(rng *rand.Rand, cal *Calibration, eco *Ecosystem) {
	for _, b := range eco.Bots {
		if b.ID == eco.MaliciousID {
			continue // malicious bots don't post source (§5)
		}
		if rng.Float64() >= cal.GitHubLinkRate {
			continue
		}
		owner := devSlug(b.Developers[0])
		if rng.Float64() < cal.LinkIsValidRepoRate {
			repo := buildRepo(rng, cal, owner, b)
			eco.Host.AddRepo(repo)
			b.GitHubURL = "/" + repo.FullName()
			continue
		}
		// Invalid link: profile, empty profile, or dead path.
		r := rng.Float64() * (cal.InvalidLinkSplit[0] + cal.InvalidLinkSplit[1] + cal.InvalidLinkSplit[2])
		switch {
		case r < cal.InvalidLinkSplit[0]:
			// Link to the developer's profile page (with an unrelated
			// repo so the profile renders a repo list).
			if _, exists := eco.Host.Repo(owner + "/dotfiles"); !exists {
				eco.Host.AddRepo(&codehost.Repo{
					Owner: owner, Name: "dotfiles",
					Files: []codehost.File{{Path: "README.md", Content: "# dotfiles\npersonal configs\n"}},
				})
			}
			b.GitHubURL = "/" + owner
		case r < cal.InvalidLinkSplit[0]+cal.InvalidLinkSplit[1]:
			eco.Host.AddProfile(owner)
			b.GitHubURL = "/" + owner
		default:
			b.GitHubURL = deadLinkPath
		}
	}
}

// buildRepo creates the repository for one bot: README-only, JS,
// Python, or another language.
func buildRepo(rng *rand.Rand, cal *Calibration, owner string, b *listing.Bot) *codehost.Repo {
	repo := &codehost.Repo{Owner: owner, Name: repoSlug(b.Name)}
	repo.Files = append(repo.Files, codehost.File{
		Path: "README.md",
		Content: fmt.Sprintf("# %s\n\nA %s bot. Commands: %s\n",
			b.Name, strings.Join(b.Tags, ", "), strings.Join(b.Commands, " ")),
	})
	if rng.Float64() < cal.ReadmeOnlyRate {
		// "Many only have READ.ME files with chatbot descriptions or
		// commands, or just information on licensing and changelogs."
		repo.Files = append(repo.Files,
			codehost.File{Path: "LICENSE", Content: mitLicense},
			codehost.File{Path: "CHANGELOG.md", Content: "## 1.0.0\n- initial listing\n"},
		)
		return repo
	}
	r := rng.Float64()
	switch {
	case r < cal.LangSplit.JS:
		checked := rng.Float64() < cal.JSCheckRate
		repo.Files = append(repo.Files,
			codehost.File{Path: "index.js", Content: jsIndex(b, checked, rng)},
			codehost.File{Path: "package.json", Content: packageJSON(b)},
		)
	case r < cal.LangSplit.JS+cal.LangSplit.Py:
		checked := rng.Float64() < cal.PyCheckRate
		repo.Files = append(repo.Files,
			codehost.File{Path: "bot.py", Content: pyBot(b, checked)},
			codehost.File{Path: "requirements.txt", Content: "discord.py>=1.7\n"},
		)
	default:
		repo.Files = append(repo.Files, otherLanguageFile(rng, b))
	}
	return repo
}

func jsIndex(b *listing.Bot, checked bool, rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString(`const Discord = require('discord.js');
const client = new Discord.Client();

client.on('ready', () => {
  console.log('logged in as ' + client.user.tag);
});

client.on('message', message => {
  if (message.author.bot) return;
`)
	fmt.Fprintf(&sb, "  if (!message.content.startsWith('%s')) return;\n", b.Prefix)
	fmt.Fprintf(&sb, "  const cmd = message.content.slice(%d).split(' ')[0];\n\n", len(b.Prefix))
	fmt.Fprintf(&sb, "  if (cmd === 'help') {\n    return message.channel.send('%s commands: %s');\n  }\n",
		b.Name, strings.Join(b.Commands, " "))
	sb.WriteString("  if (cmd === 'kick') {\n")
	if checked {
		sb.WriteString(jsCheckSnippets[rng.Intn(len(jsCheckSnippets))])
		sb.WriteString("\n")
	}
	sb.WriteString(`    const target = message.mentions.members.first();
    if (target) target.kick();
    return;
  }
});

client.login(process.env.TOKEN);
`)
	return sb.String()
}

func packageJSON(b *listing.Bot) string {
	return fmt.Sprintf(`{
  "name": "%s",
  "version": "1.0.0",
  "main": "index.js",
  "dependencies": { "discord.js": "^12.5.3" }
}
`, repoSlug(b.Name))
}

func pyBot(b *listing.Bot, checked bool) string {
	var sb strings.Builder
	sb.WriteString(`import discord
from discord.ext import commands

`)
	fmt.Fprintf(&sb, "bot = commands.Bot(command_prefix=%q)\n\n", b.Prefix)
	sb.WriteString(`@bot.event
async def on_ready():
    print(f"logged in as {bot.user}")

@bot.command()
async def help_cmd(ctx):
`)
	fmt.Fprintf(&sb, "    await ctx.send(%q)\n\n", b.Name+" at your service")
	sb.WriteString("@bot.command()\nasync def kick(ctx, member: discord.Member):\n")
	if checked {
		sb.WriteString(pyCheckSnippet + "\n")
	}
	sb.WriteString(`    await member.kick()
    await ctx.send("done")

bot.run("TOKEN")
`)
	return sb.String()
}

func otherLanguageFile(rng *rand.Rand, b *listing.Bot) codehost.File {
	switch rng.Intn(3) {
	case 0:
		return codehost.File{Path: "main.go", Content: fmt.Sprintf(
			"package main\n\nimport \"fmt\"\n\nfunc main() {\n\tfmt.Println(%q)\n}\n", b.Name+" starting")}
	case 1:
		return codehost.File{Path: "bot.rb", Content: fmt.Sprintf(
			"require 'discordrb'\n\nbot = Discordrb::Bot.new token: ENV['TOKEN']\nbot.message(start_with: '%s') do |event|\n  event.respond 'hi from %s'\nend\nbot.run\n", b.Prefix, b.Name)}
	default:
		return codehost.File{Path: "Main.java", Content: fmt.Sprintf(
			"public class Main {\n  public static void main(String[] args) {\n    System.out.println(\"%s online\");\n  }\n}\n", b.Name)}
	}
}

const mitLicense = `MIT License

Permission is hereby granted, free of charge, to any person obtaining a
copy of this software, to deal in the Software without restriction.
`

func devSlug(tag string) string {
	if i := strings.IndexByte(tag, '#'); i > 0 {
		tag = tag[:i]
	}
	return strings.ToLower(tag)
}

func repoSlug(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}
