package synth

import (
	"math"
	"strings"
	"testing"

	"repro/internal/listing"
	"repro/internal/permissions"
)

func genTest(t *testing.T, n int) *Ecosystem {
	t.Helper()
	return Generate(Config{Seed: 2022, NumBots: n})
}

func pctWithin(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.2f%%, want %.2f%% ± %.2f", name, got, want, tol)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7, NumBots: 500})
	b := Generate(Config{Seed: 7, NumBots: 500})
	if len(a.Bots) != len(b.Bots) {
		t.Fatal("population size differs")
	}
	for i := range a.Bots {
		x, y := a.Bots[i], b.Bots[i]
		if x.Name != y.Name || x.Perms != y.Perms || x.Votes != y.Votes ||
			x.GitHubURL != y.GitHubURL || x.PolicyText != y.PolicyText {
			t.Fatalf("bot %d differs between runs", i)
		}
	}
	if a.MaliciousID != b.MaliciousID {
		t.Error("malicious bot placement differs")
	}
	c := Generate(Config{Seed: 8, NumBots: 500})
	if a.Bots[0].Perms == c.Bots[0].Perms && a.Bots[1].Perms == c.Bots[1].Perms &&
		a.Bots[2].Perms == c.Bots[2].Perms && a.Bots[3].Perms == c.Bots[3].Perms {
		t.Error("different seeds look identical")
	}
}

func TestValidPermissionRate(t *testing.T) {
	eco := genTest(t, 10000)
	valid := 0
	for _, b := range eco.Bots {
		if b.InviteHealth == listing.InviteOK {
			valid++
		}
	}
	pctWithin(t, "valid-invite rate", 100*float64(valid)/float64(len(eco.Bots)), 74.23, 2.0)
}

func TestFigure3Anchors(t *testing.T) {
	eco := genTest(t, 10000)
	var valid, send, admin int
	for _, b := range eco.Bots {
		if b.InviteHealth != listing.InviteOK {
			continue
		}
		valid++
		if b.Perms.Has(permissions.SendMessages) {
			send++
		}
		if b.Perms.Has(permissions.Administrator) {
			admin++
		}
	}
	pctWithin(t, "send messages", 100*float64(send)/float64(valid), 59.18, 2.5)
	pctWithin(t, "administrator", 100*float64(admin)/float64(valid), 54.86, 2.5)
}

func TestTable2Marginals(t *testing.T) {
	eco := genTest(t, 20000)
	var website, policyLink, livePolicy, total int
	for _, b := range eco.Bots {
		if b.InviteHealth != listing.InviteOK {
			continue
		}
		total++
		if b.HasWebsite {
			website++
		}
		if b.HasPolicyLink {
			policyLink++
			if !b.PolicyDead {
				livePolicy++
			}
		}
	}
	pctWithin(t, "website link", 100*float64(website)/float64(total), 37.27, 2.0)
	pctWithin(t, "policy link", 100*float64(policyLink)/float64(total), 4.35, 1.0)
	pctWithin(t, "live policy", 100*float64(livePolicy)/float64(total), 4.33, 1.0)
	if livePolicy == policyLink {
		t.Error("expected a few dead policy links at this population size")
	}
}

func TestDeveloperDistribution(t *testing.T) {
	eco := genTest(t, 20000)
	counts := make(map[int]int) // bots-per-dev -> developers
	for _, ids := range eco.Developers {
		counts[len(ids)]++
	}
	devs := 0
	for _, c := range counts {
		devs += c
	}
	onePct := 100 * float64(counts[1]) / float64(devs)
	pctWithin(t, "single-bot developers", onePct, 89.08, 2.0)
	if counts[2] == 0 || counts[3] == 0 {
		t.Error("multi-bot developers missing")
	}
	// The long tail must be bounded by Table 1's maximum of 12.
	for k := range counts {
		if k > 12 {
			t.Errorf("developer with %d bots exceeds Table 1 max", k)
		}
	}
}

func TestGitHubTaxonomy(t *testing.T) {
	eco := genTest(t, 20000)
	var active, linked, validRepo, sourceRepos, jsRepos, pyRepos int
	var jsChecked, pyChecked int
	for _, b := range eco.Bots {
		if b.InviteHealth != listing.InviteOK {
			continue
		}
		active++
		if b.GitHubURL == "" {
			continue
		}
		linked++
		repo, ok := eco.Host.Repo(strings.TrimPrefix(b.GitHubURL, "/"))
		if !ok {
			continue
		}
		validRepo++
		lang := repo.MainLanguage()
		if lang == "" {
			continue
		}
		sourceRepos++
		joined := ""
		for _, f := range repo.SourceFiles("") {
			joined += f.Content
		}
		switch lang {
		case "JavaScript":
			jsRepos++
			if strings.Contains(joined, ".hasPermission(") || strings.Contains(joined, ".has(") ||
				strings.Contains(joined, "member.roles.cache") || strings.Contains(joined, "userPermissions") {
				jsChecked++
			}
		case "Python":
			pyRepos++
			if strings.Contains(joined, "userPermissions") {
				pyChecked++
			}
		}
	}
	pctWithin(t, "github link rate", 100*float64(linked)/float64(active), 23.86, 1.5)
	pctWithin(t, "valid repo rate", 100*float64(validRepo)/float64(linked), 60.46, 3.0)
	pctWithin(t, "JS share", 100*float64(jsRepos)/float64(validRepo), 41.3, 3.5)
	pctWithin(t, "Py share", 100*float64(pyRepos)/float64(validRepo), 32.1, 3.5)
	pctWithin(t, "JS check rate", 100*float64(jsChecked)/float64(jsRepos), 72.97, 4.0)
	pctWithin(t, "Py check rate", 100*float64(pyChecked)/float64(pyRepos), 2.65, 2.0)
	if sourceRepos >= validRepo {
		t.Error("expected some README-only repositories")
	}
}

func TestMaliciousBotPlanted(t *testing.T) {
	eco := genTest(t, 2000)
	b := findBot(eco, eco.MaliciousID)
	if b == nil {
		t.Fatal("malicious bot missing")
	}
	if b.Name != "Melonian" {
		t.Errorf("malicious name = %q", b.Name)
	}
	if eco.Behaviors[b.ID] != BehaviorSnoop {
		t.Error("malicious bot lacks snoop behavior")
	}
	if b.GuildCount != 25 {
		t.Errorf("malicious guild count = %d", b.GuildCount)
	}
	if b.GitHubURL != "" {
		t.Error("malicious bot should not volunteer source")
	}
	if !b.Perms.Has(permissions.ReadMessageHistory) {
		t.Error("snoop bot needs read-message-history")
	}
	// Votes must put it inside a most-voted 500 sample.
	rank := 0
	for _, other := range eco.Bots {
		if other.Votes > b.Votes {
			rank++
		}
	}
	if rank >= 500 {
		t.Errorf("malicious bot vote rank %d, want < 500", rank)
	}
}

func TestBehaviorsAssigned(t *testing.T) {
	eco := genTest(t, 1000)
	counts := make(map[Behavior]int)
	for _, b := range eco.Behaviors {
		counts[b]++
	}
	if counts[BehaviorSnoop] != 1 {
		t.Errorf("snoop count = %d, want exactly 1", counts[BehaviorSnoop])
	}
	if counts[BehaviorIdle] == 0 || counts[BehaviorResponder] == 0 {
		t.Errorf("behavior mix degenerate: %v", counts)
	}
	for _, b := range []Behavior{BehaviorIdle, BehaviorResponder, BehaviorSnoop} {
		if b.String() == "" {
			t.Error("behavior missing a name")
		}
	}
}

func TestPoliciesAreNeverComplete(t *testing.T) {
	eco := genTest(t, 20000)
	for _, b := range eco.Bots {
		if b.PolicyText == "" {
			continue
		}
		// No generated policy may cover all four categories — the paper
		// found zero complete policies.
		hasAll := strings.Contains(strings.ToLower(b.PolicyText), "collect") &&
			strings.Contains(strings.ToLower(b.PolicyText), "use") &&
			strings.Contains(strings.ToLower(b.PolicyText), "retain") &&
			strings.Contains(strings.ToLower(b.PolicyText), "disclose")
		if hasAll {
			t.Fatalf("bot %s policy covers all four categories:\n%s", b.Name, b.PolicyText)
		}
	}
}

func TestDefaultPopulationSize(t *testing.T) {
	eco := Generate(Config{Seed: 1, NumBots: 0})
	if len(eco.Bots) != PaperPopulation {
		t.Errorf("default population = %d, want %d", len(eco.Bots), PaperPopulation)
	}
}

func TestLongTailPopularity(t *testing.T) {
	eco := genTest(t, 5000)
	big, small := 0, 0
	for _, b := range eco.Bots {
		if b.GuildCount > 100000 {
			big++
		}
		if b.GuildCount < 1000 {
			small++
		}
	}
	if big == 0 {
		t.Error("no mega-popular bots in the long tail")
	}
	if small < len(eco.Bots)/2 {
		t.Errorf("tail not heavy enough: %d small of %d", small, len(eco.Bots))
	}
}

func findBot(eco *Ecosystem, id int) *listing.Bot {
	for _, b := range eco.Bots {
		if b.ID == id {
			return b
		}
	}
	return nil
}
