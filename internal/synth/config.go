// Package synth generates the synthetic Discord-like chatbot ecosystem
// the pipeline measures: a listing population whose marginals are
// calibrated to the paper's reported numbers (Figure 3, Tables 1–3 and
// the §4.2 text statistics), matching privacy policies, a code-host
// population with the paper's link-validity taxonomy, and behaviour
// profiles for the dynamic analysis.
//
// Everything is seeded: the same Config yields byte-identical
// ecosystems, which is what lets the benchmark harness regenerate the
// paper's tables deterministically.
package synth

import "repro/internal/permissions"

// Config drives ecosystem generation.
type Config struct {
	Seed int64
	// NumBots is the listing population; the paper scraped 20,915.
	NumBots int
	// Calibration defaults to PaperCalibration when zero-valued.
	Cal *Calibration
}

// Calibration holds every measured marginal the generator reproduces.
type Calibration struct {
	// ValidPermissionRate is the fraction of listed bots whose invite
	// link yields a readable permission set (paper: 74%, 15,525 of
	// 20,915).
	ValidPermissionRate float64
	// InvalidSplit apportions the invalid remainder among broken
	// links, removed bots, and slow redirects (paper lists the three
	// causes without counts).
	InvalidSplit [3]float64

	// PermissionRates is the per-permission request probability among
	// valid bots — Figure 3. The two text anchors are exact (send
	// messages 59.18%, administrator 54.86%); the remaining bars are
	// read off the figure.
	PermissionRates []PermRate

	// WebsiteRate is the fraction of active bots with a website link
	// (Table 2: 37.27%).
	WebsiteRate float64
	// PolicyLinkRateGivenWebsite is the fraction of bot websites that
	// link a privacy policy (Table 2: 676/5,786).
	PolicyLinkRateGivenWebsite float64
	// PolicyDeadRate is the fraction of policy links that 404 (Table
	// 2: 3 of 676).
	PolicyDeadRate float64
	// GenericPolicyRate is the fraction of live policies that are
	// verbatim boilerplate (§4.2 observes verbatim reuse).
	GenericPolicyRate float64

	// DeveloperDist is Table 1: fraction of developers owning k bots.
	DeveloperDist []DevBucket

	// GitHubLinkRate is the fraction of active bots with a GitHub link
	// (§4.2: 23.86%).
	GitHubLinkRate float64
	// LinkIsValidRepoRate is the fraction of GitHub links that lead to
	// a valid repository (§4.2: 60.46%).
	LinkIsValidRepoRate float64
	// InvalidLinkSplit apportions non-repo links among user profiles,
	// profiles with no public repos, and dead links.
	InvalidLinkSplit [3]float64
	// ReadmeOnlyRate is the fraction of valid repositories holding no
	// source code (§4.2: 6 of 2,240).
	ReadmeOnlyRate float64
	// LangSplit apportions source-bearing repositories among
	// JavaScript, Python and other languages (§4.2: 41% JS, 32% Py).
	LangSplit struct{ JS, Py float64 }
	// JSCheckRate / PyCheckRate are the fractions of JS / Python repos
	// containing a permission-check API (§4.2: 72.97% and 2.65%).
	JSCheckRate float64
	PyCheckRate float64

	// MaliciousName is the bot planted with snooping behaviour for the
	// dynamic analysis (§4.2: "Melonian").
	MaliciousName string
	// MaliciousGuildCount keeps the malicious bot "present in a few
	// guilds" while voted enough to enter the most-voted sample.
	MaliciousGuildCount int
}

// PermRate pairs a permission with its Figure 3 request probability.
type PermRate struct {
	Perm permissions.Permission
	Rate float64
}

// DevBucket is one Table 1 row: the fraction of developers who own
// Bots bots.
type DevBucket struct {
	Bots int
	Frac float64
}

// PaperCalibration returns the calibration matching the paper's
// reported measurements. Figure 3 bars without a number in the text are
// estimated from the plot; EXPERIMENTS.md records which values are
// anchors and which are estimates.
func PaperCalibration() *Calibration {
	c := &Calibration{
		ValidPermissionRate:        0.7423, // 15,525 / 20,915
		InvalidSplit:               [3]float64{0.45, 0.35, 0.20},
		WebsiteRate:                0.3727, // Table 2
		PolicyLinkRateGivenWebsite: 676.0 / 5786.0,
		PolicyDeadRate:             3.0 / 676.0,
		GenericPolicyRate:          0.60,
		GitHubLinkRate:             0.2386, // §4.2
		LinkIsValidRepoRate:        0.6046, // §4.2
		InvalidLinkSplit:           [3]float64{0.5, 0.25, 0.25},
		ReadmeOnlyRate:             6.0 / 2240.0,
		JSCheckRate:                0.7297, // §4.2
		PyCheckRate:                0.0265, // §4.2
		MaliciousName:              "Melonian",
		MaliciousGuildCount:        25,
	}
	c.LangSplit.JS = 925.0 / 2240.0 // 41.3%
	c.LangSplit.Py = 718.0 / 2240.0 // 32.1%

	c.PermissionRates = []PermRate{
		{permissions.SendMessages, 0.5918},  // text anchor
		{permissions.Administrator, 0.5486}, // text anchor
		{permissions.ViewChannel, 0.48},     // "read messages"
		{permissions.EmbedLinks, 0.45},
		{permissions.AttachFiles, 0.42},
		{permissions.ReadMessageHistory, 0.38},
		{permissions.AddReactions, 0.35},
		{permissions.ManageMessages, 0.33},
		{permissions.UseExternalEmojis, 0.28},
		{permissions.Connect, 0.25},
		{permissions.Speak, 0.25},
		{permissions.ManageRoles, 0.23},
		{permissions.KickMembers, 0.21},
		{permissions.BanMembers, 0.20},
		{permissions.ManageChannels, 0.18},
		{permissions.MentionEveryone, 0.17},
		{permissions.ManageGuild, 0.15},
		{permissions.ChangeNickname, 0.14},
		{permissions.ManageNicknames, 0.13},
		{permissions.CreateInstantInvite, 0.12},
		{permissions.SendTTSMessages, 0.11},
		{permissions.UseVAD, 0.10},
		{permissions.ManageWebhooks, 0.09},
		{permissions.ManageEmojis, 0.08},
		{permissions.ViewAuditLog, 0.07},
	}

	// Table 1, exact fractions.
	c.DeveloperDist = []DevBucket{
		{1, 0.8908}, {2, 0.0876}, {3, 0.0149}, {4, 0.0040}, {5, 0.0015},
		{6, 0.0005}, {7, 0.0003}, {8, 0.0002}, {11, 0.0001}, {12, 0.0001},
	}
	return c
}

// PaperPopulation is the full-scale bot count.
const PaperPopulation = 20915
