package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/codehost"
	"repro/internal/listing"
	"repro/internal/permissions"
	"repro/internal/policygen"
)

// Behavior is a bot's runtime profile for the dynamic analysis.
type Behavior int

// Behaviors.
const (
	// BehaviorIdle bots connect and do nothing beyond heartbeats.
	BehaviorIdle Behavior = iota
	// BehaviorResponder bots answer their prefix commands.
	BehaviorResponder
	// BehaviorSnoop bots read channel history, open posted documents,
	// visit posted URLs and mail posted addresses — the Melonian case.
	BehaviorSnoop
)

// String names the behavior.
func (b Behavior) String() string {
	switch b {
	case BehaviorResponder:
		return "responder"
	case BehaviorSnoop:
		return "snoop"
	default:
		return "idle"
	}
}

// Ecosystem is a fully generated measurement target.
type Ecosystem struct {
	Bots []*listing.Bot
	Host *codehost.Host
	// Behaviors maps listing bot IDs to runtime profiles.
	Behaviors map[int]Behavior
	// MaliciousID is the listing ID of the planted snooping bot.
	MaliciousID int
	// Developers maps developer tags to the listing IDs they own.
	Developers map[string][]int
}

var botAdjectives = []string{
	"Mega", "Hyper", "Lunar", "Pixel", "Turbo", "Astro", "Neon", "Echo",
	"Prime", "Nova", "Quantum", "Shadow", "Crystal", "Vortex", "Zen",
	"Rapid", "Silver", "Crimson", "Frost", "Ember",
}

var botNouns = []string{
	"Moderator", "DJ", "Helper", "Guard", "Quizzer", "Meme", "Tracker",
	"Scheduler", "Translator", "Greeter", "Logger", "Poller", "Ranker",
	"Notifier", "Companion", "Butler", "Scribe", "Warden", "Oracle", "Clerk",
}

var tagPool = []string{
	"moderation", "music", "fun", "social", "gaming", "meme", "utility",
	"economy", "leveling", "anime", "roleplay", "logging",
}

var devFirst = []string{
	"editid", "lukas", "aisha", "marco", "tomoko", "devon", "priya",
	"sergio", "nina", "felix", "amara", "johan", "keiko", "omar", "lena",
}

// Generate builds an ecosystem from a config.
func Generate(cfg Config) *Ecosystem {
	if cfg.NumBots <= 0 {
		cfg.NumBots = PaperPopulation
	}
	cal := cfg.Cal
	if cal == nil {
		cal = PaperCalibration()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pg := policygen.New(cfg.Seed ^ 0x5eed)

	eco := &Ecosystem{
		Host:       codehost.NewHost(),
		Behaviors:  make(map[int]Behavior),
		Developers: make(map[string][]int),
	}

	devTags := assignDevelopers(rng, cal, cfg.NumBots)

	for i := 0; i < cfg.NumBots; i++ {
		id := i + 1
		b := &listing.Bot{
			ID:         id,
			Name:       botName(rng, id),
			Developers: []string{devTags[i]},
			Prefix:     pick(rng, []string{"!", "?", ".", "~", "$", ">"}),
		}
		eco.Developers[devTags[i]] = append(eco.Developers[devTags[i]], id)
		nTags := 1 + rng.Intn(3)
		for len(b.Tags) < nTags {
			tg := pick(rng, tagPool)
			if !contains(b.Tags, tg) {
				b.Tags = append(b.Tags, tg)
			}
		}
		b.Description = fmt.Sprintf("%s is a %s bot for your server. Try %shelp to get started.",
			b.Name, strings.Join(b.Tags, "/"), b.Prefix)
		b.Commands = []string{b.Prefix + "help", b.Prefix + "info", b.Prefix + strings.ToLower(b.Tags[0])}

		// Long-tailed popularity: a few bots in millions of guilds,
		// most in a handful (paper's sample spanned 3M..25 guilds and
		// 876K..6 votes).
		b.GuildCount = longTail(rng, 3_000_000)
		b.Votes = longTail(rng, 876_000)

		// Permission marginals (Figure 3), independent per permission.
		for _, pr := range cal.PermissionRates {
			if rng.Float64() < pr.Rate {
				b.Perms |= pr.Perm
			}
		}
		// A bot that requests nothing still carries the implicit bot
		// scope; give it send-messages so the listing stays plausible.
		if b.Perms == permissions.None {
			b.Perms = permissions.SendMessages
		}

		// Invite health (valid 74%).
		if rng.Float64() >= cal.ValidPermissionRate {
			b.InviteHealth = pickSplit(rng, cal.InvalidSplit,
				listing.InviteBroken, listing.InviteRemoved, listing.InviteSlow)
		}

		// Website + policy (Table 2 marginals).
		if rng.Float64() < cal.WebsiteRate {
			b.HasWebsite = true
			if rng.Float64() < cal.PolicyLinkRateGivenWebsite {
				b.HasPolicyLink = true
				if rng.Float64() < cal.PolicyDeadRate {
					b.PolicyDead = true
				} else {
					b.PolicyText = makePolicy(rng, pg, cal, b)
				}
			}
		}

		// Behavior profile for dynamic analysis.
		if rng.Float64() < 0.5 {
			eco.Behaviors[id] = BehaviorResponder
		} else {
			eco.Behaviors[id] = BehaviorIdle
		}

		eco.Bots = append(eco.Bots, b)
	}

	plantMalicious(rng, cal, eco)
	populateCodeHost(rng, cal, eco)
	return eco
}

// assignDevelopers deals developer tags to bots following Table 1's
// per-developer bot-count distribution.
func assignDevelopers(rng *rand.Rand, cal *Calibration, n int) []string {
	tags := make([]string, 0, n)
	devIdx := 0
	for len(tags) < n {
		devIdx++
		tag := fmt.Sprintf("%s%d#%04d", pick(rng, devFirst), devIdx, rng.Intn(10000))
		k := sampleDevBucket(rng, cal.DeveloperDist)
		for j := 0; j < k && len(tags) < n; j++ {
			tags = append(tags, tag)
		}
	}
	// Shuffle so a developer's bots are scattered through the listing.
	rng.Shuffle(len(tags), func(i, j int) { tags[i], tags[j] = tags[j], tags[i] })
	return tags
}

func sampleDevBucket(rng *rand.Rand, dist []DevBucket) int {
	r := rng.Float64()
	var cum float64
	for _, b := range dist {
		cum += b.Frac
		if r < cum {
			return b.Bots
		}
	}
	return dist[len(dist)-1].Bots
}

// makePolicy generates the policy text: generic boilerplate or a
// tailored partial policy. Matching §4.2, no generated policy is
// complete.
func makePolicy(rng *rand.Rand, pg *policygen.Generator, cal *Calibration, b *listing.Bot) string {
	if rng.Float64() < cal.GenericPolicyRate {
		return pg.Generate(policygen.Spec{
			BotName: b.Name, Generic: true, GenericTemplate: rng.Intn(3),
		})
	}
	// 1–3 covered categories out of four: always partial.
	cats := append([]policygen.Category(nil), policygen.AllCategories...)
	rng.Shuffle(len(cats), func(i, j int) { cats[i], cats[j] = cats[j], cats[i] })
	covered := cats[:1+rng.Intn(3)]
	return pg.Generate(policygen.Spec{BotName: b.Name, Covered: covered})
}

// plantMalicious designates (or creates) the Melonian-style bot: voted
// into the most-voted sample, present in few guilds, snooping at
// runtime.
func plantMalicious(rng *rand.Rand, cal *Calibration, eco *Ecosystem) {
	idx := rng.Intn(len(eco.Bots))
	b := eco.Bots[idx]
	b.Name = cal.MaliciousName
	b.Description = fmt.Sprintf("%s is a %s bot for your server. Try %shelp to get started.",
		b.Name, strings.Join(b.Tags, "/"), b.Prefix)
	b.GuildCount = cal.MaliciousGuildCount
	// High enough to enter any most-voted sample of the population.
	b.Votes = 900_000
	b.InviteHealth = listing.InviteOK
	b.Perms |= permissions.ViewChannel | permissions.ReadMessageHistory |
		permissions.SendMessages | permissions.AttachFiles
	b.HasWebsite = false
	b.HasPolicyLink = false
	b.GitHubURL = "" // malicious bots don't volunteer source (§5)
	eco.Behaviors[b.ID] = BehaviorSnoop
	eco.MaliciousID = b.ID
}

func botName(rng *rand.Rand, id int) string {
	return fmt.Sprintf("%s%s%d", pick(rng, botAdjectives), pick(rng, botNouns), id)
}

// longTail draws a Zipf-ish count in [low, max]: most draws are tiny,
// rare ones huge.
func longTail(rng *rand.Rand, max int) int {
	// x = max * u^16 gives a heavy concentration near zero.
	u := rng.Float64()
	v := u * u * u * u
	v = v * v // u^8
	v = v * v // u^16
	n := int(v * float64(max))
	if n < 6 {
		n = 6 + rng.Intn(30)
	}
	return n
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func pickSplit(rng *rand.Rand, split [3]float64, a, b, c listing.InviteHealth) listing.InviteHealth {
	r := rng.Float64() * (split[0] + split[1] + split[2])
	switch {
	case r < split[0]:
		return a
	case r < split[0]+split[1]:
		return b
	default:
		return c
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
