// Package soak is the capstone chaos harness: it runs the full
// four-stage audit pipeline against its live gateway while loadgen
// personas drive background traffic, under a declarative phased chaos
// schedule — ramping fault profiles, flipping gateway limits, stalling
// listeners, and firing SIGKILL-style aborts at checkpoint boundaries —
// and then proves, via internal/soak/invariant, that the run's
// artifacts (results, journal, ledger, checkpoints, counters, loadgen
// accounting) reconcile exactly. Robust is not "didn't crash"; robust
// is "every bot is accounted for and every ledger agrees".
package soak

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/faults"
	"repro/internal/gateway"
)

// Schedule is a declarative chaos plan: sequential wall-clock phases,
// each setting the conditions (fault profile, gateway limits, stalled
// listeners, kill orders) that hold until a later phase changes them.
type Schedule struct {
	Name   string  `json:"name"`
	Phases []Phase `json:"phases"`
}

// Phase is one timed window of chaos conditions. Omitted knobs carry
// the previous phase's conditions forward; only explicit fields change
// the world.
type Phase struct {
	Name string `json:"name"`
	// AtMS optionally pins the phase start (ms from soak start). It must
	// not overlap the previous phase; a gap simply extends the previous
	// phase's conditions. Omitted = immediately after the previous phase.
	AtMS *int `json:"at_ms,omitempty"`
	// DurationMS is the phase length; must be positive.
	DurationMS int `json:"duration_ms"`
	// FaultProfile ramps the injector to a named profile
	// (none/mild/moderate/storm). Empty keeps the current profile.
	FaultProfile string `json:"fault_profile,omitempty"`
	// Limits overlays the base gateway limits; set fields persist until
	// a later phase overrides them (nil = no change).
	Limits *PhaseLimits `json:"limits,omitempty"`
	// StallClients connects that many identify-then-never-read clients
	// for the duration of the phase.
	StallClients int `json:"stall_clients,omitempty"`
	// Kill arms a SIGKILL-style abort: after the pipeline writes
	// AfterCheckpoints more checkpoints, its run context is cancelled,
	// the journal sealed, and the run resumed from the latest snapshot.
	Kill *KillSpec `json:"kill,omitempty"`

	// startMS is the resolved phase start, filled by validation.
	startMS int
}

// StartMS reports the resolved phase start (valid after DecodeSchedule).
func (p *Phase) StartMS() int { return p.startMS }

// EndMS reports the resolved phase end (valid after DecodeSchedule).
func (p *Phase) EndMS() int { return p.startMS + p.DurationMS }

// KillSpec orders a mid-phase crash.
type KillSpec struct {
	// AfterCheckpoints counts checkpoint writes before the abort fires;
	// must be >= 1.
	AfterCheckpoints int `json:"after_checkpoints"`
}

// PhaseLimits is a partial overlay over gateway.Limits: nil fields keep
// the in-force value, set fields replace it.
type PhaseLimits struct {
	MaxSessions         *int     `json:"max_sessions,omitempty"`
	IdentifyRPS         *float64 `json:"identify_rps,omitempty"`
	IdentifyBurst       *int     `json:"identify_burst,omitempty"`
	TenantRPS           *float64 `json:"tenant_rps,omitempty"`
	TenantBurst         *int     `json:"tenant_burst,omitempty"`
	TenantIdentifyRPS   *float64 `json:"tenant_identify_rps,omitempty"`
	TenantIdentifyBurst *int     `json:"tenant_identify_burst,omitempty"`
	SendQueue           *int     `json:"send_queue,omitempty"`
	SlowConsumer        *string  `json:"slow_consumer,omitempty"`
	WriteTimeoutMS      *int     `json:"write_timeout_ms,omitempty"`
	HeartbeatTimeoutMS  *int     `json:"heartbeat_timeout_ms,omitempty"`
}

// Apply overlays the set fields onto base and returns the result.
func (pl *PhaseLimits) Apply(base gateway.Limits) gateway.Limits {
	if pl == nil {
		return base
	}
	if pl.MaxSessions != nil {
		base.MaxSessions = *pl.MaxSessions
	}
	if pl.IdentifyRPS != nil {
		base.IdentifyRPS = *pl.IdentifyRPS
	}
	if pl.IdentifyBurst != nil {
		base.IdentifyBurst = *pl.IdentifyBurst
	}
	if pl.TenantRPS != nil {
		base.TenantRPS = *pl.TenantRPS
	}
	if pl.TenantBurst != nil {
		base.TenantBurst = *pl.TenantBurst
	}
	if pl.TenantIdentifyRPS != nil {
		base.TenantIdentifyRPS = *pl.TenantIdentifyRPS
	}
	if pl.TenantIdentifyBurst != nil {
		base.TenantIdentifyBurst = *pl.TenantIdentifyBurst
	}
	if pl.SendQueue != nil {
		base.SendQueue = *pl.SendQueue
	}
	if pl.SlowConsumer != nil {
		pol, _ := gateway.ParseSlowConsumerPolicy(*pl.SlowConsumer)
		base.SlowConsumer = pol
	}
	if pl.WriteTimeoutMS != nil {
		base.WriteTimeout = time.Duration(*pl.WriteTimeoutMS) * time.Millisecond
	}
	if pl.HeartbeatTimeoutMS != nil {
		base.HeartbeatTimeout = time.Duration(*pl.HeartbeatTimeoutMS) * time.Millisecond
	}
	return base
}

// DecodeSchedule strictly decodes and validates a schedule: unknown
// JSON fields, empty or duplicate phase names, non-positive durations,
// unknown fault profiles, overlapping phases, bad slow-consumer
// policies, and non-positive kill counts are all rejected with errors
// naming the offending phase — matching the journal/checkpoint
// precedent that config corruption fails loudly, not lazily.
func DecodeSchedule(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("soak: schedule: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseSchedule decodes a schedule from bytes.
func ParseSchedule(data []byte) (*Schedule, error) {
	return DecodeSchedule(bytes.NewReader(data))
}

func (s *Schedule) validate() error {
	if s.Name == "" {
		return fmt.Errorf("soak: schedule: missing name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("soak: schedule %q: no phases", s.Name)
	}
	seen := make(map[string]bool, len(s.Phases))
	cursor := 0
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Name == "" {
			return fmt.Errorf("soak: schedule %q: phase %d: missing name", s.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("soak: schedule %q: duplicate phase name %q", s.Name, p.Name)
		}
		seen[p.Name] = true
		if p.DurationMS <= 0 {
			return fmt.Errorf("soak: schedule %q: phase %q: duration_ms must be positive (got %d)", s.Name, p.Name, p.DurationMS)
		}
		p.startMS = cursor
		if p.AtMS != nil {
			if *p.AtMS < cursor {
				return fmt.Errorf("soak: schedule %q: phase %q: at_ms %d overlaps previous phase (ends at %d)", s.Name, p.Name, *p.AtMS, cursor)
			}
			p.startMS = *p.AtMS
		}
		cursor = p.startMS + p.DurationMS
		if p.FaultProfile != "" {
			if _, err := faults.Named(p.FaultProfile); err != nil {
				return fmt.Errorf("soak: schedule %q: phase %q: %w", s.Name, p.Name, err)
			}
		}
		if p.StallClients < 0 {
			return fmt.Errorf("soak: schedule %q: phase %q: stall_clients must be >= 0 (got %d)", s.Name, p.Name, p.StallClients)
		}
		if p.Kill != nil && p.Kill.AfterCheckpoints < 1 {
			return fmt.Errorf("soak: schedule %q: phase %q: kill.after_checkpoints must be >= 1 (got %d)", s.Name, p.Name, p.Kill.AfterCheckpoints)
		}
		if l := p.Limits; l != nil {
			if l.SlowConsumer != nil {
				if _, err := gateway.ParseSlowConsumerPolicy(*l.SlowConsumer); err != nil {
					return fmt.Errorf("soak: schedule %q: phase %q: %w", s.Name, p.Name, err)
				}
			}
			if l.SendQueue != nil && *l.SendQueue <= 0 {
				return fmt.Errorf("soak: schedule %q: phase %q: limits.send_queue must be positive (got %d)", s.Name, p.Name, *l.SendQueue)
			}
			if l.WriteTimeoutMS != nil && *l.WriteTimeoutMS <= 0 {
				return fmt.Errorf("soak: schedule %q: phase %q: limits.write_timeout_ms must be positive (got %d)", s.Name, p.Name, *l.WriteTimeoutMS)
			}
			for what, v := range map[string]*float64{
				"identify_rps":        l.IdentifyRPS,
				"tenant_rps":          l.TenantRPS,
				"tenant_identify_rps": l.TenantIdentifyRPS,
			} {
				if v != nil && *v < 0 {
					return fmt.Errorf("soak: schedule %q: phase %q: limits.%s must be >= 0 (got %g)", s.Name, p.Name, what, *v)
				}
			}
		}
	}
	return nil
}

// TotalMS is the schedule's wall-clock length: the end of its last
// phase.
func (s *Schedule) TotalMS() int {
	if len(s.Phases) == 0 {
		return 0
	}
	last := &s.Phases[len(s.Phases)-1]
	return last.EndMS()
}

// Kills counts the phases that order a crash.
func (s *Schedule) Kills() int {
	n := 0
	for i := range s.Phases {
		if s.Phases[i].Kill != nil {
			n++
		}
	}
	return n
}

//go:embed schedules/smoke.json
var smokeJSON []byte

//go:embed schedules/full.json
var fullJSON []byte

// Smoke returns the bundled ~30-second CI schedule: baseline →
// squeeze (moderate faults + tight limits + stalled listeners) →
// kill-and-resume → calm recovery.
func Smoke() *Schedule {
	s, err := ParseSchedule(smokeJSON)
	if err != nil {
		panic("soak: embedded smoke schedule invalid: " + err.Error())
	}
	return s
}

// Full returns the bundled full schedule behind BENCH_SOAK.json: the
// smoke arc stretched out, with a storm phase and a second kill.
func Full() *Schedule {
	s, err := ParseSchedule(fullJSON)
	if err != nil {
		panic("soak: embedded full schedule invalid: " + err.Error())
	}
	return s
}
