package soak

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/permissions"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/soak/invariant"
)

// Options shapes one soak run. The zero value plus a Schedule and a
// Dir is a valid smoke-scale configuration.
type Options struct {
	// Schedule is the phased chaos plan (required).
	Schedule *Schedule
	// Dir receives every artifact: journal.jsonl (+ .anchor),
	// checkpoints/, soak.json (required).
	Dir string

	// Pipeline shape.
	Seed            int64         // ecosystem seed (default 42)
	NumBots         int           // listing population (default 600)
	Sample          int           // honeypot sample (default 80)
	Shards          int           // sharded executor width (default 4)
	Settle          time.Duration // per-experiment watch window (default 400ms)
	CheckpointEvery int           // settled bots between snapshots (default 5)

	// Background traffic shape.
	Sessions      int     // loadgen bot sessions (default 32)
	Guilds        int     // loadgen guilds (default 4)
	UsersPerGuild int     // chatting users per guild (default 8)
	Tenants       int     // distinct loadgen bot owners (default 4)
	MsgRate       float64 // user messages/sec per guild (default 30)

	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.NumBots <= 0 {
		o.NumBots = 600
	}
	if o.Sample <= 0 {
		o.Sample = 80
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Settle <= 0 {
		o.Settle = 400 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
	if o.Sessions <= 0 {
		o.Sessions = 32
	}
	if o.Guilds <= 0 {
		o.Guilds = 4
	}
	if o.UsersPerGuild <= 0 {
		o.UsersPerGuild = 8
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.MsgRate <= 0 {
		o.MsgRate = 30
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// PhaseOutcome records what one schedule phase actually did.
type PhaseOutcome struct {
	Name         string `json:"name"`
	StartMS      int    `json:"start_ms"`
	DurationMS   int    `json:"duration_ms"`
	FaultProfile string `json:"fault_profile,omitempty"`
	StallClients int    `json:"stall_clients,omitempty"`
	KillArmed    bool   `json:"kill_armed,omitempty"`
	KillFired    bool   `json:"kill_fired,omitempty"`
}

// Outcome is one soak run's verdict, JSON-shaped for BENCH_SOAK.json.
type Outcome struct {
	Schedule   string  `json:"schedule"`
	DurationMS float64 `json:"duration_ms"`
	RunID      string  `json:"run_id"`

	Segments   int `json:"ledger_segments"`
	KillsArmed int `json:"kills_armed"`
	KillsFired int `json:"kills_fired"`

	Bots                int `json:"bots"`
	Records             int `json:"records"`
	Quarantined         int `json:"quarantined"`
	HoneypotTested      int `json:"honeypot_tested"`
	HoneypotQuarantined int `json:"honeypot_quarantined"`

	Phases  []PhaseOutcome  `json:"phases"`
	Loadgen *loadgen.Result `json:"loadgen,omitempty"`

	Invariants invariant.Report `json:"invariants"`
}

// OK reports whether every invariant reconciled.
func (o *Outcome) OK() bool { return o.Invariants.OK }

// ReportData converts the outcome into the report package's
// renderer-facing shape for report.SoakVerdict.
func (o *Outcome) ReportData() *report.SoakData {
	d := &report.SoakData{
		Schedule:            o.Schedule,
		DurationMS:          o.DurationMS,
		RunID:               o.RunID,
		Segments:            o.Segments,
		KillsArmed:          o.KillsArmed,
		KillsFired:          o.KillsFired,
		Bots:                o.Bots,
		Records:             o.Records,
		Quarantined:         o.Quarantined,
		HoneypotTested:      o.HoneypotTested,
		HoneypotQuarantined: o.HoneypotQuarantined,
		Loadgen:             o.Loadgen,
		OK:                  o.Invariants.OK,
		FirstViolation:      o.Invariants.First,
	}
	for _, p := range o.Phases {
		d.Phases = append(d.Phases, report.SoakPhase{
			Name: p.Name, StartMS: p.StartMS, DurationMS: p.DurationMS,
			FaultProfile: p.FaultProfile, StallClients: p.StallClients,
			KillArmed: p.KillArmed, KillFired: p.KillFired,
		})
	}
	for _, c := range o.Invariants.Checks {
		d.Invariants = append(d.Invariants, report.SoakInvariant{
			Name: c.Name, Artifact: c.Artifact, Detail: c.Detail, OK: c.OK,
		})
	}
	return d
}

var ledgerOpts = journal.LedgerOptions{Mode: journal.LedgerMerkle, Batch: 16}

// conductor owns the soak's shared machinery: the long-lived auditor
// (its services survive kills; only the pipeline run "crashes"), the
// crash trigger, and the stall-client world.
type conductor struct {
	opts  Options
	a     *core.Auditor
	reg   *obs.Registry
	st    *checkpoint.Store
	jpath string

	// abort is the currently armed kill; the checkpoint store's
	// AfterSave hook ticks it on every snapshot, and firing cancels the
	// pipeline's current segment context via segCancel.
	abort     atomic.Pointer[faults.AbortInjector]
	segCancel atomic.Value // context.CancelFunc

	stallTokens []string
	chatUser    platform.ID
	chatChannel platform.ID
	stallWG     sync.WaitGroup
}

func (c *conductor) fire() {
	if f, ok := c.segCancel.Load().(context.CancelFunc); ok && f != nil {
		f()
	}
}

type pipeOut struct {
	res      *core.Results
	err      error
	jnl      *journal.Journal // the live (last-opened) journal segment
	segments int
	kills    int
	// resumes captures, per kill, the settled sets of the snapshot the
	// next segment resumed from — the invariant checker's ground truth
	// for the zero-re-execution check.
	resumes []invariant.SegmentBaseline
}

// baseline extracts a snapshot's settled sets.
func baseline(snap *checkpoint.Snapshot) invariant.SegmentBaseline {
	var bl invariant.SegmentBaseline
	for _, r := range snap.Records {
		bl.SettledCollect = append(bl.SettledCollect, r.ID)
	}
	for _, q := range snap.CollectQuarantine {
		bl.SettledCollect = append(bl.SettledCollect, q.BotID)
	}
	for _, v := range snap.Verdicts {
		bl.SettledHoneypot = append(bl.SettledHoneypot, v.Subject.ListingID)
	}
	for _, q := range snap.HoneypotQuarantine {
		bl.SettledHoneypot = append(bl.SettledHoneypot, q.BotID)
	}
	return bl
}

// runPipeline drives RunAllContext through kill/resume segments until
// the run converges: an armed abort cancels the segment at a
// checkpoint boundary, the journal is sealed and reopened in resume
// mode (re-anchoring the hash chain on the sealed head), and the same
// auditor resumes from the latest snapshot — services stay up
// throughout, exactly like a supervisor restarting a crashed worker.
func (c *conductor) runPipeline(ctx context.Context, jnl *journal.Journal) pipeOut {
	segments, kills := 1, 0
	var resumes []invariant.SegmentBaseline
	for {
		segCtx, cancel := context.WithCancel(ctx)
		c.segCancel.Store(context.CancelFunc(cancel))
		res, err := c.a.RunAllContext(segCtx)
		cancel()
		ab := c.abort.Swap(nil)
		killed := err != nil && errors.Is(err, context.Canceled) &&
			ab != nil && ab.Fired() && ctx.Err() == nil
		if !killed {
			return pipeOut{res: res, err: err, jnl: jnl, segments: segments, kills: kills, resumes: resumes}
		}
		kills++
		snap, serr := c.st.Latest()
		if serr != nil {
			return pipeOut{err: fmt.Errorf("soak: read resume baseline after kill: %w", serr), jnl: jnl, segments: segments, kills: kills}
		}
		resumes = append(resumes, baseline(snap))
		c.opts.Logf("soak: kill %d fired mid-run; sealing journal and resuming from latest checkpoint", kills)
		if cerr := jnl.Close(); cerr != nil {
			return pipeOut{err: fmt.Errorf("soak: seal journal after kill: %w", cerr), jnl: jnl, segments: segments, kills: kills}
		}
		nj, jerr := journal.Open(c.jpath, journal.Options{Obs: c.reg, Resume: true, Ledger: ledgerOpts})
		if jerr != nil {
			return pipeOut{err: fmt.Errorf("soak: reopen journal after kill: %w", jerr), segments: segments, kills: kills}
		}
		jnl = nj
		c.a.SetJournal(nj)
		c.a.SetResume(core.ResumeLatest)
		segments++
	}
}

// setupStallWorld registers the conductor's own guild of stall-fodder
// bots plus a chatter stream, so phase-scoped stalled listeners have
// traffic filling their send queues (exercising the slow-consumer
// policy) without polluting loadgen's delivery expectation.
func (c *conductor) setupStallWorld(ctx context.Context, maxStall int) error {
	p := c.a.Platform()
	owner := p.CreateUser("soak-chaos-owner")
	g, err := p.CreateGuild(owner.ID, "soak-chaos", false)
	if err != nil {
		return fmt.Errorf("soak: create chaos guild: %w", err)
	}
	var general platform.ID
	for _, ch := range g.Channels {
		general = ch.ID
	}
	perms := permissions.ViewChannel | permissions.SendMessages | permissions.ReadMessageHistory
	for i := 0; i < maxStall; i++ {
		bot, err := p.RegisterBot(owner.ID, fmt.Sprintf("soak-stall-%d", i))
		if err != nil {
			return fmt.Errorf("soak: register stall bot: %w", err)
		}
		if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, perms); err != nil {
			return fmt.Errorf("soak: install stall bot: %w", err)
		}
		c.stallTokens = append(c.stallTokens, bot.Token)
	}
	c.chatUser, c.chatChannel = owner.ID, general
	go func() {
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		n := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				n++
				p.SendMessage(c.chatUser, c.chatChannel, fmt.Sprintf("soak chatter %d", n))
			}
		}
	}()
	return nil
}

// Run executes one soak: the full pipeline and the load generator
// share one live gateway while the schedule's phases ramp chaos, then
// the invariant checker reconciles every artifact. The returned
// Outcome carries the verdict; err is reserved for the soak itself
// failing to execute (an invariant violation is a non-OK Outcome, not
// an error).
func Run(ctx context.Context, o Options) (*Outcome, error) {
	o = o.withDefaults()
	if o.Schedule == nil {
		return nil, errors.New("soak: Options.Schedule is required")
	}
	if o.Dir == "" {
		return nil, errors.New("soak: Options.Dir is required")
	}
	sched := o.Schedule
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}

	reg := obs.NewRegistry()
	jpath := filepath.Join(o.Dir, "journal.jsonl")
	st, err := checkpoint.NewStore(filepath.Join(o.Dir, "checkpoints"))
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	jnl, err := journal.Open(jpath, journal.Options{Obs: reg, Ledger: ledgerOpts})
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}

	a, err := core.NewAuditor(core.Options{
		Seed:    o.Seed,
		NumBots: o.NumBots,
		Honeypot: core.HoneypotOptions{
			Sample: o.Sample,
			Settle: o.Settle,
		},
		Exec:       core.ExecOptions{Shards: o.Shards},
		Faults:     core.FaultOptions{Profile: "none", Seed: o.Seed},
		Checkpoint: core.CheckpointOptions{Store: st, Every: o.CheckpointEvery},
		Obs:        reg,
		Journal:    jnl,
	})
	if err != nil {
		jnl.Close()
		return nil, fmt.Errorf("soak: %w", err)
	}
	defer a.Close()

	c := &conductor{opts: o, a: a, reg: reg, st: st, jpath: jpath}
	st.AfterSave = func(*checkpoint.Snapshot) { c.abort.Load().Tick() }
	defer func() { st.AfterSave = nil }()

	maxStall := 0
	for i := range sched.Phases {
		if s := sched.Phases[i].StallClients; s > maxStall {
			maxStall = s
		}
	}
	soakCtx, stopSoak := context.WithCancel(ctx)
	defer stopSoak()
	if maxStall > 0 {
		if err := c.setupStallWorld(soakCtx, maxStall); err != nil {
			jnl.Close()
			return nil, err
		}
	}

	total := time.Duration(sched.TotalMS()) * time.Millisecond
	start := time.Now()

	// Background traffic: loadgen personas drive the same gateway the
	// pipeline audits through, for the schedule's full wall clock.
	lgCh := make(chan *loadgen.Result, 1)
	lgErrCh := make(chan error, 1)
	go func() {
		res, err := loadgen.Run(soakCtx, loadgen.Config{
			Guilds:        o.Guilds,
			UsersPerGuild: o.UsersPerGuild,
			Sessions:      o.Sessions,
			Tenants:       o.Tenants,
			Duration:      total,
			MsgRate:       o.MsgRate,
			Target:        &loadgen.Target{Platform: a.Platform(), Addr: a.Gateway().Addr()},
			Seed:          o.Seed + 1,
			Obs:           reg,
			Logf:          o.Logf,
		})
		if err != nil {
			lgErrCh <- err
			return
		}
		lgCh <- res
	}()

	// The pipeline, crashing and resuming as the schedule orders.
	pipeCh := make(chan pipeOut, 1)
	go func() { pipeCh <- c.runPipeline(soakCtx, jnl) }()

	// The phase runner: wall-clock application of each phase's
	// conditions, with a cheap counter-consistency probe at every
	// boundary.
	phases := make([]PhaseOutcome, 0, len(sched.Phases))
	armed := make(map[int]*faults.AbortInjector)
	var probeErrs []string
	limits := a.Gateway().Limits()
	killsArmed := 0
	for i := range sched.Phases {
		p := &sched.Phases[i]
		if err := sleepUntil(ctx, start.Add(time.Duration(p.StartMS())*time.Millisecond)); err != nil {
			return nil, err
		}
		o.Logf("soak: phase %q (t+%dms for %dms): profile=%q stalls=%d kill=%v",
			p.Name, p.StartMS(), p.DurationMS, p.FaultProfile, p.StallClients, p.Kill != nil)
		po := PhaseOutcome{
			Name: p.Name, StartMS: p.StartMS(), DurationMS: p.DurationMS,
			FaultProfile: p.FaultProfile, StallClients: p.StallClients,
		}
		if p.FaultProfile != "" {
			prof, perr := faults.Named(p.FaultProfile)
			if perr != nil {
				return nil, perr // unreachable: validated at decode
			}
			a.Faults().SetProfile(prof)
		}
		if p.Limits != nil {
			limits = p.Limits.Apply(limits)
			a.Gateway().SetLimits(limits)
		}
		var stallStop context.CancelFunc
		if p.StallClients > 0 {
			sctx, scancel := context.WithCancel(soakCtx)
			stallStop = scancel
			addr := a.Gateway().Addr()
			for s := 0; s < p.StallClients && s < len(c.stallTokens); s++ {
				tok := c.stallTokens[s]
				c.stallWG.Add(1)
				go func() {
					defer c.stallWG.Done()
					loadgen.Stall(sctx, addr, tok)
				}()
			}
		}
		if p.Kill != nil {
			killsArmed++
			po.KillArmed = true
			ab := faults.NewAbort(p.Kill.AfterCheckpoints, c.fire)
			armed[i] = ab
			c.abort.Store(ab)
		}
		err := sleepUntil(ctx, start.Add(time.Duration(p.EndMS())*time.Millisecond))
		if stallStop != nil {
			stallStop()
		}
		if err != nil {
			return nil, err
		}
		if perr := invariant.Probe(reg); perr != nil {
			probeErrs = append(probeErrs, fmt.Sprintf("after phase %q: %v", p.Name, perr))
		}
		phases = append(phases, po)
	}

	// Schedule exhausted: calm the substrate and let the pipeline
	// converge (bounded — a wedged pipeline is a soak failure, not a
	// hang).
	if prof, perr := faults.Named("none"); perr == nil {
		a.Faults().SetProfile(prof)
	}
	var pipe pipeOut
	select {
	case pipe = <-pipeCh:
	case err := <-lgErrCh:
		return nil, fmt.Errorf("soak: loadgen: %w", err)
	case <-time.After(total + 3*time.Minute):
		return nil, fmt.Errorf("soak: pipeline did not converge within %s past schedule end", 3*time.Minute)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if pipe.err != nil {
		return nil, fmt.Errorf("soak: pipeline: %w", pipe.err)
	}
	var lg *loadgen.Result
	select {
	case lg = <-lgCh:
	case err := <-lgErrCh:
		return nil, fmt.Errorf("soak: loadgen: %w", err)
	case <-time.After(2 * time.Minute):
		return nil, errors.New("soak: loadgen did not finish after schedule end")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	stopSoak()
	c.stallWG.Wait()
	st.AfterSave = nil

	// Quiesce every emitter, then seal: the anchor side file commits
	// the final segment's head.
	a.Close()
	if err := pipe.jnl.Close(); err != nil {
		return nil, fmt.Errorf("soak: seal journal: %w", err)
	}

	for i := range phases {
		if ab := armed[i]; ab != nil {
			phases[i].KillFired = ab.Fired()
		}
	}

	out := &Outcome{
		Schedule:   sched.Name,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		RunID:      pipe.res.RunID,
		Segments:   pipe.segments,
		KillsArmed: killsArmed,
		KillsFired: pipe.kills,
		Bots:       o.NumBots,
		Records:    len(pipe.res.Records),
		Phases:     phases,
		Loadgen:    lg,
	}

	in := invariant.Inputs{
		ScheduleName:     sched.Name,
		RunID:            pipe.res.RunID,
		JournalFile:      "journal.jsonl",
		CheckpointDir:    "checkpoints",
		ExpectedSegments: pipe.kills + 1,
		Resumes:          pipe.resumes,
		Counters:         reg.Snapshot().Counters,
		Loadgen:          lg,
	}
	for _, b := range a.Ecosystem().Bots {
		in.Listed = append(in.Listed, b.ID)
	}
	for _, r := range pipe.res.Records {
		in.RecordBots = append(in.RecordBots, r.ID)
	}
	for _, q := range pipe.res.Quarantined {
		switch q.Stage {
		case "collect":
			in.CollectQuarantined = append(in.CollectQuarantined, q.BotID)
		case "honeypot":
			in.HoneypotQuarantined = append(in.HoneypotQuarantined, q.BotID)
			out.HoneypotQuarantined++
		}
	}
	out.Quarantined = len(pipe.res.Quarantined)
	if serr := pipe.res.StageErrors["collect"]; serr != nil {
		in.CollectStageError = serr.Error()
	}
	if serr := pipe.res.StageErrors["honeypot"]; serr != nil {
		in.HoneypotStageError = serr.Error()
	}
	in.HoneypotSampleTarget = o.Sample
	if o.NumBots < o.Sample {
		in.HoneypotSampleTarget = o.NumBots
	}
	if hp := pipe.res.Honeypot; hp != nil {
		out.HoneypotTested = hp.Tested
		for _, v := range hp.Verdicts {
			in.VerdictBots = append(in.VerdictBots, v.Subject.ListingID)
		}
	}

	if err := invariant.WriteInputs(o.Dir, in); err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	out.Invariants = invariant.Evaluate(o.Dir, in)
	// Mid-run probe failures are violations too, even if the post-hoc
	// artifacts reconcile.
	for _, pe := range probeErrs {
		out.Invariants.Checks = append(out.Invariants.Checks, invariant.Check{
			Name: "mid-run-probe", Artifact: "live counters", Detail: pe,
		})
		if out.Invariants.First == "" {
			out.Invariants.First = "invariant mid-run-probe violated: artifact live counters: " + pe
		}
		out.Invariants.OK = false
	}
	return out, nil
}

func sleepUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
