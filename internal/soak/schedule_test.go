package soak

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gateway"
)

func TestBundledSchedulesValid(t *testing.T) {
	for _, s := range []*Schedule{Smoke(), Full()} {
		if s.TotalMS() <= 0 {
			t.Errorf("schedule %q has non-positive total duration", s.Name)
		}
		if s.Kills() == 0 {
			t.Errorf("schedule %q orders no kills; the soak's crash/resume path would go unexercised", s.Name)
		}
	}
	if Smoke().TotalMS() > 45_000 {
		t.Errorf("smoke schedule is %dms long; it rides in tier-1 CI and should stay near 30s", Smoke().TotalMS())
	}
}

func TestDecodeScheduleResolvesPhaseClock(t *testing.T) {
	s, err := ParseSchedule([]byte(`{
		"name": "clock",
		"phases": [
			{"name": "a", "duration_ms": 1000},
			{"name": "b", "duration_ms": 2000},
			{"name": "c", "at_ms": 5000, "duration_ms": 500}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	wantStarts := []int{0, 1000, 5000}
	for i, want := range wantStarts {
		if got := s.Phases[i].StartMS(); got != want {
			t.Errorf("phase %d start = %d, want %d", i, got, want)
		}
	}
	if got := s.TotalMS(); got != 5500 {
		t.Errorf("TotalMS = %d, want 5500 (gap before c extends b's conditions)", got)
	}
}

func TestDecodeScheduleRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"missing schedule name", `{"phases":[{"name":"a","duration_ms":1}]}`, "missing name"},
		{"no phases", `{"name":"x","phases":[]}`, "no phases"},
		{"missing phase name", `{"name":"x","phases":[{"duration_ms":1}]}`, "missing name"},
		{"duplicate phase name", `{"name":"x","phases":[{"name":"a","duration_ms":1},{"name":"a","duration_ms":1}]}`, "duplicate phase name"},
		{"zero duration", `{"name":"x","phases":[{"name":"a","duration_ms":0}]}`, "duration_ms must be positive"},
		{"negative duration", `{"name":"x","phases":[{"name":"a","duration_ms":-5}]}`, "duration_ms must be positive"},
		{"overlapping at_ms", `{"name":"x","phases":[{"name":"a","duration_ms":2000},{"name":"b","at_ms":1500,"duration_ms":1}]}`, "overlaps previous phase"},
		{"unknown fault profile", `{"name":"x","phases":[{"name":"a","duration_ms":1,"fault_profile":"tsunami"}]}`, "tsunami"},
		{"negative stall clients", `{"name":"x","phases":[{"name":"a","duration_ms":1,"stall_clients":-1}]}`, "stall_clients"},
		{"zero kill count", `{"name":"x","phases":[{"name":"a","duration_ms":1,"kill":{"after_checkpoints":0}}]}`, "after_checkpoints"},
		{"bad slow consumer policy", `{"name":"x","phases":[{"name":"a","duration_ms":1,"limits":{"slow_consumer":"explode"}}]}`, "explode"},
		{"zero send queue", `{"name":"x","phases":[{"name":"a","duration_ms":1,"limits":{"send_queue":0}}]}`, "send_queue"},
		{"negative identify rps", `{"name":"x","phases":[{"name":"a","duration_ms":1,"limits":{"identify_rps":-1}}]}`, "identify_rps"},
		{"unknown top-level field", `{"name":"x","surprise":1,"phases":[{"name":"a","duration_ms":1}]}`, "surprise"},
		{"unknown phase field", `{"name":"x","phases":[{"name":"a","duration_ms":1,"chaos_level":11}]}`, "chaos_level"},
		{"unknown limits field", `{"name":"x","phases":[{"name":"a","duration_ms":1,"limits":{"warp_factor":9}}]}`, "warp_factor"},
		{"not json", `phases: [a]`, "schedule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchedule([]byte(tc.json))
			if err == nil {
				t.Fatalf("decoded invalid schedule without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPhaseLimitsApplyOverlaysOnlySetFields(t *testing.T) {
	base := gateway.Limits{
		MaxSessions: 100, IdentifyRPS: 50, IdentifyBurst: 10,
		SendQueue: 128, WriteTimeout: time.Second,
	}
	ms, rps := 7, 2.5
	policy := "drop-oldest"
	got := (&PhaseLimits{MaxSessions: &ms, TenantIdentifyRPS: &rps, SlowConsumer: &policy}).Apply(base)
	if got.MaxSessions != 7 || got.TenantIdentifyRPS != 2.5 {
		t.Errorf("set fields not applied: %+v", got)
	}
	if got.SlowConsumer != gateway.SlowDropOldest {
		t.Errorf("slow consumer = %v, want drop-oldest", got.SlowConsumer)
	}
	if got.IdentifyRPS != 50 || got.SendQueue != 128 || got.WriteTimeout != time.Second {
		t.Errorf("unset fields overwritten: %+v", got)
	}
	if nilApplied := (*PhaseLimits)(nil).Apply(base); nilApplied != base {
		t.Errorf("nil overlay changed limits: %+v", nilApplied)
	}
}

// FuzzScheduleDecode asserts the decoder never panics and that any
// schedule it accepts is internally consistent: monotone non-overlapping
// phases, positive durations, and resolvable fault profiles.
func FuzzScheduleDecode(f *testing.F) {
	f.Add([]byte(`{"name":"s","phases":[{"name":"a","duration_ms":100}]}`))
	f.Add([]byte(`{"name":"s","phases":[{"name":"a","duration_ms":100,"kill":{"after_checkpoints":2}}]}`))
	f.Add([]byte(`{"name":"s","phases":[{"name":"a","at_ms":50,"duration_ms":100,"fault_profile":"storm","limits":{"max_sessions":5}}]}`))
	f.Add(smokeJSON)
	f.Add(fullJSON)
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSchedule(data)
		if err != nil {
			return
		}
		if s.Name == "" || len(s.Phases) == 0 {
			t.Fatalf("accepted schedule without name or phases: %+v", s)
		}
		cursor := 0
		for i := range s.Phases {
			p := &s.Phases[i]
			if p.DurationMS <= 0 {
				t.Fatalf("accepted non-positive duration in phase %q", p.Name)
			}
			if p.StartMS() < cursor {
				t.Fatalf("accepted overlapping phase %q (start %d < cursor %d)", p.Name, p.StartMS(), cursor)
			}
			cursor = p.EndMS()
			if p.Kill != nil && p.Kill.AfterCheckpoints < 1 {
				t.Fatalf("accepted kill with %d checkpoints", p.Kill.AfterCheckpoints)
			}
		}
		if s.TotalMS() != cursor {
			t.Fatalf("TotalMS = %d, want %d", s.TotalMS(), cursor)
		}
	})
}
