// Package invariant cross-reconciles a soak run's artifacts after the
// fact: the pipeline results, the event journal, the tamper-evident
// ledger and its external anchor, the checkpoint store, the obs
// counters, and the load generator's delivery accounting must all tell
// the same story. Each invariant is a named check over serialized
// inputs (soak.json in the artifact directory), so the same verdict can
// be recomputed post-hoc from the directory alone — and a deliberately
// corrupted artifact fails with the violated invariant named.
package invariant

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// InputsSchema versions the serialized soak.json.
const InputsSchema = 1

// Inputs is everything the checker needs, serializable so the verdict
// is recomputable from the artifact directory alone. File references
// (JournalFile, CheckpointDir) are relative to that directory.
type Inputs struct {
	Schema       int    `json:"soak_schema"`
	ScheduleName string `json:"schedule"`
	RunID        string `json:"run_id"`

	JournalFile   string `json:"journal_file"`
	CheckpointDir string `json:"checkpoint_dir"`

	// ExpectedSegments is kills fired + 1: every crash/resume boundary
	// must appear in the ledger as exactly one anchor record.
	ExpectedSegments int `json:"expected_segments"`

	// Pipeline outcome.
	Listed               []int  `json:"listed_bots"`
	RecordBots           []int  `json:"record_bots"`
	CollectQuarantined   []int  `json:"collect_quarantined"`
	CollectStageError    string `json:"collect_stage_error,omitempty"`
	HoneypotSampleTarget int    `json:"honeypot_sample_target"`
	VerdictBots          []int  `json:"verdict_bots"`
	HoneypotQuarantined  []int  `json:"honeypot_quarantined"`
	HoneypotStageError   string `json:"honeypot_stage_error,omitempty"`

	// Resumes holds, per kill, the settled sets of the snapshot the run
	// resumed from — captured by the conductor at the crash boundary,
	// the ground truth the zero-re-execution check replays the journal
	// against.
	Resumes []SegmentBaseline `json:"resumes,omitempty"`

	// Counters is the shared obs registry's final counter snapshot.
	Counters map[string]int64 `json:"counters"`

	// Loadgen is the load generator's own accounting for the same run.
	Loadgen *loadgen.Result `json:"loadgen,omitempty"`
}

// SegmentBaseline is the settled work a resumed segment inherited from
// its checkpoint: bot IDs whose collect (and honeypot) stages were
// already durable when the segment started. The resumed segment must
// skip all of them.
type SegmentBaseline struct {
	SettledCollect  []int `json:"settled_collect"`
	SettledHoneypot []int `json:"settled_honeypot"`
}

// Check is one invariant's verdict. Artifact names the first
// inconsistent artifact when the invariant is violated.
type Check struct {
	Name     string `json:"name"`
	Artifact string `json:"artifact"`
	OK       bool   `json:"ok"`
	Detail   string `json:"detail"`
}

// Report is the ordered outcome of every invariant.
type Report struct {
	Checks []Check `json:"checks"`
	OK     bool    `json:"ok"`
	// First is the first violated invariant's "name: artifact: detail",
	// empty when everything reconciles.
	First string `json:"first_violation,omitempty"`
}

func (r *Report) add(c Check) {
	r.Checks = append(r.Checks, c)
	if !c.OK && r.First == "" {
		r.First = fmt.Sprintf("invariant %s violated: artifact %s: %s", c.Name, c.Artifact, c.Detail)
	}
}

// WriteInputs serializes the inputs as soak.json in dir.
func WriteInputs(dir string, in Inputs) error {
	in.Schema = InputsSchema
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "soak.json"), append(data, '\n'), 0o644)
}

// CheckDir re-runs every invariant from an artifact directory written
// by a prior soak (soak.json + journal + checkpoints).
func CheckDir(dir string) (Report, error) {
	data, err := os.ReadFile(filepath.Join(dir, "soak.json"))
	if err != nil {
		return Report{}, fmt.Errorf("invariant: %w", err)
	}
	var in Inputs
	if err := json.Unmarshal(data, &in); err != nil {
		return Report{}, fmt.Errorf("invariant: soak.json: %w", err)
	}
	if in.Schema > InputsSchema {
		return Report{}, fmt.Errorf("invariant: soak.json schema %d is newer than supported %d", in.Schema, InputsSchema)
	}
	return Evaluate(dir, in), nil
}

// Evaluate runs every invariant over the inputs. dir anchors the
// relative artifact references.
func Evaluate(dir string, in Inputs) Report {
	var r Report
	r.add(checkTerminalState(in))

	jpath := filepath.Join(dir, in.JournalFile)
	events, decodeOK := loadJournal(&r, jpath, in)
	r.add(checkLedger(jpath, in))
	if decodeOK {
		r.add(checkJournalCounters(events, in))
		r.add(checkResumeConvergence(dir, events, in))
	}
	r.add(checkDelivery(events, decodeOK, in))

	r.OK = r.First == ""
	return r
}

// checkTerminalState: every discovered bot reaches a terminal state —
// a record or a quarantine entry, never silently lost — and every
// sampled honeypot experiment ends in a verdict or a quarantine.
func checkTerminalState(in Inputs) Check {
	c := Check{Name: "terminal-state", Artifact: "pipeline results", OK: true}
	settled := make(map[int]bool, len(in.RecordBots)+len(in.CollectQuarantined))
	for _, id := range in.RecordBots {
		settled[id] = true
	}
	for _, id := range in.CollectQuarantined {
		settled[id] = true
	}
	var lost []int
	for _, id := range in.Listed {
		if !settled[id] {
			lost = append(lost, id)
		}
	}
	if len(lost) > 0 && in.CollectStageError == "" {
		sort.Ints(lost)
		c.OK = false
		c.Detail = fmt.Sprintf("%d of %d listed bots reached no terminal state (neither record nor quarantine) with no collect stage error recorded; first lost bot %d",
			len(lost), len(in.Listed), lost[0])
		return c
	}
	hp := len(in.VerdictBots) + len(in.HoneypotQuarantined)
	if hp != in.HoneypotSampleTarget && in.HoneypotStageError == "" {
		c.OK = false
		c.Detail = fmt.Sprintf("honeypot settled %d experiments (%d verdicts + %d quarantined) but sampled %d, with no stage error recorded",
			hp, len(in.VerdictBots), len(in.HoneypotQuarantined), in.HoneypotSampleTarget)
		return c
	}
	c.Detail = fmt.Sprintf("%d listed → %d records + %d quarantined; honeypot %d/%d settled",
		len(in.Listed), len(in.RecordBots), len(in.CollectQuarantined), hp, in.HoneypotSampleTarget)
	return c
}

// loadJournal decodes the journal once for the event-level checks,
// registering a violation when the file is unreadable.
func loadJournal(r *Report, jpath string, in Inputs) ([]journal.Event, bool) {
	f, err := os.Open(jpath)
	if err != nil {
		r.add(Check{Name: "journal-readable", Artifact: in.JournalFile,
			Detail: fmt.Sprintf("journal unreadable: %v", err)})
		return nil, false
	}
	defer f.Close()
	events, skipped, err := journal.Decode(f)
	if err != nil {
		r.add(Check{Name: "journal-readable", Artifact: in.JournalFile,
			Detail: fmt.Sprintf("journal decode: %v", err)})
		return nil, false
	}
	c := Check{Name: "journal-readable", Artifact: in.JournalFile, OK: true,
		Detail: fmt.Sprintf("%d events decoded", len(events))}
	if skipped > 0 {
		// Undecodable lines mean either corruption (the ledger check will
		// name it) or an event the counter agreement cannot see.
		c.OK = false
		c.Detail = fmt.Sprintf("%d journal lines undecodable", skipped)
	}
	r.add(c)
	return events, c.OK
}

// checkLedger: the tamper-evident ledger verifies end-to-end across
// every kill/resume segment, and the external anchor side file agrees
// with the sealed head.
func checkLedger(jpath string, in Inputs) Check {
	c := Check{Name: "ledger", Artifact: in.JournalFile, OK: true}
	res, err := journal.VerifyFile(jpath)
	if err != nil {
		c.OK = false
		c.Detail = fmt.Sprintf("verify: %v", err)
		return c
	}
	switch {
	case !res.OK && res.AnchorChecked && !res.AnchorOK && res.Err == "":
		c.OK = false
		c.Artifact = in.JournalFile + ".anchor"
		c.Detail = res.AnchorErr
	case !res.OK:
		c.OK = false
		c.Detail = fmt.Sprintf("%s (first bad line %d)", res.Err, res.FirstBad)
	case res.Segments != in.ExpectedSegments:
		c.OK = false
		c.Detail = fmt.Sprintf("ledger has %d segments, expected %d (1 + kills fired): a crash/resume boundary is missing or extra", res.Segments, in.ExpectedSegments)
	case !res.AnchorChecked:
		c.OK = false
		c.Artifact = in.JournalFile + ".anchor"
		c.Detail = "no external anchor side file was written for a ledgered journal"
	default:
		c.Detail = fmt.Sprintf("%d events, %d segments, sealed head %s, anchor matches", res.Events, res.Segments, abbrev(res.Head))
	}
	return c
}

// tracked pairs a journal kind with the counter incremented at the same
// call site; with zero journal drops the two must agree exactly.
var tracked = []struct {
	kind    journal.Kind
	counter string
}{
	{journal.KindFaultInjected, "faults_injected_total"},
	{journal.KindSessionShed, "gateway_sessions_shed_total"},
	{journal.KindSessionOpened, "gateway_connections_total"},
}

// checkJournalCounters: the journal's event counts agree with the obs
// counters — every decoded line was counted, and for kinds whose emit
// site increments a counter, journaled ≤ counted with the total deficit
// bounded by the journal's own drop accounting (exact when no drops).
func checkJournalCounters(events []journal.Event, in Inputs) Check {
	c := Check{Name: "journal-counter-agreement", Artifact: "journal vs counters", OK: true}
	if we := in.Counters["journal_write_errors_total"]; we > 0 {
		c.OK = false
		c.Detail = fmt.Sprintf("journal recorded %d write errors: counted events were lost on the way to disk", we)
		return c
	}
	emitted := in.Counters["journal_events_total"]
	if int64(len(events)) != emitted {
		c.OK = false
		c.Detail = fmt.Sprintf("journal file holds %d events but journal_events_total counted %d enqueued", len(events), emitted)
		return c
	}
	byKind := make(map[journal.Kind]int64)
	for _, e := range events {
		byKind[e.Kind]++
	}
	dropped := in.Counters["journal_events_dropped_total"]
	var deficit int64
	for _, t := range tracked {
		journaled, counted := byKind[t.kind], in.Counters[t.counter]
		if journaled > counted {
			c.OK = false
			c.Detail = fmt.Sprintf("journal holds %d %s events but %s counted only %d", journaled, t.kind, t.counter, counted)
			return c
		}
		deficit += counted - journaled
	}
	if deficit > dropped {
		c.OK = false
		c.Detail = fmt.Sprintf("tracked kinds are missing %d journal events but only %d drops were counted: events vanished unaccounted", deficit, dropped)
		return c
	}
	c.Detail = fmt.Sprintf("%d events match journal_events_total; tracked-kind deficit %d within %d counted drops", emitted, deficit, dropped)
	return c
}

// checkResumeConvergence: the run converged — the final snapshot is
// complete under the run's ID, the journal carries exactly one
// run_resumed marker per kill — and no resumed segment re-executed
// work its baseline snapshot had already settled. The baselines are
// the snapshots' actual settled sets captured at each crash boundary,
// not inferred from event order (the lag between an event's emit and
// its checkpoint fold is unbounded under fault stalls, so order-based
// durability would convict legitimate resumes).
func checkResumeConvergence(dir string, events []journal.Event, in Inputs) Check {
	c := Check{Name: "resume-convergence", Artifact: in.CheckpointDir, OK: true}
	st, err := checkpoint.NewStore(filepath.Join(dir, in.CheckpointDir))
	if err != nil {
		c.OK = false
		c.Detail = fmt.Sprintf("checkpoint store: %v", err)
		return c
	}
	snap, err := st.Load(in.RunID)
	if err != nil {
		c.OK = false
		c.Detail = fmt.Sprintf("final snapshot for run %s: %v", in.RunID, err)
		return c
	}
	if !snap.Completed {
		c.OK = false
		c.Detail = fmt.Sprintf("snapshot %s is not marked complete: the run never converged", in.RunID)
		return c
	}

	collect := make([]map[int]bool, len(in.Resumes))
	honeypot := make([]map[int]bool, len(in.Resumes))
	for i, bl := range in.Resumes {
		collect[i] = make(map[int]bool, len(bl.SettledCollect))
		for _, id := range bl.SettledCollect {
			collect[i][id] = true
		}
		honeypot[i] = make(map[int]bool, len(bl.SettledHoneypot))
		for _, id := range bl.SettledHoneypot {
			honeypot[i][id] = true
		}
	}
	seg := 0
	for _, e := range events {
		if e.RunID != in.RunID {
			continue
		}
		switch e.Kind {
		case journal.KindRunResumed:
			seg++
		case journal.KindBotDiscovered:
			if seg >= 1 && seg <= len(collect) && collect[seg-1][e.BotID] {
				c.OK = false
				c.Detail = fmt.Sprintf("resumed segment %d re-crawled bot %d, which its baseline snapshot had already settled", seg+1, e.BotID)
				return c
			}
		case journal.KindExperimentStarted:
			if seg >= 1 && seg <= len(honeypot) && honeypot[seg-1][e.BotID] {
				c.OK = false
				c.Detail = fmt.Sprintf("resumed segment %d re-ran the experiment for bot %d, which its baseline snapshot had already settled", seg+1, e.BotID)
				return c
			}
		}
	}
	if seg != in.ExpectedSegments-1 {
		c.OK = false
		c.Detail = fmt.Sprintf("journal records %d run_resumed markers, want %d (one per kill)", seg, in.ExpectedSegments-1)
		return c
	}
	c.Detail = fmt.Sprintf("snapshot %s complete (%d settled); %d resume(s) skipped every checkpointed bot (zero re-execution)", in.RunID, snap.Settled(), seg)
	return c
}

// checkDelivery: the load generator's client-side accounting reconciles
// with the gateway's server-side shed/drop counters.
func checkDelivery(events []journal.Event, haveEvents bool, in Inputs) Check {
	c := Check{Name: "delivery-accounting", Artifact: "loadgen vs gateway counters", OK: true}
	lg := in.Loadgen
	if lg == nil {
		c.Detail = "no loadgen traffic in this soak"
		return c
	}
	if lg.Delivered > lg.ExpectedFanout {
		c.OK = false
		c.Detail = fmt.Sprintf("loadgen delivered %d events, more than the %d its published messages could fan out to", lg.Delivered, lg.ExpectedFanout)
		return c
	}
	shed := in.Counters["gateway_sessions_shed_total"]
	if lg.ShedDials > shed {
		c.OK = false
		c.Detail = fmt.Sprintf("clients saw %d shed dials but the server only counted %d sheds", lg.ShedDials, shed)
		return c
	}
	byReason := in.Counters["gateway_sessions_shed_max_sessions_total"] +
		in.Counters["gateway_sessions_shed_identify_rate_total"] +
		in.Counters["gateway_sessions_shed_tenant_rate_total"]
	if byReason != shed {
		c.OK = false
		c.Detail = fmt.Sprintf("per-reason shed counters sum to %d but gateway_sessions_shed_total is %d", byReason, shed)
		return c
	}
	if haveEvents && in.Counters["journal_events_dropped_total"] == 0 {
		perReason := make(map[string]int64)
		for _, e := range events {
			if e.Kind != journal.KindSessionShed || e.Fields == nil {
				continue
			}
			if reason, ok := e.Fields["reason"].(string); ok {
				perReason[reason]++
			}
		}
		for reason, n := range perReason {
			counted := in.Counters["gateway_sessions_shed_"+reason+"_total"]
			if n != counted {
				c.OK = false
				c.Detail = fmt.Sprintf("journal holds %d session_shed events with reason %s but the counter says %d", n, reason, counted)
				return c
			}
		}
	}
	c.Detail = fmt.Sprintf("delivered %d/%d expected; %d sheds reconcile per reason (%d shed dials)", lg.Delivered, lg.ExpectedFanout, shed, lg.ShedDials)
	return c
}

// Probe is the cheap mid-soak consistency check run at phase
// boundaries: counter families that must always reconcile, and gauges
// that can never go negative. It returns the first inconsistency.
func Probe(reg *obs.Registry) error {
	snap := reg.Snapshot()
	shed := snap.Counters["gateway_sessions_shed_total"]
	var byReason int64
	for _, reason := range []string{"max_sessions", "identify_rate", "tenant_rate"} {
		byReason += snap.Counters["gateway_sessions_shed_"+reason+"_total"]
	}
	if byReason != shed {
		return fmt.Errorf("invariant probe: per-reason shed counters sum to %d, total says %d", byReason, shed)
	}
	for _, g := range []string{"gateway_sessions", "retry_breakers_open"} {
		if v, ok := snap.Gauges[g]; ok && v < 0 {
			return fmt.Errorf("invariant probe: gauge %s is negative (%d)", g, v)
		}
	}
	return nil
}

func abbrev(h string) string {
	if len(h) > 12 {
		return h[:12] + "…"
	}
	return h
}
