package invariant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// healthyInputs is a minimal consistent run: 3 bots listed, 2 records
// + 1 quarantined, 2 honeypot verdicts, no kills, no loadgen.
func healthyInputs() Inputs {
	return Inputs{
		Schema:               InputsSchema,
		RunID:                "run-test",
		JournalFile:          "journal.jsonl",
		CheckpointDir:        "checkpoints",
		ExpectedSegments:     1,
		Listed:               []int{1, 2, 3},
		RecordBots:           []int{1, 2},
		CollectQuarantined:   []int{3},
		HoneypotSampleTarget: 2,
		VerdictBots:          []int{1, 2},
		Counters:             map[string]int64{},
	}
}

func TestCheckTerminalState(t *testing.T) {
	t.Run("green", func(t *testing.T) {
		if c := checkTerminalState(healthyInputs()); !c.OK {
			t.Fatalf("healthy inputs violated terminal-state: %s", c.Detail)
		}
	})
	t.Run("lost bot", func(t *testing.T) {
		in := healthyInputs()
		in.Listed = append(in.Listed, 4) // no record, no quarantine
		c := checkTerminalState(in)
		if c.OK {
			t.Fatal("bot with no terminal state passed")
		}
		if !strings.Contains(c.Detail, "first lost bot 4") {
			t.Errorf("detail %q does not name the lost bot", c.Detail)
		}
	})
	t.Run("lost bot excused by stage error", func(t *testing.T) {
		in := healthyInputs()
		in.Listed = append(in.Listed, 4)
		in.CollectStageError = "context canceled"
		if c := checkTerminalState(in); !c.OK {
			t.Fatalf("stage error should excuse lost bots: %s", c.Detail)
		}
	})
	t.Run("honeypot shortfall", func(t *testing.T) {
		in := healthyInputs()
		in.VerdictBots = in.VerdictBots[:1] // 1 settled of 2 sampled
		c := checkTerminalState(in)
		if c.OK {
			t.Fatal("honeypot shortfall passed")
		}
		if !strings.Contains(c.Detail, "sampled 2") {
			t.Errorf("detail %q does not state the sample target", c.Detail)
		}
	})
}

func TestCheckJournalCounters(t *testing.T) {
	events := []journal.Event{
		{Kind: journal.KindFaultInjected},
		{Kind: journal.KindFaultInjected},
		{Kind: journal.KindSessionOpened},
		{Kind: journal.KindStageStarted},
	}
	base := func() Inputs {
		in := healthyInputs()
		in.Counters = map[string]int64{
			"journal_events_total":      4,
			"faults_injected_total":     2,
			"gateway_connections_total": 1,
		}
		return in
	}
	t.Run("green", func(t *testing.T) {
		if c := checkJournalCounters(events, base()); !c.OK {
			t.Fatalf("consistent counters violated agreement: %s", c.Detail)
		}
	})
	t.Run("write errors", func(t *testing.T) {
		in := base()
		in.Counters["journal_write_errors_total"] = 1
		if c := checkJournalCounters(events, in); c.OK {
			t.Fatal("write errors passed the counter agreement")
		}
	})
	t.Run("file vs enqueue mismatch", func(t *testing.T) {
		in := base()
		in.Counters["journal_events_total"] = 7
		c := checkJournalCounters(events, in)
		if c.OK {
			t.Fatal("journal shorter than its own enqueue counter passed")
		}
		if !strings.Contains(c.Detail, "holds 4 events but journal_events_total counted 7") {
			t.Errorf("detail %q does not quantify the mismatch", c.Detail)
		}
	})
	t.Run("journal ahead of counter", func(t *testing.T) {
		in := base()
		in.Counters["faults_injected_total"] = 1 // journal has 2
		if c := checkJournalCounters(events, in); c.OK {
			t.Fatal("journal holding more events than the counter passed")
		}
	})
	t.Run("unaccounted deficit", func(t *testing.T) {
		in := base()
		in.Counters["faults_injected_total"] = 5 // journal has 2, no drops counted
		if c := checkJournalCounters(events, in); c.OK {
			t.Fatal("deficit beyond counted drops passed")
		}
	})
	t.Run("deficit covered by drops", func(t *testing.T) {
		in := base()
		in.Counters["faults_injected_total"] = 5
		in.Counters["journal_events_dropped_total"] = 3
		if c := checkJournalCounters(events, in); !c.OK {
			t.Fatalf("deficit within counted drops should pass: %s", c.Detail)
		}
	})
}

func TestCheckDelivery(t *testing.T) {
	shedEvent := func(reason string) journal.Event {
		return journal.Event{Kind: journal.KindSessionShed, Fields: map[string]any{"reason": reason}}
	}
	base := func() Inputs {
		in := healthyInputs()
		in.Loadgen = &loadgen.Result{Delivered: 90, ExpectedFanout: 100, ShedDials: 3}
		in.Counters = map[string]int64{
			"gateway_sessions_shed_total":               3,
			"gateway_sessions_shed_max_sessions_total":  2,
			"gateway_sessions_shed_identify_rate_total": 1,
		}
		return in
	}
	events := []journal.Event{shedEvent("max_sessions"), shedEvent("max_sessions"), shedEvent("identify_rate")}
	t.Run("green", func(t *testing.T) {
		if c := checkDelivery(events, true, base()); !c.OK {
			t.Fatalf("consistent delivery accounting violated: %s", c.Detail)
		}
	})
	t.Run("no loadgen is vacuous", func(t *testing.T) {
		in := base()
		in.Loadgen = nil
		if c := checkDelivery(events, true, in); !c.OK {
			t.Fatalf("soak without loadgen should pass vacuously: %s", c.Detail)
		}
	})
	t.Run("over-delivery", func(t *testing.T) {
		in := base()
		in.Loadgen.Delivered = in.Loadgen.ExpectedFanout + 1
		if c := checkDelivery(events, true, in); c.OK {
			t.Fatal("delivery above the possible fanout passed")
		}
	})
	t.Run("client sheds exceed server count", func(t *testing.T) {
		in := base()
		in.Loadgen.ShedDials = 9
		if c := checkDelivery(events, true, in); c.OK {
			t.Fatal("more shed dials than server-side sheds passed")
		}
	})
	t.Run("per-reason sum mismatch", func(t *testing.T) {
		in := base()
		in.Counters["gateway_sessions_shed_max_sessions_total"] = 1
		c := checkDelivery(events, true, in)
		if c.OK {
			t.Fatal("per-reason counters not summing to the total passed")
		}
		if !strings.Contains(c.Detail, "per-reason") {
			t.Errorf("detail %q does not mention per-reason counters", c.Detail)
		}
	})
	t.Run("journal reason count disagrees", func(t *testing.T) {
		in := base()
		// Journal has 2 max_sessions sheds; claim the counter saw 1 while
		// keeping total/per-reason sums internally consistent.
		in.Counters["gateway_sessions_shed_max_sessions_total"] = 1
		in.Counters["gateway_sessions_shed_identify_rate_total"] = 2
		in.Loadgen.ShedDials = 0
		if c := checkDelivery(events, true, in); c.OK {
			t.Fatal("journal shed-reason counts disagreeing with counters passed")
		}
	})
}

func TestProbe(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("gateway_sessions_shed_total").Add(2)
	reg.Counter("gateway_sessions_shed_max_sessions_total").Add(1)
	reg.Counter("gateway_sessions_shed_tenant_rate_total").Add(1)
	if err := Probe(reg); err != nil {
		t.Fatalf("consistent registry failed the probe: %v", err)
	}
	reg.Counter("gateway_sessions_shed_total").Add(1) // now 3 vs per-reason 2
	if err := Probe(reg); err == nil {
		t.Fatal("inconsistent shed counters passed the probe")
	}
	reg2 := obs.NewRegistry()
	reg2.Gauge("gateway_sessions").Set(-1)
	if err := Probe(reg2); err == nil {
		t.Fatal("negative session gauge passed the probe")
	}
}

func TestCheckDirSchemaGuard(t *testing.T) {
	dir := t.TempDir()
	if _, err := CheckDir(dir); err == nil {
		t.Fatal("CheckDir of a dir without soak.json succeeded")
	}
	if err := os.WriteFile(filepath.Join(dir, "soak.json"),
		[]byte(`{"soak_schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckDir(dir); err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("future schema not rejected: %v", err)
	}
}
