package soak

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/soak/invariant"
)

// testSchedule is a compressed smoke arc: warm up, squeeze with a
// kill, cool down. Kept short so the full soak (pipeline + loadgen +
// kill/resume + invariant sweep) fits a -race test.
const testSchedule = `{
	"name": "test",
	"phases": [
		{"name": "warm", "duration_ms": 1500, "fault_profile": "none"},
		{"name": "crunch", "duration_ms": 3000, "fault_profile": "mild", "stall_clients": 1,
		 "limits": {"identify_rps": 40, "identify_burst": 8, "tenant_identify_rps": 4,
		            "tenant_identify_burst": 2, "slow_consumer": "drop-oldest", "send_queue": 32},
		 "kill": {"after_checkpoints": 1}},
		{"name": "cool", "duration_ms": 2500, "fault_profile": "none"}
	]
}`

// TestSoakKillResumeGreen is the package's acceptance test: a soak
// whose schedule fires a SIGKILL-style abort mid-run must exit green —
// kill fired, ledger split into two anchored segments, every invariant
// reconciling — and the artifact directory must re-verify post-hoc,
// while deliberate corruption of any artifact is caught with the
// violated invariant named.
func TestSoakKillResumeGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	sched, err := ParseSchedule([]byte(testSchedule))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	out, err := Run(ctx, Options{
		Schedule:        sched,
		Dir:             dir,
		NumBots:         200,
		Sample:          40,
		Settle:          250 * time.Millisecond,
		CheckpointEvery: 3,
		Sessions:        10,
		Guilds:          2,
		UsersPerGuild:   4,
		Tenants:         2,
		MsgRate:         15,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("soak invariants violated: %s", out.Invariants.First)
	}
	if out.KillsFired != 1 {
		t.Fatalf("kills fired = %d, want 1 (schedule arms one mid-pipeline kill)", out.KillsFired)
	}
	if out.Segments != 2 {
		t.Errorf("ledger segments = %d, want 2 (one per crash boundary)", out.Segments)
	}
	for _, name := range []string{"terminal-state", "journal-readable", "ledger", "journal-counter-agreement", "resume-convergence", "delivery-accounting"} {
		found := false
		for _, c := range out.Invariants.Checks {
			if c.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("invariant %q missing from the report", name)
		}
	}

	// The artifact directory re-verifies standalone.
	rep, err := invariant.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("post-hoc re-check failed: %s", rep.First)
	}

	// A flipped journal line is caught and named.
	flipped := copyDir(t, dir)
	corruptJournalLine(t, filepath.Join(flipped, "journal.jsonl"))
	rep, err = invariant.CheckDir(flipped)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("flipped journal line passed the invariant sweep")
	}
	if !strings.Contains(rep.First, "journal") {
		t.Errorf("violation %q does not name the journal artifact", rep.First)
	}

	// A dropped checkpoint is caught by resume-convergence.
	dropped := copyDir(t, dir)
	ents, err := os.ReadDir(filepath.Join(dropped, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if err := os.Remove(filepath.Join(dropped, "checkpoints", e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = invariant.CheckDir(dropped)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("dropped checkpoint passed the invariant sweep")
	}
	if !strings.Contains(rep.First, "resume-convergence") {
		t.Errorf("violation %q does not name resume-convergence", rep.First)
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func corruptJournalLine(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	i := len(lines) / 2
	if len(lines[i]) == 0 {
		t.Fatal("picked an empty journal line to corrupt")
	}
	lines[i] = bytes.Replace(lines[i], []byte(`"`), []byte(`'`), 1)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}
