package canary

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// Trigger records one phone-home against a minted token.
type Trigger struct {
	TokenID   string
	Kind      Kind
	GuildTag  string
	At        time.Time
	RemoteIP  string
	UserAgent string
	Via       string // "http" for URL/doc fetches, "smtp" for mail
}

// Service is the trigger collector: an HTTP server whose /t/<id>
// endpoints register URL/document triggers and whose /email/<id>
// endpoint stands in for the canary mail path. It also acts as the
// token registry mapping IDs back to guild identifiers.
type Service struct {
	srv *http.Server
	ln  net.Listener
	mux *http.ServeMux

	mu       sync.Mutex
	registry map[string]Token
	triggers []Trigger
	waiters  []chan Trigger
	obs      *obs.Registry
	journal  *journal.Journal

	now func() time.Time
}

// SetObs points the service's trigger counters at a registry; by
// default they go to the process-wide one.
func (s *Service) SetObs(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = obs.Or(r)
}

// SetJournal attaches an event journal: every attributed trigger is
// recorded as a canary_triggered event correlated to its experiment
// (guild tag). A nil journal disables event emission.
func (s *Service) SetJournal(j *journal.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// Mount registers an extra handler on the service's mux — canaryd uses
// it to expose the operational surface (/metrics, /healthz, pprof)
// alongside the trigger endpoints.
func (s *Service) Mount(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// NewService starts a trigger service on addr ("127.0.0.1:0" for an
// ephemeral port). now may be nil for the wall clock.
func NewService(addr string, now func() time.Time) (*Service, error) {
	if now == nil {
		now = time.Now
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("canary: listen: %w", err)
	}
	s := &Service{ln: ln, registry: make(map[string]Token), now: now, obs: obs.Default()}
	mux := http.NewServeMux()
	mux.HandleFunc("/t/", s.handleHTTP)
	mux.HandleFunc("/email/", s.handleEmail)
	mux.HandleFunc("/smtp", s.handleSMTP)
	s.mux = mux
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// BaseURL returns the root URL tokens should be minted against.
func (s *Service) BaseURL() string { return "http://" + s.ln.Addr().String() }

// Close shuts the service down.
func (s *Service) Close() error { return s.srv.Close() }

// Register makes the service aware of a minted token so triggers can be
// attributed to its guild.
func (s *Service) Register(t Token) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registry[t.ID] = t
}

// NewMinter returns a minter bound to this service that auto-registers
// every minted token, so triggers are attributable immediately.
func (s *Service) NewMinter(emailDomain string, ids IDSource) *Minter {
	m := NewMinter(s.BaseURL(), emailDomain, ids)
	m.onMint = s.Register
	return m
}

func (s *Service) handleHTTP(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/t/")
	s.record(id, "http", r)
	// Canary endpoints answer innocuously.
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "ok")
}

func (s *Service) handleEmail(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/email/")
	s.record(id, "smtp", r)
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "accepted")
}

// handleSMTP is the mail-submission stand-in: senders who harvested a
// canary address from chat "send mail" by posting to=<address>. The
// local part of the address is the token ID.
func (s *Service) handleSMTP(w http.ResponseWriter, r *http.Request) {
	to := r.FormValue("to")
	at := strings.IndexByte(to, '@')
	if at <= 0 {
		http.Error(w, "bad recipient", http.StatusBadRequest)
		return
	}
	s.record(to[:at], "smtp", r)
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, "queued")
}

func (s *Service) record(id, via string, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tok, known := s.registry[id]
	if !known {
		return // unknown IDs are noise, not triggers
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	trg := Trigger{
		TokenID: id, Kind: tok.Kind, GuildTag: tok.GuildTag,
		At: s.now(), RemoteIP: host, UserAgent: r.UserAgent(), Via: via,
	}
	s.triggers = append(s.triggers, trg)
	s.obs.Counter("canary_triggers_total").Inc()
	s.obs.Counter(fmt.Sprintf("canary_triggers_total{kind=%q}", tok.Kind.String())).Inc()
	s.journal.Emit(journal.Event{
		Kind:         journal.KindCanaryTriggered,
		Component:    "canary",
		ExperimentID: tok.GuildTag,
		Fields: map[string]any{
			"token_id": id,
			"token":    tok.Kind.String(),
			"via":      via,
			"ip":       host,
			"agent":    r.UserAgent(),
		},
	})
	for _, ch := range s.waiters {
		select {
		case ch <- trg:
		default:
		}
	}
}

// Triggers returns a copy of all recorded triggers, in arrival order.
func (s *Service) Triggers() []Trigger {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Trigger, len(s.triggers))
	copy(out, s.triggers)
	return out
}

// TriggersFor returns the triggers attributed to one guild identifier.
func (s *Service) TriggersFor(guildTag string) []Trigger {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Trigger
	for _, t := range s.triggers {
		if t.GuildTag == guildTag {
			out = append(out, t)
		}
	}
	return out
}

// Watch returns a channel receiving future triggers (buffered; drops if
// the consumer lags far behind).
func (s *Service) Watch() <-chan Trigger {
	ch := make(chan Trigger, 64)
	s.mu.Lock()
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	return ch
}

// SendMail models sending a message to an address via the given mail
// relay (in the simulation, the canary service doubles as the relay the
// way a real canary domain's MX resolves to the collector). A bot that
// harvested an address from chat and mails it trips the token.
func SendMail(client *http.Client, relayURL, to, subject string) error {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.PostForm(strings.TrimRight(relayURL, "/")+"/smtp",
		map[string][]string{"to": {to}, "subject": {subject}})
	if err != nil {
		return fmt.Errorf("canary: send mail: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("canary: relay rejected mail: %s", resp.Status)
	}
	return nil
}
