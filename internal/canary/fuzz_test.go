package canary

import "testing"

// FuzzDocumentParsers asserts the artifact parsers are total on
// arbitrary bytes — they process attacker-adjacent input (documents
// posted in channels), so they must never panic.
func FuzzDocumentParsers(f *testing.F) {
	m := NewMinter("http://127.0.0.1:1", "c.test", SequentialIDs("fz"))
	word, _ := WordDocument(m.Mint(KindWord, "g"), "seed body")
	pdf, _ := PDFDocument(m.Mint(KindPDF, "g"), "seed body")
	f.Add(word)
	f.Add(pdf)
	f.Add([]byte("not a container at all"))
	f.Add([]byte("PK\x03\x04 truncated zip"))
	f.Add([]byte("%PDF-1.4 truncated"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Both parsers must return cleanly (error or refs), never panic.
		refs, _ := ExternalRefsFromWord(data)
		for _, r := range refs {
			if r == "" {
				t.Error("empty external ref extracted")
			}
		}
		URIsFromPDF(data)
		ExtractURLs(string(data))
		ExtractEmails(string(data))
	})
}
