package canary

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// Word (DOCX) artifacts. A DOCX is a zip of XML parts; like real canary
// documents, ours plants the trigger URL as an external relationship
// (the "remote template" trick): any consumer that resolves external
// references on open fetches the URL and thereby reveals itself.

const docxContentTypes = `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">
  <Default Extension="rels" ContentType="application/vnd.openxmlformats-package.relationships+xml"/>
  <Default Extension="xml" ContentType="application/xml"/>
  <Override PartName="/word/document.xml" ContentType="application/vnd.openxmlformats-officedocument.wordprocessingml.document.main+xml"/>
</Types>`

const docxRels = `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
  <Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/officeDocument" Target="word/document.xml"/>
</Relationships>`

// WordMIME is the DOCX content type used when posting the artifact.
const WordMIME = "application/vnd.openxmlformats-officedocument.wordprocessingml.document"

// PDFMIME is the PDF content type used when posting the artifact.
const PDFMIME = "application/pdf"

// WordDocument renders a DOCX whose document-relationships part carries
// the token's trigger URL as an external target, and whose visible text
// is the provided body.
func WordDocument(t Token, body string) ([]byte, error) {
	if t.Kind != KindWord {
		return nil, fmt.Errorf("canary: WordDocument needs a word token, got %s", t.Kind)
	}
	documentXML := fmt.Sprintf(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<w:document xmlns:w="http://schemas.openxmlformats.org/wordprocessingml/2006/main">
  <w:body><w:p><w:r><w:t>%s</w:t></w:r></w:p></w:body>
</w:document>`, xmlEscape(body))
	documentRels := fmt.Sprintf(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
  <Relationship Id="rId100" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/attachedTemplate" Target="%s" TargetMode="External"/>
</Relationships>`, xmlEscape(t.TriggerURL))

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	parts := []struct{ name, data string }{
		{"[Content_Types].xml", docxContentTypes},
		{"_rels/.rels", docxRels},
		{"word/document.xml", documentXML},
		{"word/_rels/document.xml.rels", documentRels},
	}
	for _, p := range parts {
		w, err := zw.Create(p.name)
		if err != nil {
			return nil, fmt.Errorf("canary: zip %s: %w", p.name, err)
		}
		if _, err := io.WriteString(w, p.data); err != nil {
			return nil, fmt.Errorf("canary: zip %s: %w", p.name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("canary: close zip: %w", err)
	}
	return buf.Bytes(), nil
}

// ExternalRefsFromWord parses a DOCX and returns every external
// relationship target — what a document consumer resolves on open. This
// is also what the honeypot's malicious bot calls to "open" the file.
func ExternalRefsFromWord(data []byte) ([]string, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("canary: not a zip container: %w", err)
	}
	var refs []string
	for _, f := range zr.File {
		if !strings.HasSuffix(f.Name, ".rels") {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("canary: open part %s: %w", f.Name, err)
		}
		blob, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("canary: read part %s: %w", f.Name, err)
		}
		refs = append(refs, externalTargets(string(blob))...)
	}
	return refs, nil
}

var relPattern = regexp.MustCompile(`Target="([^"]+)"[^>]*TargetMode="External"`)

func externalTargets(relsXML string) []string {
	var out []string
	for _, m := range relPattern.FindAllStringSubmatch(relsXML, -1) {
		out = append(out, xmlUnescape(m[1]))
	}
	return out
}

// PDFDocument renders a minimal single-page PDF whose page carries a
// URI action pointing at the trigger URL — the standard canary-PDF
// construction. Viewers (and scrapers) that resolve link actions fetch
// the URL.
func PDFDocument(t Token, body string) ([]byte, error) {
	if t.Kind != KindPDF {
		return nil, fmt.Errorf("canary: PDFDocument needs a pdf token, got %s", t.Kind)
	}
	content := fmt.Sprintf("BT /F1 12 Tf 72 720 Td (%s) Tj ET", pdfEscape(body))
	objects := []string{
		"<< /Type /Catalog /Pages 2 0 R >>",
		"<< /Type /Pages /Kids [3 0 R] /Count 1 >>",
		"<< /Type /Page /Parent 2 0 R /MediaBox [0 0 612 792] /Contents 4 0 R /Annots [5 0 R] >>",
		fmt.Sprintf("<< /Length %d >>\nstream\n%s\nendstream", len(content), content),
		fmt.Sprintf("<< /Type /Annot /Subtype /Link /Rect [0 0 612 792] /A << /S /URI /URI (%s) >> >>", pdfEscape(t.TriggerURL)),
	}
	var buf bytes.Buffer
	buf.WriteString("%PDF-1.4\n")
	offsets := make([]int, len(objects)+1)
	for i, obj := range objects {
		offsets[i+1] = buf.Len()
		fmt.Fprintf(&buf, "%d 0 obj\n%s\nendobj\n", i+1, obj)
	}
	xref := buf.Len()
	fmt.Fprintf(&buf, "xref\n0 %d\n0000000000 65535 f \n", len(objects)+1)
	for i := 1; i <= len(objects); i++ {
		fmt.Fprintf(&buf, "%010d 00000 n \n", offsets[i])
	}
	fmt.Fprintf(&buf, "trailer\n<< /Size %d /Root 1 0 R >>\nstartxref\n%d\n%%%%EOF\n", len(objects)+1, xref)
	return buf.Bytes(), nil
}

var pdfURIPattern = regexp.MustCompile(`/URI\s*\(([^)]*)\)`)

// URIsFromPDF extracts every /URI action target from a PDF — the
// "open the document, resolve its links" step.
func URIsFromPDF(data []byte) []string {
	var out []string
	for _, m := range pdfURIPattern.FindAllSubmatch(data, -1) {
		out = append(out, pdfUnescape(string(m[1])))
	}
	return out
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func xmlUnescape(s string) string {
	r := strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`)
	return r.Replace(s)
}

func pdfEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "(", `\(`, ")", `\)`)
	return r.Replace(s)
}

func pdfUnescape(s string) string {
	r := strings.NewReplacer(`\(`, "(", `\)`, ")", `\\`, `\`)
	return r.Replace(s)
}
