// Package canary implements the honeytoken machinery of the paper's
// dynamic analysis (§3): minting unique canary tokens of four kinds
// (URL, email address, Word document, PDF document), generating real
// artifact bytes whose "opening" phones home, and a trigger service
// that records each phone-home together with the guild identifier it
// was planted under.
package canary

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"regexp"
	"strings"
)

// Kind is a canary token type. The paper's implementation "uses four
// canary tokens: email, URL, word, and PDF".
type Kind int

// Token kinds.
const (
	KindURL Kind = iota
	KindEmail
	KindWord
	KindPDF
)

// Kinds lists every token kind.
var Kinds = []Kind{KindURL, KindEmail, KindWord, KindPDF}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindURL:
		return "url"
	case KindEmail:
		return "email"
	case KindWord:
		return "word"
	case KindPDF:
		return "pdf"
	default:
		return "unknown"
	}
}

// Token is one minted canary.
type Token struct {
	ID       string // unique identifier embedded in the artifact
	Kind     Kind
	GuildTag string // the guild-name identifier tying triggers to a bot under test
	// TriggerURL is the URL whose retrieval registers a trigger (for
	// URL/Word/PDF kinds).
	TriggerURL string
	// Address is the canary mailbox (email kind only).
	Address string
}

// IDSource mints unique token identifiers. The default uses
// crypto/rand; tests install a deterministic source.
type IDSource func() string

// RandomIDs returns a crypto-random 16-hex-char ID source.
func RandomIDs() IDSource {
	return func() string {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic("canary: crypto/rand unavailable: " + err.Error())
		}
		return hex.EncodeToString(b[:])
	}
}

// SequentialIDs returns a deterministic ID source for tests, prefixed
// to stay unique across minters.
func SequentialIDs(prefix string) IDSource {
	n := 0
	return func() string {
		n++
		return fmt.Sprintf("%s%06d", prefix, n)
	}
}

// Minter mints tokens bound to a trigger service base URL.
type Minter struct {
	baseURL     string // e.g. http://127.0.0.1:port
	emailDomain string
	ids         IDSource
	onMint      func(Token) // optional registration hook
}

// NewMinter creates a minter. baseURL is the trigger service root;
// emailDomain forms canary mailbox addresses (default canary.invalid).
func NewMinter(baseURL, emailDomain string, ids IDSource) *Minter {
	if ids == nil {
		ids = RandomIDs()
	}
	if emailDomain == "" {
		emailDomain = "canary.invalid"
	}
	return &Minter{baseURL: strings.TrimRight(baseURL, "/"), emailDomain: emailDomain, ids: ids}
}

// Mint creates one token of the given kind for a guild identifier.
func (m *Minter) Mint(kind Kind, guildTag string) Token {
	id := m.ids()
	t := Token{ID: id, Kind: kind, GuildTag: guildTag}
	switch kind {
	case KindEmail:
		t.Address = fmt.Sprintf("%s@%s", id, m.emailDomain)
		// Mail to a canary address is detected by the mail path; the
		// service models it as a POST to /email/<id>.
		t.TriggerURL = fmt.Sprintf("%s/email/%s", m.baseURL, id)
	default:
		t.TriggerURL = fmt.Sprintf("%s/t/%s", m.baseURL, id)
	}
	if m.onMint != nil {
		m.onMint(t)
	}
	return t
}

// MintSet mints one token of every kind for a guild — the per-guild
// planting the paper performs ("Each guild was populated with a canary
// URL, email address, pdf and word document tokens").
func (m *Minter) MintSet(guildTag string) []Token {
	out := make([]Token, 0, len(Kinds))
	for _, k := range Kinds {
		out = append(out, m.Mint(k, guildTag))
	}
	return out
}

// urlPattern matches http(s) URLs inside chat text; bots use it to
// discover posted links.
var urlPattern = regexp.MustCompile(`https?://[^\s<>"']+`)

// ExtractURLs returns every URL found in free text.
func ExtractURLs(text string) []string {
	return urlPattern.FindAllString(text, -1)
}

// emailPattern matches mailbox addresses inside chat text.
var emailPattern = regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`)

// ExtractEmails returns every email address found in free text.
func ExtractEmails(text string) []string {
	return emailPattern.FindAllString(text, -1)
}
