package canary

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func newTestService(t *testing.T) (*Service, *Minter) {
	t.Helper()
	svc, err := NewService("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, svc.NewMinter("canary.test", SequentialIDs("tok"))
}

func TestMintSetCoversAllKinds(t *testing.T) {
	_, m := newTestService(t)
	set := m.MintSet("guild-melonian")
	if len(set) != 4 {
		t.Fatalf("MintSet = %d tokens", len(set))
	}
	kinds := make(map[Kind]bool)
	for _, tok := range set {
		kinds[tok.Kind] = true
		if tok.GuildTag != "guild-melonian" {
			t.Errorf("token guild tag = %q", tok.GuildTag)
		}
		if tok.ID == "" {
			t.Error("empty token ID")
		}
	}
	for _, k := range Kinds {
		if !kinds[k] {
			t.Errorf("kind %s missing from set", k)
		}
	}
	email := set[1]
	if email.Kind != KindEmail || !strings.HasSuffix(email.Address, "@canary.test") {
		t.Errorf("email token = %+v", email)
	}
}

func TestURLTriggerAttribution(t *testing.T) {
	svc, m := newTestService(t)
	tok := m.Mint(KindURL, "guild-a")
	other := m.Mint(KindURL, "guild-b")
	resp, err := http.Get(tok.TriggerURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	trs := svc.TriggersFor("guild-a")
	if len(trs) != 1 {
		t.Fatalf("guild-a triggers = %d", len(trs))
	}
	if trs[0].TokenID != tok.ID || trs[0].Kind != KindURL || trs[0].Via != "http" {
		t.Errorf("trigger = %+v", trs[0])
	}
	if got := svc.TriggersFor("guild-b"); len(got) != 0 {
		t.Errorf("guild-b got %d spurious triggers", len(got))
	}
	_ = other
}

func TestUnknownTokenIsNoise(t *testing.T) {
	svc, _ := newTestService(t)
	resp, err := http.Get(svc.BaseURL() + "/t/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := svc.Triggers(); len(got) != 0 {
		t.Errorf("unknown ID recorded as trigger: %+v", got)
	}
}

func TestEmailTriggerViaRelay(t *testing.T) {
	svc, m := newTestService(t)
	tok := m.Mint(KindEmail, "guild-mail")
	if err := SendMail(nil, svc.BaseURL(), tok.Address, "hi there"); err != nil {
		t.Fatal(err)
	}
	trs := svc.TriggersFor("guild-mail")
	if len(trs) != 1 || trs[0].Via != "smtp" || trs[0].Kind != KindEmail {
		t.Fatalf("mail trigger = %+v", trs)
	}
	// Malformed recipients are rejected.
	if err := SendMail(nil, svc.BaseURL(), "not-an-address", "x"); err == nil {
		t.Error("relay accepted malformed recipient")
	}
}

func TestWordDocumentRoundTrip(t *testing.T) {
	svc, m := newTestService(t)
	tok := m.Mint(KindWord, "guild-doc")
	doc, err := WordDocument(tok, "Q3 planning notes — do not share")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) == 0 || string(doc[:2]) != "PK" {
		t.Fatal("not a zip container")
	}
	refs, err := ExternalRefsFromWord(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0] != tok.TriggerURL {
		t.Fatalf("external refs = %v, want [%s]", refs, tok.TriggerURL)
	}
	// "Open" the document the way a snooping consumer does.
	resp, err := http.Get(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if trs := svc.TriggersFor("guild-doc"); len(trs) != 1 || trs[0].Kind != KindWord {
		t.Fatalf("doc trigger = %+v", trs)
	}
	// Kind mismatch is rejected.
	if _, err := WordDocument(m.Mint(KindPDF, "g"), "x"); err == nil {
		t.Error("WordDocument accepted a pdf token")
	}
}

func TestPDFDocumentRoundTrip(t *testing.T) {
	svc, m := newTestService(t)
	tok := m.Mint(KindPDF, "guild-pdf")
	pdf, err := PDFDocument(tok, "Invoice #42 (confidential)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(pdf), "%PDF-1.4") || !strings.Contains(string(pdf), "%%EOF") {
		t.Fatal("malformed PDF envelope")
	}
	uris := URIsFromPDF(pdf)
	if len(uris) != 1 || uris[0] != tok.TriggerURL {
		t.Fatalf("pdf URIs = %v", uris)
	}
	resp, err := http.Get(uris[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if trs := svc.TriggersFor("guild-pdf"); len(trs) != 1 || trs[0].Kind != KindPDF {
		t.Fatalf("pdf trigger = %+v", trs)
	}
	if _, err := PDFDocument(m.Mint(KindWord, "g"), "x"); err == nil {
		t.Error("PDFDocument accepted a word token")
	}
}

func TestPDFEscaping(t *testing.T) {
	_, m := newTestService(t)
	tok := m.Mint(KindPDF, "guild-esc")
	pdf, err := PDFDocument(tok, `body with (parens) and \backslash`)
	if err != nil {
		t.Fatal(err)
	}
	uris := URIsFromPDF(pdf)
	if len(uris) != 1 || uris[0] != tok.TriggerURL {
		t.Fatalf("escaped-body pdf URIs = %v", uris)
	}
}

func TestExtractURLsAndEmails(t *testing.T) {
	text := `check http://example.test/a and https://example.test/b?q=1,
write to alice@corp.test or bob.smith+x@mail.example.org! end.`
	urls := ExtractURLs(text)
	if len(urls) != 2 || !strings.HasSuffix(urls[1], "q=1,") && len(urls) != 2 {
		// trailing punctuation behaviour is regex-defined; just assert count+prefixes
		t.Logf("urls = %v", urls)
	}
	if len(urls) != 2 || !strings.HasPrefix(urls[0], "http://example.test/a") {
		t.Errorf("ExtractURLs = %v", urls)
	}
	emails := ExtractEmails(text)
	if len(emails) != 2 || emails[0] != "alice@corp.test" {
		t.Errorf("ExtractEmails = %v", emails)
	}
	if got := ExtractURLs("no links here"); got != nil {
		t.Errorf("false URL positives: %v", got)
	}
}

func TestWatchStreamsTriggers(t *testing.T) {
	svc, m := newTestService(t)
	tok := m.Mint(KindURL, "guild-live")
	ch := svc.Watch()
	resp, err := http.Get(tok.TriggerURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case trg := <-ch:
		if trg.GuildTag != "guild-live" {
			t.Errorf("watched trigger = %+v", trg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no trigger streamed")
	}
}

func TestDeterministicIDs(t *testing.T) {
	a := SequentialIDs("x")
	if a() != "x000001" || a() != "x000002" {
		t.Error("SequentialIDs not sequential")
	}
	r := RandomIDs()
	if r() == r() {
		t.Error("RandomIDs collided immediately")
	}
}

func TestMalformedArtifacts(t *testing.T) {
	if _, err := ExternalRefsFromWord([]byte("definitely not a zip")); err == nil {
		t.Error("ExternalRefsFromWord accepted garbage")
	}
	if uris := URIsFromPDF([]byte("not a pdf")); uris != nil {
		t.Errorf("URIsFromPDF on garbage = %v", uris)
	}
}
