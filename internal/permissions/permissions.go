// Package permissions implements the Discord-style permission bitfield
// used throughout the reproduction: the permission constants, their
// canonical names as shown on installation pages and in listings, the
// "dangerous" subset highlighted by the paper, and helpers for parsing
// and formatting permission sets.
//
// Bit assignments follow the public Discord API documentation so that
// synthetic invite URLs (?permissions=NNN) decode exactly like the ones
// the paper's scraper collected from top.gg.
package permissions

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Permission is a bitfield of guild/channel capabilities. A Permission
// value with several bits set represents a permission *set*.
type Permission uint64

// Permission bits, matching the Discord API values.
const (
	CreateInstantInvite Permission = 1 << 0
	KickMembers         Permission = 1 << 1
	BanMembers          Permission = 1 << 2
	Administrator       Permission = 1 << 3
	ManageChannels      Permission = 1 << 4
	ManageGuild         Permission = 1 << 5
	AddReactions        Permission = 1 << 6
	ViewAuditLog        Permission = 1 << 7
	PrioritySpeaker     Permission = 1 << 8
	Stream              Permission = 1 << 9
	ViewChannel         Permission = 1 << 10 // "read messages" on install pages
	SendMessages        Permission = 1 << 11
	SendTTSMessages     Permission = 1 << 12
	ManageMessages      Permission = 1 << 13
	EmbedLinks          Permission = 1 << 14
	AttachFiles         Permission = 1 << 15
	ReadMessageHistory  Permission = 1 << 16
	MentionEveryone     Permission = 1 << 17
	UseExternalEmojis   Permission = 1 << 18
	ViewGuildInsights   Permission = 1 << 19
	Connect             Permission = 1 << 20
	Speak               Permission = 1 << 21
	MuteMembers         Permission = 1 << 22
	DeafenMembers       Permission = 1 << 23
	MoveMembers         Permission = 1 << 24
	UseVAD              Permission = 1 << 25 // "use voice activity"
	ChangeNickname      Permission = 1 << 26
	ManageNicknames     Permission = 1 << 27
	ManageRoles         Permission = 1 << 28
	ManageWebhooks      Permission = 1 << 29
	ManageEmojis        Permission = 1 << 30 // "manage emojis and stickers"
)

// None is the empty permission set.
const None Permission = 0

// All is the union of every defined permission bit.
const All Permission = CreateInstantInvite | KickMembers | BanMembers |
	Administrator | ManageChannels | ManageGuild | AddReactions |
	ViewAuditLog | PrioritySpeaker | Stream | ViewChannel | SendMessages |
	SendTTSMessages | ManageMessages | EmbedLinks | AttachFiles |
	ReadMessageHistory | MentionEveryone | UseExternalEmojis |
	ViewGuildInsights | Connect | Speak | MuteMembers | DeafenMembers |
	MoveMembers | UseVAD | ChangeNickname | ManageNicknames | ManageRoles |
	ManageWebhooks | ManageEmojis

// names maps single bits to the lower-case labels used by installation
// pages and by Figure 3 of the paper.
var names = map[Permission]string{
	CreateInstantInvite: "create invite",
	KickMembers:         "kick members",
	BanMembers:          "ban members",
	Administrator:       "administrator",
	ManageChannels:      "manage channels",
	ManageGuild:         "manage server",
	AddReactions:        "add reactions",
	ViewAuditLog:        "view audit log",
	PrioritySpeaker:     "priority speaker",
	Stream:              "stream",
	ViewChannel:         "read messages",
	SendMessages:        "send messages",
	SendTTSMessages:     "send tts messages",
	ManageMessages:      "manage messages",
	EmbedLinks:          "embed links",
	AttachFiles:         "attach files",
	ReadMessageHistory:  "read message history",
	MentionEveryone:     "mention @everyone",
	UseExternalEmojis:   "use external emojis",
	ViewGuildInsights:   "view server insights",
	Connect:             "connect",
	Speak:               "speak",
	MuteMembers:         "mute members",
	DeafenMembers:       "deafen members",
	MoveMembers:         "move members",
	UseVAD:              "use voice activity",
	ChangeNickname:      "change nickname",
	ManageNicknames:     "manage nicknames",
	ManageRoles:         "manage roles",
	ManageWebhooks:      "manage webhooks",
	ManageEmojis:        "manage emojis and stickers",
}

var byName map[string]Permission

func init() {
	byName = make(map[string]Permission, len(names))
	for p, n := range names {
		byName[n] = p
	}
}

// Dangerous is the subset of permissions the paper treats as high risk
// when granted to a third-party chatbot: full control of the guild, of
// its members, or of its access-control configuration.
const Dangerous = Administrator | ManageGuild | ManageRoles |
	ManageChannels | ManageWebhooks | BanMembers | KickMembers |
	ManageMessages | MentionEveryone

// Has reports whether every bit of q is present in p. Administrator does
// NOT implicitly grant other bits at this level; use Effective for that.
func (p Permission) Has(q Permission) bool { return p&q == q }

// HasAny reports whether at least one bit of q is present in p.
func (p Permission) HasAny(q Permission) bool { return p&q != 0 }

// Add returns p with all bits of q set.
func (p Permission) Add(q Permission) Permission { return p | q }

// Remove returns p with all bits of q cleared.
func (p Permission) Remove(q Permission) Permission { return p &^ q }

// IsAdmin reports whether the set includes the administrator bit.
func (p Permission) IsAdmin() bool { return p&Administrator != 0 }

// Effective expands the administrator bit: an administrator holds every
// permission and bypasses channel overwrites (paper §4.1).
func (p Permission) Effective() Permission {
	if p.IsAdmin() {
		return All
	}
	return p
}

// Count returns the number of individual permission bits set.
func (p Permission) Count() int {
	n := 0
	for q := p; q != 0; q &= q - 1 {
		n++
	}
	return n
}

// Split returns the individual bits of p in ascending bit order.
func (p Permission) Split() []Permission {
	var out []Permission
	for bit := Permission(1); bit != 0 && bit <= p; bit <<= 1 {
		if p&bit != 0 {
			out = append(out, bit)
		}
	}
	return out
}

// Name returns the canonical lower-case label for a single-bit
// permission, or "unknown(0xN)" for undefined bits. For multi-bit sets
// use Names or String.
func (p Permission) Name() string {
	if n, ok := names[p]; ok {
		return n
	}
	return fmt.Sprintf("unknown(%#x)", uint64(p))
}

// Names returns the labels of every bit set in p, sorted alphabetically
// the way installation pages list them.
func (p Permission) Names() []string {
	bits := p.Split()
	out := make([]string, 0, len(bits))
	for _, b := range bits {
		out = append(out, b.Name())
	}
	sort.Strings(out)
	return out
}

// String renders the set as a comma-separated list of names, or "none".
func (p Permission) String() string {
	if p == None {
		return "none"
	}
	return strings.Join(p.Names(), ", ")
}

// Defined reports whether every bit in p corresponds to a defined
// permission constant. Invite links scraped from listings can carry
// arbitrary integers; the scraper uses this to flag invalid permission
// values.
func (p Permission) Defined() bool { return p&^All == 0 }

// FromName resolves a canonical label back to its bit. The second result
// is false for unknown labels.
func FromName(name string) (Permission, bool) {
	p, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	return p, ok
}

// ParseValue parses the decimal integer carried by an invite URL's
// ?permissions= query parameter.
func ParseValue(s string) (Permission, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return None, fmt.Errorf("permissions: parse %q: %w", s, err)
	}
	return Permission(v), nil
}

// Value renders the set as the decimal integer used in invite URLs.
func (p Permission) Value() string { return strconv.FormatUint(uint64(p), 10) }

// AllDefined returns every defined single-bit permission in ascending
// bit order. The slice is freshly allocated on each call.
func AllDefined() []Permission {
	return All.Split()
}

// RedundantWithAdmin reports whether the set requests administrator plus
// at least one other permission. The paper (§5, "Misunderstanding the
// permission system") flags such requests as redundant because
// administrator already encompasses every other permission.
func (p Permission) RedundantWithAdmin() bool {
	return p.IsAdmin() && p != Administrator
}
