package permissions

// RolePosition is the position of a role in a guild's role list. Higher
// positions outrank lower ones; the implicit @everyone role sits at
// position 0.
type RolePosition int

// Actor is the minimal view of a guild member the hierarchy rules need:
// its highest role position and its effective guild-level permissions.
// Both platform members and chatbots satisfy it.
type Actor struct {
	HighestRole RolePosition
	Perms       Permission
}

// The five hierarchy rules from the paper's §4.1 ("Discord implements a
// 'permission hierarchy' system"):
//
//	i)   an actor can grant roles positioned below its own highest role;
//	ii)  an actor can edit roles positioned below its highest role, but
//	     can only grant permissions it itself has;
//	iii) an actor can only sort (move) roles below its highest role;
//	iv)  an actor can only kick, ban and edit nicknames of users whose
//	     highest role is below its own;
//	v)   otherwise, permissions do not obey the role hierarchy.
//
// Administrator short-circuits the permission requirement but NOT the
// position comparisons for member moderation (matching Discord, where
// even admins cannot ban higher-positioned members).

// CanGrantRole implements rule i: actor may assign a role at position
// target to another member. Requires the manage-roles capability.
func CanGrantRole(actor Actor, target RolePosition) bool {
	if !actor.Perms.Effective().Has(ManageRoles) {
		return false
	}
	return target < actor.HighestRole
}

// CanEditRole implements rule ii: actor may change a role at position
// target so that it carries perms. Every permission granted to the
// edited role must already be held by the actor (administrators hold
// everything).
func CanEditRole(actor Actor, target RolePosition, grant Permission) bool {
	if !actor.Perms.Effective().Has(ManageRoles) {
		return false
	}
	if target >= actor.HighestRole {
		return false
	}
	return actor.Perms.Effective().Has(grant)
}

// CanSortRole implements rule iii: actor may move the role at position
// target within the role list.
func CanSortRole(actor Actor, target RolePosition) bool {
	if !actor.Perms.Effective().Has(ManageRoles) {
		return false
	}
	return target < actor.HighestRole
}

// ModerationAction is a member-targeted moderation capability governed
// by rule iv.
type ModerationAction int

// Moderation actions covered by hierarchy rule iv.
const (
	ActionKick ModerationAction = iota
	ActionBan
	ActionEditNickname
)

// requiredPerm maps each moderation action to the permission bit it
// needs.
func (a ModerationAction) requiredPerm() Permission {
	switch a {
	case ActionKick:
		return KickMembers
	case ActionBan:
		return BanMembers
	case ActionEditNickname:
		return ManageNicknames
	default:
		return All // unreachable actions require everything, i.e. fail closed
	}
}

// String names the action for audit logs.
func (a ModerationAction) String() string {
	switch a {
	case ActionKick:
		return "kick"
	case ActionBan:
		return "ban"
	case ActionEditNickname:
		return "edit-nickname"
	default:
		return "unknown"
	}
}

// CanModerate implements rule iv: actor may kick/ban/rename a member
// whose highest role is target only if that member sits strictly below
// the actor.
func CanModerate(actor Actor, action ModerationAction, target RolePosition) bool {
	if !actor.Perms.Effective().Has(action.requiredPerm()) {
		return false
	}
	return target < actor.HighestRole
}

// HierarchyExempt implements rule v: permissions other than the ones the
// explicit rules govern do not obey the role hierarchy at all — holding
// the bit suffices regardless of relative positions.
func HierarchyExempt(p Permission) bool {
	const governed = ManageRoles | KickMembers | BanMembers | ManageNicknames
	return p&governed == 0
}
