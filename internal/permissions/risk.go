package permissions

import "sort"

// Risk scoring for permission sets, after the quantitative Android
// permission risk assessments the paper builds on (its refs [6], [55]):
// each permission carries a weight reflecting the damage a malicious or
// compromised bot could do with it; a set's score aggregates the
// weights, with administrator pinned to the maximum since it subsumes
// everything.

// RiskWeight classifies a single permission's abuse potential on a
// 0–10 scale.
func RiskWeight(p Permission) int {
	switch p {
	case Administrator:
		return 10
	case ManageGuild, ManageRoles, ManageWebhooks:
		return 9
	case BanMembers, ManageChannels:
		return 8
	case KickMembers, ManageMessages:
		return 7
	case MentionEveryone, ManageNicknames:
		return 6
	case ViewAuditLog, ReadMessageHistory:
		return 5
	case ViewChannel, AttachFiles, ManageEmojis:
		return 4
	case MoveMembers, MuteMembers, DeafenMembers:
		return 3
	case SendMessages, EmbedLinks, CreateInstantInvite, Connect:
		return 2
	case Speak, SendTTSMessages, AddReactions, UseExternalEmojis,
		UseVAD, ChangeNickname, PrioritySpeaker, Stream, ViewGuildInsights:
		return 1
	default:
		return 0
	}
}

// MaxRiskScore is the score of the full permission set (and of any set
// containing administrator).
var MaxRiskScore = func() int {
	total := 0
	for _, p := range AllDefined() {
		if p == Administrator {
			continue
		}
		total += RiskWeight(p)
	}
	return total
}()

// RiskScore aggregates a set's weights. Administrator pins the score to
// MaxRiskScore: it subsumes every capability, so extra requested bits
// add nothing (they are redundant, per §5).
func (p Permission) RiskScore() int {
	if p.IsAdmin() {
		return MaxRiskScore
	}
	total := 0
	for _, bit := range p.Split() {
		total += RiskWeight(bit)
	}
	return total
}

// RiskLevel is a coarse bucket for reporting.
type RiskLevel int

// Risk levels.
const (
	RiskLow RiskLevel = iota
	RiskModerate
	RiskHigh
	RiskCritical
)

// String names the level.
func (l RiskLevel) String() string {
	switch l {
	case RiskCritical:
		return "critical"
	case RiskHigh:
		return "high"
	case RiskModerate:
		return "moderate"
	default:
		return "low"
	}
}

// Level buckets a set's risk score: critical for administrator or
// near-total capability, high for guild-control sets, moderate for
// data-reading sets, low otherwise.
func (p Permission) Level() RiskLevel {
	score := p.RiskScore()
	switch {
	case p.IsAdmin() || score >= MaxRiskScore*3/4:
		return RiskCritical
	case score >= 20 || p.HasAny(ManageGuild|ManageRoles|BanMembers):
		return RiskHigh
	case score >= 8:
		return RiskModerate
	default:
		return RiskLow
	}
}

// RankByRisk orders permission sets by descending risk score (stable on
// ties). It returns indexes into the input slice.
func RankByRisk(sets []Permission) []int {
	idx := make([]int, len(sets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sets[idx[a]].RiskScore() > sets[idx[b]].RiskScore()
	})
	return idx
}
