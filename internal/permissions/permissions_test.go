package permissions

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBitValuesMatchDiscordAPI(t *testing.T) {
	// Spot-check against the documented Discord API values so synthetic
	// invite URLs decode identically to real ones.
	cases := []struct {
		p    Permission
		want uint64
	}{
		{CreateInstantInvite, 0x1},
		{KickMembers, 0x2},
		{BanMembers, 0x4},
		{Administrator, 0x8},
		{ManageGuild, 0x20},
		{ViewChannel, 0x400},
		{SendMessages, 0x800},
		{ManageMessages, 0x2000},
		{ReadMessageHistory, 0x10000},
		{Connect, 0x100000},
		{ManageRoles, 0x10000000},
		{ManageEmojis, 0x40000000},
	}
	for _, c := range cases {
		if uint64(c.p) != c.want {
			t.Errorf("%s = %#x, want %#x", c.p.Name(), uint64(c.p), c.want)
		}
	}
}

func TestAllContainsEveryNamedBit(t *testing.T) {
	for p := range names {
		if !All.Has(p) {
			t.Errorf("All missing %s", p.Name())
		}
	}
	if got, want := All.Count(), len(names); got != want {
		t.Errorf("All has %d bits, names has %d entries", got, want)
	}
}

func TestHasAddRemove(t *testing.T) {
	p := None.Add(SendMessages).Add(EmbedLinks)
	if !p.Has(SendMessages) || !p.Has(EmbedLinks) {
		t.Fatalf("Add lost bits: %s", p)
	}
	if p.Has(SendMessages | Administrator) {
		t.Error("Has should require every bit of the query set")
	}
	if !p.HasAny(SendMessages | Administrator) {
		t.Error("HasAny should accept a partial overlap")
	}
	p = p.Remove(SendMessages)
	if p.Has(SendMessages) {
		t.Error("Remove did not clear the bit")
	}
	if !p.Has(EmbedLinks) {
		t.Error("Remove cleared an unrelated bit")
	}
}

func TestEffectiveExpandsAdministrator(t *testing.T) {
	if got := Administrator.Effective(); got != All {
		t.Errorf("Administrator.Effective() = %s, want All", got)
	}
	p := SendMessages | Connect
	if got := p.Effective(); got != p {
		t.Errorf("non-admin Effective changed the set: %s", got)
	}
}

func TestSplitRoundTrip(t *testing.T) {
	p := SendMessages | Administrator | ManageRoles
	bits := p.Split()
	if len(bits) != 3 {
		t.Fatalf("Split returned %d bits, want 3", len(bits))
	}
	var rejoined Permission
	for _, b := range bits {
		if b.Count() != 1 {
			t.Errorf("Split produced multi-bit element %s", b)
		}
		rejoined |= b
	}
	if rejoined != p {
		t.Errorf("Split/rejoin mismatch: %s vs %s", rejoined, p)
	}
}

func TestNamesRoundTrip(t *testing.T) {
	for p, n := range names {
		got, ok := FromName(n)
		if !ok {
			t.Errorf("FromName(%q) not found", n)
			continue
		}
		if got != p {
			t.Errorf("FromName(%q) = %s, want %s", n, got.Name(), p.Name())
		}
	}
	if _, ok := FromName("launch nukes"); ok {
		t.Error("FromName accepted an unknown label")
	}
}

func TestFromNameNormalizes(t *testing.T) {
	got, ok := FromName("  Administrator ")
	if !ok || got != Administrator {
		t.Errorf("FromName with padding/case = %v, %v", got, ok)
	}
}

func TestStringAndNameFormatting(t *testing.T) {
	if None.String() != "none" {
		t.Errorf("None.String() = %q", None.String())
	}
	s := (SendMessages | Administrator).String()
	if !strings.Contains(s, "administrator") || !strings.Contains(s, "send messages") {
		t.Errorf("String() missing labels: %q", s)
	}
	if !strings.HasPrefix(Permission(1<<40).Name(), "unknown(") {
		t.Errorf("undefined bit Name() = %q", Permission(1<<40).Name())
	}
}

func TestNamesSorted(t *testing.T) {
	ns := All.Names()
	for i := 1; i < len(ns); i++ {
		if ns[i-1] > ns[i] {
			t.Fatalf("Names not sorted: %q > %q", ns[i-1], ns[i])
		}
	}
}

func TestParseValueAndValue(t *testing.T) {
	p, err := ParseValue("2147483647")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Has(Administrator) || !p.Has(ManageEmojis) {
		t.Errorf("parsed set missing expected bits: %s", p)
	}
	if _, err := ParseValue("not-a-number"); err == nil {
		t.Error("ParseValue accepted garbage")
	}
	if _, err := ParseValue("-5"); err == nil {
		t.Error("ParseValue accepted a negative value")
	}
	if got := (SendMessages | ViewChannel).Value(); got != "3072" {
		t.Errorf("Value() = %q, want 3072", got)
	}
}

func TestDefined(t *testing.T) {
	if !All.Defined() {
		t.Error("All should be Defined")
	}
	if Permission(1 << 45).Defined() {
		t.Error("undefined high bit reported as Defined")
	}
	if !(SendMessages | Administrator).Defined() {
		t.Error("valid combination reported undefined")
	}
}

func TestRedundantWithAdmin(t *testing.T) {
	if Administrator.RedundantWithAdmin() {
		t.Error("bare administrator is not redundant")
	}
	if !(Administrator | SendMessages).RedundantWithAdmin() {
		t.Error("admin+send messages should be redundant")
	}
	if (SendMessages | EmbedLinks).RedundantWithAdmin() {
		t.Error("non-admin set can never be admin-redundant")
	}
}

func TestDangerousSubset(t *testing.T) {
	if !Dangerous.Has(Administrator) {
		t.Error("Dangerous must include administrator")
	}
	if Dangerous.Has(AddReactions) {
		t.Error("add reactions should not be dangerous")
	}
	if !Dangerous.Defined() {
		t.Error("Dangerous contains undefined bits")
	}
}

func TestAllDefinedFresh(t *testing.T) {
	a, b := AllDefined(), AllDefined()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("AllDefined lengths: %d vs %d", len(a), len(b))
	}
	a[0] = None
	if b[0] == None {
		t.Error("AllDefined shares backing storage between calls")
	}
}

// Property: Value/ParseValue round-trips for any defined set.
func TestQuickValueRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		p := Permission(raw) & All
		got, err := ParseValue(p.Value())
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split always returns single bits that OR back to the input.
func TestQuickSplitRejoin(t *testing.T) {
	f := func(raw uint64) bool {
		p := Permission(raw)
		var join Permission
		for _, b := range p.Split() {
			if b.Count() != 1 {
				return false
			}
			join |= b
		}
		return join == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Count equals the number of elements Split returns.
func TestQuickCountMatchesSplit(t *testing.T) {
	f := func(raw uint64) bool {
		p := Permission(raw)
		return p.Count() == len(p.Split())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Effective is idempotent and never loses bits.
func TestQuickEffectiveMonotone(t *testing.T) {
	f := func(raw uint64) bool {
		p := Permission(raw) & All
		e := p.Effective()
		return e.Has(p) && e.Effective() == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyGrantRole(t *testing.T) {
	mod := Actor{HighestRole: 5, Perms: ManageRoles}
	if !CanGrantRole(mod, 3) {
		t.Error("should grant a lower role")
	}
	if CanGrantRole(mod, 5) {
		t.Error("must not grant a role at own position")
	}
	if CanGrantRole(mod, 7) {
		t.Error("must not grant a higher role")
	}
	noPerm := Actor{HighestRole: 9, Perms: SendMessages}
	if CanGrantRole(noPerm, 1) {
		t.Error("manage-roles bit is required")
	}
	admin := Actor{HighestRole: 5, Perms: Administrator}
	if !CanGrantRole(admin, 4) {
		t.Error("administrator implies manage roles")
	}
}

func TestHierarchyEditRole(t *testing.T) {
	mod := Actor{HighestRole: 5, Perms: ManageRoles | KickMembers}
	if !CanEditRole(mod, 2, KickMembers) {
		t.Error("may grant a permission it holds to a lower role")
	}
	if CanEditRole(mod, 2, BanMembers) {
		t.Error("must not grant a permission it lacks (rule ii)")
	}
	if CanEditRole(mod, 6, KickMembers) {
		t.Error("must not edit a higher role")
	}
	admin := Actor{HighestRole: 5, Perms: Administrator}
	if !CanEditRole(admin, 2, BanMembers|ManageGuild) {
		t.Error("administrator holds every permission for rule ii")
	}
}

func TestHierarchySortRole(t *testing.T) {
	mod := Actor{HighestRole: 4, Perms: ManageRoles}
	if !CanSortRole(mod, 3) || CanSortRole(mod, 4) || CanSortRole(mod, 9) {
		t.Error("rule iii: only strictly lower roles are sortable")
	}
}

func TestHierarchyModeration(t *testing.T) {
	bot := Actor{HighestRole: 10, Perms: KickMembers | BanMembers | ManageNicknames}
	for _, action := range []ModerationAction{ActionKick, ActionBan, ActionEditNickname} {
		if !CanModerate(bot, action, 4) {
			t.Errorf("%s on lower member should pass", action)
		}
		if CanModerate(bot, action, 10) {
			t.Errorf("%s on equal member must fail", action)
		}
		if CanModerate(bot, action, 15) {
			t.Errorf("%s on higher member must fail", action)
		}
	}
	weak := Actor{HighestRole: 10, Perms: SendMessages}
	if CanModerate(weak, ActionBan, 1) {
		t.Error("ban without ban-members bit must fail")
	}
	// Administrator supplies the bit but not a position bypass.
	admin := Actor{HighestRole: 3, Perms: Administrator}
	if !CanModerate(admin, ActionKick, 1) {
		t.Error("admin kick on lower member should pass")
	}
	if CanModerate(admin, ActionKick, 8) {
		t.Error("admin must still respect the hierarchy for kicks")
	}
}

func TestModerationActionStrings(t *testing.T) {
	if ActionKick.String() != "kick" || ActionBan.String() != "ban" ||
		ActionEditNickname.String() != "edit-nickname" {
		t.Error("unexpected action labels")
	}
	if ModerationAction(99).String() != "unknown" {
		t.Error("unknown action should label as unknown")
	}
	if ModerationAction(99).requiredPerm() != All {
		t.Error("unknown action must fail closed")
	}
}

func TestHierarchyExempt(t *testing.T) {
	if HierarchyExempt(KickMembers) || HierarchyExempt(ManageRoles) {
		t.Error("governed bits are not exempt")
	}
	if !HierarchyExempt(SendMessages) || !HierarchyExempt(ManageChannels) {
		t.Error("rule v: ungoverned permissions ignore the hierarchy")
	}
}

// Property: moderation never succeeds against an equal-or-higher member,
// no matter the permissions held.
func TestQuickModerationRespectsHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		actor := Actor{
			HighestRole: RolePosition(rng.Intn(20)),
			Perms:       Permission(rng.Uint64()) & All,
		}
		target := actor.HighestRole + RolePosition(rng.Intn(5))
		action := ModerationAction(rng.Intn(3))
		if CanModerate(actor, action, target) {
			t.Fatalf("moderation of equal/higher member allowed: actor=%+v target=%d", actor, target)
		}
	}
}
