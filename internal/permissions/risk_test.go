package permissions

import (
	"testing"
	"testing/quick"
)

func TestRiskWeightsDefined(t *testing.T) {
	for _, p := range AllDefined() {
		if RiskWeight(p) <= 0 {
			t.Errorf("%s has no risk weight", p.Name())
		}
	}
	if RiskWeight(Permission(1<<50)) != 0 {
		t.Error("undefined bit should weigh 0")
	}
	if RiskWeight(Administrator) != 10 {
		t.Error("administrator must carry the maximum single weight")
	}
}

func TestRiskScoreAdminPinned(t *testing.T) {
	if Administrator.RiskScore() != MaxRiskScore {
		t.Errorf("admin score = %d, want %d", Administrator.RiskScore(), MaxRiskScore)
	}
	// Admin + extras is no riskier than admin alone — the extras are
	// redundant (§5).
	if (Administrator | SendMessages | BanMembers).RiskScore() != MaxRiskScore {
		t.Error("redundant extras changed the admin score")
	}
	if None.RiskScore() != 0 {
		t.Error("empty set should score 0")
	}
}

func TestRiskScoreMonotone(t *testing.T) {
	f := func(raw uint64) bool {
		p := Permission(raw) & All &^ Administrator
		// Adding any bit never lowers the score.
		return (p | KickMembers).RiskScore() >= p.RiskScore()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRiskScoreAdditiveWithoutAdmin(t *testing.T) {
	a := SendMessages | EmbedLinks
	if a.RiskScore() != RiskWeight(SendMessages)+RiskWeight(EmbedLinks) {
		t.Errorf("score = %d", a.RiskScore())
	}
}

func TestRiskLevels(t *testing.T) {
	cases := []struct {
		p    Permission
		want RiskLevel
	}{
		{Administrator, RiskCritical},
		{ManageGuild | SendMessages, RiskHigh},
		{BanMembers, RiskHigh},
		{ViewChannel | ReadMessageHistory, RiskModerate},
		{SendMessages | AddReactions, RiskLow},
		{None, RiskLow},
	}
	for _, c := range cases {
		if got := c.p.Level(); got != c.want {
			t.Errorf("Level(%s) = %s, want %s", c.p, got, c.want)
		}
	}
	names := map[RiskLevel]string{
		RiskLow: "low", RiskModerate: "moderate", RiskHigh: "high", RiskCritical: "critical",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("level %d = %q", l, l.String())
		}
	}
}

func TestRankByRisk(t *testing.T) {
	sets := []Permission{
		SendMessages,             // low
		Administrator,            // max
		ViewChannel | BanMembers, // middle
	}
	order := RankByRisk(sets)
	if len(order) != 3 || order[0] != 1 || order[2] != 0 {
		t.Errorf("order = %v", order)
	}
	// Stability on ties.
	ties := []Permission{SendMessages, SendMessages, SendMessages}
	got := RankByRisk(ties)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("tie order = %v", got)
	}
	if out := RankByRisk(nil); len(out) != 0 {
		t.Errorf("nil input = %v", out)
	}
}
