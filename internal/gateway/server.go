package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/platform"
)

// Server accepts bot connections and bridges them to the platform.
type Server struct {
	p  *platform.Platform
	ln net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	seenBots map[platform.ID]bool // for distinguishing reconnects
	closed   bool
	wg       sync.WaitGroup

	intercept func(bot *platform.User, method string, args map[string]any) error
	faults    FaultPolicy

	// rate limiting (zero = disabled)
	rateRPS   float64
	rateBurst float64

	// observability
	cConnections *obs.Counter
	cReconnects  *obs.Counter
	cEventsOut   *obs.Counter
	cRequests    *obs.Counter
	gSessions    *obs.Gauge
	journal      *journal.Journal

	// Logf receives connection-level diagnostics; defaults to a no-op.
	Logf func(format string, args ...any)
}

// SetObs points the server's metrics at a registry; by default they go
// to the process-wide one. Call it before bots connect.
func (s *Server) SetObs(r *obs.Registry) {
	reg := obs.Or(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cConnections = reg.Counter("gateway_connections_total")
	s.cReconnects = reg.Counter("gateway_reconnects_total")
	s.cEventsOut = reg.Counter("gateway_events_out_total")
	s.cRequests = reg.Counter("gateway_requests_total")
	s.gSessions = reg.Gauge("gateway_sessions")
}

// SetJournal attaches an event journal: every bot request denied for
// missing permissions is recorded as a permission_denied event carrying
// the bot's name and the attempted method. A nil journal disables
// emission.
func (s *Server) SetJournal(j *journal.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

func (s *Server) getJournal() *journal.Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}

// FaultPolicy lets a chaos harness interfere with the event stream:
// for each outbound event frame destined for a bot it may order the
// frame dropped or the whole session disconnected. Implementations
// must be safe for concurrent use. The interface is structural so the
// fault injector can satisfy it without the gateway importing it.
type FaultPolicy interface {
	EventFault(bot string) (drop, disconnect bool)
}

// SetFaultPolicy installs (or, with nil, removes) a fault policy
// consulted for every dispatched event frame.
func (s *Server) SetFaultPolicy(p FaultPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = p
}

func (s *Server) getFaults() FaultPolicy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// SetRateLimit enables per-session request throttling, like Discord's
// REST rate limits: bots may issue rps sustained requests per second
// with the given burst. Throttled requests receive a response whose
// error is ErrRateLimited and whose RetryAfterMS suggests a backoff.
func (s *Server) SetRateLimit(rps float64, burst int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rateRPS = rps
	s.rateBurst = float64(burst)
	if s.rateBurst <= 0 {
		s.rateBurst = 5
	}
}

// SetInterceptor installs a runtime policy hook consulted before every
// bot request. A non-nil error denies the request with that message.
// Discord ships no such enforcer (the paper's central observation);
// Slack/MS Teams-style platforms do — internal/enforcer implements one
// so the two models can be compared.
func (s *Server) SetInterceptor(f func(bot *platform.User, method string, args map[string]any) error) {
	s.mu.Lock()
	s.intercept = f
	s.mu.Unlock()
}

func (s *Server) interceptor() func(bot *platform.User, method string, args map[string]any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.intercept
}

// NewServer starts a gateway listening on addr (use "127.0.0.1:0" for an
// ephemeral port).
func NewServer(p *platform.Platform, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen: %w", err)
	}
	s := &Server{
		p:        p,
		ln:       ln,
		sessions: make(map[*session]struct{}),
		seenBots: make(map[platform.ID]bool),
		Logf:     func(string, ...any) {},
	}
	s.SetObs(nil)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address, e.g. to hand to bot clients.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and tears down every session.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range sessions {
		sess.close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// session is one authenticated bot connection.
type session struct {
	conn net.Conn
	bot  *platform.User
	sub  *platform.Subscription

	writeMu sync.Mutex
	enc     *json.Encoder

	rateMu     sync.Mutex
	rateTokens float64
	rateLast   time.Time

	closeOnce sync.Once
}

// throttled applies the server's per-session token bucket; it returns
// the suggested backoff when the request must be rejected.
func (s *Server) throttled(sess *session) (time.Duration, bool) {
	s.mu.Lock()
	rps, burst := s.rateRPS, s.rateBurst
	s.mu.Unlock()
	if rps <= 0 {
		return 0, false
	}
	sess.rateMu.Lock()
	defer sess.rateMu.Unlock()
	now := time.Now()
	if sess.rateLast.IsZero() {
		sess.rateTokens = burst
	} else {
		sess.rateTokens += now.Sub(sess.rateLast).Seconds() * rps
		if sess.rateTokens > burst {
			sess.rateTokens = burst
		}
	}
	sess.rateLast = now
	if sess.rateTokens < 1 {
		deficit := 1 - sess.rateTokens
		return time.Duration(deficit / rps * float64(time.Second)), true
	}
	sess.rateTokens--
	return 0, false
}

func (sess *session) send(f Frame) error {
	sess.writeMu.Lock()
	defer sess.writeMu.Unlock()
	return sess.enc.Encode(f)
}

func (sess *session) close() {
	sess.closeOnce.Do(func() { sess.conn.Close() })
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))

	// First frame must identify within a deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hello Frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if hello.Op != OpIdentify {
		json.NewEncoder(conn).Encode(Frame{Op: OpError, Err: "expected identify"})
		return
	}
	bot, err := s.p.BotByToken(hello.Token)
	if err != nil {
		json.NewEncoder(conn).Encode(Frame{Op: OpError, Err: "invalid token"})
		return
	}

	sess := &session{conn: conn, bot: bot, enc: json.NewEncoder(conn)}
	// Deliver only events in guilds this bot belongs to, and not the
	// bot's own messages (Discord bots receive their own messages, but
	// our honeypot bots never need the echo; suppressing it avoids
	// self-trigger loops).
	sess.sub = s.p.Subscribe(256, func(e platform.Event) bool {
		if e.Type == platform.EventMessageCreate && e.UserID == bot.ID {
			return false
		}
		// Interactions are addressed to one bot; other bots in the
		// guild never see them.
		if e.Type == platform.EventInteractionCreate {
			return e.Interaction != nil && e.Interaction.BotID == bot.ID
		}
		return s.p.IsMember(e.GuildID, bot.ID)
	})
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.p.Unsubscribe(sess.sub)
		return
	}
	s.sessions[sess] = struct{}{}
	s.cConnections.Inc()
	if s.seenBots[bot.ID] {
		s.cReconnects.Inc()
	}
	s.seenBots[bot.ID] = true
	s.gSessions.Add(1)
	cEventsOut, cRequests := s.cEventsOut, s.cRequests
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.gSessions.Add(-1)
		s.mu.Unlock()
		s.p.Unsubscribe(sess.sub)
		sess.close()
	}()

	var guilds []string
	for _, gid := range s.p.GuildsOf(bot.ID) {
		guilds = append(guilds, gid.String())
	}
	if err := sess.send(Frame{Op: OpReady, BotID: bot.ID.String(), BotName: bot.Name, GuildIDs: guilds}); err != nil {
		return
	}

	// Pump events to the client.
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case e, ok := <-sess.sub.C:
				if !ok {
					return
				}
				if fp := s.getFaults(); fp != nil {
					drop, disconnect := fp.EventFault(bot.Name)
					if disconnect {
						sess.close()
						return
					}
					if drop {
						continue
					}
				}
				f := Frame{Op: OpDispatch, Type: string(e.Type), Event: encodeEvent(s.p, e)}
				if err := sess.send(f); err != nil {
					sess.close()
					return
				}
				cEventsOut.Inc()
			case <-done:
				return
			}
		}
	}()

	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		switch f.Op {
		case OpHeartbeat:
			if err := sess.send(Frame{Op: OpHeartbeatAck, Seq: f.Seq}); err != nil {
				return
			}
		case OpRequest:
			cRequests.Inc()
			if wait, limited := s.throttled(sess); limited {
				resp := Frame{Op: OpResponse, ID: f.ID, Err: ErrRateLimited,
					RetryAfterMS: int64(wait / time.Millisecond)}
				if resp.RetryAfterMS < 1 {
					resp.RetryAfterMS = 1
				}
				if err := sess.send(resp); err != nil {
					return
				}
				continue
			}
			resp := s.handleRequest(bot, f)
			if err := sess.send(resp); err != nil {
				return
			}
		default:
			sess.send(Frame{Op: OpError, Err: "unexpected op " + string(f.Op)})
		}
	}
}

func argString(args map[string]any, key string) string {
	v, _ := args[key].(string)
	return v
}

func argID(args map[string]any, key string) platform.ID {
	id, err := platform.ParseID(argString(args, key))
	if err != nil {
		return platform.Nil
	}
	return id
}

func argInt(args map[string]any, key string) int {
	switch v := args[key].(type) {
	case float64:
		return int(v)
	case string:
		id, _ := platform.ParseID(v)
		return int(id)
	default:
		return 0
	}
}

// handleRequest executes one REST-style method as the authenticated bot.
// Crucially, the platform checks only the BOT's permissions here — there
// is no notion of "the user who asked the bot to do this", which is the
// Discord design gap the paper studies.
func (s *Server) handleRequest(bot *platform.User, f Frame) Frame {
	resp := Frame{Op: OpResponse, ID: f.ID}
	fail := func(err error) Frame {
		if errors.Is(err, platform.ErrPermissionDenied) {
			s.getJournal().Emit(journal.Event{
				Kind:      journal.KindPermissionDenied,
				Component: "gateway",
				Bot:       bot.Name,
				Fields:    map[string]any{"method": f.Method, "bot_account_id": bot.ID.String()},
			})
		}
		resp.OK = false
		resp.Err = err.Error()
		return resp
	}
	ok := func(result map[string]any) Frame {
		resp.OK = true
		resp.Result = result
		return resp
	}

	if hook := s.interceptor(); hook != nil {
		if err := hook(bot, f.Method, f.Args); err != nil {
			// Runtime-policy denials (the enforcer) are permission
			// denials too, just decided by the interceptor rather than
			// the platform's static permission set.
			s.getJournal().Emit(journal.Event{
				Kind:      journal.KindPermissionDenied,
				Component: "gateway",
				Bot:       bot.Name,
				Fields:    map[string]any{"method": f.Method, "policy": err.Error()},
			})
			return fail(err)
		}
	}

	switch f.Method {
	case MethodSendMessage:
		var atts []platform.Attachment
		if raw, found := f.Args["attachments"]; found {
			blob, _ := json.Marshal(raw)
			var was []WireAttachment
			_ = json.Unmarshal(blob, &was)
			for _, wa := range was {
				atts = append(atts, platform.Attachment{Filename: wa.Filename, ContentType: wa.ContentType})
			}
		}
		if data := argString(f.Args, "attachment_data"); data != "" && len(atts) > 0 {
			atts[0].Data = decodeData(data)
		}
		msg, err := s.p.SendMessage(bot.ID, argID(f.Args, "channel_id"), argString(f.Args, "content"), atts...)
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"message_id": msg.ID.String()})

	case MethodHistory:
		msgs, err := s.p.History(bot.ID, argID(f.Args, "channel_id"), argInt(f.Args, "limit"))
		if err != nil {
			return fail(err)
		}
		out := make([]*WireMessage, 0, len(msgs))
		for _, m := range msgs {
			out = append(out, encodeMessage(s.p, m))
		}
		blob, _ := json.Marshal(out)
		var generic []any
		_ = json.Unmarshal(blob, &generic)
		return ok(map[string]any{"messages": generic})

	case MethodGuilds:
		var ids []string
		for _, gid := range s.p.GuildsOf(bot.ID) {
			ids = append(ids, gid.String())
		}
		return ok(map[string]any{"guild_ids": strings.Join(ids, ",")})

	case MethodGuildInfo:
		info, err := s.p.GuildSummary(argID(f.Args, "guild_id"), bot.ID)
		if err != nil {
			return fail(err)
		}
		chans := make([]any, 0, len(info.Channels))
		for _, ch := range info.Channels {
			chans = append(chans, map[string]any{
				"id": ch.ID.String(), "name": ch.Name, "kind": ch.Kind.String(),
			})
		}
		return ok(map[string]any{
			"name": info.Name, "members": float64(info.Members), "channels": chans,
		})

	case MethodKick:
		if err := s.p.KickMember(bot.ID, argID(f.Args, "guild_id"), argID(f.Args, "user_id")); err != nil {
			return fail(err)
		}
		return ok(nil)

	case MethodBan:
		if err := s.p.BanMember(bot.ID, argID(f.Args, "guild_id"), argID(f.Args, "user_id")); err != nil {
			return fail(err)
		}
		return ok(nil)

	case MethodEditNickname:
		if err := s.p.EditNickname(bot.ID, argID(f.Args, "guild_id"), argID(f.Args, "user_id"), argString(f.Args, "nick")); err != nil {
			return fail(err)
		}
		return ok(nil)

	case MethodGetAttachment:
		att, err := s.p.Attachment(bot.ID, argID(f.Args, "channel_id"), argID(f.Args, "message_id"), argID(f.Args, "attachment_id"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{
			"filename": att.Filename, "content_type": att.ContentType,
			"data": encodeData(att.Data),
		})

	case MethodPermissions:
		perms, err := s.p.Permissions(argID(f.Args, "guild_id"), bot.ID)
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"value": perms.Value(), "names": strings.Join(perms.Names(), ",")})

	case MethodMemberPermissions:
		gid := argID(f.Args, "guild_id")
		if !s.p.IsMember(gid, bot.ID) {
			return fail(platform.ErrNotMember)
		}
		perms, err := s.p.Permissions(gid, argID(f.Args, "user_id"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"value": perms.Value()})

	case MethodRespondInteraction:
		msg, err := s.p.RespondInteraction(bot.ID,
			argID(f.Args, "guild_id"), argID(f.Args, "interaction_id"),
			argString(f.Args, "content"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"message_id": msg.ID.String()})

	case MethodCreateWebhook:
		wh, err := s.p.CreateWebhook(bot.ID, argID(f.Args, "channel_id"), argString(f.Args, "name"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"webhook_id": wh.ID.String(), "token": wh.Token})

	case MethodVoiceStates:
		states, err := s.p.VoiceStates(bot.ID, argID(f.Args, "guild_id"))
		if err != nil {
			return fail(err)
		}
		out := make([]any, 0, len(states))
		for _, st := range states {
			out = append(out, map[string]any{
				"user_id": st.UserID.String(), "channel_id": st.ChannelID.String(),
				"muted": st.Muted, "deafened": st.Deafened,
			})
		}
		return ok(map[string]any{"states": out})

	default:
		return fail(errors.New("gateway: unknown method " + f.Method))
	}
}
