package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/platform"
)

// Server accepts bot connections and bridges them to the platform.
type Server struct {
	p  *platform.Platform
	ln net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	seenBots map[platform.ID]bool // for distinguishing reconnects
	closed   bool
	wg       sync.WaitGroup

	intercept func(bot *platform.User, method string, args map[string]any) error
	faults    FaultPolicy

	// traffic plane (admission, backpressure, liveness)
	limits      Limits
	admitted    int // connections holding an admission slot (incl. handshakes)
	identBucket bucket
	tenants     map[platform.ID]*bucket
	tenantIdent map[platform.ID]*bucket

	// per-session rate limiting (zero = disabled)
	rateRPS   float64
	rateBurst float64

	// observability
	cConnections *obs.Counter
	cReconnects  *obs.Counter
	cEventsOut   *obs.Counter
	cRequests    *obs.Counter
	cShed        *obs.Counter
	cShedBy      map[string]*obs.Counter
	cDropped     *obs.Counter
	cSubDropped  *obs.Counter
	cReaped      *obs.Counter
	cSlowClosed  *obs.Counter
	cThrottled   *obs.Counter
	cTenantThrot *obs.Counter
	gSessions    *obs.Gauge
	journal      *journal.Journal

	// Logf receives connection-level diagnostics; defaults to a no-op.
	Logf func(format string, args ...any)
}

// SetObs points the server's metrics at a registry; by default they go
// to the process-wide one. Call it before bots connect.
func (s *Server) SetObs(r *obs.Registry) {
	reg := obs.Or(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cConnections = reg.Counter("gateway_connections_total")
	s.cReconnects = reg.Counter("gateway_reconnects_total")
	s.cEventsOut = reg.Counter("gateway_events_out_total")
	s.cRequests = reg.Counter("gateway_requests_total")
	s.cShed = reg.Counter("gateway_sessions_shed_total")
	s.cShedBy = make(map[string]*obs.Counter, len(ShedReasons))
	for _, reason := range ShedReasons {
		s.cShedBy[reason] = reg.Counter("gateway_sessions_shed_" + reason + "_total")
	}
	s.cDropped = reg.Counter("gateway_events_dropped_total")
	s.cSubDropped = reg.Counter("gateway_sub_events_dropped_total")
	s.cReaped = reg.Counter("gateway_sessions_reaped_total")
	s.cSlowClosed = reg.Counter("gateway_slow_consumer_disconnects_total")
	s.cThrottled = reg.Counter("gateway_requests_throttled_total")
	s.cTenantThrot = reg.Counter("gateway_tenant_throttled_total")
	s.gSessions = reg.Gauge("gateway_sessions")
}

// SetJournal attaches an event journal: session lifecycle
// (session_opened/session_closed), shedding (session_shed), slow-consumer
// losses (events_dropped), and every bot request denied for missing
// permissions (permission_denied) are recorded. A nil journal disables
// emission.
func (s *Server) SetJournal(j *journal.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

func (s *Server) getJournal() *journal.Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}

// ShedReasons enumerates every reason the gateway refuses a connection
// with a shedding frame, in the order reports render them. Each has a
// dedicated counter (gateway_sessions_shed_<reason>_total) alongside the
// aggregate gateway_sessions_shed_total, so shed accounting can be
// reconciled per cause.
var ShedReasons = []string{"max_sessions", "identify_rate", "tenant_rate"}

// FaultPolicy lets a chaos harness interfere with the event stream:
// for each outbound event frame destined for a bot it may order the
// frame dropped or the whole session disconnected. Implementations
// must be safe for concurrent use. The interface is structural so the
// fault injector can satisfy it without the gateway importing it.
type FaultPolicy interface {
	EventFault(bot string) (drop, disconnect bool)
}

// SetFaultPolicy installs (or, with nil, removes) a fault policy
// consulted for every dispatched event frame.
func (s *Server) SetFaultPolicy(p FaultPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = p
}

func (s *Server) getFaults() FaultPolicy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// SetRateLimit enables per-session request throttling, like Discord's
// REST rate limits: bots may issue rps sustained requests per second
// with the given burst. Throttled requests receive a response whose
// error is ErrRateLimited and whose RetryAfterMS suggests a backoff.
func (s *Server) SetRateLimit(rps float64, burst int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rateRPS = rps
	s.rateBurst = float64(burst)
	if s.rateBurst <= 0 {
		s.rateBurst = 5
	}
}

// SetLimits installs the traffic-plane configuration: admission caps,
// identify throttling, per-tenant rate limits, bounded send queues with
// a slow-consumer policy, write deadlines, and heartbeat liveness.
// Call it before bots connect; already-established sessions keep the
// limits they were admitted under.
func (s *Server) SetLimits(l Limits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limits = l.withDefaults()
}

// Limits reports the active traffic-plane configuration.
func (s *Server) Limits() Limits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limits
}

// SetInterceptor installs a runtime policy hook consulted before every
// bot request. A non-nil error denies the request with that message.
// Discord ships no such enforcer (the paper's central observation);
// Slack/MS Teams-style platforms do — internal/enforcer implements one
// so the two models can be compared.
func (s *Server) SetInterceptor(f func(bot *platform.User, method string, args map[string]any) error) {
	s.mu.Lock()
	s.intercept = f
	s.mu.Unlock()
}

func (s *Server) interceptor() func(bot *platform.User, method string, args map[string]any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.intercept
}

// NewServer starts a gateway listening on addr (use "127.0.0.1:0" for an
// ephemeral port).
func NewServer(p *platform.Platform, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen: %w", err)
	}
	s := &Server{
		p:           p,
		ln:          ln,
		sessions:    make(map[*session]struct{}),
		seenBots:    make(map[platform.ID]bool),
		tenants:     make(map[platform.ID]*bucket),
		tenantIdent: make(map[platform.ID]*bucket),
		limits:      Limits{}.withDefaults(),
		Logf:        func(string, ...any) {},
	}
	s.SetObs(nil)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address, e.g. to hand to bot clients.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and tears down every session.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range sessions {
		sess.closeWith("server_closed")
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// admit reserves an admission slot for a fresh connection, applying the
// session cap and the identify-rate throttle. On refusal it returns the
// shed reason and a backoff hint for the client.
func (s *Server) admit() (limits Limits, reason string, retryAfter time.Duration, ok bool) {
	s.mu.Lock()
	limits = s.limits
	if s.closed {
		s.mu.Unlock()
		return limits, "server_closed", 0, false
	}
	if limits.MaxSessions > 0 && s.admitted >= limits.MaxSessions {
		s.mu.Unlock()
		return limits, "max_sessions", 250 * time.Millisecond, false
	}
	s.admitted++
	s.mu.Unlock()
	if wait, limited := s.identBucket.take(limits.IdentifyRPS, float64(limits.IdentifyBurst)); limited {
		s.releaseAdmit()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		return limits, "identify_rate", wait, false
	}
	return limits, "", 0, true
}

func (s *Server) releaseAdmit() {
	s.mu.Lock()
	s.admitted--
	s.mu.Unlock()
}

// shed refuses a connection with an explicit shedding frame so clients
// can distinguish overload (back off and retry) from rejection.
func (s *Server) shed(conn net.Conn, enc *json.Encoder, reason string, retryAfter, writeTimeout time.Duration) {
	s.cShed.Inc()
	if c, ok := s.cShedBy[reason]; ok {
		c.Inc()
	}
	s.getJournal().Emit(journal.Event{
		Kind:      journal.KindSessionShed,
		Component: "gateway",
		Fields: map[string]any{
			"reason":         reason,
			"remote":         conn.RemoteAddr().String(),
			"retry_after_ms": retryAfter.Milliseconds(),
		},
	})
	writeFrame(conn, enc, Frame{
		Op: OpError, Err: ErrShedding, RetryAfterMS: retryAfter.Milliseconds(),
	}, writeTimeout)
}

// tenantBucket returns the shared rate bucket for a bot owner.
func (s *Server) tenantBucket(owner platform.ID) *bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.tenants[owner]
	if !ok {
		b = &bucket{}
		s.tenants[owner] = b
	}
	return b
}

// tenantIdentBucket returns the per-owner identify throttle bucket,
// distinct from the request-path tenant bucket so reconnect storms and
// request floods are limited (and accounted) independently.
func (s *Server) tenantIdentBucket(owner platform.ID) *bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.tenantIdent[owner]
	if !ok {
		b = &bucket{}
		s.tenantIdent[owner] = b
	}
	return b
}

// writeFrame encodes one frame under a write deadline — the only way
// any byte ever leaves the gateway. Pre-session handshake errors and
// shed refusals use it directly; established sessions funnel every
// frame through their writer goroutine, which also lands here.
func writeFrame(conn net.Conn, enc *json.Encoder, f Frame, timeout time.Duration) error {
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return enc.Encode(f)
}

// session is one authenticated bot connection. A dedicated writer
// goroutine owns the socket's write side; everything else enqueues into
// one of two bounded channels — control (ready frames, responses, acks;
// enqueue blocks with a deadline) and events (dispatch frames; the
// slow-consumer policy decides what a full queue means).
type session struct {
	srv  *Server
	conn net.Conn
	bot  *platform.User
	sub  *platform.Subscription
	enc  *json.Encoder

	limits  Limits
	control chan Frame
	events  chan Frame
	done    chan struct{}

	lastRecv atomic.Int64 // unix nanos of the last frame read
	sent     atomic.Int64 // frames written to the socket
	dropped  atomic.Int64 // dispatch frames evicted by drop-oldest

	rate bucket

	closeOnce   sync.Once
	reasonMu    sync.Mutex
	closeReason string
}

var errSessionClosed = errors.New("gateway: session closed")

// closeWith tears the session down once, remembering why for the
// session_closed journal event.
func (sess *session) closeWith(reason string) {
	sess.closeOnce.Do(func() {
		sess.reasonMu.Lock()
		sess.closeReason = reason
		sess.reasonMu.Unlock()
		close(sess.done)
		sess.conn.Close()
	})
}

func (sess *session) reason() string {
	sess.reasonMu.Lock()
	defer sess.reasonMu.Unlock()
	if sess.closeReason == "" {
		return "peer_closed"
	}
	return sess.closeReason
}

// writeLoop is the session's single socket writer. Control frames are
// preferred over event frames so a flood of dispatches can never starve
// a response or heartbeat ack.
func (sess *session) writeLoop() {
	for {
		select {
		case f := <-sess.control:
			if !sess.write(f) {
				return
			}
		default:
			select {
			case f := <-sess.control:
				if !sess.write(f) {
					return
				}
			case f := <-sess.events:
				if !sess.write(f) {
					return
				}
				sess.srv.cEventsOut.Inc()
			case <-sess.done:
				return
			}
		}
	}
}

func (sess *session) write(f Frame) bool {
	if err := writeFrame(sess.conn, sess.enc, f, sess.limits.WriteTimeout); err != nil {
		sess.closeWith("write_error")
		return false
	}
	sess.sent.Add(1)
	return true
}

// send enqueues a control frame (ready, response, ack, error), blocking
// up to the write timeout. A session that cannot absorb its own control
// traffic within the deadline is disconnected.
func (sess *session) send(f Frame) error {
	select {
	case sess.control <- f:
		return nil
	case <-sess.done:
		return errSessionClosed
	default:
	}
	t := time.NewTimer(sess.limits.WriteTimeout)
	defer t.Stop()
	select {
	case sess.control <- f:
		return nil
	case <-sess.done:
		return errSessionClosed
	case <-t.C:
		sess.srv.cSlowClosed.Inc()
		sess.closeWith("slow_consumer")
		return errSessionClosed
	}
}

// sendEvent enqueues a dispatch frame under the slow-consumer policy.
func (sess *session) sendEvent(f Frame) error {
	select {
	case sess.events <- f:
		return nil
	case <-sess.done:
		return errSessionClosed
	default:
	}
	switch sess.limits.SlowConsumer {
	case SlowDropOldest:
		for {
			select {
			case sess.events <- f:
				return nil
			case <-sess.done:
				return errSessionClosed
			default:
			}
			// Evict the oldest queued dispatch to make room; the events
			// channel only ever carries dispatch frames, so control
			// traffic can never be a casualty.
			select {
			case <-sess.events:
				sess.noteDropped(1)
			default:
			}
		}
	case SlowDisconnect:
		sess.srv.cSlowClosed.Inc()
		sess.closeWith("slow_consumer")
		return errSessionClosed
	default: // SlowBlock
		t := time.NewTimer(sess.limits.WriteTimeout)
		defer t.Stop()
		select {
		case sess.events <- f:
			return nil
		case <-sess.done:
			return errSessionClosed
		case <-t.C:
			sess.srv.cSlowClosed.Inc()
			sess.closeWith("slow_consumer")
			return errSessionClosed
		}
	}
}

func (sess *session) noteDropped(n int64) {
	sess.dropped.Add(n)
	sess.srv.cDropped.Add(n)
}

// reapLoop enforces server-side heartbeat liveness: a session that goes
// silent past the heartbeat timeout is disconnected, freeing its
// admission slot for a live client.
func (sess *session) reapLoop(timeout time.Duration) {
	tick := timeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-sess.done:
			return
		case <-t.C:
			last := time.Unix(0, sess.lastRecv.Load())
			if time.Since(last) > timeout {
				sess.srv.cReaped.Inc()
				sess.closeWith("heartbeat_timeout")
				return
			}
		}
	}
}

// throttled applies the per-session token bucket; it returns the
// suggested backoff when the request must be rejected.
func (s *Server) throttled(sess *session) (time.Duration, bool) {
	s.mu.Lock()
	rps, burst := s.rateRPS, s.rateBurst
	s.mu.Unlock()
	return sess.rate.take(rps, burst)
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))

	limits, reason, retryAfter, ok := s.admit()
	if !ok {
		if reason != "server_closed" {
			s.shed(conn, enc, reason, retryAfter, limits.WriteTimeout)
		}
		return
	}
	defer s.releaseAdmit()

	// First frame must identify within a deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hello Frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if hello.Op != OpIdentify {
		writeFrame(conn, enc, Frame{Op: OpError, Err: "expected identify"}, limits.WriteTimeout)
		return
	}
	bot, err := s.p.BotByToken(hello.Token)
	if err != nil {
		writeFrame(conn, enc, Frame{Op: OpError, Err: "invalid token"}, limits.WriteTimeout)
		return
	}
	if limits.TenantIdentifyRPS > 0 {
		tb := s.tenantIdentBucket(bot.OwnerID)
		if wait, limited := tb.take(limits.TenantIdentifyRPS, float64(limits.TenantIdentifyBurst)); limited {
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			s.shed(conn, enc, "tenant_rate", wait, limits.WriteTimeout)
			return
		}
	}

	sess := &session{
		srv:     s,
		conn:    conn,
		bot:     bot,
		enc:     enc,
		limits:  limits,
		control: make(chan Frame, 32),
		events:  make(chan Frame, limits.SendQueue),
		done:    make(chan struct{}),
	}
	sess.lastRecv.Store(time.Now().UnixNano())
	// Deliver only events in guilds this bot belongs to, and not the
	// bot's own messages (Discord bots receive their own messages, but
	// our honeypot bots never need the echo; suppressing it avoids
	// self-trigger loops).
	sess.sub = s.p.Subscribe(256, func(e platform.Event) bool {
		if e.Type == platform.EventMessageCreate && e.UserID == bot.ID {
			return false
		}
		// Interactions are addressed to one bot; other bots in the
		// guild never see them.
		if e.Type == platform.EventInteractionCreate {
			return e.Interaction != nil && e.Interaction.BotID == bot.ID
		}
		return s.p.IsMember(e.GuildID, bot.ID)
	})
	// Upstream backpressure accounting: the platform bus drops events
	// for subscribers whose buffer is full (a pump stalled by SlowBlock);
	// surface those losses on the same counter family.
	sess.sub.SetDropHook(func(int) { s.cSubDropped.Inc() })
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.p.Unsubscribe(sess.sub)
		return
	}
	s.sessions[sess] = struct{}{}
	s.cConnections.Inc()
	if s.seenBots[bot.ID] {
		s.cReconnects.Inc()
	}
	s.seenBots[bot.ID] = true
	s.gSessions.Add(1)
	nSessions := len(s.sessions)
	s.mu.Unlock()
	s.getJournal().Emit(journal.Event{
		Kind:      journal.KindSessionOpened,
		Component: "gateway",
		Bot:       bot.Name,
		Fields: map[string]any{
			"bot_account_id": bot.ID.String(),
			"remote":         conn.RemoteAddr().String(),
			"sessions":       nSessions,
		},
	})
	defer func() {
		sess.closeWith("peer_closed")
		s.mu.Lock()
		delete(s.sessions, sess)
		s.gSessions.Add(-1)
		s.mu.Unlock()
		s.p.Unsubscribe(sess.sub)
		if d := sess.dropped.Load(); d > 0 {
			s.getJournal().Emit(journal.Event{
				Kind:      journal.KindEventsDropped,
				Component: "gateway",
				Bot:       bot.Name,
				Fields: map[string]any{
					"dropped": d,
					"policy":  sess.limits.SlowConsumer.String(),
				},
			})
		}
		s.getJournal().Emit(journal.Event{
			Kind:      journal.KindSessionClosed,
			Component: "gateway",
			Bot:       bot.Name,
			Fields: map[string]any{
				"reason":         sess.reason(),
				"frames_sent":    sess.sent.Load(),
				"events_dropped": sess.dropped.Load(),
				"sub_dropped":    sess.sub.Dropped(),
			},
		})
	}()

	go sess.writeLoop()
	if limits.HeartbeatTimeout > 0 {
		go sess.reapLoop(limits.HeartbeatTimeout)
	}

	var guilds []string
	for _, gid := range s.p.GuildsOf(bot.ID) {
		guilds = append(guilds, gid.String())
	}
	if err := sess.send(Frame{Op: OpReady, BotID: bot.ID.String(), BotName: bot.Name, GuildIDs: guilds}); err != nil {
		return
	}

	// Pump events from the platform subscription into the session's
	// bounded queue. The policy-governed enqueue means a stalled client
	// can never wedge this goroutine for longer than the write timeout.
	go func() {
		for {
			select {
			case e, ok := <-sess.sub.C:
				if !ok {
					return
				}
				if fp := s.getFaults(); fp != nil {
					drop, disconnect := fp.EventFault(bot.Name)
					if disconnect {
						sess.closeWith("fault_disconnect")
						return
					}
					if drop {
						continue
					}
				}
				f := Frame{Op: OpDispatch, Type: string(e.Type), Event: encodeEvent(s.p, e)}
				if err := sess.sendEvent(f); err != nil {
					return
				}
			case <-sess.done:
				return
			}
		}
	}()

	tenant := s.tenantBucket(bot.OwnerID)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		sess.lastRecv.Store(time.Now().UnixNano())
		switch f.Op {
		case OpHeartbeat:
			if err := sess.send(Frame{Op: OpHeartbeatAck, Seq: f.Seq}); err != nil {
				return
			}
		case OpRequest:
			s.cRequests.Inc()
			wait, limited := s.throttled(sess)
			if !limited {
				var tWait time.Duration
				if tWait, limited = tenant.take(limits.TenantRPS, float64(limits.TenantBurst)); limited {
					s.cTenantThrot.Inc()
					wait = tWait
				}
			}
			if limited {
				s.cThrottled.Inc()
				resp := Frame{Op: OpResponse, ID: f.ID, Err: ErrRateLimited,
					RetryAfterMS: int64(wait / time.Millisecond)}
				if resp.RetryAfterMS < 1 {
					resp.RetryAfterMS = 1
				}
				if err := sess.send(resp); err != nil {
					return
				}
				continue
			}
			resp := s.handleRequest(bot, f)
			if err := sess.send(resp); err != nil {
				return
			}
		default:
			sess.send(Frame{Op: OpError, Err: "unexpected op " + string(f.Op)})
		}
	}
}

func argString(args map[string]any, key string) string {
	v, _ := args[key].(string)
	return v
}

func argID(args map[string]any, key string) platform.ID {
	id, err := platform.ParseID(argString(args, key))
	if err != nil {
		return platform.Nil
	}
	return id
}

func argInt(args map[string]any, key string) int {
	switch v := args[key].(type) {
	case float64:
		return int(v)
	case string:
		id, _ := platform.ParseID(v)
		return int(id)
	default:
		return 0
	}
}

// handleRequest executes one REST-style method as the authenticated bot.
// Crucially, the platform checks only the BOT's permissions here — there
// is no notion of "the user who asked the bot to do this", which is the
// Discord design gap the paper studies.
func (s *Server) handleRequest(bot *platform.User, f Frame) Frame {
	resp := Frame{Op: OpResponse, ID: f.ID}
	fail := func(err error) Frame {
		if errors.Is(err, platform.ErrPermissionDenied) {
			s.getJournal().Emit(journal.Event{
				Kind:      journal.KindPermissionDenied,
				Component: "gateway",
				Bot:       bot.Name,
				Fields:    map[string]any{"method": f.Method, "bot_account_id": bot.ID.String()},
			})
		}
		resp.OK = false
		resp.Err = err.Error()
		return resp
	}
	ok := func(result map[string]any) Frame {
		resp.OK = true
		resp.Result = result
		return resp
	}

	if hook := s.interceptor(); hook != nil {
		if err := hook(bot, f.Method, f.Args); err != nil {
			// Runtime-policy denials (the enforcer) are permission
			// denials too, just decided by the interceptor rather than
			// the platform's static permission set.
			s.getJournal().Emit(journal.Event{
				Kind:      journal.KindPermissionDenied,
				Component: "gateway",
				Bot:       bot.Name,
				Fields:    map[string]any{"method": f.Method, "policy": err.Error()},
			})
			return fail(err)
		}
	}

	switch f.Method {
	case MethodSendMessage:
		var atts []platform.Attachment
		if raw, found := f.Args["attachments"]; found {
			blob, _ := json.Marshal(raw)
			var was []WireAttachment
			_ = json.Unmarshal(blob, &was)
			for _, wa := range was {
				atts = append(atts, platform.Attachment{Filename: wa.Filename, ContentType: wa.ContentType})
			}
		}
		if data := argString(f.Args, "attachment_data"); data != "" && len(atts) > 0 {
			atts[0].Data = decodeData(data)
		}
		msg, err := s.p.SendMessage(bot.ID, argID(f.Args, "channel_id"), argString(f.Args, "content"), atts...)
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"message_id": msg.ID.String()})

	case MethodHistory:
		msgs, err := s.p.History(bot.ID, argID(f.Args, "channel_id"), argInt(f.Args, "limit"))
		if err != nil {
			return fail(err)
		}
		out := make([]*WireMessage, 0, len(msgs))
		for _, m := range msgs {
			out = append(out, encodeMessage(s.p, m))
		}
		blob, _ := json.Marshal(out)
		var generic []any
		_ = json.Unmarshal(blob, &generic)
		return ok(map[string]any{"messages": generic})

	case MethodGuilds:
		var ids []string
		for _, gid := range s.p.GuildsOf(bot.ID) {
			ids = append(ids, gid.String())
		}
		return ok(map[string]any{"guild_ids": strings.Join(ids, ",")})

	case MethodGuildInfo:
		info, err := s.p.GuildSummary(argID(f.Args, "guild_id"), bot.ID)
		if err != nil {
			return fail(err)
		}
		chans := make([]any, 0, len(info.Channels))
		for _, ch := range info.Channels {
			chans = append(chans, map[string]any{
				"id": ch.ID.String(), "name": ch.Name, "kind": ch.Kind.String(),
			})
		}
		return ok(map[string]any{
			"name": info.Name, "members": float64(info.Members), "channels": chans,
		})

	case MethodKick:
		if err := s.p.KickMember(bot.ID, argID(f.Args, "guild_id"), argID(f.Args, "user_id")); err != nil {
			return fail(err)
		}
		return ok(nil)

	case MethodBan:
		if err := s.p.BanMember(bot.ID, argID(f.Args, "guild_id"), argID(f.Args, "user_id")); err != nil {
			return fail(err)
		}
		return ok(nil)

	case MethodEditNickname:
		if err := s.p.EditNickname(bot.ID, argID(f.Args, "guild_id"), argID(f.Args, "user_id"), argString(f.Args, "nick")); err != nil {
			return fail(err)
		}
		return ok(nil)

	case MethodGetAttachment:
		att, err := s.p.Attachment(bot.ID, argID(f.Args, "channel_id"), argID(f.Args, "message_id"), argID(f.Args, "attachment_id"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{
			"filename": att.Filename, "content_type": att.ContentType,
			"data": encodeData(att.Data),
		})

	case MethodPermissions:
		perms, err := s.p.Permissions(argID(f.Args, "guild_id"), bot.ID)
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"value": perms.Value(), "names": strings.Join(perms.Names(), ",")})

	case MethodMemberPermissions:
		gid := argID(f.Args, "guild_id")
		if !s.p.IsMember(gid, bot.ID) {
			return fail(platform.ErrNotMember)
		}
		perms, err := s.p.Permissions(gid, argID(f.Args, "user_id"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"value": perms.Value()})

	case MethodRespondInteraction:
		msg, err := s.p.RespondInteraction(bot.ID,
			argID(f.Args, "guild_id"), argID(f.Args, "interaction_id"),
			argString(f.Args, "content"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"message_id": msg.ID.String()})

	case MethodCreateWebhook:
		wh, err := s.p.CreateWebhook(bot.ID, argID(f.Args, "channel_id"), argString(f.Args, "name"))
		if err != nil {
			return fail(err)
		}
		return ok(map[string]any{"webhook_id": wh.ID.String(), "token": wh.Token})

	case MethodVoiceStates:
		states, err := s.p.VoiceStates(bot.ID, argID(f.Args, "guild_id"))
		if err != nil {
			return fail(err)
		}
		out := make([]any, 0, len(states))
		for _, st := range states {
			out = append(out, map[string]any{
				"user_id": st.UserID.String(), "channel_id": st.ChannelID.String(),
				"muted": st.Muted, "deafened": st.Deafened,
			})
		}
		return ok(map[string]any{"states": out})

	default:
		return fail(errors.New("gateway: unknown method " + f.Method))
	}
}
