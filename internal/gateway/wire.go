// Package gateway exposes the platform to chatbots over a TCP
// line-delimited JSON protocol, mirroring the role of Discord's gateway
// plus a minimal REST surface multiplexed on the same connection.
//
// A session begins with an identify frame carrying the bot token. The
// server then pushes dispatch frames for events in guilds the bot
// belongs to, answers request frames (send message, read history, kick,
// ban, …) with response frames, and expects periodic heartbeats.
package gateway

import (
	"encoding/base64"

	"repro/internal/platform"
)

// Op is the frame opcode.
type Op string

// Frame opcodes.
const (
	OpIdentify     Op = "identify"
	OpReady        Op = "ready"
	OpDispatch     Op = "dispatch"
	OpHeartbeat    Op = "heartbeat"
	OpHeartbeatAck Op = "heartbeat_ack"
	OpRequest      Op = "request"
	OpResponse     Op = "response"
	OpError        Op = "error"
)

// Method names accepted in request frames.
const (
	MethodSendMessage   = "send_message"
	MethodHistory       = "history"
	MethodGuilds        = "guilds"
	MethodGuildInfo     = "guild_info"
	MethodKick          = "kick"
	MethodBan           = "ban"
	MethodEditNickname  = "edit_nickname"
	MethodGetAttachment = "get_attachment"
	MethodPermissions   = "permissions"
	// MethodMemberPermissions resolves another member's effective guild
	// permissions — what SDKs expose so bot code CAN check invoking
	// users. Whether bot code actually calls it is the paper's Table 3
	// question.
	MethodMemberPermissions = "member_permissions"
	// MethodVoiceStates exposes the guild's voice metadata — one of the
	// data classes Discord's policy says bots may access.
	MethodVoiceStates = "voice_states"
	// MethodRespondInteraction posts a bot's reply to a slash-command
	// interaction.
	MethodRespondInteraction = "respond_interaction"
	// MethodCreateWebhook mints a channel webhook (manage-webhooks).
	MethodCreateWebhook = "create_webhook"
)

// Frame is the single wire envelope. Fields are populated per opcode.
type Frame struct {
	Op    Op     `json:"op"`
	Token string `json:"token,omitempty"` // identify

	BotID    string   `json:"bot_id,omitempty"`   // ready
	BotName  string   `json:"bot_name,omitempty"` // ready
	GuildIDs []string `json:"guild_ids,omitempty"`

	Type  string     `json:"type,omitempty"`  // dispatch
	Event *WireEvent `json:"event,omitempty"` // dispatch

	Seq int64 `json:"seq,omitempty"` // heartbeat

	ID     int64          `json:"id,omitempty"`     // request/response correlation
	Method string         `json:"method,omitempty"` // request
	Args   map[string]any `json:"args,omitempty"`   // request

	OK     bool           `json:"ok,omitempty"`     // response
	Result map[string]any `json:"result,omitempty"` // response
	Err    string         `json:"error,omitempty"`  // response/error
	// RetryAfterMS, on a rate-limited response, tells the client how
	// long to back off before retrying — Discord's Retry-After.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrRateLimited is the error string carried by throttled responses.
const ErrRateLimited = "gateway: rate limited"

// ErrShedding is the error string carried by the OpError frame a
// connection receives when admission control refuses it (session cap
// reached or identify rate exceeded). RetryAfterMS on the same frame
// hints when to try again.
const ErrShedding = "gateway: shedding"

// WireEvent is the JSON shape of a platform event.
type WireEvent struct {
	GuildID     string           `json:"guild_id,omitempty"`
	ChannelID   string           `json:"channel_id,omitempty"`
	UserID      string           `json:"user_id,omitempty"`
	Message     *WireMessage     `json:"message,omitempty"`
	Interaction *WireInteraction `json:"interaction,omitempty"`
}

// WireInteraction is the JSON shape of a slash-command invocation. It
// carries the invoking user — the context prefix commands lack.
type WireInteraction struct {
	ID        string `json:"id"`
	GuildID   string `json:"guild_id"`
	ChannelID string `json:"channel_id"`
	UserID    string `json:"user_id"`
	Command   string `json:"command"`
	Args      string `json:"args,omitempty"`
}

// WireMessage is the JSON shape of a message.
type WireMessage struct {
	ID          string           `json:"id"`
	ChannelID   string           `json:"channel_id"`
	GuildID     string           `json:"guild_id"`
	AuthorID    string           `json:"author_id"`
	AuthorBot   bool             `json:"author_bot"`
	Content     string           `json:"content"`
	Attachments []WireAttachment `json:"attachments,omitempty"`
}

// WireAttachment describes an attachment without its payload; bots fetch
// payloads with the get_attachment method, like downloading from a CDN.
type WireAttachment struct {
	ID          string `json:"id"`
	Filename    string `json:"filename"`
	ContentType string `json:"content_type"`
	Size        int    `json:"size"`
}

func encodeMessage(p *platform.Platform, m *platform.Message) *WireMessage {
	wm := &WireMessage{
		ID:        m.ID.String(),
		ChannelID: m.ChannelID.String(),
		GuildID:   m.GuildID.String(),
		AuthorID:  m.AuthorID.String(),
		Content:   m.Content,
	}
	if u, err := p.UserByID(m.AuthorID); err == nil {
		wm.AuthorBot = u.IsBot()
	}
	for _, a := range m.Attachments {
		wm.Attachments = append(wm.Attachments, WireAttachment{
			ID: a.ID.String(), Filename: a.Filename,
			ContentType: a.ContentType, Size: len(a.Data),
		})
	}
	return wm
}

func encodeEvent(p *platform.Platform, e platform.Event) *WireEvent {
	we := &WireEvent{
		GuildID:   e.GuildID.String(),
		ChannelID: e.ChannelID.String(),
		UserID:    e.UserID.String(),
	}
	if e.Message != nil {
		we.Message = encodeMessage(p, e.Message)
	}
	if e.Interaction != nil {
		we.Interaction = &WireInteraction{
			ID:        e.Interaction.ID.String(),
			GuildID:   e.Interaction.GuildID.String(),
			ChannelID: e.Interaction.ChannelID.String(),
			UserID:    e.Interaction.UserID.String(),
			Command:   e.Interaction.Command,
			Args:      e.Interaction.Args,
		}
	}
	return we
}

func encodeData(b []byte) string { return base64.StdEncoding.EncodeToString(b) }
func decodeData(s string) []byte { b, _ := base64.StdEncoding.DecodeString(s); return b }
