package gateway

import (
	"fmt"
	"sync"
	"time"
)

// SlowConsumerPolicy names what the gateway does when a session's
// bounded event queue is full — the three classic answers to a reader
// that cannot keep up with its fan-in.
type SlowConsumerPolicy int

const (
	// SlowBlock parks the event pump up to Limits.WriteTimeout waiting
	// for queue space, then disconnects the session. Nothing is ever
	// silently lost, but a stalled client costs its own pump the wait.
	SlowBlock SlowConsumerPolicy = iota
	// SlowDropOldest evicts the oldest queued dispatch frame to make
	// room, counting the loss — the behaviour of a real-time feed where
	// fresh events beat stale ones.
	SlowDropOldest
	// SlowDisconnect drops the whole session the moment its queue
	// overflows — the strictest policy, trading connection churn for
	// zero per-session buffering debt.
	SlowDisconnect
)

// String names the policy as accepted by ParseSlowConsumerPolicy.
func (p SlowConsumerPolicy) String() string {
	switch p {
	case SlowDropOldest:
		return "drop-oldest"
	case SlowDisconnect:
		return "disconnect"
	default:
		return "block"
	}
}

// ParseSlowConsumerPolicy parses a policy name (block, drop-oldest,
// disconnect).
func ParseSlowConsumerPolicy(s string) (SlowConsumerPolicy, error) {
	switch s {
	case "", "block":
		return SlowBlock, nil
	case "drop-oldest":
		return SlowDropOldest, nil
	case "disconnect":
		return SlowDisconnect, nil
	default:
		return SlowBlock, fmt.Errorf("gateway: unknown slow-consumer policy %q (have block, drop-oldest, disconnect)", s)
	}
}

// Limits is the gateway's traffic-plane configuration: admission
// control, per-tenant throttling, backpressure, and liveness. The zero
// value means "no admission limits" with sane backpressure defaults —
// identical to the pre-limits gateway except that writes can no longer
// block forever.
type Limits struct {
	// MaxSessions caps concurrently admitted connections (including
	// ones still in the identify handshake). Connections beyond the cap
	// are refused with an OpError "shedding" frame. 0 = unlimited.
	MaxSessions int
	// IdentifyRPS / IdentifyBurst throttle the identify handshake rate
	// across the whole listener — the knob that keeps a reconnect storm
	// from starving established sessions. 0 = unlimited.
	IdentifyRPS   float64
	IdentifyBurst int
	// TenantRPS / TenantBurst bound the aggregate request rate of all
	// sessions owned by one bot owner (the tenant), layered on top of
	// the per-session bucket set with SetRateLimit. 0 = unlimited.
	TenantRPS   float64
	TenantBurst int
	// TenantIdentifyRPS / TenantIdentifyBurst throttle identify
	// handshakes per tenant, so one owner's reconnect storm sheds with
	// reason "tenant_rate" instead of consuming the listener-wide
	// identify budget. 0 = unlimited.
	TenantIdentifyRPS   float64
	TenantIdentifyBurst int
	// SendQueue bounds each session's outbound event queue (default 256).
	SendQueue int
	// SlowConsumer picks what happens when a session's event queue is
	// full (default SlowBlock).
	SlowConsumer SlowConsumerPolicy
	// WriteTimeout is the deadline applied to every socket write and to
	// blocking enqueues (default 5s). A session that cannot absorb a
	// frame within it is disconnected instead of wedging the server.
	WriteTimeout time.Duration
	// HeartbeatTimeout, when positive, reaps sessions that have not
	// sent any frame (heartbeat or otherwise) for this long — the
	// server-side half of the heartbeat contract. 0 disables reaping.
	HeartbeatTimeout time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.SendQueue <= 0 {
		l.SendQueue = 256
	}
	if l.WriteTimeout <= 0 {
		l.WriteTimeout = 5 * time.Second
	}
	if l.IdentifyBurst <= 0 {
		l.IdentifyBurst = 8
	}
	if l.TenantBurst <= 0 {
		l.TenantBurst = 16
	}
	if l.TenantIdentifyBurst <= 0 {
		l.TenantIdentifyBurst = 4
	}
	return l
}

// bucket is a mutex-guarded token bucket shared by the per-session,
// per-tenant, and identify throttles.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take consumes one token at the given refill rate, returning the
// suggested wait when the bucket is empty. A non-positive rps always
// admits.
func (b *bucket) take(rps, burst float64) (time.Duration, bool) {
	if rps <= 0 {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if b.last.IsZero() {
		b.tokens = burst
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rps
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		deficit := 1 - b.tokens
		return time.Duration(deficit / rps * float64(time.Second)), true
	}
	b.tokens--
	return 0, false
}
