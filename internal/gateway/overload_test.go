package gateway_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/botsdk"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/permissions"
	"repro/internal/platform"
)

// identifyRaw dials the gateway over plain TCP, identifies, and reads
// the ready frame, returning the connection and its buffered reader.
func identifyRaw(t *testing.T, addr, token string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn := dialRaw(t, addr)
	fmt.Fprintf(conn, `{"op":"identify","token":%q}`+"\n", token)
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("no ready frame: %v", err)
	}
	if !strings.Contains(line, `"ready"`) {
		t.Fatalf("first frame not ready: %s", line)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, br
}

// TestStalledReaderDoesNotWedgeOthers is the tentpole scenario: one
// client identifies and then never reads another byte while users keep
// chatting. The stalled session's bounded queue must overflow into
// drop-oldest evictions (and eventually a write-deadline disconnect) —
// and the healthy sibling session must see every event and keep making
// requests the whole time.
func TestStalledReaderDoesNotWedgeOthers(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	reg := obs.NewRegistry()
	r.srv.SetObs(reg)

	// The rig session was admitted under default limits (roomy queue,
	// blocking policy): it is the healthy consumer. The tight bound below
	// applies to connections admitted after it — the stalled one.
	var healthyGot atomic.Int64
	healthy := r.sess
	healthy.OnMessage(func(*botsdk.Session, *botsdk.Message) { healthyGot.Add(1) })
	r.srv.SetLimits(gateway.Limits{
		SendQueue:    8,
		SlowConsumer: gateway.SlowDropOldest,
		WriteTimeout: 300 * time.Millisecond,
	})

	// The stalled peer: a second bot so its drops are attributable.
	stallBot, err := r.p.RegisterBot(r.owner.ID, "stalled")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.p.InstallBot(r.owner.ID, r.guild.ID, stallBot.ID, permissions.ViewChannel); err != nil {
		t.Fatal(err)
	}
	stallConn, _ := identifyRaw(t, r.srv.Addr(), stallBot.Token)
	_ = stallConn // never read from again

	// Paced just below the bus buffer's drain rate so the healthy session
	// sees everything; payloads big enough that the stalled socket's
	// kernel buffers fill and its bounded queue must take the strain.
	const n = 300
	payload := strings.Repeat("x", 16*1024)
	for i := 0; i < n; i++ {
		if _, err := r.p.SendMessage(r.owner.ID, r.general.ID, payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	r.p.Flush()

	deadline := time.Now().Add(5 * time.Second)
	for healthyGot.Load() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := healthyGot.Load(); got < n {
		t.Fatalf("healthy session received %d/%d events while a sibling stalled", got, n)
	}
	// The healthy session's request path must still be responsive.
	if _, err := healthy.Send(r.general.ID.String(), "still serving"); err != nil {
		t.Fatalf("healthy request path wedged: %v", err)
	}
	if dropped := reg.Counter("gateway_events_dropped_total").Value(); dropped == 0 {
		t.Error("stalled session overflowed no events — queue bound apparently inert")
	}
}

// TestMaxSessionsShedsWithJournal fills the admission cap and verifies
// the next dial is refused with an explicit shed error carrying a
// retry hint, that the refusal is journaled, and that closing a session
// frees its slot for a new client.
func TestMaxSessionsShedsWithJournal(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	jnl := journal.New(&buf, journal.Options{Obs: reg})
	r.srv.SetObs(reg)
	r.srv.SetJournal(jnl)
	// The rig session already holds one slot.
	r.srv.SetLimits(gateway.Limits{MaxSessions: 2, WriteTimeout: time.Second})

	second, err := botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial under cap: %v", err)
	}
	defer second.Close()

	_, err = botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{RequestTimeout: time.Second})
	if !errors.Is(err, botsdk.ErrShedding) {
		t.Fatalf("dial past cap err = %v, want ErrShedding", err)
	}
	var shed *botsdk.ShedError
	if !errors.As(err, &shed) || shed.RetryAfter <= 0 {
		t.Fatalf("shed refusal carries no retry hint: %v", err)
	}
	if got := reg.Counter("gateway_sessions_shed_total").Value(); got != 1 {
		t.Errorf("sessions_shed = %d, want 1", got)
	}

	// Freeing a slot readmits: the refusal is overload, not a ban.
	second.Close()
	var readmitted *botsdk.Session
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		readmitted, err = botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{RequestTimeout: time.Second})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if readmitted == nil {
		t.Fatalf("slot never freed after session close: %v", err)
	}
	readmitted.Close()

	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	events, _, err := journal.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sheds int
	for _, e := range events {
		if e.Kind == journal.KindSessionShed {
			sheds++
			if e.Fields["reason"] != "max_sessions" {
				t.Errorf("shed reason = %v", e.Fields["reason"])
			}
		}
	}
	// At least the probe dial was journaled; the readmission poll may
	// have been shed a few more times before the slot freed.
	if sheds < 1 {
		t.Errorf("journaled %d session_shed events, want >= 1", sheds)
	}
}

// TestIdentifyRateShed verifies the listener-wide identify throttle:
// with a one-token bucket, back-to-back dials are shed with a backoff
// hint even though the session cap has room.
func TestIdentifyRateShed(t *testing.T) {
	r := newRig(t, permissions.ViewChannel)
	r.srv.SetLimits(gateway.Limits{IdentifyRPS: 0.5, IdentifyBurst: 1, WriteTimeout: time.Second})

	first, err := botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial within burst: %v", err)
	}
	defer first.Close()

	_, err = botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{RequestTimeout: time.Second})
	var shed *botsdk.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("second immediate dial err = %v, want ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Error("identify-rate shed carries no retry hint")
	}
}

// TestHeartbeatTimeoutReapsSilentSession verifies server-side liveness:
// a session that stops sending frames is disconnected after the
// heartbeat timeout and its closure journaled, while a heartbeating
// sibling lives on.
func TestHeartbeatTimeoutReapsSilentSession(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	jnl := journal.New(&buf, journal.Options{Obs: reg})
	r.srv.SetObs(reg)
	r.srv.SetJournal(jnl)
	r.srv.SetLimits(gateway.Limits{HeartbeatTimeout: 300 * time.Millisecond, WriteTimeout: time.Second})

	live, err := botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{
		RequestTimeout: time.Second, HeartbeatEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	silentConn, br := identifyRaw(t, r.srv.Addr(), r.bot.Token)
	// Go silent and wait to be reaped; the server closing the socket
	// surfaces as a read error well before our own deadline.
	silentConn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	for {
		if _, err := br.ReadString('\n'); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("silent session outlived the heartbeat timeout by %v", waited)
	}
	if got := reg.Counter("gateway_sessions_reaped_total").Value(); got != 1 {
		t.Errorf("sessions_reaped = %d, want 1", got)
	}
	// The heartbeating sibling is untouched.
	if _, err := live.Guilds(); err != nil {
		t.Errorf("heartbeating session reaped too: %v", err)
	}

	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	events, _, err := journal.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var reaped bool
	for _, e := range events {
		if e.Kind == journal.KindSessionClosed && e.Fields["reason"] == "heartbeat_timeout" {
			reaped = true
		}
	}
	if !reaped {
		t.Error("no session_closed(heartbeat_timeout) journaled")
	}
}

// TestTenantRateLimitLayersOverSessions gives one owner two bots on
// separate sessions and a shared tenant budget: a combined burst past
// the per-tenant bucket must be throttled (and absorbed by SDK retry)
// even though neither individual session is limited.
func TestTenantRateLimitLayersOverSessions(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	reg := obs.NewRegistry()
	r.srv.SetObs(reg)
	r.srv.SetLimits(gateway.Limits{TenantRPS: 50, TenantBurst: 2, WriteTimeout: time.Second})

	other, err := r.p.RegisterBot(r.owner.ID, "second-tenant-bot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.p.InstallBot(r.owner.ID, r.guild.ID, other.ID, permissions.ViewChannel|permissions.SendMessages); err != nil {
		t.Fatal(err)
	}
	a, err := botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := botsdk.Dial(r.srv.Addr(), other.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	chID := r.general.ID.String()
	start := time.Now()
	for i := 0; i < 6; i++ {
		if _, err := a.Send(chID, "tenant burst a"); err != nil {
			t.Fatalf("send a#%d: %v", i, err)
		}
		if _, err := b.Send(chID, "tenant burst b"); err != nil {
			t.Fatalf("send b#%d: %v", i, err)
		}
	}
	// 12 requests against burst 2 at 50 rps need roughly (12-2)/50 = 200ms.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("tenant burst finished in %v — shared bucket apparently inert", elapsed)
	}
	if got := reg.Counter("gateway_tenant_throttled_total").Value(); got == 0 {
		t.Error("tenant throttle never fired")
	}
}

// TestShedAndFaultAccountingDeterministic replays an identical scripted
// overload — a full admission cap probed by sequential dials while a
// seeded injector drops event frames — and demands byte-identical
// degradation accounting: same shed count, same delivery count, same
// fault ledger bytes.
func TestShedAndFaultAccountingDeterministic(t *testing.T) {
	type outcome struct {
		shed      int64
		delivered int64
		ledger    []byte
	}
	runOnce := func(t *testing.T) outcome {
		p := platform.New(platform.Options{})
		owner := p.CreateUser("owner")
		g, err := p.CreateGuild(owner.ID, "det", false)
		if err != nil {
			t.Fatal(err)
		}
		var general *platform.Channel
		for _, ch := range g.Channels {
			general = ch
		}
		bot, err := p.RegisterBot(owner.ID, "detbot")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.ViewChannel|permissions.SendMessages); err != nil {
			t.Fatal(err)
		}
		srv, err := gateway.NewServer(p, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		reg := obs.NewRegistry()
		srv.SetObs(reg)
		srv.SetLimits(gateway.Limits{MaxSessions: 1, WriteTimeout: time.Second})
		inj := faults.New(faults.Profile{Name: "det", GatewayDropFrame: 0.3}, 42, faults.Options{Obs: reg})
		srv.SetFaultPolicy(inj)

		var delivered atomic.Int64
		sess, err := botsdk.Dial(srv.Addr(), bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sess.OnMessage(func(*botsdk.Session, *botsdk.Message) { delivered.Add(1) })

		// Five sequential dials against the full cap; each refusal is read
		// to completion so the schedule is strictly ordered.
		for i := 0; i < 5; i++ {
			if _, err := botsdk.Dial(srv.Addr(), bot.Token, botsdk.Options{RequestTimeout: time.Second}); !errors.Is(err, botsdk.ErrShedding) {
				t.Fatalf("probe dial %d err = %v, want ErrShedding", i, err)
			}
		}
		// A strictly ordered event stream for the injector to sample.
		const msgs = 40
		for i := 0; i < msgs; i++ {
			if _, err := p.SendMessage(owner.ID, general.ID, fmt.Sprintf("m%d", i)); err != nil {
				t.Fatal(err)
			}
			p.Flush()
		}
		deadline := time.Now().Add(3 * time.Second)
		want := int64(msgs - countDrops(inj))
		for delivered.Load() < want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		var ledger bytes.Buffer
		if err := inj.WriteLedger(&ledger); err != nil {
			t.Fatal(err)
		}
		return outcome{
			shed:      reg.Counter("gateway_sessions_shed_total").Value(),
			delivered: delivered.Load(),
			ledger:    ledger.Bytes(),
		}
	}

	first := runOnce(t)
	second := runOnce(t)
	if first.shed != 5 || second.shed != 5 {
		t.Errorf("shed counts = %d, %d, want 5, 5", first.shed, second.shed)
	}
	if first.delivered != second.delivered {
		t.Errorf("delivered diverged: %d vs %d", first.delivered, second.delivered)
	}
	if len(first.ledger) == 0 {
		t.Fatal("injector fired no faults — drop rate apparently inert")
	}
	if !bytes.Equal(first.ledger, second.ledger) {
		t.Errorf("fault ledgers diverged:\n--- first\n%s--- second\n%s", first.ledger, second.ledger)
	}
}

func countDrops(inj *faults.Injector) int {
	n := 0
	for _, f := range inj.Log() {
		if f.Kind == faults.KindGatewayDropFrame {
			n++
		}
	}
	return n
}

// TestTenantIdentifyRateShedPerReasonCounters verifies the per-owner
// identify throttle: with a one-token tenant bucket, a reconnect storm
// from one owner's bots is shed with reason tenant_rate while another
// owner admits untouched — and the per-reason shed counters partition
// the total exactly, with the journaled shed events agreeing.
func TestTenantIdentifyRateShedPerReasonCounters(t *testing.T) {
	r := newRig(t, permissions.ViewChannel)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	jnl := journal.New(&buf, journal.Options{Obs: reg})
	r.srv.SetObs(reg)
	r.srv.SetJournal(jnl)
	r.srv.SetLimits(gateway.Limits{
		TenantIdentifyRPS:   0.1,
		TenantIdentifyBurst: 1,
		WriteTimeout:        time.Second,
	})

	// A second bot under the rig owner, and one under a different owner.
	sibling, err := r.p.RegisterBot(r.owner.ID, "sibling")
	if err != nil {
		t.Fatal(err)
	}
	other := r.p.CreateUser("other-owner")
	otherBot, err := r.p.RegisterBot(other.ID, "otherbot")
	if err != nil {
		t.Fatal(err)
	}

	// First dial under the throttle spends the owner's single token...
	first, err := botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial within tenant burst: %v", err)
	}
	defer first.Close()
	// ...so the same owner's next bot is shed, with a retry hint.
	_, err = botsdk.Dial(r.srv.Addr(), sibling.Token, botsdk.Options{RequestTimeout: time.Second})
	var shed *botsdk.ShedError
	if !errors.As(err, &shed) || shed.RetryAfter <= 0 {
		t.Fatalf("same-owner dial err = %v, want ShedError with retry hint", err)
	}
	// A different owner has its own bucket and sails through.
	otherSess, err := botsdk.Dial(r.srv.Addr(), otherBot.Token, botsdk.Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("other owner throttled by a sibling tenant's storm: %v", err)
	}
	otherSess.Close()

	if got := reg.Counter("gateway_sessions_shed_tenant_rate_total").Value(); got != 1 {
		t.Errorf("tenant_rate sheds = %d, want 1", got)
	}
	total := reg.Counter("gateway_sessions_shed_total").Value()
	var byReason int64
	for _, reason := range gateway.ShedReasons {
		byReason += reg.Counter("gateway_sessions_shed_" + reason + "_total").Value()
	}
	if byReason != total {
		t.Errorf("per-reason shed counters sum to %d, total says %d", byReason, total)
	}

	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	events, _, err := journal.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reasons := make(map[string]int64)
	for _, e := range events {
		if e.Kind == journal.KindSessionShed {
			reasons[e.Fields["reason"].(string)]++
		}
	}
	if reasons["tenant_rate"] != 1 || len(reasons) != 1 {
		t.Errorf("journaled shed reasons = %v, want exactly one tenant_rate", reasons)
	}
}
