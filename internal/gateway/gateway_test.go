package gateway_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/botsdk"
	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/platform"
)

// rig spins up a platform + gateway with one guild, an owner, and an
// installed bot, returning a connected SDK session.
type rig struct {
	p       *platform.Platform
	srv     *gateway.Server
	owner   *platform.User
	guild   *platform.Guild
	general *platform.Channel
	bot     *platform.User
	sess    *botsdk.Session
}

func newRig(t *testing.T, botPerms permissions.Permission) *rig {
	t.Helper()
	p := platform.New(platform.Options{})
	owner := p.CreateUser("owner")
	g, err := p.CreateGuild(owner.ID, "itest", false)
	if err != nil {
		t.Fatal(err)
	}
	var general *platform.Channel
	for _, ch := range g.Channels {
		general = ch
	}
	bot, err := p.RegisterBot(owner.ID, "itbot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, botPerms); err != nil {
		t.Fatal(err)
	}
	srv, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sess, err := botsdk.Dial(srv.Addr(), bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return &rig{p: p, srv: srv, owner: owner, guild: g, general: general, bot: bot, sess: sess}
}

func TestIdentifyAndReady(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel)
	if r.sess.BotID() != r.bot.ID.String() {
		t.Errorf("BotID = %s, want %s", r.sess.BotID(), r.bot.ID)
	}
	if r.sess.BotName() != "itbot" {
		t.Errorf("BotName = %s", r.sess.BotName())
	}
	guilds := r.sess.InitialGuilds()
	if len(guilds) != 1 || guilds[0] != r.guild.ID.String() {
		t.Errorf("InitialGuilds = %v", guilds)
	}
}

func TestIdentifyBadToken(t *testing.T) {
	p := platform.New(platform.Options{})
	srv, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := botsdk.Dial(srv.Addr(), "not-a-token", botsdk.Options{}); !errors.Is(err, botsdk.ErrIdentify) {
		t.Errorf("bad token err = %v", err)
	}
}

func TestSendAndHistoryRoundTrip(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel|permissions.ReadMessageHistory)
	chID := r.general.ID.String()
	if _, err := r.sess.Send(chID, "hello from bot"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.p.SendMessage(r.owner.ID, r.general.ID, "hello from human"); err != nil {
		t.Fatal(err)
	}
	msgs, err := r.sess.History(chID, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("history = %d messages", len(msgs))
	}
	if msgs[0].Content != "hello from bot" || !msgs[0].AuthorBot {
		t.Errorf("first message wrong: %+v", msgs[0])
	}
	if msgs[1].AuthorID != r.owner.ID.String() || msgs[1].AuthorBot {
		t.Errorf("second message wrong: %+v", msgs[1])
	}
}

func TestPermissionDeniedSurfacesToSDK(t *testing.T) {
	r := newRig(t, permissions.ViewChannel) // no send-messages of its own
	// Installed bots still inherit @everyone, so strip send-messages
	// from it to model a read-only bot.
	everyone := r.guild.EveryoneRoleID()
	if err := r.p.EditRole(r.owner.ID, r.guild.ID, everyone,
		platform.DefaultEveryonePerms.Remove(permissions.SendMessages)); err != nil {
		t.Fatal(err)
	}
	_, err := r.sess.Send(r.general.ID.String(), "should fail")
	if err == nil || !strings.Contains(err.Error(), "permission denied") {
		t.Errorf("denied send err = %v", err)
	}
	// Kick without kick-members must fail too.
	victim := r.p.CreateUser("victim")
	r.p.JoinGuild(victim.ID, r.guild.ID)
	if err := r.sess.Kick(r.guild.ID.String(), victim.ID.String()); err == nil {
		t.Error("kick without permission should fail")
	}
}

func TestEventPushOnMessage(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel)
	got := make(chan *botsdk.Message, 1)
	r.sess.OnMessage(func(s *botsdk.Session, m *botsdk.Message) {
		select {
		case got <- m:
		default:
		}
	})
	if _, err := r.p.SendMessage(r.owner.ID, r.general.ID, "ping"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Content != "ping" || m.GuildID != r.guild.ID.String() {
			t.Errorf("event message wrong: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no MESSAGE_CREATE delivered")
	}
}

func TestBotDoesNotReceiveOwnEcho(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel)
	got := make(chan *botsdk.Message, 4)
	r.sess.OnMessage(func(s *botsdk.Session, m *botsdk.Message) { got <- m })
	if _, err := r.sess.Send(r.general.ID.String(), "my own words"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		t.Errorf("bot received its own message: %+v", m)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestEventsScopedToBotGuilds(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel)
	other, err := r.p.CreateGuild(r.owner.ID, "other", false)
	if err != nil {
		t.Fatal(err)
	}
	var otherCh *platform.Channel
	for _, ch := range other.Channels {
		otherCh = ch
	}
	got := make(chan *botsdk.Message, 4)
	r.sess.OnMessage(func(s *botsdk.Session, m *botsdk.Message) { got <- m })
	if _, err := r.p.SendMessage(r.owner.ID, otherCh.ID, "elsewhere"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		t.Errorf("received event from a foreign guild: %+v", m)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestAttachmentFetch(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel)
	payload := []byte("canary-document-bytes")
	msg, err := r.p.SendMessage(r.owner.ID, r.general.ID, "take this",
		platform.Attachment{Filename: "secret.docx", ContentType: "application/msword", Data: payload})
	if err != nil {
		t.Fatal(err)
	}
	att, err := r.sess.FetchAttachment(r.general.ID.String(), msg.ID.String(), msg.Attachments[0].ID.String())
	if err != nil {
		t.Fatal(err)
	}
	if att.Filename != "secret.docx" || string(att.Data) != string(payload) {
		t.Errorf("attachment round-trip wrong: %+v", att)
	}
}

func TestGuildInfoAndGuilds(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel)
	guilds, err := r.sess.Guilds()
	if err != nil || len(guilds) != 1 {
		t.Fatalf("Guilds = %v, %v", guilds, err)
	}
	name, members, channels, err := r.sess.GuildInfo(guilds[0])
	if err != nil {
		t.Fatal(err)
	}
	if name != "itest" || members != 2 || len(channels) != 1 || channels[0].Name != "general" {
		t.Errorf("GuildInfo = %q, %d, %v", name, members, channels)
	}
}

func TestModerationViaSDK(t *testing.T) {
	r := newRig(t, permissions.KickMembers|permissions.BanMembers|permissions.ManageNicknames|permissions.ViewChannel)
	// Raise the bot's managed role above new members.
	var botRole *platform.Role
	for _, role := range r.guild.Roles {
		if role.Managed {
			botRole = role
		}
	}
	if err := r.p.MoveRole(r.owner.ID, r.guild.ID, botRole.ID, 5); err != nil {
		t.Fatal(err)
	}
	victim := r.p.CreateUser("victim")
	r.p.JoinGuild(victim.ID, r.guild.ID)
	if err := r.sess.EditNickname(r.guild.ID.String(), victim.ID.String(), "renamed-by-bot"); err != nil {
		t.Fatal(err)
	}
	if err := r.sess.Kick(r.guild.ID.String(), victim.ID.String()); err != nil {
		t.Fatal(err)
	}
	if r.p.IsMember(r.guild.ID, victim.ID) {
		t.Error("victim still member after SDK kick")
	}
	r.p.JoinGuild(victim.ID, r.guild.ID)
	if err := r.sess.Ban(r.guild.ID.String(), victim.ID.String()); err != nil {
		t.Fatal(err)
	}
	if err := r.p.JoinGuild(victim.ID, r.guild.ID); !errors.Is(err, platform.ErrBanned) {
		t.Errorf("rejoin after SDK ban err = %v", err)
	}
}

func TestPermissionIntrospection(t *testing.T) {
	r := newRig(t, permissions.SendMessages|permissions.ViewChannel|permissions.KickMembers)
	perms, err := r.sess.MyPermissions(r.guild.ID.String())
	if err != nil {
		t.Fatal(err)
	}
	if !perms.Has(permissions.KickMembers) {
		t.Errorf("MyPermissions = %s", perms)
	}
	// The SDK-level invoker check the paper's Table 3 patterns map to.
	okOwner, err := r.sess.HasPermission(r.guild.ID.String(), r.owner.ID.String(), permissions.KickMembers)
	if err != nil || !okOwner {
		t.Errorf("owner HasPermission = %v, %v", okOwner, err)
	}
	pleb := r.p.CreateUser("pleb")
	r.p.JoinGuild(pleb.ID, r.guild.ID)
	okPleb, err := r.sess.HasPermission(r.guild.ID.String(), pleb.ID.String(), permissions.KickMembers)
	if err != nil || okPleb {
		t.Errorf("pleb HasPermission = %v, %v", okPleb, err)
	}
}

func TestVoiceStatesOverGateway(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	lounge, err := r.p.CreateChannel(r.owner.ID, r.guild.ID, "lounge", platform.ChannelVoice)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.p.JoinVoice(r.owner.ID, lounge.ID); err != nil {
		t.Fatal(err)
	}
	states, err := r.sess.VoiceStates(r.guild.ID.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].UserID != r.owner.ID.String() || states[0].ChannelID != lounge.ID.String() {
		t.Errorf("voice states = %+v", states)
	}
	// Bots not in the guild see nothing.
	if _, err := r.sess.VoiceStates("424242"); err == nil {
		t.Error("foreign guild voice metadata exposed")
	}
}

func TestInteractionDispatchAndRespond(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	got := make(chan *botsdk.Interaction, 1)
	r.sess.OnInteraction(func(s *botsdk.Session, in *botsdk.Interaction) {
		select {
		case got <- in:
		default:
		}
	})
	in, err := r.p.Interact(r.owner.ID, r.bot.ID, r.general.ID, "help", "now")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case rx := <-got:
		if rx.ID != in.ID.String() || rx.UserID != r.owner.ID.String() ||
			rx.Command != "help" || rx.Args != "now" {
			t.Errorf("interaction = %+v", rx)
		}
		if _, err := r.sess.Respond(rx.GuildID, rx.ID, "here to help"); err != nil {
			t.Fatalf("respond: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("interaction not dispatched")
	}
	msgs, err := r.p.ChannelMessages(r.general.ID)
	if err != nil || len(msgs) != 1 || msgs[0].Content != "here to help" {
		t.Errorf("reply missing: %v, %v", msgs, err)
	}
}

func TestInteractionNotDeliveredToOtherBots(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	other, _ := r.p.RegisterBot(r.owner.ID, "bystander")
	if _, err := r.p.InstallBot(r.owner.ID, r.guild.ID, other.ID, permissions.ViewChannel); err != nil {
		t.Fatal(err)
	}
	otherSess, err := botsdk.Dial(r.srv.Addr(), other.Token, botsdk.Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer otherSess.Close()
	leaked := make(chan *botsdk.Interaction, 1)
	otherSess.OnInteraction(func(s *botsdk.Session, in *botsdk.Interaction) { leaked <- in })
	if _, err := r.p.Interact(r.owner.ID, r.bot.ID, r.general.ID, "secret", ""); err != nil {
		t.Fatal(err)
	}
	r.p.Flush()
	select {
	case in := <-leaked:
		t.Errorf("bystander bot received a foreign interaction: %+v", in)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestHeartbeatKeepsSessionAlive(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	sess, err := botsdk.Dial(r.srv.Addr(), r.bot.Token, botsdk.Options{
		RequestTimeout: time.Second, HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	time.Sleep(150 * time.Millisecond)
	if _, err := sess.Guilds(); err != nil {
		t.Errorf("session died despite heartbeats: %v", err)
	}
}

func TestUnknownMethodAndClosedSession(t *testing.T) {
	r := newRig(t, permissions.ViewChannel)
	// member_permissions on a guild the bot is not in → not-member error.
	foreign, _ := r.p.CreateGuild(r.owner.ID, "foreign", false)
	if _, err := r.sess.MemberPermissions(foreign.ID.String(), r.owner.ID.String()); err == nil {
		t.Error("member_permissions outside bot guilds should fail")
	}
	r.sess.Close()
	if _, err := r.sess.Send("1", "x"); !errors.Is(err, botsdk.ErrClosed) {
		t.Errorf("send on closed session err = %v", err)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	r := newRig(t, permissions.ViewChannel)
	r.srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := r.sess.Guilds(); err != nil {
			return // session noticed the teardown
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("session survived server close")
}

func TestGatewayRateLimitAndSDKRetry(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	r.srv.SetRateLimit(50, 3)
	chID := r.general.ID.String()
	// A burst well beyond the bucket: every send must still succeed
	// because the SDK honours retry_after_ms transparently.
	start := time.Now()
	for i := 0; i < 12; i++ {
		if _, err := r.sess.Send(chID, "burst"); err != nil {
			t.Fatalf("send %d under rate limit: %v", i, err)
		}
	}
	// 12 requests at 50 rps with burst 3 needs roughly (12-3)/50 ≈ 180ms.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("burst finished in %v — limiter apparently inert", elapsed)
	}
	msgs, err := r.sess.History(chID, 0)
	if err == nil && len(msgs) != 12 {
		t.Errorf("messages delivered = %d, want 12", len(msgs))
	}
}

func TestGatewayRateLimitDisabledByDefault(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	start := time.Now()
	for i := 0; i < 30; i++ {
		if _, err := r.sess.Send(r.general.ID.String(), "fast"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("unthrottled burst took %v", elapsed)
	}
}

func TestManyConcurrentBots(t *testing.T) {
	p := platform.New(platform.Options{})
	owner := p.CreateUser("owner")
	g, _ := p.CreateGuild(owner.ID, "busy", false)
	var general *platform.Channel
	for _, ch := range g.Channels {
		general = ch
	}
	srv, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 12
	received := make(chan string, n*2)
	var sessions []*botsdk.Session
	for i := 0; i < n; i++ {
		bot, _ := p.RegisterBot(owner.ID, "bot")
		if _, err := p.InstallBot(owner.ID, g.ID, bot.ID, permissions.ViewChannel|permissions.SendMessages); err != nil {
			t.Fatal(err)
		}
		sess, err := botsdk.Dial(srv.Addr(), bot.Token, botsdk.Options{RequestTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
		sess.OnMessage(func(s *botsdk.Session, m *botsdk.Message) {
			received <- s.BotID()
		})
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	if _, err := p.SendMessage(owner.ID, general.ID, "broadcast"); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	timeout := time.After(3 * time.Second)
	for len(seen) < n {
		select {
		case id := <-received:
			seen[id] = true
		case <-timeout:
			t.Fatalf("only %d/%d bots received the broadcast", len(seen), n)
		}
	}
}
