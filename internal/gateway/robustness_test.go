package gateway_test

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/permissions"
)

// dialRaw opens a plain TCP connection to the gateway.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestGarbageBeforeIdentifyDropsConnection(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	for _, garbage := range []string{
		"not json at all\n",
		`{"op":"heartbeat"}` + "\n",            // valid JSON, wrong first op
		`{"op":"identify","token":123}` + "\n", // wrong field type
		"\x00\x01\x02\xff\n",
	} {
		conn := dialRaw(t, r.srv.Addr())
		fmt.Fprint(conn, garbage)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		// The server answers with an error frame or just closes; it
		// must never hang or crash.
		br := bufio.NewReader(conn)
		br.ReadString('\n')
		conn.Close()
	}
	// The established, well-behaved session still works.
	if _, err := r.sess.Send(r.general.ID.String(), "still alive"); err != nil {
		t.Fatalf("healthy session broken by garbage peers: %v", err)
	}
}

func TestGarbageAfterIdentifyOnlyKillsThatSession(t *testing.T) {
	r := newRig(t, permissions.ViewChannel|permissions.SendMessages)
	conn := dialRaw(t, r.srv.Addr())
	fmt.Fprintf(conn, `{"op":"identify","token":%q}`+"\n", r.bot.Token)
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("no ready frame: %v", err)
	}
	// Now poison the stream.
	fmt.Fprint(conn, "}}}}{{{{ definitely not a frame\n")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	deadline := time.Now().Add(3 * time.Second)
	dead := false
	for time.Now().Before(deadline) {
		if _, err := br.ReadString('\n'); err != nil {
			dead = true
			break
		}
	}
	if !dead {
		t.Error("poisoned session not terminated")
	}
	// The sibling SDK session is unaffected.
	if _, err := r.sess.Send(r.general.ID.String(), "unaffected"); err != nil {
		t.Fatalf("sibling session degraded: %v", err)
	}
}

func TestSlowIdentifyTimesOut(t *testing.T) {
	r := newRig(t, permissions.ViewChannel)
	conn := dialRaw(t, r.srv.Addr())
	// Send nothing; the server's identify deadline (5s) must reap the
	// connection rather than leak it. We detect the close by reading.
	conn.SetReadDeadline(time.Now().Add(7 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	_, err := conn.Read(buf)
	if err == nil {
		t.Fatal("server sent data to a silent pre-identify connection")
	}
	if time.Since(start) > 6500*time.Millisecond {
		t.Error("identify deadline apparently not enforced")
	}
}

func TestUnknownOpAfterIdentify(t *testing.T) {
	r := newRig(t, permissions.ViewChannel)
	conn := dialRaw(t, r.srv.Addr())
	fmt.Fprintf(conn, `{"op":"identify","token":%q}`+"\n", r.bot.Token)
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(conn, `{"op":"mystery"}`+"\n")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("connection dropped on unknown op: %v", err)
	}
	if line == "" || !contains(line, "unexpected op") {
		t.Errorf("response = %q", line)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
