// Circuit breakers: when an endpoint class is persistently down,
// retrying each request individually burns the whole backoff schedule
// and the stage's retry budget on work that cannot succeed. A Breaker
// watches the recent outcome window per key (host + endpoint class)
// and, past a failure-rate threshold, short-circuits further attempts
// in microseconds until a cooldown elapses; a half-open probe then
// decides whether the endpoint has recovered.
package retry

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// ErrBreakerOpen is returned by Breaker.Allow while the circuit is
// open: the endpoint class failed persistently and attempts are being
// short-circuited until the cooldown elapses.
var ErrBreakerOpen = errors.New("retry: circuit open")

// BreakerState is a circuit's position.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed passes traffic and records outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every attempt until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe at a time; enough
	// consecutive probe successes close the circuit, any probe failure
	// reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerConfig tunes every breaker in a set.
type BreakerConfig struct {
	// Window is the rolling outcome window per key (default 16).
	Window int
	// MinSamples is how many outcomes the window needs before the
	// failure rate is trusted (default Window/2).
	MinSamples int
	// FailureRate opens the circuit when the windowed failure fraction
	// reaches it (default 0.6).
	FailureRate float64
	// OpenFor is the cooldown before an open circuit admits a half-open
	// probe (default 500ms).
	OpenFor time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// circuit again (default 2).
	HalfOpenProbes int
	// Now supplies the clock; defaults to time.Now. Tests inject a fake
	// clock to drive open→half-open deterministically.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.6
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 500 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BreakerOptions wires a BreakerSet into the observability plane.
type BreakerOptions struct {
	Obs     *obs.Registry
	Journal *journal.Journal
	// OnTransition, when set, observes every state change after it is
	// journaled (tests use it to assert deterministic transitions).
	OnTransition func(key string, from, to BreakerState)
}

// Breaker is one key's circuit. A nil *Breaker is a valid no-op that
// always allows and records nothing, so unwired call sites stay clean.
type Breaker struct {
	set *BreakerSet
	key string

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring of recent outcomes; true = failure
	idx      int
	count    int
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	probeOK  int  // consecutive successful probes
}

// Allow reports whether an attempt may proceed. While open it returns
// ErrBreakerOpen (wrapped with the key) until the cooldown elapses,
// then admits a single half-open probe at a time. Every successful
// Allow must be paired with one Record call.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.set.cfg.Now().Sub(b.openedAt) < b.set.cfg.OpenFor {
			return fmt.Errorf("%w: %s", ErrBreakerOpen, b.key)
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		b.probeOK = 0
		return nil
	default: // half-open
		if b.probing {
			return fmt.Errorf("%w: %s (probe in flight)", ErrBreakerOpen, b.key)
		}
		b.probing = true
		return nil
	}
}

// Record feeds one attempt outcome back into the circuit. In the
// closed state it advances the rolling window and opens the circuit
// when the failure rate crosses the threshold; in the half-open state
// it resolves the in-flight probe.
func (b *Breaker) Record(failure bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.open()
			return
		}
		b.probeOK++
		if b.probeOK >= b.set.cfg.HalfOpenProbes {
			b.reset()
			b.transition(BreakerClosed)
		}
	case BreakerOpen:
		// A straggler from before the circuit opened; the window is
		// already condemned, so the outcome is moot.
	default: // closed
		if b.count == len(b.window) {
			if b.window[b.idx] {
				b.fails--
			}
		} else {
			b.count++
		}
		b.window[b.idx] = failure
		if failure {
			b.fails++
		}
		b.idx = (b.idx + 1) % len(b.window)
		if b.count >= b.set.cfg.MinSamples &&
			float64(b.fails)/float64(b.count) >= b.set.cfg.FailureRate {
			b.open()
		}
	}
}

// State reports the circuit's current position.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// open must be called with b.mu held.
func (b *Breaker) open() {
	b.openedAt = b.set.cfg.Now()
	b.transition(BreakerOpen)
}

// reset clears the window after a recovery; must be called with b.mu
// held.
func (b *Breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.count, b.fails, b.probeOK = 0, 0, 0, 0
	b.probing = false
}

// transition moves the circuit and reports the change to the set;
// must be called with b.mu held.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	rate := 0.0
	if b.count > 0 {
		rate = float64(b.fails) / float64(b.count)
	}
	b.set.noteTransition(b.key, from, to, rate)
}

// BreakerSet holds one Breaker per key — host plus endpoint class —
// sharing a config and an observability wiring. A nil *BreakerSet is a
// valid no-op whose For returns nil breakers.
type BreakerSet struct {
	cfg  BreakerConfig
	opts BreakerOptions

	gOpen   *obs.Gauge
	cOpened *obs.Counter
	cClosed *obs.Counter

	mu  sync.Mutex
	jnl *journal.Journal
	m   map[string]*Breaker
}

// SetJournal re-points transition events at a new journal — used when a
// kill/resume harness reopens the journal between run segments. Nil-safe.
func (s *BreakerSet) SetJournal(j *journal.Journal) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.jnl = j
	s.mu.Unlock()
}

// journal snapshots the current journal under the lock.
func (s *BreakerSet) journal() *journal.Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jnl
}

// NewBreakerSet builds a set with the given config and wiring.
func NewBreakerSet(cfg BreakerConfig, opts BreakerOptions) *BreakerSet {
	reg := obs.Or(opts.Obs)
	return &BreakerSet{
		cfg:     cfg.withDefaults(),
		opts:    opts,
		gOpen:   reg.Gauge("retry_breakers_open"),
		cOpened: reg.Counter("retry_breaker_opened_total"),
		cClosed: reg.Counter("retry_breaker_closed_total"),
		jnl:     opts.Journal,
		m:       make(map[string]*Breaker),
	}
}

// For returns the breaker for a key, creating it on first use. A nil
// set returns a nil (no-op) breaker.
func (s *BreakerSet) For(key string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = &Breaker{set: s, key: key, window: make([]bool, s.cfg.Window)}
		s.m[key] = b
	}
	return b
}

// States snapshots every key's state, for inspection and reports.
func (s *BreakerSet) States() map[string]BreakerState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	keys := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		keys = append(keys, b)
	}
	s.mu.Unlock()
	out := make(map[string]BreakerState, len(keys))
	for _, b := range keys {
		out[b.key] = b.State()
	}
	return out
}

// noteTransition maintains the gauges/counters and journals
// breaker_opened / breaker_closed events. Half-open is a transient
// probing position: only entering open and returning to closed are
// journal-worthy milestones.
func (s *BreakerSet) noteTransition(key string, from, to BreakerState, rate float64) {
	switch to {
	case BreakerOpen:
		// The gauge counts circuits currently not closed; a half-open
		// probe failing back to open is the same outage, not a new one.
		if from == BreakerClosed {
			s.gOpen.Add(1)
		}
		s.cOpened.Inc()
		s.journal().Emit(journal.Event{
			Kind:      journal.KindBreakerOpened,
			Component: "retry",
			Fields: map[string]any{
				"endpoint":     key,
				"failure_rate": rate,
				"from":         from.String(),
			},
		})
	case BreakerClosed:
		s.gOpen.Add(-1)
		s.cClosed.Inc()
		s.journal().Emit(journal.Event{
			Kind:      journal.KindBreakerClosed,
			Component: "retry",
			Fields:    map[string]any{"endpoint": key},
		})
	}
	if s.opts.OnTransition != nil {
		s.opts.OnTransition(key, from, to)
	}
}
