// Package retry is the pipeline's generic transient-failure policy:
// jittered exponential backoff with per-stage retry budgets,
// Retry-After honoring, and context-aware waits. It replaces the
// bespoke throttle loops that grew inside individual fetchers, so every
// stage degrades the same way under the same pressure — and so chaos
// tests can reason about retry behaviour in one place.
//
// Determinism: the jitter stream is seeded (Policy.Seed), so a fixed
// seed yields a fixed delay schedule. Fault-injection runs rely on this
// to stay byte-reproducible.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Policy tunes one retryable operation.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the wait before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Jitter randomizes each delay symmetrically by this fraction
	// (0.2 → ±10%); 0 disables jitter.
	Jitter float64
	// Seed drives the jitter stream; equal seeds give equal schedules.
	Seed int64
	// RetryAfterCap clamps server-specified Retry-After hints so a
	// hostile or sluggish server cannot stall a stage (default MaxDelay).
	RetryAfterCap time.Duration
	// Budget, when set, is a shared pool of retries for a whole stage:
	// every retry (not first attempts) consumes one token, and an empty
	// budget stops retrying with ErrBudgetExhausted.
	Budget *Budget
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.RetryAfterCap <= 0 {
		p.RetryAfterCap = p.MaxDelay
	}
	return p
}

// Sentinel errors Do wraps into its failures.
var (
	// ErrExhausted marks a Do that used every attempt without success.
	ErrExhausted = errors.New("retry: attempts exhausted")
	// ErrBudgetExhausted marks a Do stopped by an empty shared budget.
	ErrBudgetExhausted = errors.New("retry: budget exhausted")
)

// PermanentError wraps an error that must not be retried.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent marks err as non-retryable: Do returns the underlying
// error immediately. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// afterError carries a server-requested backoff (Retry-After).
type afterError struct {
	err   error
	after time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After marks err as retryable with a server-specified wait before the
// next attempt (e.g. a parsed Retry-After header). Do honours the hint,
// clamped to Policy.RetryAfterCap.
func After(err error, d time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, after: d}
}

// RetryAfterHint extracts the wait carried by After, if any.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ae *afterError
	if errors.As(err, &ae) {
		return ae.after, true
	}
	return 0, false
}

// ParseRetryAfter parses an HTTP Retry-After header value: either
// delta-seconds or an HTTP-date. The zero duration with ok=false means
// the value was absent or malformed.
func ParseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Budget is a shared, concurrency-safe pool of retries for one pipeline
// stage. A nil *Budget is unlimited.
type Budget struct {
	mu   sync.Mutex
	left int
}

// NewBudget returns a budget allowing n retries in total.
func NewBudget(n int) *Budget { return &Budget{left: n} }

// Take consumes one retry token, reporting false when the budget is
// spent. A nil budget always grants.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.left <= 0 {
		return false
	}
	b.left--
	return true
}

// Remaining reports the unspent retry tokens.
func (b *Budget) Remaining() int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.left
}

// Do runs fn until it succeeds, returns a permanent error, exhausts the
// policy, or ctx is cancelled. Context errors — from ctx itself or
// surfaced by fn — are returned verbatim and never retried.
func Do(ctx context.Context, p Policy, fn func(context.Context) error) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	delay := p.BaseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		var perm *PermanentError
		if errors.As(err, &perm) {
			return perm.Err
		}
		lastErr = err
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, attempt, lastErr)
		}
		if !p.Budget.Take() {
			return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempt, lastErr)
		}
		wait := jittered(delay, p.Jitter, rng)
		if hint, ok := RetryAfterHint(err); ok {
			if hint > p.RetryAfterCap {
				hint = p.RetryAfterCap
			}
			if hint > wait {
				wait = hint
			}
		}
		if err := sleep(ctx, wait); err != nil {
			return err
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// PreviewDelays returns the backoff schedule Do would use for n retries
// when no Retry-After hints arrive — the deterministic-jitter contract,
// testable without sleeping.
func PreviewDelays(p Policy, n int) []time.Duration {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	delay := p.BaseDelay
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, jittered(delay, p.Jitter, rng))
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
	return out
}

// jittered spreads d symmetrically by the jitter fraction: a jitter of
// 0.2 yields a uniform draw from [0.9d, 1.1d).
func jittered(d time.Duration, jitter float64, rng *rand.Rand) time.Duration {
	if jitter <= 0 {
		return d
	}
	if jitter > 1 {
		jitter = 1
	}
	f := 1 - jitter/2 + jitter*rng.Float64()
	return time.Duration(float64(d) * f)
}

// sleep waits for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
