package retry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func fastPolicy() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Multiplier:  2,
		Seed:        7,
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped errBoom", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want MaxAttempts=4", calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return Permanent(errBoom)
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if errors.Is(err, ErrExhausted) {
		t.Fatalf("permanent error must not be reported as exhaustion: %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A shared budget of 3 retries across two sequential operations:
	// the first Do consumes all three, the second gets none.
	budget := NewBudget(3)
	p := fastPolicy()
	p.MaxAttempts = 10
	p.Budget = budget

	err := Do(context.Background(), p, func(context.Context) error { return errBoom })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("first op err = %v, want ErrBudgetExhausted", err)
	}
	if got := budget.Remaining(); got != 0 {
		t.Fatalf("Remaining = %d, want 0", got)
	}

	calls := 0
	err = Do(context.Background(), p, func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second op err = %v, want ErrBudgetExhausted", err)
	}
	if calls != 1 {
		t.Fatalf("second op calls = %d, want 1 (no retries left)", calls)
	}
}

func TestNilBudgetUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 100; i++ {
		if !b.Take() {
			t.Fatal("nil budget must always grant")
		}
	}
	if b.Remaining() != -1 {
		t.Fatal("nil budget Remaining sentinel changed")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"0", 0, true},
		{"7", 7 * time.Second, true},
		{"-3", 0, false},
		{"soon", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}

	// HTTP-date form: a date ~2s out parses to roughly that wait.
	future := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	got, ok := ParseRetryAfter(future)
	if !ok || got <= 0 || got > 3*time.Second {
		t.Fatalf("ParseRetryAfter(http-date) = (%v, %v), want ~2s", got, ok)
	}
	// A past date clamps to zero rather than going negative.
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	got, ok = ParseRetryAfter(past)
	if !ok || got != 0 {
		t.Fatalf("ParseRetryAfter(past http-date) = (%v, %v), want (0, true)", got, ok)
	}
}

func TestRetryAfterHonoredAndCapped(t *testing.T) {
	p := fastPolicy()
	p.RetryAfterCap = 30 * time.Millisecond
	p.Jitter = 0
	p.MaxAttempts = 2

	start := time.Now()
	err := Do(context.Background(), p, func(context.Context) error {
		return After(errBoom, 20*time.Millisecond)
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if elapsed < 20*time.Millisecond {
		t.Fatalf("elapsed %v: Retry-After hint of 20ms not honored", elapsed)
	}

	// A huge hint is clamped to RetryAfterCap, not slept in full.
	start = time.Now()
	err = Do(context.Background(), p, func(context.Context) error {
		return After(errBoom, time.Hour)
	})
	elapsed = time.Since(start)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("elapsed %v: hour-long Retry-After was not capped", elapsed)
	}
}

func TestContextCancellationMidBackoff(t *testing.T) {
	p := fastPolicy()
	p.BaseDelay = 5 * time.Second // force a long backoff we cancel out of
	p.MaxAttempts = 3

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Do(ctx, p, func(context.Context) error { return errBoom })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancellation did not interrupt backoff (took %v)", time.Since(start))
	}
}

func TestContextErrorFromFnNotRetried(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (context errors are terminal)", calls)
	}
}

func TestDeterministicJitter(t *testing.T) {
	p := Policy{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.4,
		Seed:        42,
	}
	a := PreviewDelays(p, 6)
	b := PreviewDelays(p, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Jitter stays within the symmetric band around the nominal delay.
	nominal := []time.Duration{10, 20, 40, 80, 100, 100}
	for i, d := range a {
		n := nominal[i] * time.Millisecond
		lo := time.Duration(float64(n) * 0.8)
		hi := time.Duration(float64(n) * 1.2)
		if d < lo || d > hi {
			t.Fatalf("delay[%d] = %v outside jitter band [%v, %v]", i, d, lo, hi)
		}
	}
	// A different seed should (for this seed pair) give a different schedule.
	p2 := p
	p2.Seed = 43
	c := PreviewDelays(p2, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestZeroJitterExactSchedule(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Multiplier: 2}
	got := PreviewDelays(p, 4)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
