package retry

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// fakeClock is a hand-advanced clock so open→half-open transitions are
// driven deterministically, not by wall time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testSet(t *testing.T, clk *fakeClock, transitions *[]string) (*BreakerSet, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	var mu sync.Mutex
	set := NewBreakerSet(BreakerConfig{
		Window:         8,
		MinSamples:     4,
		FailureRate:    0.5,
		OpenFor:        time.Second,
		HalfOpenProbes: 2,
		Now:            clk.Now,
	}, BreakerOptions{
		Obs: reg,
		OnTransition: func(key string, from, to BreakerState) {
			mu.Lock()
			*transitions = append(*transitions, fmt.Sprintf("%s:%s->%s", key, from, to))
			mu.Unlock()
		},
	})
	return set, reg
}

// TestBreakerLifecycle drives closed → open → half-open → closed with
// a fake clock and asserts every transition, gauge, and counter.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var transitions []string
	set, reg := testSet(t, clk, &transitions)
	b := set.For("listing /bot")

	// Successes keep the circuit closed.
	for i := 0; i < 6; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow: %v", err)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after successes: %v", b.State())
	}

	// Failures past the windowed rate open it: window 8, rate 0.5 —
	// after 4 failures the window holds 6 ok + ... wait-free math: the
	// ring holds the last 8 outcomes, so 4 fresh failures against the 6
	// successes give 4/8 = 0.5 ≥ threshold.
	for i := 0; i < 4; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow before open: %v", err)
		}
		b.Record(true)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failures: %v", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Allow = %v, want ErrBreakerOpen", err)
	}
	if !strings.Contains(b.Allow().Error(), "listing /bot") {
		t.Fatal("ErrBreakerOpen must carry the endpoint key")
	}

	// Cooldown elapses: one probe admitted, concurrent attempts still
	// short-circuit.
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe Allow: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe = %v, want ErrBreakerOpen", err)
	}
	b.Record(false) // probe 1 ok
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow: %v", err)
	}
	b.Record(false) // probe 2 ok → closes
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probes: %v", b.State())
	}

	want := []string{
		"listing /bot:closed->open",
		"listing /bot:open->half-open",
		"listing /bot:half-open->closed",
	}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	if got := reg.Counter("retry_breaker_opened_total").Value(); got != 1 {
		t.Fatalf("opened counter = %d", got)
	}
	if got := reg.Counter("retry_breaker_closed_total").Value(); got != 1 {
		t.Fatalf("closed counter = %d", got)
	}
	if got := reg.Gauge("retry_breakers_open").Value(); got != 0 {
		t.Fatalf("open gauge = %d after recovery", got)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe condemns the
// circuit again without double-counting the open gauge.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var transitions []string
	set, reg := testSet(t, clk, &transitions)
	b := set.For("codehost /gh")

	for i := 0; i < 4; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(true)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v", b.State())
	}
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true) // probe fails → reopen
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v", b.State())
	}
	if got := reg.Gauge("retry_breakers_open").Value(); got != 1 {
		t.Fatalf("open gauge = %d, want 1 (no double count)", got)
	}
	if got := reg.Counter("retry_breaker_opened_total").Value(); got != 2 {
		t.Fatalf("opened counter = %d, want 2 (initial + reopen)", got)
	}
	// The cooldown restarts from the reopen.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow right after reopen = %v", err)
	}
}

// TestBreakerDeterministicTransitions: the same outcome sequence yields
// the same transition log, run after run — the property chaos tests
// lean on under a fixed fault seed.
func TestBreakerDeterministicTransitions(t *testing.T) {
	outcomes := []bool{false, true, true, false, true, true, true, false, true, true}
	run := func() []string {
		clk := &fakeClock{now: time.Unix(42, 0)}
		var transitions []string
		set, _ := testSet(t, clk, &transitions)
		b := set.For("k")
		for _, fail := range outcomes {
			if err := b.Allow(); err != nil {
				continue
			}
			b.Record(fail)
		}
		return transitions
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("outcome sequence tripped no transitions")
	}
	for i := 0; i < 5; i++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("run %d transitions = %v, want %v", i, got, first)
		}
	}
}

// TestBreakerJournalEvents: opening and closing emit the journal
// vocabulary the ISSUE's operators inspect with `botscan journal`.
func TestBreakerJournalEvents(t *testing.T) {
	var buf bytes.Buffer
	jnl := journal.New(&buf, journal.Options{Obs: obs.NewRegistry()})
	clk := &fakeClock{now: time.Unix(1000, 0)}
	set := NewBreakerSet(BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, OpenFor: time.Second,
		HalfOpenProbes: 1, Now: clk.Now,
	}, BreakerOptions{Obs: obs.NewRegistry(), Journal: jnl})
	b := set.For("gw 127.0.0.1")
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(true)
	}
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := journal.Decode(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("decode: %v (skipped %d)", err, skipped)
	}
	kinds := make(map[journal.Kind]int)
	for _, e := range events {
		kinds[e.Kind]++
		if e.Fields["endpoint"] != "gw 127.0.0.1" {
			t.Fatalf("event %s missing endpoint key: %+v", e.Kind, e)
		}
	}
	if kinds[journal.KindBreakerOpened] != 1 || kinds[journal.KindBreakerClosed] != 1 {
		t.Fatalf("journal kinds = %v", kinds)
	}
}

// TestBreakerNilSafety: nil sets and breakers are inert, like every
// other optional plane in this codebase.
func TestBreakerNilSafety(t *testing.T) {
	var set *BreakerSet
	b := set.For("anything")
	if b != nil {
		t.Fatal("nil set must hand out nil breakers")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("nil breaker Allow: %v", err)
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker must read closed")
	}
	if set.States() != nil {
		t.Fatal("nil set States must be nil")
	}
}

// TestBreakerConcurrent hammers one breaker from many goroutines under
// -race: the circuit must stay internally consistent (every Allow
// paired with Record, states always valid).
func TestBreakerConcurrent(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var transitions []string
	set, _ := testSet(t, clk, &transitions)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := set.For("shared")
			for i := 0; i < 200; i++ {
				if err := b.Allow(); err != nil {
					if !errors.Is(err, ErrBreakerOpen) {
						t.Errorf("unexpected Allow error: %v", err)
						return
					}
					clk.Advance(10 * time.Millisecond)
					continue
				}
				b.Record(i%3 == 0)
			}
			_ = set.States()
		}(g)
	}
	wg.Wait()
	switch st := set.For("shared").State(); st {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
	default:
		t.Fatalf("invalid final state %v", st)
	}
}
