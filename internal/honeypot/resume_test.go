package honeypot

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/synth"
)

// runBaseline runs a small campaign to completion and returns its
// result plus the settled outcomes the checkpointer would have
// recorded, keyed by bot ID.
func runBaseline(t *testing.T, cfg CampaignConfig, eco *synth.Ecosystem) (*CampaignResult, *CampaignResume) {
	t.Helper()
	resume := &CampaignResume{
		Verdicts:    make(map[int]*Verdict),
		Quarantined: make(map[int]error),
	}
	var mu sync.Mutex
	cfg.OnSettled = func(botID int, v *Verdict, qerr error) {
		mu.Lock()
		defer mu.Unlock()
		if qerr != nil {
			resume.Quarantined[botID] = qerr
			return
		}
		resume.Verdicts[botID] = v
	}
	res, err := CampaignContext(context.Background(), newEnv(t), eco, cfg)
	if err != nil {
		t.Fatalf("baseline campaign: %v", err)
	}
	return res, resume
}

// TestCampaignResumeSkipsSettled: a campaign resumed over a checkpoint
// covering the whole sample replays every verdict without launching a
// single experiment, and journals one work_skipped per settled bot.
func TestCampaignResumeSkipsSettled(t *testing.T) {
	eco := synth.Generate(synth.Config{Seed: 7, NumBots: 30})
	cfg := CampaignConfig{SampleSize: 5, Concurrency: 2, Experiment: testCfg()}
	base, resume := runBaseline(t, cfg, eco)
	if base.Tested != 5 {
		t.Fatalf("baseline Tested = %d, want 5", base.Tested)
	}

	var buf bytes.Buffer
	jnl := journal.New(&buf, journal.Options{Obs: obs.NewRegistry()})
	reCfg := cfg
	reCfg.Resume = resume
	reCfg.OnSettled = func(botID int, v *Verdict, qerr error) {
		t.Errorf("bot %d re-executed on resume (verdict=%v err=%v)", botID, v != nil, qerr)
	}
	ctx := journal.NewContext(context.Background(), jnl)
	res, err := CampaignContext(ctx, newEnv(t), eco, reCfg)
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	if res.Tested != base.Tested {
		t.Fatalf("resumed Tested = %d, want %d", res.Tested, base.Tested)
	}
	baseTrig := make(map[string]bool)
	for _, v := range base.Triggered {
		baseTrig[v.Subject.Name] = true
	}
	if len(res.Triggered) != len(base.Triggered) {
		t.Fatalf("resumed Triggered = %d, want %d", len(res.Triggered), len(base.Triggered))
	}
	for _, v := range res.Triggered {
		if !baseTrig[v.Subject.Name] {
			t.Fatalf("resumed triggered set diverged: unexpected %s", v.Subject.Name)
		}
	}

	events, _, err := journal.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	skips := 0
	for _, e := range events {
		if e.Kind == journal.KindWorkSkipped {
			skips++
			if e.Fields["stage"] != "honeypot" {
				t.Fatalf("work_skipped stage = %v", e.Fields["stage"])
			}
		}
		if e.Kind == journal.KindExperimentStarted {
			t.Fatal("resumed campaign started a fresh experiment")
		}
	}
	if skips != 5 {
		t.Fatalf("work_skipped events = %d, want 5 (one per settled bot)", skips)
	}
}

// TestCampaignResumePartial: bots absent from the checkpoint — and only
// those — run fresh, and the union matches an uninterrupted campaign.
func TestCampaignResumePartial(t *testing.T) {
	eco := synth.Generate(synth.Config{Seed: 7, NumBots: 30})
	cfg := CampaignConfig{SampleSize: 5, Concurrency: 2, Experiment: testCfg()}
	base, resume := runBaseline(t, cfg, eco)

	// Keep only the first two sampled bots "settled"; the rest vanish
	// from the checkpoint as if the crash predated them.
	sample := SelectMostVoted(eco.Bots, 5)
	partial := &CampaignResume{
		Verdicts:    make(map[int]*Verdict),
		Quarantined: make(map[int]error),
	}
	for _, b := range sample[:2] {
		if v, ok := resume.Verdicts[b.ID]; ok {
			partial.Verdicts[b.ID] = v
		}
	}

	var mu sync.Mutex
	fresh := make(map[int]bool)
	reCfg := cfg
	reCfg.Resume = partial
	reCfg.OnSettled = func(botID int, v *Verdict, qerr error) {
		mu.Lock()
		fresh[botID] = true
		mu.Unlock()
	}
	res, err := CampaignContext(context.Background(), newEnv(t), eco, reCfg)
	if err != nil {
		t.Fatalf("partially resumed campaign: %v", err)
	}
	if res.Tested != base.Tested {
		t.Fatalf("Tested = %d, want %d", res.Tested, base.Tested)
	}
	for _, b := range sample[:2] {
		if fresh[b.ID] {
			t.Fatalf("settled bot %d was re-executed", b.ID)
		}
	}
	if len(fresh) != 3 {
		t.Fatalf("fresh executions = %d, want 3", len(fresh))
	}
}

// TestCampaignStrictResumeFailsFast is the Strict×resume contract: a
// Strict campaign resumed over a checkpoint that recorded a quarantine
// must fail immediately — replaying the failure — without re-running
// any settled experiment or creating a single new guild.
func TestCampaignStrictResumeFailsFast(t *testing.T) {
	eco := synth.Generate(synth.Config{Seed: 7, NumBots: 30})
	// Baseline runs lenient so the flaky first experiment becomes a
	// recorded quarantine rather than an abort.
	cfg := CampaignConfig{SampleSize: 5, Concurrency: 1, Experiment: testCfg()}
	cfg.Experiment.Solver = &flakySolver{failN: 1}
	base, resume := runBaseline(t, cfg, eco)
	if len(base.Quarantined) != 1 {
		t.Fatalf("baseline quarantined = %d, want 1", len(base.Quarantined))
	}

	reCfg := cfg
	reCfg.Strict = true
	reCfg.Resume = resume
	// A solver call would mean an experiment actually launched.
	reCfg.Experiment.Solver = &flakySolver{failN: 1 << 30}
	reCfg.OnSettled = func(botID int, v *Verdict, qerr error) {
		t.Errorf("bot %d re-executed during strict resume", botID)
	}
	var buf bytes.Buffer
	jnl := journal.New(&buf, journal.Options{Obs: obs.NewRegistry()})
	ctx := journal.NewContext(context.Background(), jnl)
	res, err := CampaignContext(ctx, newEnv(t), eco, reCfg)
	if err == nil {
		t.Fatal("strict resume over a checkpointed quarantine must fail")
	}
	if !errors.Is(err, errSolverDown) {
		t.Fatalf("err = %v, want the replayed quarantine cause", err)
	}
	if res != nil {
		t.Fatal("strict resume must not return partial results")
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	events, _, err := journal.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Kind == journal.KindExperimentStarted {
			t.Fatal("strict resume launched an experiment before failing")
		}
	}
}
