package honeypot

import (
	"testing"
	"time"
)

func TestSharedGuildLosesAttribution(t *testing.T) {
	env := newEnv(t)
	cfg := testCfg()
	cfg.Settle = 1200 * time.Millisecond
	subs := []Subject{
		{Name: "InnocentA", Perms: snoopPerms, Runner: IdleBot{}},
		{Name: "Sneaky", Perms: snoopPerms, Runner: &SnoopBot{}},
		{Name: "InnocentB", Perms: snoopPerms, Prefix: "!", Runner: ResponderBot{}},
	}
	v, err := RunShared(env, cfg, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Triggered {
		t.Fatal("shared-guild snoop tripped nothing")
	}
	// The whole point of the ablation: the trigger implicates every
	// co-located bot, not just the guilty one.
	if len(v.SuspectNames) != 3 {
		t.Errorf("suspects = %v, want all 3 bots", v.SuspectNames)
	}
}

func TestSharedGuildCleanWhenAllBenign(t *testing.T) {
	env := newEnv(t)
	cfg := testCfg()
	cfg.Settle = 300 * time.Millisecond
	v, err := RunShared(env, cfg, []Subject{
		{Name: "A", Perms: snoopPerms, Runner: IdleBot{}},
		{Name: "B", Perms: snoopPerms, Runner: IdleBot{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Triggered {
		t.Error("benign shared guild triggered")
	}
}
