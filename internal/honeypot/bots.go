// Package honeypot implements the paper's dynamic analysis (§3, §4.2):
// per-bot isolated guilds seeded with canary tokens and a realistic
// conversation feed, driven end-to-end over the platform gateway, with
// triggers collected by the canary service and attributed through the
// guild-name identifier.
package honeypot

import (
	"net/http"
	"strings"
	"sync"

	"repro/internal/botsdk"
	"repro/internal/canary"
)

// BotRunner drives one connected bot session for the duration of an
// experiment. Start must not block; Stop tears the behaviour down.
type BotRunner interface {
	Start(sess *botsdk.Session, env BotEnv)
	Stop()
}

// BotEnv is what a (possibly malicious) bot knows about the outside
// world: an HTTP client for visiting links and the mail relay its
// owner uses.
type BotEnv struct {
	HTTP      *http.Client
	MailRelay string
	Prefix    string
}

// IdleBot connects and does nothing — the offline/unused bots the
// paper found dominating the lower-voted listing tiers.
type IdleBot struct{}

// Start implements BotRunner.
func (IdleBot) Start(*botsdk.Session, BotEnv) {}

// Stop implements BotRunner.
func (IdleBot) Stop() {}

// ResponderBot answers its prefix commands — a benign, functioning bot.
// It touches nothing it is not asked about, so it never trips a token.
type ResponderBot struct{}

// Start implements BotRunner.
func (ResponderBot) Start(sess *botsdk.Session, env BotEnv) {
	prefix := env.Prefix
	if prefix == "" {
		prefix = "!"
	}
	sess.OnMessage(func(s *botsdk.Session, m *botsdk.Message) {
		if m.AuthorBot || !strings.HasPrefix(m.Content, prefix) {
			return
		}
		cmd := strings.TrimPrefix(strings.Fields(m.Content)[0], prefix)
		switch cmd {
		case "help":
			s.Send(m.ChannelID, "commands: "+prefix+"help, "+prefix+"info")
		case "info":
			s.Send(m.ChannelID, s.BotName()+" reporting for duty")
		}
	})
}

// Stop implements BotRunner.
func (ResponderBot) Stop() {}

// SnoopBot models the Melonian case: it reads everything posted in its
// guilds, opens documents (resolving their external references the way
// a document preview does), visits posted links, and mails posted
// addresses. After rifling through a document it posts the giveaway
// human message the paper observed — the owner logged in as the bot.
type SnoopBot struct {
	// Giveaway is posted after the first document is opened; defaults
	// to the message from §4.2.
	Giveaway string
	// AttemptPersistence makes the snoop mint a webhook on the first
	// channel it sees — an exfiltration endpoint that survives its own
	// uninstallation. Succeeds only if the bot was granted
	// manage-webhooks; either way the attempt lands in the audit log.
	AttemptPersistence bool

	mu        sync.Mutex
	stopped   bool
	gaveaway  bool
	persisted bool
	wg        sync.WaitGroup
}

// DefaultGiveaway is the §4.2 chat line that revealed a human operator
// behind the chatbot account.
const DefaultGiveaway = "wtf is this bro"

// Start implements BotRunner.
func (b *SnoopBot) Start(sess *botsdk.Session, env BotEnv) {
	if b.Giveaway == "" {
		b.Giveaway = DefaultGiveaway
	}
	sess.OnMessage(func(s *botsdk.Session, m *botsdk.Message) {
		if b.isStopped() || m.AuthorBot {
			return
		}
		// Handlers run on the session's read loop; inspection performs
		// blocking round-trips (attachment fetches), so it must not
		// block event delivery.
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.inspect(s, env, m)
		}()
	})
}

// Stop implements BotRunner. It waits for in-flight inspections.
func (b *SnoopBot) Stop() {
	b.mu.Lock()
	b.stopped = true
	b.mu.Unlock()
	b.wg.Wait()
}

func (b *SnoopBot) isStopped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stopped
}

func (b *SnoopBot) claimPersistence() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.persisted {
		return false
	}
	b.persisted = true
	return true
}

func (b *SnoopBot) claimGiveaway() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gaveaway {
		return false
	}
	b.gaveaway = true
	return true
}

// inspect is the snooping routine: follow links, harvest addresses,
// open attachments.
func (b *SnoopBot) inspect(s *botsdk.Session, env BotEnv, m *botsdk.Message) {
	client := env.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	if b.AttemptPersistence && b.claimPersistence() {
		// Best-effort: denied unless the bot holds manage-webhooks.
		s.CreateWebhook(m.ChannelID, "totally-legit-updates")
	}
	for _, u := range canary.ExtractURLs(m.Content) {
		if resp, err := client.Get(u); err == nil {
			resp.Body.Close()
		}
	}
	if env.MailRelay != "" {
		for _, addr := range canary.ExtractEmails(m.Content) {
			_ = canary.SendMail(client, env.MailRelay, addr, "hey")
		}
	}
	openedDoc := false
	for _, att := range m.Attachments {
		fetched, err := s.FetchAttachment(m.ChannelID, m.ID, att.ID)
		if err != nil {
			continue
		}
		var refs []string
		switch {
		case strings.HasSuffix(att.Filename, ".docx"):
			if r, err := canary.ExternalRefsFromWord(fetched.Data); err == nil {
				refs = r
				openedDoc = true
			}
		case strings.HasSuffix(att.Filename, ".pdf"):
			refs = canary.URIsFromPDF(fetched.Data)
			if len(refs) > 0 {
				openedDoc = true
			}
		}
		for _, u := range refs {
			if resp, err := client.Get(u); err == nil {
				resp.Body.Close()
			}
		}
	}
	if openedDoc && !b.isStopped() && b.claimGiveaway() {
		// The human-operator giveaway from the paper, posted once.
		s.Send(m.ChannelID, b.Giveaway)
	}
}
