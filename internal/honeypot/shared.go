package honeypot

import (
	"context"
	"fmt"
	"time"

	"repro/internal/botsdk"
	"repro/internal/platform"
)

// SharedVerdict is the outcome of a shared-guild run: triggers exist
// but cannot be attributed to a single bot.
type SharedVerdict struct {
	GuildTag string
	// Triggered reports whether any token fired.
	Triggered bool
	// SuspectNames lists every bot present in the guild — with shared
	// deployment, all of them are suspects. The size of this set is
	// the attribution ambiguity the paper's per-bot isolation removes.
	SuspectNames []string
}

// RunShared installs every subject into ONE guild and plants one token
// set — the ablation of the paper's isolation design choice ("we test
// each chatbot in an independent and isolated messaging environment").
// When a trigger fires here, the experimenter learns only that SOME bot
// snooped.
func RunShared(env Env, cfg Config, subs []Subject) (*SharedVerdict, error) {
	return RunSharedContext(context.Background(), env, cfg, subs)
}

// RunSharedContext is RunShared with cancellation: the trigger-watch
// loop aborts as soon as ctx is done.
func RunSharedContext(ctx context.Context, env Env, cfg Config, subs []Subject) (*SharedVerdict, error) {
	if cfg.Personas <= 0 {
		cfg.Personas = 5
	}
	if cfg.FeedMessages <= 0 {
		cfg.FeedMessages = 25
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 10 * time.Millisecond
	}
	p := env.Platform
	guildTag := "hp-shared"
	operator := p.CreateUser("operator-shared")
	p.VerifyUser(operator.ID)
	guild, err := p.CreateGuild(operator.ID, guildTag, true)
	if err != nil {
		return nil, fmt.Errorf("honeypot: shared guild: %w", err)
	}
	var general *platform.Channel
	for _, ch := range guild.Channels {
		general = ch
	}

	personas := env.Feed.Personas(cfg.Personas)
	invite, err := p.CreateInvite(operator.ID, guild.ID)
	if err != nil {
		return nil, err
	}
	var users []*platform.User
	for _, per := range personas {
		u := p.CreateUser(per.Username)
		p.VerifyUser(u.ID)
		if _, err := p.RedeemInvite(u.ID, invite); err != nil {
			return nil, err
		}
		users = append(users, u)
	}

	v := &SharedVerdict{GuildTag: guildTag}
	var sessions []*botsdk.Session
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	var runners []BotRunner
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	for _, sub := range subs {
		bot, err := p.RegisterBot(operator.ID, sub.Name)
		if err != nil {
			return nil, err
		}
		if _, err := p.InstallBot(operator.ID, guild.ID, bot.ID, sub.Perms); err != nil {
			return nil, fmt.Errorf("honeypot: shared install %s: %w", sub.Name, err)
		}
		sess, err := botsdk.Dial(env.Gateway, bot.Token, botsdk.Options{RequestTimeout: 5 * time.Second})
		if err != nil {
			return nil, err
		}
		sessions = append(sessions, sess)
		runner := sub.Runner
		if runner == nil {
			runner = IdleBot{}
		}
		runner.Start(sess, BotEnv{MailRelay: env.Canary.BaseURL(), Prefix: sub.Prefix})
		runners = append(runners, runner)
		v.SuspectNames = append(v.SuspectNames, sub.Name)
	}

	byName := make(map[string]*platform.User, len(users))
	for i, per := range personas {
		byName[per.Username] = users[i]
	}
	for _, ex := range env.Feed.Conversation(personas, cfg.FeedMessages) {
		if _, err := p.SendMessage(byName[ex.Author.Username].ID, general.ID, ex.Text); err != nil {
			return nil, err
		}
	}
	tokens := env.Minter.MintSet(guildTag)
	if err := plantTokens(p, env, users, general.ID, tokens); err != nil {
		return nil, err
	}

	if err := watchTriggers(ctx, env, guildTag, len(tokens), cfg); err != nil {
		return nil, err
	}
	v.Triggered = len(env.Canary.TriggersFor(guildTag)) > 0
	return v, nil
}
