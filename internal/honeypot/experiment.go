package honeypot

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/botsdk"
	"repro/internal/canary"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/trace"
	"repro/internal/permissions"
	"repro/internal/platform"
	"repro/internal/retry"
	"repro/internal/scraper"
)

// Config tunes one honeypot experiment, defaulting to the paper's
// setup: 5 virtual users, 25 conversational messages, all four token
// kinds, each bot in its own isolated private guild named after it.
type Config struct {
	Personas     int           // virtual users per guild (paper: 5)
	FeedMessages int           // conversational messages (paper: 25)
	Settle       time.Duration // how long to watch for triggers after planting
	PollEvery    time.Duration
	// Solver "solves the reCAPTCHA" required to add a bot to a guild
	// (§4.2); nil skips the step.
	Solver scraper.Solver
}

// DefaultConfig returns the paper's parameters with test-friendly
// timing.
func DefaultConfig() Config {
	return Config{
		Personas:     5,
		FeedMessages: 25,
		Settle:       750 * time.Millisecond,
		PollEvery:    10 * time.Millisecond,
	}
}

// Subject is one bot under test. Runner is process state, not
// evidence: it is excluded from serialized verdicts, so a verdict
// restored from a checkpoint carries a nil Runner.
type Subject struct {
	ListingID int
	Name      string
	Perms     permissions.Permission
	Prefix    string
	Runner    BotRunner `json:"-"`
}

// Verdict is the outcome of one experiment.
type Verdict struct {
	Subject   Subject
	GuildTag  string
	Triggered bool
	// Triggers lists the recorded canary hits for this guild.
	Triggers []canary.Trigger
	// TriggeredKinds is the distinct token kinds tripped.
	TriggeredKinds []canary.Kind
	// BotMessages are messages the bot account posted that are not
	// responses to commands — the "wtf is this bro" giveaway channel.
	BotMessages []string
	// Responded reports whether the bot answered the planted command
	// (liveness signal).
	Responded bool
	// WebhookPersistence is true when the audit log shows the bot
	// creating a webhook — an exfiltration endpoint that would outlive
	// the bot's own installation.
	WebhookPersistence bool
}

// Env bundles the infrastructure an experiment runs against.
type Env struct {
	Platform *platform.Platform
	Gateway  string // gateway dial address
	Canary   *canary.Service
	Minter   *canary.Minter
	Feed     *corpus.Generator
	// Obs receives experiment counters and the settle-wait histogram;
	// nil uses the process-default registry.
	Obs *obs.Registry
	// Breakers, when set, guards the gateway dial with a circuit
	// breaker keyed "gateway <addr>": once the gateway is persistently
	// unreachable, remaining experiments fail fast (and quarantine)
	// instead of each paying the full dial timeout.
	Breakers *retry.BreakerSet
}

// Run executes one isolated honeypot experiment for a subject,
// following §4.2: create a private guild named after the chatbot, add
// personas, install the bot (solving the captcha), post a believable
// conversation, plant the four tokens, and watch for triggers.
func Run(env Env, cfg Config, sub Subject) (*Verdict, error) {
	return RunContext(context.Background(), env, cfg, sub)
}

// RunContext is Run with cancellation: the trigger-watch settle loop
// and the install-captcha solve abort as soon as ctx is done.
func RunContext(ctx context.Context, env Env, cfg Config, sub Subject) (*Verdict, error) {
	if cfg.Personas <= 0 {
		cfg.Personas = 5
	}
	if cfg.FeedMessages <= 0 {
		cfg.FeedMessages = 25
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 10 * time.Millisecond
	}
	reg := obs.Or(env.Obs)
	reg.Counter("honeypot_experiments_started_total").Inc()
	p := env.Platform

	guildTag := "hp-" + sub.Name
	ctx = journal.WithExperiment(journal.WithBot(ctx, sub.ListingID, sub.Name), guildTag)
	journal.Emit(ctx, "honeypot", journal.KindExperimentStarted, map[string]any{
		"personas": cfg.Personas,
		"perms":    sub.Perms.Value(),
		"prefix":   sub.Prefix,
	})
	operator := p.CreateUser("operator-" + sub.Name)
	p.VerifyUser(operator.ID)
	guild, err := p.CreateGuild(operator.ID, guildTag, true)
	if err != nil {
		return nil, fmt.Errorf("honeypot: create guild: %w", err)
	}
	var general *platform.Channel
	for _, ch := range guild.Channels {
		general = ch
	}

	// Personas join via invite; mobile verification is "completed
	// manually" by the experimenter (§4.2), modelled as VerifyUser.
	personas := env.Feed.Personas(cfg.Personas)
	users := make([]*platform.User, 0, cfg.Personas)
	invite, err := p.CreateInvite(operator.ID, guild.ID)
	if err != nil {
		return nil, fmt.Errorf("honeypot: invite: %w", err)
	}
	for _, per := range personas {
		u := p.CreateUser(per.Username)
		p.VerifyUser(u.ID)
		if _, err := p.RedeemInvite(u.ID, invite); err != nil {
			return nil, fmt.Errorf("honeypot: persona join: %w", err)
		}
		users = append(users, u)
	}

	// "To add a chatbot to the guild, we need to solve a Google
	// reCAPTCHA" — paid out to the solving service.
	if cfg.Solver != nil {
		endSolve := trace.StartOpDetail(ctx, "captcha_solve", sub.Name)
		_, err := scraper.SolveContext(ctx, cfg.Solver, installChallenge(sub.Name))
		endSolve()
		if err != nil {
			return nil, fmt.Errorf("honeypot: install captcha: %w", err)
		}
	}
	bot, err := p.RegisterBot(operator.ID, sub.Name)
	if err != nil {
		return nil, fmt.Errorf("honeypot: register bot: %w", err)
	}
	if _, err := p.InstallBot(operator.ID, guild.ID, bot.ID, sub.Perms); err != nil {
		return nil, fmt.Errorf("honeypot: install bot: %w", err)
	}

	gwBreaker := env.Breakers.For("gateway " + env.Gateway)
	if berr := gwBreaker.Allow(); berr != nil {
		return nil, fmt.Errorf("honeypot: connect bot: %w", berr)
	}
	sess, err := botsdk.Dial(env.Gateway, bot.Token, botsdk.Options{RequestTimeout: 5 * time.Second})
	gwBreaker.Record(err != nil)
	if err != nil {
		return nil, fmt.Errorf("honeypot: connect bot: %w", err)
	}
	defer sess.Close()
	runner := sub.Runner
	if runner == nil {
		runner = IdleBot{}
	}
	runner.Start(sess, BotEnv{MailRelay: env.Canary.BaseURL(), Prefix: sub.Prefix})
	defer runner.Stop()

	// A believable conversation feed (§3): alternating persona messages.
	exchanges := env.Feed.Conversation(personas, cfg.FeedMessages)
	byName := make(map[string]*platform.User, len(users))
	for i, per := range personas {
		byName[per.Username] = users[i]
	}
	for _, ex := range exchanges {
		if _, err := p.SendMessage(byName[ex.Author.Username].ID, general.ID, ex.Text); err != nil {
			return nil, fmt.Errorf("honeypot: feed: %w", err)
		}
	}

	// Plant the four canary tokens.
	tokens := env.Minter.MintSet(guildTag)
	if err := plantTokens(p, env, users, general.ID, tokens); err != nil {
		return nil, err
	}

	// A command message so responder-style bots show liveness.
	prefix := sub.Prefix
	if prefix == "" {
		prefix = "!"
	}
	if _, err := p.SendMessage(users[0].ID, general.ID, prefix+"help"); err != nil {
		return nil, fmt.Errorf("honeypot: command: %w", err)
	}

	// Watch for triggers until every kind fired or the settle window
	// elapses.
	settleStart := time.Now()
	endSettle := trace.StartOpDetail(ctx, "honeypot_settle", guildTag)
	err = watchTriggers(ctx, env, guildTag, len(tokens), cfg)
	endSettle()
	if err != nil {
		return nil, err
	}
	reg.Histogram("honeypot_settle_seconds").Observe(time.Since(settleStart))
	reg.Counter("honeypot_experiments_completed_total").Inc()

	v, err := verdictFor(p, env, sub, guildTag, guild.ID, general.ID, bot.ID)
	if err != nil {
		return nil, err
	}
	kinds := make([]string, 0, len(v.TriggeredKinds))
	for _, k := range v.TriggeredKinds {
		kinds = append(kinds, k.String())
	}
	journal.Emit(ctx, "honeypot", journal.KindExperimentSettled, map[string]any{
		"triggered":       v.Triggered,
		"trigger_count":   len(v.Triggers),
		"triggered_kinds": kinds,
		"responded":       v.Responded,
		"webhook_persist": v.WebhookPersistence,
	})
	return v, nil
}

// watchTriggers polls the canary service until every planted token
// fired, the settle window elapsed, or ctx was cancelled.
func watchTriggers(ctx context.Context, env Env, guildTag string, want int, cfg Config) error {
	deadline := time.NewTimer(cfg.Settle)
	defer deadline.Stop()
	tick := time.NewTicker(cfg.PollEvery)
	defer tick.Stop()
	for {
		if len(env.Canary.TriggersFor(guildTag)) >= want {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			return nil
		case <-tick.C:
		}
	}
}

// plantTokens posts the URL and email as chat and the documents as
// attachments, as §4.2 describes.
func plantTokens(p *platform.Platform, env Env, users []*platform.User, channelID platform.ID, tokens []canary.Token) error {
	poster := func(i int) platform.ID { return users[i%len(users)].ID }
	for i, tok := range tokens {
		switch tok.Kind {
		case canary.KindURL:
			if _, err := p.SendMessage(poster(i), channelID,
				"found this, worth a read: "+tok.TriggerURL); err != nil {
				return fmt.Errorf("honeypot: plant url: %w", err)
			}
		case canary.KindEmail:
			if _, err := p.SendMessage(poster(i), channelID,
				"dm me or mail "+tok.Address+" about the meetup"); err != nil {
				return fmt.Errorf("honeypot: plant email: %w", err)
			}
		case canary.KindWord:
			doc, err := canary.WordDocument(tok, "Team notes — salaries Q3 (do not share)")
			if err != nil {
				return err
			}
			if _, err := p.SendMessage(poster(i), channelID, "notes from the call",
				platform.Attachment{Filename: "notes.docx", ContentType: canary.WordMIME, Data: doc}); err != nil {
				return fmt.Errorf("honeypot: plant docx: %w", err)
			}
		case canary.KindPDF:
			pdf, err := canary.PDFDocument(tok, "Invoice 0042 — confidential")
			if err != nil {
				return err
			}
			if _, err := p.SendMessage(poster(i), channelID, "invoice attached",
				platform.Attachment{Filename: "invoice.pdf", ContentType: canary.PDFMIME, Data: pdf}); err != nil {
				return fmt.Errorf("honeypot: plant pdf: %w", err)
			}
		}
	}
	return nil
}

// verdictFor assembles the outcome after the settle window.
func verdictFor(p *platform.Platform, env Env, sub Subject, guildTag string, gID, channelID, botID platform.ID) (*Verdict, error) {
	v := &Verdict{Subject: sub, GuildTag: guildTag}
	v.Triggers = env.Canary.TriggersFor(guildTag)
	v.Triggered = len(v.Triggers) > 0
	seen := make(map[canary.Kind]bool)
	for _, trg := range v.Triggers {
		if !seen[trg.Kind] {
			seen[trg.Kind] = true
			v.TriggeredKinds = append(v.TriggeredKinds, trg.Kind)
		}
	}
	msgs, err := p.ChannelMessages(channelID)
	if err != nil {
		return nil, fmt.Errorf("honeypot: forensics read: %w", err)
	}
	for _, m := range msgs {
		if m.AuthorID != botID {
			continue
		}
		if strings.HasPrefix(m.Content, "commands: ") || strings.Contains(m.Content, "reporting for duty") {
			v.Responded = true
			continue
		}
		v.BotMessages = append(v.BotMessages, m.Content)
	}
	// Audit-log forensics: did the bot mint a persistence webhook?
	if entries, err := p.AuditLog(platform.Nil, gID); err == nil {
		for _, e := range entries {
			if e.Action == "webhook.create" && e.ActorID == botID {
				v.WebhookPersistence = true
			}
		}
	}
	return v, nil
}

func installChallenge(name string) string {
	return fmt.Sprintf("what is %d plus %d", 20+len(name)%10, 22)
}
