package honeypot

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/canary"
	"repro/internal/corpus"
	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/platform"
	"repro/internal/scraper"
	"repro/internal/synth"
)

// newEnv stands up the full honeypot infrastructure: platform, gateway,
// canary service, corpus feed.
func newEnv(t *testing.T) Env {
	t.Helper()
	p := platform.New(platform.Options{})
	gw, err := gateway.NewServer(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := canary.NewService("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw.Close()
		svc.Close()
		p.Close()
	})
	return Env{
		Platform: p,
		Gateway:  gw.Addr(),
		Canary:   svc,
		Minter:   svc.NewMinter("canary.test", canary.SequentialIDs("hp")),
		Feed:     corpus.New(1234),
	}
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Settle = 1500 * time.Millisecond
	return cfg
}

const snoopPerms = permissions.ViewChannel | permissions.ReadMessageHistory |
	permissions.SendMessages | permissions.AttachFiles

func TestSnoopBotTriggersTokens(t *testing.T) {
	env := newEnv(t)
	v, err := Run(env, testCfg(), Subject{
		ListingID: 1, Name: "Melonian", Perms: snoopPerms, Prefix: "!",
		Runner: &SnoopBot{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Triggered {
		t.Fatal("snoop bot tripped no tokens")
	}
	kinds := make(map[canary.Kind]bool)
	for _, k := range v.TriggeredKinds {
		kinds[k] = true
	}
	// The paper's observed triggers were the word document and the URL;
	// our snoop also mails the address and opens the PDF.
	for _, want := range []canary.Kind{canary.KindURL, canary.KindWord, canary.KindPDF, canary.KindEmail} {
		if !kinds[want] {
			t.Errorf("kind %s not triggered; got %v", want, v.TriggeredKinds)
		}
	}
	// The human-operator giveaway message must be visible in forensics.
	found := false
	for _, m := range v.BotMessages {
		if strings.Contains(m, "wtf is this bro") {
			found = true
		}
	}
	if !found {
		t.Errorf("giveaway message missing; bot messages = %v", v.BotMessages)
	}
	if v.GuildTag != "hp-Melonian" {
		t.Errorf("guild tag = %q", v.GuildTag)
	}
}

func TestSnoopWebhookPersistenceDetected(t *testing.T) {
	env := newEnv(t)
	cfg := testCfg()
	// Granted manage-webhooks: the persistence attempt succeeds and the
	// audit log catches it.
	v, err := Run(env, cfg, Subject{
		ListingID: 10, Name: "Persistent",
		Perms:  snoopPerms | permissions.ManageWebhooks,
		Runner: &SnoopBot{AttemptPersistence: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.WebhookPersistence {
		t.Error("webhook persistence not detected in the audit log")
	}
	// Without the grant, the attempt fails and leaves no webhook.
	cfg.Settle = 400 * time.Millisecond
	v2, err := Run(env, cfg, Subject{
		ListingID: 11, Name: "Thwarted",
		Perms:  snoopPerms, // no manage-webhooks
		Runner: &SnoopBot{AttemptPersistence: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v2.WebhookPersistence {
		t.Error("persistence reported despite missing manage-webhooks")
	}
}

func TestBenignBotsStayClean(t *testing.T) {
	env := newEnv(t)
	cfg := testCfg()
	cfg.Settle = 400 * time.Millisecond

	idle, err := Run(env, cfg, Subject{ListingID: 2, Name: "Idler", Perms: snoopPerms, Runner: IdleBot{}})
	if err != nil {
		t.Fatal(err)
	}
	if idle.Triggered {
		t.Errorf("idle bot triggered: %+v", idle.Triggers)
	}
	if idle.Responded {
		t.Error("idle bot should not respond to commands")
	}

	resp, err := Run(env, cfg, Subject{ListingID: 3, Name: "Helper", Perms: snoopPerms, Prefix: "!", Runner: ResponderBot{}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Triggered {
		t.Errorf("responder bot triggered: %+v", resp.Triggers)
	}
	if !resp.Responded {
		t.Error("responder bot did not answer the planted command")
	}
	if len(resp.BotMessages) != 0 {
		t.Errorf("responder posted unexpected messages: %v", resp.BotMessages)
	}
}

func TestExperimentIsolation(t *testing.T) {
	// Two experiments in the same env: the snoop's triggers must be
	// attributed only to its own guild.
	env := newEnv(t)
	cfg := testCfg()
	if _, err := Run(env, cfg, Subject{ListingID: 4, Name: "Snoopy", Perms: snoopPerms, Runner: &SnoopBot{}}); err != nil {
		t.Fatal(err)
	}
	cfg.Settle = 300 * time.Millisecond
	clean, err := Run(env, cfg, Subject{ListingID: 5, Name: "Cleany", Perms: snoopPerms, Runner: IdleBot{}})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Triggered {
		t.Errorf("isolation breach: clean bot blamed for %v", clean.Triggers)
	}
	if len(env.Canary.TriggersFor("hp-Snoopy")) == 0 {
		t.Error("snoop triggers lost")
	}
}

func TestInstallCaptchaSolved(t *testing.T) {
	env := newEnv(t)
	solver := &scraper.TwoCaptchaSim{CostPerSolve: 299}
	cfg := testCfg()
	cfg.Settle = 200 * time.Millisecond
	cfg.Solver = solver
	if _, err := Run(env, cfg, Subject{ListingID: 6, Name: "Gated", Perms: snoopPerms, Runner: IdleBot{}}); err != nil {
		t.Fatal(err)
	}
	if solver.Solved() != 1 {
		t.Errorf("install captcha solves = %d, want 1", solver.Solved())
	}
}

func TestCampaignFindsTheOneMaliciousBot(t *testing.T) {
	env := newEnv(t)
	eco := synth.Generate(synth.Config{Seed: 77, NumBots: 300})
	cfg := CampaignConfig{
		SampleSize:  40,
		Concurrency: 8,
		Experiment:  testCfg(),
	}
	cfg.Experiment.Settle = 400 * time.Millisecond
	res, err := CampaignContext(context.Background(), env, eco, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested != 40 {
		t.Fatalf("tested %d bots", res.Tested)
	}
	if len(res.Triggered) != 1 {
		names := []string{}
		for _, v := range res.Triggered {
			names = append(names, v.Subject.Name)
		}
		t.Fatalf("triggered bots = %v, want exactly [Melonian]", names)
	}
	if res.Triggered[0].Subject.Name != "Melonian" {
		t.Errorf("triggered bot = %s", res.Triggered[0].Subject.Name)
	}
	if msgs := res.GiveawayMessages["Melonian"]; len(msgs) == 0 {
		t.Error("giveaway messages not collected")
	}
	kinds := res.KindsTriggered()
	if kinds[canary.KindWord] != 1 || kinds[canary.KindURL] != 1 {
		t.Errorf("kinds triggered = %v", kinds)
	}
	// Sample diversity is reported, mirroring §4.2's justification.
	d := res.Diversity
	if d.GuildCountMax <= d.GuildCountMin {
		t.Errorf("guild count spread degenerate: %d..%d", d.GuildCountMin, d.GuildCountMax)
	}
	if d.VotesMax <= d.VotesMin {
		t.Errorf("vote spread degenerate: %d..%d", d.VotesMin, d.VotesMax)
	}
	if len(d.TagCoverage) < 3 {
		t.Errorf("tag coverage = %v", d.TagCoverage)
	}
}

func TestSelectMostVoted(t *testing.T) {
	eco := synth.Generate(synth.Config{Seed: 3, NumBots: 200})
	top := SelectMostVoted(eco.Bots, 50)
	if len(top) != 50 {
		t.Fatalf("sample size = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Votes < top[i].Votes {
			t.Fatal("sample not sorted by votes")
		}
	}
	for _, b := range top {
		if b.InviteHealth != 0 {
			t.Fatalf("invalid-invite bot %s in sample", b.Name)
		}
	}
	// Melonian must make the cut (paper tested it).
	found := false
	for _, b := range top {
		if b.Name == "Melonian" {
			found = true
		}
	}
	if !found {
		t.Error("Melonian missing from the most-voted sample")
	}
}

func TestRunnerForBehavior(t *testing.T) {
	if _, ok := RunnerForBehavior(synth.BehaviorSnoop).(*SnoopBot); !ok {
		t.Error("snoop behavior mapping wrong")
	}
	if _, ok := RunnerForBehavior(synth.BehaviorResponder).(ResponderBot); !ok {
		t.Error("responder behavior mapping wrong")
	}
	if _, ok := RunnerForBehavior(synth.BehaviorIdle).(IdleBot); !ok {
		t.Error("idle behavior mapping wrong")
	}
}
