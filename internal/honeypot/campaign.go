package honeypot

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/canary"
	"repro/internal/corpus"
	"repro/internal/listing"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/trace"
	"repro/internal/synth"
)

// CampaignConfig tunes a multi-bot honeypot campaign.
type CampaignConfig struct {
	// SampleSize is how many most-voted bots to test (paper: 500).
	SampleSize int
	// Concurrency bounds simultaneous experiments.
	Concurrency int
	// Experiment is the per-bot configuration.
	Experiment Config
	// Strict restores the pre-quarantine behavior: the first failed
	// experiment aborts the campaign and discards every completed
	// verdict. Default (false) quarantines the failing bot and keeps
	// the rest of the campaign's work.
	//
	// Strict interacts with Resume deliberately: the resume pass is
	// applied across the WHOLE sample before any fresh experiment
	// launches, so a Strict campaign resumed over a checkpoint that
	// recorded a quarantine fails fast — settled verdicts are replayed,
	// nothing is re-run, and no new guild is ever created.
	Strict bool
	// Resume, when set, replays settled experiment outcomes from a
	// checkpoint: settled bots are skipped idempotently (journaled as
	// work_skipped) with their prior verdict or quarantine copied into
	// the result.
	Resume *CampaignResume
	// OnSettled observes each freshly settled bot — the checkpointer's
	// feed. v is nil when the experiment was quarantined (qerr set).
	// Not called for resumed skips. May be called concurrently.
	OnSettled func(botID int, v *Verdict, qerr error)
}

// CampaignResume carries a checkpoint's settled experiment outcomes
// back into a resumed campaign, keyed by listing bot ID.
type CampaignResume struct {
	Verdicts    map[int]*Verdict
	Quarantined map[int]error
}

// Quarantine records one experiment abandoned after an infrastructure
// failure — the bot was sampled but produced no verdict.
type Quarantine struct {
	BotID int
	Name  string
	Err   error
}

// Diversity summarizes how varied the tested sample is — the paper
// justifies its sample by its spread in guild count (3M..25), votes
// (876K..6) and purpose tags.
type Diversity struct {
	GuildCountMin, GuildCountMax int
	VotesMin, VotesMax           int
	// TagCoverage counts sampled bots per purpose tag.
	TagCoverage map[string]int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Tested    int
	Triggered []*Verdict
	Verdicts  []*Verdict
	// GiveawayMessages maps bot names to non-command messages they
	// posted (the human-operator tell).
	GiveawayMessages map[string][]string
	// Diversity describes the tested sample.
	Diversity Diversity
	// Quarantined lists sampled bots whose experiments failed on
	// infrastructure errors, in sample order. Tested counts only bots
	// with verdicts, so Tested + len(Quarantined) == sample size.
	Quarantined []Quarantine
}

// Degraded reports whether any sampled bot went unverdicted.
func (r *CampaignResult) Degraded() bool { return len(r.Quarantined) > 0 }

// sampleDiversity computes the spread of a selected sample.
func sampleDiversity(sample []*listing.Bot) Diversity {
	d := Diversity{TagCoverage: make(map[string]int)}
	for i, b := range sample {
		if i == 0 {
			d.GuildCountMin, d.GuildCountMax = b.GuildCount, b.GuildCount
			d.VotesMin, d.VotesMax = b.Votes, b.Votes
		}
		if b.GuildCount < d.GuildCountMin {
			d.GuildCountMin = b.GuildCount
		}
		if b.GuildCount > d.GuildCountMax {
			d.GuildCountMax = b.GuildCount
		}
		if b.Votes < d.VotesMin {
			d.VotesMin = b.Votes
		}
		if b.Votes > d.VotesMax {
			d.VotesMax = b.Votes
		}
		for _, tag := range b.Tags {
			d.TagCoverage[tag]++
		}
	}
	return d
}

// SelectMostVoted picks the top-K most-voted bots with valid invites —
// "a diverse sample of most-voted chatbots … as these chatbots are more
// likely to be active and maintained" (§4.2).
func SelectMostVoted(bots []*listing.Bot, k int) []*listing.Bot {
	var eligible []*listing.Bot
	for _, b := range bots {
		if b.InviteHealth == listing.InviteOK {
			eligible = append(eligible, b)
		}
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		if eligible[i].Votes != eligible[j].Votes {
			return eligible[i].Votes > eligible[j].Votes
		}
		return eligible[i].ID < eligible[j].ID
	})
	if k > 0 && len(eligible) > k {
		eligible = eligible[:k]
	}
	return eligible
}

// RunnerForBehavior maps a synthetic behaviour profile to a runner.
func RunnerForBehavior(b synth.Behavior) BotRunner {
	switch b {
	case synth.BehaviorResponder:
		return ResponderBot{}
	case synth.BehaviorSnoop:
		return &SnoopBot{}
	default:
		return IdleBot{}
	}
}

// CampaignRunner is the campaign's per-bot form for caller-scheduled
// executors: the sharded pipeline applies the resume pass, then drives
// RunBot for each sample index under its own scheduling, and assembles
// the result with Result. CampaignContext is a thin worker pool over
// the same machinery, so both executors settle bots identically.
type CampaignRunner struct {
	env Env
	eco *synth.Ecosystem
	cfg CampaignConfig

	sample       []*listing.Bot
	verdicts     []*Verdict
	quarantined  []error
	settled      []bool
	cQuarantined *obs.Counter
}

// NewCampaignRunner selects the sample and prepares per-bot slots.
// cfg's sample-size and concurrency defaults are applied here, before
// the sample selection and feed derivation that depend on them.
func NewCampaignRunner(env Env, eco *synth.Ecosystem, cfg CampaignConfig) *CampaignRunner {
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 500
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	sample := SelectMostVoted(eco.Bots, cfg.SampleSize)
	return &CampaignRunner{
		env:          env,
		eco:          eco,
		cfg:          cfg,
		sample:       sample,
		verdicts:     make([]*Verdict, len(sample)),
		quarantined:  make([]error, len(sample)),
		settled:      make([]bool, len(sample)),
		cQuarantined: obs.Or(env.Obs).Counter("honeypot_bots_quarantined_total"),
	}
}

// Sample returns the selected most-voted sample in campaign order.
func (cr *CampaignRunner) Sample() []*listing.Bot { return cr.sample }

// Settled reports whether sample index i was settled by the resume
// pass (no fresh experiment needed).
func (cr *CampaignRunner) Settled(i int) bool { return cr.settled[i] }

// ApplyResume replays checkpointed outcomes over the WHOLE sample
// before any fresh experiment launches. This ordering is what makes
// Strict×resume safe: a checkpointed quarantine fails the campaign
// fast without re-running a single settled experiment or creating a
// new guild.
func (cr *CampaignRunner) ApplyResume(ctx context.Context) error {
	if cr.cfg.Resume == nil {
		return nil
	}
	for i, b := range cr.sample {
		if v, ok := cr.cfg.Resume.Verdicts[b.ID]; ok {
			cr.verdicts[i] = v
			cr.settled[i] = true
			journal.Emit(journal.WithBot(ctx, b.ID, b.Name), "honeypot",
				journal.KindWorkSkipped, map[string]any{
					"stage":  "honeypot",
					"reason": "settled in checkpoint",
				})
			continue
		}
		if qerr, ok := cr.cfg.Resume.Quarantined[b.ID]; ok {
			if cr.cfg.Strict {
				return fmt.Errorf("honeypot: bot %s: %w", b.Name, qerr)
			}
			cr.quarantined[i] = qerr
			cr.settled[i] = true
			journal.Emit(journal.WithBot(ctx, b.ID, b.Name), "honeypot",
				journal.KindWorkSkipped, map[string]any{
					"stage":  "honeypot",
					"reason": "quarantined in checkpoint",
				})
		}
	}
	return nil
}

// RunBot runs the fresh experiment for sample index i (a no-op for
// resume-settled indexes), records the outcome in the runner's slots,
// and returns it for checkpoint batching. The returned error is fatal:
// context cancellation, or any failure under cfg.Strict.
func (cr *CampaignRunner) RunBot(ctx context.Context, i int) (v *Verdict, qerr error, err error) {
	if cr.settled[i] {
		return nil, nil, nil
	}
	b := cr.sample[i]
	sub := Subject{
		ListingID: b.ID,
		Name:      b.Name,
		Perms:     b.Perms,
		Prefix:    b.Prefix,
		Runner:    RunnerForBehavior(cr.eco.Behaviors[b.ID]),
	}
	// Each experiment gets its own derived feed so concurrent guilds
	// neither interleave one RNG stream nor lose per-experiment
	// determinism — the same property makes verdicts independent of
	// which executor (sequential or sharded) scheduled the experiment.
	expEnv := cr.env
	expEnv.Feed = corpus.Derive(int64(cr.cfg.SampleSize), int64(b.ID))
	expCtx, span := obs.StartChild(ctx, "experiment-"+b.Name)
	expCtx = journal.WithBot(expCtx, b.ID, b.Name)
	expCtx = trace.WithBot(expCtx, b.ID, b.Name)
	endStage := trace.StartStage(expCtx)
	verdict, rerr := RunContext(expCtx, expEnv, cr.cfg.Experiment, sub)
	endStage()
	span.End()
	if rerr != nil {
		switch {
		case errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded):
			return nil, nil, rerr
		case cr.cfg.Strict:
			return nil, nil, fmt.Errorf("honeypot: bot %s: %w", b.Name, rerr)
		}
		cr.quarantined[i] = rerr
		cr.cQuarantined.Inc()
		journal.Emit(expCtx, "honeypot", journal.KindBotQuarantined, map[string]any{
			"error": rerr.Error(),
		})
		if cr.cfg.OnSettled != nil {
			cr.cfg.OnSettled(b.ID, nil, rerr)
		}
		return nil, rerr, nil
	}
	cr.verdicts[i] = verdict
	if cr.cfg.OnSettled != nil {
		cr.cfg.OnSettled(b.ID, verdict, nil)
	}
	return verdict, nil, nil
}

// Result assembles the campaign outcome in sample order.
func (cr *CampaignRunner) Result() *CampaignResult {
	res := &CampaignResult{
		GiveawayMessages: make(map[string][]string),
		Diversity:        sampleDiversity(cr.sample),
	}
	for i, v := range cr.verdicts {
		if v == nil {
			if cr.quarantined[i] != nil {
				res.Quarantined = append(res.Quarantined, Quarantine{
					BotID: cr.sample[i].ID, Name: cr.sample[i].Name, Err: cr.quarantined[i],
				})
			}
			continue
		}
		res.Tested++
		res.Verdicts = append(res.Verdicts, v)
		if v.Triggered {
			res.Triggered = append(res.Triggered, v)
		}
		if len(v.BotMessages) > 0 {
			res.GiveawayMessages[v.Subject.Name] = v.BotMessages
		}
	}
	return res
}

// CampaignContext runs isolated experiments over the most-voted sample
// of an ecosystem with cancellation, mirroring the paper's 500-bot
// study: no new experiments launch after ctx is done, and in-flight
// experiments abort at their next wait point. Each experiment runs
// under its own child span of any span carried by ctx.
//
// By default a failed experiment quarantines its bot — counted,
// journaled, skipped — and every completed verdict is kept; set
// cfg.Strict to restore the historical first-error-discards-everything
// behavior. Context cancellation always ends the campaign, but the
// verdicts completed before the cut are returned alongside the error.
func CampaignContext(ctx context.Context, env Env, eco *synth.Ecosystem, cfg CampaignConfig) (*CampaignResult, error) {
	cr := NewCampaignRunner(env, eco, cfg)
	if err := cr.ApplyResume(ctx); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, cr.cfg.Concurrency)
	var firstErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i := range cr.sample {
		if err := ctx.Err(); err != nil {
			fail(err)
			break
		}
		if cr.settled[i] {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, _, err := cr.RunBot(ctx, i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()

	res := cr.Result()
	if firstErr != nil {
		if cfg.Strict {
			return nil, firstErr
		}
		// Cancellation (the only lenient-mode firstErr): hand back the
		// work that did complete alongside the error.
		return res, firstErr
	}
	return res, nil
}

// KindsTriggered summarizes which token kinds fired across a campaign.
func (r *CampaignResult) KindsTriggered() map[canary.Kind]int {
	out := make(map[canary.Kind]int)
	for _, v := range r.Triggered {
		for _, k := range v.TriggeredKinds {
			out[k]++
		}
	}
	return out
}
