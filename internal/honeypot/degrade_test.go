package honeypot

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/synth"
)

// flakySolver fails the first failN install-captcha solves, then
// answers like the stock arithmetic solver.
type flakySolver struct {
	mu    sync.Mutex
	calls int
	failN int
}

var errSolverDown = errors.New("solver service down")

func (s *flakySolver) Solve(challenge string) (string, error) {
	s.mu.Lock()
	s.calls++
	n := s.calls
	s.mu.Unlock()
	if n <= s.failN {
		return "", errSolverDown
	}
	var a, b int
	if _, err := fmt.Sscanf(challenge, "what is %d plus %d", &a, &b); err != nil {
		return "", err
	}
	return strconv.Itoa(a + b), nil
}

// TestCampaignQuarantinesFailedExperiment is the regression test for
// the firstErr-discards-everything bug: one failed experiment must
// quarantine that bot and keep every completed verdict.
func TestCampaignQuarantinesFailedExperiment(t *testing.T) {
	env := newEnv(t)
	eco := synth.Generate(synth.Config{Seed: 7, NumBots: 30})

	cfg := CampaignConfig{
		SampleSize:  5,
		Concurrency: 1, // sequential, so exactly the first sampled bot fails
		Experiment:  testCfg(),
	}
	cfg.Experiment.Solver = &flakySolver{failN: 1}

	res, err := CampaignContext(context.Background(), env, eco, cfg)
	if err != nil {
		t.Fatalf("lenient campaign errored: %v", err)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined = %d, want 1", len(res.Quarantined))
	}
	if res.Tested != 4 {
		t.Fatalf("Tested = %d, want 4 (5 sampled − 1 quarantined)", res.Tested)
	}
	if res.Tested+len(res.Quarantined) != 5 {
		t.Fatal("Tested + Quarantined must cover the sample")
	}
	q := res.Quarantined[0]
	want := SelectMostVoted(eco.Bots, 5)[0]
	if q.BotID != want.ID || q.Name != want.Name {
		t.Fatalf("quarantined %d/%s, want the first sampled bot %d/%s", q.BotID, q.Name, want.ID, want.Name)
	}
	if !errors.Is(q.Err, errSolverDown) {
		t.Fatalf("quarantine error = %v, want errSolverDown", q.Err)
	}
	if !res.Degraded() {
		t.Fatal("campaign with a quarantine must report Degraded")
	}
}

// TestCampaignStrictModeAborts: the old behavior stays available.
func TestCampaignStrictModeAborts(t *testing.T) {
	env := newEnv(t)
	eco := synth.Generate(synth.Config{Seed: 7, NumBots: 30})

	cfg := CampaignConfig{
		SampleSize:  5,
		Concurrency: 1,
		Experiment:  testCfg(),
		Strict:      true,
	}
	cfg.Experiment.Solver = &flakySolver{failN: 1}

	res, err := CampaignContext(context.Background(), env, eco, cfg)
	if err == nil {
		t.Fatal("strict campaign should abort on the failed experiment")
	}
	if !errors.Is(err, errSolverDown) {
		t.Fatalf("err = %v, want wrapped errSolverDown", err)
	}
	if res != nil {
		t.Fatal("strict campaign must not return partial results")
	}
}
