// Package policygen generates synthetic chatbot privacy policies with a
// controlled ground-truth disclosure class, so the traceability analyzer
// (which must rediscover that class from the text alone) can be
// validated exactly — the offline analogue of the paper's 100-policy
// manual review.
//
// The four data-practice categories come from the paper's §3: Collect,
// Use, Retain, Disclose. A policy that describes all four is "complete",
// some of them "partial", and none (or no policy at all) "broken".
package policygen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Category is one of the four data-practice categories.
type Category int

// The categories, in the paper's order.
const (
	Collect Category = iota
	Use
	Retain
	Disclose
)

// AllCategories lists every category.
var AllCategories = []Category{Collect, Use, Retain, Disclose}

// String names the category.
func (c Category) String() string {
	switch c {
	case Collect:
		return "collect"
	case Use:
		return "use"
	case Retain:
		return "retain"
	case Disclose:
		return "disclose"
	default:
		return "unknown"
	}
}

// Keywords returns the synonym set for a category — the same sets the
// traceability analyzer searches for. Phrases are matched on word
// boundaries, lower-case.
func (c Category) Keywords() []string {
	switch c {
	case Collect:
		return []string{"collect", "collects", "collected", "gather", "gathers",
			"gathered", "acquire", "acquires", "acquired", "obtain", "obtains",
			"obtained", "receive", "receives", "received", "record", "records", "recorded"}
	case Use:
		return []string{"use", "uses", "used", "process", "processes", "processed",
			"analyze", "analyzes", "analyse", "utilize", "utilizes"}
	case Retain:
		return []string{"retain", "retains", "retained", "store", "stores", "stored",
			"keep", "keeps", "kept", "save", "saves", "saved", "remember", "remembers"}
	case Disclose:
		return []string{"disclose", "discloses", "disclosed", "share", "shares",
			"shared", "transfer", "transfers", "sell", "sells", "sold",
			"third party", "third parties", "third-party"}
	default:
		return nil
	}
}

// DataType is a user-data type a chatbot can touch; the generator ties
// sentences to the data the bot's permissions expose.
type DataType string

// Data types seen in the chatbot ecosystem.
const (
	DataMessageContent  DataType = "message content"
	DataMessageMetadata DataType = "message metadata"
	DataVoiceMetadata   DataType = "voice metadata"
	DataEmail           DataType = "email address"
	DataUsername        DataType = "username and discriminator"
	DataGuildInfo       DataType = "server configuration"
	DataCommandUsage    DataType = "command usage statistics"
	DataAttachments     DataType = "uploaded files"
)

// Spec controls generation of one policy document.
type Spec struct {
	BotName string
	// Covered lists the categories the policy actually describes.
	// Empty means the text is privacy-free boilerplate: the analyzer
	// should classify it broken.
	Covered []Category
	// DataTypes mentioned by the policy; defaults to message content +
	// command usage when empty.
	DataTypes []DataType
	// Generic, when true, yields one of a small pool of boilerplate
	// templates with only the bot name substituted — modelling the
	// verbatim policy reuse the paper observed across bots.
	Generic bool
	// GenericTemplate selects the boilerplate variant (mod pool size).
	GenericTemplate int
}

// sentence fragments per category. Each template consumes a data type
// and embeds at least one keyword of its category.
var categorySentences = map[Category][]string{
	Collect: {
		"We collect your %s when you interact with the bot.",
		"The bot gathers %s to operate its features.",
		"%s is obtained from the channels the bot is present in.",
		"Our service receives %s through the platform API.",
		"The application records %s during normal operation.",
	},
	Use: {
		"We use your %s to provide bot functionality.",
		"Your %s is processed to respond to commands.",
		"The service analyzes %s to improve response quality.",
		"We utilize %s for feature personalization.",
	},
	Retain: {
		"We retain %s for up to thirty days.",
		"Your %s is stored on our servers.",
		"The bot keeps %s only as long as needed.",
		"%s is saved in encrypted form.",
	},
	Disclose: {
		"We do not sell your %s, but we may share it with service providers.",
		"Your %s is never disclosed except as required by law.",
		"We may transfer %s to third parties that host our infrastructure.",
		"%s is shared with no one outside our team.",
	},
}

// filler paragraphs deliberately free of every category keyword, so a
// policy covering no categories classifies as broken despite having a
// document.
var filler = []string{
	"Welcome to the official policy page of %s.",
	"This document explains our approach to your privacy.",
	"Questions about this policy can be sent to our support channel.",
	"This policy may be updated from time to time; the latest version is always available here.",
	"By adding the bot to your server you agree to the terms described on this page.",
	"Our team is committed to the security of the service.",
	"For terms of service, see the companion page.",
}

var genericPool = []string{
	"This privacy policy applies to %s. We collect basic account data and message content needed for commands. We use this data to operate the service. Contact support with any concerns.",
	"%s respects your privacy. Information such as usernames and message content is collected and used solely for bot features. Data may be shared with infrastructure providers.",
	"Privacy Policy for %s: the service stores command usage statistics and uses them for analytics. No information is sold.",
}

// Generator produces deterministic policies.
type Generator struct {
	rng *rand.Rand
}

// New creates a generator; equal seeds yield equal documents.
func New(seed int64) *Generator { return &Generator{rng: rand.New(rand.NewSource(seed))} }

// Generate renders the policy text for a spec.
func (g *Generator) Generate(spec Spec) string {
	if spec.Generic {
		tmpl := genericPool[((spec.GenericTemplate%len(genericPool))+len(genericPool))%len(genericPool)]
		return fmt.Sprintf(tmpl, spec.BotName)
	}
	types := spec.DataTypes
	if len(types) == 0 {
		types = []DataType{DataMessageContent, DataCommandUsage}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Privacy Policy — %s\n\n", spec.BotName)
	b.WriteString(fmt.Sprintf(filler[0], spec.BotName))
	b.WriteByte(' ')
	b.WriteString(filler[1])
	b.WriteString("\n\n")
	for _, c := range spec.Covered {
		tmpl := categorySentences[c][g.rng.Intn(len(categorySentences[c]))]
		dt := types[g.rng.Intn(len(types))]
		fmt.Fprintf(&b, tmpl+"\n", dt)
	}
	// Trailing keyword-free boilerplate.
	for i := 2; i < len(filler); i++ {
		if g.rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf(filler[i], spec.BotName))
			b.WriteByte('\n')
		}
	}
	b.WriteString(filler[3] + "\n")
	return b.String()
}

// Class is a disclosure classification.
type Class int

// Disclosure classes, per the paper's §3 definitions.
const (
	Broken Class = iota
	Partial
	Complete
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Complete:
		return "complete"
	case Partial:
		return "partial"
	default:
		return "broken"
	}
}

// TruthClass returns the ground-truth class a spec's document should be
// assigned by a correct analyzer.
func (s Spec) TruthClass() Class {
	if s.Generic {
		// Generic templates cover whatever their boilerplate mentions;
		// every pool entry covers Collect and Use (template 0/1) or
		// Retain and Use (template 2) — all partial.
		return Partial
	}
	seen := map[Category]bool{}
	for _, c := range s.Covered {
		seen[c] = true
	}
	switch len(seen) {
	case 0:
		return Broken
	case len(AllCategories):
		return Complete
	default:
		return Partial
	}
}
