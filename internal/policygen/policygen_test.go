package policygen

import (
	"strings"
	"testing"
)

func TestCategoryNamesAndKeywords(t *testing.T) {
	for _, c := range AllCategories {
		if c.String() == "unknown" {
			t.Errorf("category %d unnamed", c)
		}
		if len(c.Keywords()) == 0 {
			t.Errorf("category %s has no keywords", c)
		}
	}
	if Category(99).String() != "unknown" || Category(99).Keywords() != nil {
		t.Error("unknown category should be inert")
	}
}

func TestKeywordsDistinctAcrossCategories(t *testing.T) {
	seen := make(map[string]Category)
	for _, c := range AllCategories {
		for _, kw := range c.Keywords() {
			if prev, dup := seen[kw]; dup {
				t.Errorf("keyword %q in both %s and %s", kw, prev, c)
			}
			seen[kw] = c
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{BotName: "TestBot", Covered: []Category{Collect, Use}}
	a := New(5).Generate(spec)
	b := New(5).Generate(spec)
	if a != b {
		t.Error("same seed, different documents")
	}
	c := New(6).Generate(spec)
	if a == c {
		t.Error("different seed, identical documents")
	}
}

func TestGenerateCoversRequestedCategories(t *testing.T) {
	g := New(9)
	for _, covered := range [][]Category{
		{Collect}, {Use}, {Retain}, {Disclose},
		{Collect, Disclose}, AllCategories,
	} {
		text := strings.ToLower(g.Generate(Spec{BotName: "B", Covered: covered}))
		for _, c := range covered {
			found := false
			for _, kw := range c.Keywords() {
				if keywordInText(text, kw) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("covered category %s has no keyword in:\n%s", c, text)
			}
		}
	}
}

// keywordInText does simple boundary-ish matching for the test.
func keywordInText(text, kw string) bool {
	if strings.ContainsRune(kw, ' ') || strings.ContainsRune(kw, '-') {
		return strings.Contains(text, kw)
	}
	for _, w := range strings.FieldsFunc(text, func(r rune) bool {
		return !('a' <= r && r <= 'z') && !('0' <= r && r <= '9') && r != '-'
	}) {
		if w == kw {
			return true
		}
	}
	return false
}

func TestUncoveredPolicyAvoidsAllKeywords(t *testing.T) {
	g := New(3)
	for i := 0; i < 20; i++ {
		text := strings.ToLower(g.Generate(Spec{BotName: "Clean"}))
		for _, c := range AllCategories {
			for _, kw := range c.Keywords() {
				if keywordInText(text, kw) {
					t.Fatalf("keyword-free policy contains %q (%s):\n%s", kw, c, text)
				}
			}
		}
	}
}

func TestGenericTemplatesStableAndPartial(t *testing.T) {
	g := New(1)
	a := g.Generate(Spec{BotName: "X", Generic: true, GenericTemplate: 0})
	b := g.Generate(Spec{BotName: "Y", Generic: true, GenericTemplate: 0})
	// Verbatim reuse apart from the substituted name (§4.2).
	if strings.ReplaceAll(a, "X", "NAME") != strings.ReplaceAll(b, "Y", "NAME") {
		t.Error("generic template not reused verbatim")
	}
	// Negative template indexes must not panic.
	_ = g.Generate(Spec{BotName: "Z", Generic: true, GenericTemplate: -7})
	for k := 0; k < 3; k++ {
		spec := Spec{BotName: "G", Generic: true, GenericTemplate: k}
		if spec.TruthClass() != Partial {
			t.Errorf("generic template %d truth = %s", k, spec.TruthClass())
		}
	}
}

func TestTruthClass(t *testing.T) {
	cases := []struct {
		covered []Category
		want    Class
	}{
		{nil, Broken},
		{[]Category{Use}, Partial},
		{[]Category{Use, Use, Use}, Partial}, // duplicates don't inflate
		{[]Category{Collect, Use, Retain}, Partial},
		{AllCategories, Complete},
	}
	for _, c := range cases {
		got := Spec{Covered: c.covered}.TruthClass()
		if got != c.want {
			t.Errorf("TruthClass(%v) = %s, want %s", c.covered, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if Broken.String() != "broken" || Partial.String() != "partial" || Complete.String() != "complete" {
		t.Error("class labels wrong")
	}
}

func TestDataTypesAppearInPolicy(t *testing.T) {
	g := New(12)
	text := g.Generate(Spec{
		BotName:   "DT",
		Covered:   []Category{Collect},
		DataTypes: []DataType{DataVoiceMetadata},
	})
	if !strings.Contains(text, string(DataVoiceMetadata)) {
		t.Errorf("specified data type missing:\n%s", text)
	}
}
