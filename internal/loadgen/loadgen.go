// Package loadgen drives persona-shaped traffic through a live gateway:
// many guilds, many chatting users, and a fleet of bot sessions
// connected over real TCP sockets — the workload ROADMAP item 2 needs
// to prove the traffic plane degrades instead of falling over. One Run
// self-hosts a platform + gateway, connects Sessions bot sessions
// (plus deliberately stalled clients), publishes user messages at a
// configured rate, and reports sustained fan-out throughput together
// with the server's shed/drop/reap accounting.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/botsdk"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/permissions"
	"repro/internal/platform"
	"repro/internal/retry"
)

// Config shapes one load-generation run. The zero value is usable: it
// runs a small smoke-sized workload.
type Config struct {
	// Topology.
	Guilds        int // default 8
	UsersPerGuild int // default 20
	Sessions      int // bot sessions to connect (default 64)
	Tenants       int // distinct bot owners the sessions divide into (default 8)
	Stalled       int // clients that identify, then never read another byte

	// Traffic.
	Duration      time.Duration // publishing window (default 5s)
	MsgRate       float64       // user messages/sec per guild (default 50)
	ReqRate       float64       // requests/sec per responder bot (default 2)
	ResponderFrac float64       // fraction of bots that also issue requests (default 0.25)

	// Chaos.
	FaultProfile string // "", "none", "mild", "moderate", "storm"
	FaultSeed    int64

	// Gateway knobs.
	Limits       gateway.Limits
	SessionRPS   float64 // per-session request rate limit (0 = off)
	SessionBurst int

	// Target, when set, points the run at an externally hosted platform
	// and gateway instead of self-hosting them — the soak conductor's
	// mode, where loadgen traffic and the audit pipeline share one world.
	// The host owns the gateway's Limits/Journal/Obs/FaultPolicy wiring
	// and its lifecycle; Config.Limits then only shapes client-side
	// heartbeat hints, and server counters are read from Obs (which
	// should be the host's registry).
	Target *Target

	Seed    int64
	Obs     *obs.Registry // nil = fresh registry
	Journal *journal.Journal
	Logf    func(format string, args ...any)
}

// Target names an externally hosted world to drive traffic into.
type Target struct {
	Platform *platform.Platform
	Addr     string // gateway listen address to dial
}

func (c Config) withDefaults() Config {
	if c.Guilds <= 0 {
		c.Guilds = 8
	}
	if c.UsersPerGuild <= 0 {
		c.UsersPerGuild = 20
	}
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.MsgRate <= 0 {
		c.MsgRate = 50
	}
	if c.ReqRate <= 0 {
		c.ReqRate = 2
	}
	if c.ResponderFrac <= 0 {
		c.ResponderFrac = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Result is one run's measurement, JSON-shaped for BENCH_GATEWAY.json.
type Result struct {
	Profile           string  `json:"fault_profile"`
	Guilds            int     `json:"guilds"`
	UsersPerGuild     int     `json:"users_per_guild"`
	SessionsTarget    int     `json:"sessions_target"`
	SessionsConnected int     `json:"sessions_connected"`
	SessionsAliveEnd  int     `json:"sessions_alive_at_end"`
	StalledClients    int     `json:"stalled_clients"`
	DurationMS        float64 `json:"duration_ms"`

	Published       int64   `json:"msgs_published"`
	PublishErrors   int64   `json:"publish_errors"`
	PublishedPerSec float64 `json:"msgs_published_per_sec"`
	Delivered       int64   `json:"events_delivered"`
	DeliveredPerSec float64 `json:"events_delivered_per_sec"`
	ExpectedFanout  int64   `json:"expected_fanout"`
	DeliveryRatio   float64 `json:"delivery_ratio"`

	RequestsOK     int64 `json:"requests_ok"`
	RequestsFailed int64 `json:"requests_failed"`
	Reconnects     int64 `json:"reconnects"`
	ShedDials      int64 `json:"shed_dials"`

	// Per-reason shed breakdown (sums to Shed).
	ShedMaxSessions  int64 `json:"shed_max_sessions"`
	ShedIdentifyRate int64 `json:"shed_identify_rate"`
	ShedTenantRate   int64 `json:"shed_tenant_rate"`

	// Server-side accounting, read from the gateway's registry.
	EventsDropped   int64 `json:"events_dropped"`
	SubDropped      int64 `json:"sub_events_dropped"`
	SlowDisconnects int64 `json:"slow_consumer_disconnects"`
	Reaped          int64 `json:"sessions_reaped"`
	Shed            int64 `json:"sessions_shed"`
	Throttled       int64 `json:"requests_throttled"`
	TenantThrottled int64 `json:"tenant_throttled"`
	FaultsInjected  int64 `json:"faults_injected"`
}

// Run executes one load-generation run to completion.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	raiseFDLimit()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}

	var hostPlat *platform.Platform
	if cfg.Target != nil {
		hostPlat = cfg.Target.Platform
	}
	world, err := buildWorld(cfg, hostPlat)
	if err != nil {
		return nil, err
	}
	if world.owned {
		defer world.p.Close()
	}

	var addr string
	var inj *faults.Injector
	if cfg.Target != nil {
		addr = cfg.Target.Addr
	} else {
		srv, err := gateway.NewServer(world.p, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		srv.SetObs(reg)
		srv.SetJournal(cfg.Journal)
		srv.SetLimits(cfg.Limits)
		if cfg.SessionRPS > 0 {
			srv.SetRateLimit(cfg.SessionRPS, cfg.SessionBurst)
		}
		if cfg.FaultProfile != "" && cfg.FaultProfile != "none" {
			prof, err := faults.Named(cfg.FaultProfile)
			if err != nil {
				return nil, err
			}
			inj = faults.New(prof, cfg.FaultSeed, faults.Options{Obs: reg, Journal: cfg.Journal})
			srv.SetFaultPolicy(inj)
		}
		addr = srv.Addr()
	}

	res := &Result{
		Profile:        cfg.FaultProfile,
		Guilds:         cfg.Guilds,
		UsersPerGuild:  cfg.UsersPerGuild,
		SessionsTarget: cfg.Sessions,
		StalledClients: cfg.Stalled,
	}
	if res.Profile == "" {
		res.Profile = "none"
	}
	var (
		delivered  atomic.Int64
		published  atomic.Int64
		pubErrs    atomic.Int64
		expected   atomic.Int64
		reqOK      atomic.Int64
		reqFailed  atomic.Int64
		shedDials  atomic.Int64
		reconnects atomic.Int64
	)

	// Heartbeats keep sessions alive under server-side liveness reaping.
	sdkOpts := botsdk.Options{RequestTimeout: 5 * time.Second}
	if hb := cfg.Limits.HeartbeatTimeout; hb > 0 {
		sdkOpts.HeartbeatEvery = hb / 3
	}

	// Connect the fleet. Shed refusals back off on the server's hint and
	// retry; a session that stays shed past its budget is simply absent
	// from the run (that IS graceful degradation, and it is counted).
	var (
		connMu sync.Mutex
		fleet  []*botsdk.Reconnector
	)
	var wgDial sync.WaitGroup
	dialSlots := make(chan struct{}, 64)
	for i, bot := range world.bots {
		wgDial.Add(1)
		go func(i int, token string) {
			defer wgDial.Done()
			dialSlots <- struct{}{}
			defer func() { <-dialSlots }()
			pol := retry.Policy{
				MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second,
				Multiplier: 2, Jitter: 0.2, Seed: cfg.Seed + int64(i), RetryAfterCap: 2 * time.Second,
			}
			var rc *botsdk.Reconnector
			err := retry.Do(ctx, pol, func(context.Context) error {
				var err error
				rc, err = botsdk.Reconnect(addr, token, sdkOpts)
				if err == nil {
					return nil
				}
				var shed *botsdk.ShedError
				if errors.As(err, &shed) {
					shedDials.Add(1)
					return retry.After(err, shed.RetryAfter)
				}
				return err
			})
			if err != nil {
				return
			}
			rc.OnReconnect = func(int) { reconnects.Add(1) }
			rc.OnMessage(func(_ *botsdk.Session, _ *botsdk.Message) {
				delivered.Add(1)
			})
			connMu.Lock()
			fleet = append(fleet, rc)
			connMu.Unlock()
		}(i, bot.token)
	}
	wgDial.Wait()
	res.SessionsConnected = len(fleet)
	cfg.Logf("loadgen: %d/%d sessions connected (%d shed dials)",
		res.SessionsConnected, cfg.Sessions, shedDials.Load())

	// Stalled clients: identify, then never read — the pathological
	// consumer the slow-consumer policy exists for.
	stallCtx, stopStall := context.WithCancel(ctx)
	defer stopStall()
	var wgStall sync.WaitGroup
	for i := 0; i < cfg.Stalled && i < len(world.stalledBots); i++ {
		wgStall.Add(1)
		go func(token string) {
			defer wgStall.Done()
			stallClient(stallCtx, addr, token)
		}(world.stalledBots[i].token)
	}

	// Traffic window.
	trafficCtx, stopTraffic := context.WithTimeout(ctx, cfg.Duration)
	defer stopTraffic()
	start := time.Now()

	var wgTraffic sync.WaitGroup
	// Publishers: users chatting in every guild.
	for gi, g := range world.guilds {
		wgTraffic.Add(1)
		go func(gi int, g *guildWorld) {
			defer wgTraffic.Done()
			runChatters(trafficCtx, world.p, g, cfg.MsgRate, rand.New(rand.NewSource(cfg.Seed+int64(gi)*7919)),
				&published, &pubErrs, &expected)
		}(gi, g)
	}
	// Responder personas: a slice of the fleet answers the room.
	nResponders := int(float64(len(fleet)) * cfg.ResponderFrac)
	for i := 0; i < nResponders; i++ {
		wgTraffic.Add(1)
		go func(i int, rc *botsdk.Reconnector) {
			defer wgTraffic.Done()
			runResponder(trafficCtx, rc, world, cfg.ReqRate,
				rand.New(rand.NewSource(cfg.Seed+int64(i)*104729)), &reqOK, &reqFailed, &expected)
		}(i, fleet[i])
	}
	wgTraffic.Wait()
	elapsed := time.Since(start)
	// Let queued dispatches drain before the final count.
	time.Sleep(300 * time.Millisecond)

	for _, rc := range fleet {
		if sess := rc.Session(); sess != nil {
			select {
			case <-sess.Done():
			default:
				res.SessionsAliveEnd++
			}
		}
	}
	stopStall()
	wgStall.Wait()
	for _, rc := range fleet {
		rc.Close()
	}

	res.DurationMS = float64(elapsed.Nanoseconds()) / 1e6
	res.Published = published.Load()
	res.PublishErrors = pubErrs.Load()
	res.Delivered = delivered.Load()
	res.ExpectedFanout = expected.Load()
	secs := elapsed.Seconds()
	if secs > 0 {
		res.PublishedPerSec = float64(res.Published) / secs
		res.DeliveredPerSec = float64(res.Delivered) / secs
	}
	if res.ExpectedFanout > 0 {
		res.DeliveryRatio = float64(res.Delivered) / float64(res.ExpectedFanout)
	}
	res.RequestsOK = reqOK.Load()
	res.RequestsFailed = reqFailed.Load()
	res.Reconnects = reconnects.Load()
	res.ShedDials = shedDials.Load()

	res.EventsDropped = reg.Counter("gateway_events_dropped_total").Value()
	res.SubDropped = reg.Counter("gateway_sub_events_dropped_total").Value()
	res.SlowDisconnects = reg.Counter("gateway_slow_consumer_disconnects_total").Value()
	res.Reaped = reg.Counter("gateway_sessions_reaped_total").Value()
	res.Shed = reg.Counter("gateway_sessions_shed_total").Value()
	res.ShedMaxSessions = reg.Counter("gateway_sessions_shed_max_sessions_total").Value()
	res.ShedIdentifyRate = reg.Counter("gateway_sessions_shed_identify_rate_total").Value()
	res.ShedTenantRate = reg.Counter("gateway_sessions_shed_tenant_rate_total").Value()
	res.Throttled = reg.Counter("gateway_requests_throttled_total").Value()
	res.TenantThrottled = reg.Counter("gateway_tenant_throttled_total").Value()
	if inj != nil {
		res.FaultsInjected = int64(inj.Count())
	} else {
		// Target mode: the host owns the injector; its counter lives on
		// the shared registry.
		res.FaultsInjected = reg.Counter("faults_injected_total").Value()
	}
	return res, nil
}

// world is the synthetic ecosystem one run plays out in.
type world struct {
	p           *platform.Platform
	owned       bool // Run created p and must close it
	guilds      []*guildWorld
	bots        []botRef // connected fleet, round-robin across guilds
	stalledBots []botRef // extra bots reserved for stalled clients
}

type guildWorld struct {
	guild   *platform.Guild
	general platform.ID
	users   []platform.ID
	nBots   int64 // sessions subscribed to this guild (fan-out factor)
}

type botRef struct {
	token string
	guild int // index into world.guilds
}

// buildWorld creates guilds, chatting users, and installed bots. Bot
// ownership is spread over cfg.Tenants owner accounts so per-tenant
// rate limits have tenants to bite on. With a non-nil host platform the
// world is grafted onto it (and the host keeps ownership); otherwise a
// fresh platform is created and owned by the run.
func buildWorld(cfg Config, host *platform.Platform) (*world, error) {
	p := host
	owned := false
	if p == nil {
		p = platform.New(platform.Options{})
		owned = true
	}
	admin := p.CreateUser("lg-admin")
	owners := make([]*platform.User, cfg.Tenants)
	for i := range owners {
		owners[i] = p.CreateUser(fmt.Sprintf("lg-tenant-%d", i))
	}
	w := &world{p: p, owned: owned}
	for gi := 0; gi < cfg.Guilds; gi++ {
		g, err := p.CreateGuild(admin.ID, fmt.Sprintf("lg-guild-%d", gi), false)
		if err != nil {
			return nil, fmt.Errorf("loadgen: create guild: %w", err)
		}
		gw := &guildWorld{guild: g}
		for _, ch := range g.Channels {
			gw.general = ch.ID
		}
		for ui := 0; ui < cfg.UsersPerGuild; ui++ {
			u := p.CreateUser(fmt.Sprintf("lg-user-%d-%d", gi, ui))
			if err := p.JoinGuild(u.ID, g.ID); err != nil {
				return nil, fmt.Errorf("loadgen: join guild: %w", err)
			}
			gw.users = append(gw.users, u.ID)
		}
		w.guilds = append(w.guilds, gw)
	}
	registerBot := func(i int, name string) (botRef, error) {
		owner := owners[i%len(owners)]
		gi := i % len(w.guilds)
		bot, err := p.RegisterBot(owner.ID, fmt.Sprintf("%s-%d", name, i))
		if err != nil {
			return botRef{}, err
		}
		perms := permissions.ViewChannel | permissions.SendMessages | permissions.ReadMessageHistory
		if _, err := p.InstallBot(admin.ID, w.guilds[gi].guild.ID, bot.ID, perms); err != nil {
			return botRef{}, err
		}
		return botRef{token: bot.Token, guild: gi}, nil
	}
	for i := 0; i < cfg.Sessions; i++ {
		ref, err := registerBot(i, "lgbot")
		if err != nil {
			return nil, fmt.Errorf("loadgen: register bot: %w", err)
		}
		w.bots = append(w.bots, ref)
		w.guilds[ref.guild].nBots++
	}
	for i := 0; i < cfg.Stalled; i++ {
		ref, err := registerBot(i, "lgstall")
		if err != nil {
			return nil, fmt.Errorf("loadgen: register stalled bot: %w", err)
		}
		w.stalledBots = append(w.stalledBots, ref)
		// Stalled clients subscribe too; they are part of the fan-out the
		// server must survive, but not of the delivery expectation.
	}
	return w, nil
}
