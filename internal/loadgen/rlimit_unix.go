//go:build unix

package loadgen

import "syscall"

// raiseFDLimit lifts the soft file-descriptor limit to the hard limit:
// a thousand live sessions is two thousand sockets, which the common
// 1024 default soft limit cannot hold.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}
