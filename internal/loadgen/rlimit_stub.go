//go:build !unix

package loadgen

// raiseFDLimit is a no-op where rlimits do not exist.
func raiseFDLimit() {}
