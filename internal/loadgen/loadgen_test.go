package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/gateway"
)

// TestRunSmoke exercises the whole engine — world build, fleet dial,
// chatters, responders, a stalled client, fault injection — at a tiny
// scale and checks the accounting is coherent.
func TestRunSmoke(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Guilds:        2,
		UsersPerGuild: 3,
		Sessions:      8,
		Tenants:       2,
		Stalled:       1,
		Duration:      400 * time.Millisecond,
		MsgRate:       20,
		ReqRate:       4,
		FaultProfile:  "moderate",
		FaultSeed:     7,
		Limits: gateway.Limits{
			MaxSessions:      16,
			SendQueue:        64,
			SlowConsumer:     gateway.SlowDropOldest,
			WriteTimeout:     time.Second,
			HeartbeatTimeout: 5 * time.Second,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SessionsConnected != 8 {
		t.Fatalf("connected %d sessions, want 8", res.SessionsConnected)
	}
	if res.Published == 0 {
		t.Fatal("published no messages")
	}
	if res.Delivered == 0 {
		t.Fatal("delivered no events")
	}
	if res.ExpectedFanout < res.Published {
		t.Fatalf("expected fanout %d < published %d", res.ExpectedFanout, res.Published)
	}
	if res.DeliveryRatio <= 0 || res.DeliveryRatio > 1.05 {
		t.Fatalf("implausible delivery ratio %.3f", res.DeliveryRatio)
	}
	if res.Profile != "moderate" {
		t.Fatalf("profile = %q, want moderate", res.Profile)
	}
}

// TestRunShedsAboveCap points more sessions at the gateway than the
// admission cap allows and verifies the surplus is refused, not hung.
func TestRunShedsAboveCap(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Guilds:        1,
		UsersPerGuild: 2,
		Sessions:      10,
		Tenants:       2,
		Duration:      300 * time.Millisecond,
		MsgRate:       10,
		ReqRate:       1,
		Limits: gateway.Limits{
			MaxSessions:  4,
			WriteTimeout: time.Second,
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SessionsConnected > 4 {
		t.Fatalf("connected %d sessions past a cap of 4", res.SessionsConnected)
	}
	if res.Shed == 0 {
		t.Fatal("no sessions shed despite 10 dials against a cap of 4")
	}
	if res.ShedDials == 0 {
		t.Fatal("clients never observed a shed refusal")
	}
	if res.Delivered == 0 {
		t.Fatal("admitted sessions received no events")
	}
}
