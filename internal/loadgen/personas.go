package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/botsdk"
	"repro/internal/gateway"
	"repro/internal/platform"
)

// chatterLines is the persona chatter pool. A few lines deliberately
// carry identifier-shaped content, mirroring the group-chat snooping
// workload ("Bots can Snoop") where user conversations leak data that
// over-subscribed bots get to read.
var chatterLines = []string{
	"hey, anyone around?",
	"did you see the patch notes?",
	"brb, grabbing coffee",
	"my email is casey@example.com if you need the doc",
	"meeting moved to 3pm",
	"call me at 555-0142 about the ticket",
	"who owns the deploy today?",
	"lol same",
}

// runChatters posts user messages into one guild at rate msgs/sec until
// ctx is done, crediting the expected fan-out (messages × subscribed
// bot sessions) so delivery completeness is measurable afterwards.
func runChatters(ctx context.Context, p *platform.Platform, g *guildWorld, rate float64,
	rng *rand.Rand, published, pubErrs, expected *atomic.Int64) {
	if len(g.users) == 0 || rate <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		user := g.users[rng.Intn(len(g.users))]
		line := fmt.Sprintf("%s [#%d]", chatterLines[rng.Intn(len(chatterLines))], i)
		if _, err := p.SendMessage(user, g.general, line); err != nil {
			pubErrs.Add(1)
			continue
		}
		published.Add(1)
		expected.Add(g.nBots)
	}
}

// runResponder is the active-bot persona: at reqRate requests/sec it
// alternates between replying into its guild channel and pulling recent
// history — the send/read mix a real utility bot generates. Failures
// (rate-limit exhaustion, dead session mid-reconnect) are counted, not
// fatal: the run is measuring degradation.
func runResponder(ctx context.Context, rc *botsdk.Reconnector, w *world, reqRate float64,
	rng *rand.Rand, reqOK, reqFailed, expected *atomic.Int64) {
	if reqRate <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / reqRate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		sess := rc.Session()
		if sess == nil {
			reqFailed.Add(1)
			continue
		}
		gi := guildIndexOf(w, sess)
		if gi < 0 {
			reqFailed.Add(1)
			continue
		}
		g := w.guilds[gi]
		var err error
		if i%4 == 3 {
			_, err = sess.History(g.general.String(), 5)
		} else {
			_, err = sess.Send(g.general.String(), fmt.Sprintf("on it (%d)", rng.Intn(1000)))
			if err == nil && g.nBots > 1 {
				// A bot's reply fans out to every sibling session in the
				// guild (its own echo is suppressed server-side).
				expected.Add(g.nBots - 1)
			}
		}
		if err != nil {
			reqFailed.Add(1)
			continue
		}
		reqOK.Add(1)
	}
}

// guildIndexOf maps a session back to its guild via the ready frame.
func guildIndexOf(w *world, sess *botsdk.Session) int {
	guilds := sess.InitialGuilds()
	if len(guilds) == 0 {
		return -1
	}
	for gi, g := range w.guilds {
		if g.guild.ID.String() == guilds[0] {
			return gi
		}
	}
	return -1
}

// Stall identifies over raw TCP and then never reads again until ctx is
// cancelled — the deliberately wedged consumer whose dispatch queue must
// fill without taking the rest of the gateway down with it. Exported so
// chaos harnesses can inject phase-scoped stalled listeners against a
// gateway they host themselves.
func Stall(ctx context.Context, addr, token string) {
	stallClient(ctx, addr, token)
}

// stallClient identifies over raw TCP and then never reads again — the
// deliberately wedged consumer whose dispatch queue must fill without
// taking the rest of the gateway down with it.
func stallClient(ctx context.Context, addr, token string) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(gateway.Frame{Op: gateway.OpIdentify, Token: token}); err != nil {
		return
	}
	// Consume the ready frame so the session is fully established, then
	// go silent.
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadString('\n'); err != nil {
		return
	}
	<-ctx.Done()
}
