// Package trace is the pipeline's per-bot distributed tracing layer:
// one span per bot per stage plus sub-operation spans (page fetch,
// retry attempt, captcha solve, invite redirect, policy audit, honeypot
// settle, codehost fetch), correlated with the run/bot/experiment IDs
// the journal carries.
//
// Where the obs stage-span tree serializes every span operation through
// one trace-wide mutex — fine for four stage spans, ruinous for 20,915
// bots — this package collects completed operations into per-shard
// append-only buffers, sharded by the scheduler worker that produced
// them. A worker only ever touches its own shard's mutex, so the
// collection path is contention-free at full paper scale and bot-level
// tracing costs low single-digit percent (see BENCH_TRACE.json). The
// obs tree stays as the thin run-level view; everything per-bot lands
// here.
//
// Ops are recorded only when they finish, which keeps the hot path to
// one buffered append and makes the buffers naturally crash-truncated:
// whatever was settled is in the buffer, nothing is half-written.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Level selects how much the tracer records.
type Level int

const (
	// LevelOff records nothing; every call is a near-free no-op.
	LevelOff Level = iota
	// LevelBots records one span per bot per stage plus scheduler
	// events (steals, queue depth) and run-level stage spans.
	LevelBots
	// LevelFull additionally records sub-operation spans inside each
	// bot-stage span (page fetches, retries, captcha solves, ...).
	LevelFull
)

// ParseLevel maps the CLI spelling to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "off":
		return LevelOff, nil
	case "bots", "bot":
		return LevelBots, nil
	case "full", "ops":
		return LevelFull, nil
	}
	return LevelOff, fmt.Errorf("trace: unknown level %q (want off, bots, or full)", s)
}

func (l Level) String() string {
	switch l {
	case LevelBots:
		return "bots"
	case LevelFull:
		return "full"
	}
	return "off"
}

// Kind classifies a recorded operation.
type Kind uint8

const (
	// KindStage is one bot's trip through one pipeline stage.
	KindStage Kind = iota
	// KindOp is a sub-operation inside a stage (page_fetch, ...).
	KindOp
	// KindInstant is a point event (a steal, a stage boundary).
	KindInstant
	// KindCounter is a sampled value (shard queue depth).
	KindCounter
	// KindRun is a run-level stage span on the control track — the
	// same spans the obs tree shows, mirrored so the Perfetto view has
	// the stage slices above the shard tracks.
	KindRun
)

var kindNames = [...]string{"stage", "op", "instant", "counter", "run"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the names MarshalJSON emits.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := string(b)
	for i, n := range kindNames {
		if s == `"`+n+`"` {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown op kind %s", s)
}

// ControlShard marks ops that belong to no worker shard: run-level
// stage spans and anything recorded outside the sharded executor. The
// tracer maps them onto an extra buffer and exports them as the "run"
// track.
const ControlShard = -1

// Op is one completed operation. Times are nanoseconds since the
// tracer started, so ops from every shard share one clock.
type Op struct {
	Shard   int32  `json:"shard"`
	Kind    Kind   `json:"kind"`
	Stage   string `json:"stage"`
	Name    string `json:"name"`
	BotID   int32  `json:"bot_id,omitempty"`
	Bot     string `json:"bot,omitempty"`
	Detail  string `json:"detail,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	Value   int64  `json:"value,omitempty"`
}

// EndNS is the op's end offset (start for instants and counters).
func (o Op) EndNS() int64 { return o.StartNS + o.DurNS }

// shardBuf is one shard's append-only op buffer. The pad keeps hot
// shard buffers off each other's cache lines.
type shardBuf struct {
	mu  sync.Mutex
	ops []Op
	_   [64]byte
}

// Tracer collects ops into per-shard buffers. All methods are safe for
// concurrent use and safe on a nil receiver (recording nothing), so
// instrumented code never checks whether tracing is enabled.
type Tracer struct {
	runID string
	level Level
	start time.Time

	// bufs has one entry per worker shard plus one control buffer at
	// the end for ControlShard ops.
	bufs []shardBuf

	// now is the clock, overridable by tests for deterministic ops.
	now func() time.Time
}

// New starts a tracer with the given number of worker shards (clamped
// to at least 1). runID is the same correlation identifier the journal
// stamps on every event.
func New(runID string, shards int, level Level) *Tracer {
	if shards < 1 {
		shards = 1
	}
	return &Tracer{
		runID: runID,
		level: level,
		start: time.Now(),
		bufs:  make([]shardBuf, shards+1),
		now:   time.Now,
	}
}

// RunID returns the run correlation identifier.
func (t *Tracer) RunID() string {
	if t == nil {
		return ""
	}
	return t.runID
}

// Level returns the configured recording level (LevelOff when nil).
func (t *Tracer) Level() Level {
	if t == nil {
		return LevelOff
	}
	return t.level
}

// Shards returns the worker-shard count (0 when nil).
func (t *Tracer) Shards() int {
	if t == nil {
		return 0
	}
	return len(t.bufs) - 1
}

// sinceNS is the op clock: nanoseconds since the tracer started.
func (t *Tracer) sinceNS() int64 { return t.now().Sub(t.start).Nanoseconds() }

// bufFor maps a shard (possibly ControlShard, possibly a sequential
// executor's hash input) onto a buffer index.
func (t *Tracer) bufFor(shard int32, botID int32) *shardBuf {
	n := len(t.bufs) - 1
	switch {
	case shard >= 0 && int(shard) < n:
		return &t.bufs[shard]
	case shard == ControlShard && botID != 0:
		// No worker identity (the sequential executor): spread bots
		// across the buffers by ID so collection still shards.
		idx := int(botID) % n
		if idx < 0 {
			idx = -idx
		}
		return &t.bufs[idx]
	default:
		return &t.bufs[n]
	}
}

// shardOf mirrors bufFor for the Op.Shard field actually recorded, so
// exports and the profile see the buffer the op landed in.
func (t *Tracer) shardOf(shard int32, botID int32) int32 {
	n := len(t.bufs) - 1
	switch {
	case shard >= 0 && int(shard) < n:
		return shard
	case shard == ControlShard && botID != 0:
		idx := int(botID) % n
		if idx < 0 {
			idx = -idx
		}
		return int32(idx)
	default:
		return ControlShard
	}
}

// record appends one finished op to its shard buffer.
func (t *Tracer) record(op Op) {
	buf := t.bufFor(op.Shard, op.BotID)
	op.Shard = t.shardOf(op.Shard, op.BotID)
	buf.mu.Lock()
	buf.ops = append(buf.ops, op)
	buf.mu.Unlock()
}

// Instant records a point event on a shard track (level >= bots).
func (t *Tracer) Instant(shard int, stage, name, detail string, value int64) {
	if t == nil || t.level < LevelBots {
		return
	}
	t.record(Op{
		Shard: int32(shard), Kind: KindInstant, Stage: stage, Name: name,
		Detail: detail, StartNS: t.sinceNS(), Value: value,
	})
}

// Sample records a counter value on a shard track (level >= bots).
func (t *Tracer) Sample(shard int, stage, name string, value int64) {
	if t == nil || t.level < LevelBots {
		return
	}
	t.record(Op{
		Shard: int32(shard), Kind: KindCounter, Stage: stage, Name: name,
		StartNS: t.sinceNS(), Value: value,
	})
}

// StartRunSpan opens a run-level stage span on the control track and
// returns its closer — the Perfetto mirror of the obs stage-span tree.
func (t *Tracer) StartRunSpan(stage string) func() {
	if t == nil || t.level < LevelBots {
		return noop
	}
	start := t.sinceNS()
	return func() {
		t.record(Op{
			Shard: ControlShard, Kind: KindRun, Stage: stage, Name: stage,
			StartNS: start, DurNS: t.sinceNS() - start,
		})
	}
}

// Len returns the total number of recorded ops.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.bufs {
		t.bufs[i].mu.Lock()
		n += len(t.bufs[i].ops)
		t.bufs[i].mu.Unlock()
	}
	return n
}

// Ops snapshots every shard buffer, merged and sorted by start time
// (ties broken by shard) so consumers see one coherent timeline.
func (t *Tracer) Ops() []Op {
	if t == nil {
		return nil
	}
	out := make([]Op, 0, t.Len())
	for i := range t.bufs {
		t.bufs[i].mu.Lock()
		out = append(out, t.bufs[i].ops...)
		t.bufs[i].mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// noop is the shared closer for disabled spans, so gated StartX calls
// allocate nothing.
func noop() {}
