package trace

import "sort"

// Summary is the headline view of a span log.
type Summary struct {
	RunID     string
	Level     string
	Shards    int
	WallMS    float64
	Ops       int
	StageOps  int
	SubOps    int
	Instants  int
	Counters  int
	RunSpans  int
	Bots      int
	Steals    int
	BusyMS    float64 // summed bot-stage span time across shards
	Stages    []StageCost
	ShardLoad []ShardLoad
}

// StageCost aggregates one stage's bot spans.
type StageCost struct {
	Stage   string
	Count   int
	TotalMS float64
	P50MS   float64
	P95MS   float64
	MaxMS   float64
	MaxBot  int32
}

// ShardLoad is one shard's share of the work.
type ShardLoad struct {
	Shard  int32
	Items  int
	BusyMS float64
	Steals int
}

// BotCost is one bot's total span time with its per-stage split.
type BotCost struct {
	BotID   int32
	Bot     string
	Shard   int32
	TotalMS float64
	StageMS map[string]float64
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Summarize computes the Summary for a decoded span log.
func Summarize(h Header, ops []Op) Summary {
	s := Summary{RunID: h.RunID, Level: h.Level, Shards: h.Shards, Ops: len(ops)}
	durs := map[string][]float64{}
	maxBot := map[string]int32{}
	maxDur := map[string]float64{}
	bots := map[int32]bool{}
	shards := map[int32]*ShardLoad{}
	var wallNS int64
	for _, op := range ops {
		if op.EndNS() > wallNS {
			wallNS = op.EndNS()
		}
		switch op.Kind {
		case KindStage:
			s.StageOps++
			d := msOf(op.DurNS)
			durs[op.Stage] = append(durs[op.Stage], d)
			if d > maxDur[op.Stage] {
				maxDur[op.Stage] = d
				maxBot[op.Stage] = op.BotID
			}
			if op.BotID != 0 {
				bots[op.BotID] = true
			}
			s.BusyMS += d
			if op.Shard >= 0 {
				e := shards[op.Shard]
				if e == nil {
					e = &ShardLoad{Shard: op.Shard}
					shards[op.Shard] = e
				}
				e.Items++
				e.BusyMS += d
			}
		case KindOp:
			s.SubOps++
		case KindInstant:
			s.Instants++
			if op.Name == "steal" {
				s.Steals++
				if op.Shard >= 0 {
					e := shards[op.Shard]
					if e == nil {
						e = &ShardLoad{Shard: op.Shard}
						shards[op.Shard] = e
					}
					e.Steals++
				}
			}
		case KindCounter:
			s.Counters++
		case KindRun:
			s.RunSpans++
		}
	}
	s.WallMS = msOf(wallNS)
	s.Bots = len(bots)
	for stage, ds := range durs {
		sort.Float64s(ds)
		total := 0.0
		for _, d := range ds {
			total += d
		}
		s.Stages = append(s.Stages, StageCost{
			Stage: stage, Count: len(ds), TotalMS: total,
			P50MS: percentile(ds, 0.50), P95MS: percentile(ds, 0.95),
			MaxMS: maxDur[stage], MaxBot: maxBot[stage],
		})
	}
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].TotalMS > s.Stages[j].TotalMS })
	for _, e := range shards {
		s.ShardLoad = append(s.ShardLoad, *e)
	}
	sort.Slice(s.ShardLoad, func(i, j int) bool { return s.ShardLoad[i].Shard < s.ShardLoad[j].Shard })
	return s
}

// SlowestBots returns the n most expensive bots by total bot-stage
// span time, each with its per-stage breakdown.
func SlowestBots(ops []Op, n int) []BotCost {
	bots := map[int32]*BotCost{}
	for _, op := range ops {
		if op.Kind != KindStage || op.BotID == 0 {
			continue
		}
		b := bots[op.BotID]
		if b == nil {
			b = &BotCost{BotID: op.BotID, Bot: op.Bot, Shard: op.Shard, StageMS: map[string]float64{}}
			bots[op.BotID] = b
		}
		d := msOf(op.DurNS)
		b.TotalMS += d
		b.StageMS[op.Stage] += d
		b.Shard = op.Shard
		if b.Bot == "" {
			b.Bot = op.Bot
		}
	}
	out := make([]BotCost, 0, len(bots))
	for _, b := range bots {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].BotID < out[j].BotID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ByStage returns per-stage costs sorted by total time — the
// `botscan trace by-stage` view.
func ByStage(h Header, ops []Op) []StageCost {
	return Summarize(h, ops).Stages
}

// PathStep is one hop of the critical path: a span that ran
// back-to-back with the next one on the same shard, plus the idle gap
// that preceded it.
type PathStep struct {
	Op       Op
	GapMS    float64 // idle time on the shard before this span started
	OnCritMS float64 // the span's own duration
}

// CriticalPath walks backwards from the last-finishing bot-stage span:
// starting at the op that determines the run's wall clock, it collects
// the chain of spans on that op's shard that ran back-to-back before
// it (recording any idle gaps). The result, first step earliest,
// approximates where wall-clock time went on the run's longest shard —
// the spans to shrink or re-balance first.
func CriticalPath(ops []Op) []PathStep {
	// Candidate spans: bot-stage and run spans with real duration.
	var spans []Op
	for _, op := range ops {
		if (op.Kind == KindStage || op.Kind == KindRun) && op.DurNS > 0 {
			spans = append(spans, op)
		}
	}
	if len(spans) == 0 {
		return nil
	}
	last := spans[0]
	for _, op := range spans {
		if op.Kind == KindRun {
			continue // the run mirror always spans the whole stage
		}
		if op.EndNS() > last.EndNS() || last.Kind == KindRun {
			last = op
		}
	}
	if last.Kind == KindRun && len(spans) == 1 {
		return []PathStep{{Op: last, OnCritMS: msOf(last.DurNS)}}
	}
	// All spans on the terminal op's shard, sorted by end time.
	var lane []Op
	for _, op := range spans {
		if op.Kind == KindStage && op.Shard == last.Shard {
			lane = append(lane, op)
		}
	}
	sort.Slice(lane, func(i, j int) bool { return lane[i].EndNS() < lane[j].EndNS() })
	var rev []PathStep
	cursor := last.StartNS
	rev = append(rev, PathStep{Op: last, OnCritMS: msOf(last.DurNS)})
	for i := len(lane) - 1; i >= 0; i-- {
		op := lane[i]
		if op.EndNS() > cursor || op == last {
			continue
		}
		gap := msOf(cursor - op.EndNS())
		rev[len(rev)-1].GapMS = gap
		rev = append(rev, PathStep{Op: op, OnCritMS: msOf(op.DurNS)})
		cursor = op.StartNS
	}
	// Reverse into chronological order.
	out := make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
