package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// JSONLSchema names the span-log line format; the header line of every
// export carries it so decoders can refuse files they don't speak.
const JSONLSchema = "botscan-trace/1"

// Header is the first line of the JSONL span log.
type Header struct {
	Schema string `json:"schema"`
	RunID  string `json:"run_id"`
	Level  string `json:"level"`
	Shards int    `json:"shards"`
}

// WriteJSONL renders the trace as a span log: one header line, then
// one JSON object per op in timeline order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(Header{
		Schema: JSONLSchema,
		RunID:  t.RunID(),
		Level:  t.Level().String(),
		Shards: t.Shards(),
	}); err != nil {
		return err
	}
	for _, op := range t.Ops() {
		if err := enc.Encode(op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a span log written by WriteJSONL. A missing or
// foreign header is an error; undecodable op lines are skipped and
// counted, matching the journal decoder's lenient posture.
func DecodeJSONL(r io.Reader) (Header, []Op, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var h Header
	if !sc.Scan() {
		return h, nil, 0, fmt.Errorf("trace: empty span log")
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Schema != JSONLSchema {
		return h, nil, 0, fmt.Errorf("trace: not a %s span log", JSONLSchema)
	}
	var ops []Op
	skipped := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var op Op
		if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
			skipped++
			continue
		}
		ops = append(ops, op)
	}
	return h, ops, skipped, sc.Err()
}

// chromeEvent is one entry of the Chrome trace-event format ("Trace
// Event Format", the JSON Perfetto and chrome://tracing load). Only
// the fields this exporter uses.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const chromePID = 1

// chromeTID maps a shard to its Perfetto track: tid 1..N for worker
// shards, tid 0 for the control ("run stages") track.
func chromeTID(shard int32) int {
	if shard == ControlShard {
		return 0
	}
	return int(shard) + 1
}

func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// laneTID spreads one shard across extra tracks when its slices
// overlap: lane 0 is the shard's own track. Sharded runs (one worker
// per buffer) always stay in lane 0; the sequential executor, which
// hashes concurrent bots into buffers, spills collisions into lanes so
// the export still nests strictly.
func laneTID(baseTID, lane int) int { return baseTID*64 + lane }

// assignLanes places one track's duration slices (sorted by start,
// longest-first on ties) into the first lane where each either nests
// inside the lane's open slice or starts after it — the invariant the
// trace-event format requires per track.
func assignLanes(evs []chromeEvent) (lanes int) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].Dur > evs[j].Dur
	})
	var open [][]float64 // per lane: stack of open slice ends
	for i := range evs {
		placed := false
		for l := range open {
			st := open[l]
			for len(st) > 0 && evs[i].TS >= st[len(st)-1] {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || evs[i].TS+evs[i].Dur <= st[len(st)-1] {
				open[l] = append(st, evs[i].TS+evs[i].Dur)
				evs[i].TID = laneTID(evs[i].TID, l)
				placed = true
				break
			}
			open[l] = st
		}
		if !placed {
			open = append(open, []float64{evs[i].TS + evs[i].Dur})
			evs[i].TID = laneTID(evs[i].TID, len(open)-1)
		}
	}
	return len(open)
}

// WriteChromeTrace renders the trace as Chrome trace-event JSON:
// shard = track, each bot's stage spans as slices with sub-operation
// slices nested under them (by time containment), scheduler steals as
// instants and queue depths as counter series, and the run-level stage
// spans on their own track above the shards. Open the file in
// https://ui.perfetto.dev or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	ops := t.Ops()
	slices := make(map[int][]chromeEvent) // base tid -> duration slices
	evs := make([]chromeEvent, 0, len(ops)+t.Shards()+2)

	for _, op := range ops {
		tid := chromeTID(op.Shard)
		switch op.Kind {
		case KindStage, KindOp, KindRun:
			name := op.Name
			cat := "op"
			if op.Kind != KindOp {
				cat = "stage"
				if op.BotID != 0 {
					name = fmt.Sprintf("%s #%d", op.Stage, op.BotID)
				}
			}
			args := map[string]any{}
			if op.BotID != 0 {
				args["bot_id"] = op.BotID
			}
			if op.Bot != "" {
				args["bot"] = op.Bot
			}
			if op.Detail != "" {
				args["detail"] = op.Detail
			}
			if len(args) == 0 {
				args = nil
			}
			slices[tid] = append(slices[tid], chromeEvent{
				Name: name, Cat: cat, Phase: "X",
				TS: usOf(op.StartNS), Dur: usOf(op.DurNS),
				PID: chromePID, TID: tid, Args: args,
			})
		case KindInstant:
			evs = append(evs, chromeEvent{
				Name: op.Name, Cat: op.Stage, Phase: "i", Scope: "t",
				TS: usOf(op.StartNS), PID: chromePID, TID: laneTID(tid, 0),
				Args: map[string]any{"detail": op.Detail, "value": op.Value},
			})
		case KindCounter:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("%s[shard %d]", op.Name, op.Shard), Phase: "C",
				TS: usOf(op.StartNS), PID: chromePID, TID: laneTID(tid, 0),
				Args: map[string]any{"value": op.Value},
			})
		}
	}

	// Track naming metadata: the run track, then each shard (and any
	// spill lanes the sequential executor's hashing needed).
	meta := []chromeEvent{{
		Name: "process_name", Phase: "M", PID: chromePID, TID: laneTID(0, 0),
		Args: map[string]any{"name": "botscan pipeline " + t.RunID()},
	}}
	trackName := func(baseTID int) string {
		if baseTID == 0 {
			return "run stages"
		}
		return fmt.Sprintf("shard %d", baseTID-1)
	}
	baseTIDs := make([]int, 0, len(slices)+1)
	seen := map[int]bool{}
	for bt := range slices {
		baseTIDs = append(baseTIDs, bt)
		seen[bt] = true
	}
	for s := -1; s < t.Shards(); s++ {
		if bt := chromeTID(int32(s)); !seen[bt] {
			baseTIDs = append(baseTIDs, bt)
		}
	}
	sort.Ints(baseTIDs)
	for _, bt := range baseTIDs {
		lanes := assignLanes(slices[bt])
		if lanes == 0 {
			lanes = 1
		}
		for l := 0; l < lanes; l++ {
			name := trackName(bt)
			if l > 0 {
				name = fmt.Sprintf("%s (lane %d)", name, l)
			}
			meta = append(meta, chromeEvent{
				Name: "thread_name", Phase: "M", PID: chromePID, TID: laneTID(bt, l),
				Args: map[string]any{"name": name},
			})
		}
		evs = append(evs, slices[bt]...)
	}
	evs = append(meta, evs...)

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"run_id": t.RunID(),
			"level":  t.Level().String(),
		},
	})
}

// validPhases is what this exporter emits — the subset of the trace
// event format ValidateChromeTrace accepts.
var validPhases = map[string]bool{"X": true, "M": true, "i": true, "C": true}

// ValidateChromeTrace checks that data is well-formed Chrome
// trace-event JSON as Perfetto's legacy JSON importer requires:
// a traceEvents array whose entries all carry a name and a known
// phase, duration events with non-negative ts/dur, and instants with a
// valid scope. It is the schema check the format tests (and bench
// harness) run on every export.
func ValidateChromeTrace(data []byte) error {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: chrome trace not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: chrome trace has no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if !validPhases[ev.Phase] {
			return fmt.Errorf("trace: event %d (%s): unknown phase %q", i, ev.Name, ev.Phase)
		}
		switch ev.Phase {
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s): negative ts/dur", i, ev.Name)
			}
		case "i":
			if ev.Scope != "" && ev.Scope != "t" && ev.Scope != "p" && ev.Scope != "g" {
				return fmt.Errorf("trace: event %d (%s): bad instant scope %q", i, ev.Name, ev.Scope)
			}
		case "M":
			if ev.Args == nil {
				return fmt.Errorf("trace: event %d (%s): metadata without args", i, ev.Name)
			}
		}
	}
	// Slices on one track must nest by time containment — Perfetto
	// rejects partially overlapping siblings. Verify per track.
	type open struct{ end float64 }
	byTrack := map[int][]chromeEvent{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			byTrack[ev.TID] = append(byTrack[ev.TID], ev)
		}
	}
	for tid, evs := range byTrack {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].TS != evs[j].TS {
				return evs[i].TS < evs[j].TS
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []open
		for _, ev := range evs {
			for len(stack) > 0 && ev.TS >= stack[len(stack)-1].end {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && ev.TS+ev.Dur > stack[len(stack)-1].end+1 {
				// +1µs of slack: ends recorded by different clock reads
				// may disagree by the timer granularity.
				return fmt.Errorf("trace: track %d: slice %q [%.1f,%.1f] overlaps its parent end %.1f",
					tid, ev.Name, ev.TS, ev.TS+ev.Dur, stack[len(stack)-1].end)
			}
			stack = append(stack, open{end: ev.TS + ev.Dur})
		}
	}
	return nil
}
