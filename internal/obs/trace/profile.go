package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ProfileSchema names the profile.json format. The steal-aware
// partitioner (ROADMAP item 1) consumes this file to seed shard
// assignments from a prior run's timings, so the schema is the
// contract between this PR and that one.
const ProfileSchema = "botscan-profile/1"

// BotProfile is one bot's cost: total span time and the per-stage
// split, plus the shard that executed it.
type BotProfile struct {
	BotID   int32              `json:"bot_id"`
	Bot     string             `json:"bot,omitempty"`
	Shard   int32              `json:"shard"`
	TotalMS float64            `json:"total_ms"`
	StageMS map[string]float64 `json:"stage_ms"`
}

// StealEvent is one steal observed on a shard's timeline: at AtMS a
// thief worker took an item from this (victim) shard's deque, which
// held Depth items afterwards.
type StealEvent struct {
	AtMS   float64 `json:"at_ms"`
	Worker int     `json:"worker"`
	Depth  int64   `json:"depth"`
}

// DepthSample is one sampled queue depth on a shard's timeline.
type DepthSample struct {
	AtMS  float64 `json:"at_ms"`
	Depth int64   `json:"depth"`
}

// ShardTimeline is one shard's busy/steal view of the run.
type ShardTimeline struct {
	Shard  int32         `json:"shard"`
	Items  int           `json:"items"`
	BusyMS float64       `json:"busy_ms"`
	Steals []StealEvent  `json:"steals,omitempty"`
	Depth  []DepthSample `json:"depth,omitempty"`
}

// Profile is the timing artifact a traced run emits: per-bot per-stage
// durations plus the per-shard busy/steal timeline.
type Profile struct {
	Schema  string             `json:"schema"`
	RunID   string             `json:"run_id"`
	Level   string             `json:"level"`
	Shards  int                `json:"shards"`
	WallMS  float64            `json:"wall_ms"`
	Stages  map[string]float64 `json:"stages,omitempty"`
	Bots    []BotProfile       `json:"bots"`
	ShardTL []ShardTimeline    `json:"shard_timeline,omitempty"`
}

// maxDepthSamples caps the per-shard depth series kept in the profile;
// longer series are downsampled evenly so profile.json stays small at
// paper scale.
const maxDepthSamples = 512

func msOf(ns int64) float64 { return float64(ns) / 1e6 }

// BuildProfile assembles a Profile from a finished tracer.
func (t *Tracer) BuildProfile() Profile {
	p := buildProfile(t.Ops(), t.Shards())
	p.RunID = t.RunID()
	p.Level = t.Level().String()
	return p
}

// BuildProfileFromOps assembles a Profile from a decoded span log, so
// `botscan trace` can rebuild one from spans.jsonl alone.
func BuildProfileFromOps(h Header, ops []Op) Profile {
	p := buildProfile(ops, h.Shards)
	p.RunID = h.RunID
	p.Level = h.Level
	return p
}

func buildProfile(ops []Op, shards int) Profile {
	p := Profile{Schema: ProfileSchema, Shards: shards, Stages: map[string]float64{}}
	bots := map[int32]*BotProfile{}
	tl := map[int32]*ShardTimeline{}
	shardOf := func(s int32) *ShardTimeline {
		e := tl[s]
		if e == nil {
			e = &ShardTimeline{Shard: s}
			tl[s] = e
		}
		return e
	}
	var wallNS int64
	for _, op := range ops {
		if op.EndNS() > wallNS {
			wallNS = op.EndNS()
		}
		switch op.Kind {
		case KindRun:
			p.Stages[op.Stage] += msOf(op.DurNS)
		case KindStage:
			b := bots[op.BotID]
			if b == nil {
				b = &BotProfile{BotID: op.BotID, Bot: op.Bot, Shard: op.Shard, StageMS: map[string]float64{}}
				bots[op.BotID] = b
			}
			b.StageMS[op.Stage] += msOf(op.DurNS)
			b.TotalMS += msOf(op.DurNS)
			// Report the shard that did the most recent stage; bots
			// touched by several workers keep the last one seen.
			b.Shard = op.Shard
			if op.Shard >= 0 {
				e := shardOf(op.Shard)
				e.Items++
				e.BusyMS += msOf(op.DurNS)
			}
		case KindInstant:
			if op.Name == "steal" && op.Shard >= 0 {
				shardOf(op.Shard).Steals = append(shardOf(op.Shard).Steals, StealEvent{
					AtMS: msOf(op.StartNS), Worker: int(op.Value >> 32), Depth: op.Value & 0xffffffff,
				})
			}
		case KindCounter:
			if op.Name == "queue_depth" && op.Shard >= 0 {
				shardOf(op.Shard).Depth = append(shardOf(op.Shard).Depth, DepthSample{
					AtMS: msOf(op.StartNS), Depth: op.Value,
				})
			}
		}
	}
	p.WallMS = msOf(wallNS)
	for _, b := range bots {
		p.Bots = append(p.Bots, *b)
	}
	sort.Slice(p.Bots, func(i, j int) bool { return p.Bots[i].BotID < p.Bots[j].BotID })
	for _, e := range tl {
		if len(e.Depth) > maxDepthSamples {
			ds := make([]DepthSample, 0, maxDepthSamples)
			step := float64(len(e.Depth)) / float64(maxDepthSamples)
			for i := 0; i < maxDepthSamples; i++ {
				ds = append(ds, e.Depth[int(float64(i)*step)])
			}
			e.Depth = ds
		}
		p.ShardTL = append(p.ShardTL, *e)
	}
	sort.Slice(p.ShardTL, func(i, j int) bool { return p.ShardTL[i].Shard < p.ShardTL[j].Shard })
	return p
}

// WriteProfile renders the profile as indented JSON.
func WriteProfile(w io.Writer, p Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// DecodeProfile reads a profile.json, refusing foreign schemas — the
// round-trip contract the partitioner will rely on.
func DecodeProfile(r io.Reader) (Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return p, fmt.Errorf("trace: profile not valid JSON: %w", err)
	}
	if p.Schema != ProfileSchema {
		return p, fmt.Errorf("trace: profile schema %q, want %s", p.Schema, ProfileSchema)
	}
	return p, nil
}

// PackStealValue encodes (worker, depth) into the single Value field
// an instant op carries; buildProfile unpacks it.
func PackStealValue(worker int, depth int) int64 {
	return int64(worker)<<32 | int64(depth&0x7fffffff)
}
