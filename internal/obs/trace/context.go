package trace

import "context"

// Scope is what an instrumented call site needs to record an op: the
// tracer, the worker shard collecting for it, the stage it is inside,
// and the bot under work. It rides the context the same way the
// journal's correlation IDs do, so lower layers trace without new
// parameters.
type Scope struct {
	Tracer *Tracer
	Shard  int
	Stage  string
	BotID  int
	Bot    string
}

type scopeKey struct{}

// ScopeFrom returns the scope carried by ctx (zero-valued when none).
func ScopeFrom(ctx context.Context) Scope {
	s, _ := ctx.Value(scopeKey{}).(Scope)
	return s
}

// ContextWithStage attaches a tracer and stage name to ctx — the entry
// point each pipeline stage calls once. Returns ctx unchanged when the
// tracer is off, so disabled tracing allocates nothing per stage.
func ContextWithStage(ctx context.Context, t *Tracer, stage string) context.Context {
	if t.Level() == LevelOff {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, Scope{Tracer: t, Shard: ControlShard, Stage: stage})
}

// WithWorker stamps the scheduler worker (= shard buffer) collecting
// this context's ops. A context without a tracer passes through
// untouched.
func WithWorker(ctx context.Context, worker int) context.Context {
	s := ScopeFrom(ctx)
	if s.Tracer == nil || s.Shard == worker {
		return ctx
	}
	s.Shard = worker
	return context.WithValue(ctx, scopeKey{}, s)
}

// WithBot stamps the bot under work. A context without a tracer passes
// through untouched.
func WithBot(ctx context.Context, botID int, name string) context.Context {
	s := ScopeFrom(ctx)
	if s.Tracer == nil {
		return ctx
	}
	s.BotID, s.Bot = botID, name
	return context.WithValue(ctx, scopeKey{}, s)
}

// StartStage opens the bot-stage span for the context's scope (one per
// bot per stage — the tracing layer's unit of account) and returns its
// closer. Recorded at level >= bots.
func StartStage(ctx context.Context) func() {
	end := StartStageNamed(ctx)
	return func() { end("") }
}

// StartStageNamed is StartStage for call sites that only learn the
// bot's display name mid-stage (the collect scrape): the returned
// closer records the span under that name, falling back to the scope's
// name when called with "".
func StartStageNamed(ctx context.Context) func(name string) {
	s := ScopeFrom(ctx)
	t := s.Tracer
	if t == nil || t.level < LevelBots {
		return func(string) {}
	}
	start := t.sinceNS()
	return func(name string) {
		if name == "" {
			name = s.Bot
		}
		t.record(Op{
			Shard: int32(s.Shard), Kind: KindStage, Stage: s.Stage, Name: s.Stage,
			BotID: int32(s.BotID), Bot: name,
			StartNS: start, DurNS: t.sinceNS() - start,
		})
	}
}

// StartOp opens a sub-operation span (page_fetch, captcha_solve, ...)
// inside the context's bot-stage span and returns its closer. Recorded
// at level full only.
func StartOp(ctx context.Context, name string) func() {
	return StartOpDetail(ctx, name, "")
}

// StartOpDetail is StartOp with a free-form detail (a ref, a guild
// tag) attached to the recorded op.
func StartOpDetail(ctx context.Context, name, detail string) func() {
	s := ScopeFrom(ctx)
	t := s.Tracer
	if t == nil || t.level < LevelFull {
		return noop
	}
	start := t.sinceNS()
	return func() {
		t.record(Op{
			Shard: int32(s.Shard), Kind: KindOp, Stage: s.Stage, Name: name,
			BotID: int32(s.BotID), Bot: s.Bot, Detail: detail,
			StartNS: start, DurNS: t.sinceNS() - start,
		})
	}
}
