package trace

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock gives a tracer deterministic, strictly-increasing op
// times without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	at  time.Time
	inc time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at = c.at.Add(c.inc)
	return c.at
}

func newFakeTracer(shards int, level Level) *Tracer {
	tr := New("run-test", shards, level)
	clk := &fakeClock{at: tr.start, inc: time.Millisecond}
	tr.now = clk.now
	return tr
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
		err  bool
	}{
		{"", LevelOff, false},
		{"off", LevelOff, false},
		{"bots", LevelBots, false},
		{"bot", LevelBots, false},
		{"full", LevelFull, false},
		{"ops", LevelFull, false},
		{"verbose", LevelOff, true},
	} {
		got, err := ParseLevel(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Level() != LevelOff || tr.RunID() != "" || tr.Shards() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer accessors not zero-valued")
	}
	tr.Instant(0, "collect", "steal", "", 1)
	tr.Sample(0, "collect", "queue_depth", 3)
	tr.StartRunSpan("collect")()
	if ops := tr.Ops(); ops != nil {
		t.Fatalf("nil tracer recorded %d ops", len(ops))
	}
	// Context helpers pass through untouched without a tracer.
	ctx := context.Background()
	if WithBot(ctx, 7, "b") != ctx || WithWorker(ctx, 3) != ctx {
		t.Fatal("contexts without a tracer must pass through unchanged")
	}
	StartStage(ctx)()
	StartOp(ctx, "page_fetch")()
}

func TestLevelGating(t *testing.T) {
	tr := newFakeTracer(2, LevelBots)
	ctx := ContextWithStage(context.Background(), tr, "collect")
	ctx = WithWorker(ctx, 0)
	ctx = WithBot(ctx, 1, "bot-1")
	StartStage(ctx)()
	StartOp(ctx, "page_fetch")() // gated: level full only
	if tr.Len() != 1 {
		t.Fatalf("level bots recorded %d ops, want 1 (sub-ops gated)", tr.Len())
	}

	off := New("run-off", 2, LevelOff)
	base := context.Background()
	if ContextWithStage(base, off, "collect") != base {
		t.Fatal("LevelOff must not decorate the context")
	}
}

// TestConcurrentHammer drives one tracer from many goroutines across
// all shards under -race and asserts the exact op counts survive,
// then checks every export stays well-formed. This is the satellite
// race test from the issue.
func TestConcurrentHammer(t *testing.T) {
	const (
		shards      = 8
		botsPer     = 50
		opsPerStage = 3
	)
	tr := newFakeTracer(shards, LevelFull)
	stages := []string{"collect", "trace", "code", "honeypot"}
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for b := 0; b < botsPer; b++ {
				botID := worker*botsPer + b + 1
				for _, stage := range stages {
					ctx := ContextWithStage(context.Background(), tr, stage)
					ctx = WithWorker(ctx, worker)
					ctx = WithBot(ctx, botID, "bot")
					end := StartStage(ctx)
					for i := 0; i < opsPerStage; i++ {
						StartOpDetail(ctx, "page_fetch", "ref")()
					}
					end()
				}
				tr.Instant(worker, "collect", "steal", "w", PackStealValue(worker, b))
				tr.Sample(worker, "collect", "queue_depth", int64(b))
			}
		}(w)
	}
	wg.Wait()
	for _, st := range stages {
		done := tr.StartRunSpan(st)
		done()
	}

	wantStage := shards * botsPer * len(stages)
	wantOps := wantStage * opsPerStage
	wantInstants := shards * botsPer
	wantCounters := shards * botsPer
	wantRun := len(stages)
	want := wantStage + wantOps + wantInstants + wantCounters + wantRun
	if got := tr.Len(); got != want {
		t.Fatalf("recorded %d ops, want %d", got, want)
	}
	counts := map[Kind]int{}
	for _, op := range tr.Ops() {
		counts[op.Kind]++
	}
	if counts[KindStage] != wantStage || counts[KindOp] != wantOps ||
		counts[KindInstant] != wantInstants || counts[KindCounter] != wantCounters ||
		counts[KindRun] != wantRun {
		t.Fatalf("kind counts %v, want stage=%d op=%d instant=%d counter=%d run=%d",
			counts, wantStage, wantOps, wantInstants, wantCounters, wantRun)
	}

	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := ValidateChromeTrace(chrome.Bytes()); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	h, ops, skipped, err := DecodeJSONL(&jsonl)
	if err != nil || skipped != 0 {
		t.Fatalf("DecodeJSONL: err=%v skipped=%d", err, skipped)
	}
	if h.RunID != "run-test" || h.Shards != shards || len(ops) != want {
		t.Fatalf("round-trip header %+v with %d ops, want run-test/%d shards/%d ops", h, len(ops), shards, want)
	}
}

func TestSequentialHashingShardsCollection(t *testing.T) {
	tr := newFakeTracer(4, LevelBots)
	// No WithWorker: the sequential executor records at ControlShard
	// with a bot ID, which must hash onto a worker buffer.
	ctx := ContextWithStage(context.Background(), tr, "collect")
	StartStage(WithBot(ctx, 6, "bot-6"))()
	ops := tr.Ops()
	if len(ops) != 1 || ops[0].Shard != 6%4 {
		t.Fatalf("ops = %+v, want one op on shard %d", ops, 6%4)
	}
	// Run-level span without a bot lands on the control track.
	tr.StartRunSpan("collect")()
	for _, op := range tr.Ops() {
		if op.Kind == KindRun && op.Shard != ControlShard {
			t.Fatalf("run span on shard %d, want control", op.Shard)
		}
	}
}

func TestChromeTraceLanesSplitOverlaps(t *testing.T) {
	tr := newFakeTracer(1, LevelBots)
	// Two bots overlapping on the same buffer (sequential executor
	// hash collision): lanes must keep the export valid.
	ctxA := WithBot(ContextWithStage(context.Background(), tr, "collect"), 1, "a")
	ctxB := WithBot(ContextWithStage(context.Background(), tr, "collect"), 2, "b")
	endA := StartStage(ctxA)
	endB := StartStage(ctxB)
	endA()
	endB()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("overlapping spans broke the export: %v", err)
	}
	if !strings.Contains(buf.String(), "(lane 1)") {
		t.Fatal("expected a spill lane for the overlapping slice")
	}
}

func TestDecodeJSONLRejectsForeignHeader(t *testing.T) {
	if _, _, _, err := DecodeJSONL(strings.NewReader(`{"schema":"other/1"}` + "\n")); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, _, _, err := DecodeJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestDecodeJSONLSkipsBadLines(t *testing.T) {
	tr := newFakeTracer(1, LevelBots)
	StartStage(WithBot(ContextWithStage(context.Background(), tr, "collect"), 1, "a"))()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("not json\n")
	_, ops, skipped, err := DecodeJSONL(&buf)
	if err != nil || skipped != 1 || len(ops) != 1 {
		t.Fatalf("lenient decode: ops=%d skipped=%d err=%v", len(ops), skipped, err)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	tr := newFakeTracer(2, LevelFull)
	for bot := 1; bot <= 4; bot++ {
		worker := (bot - 1) % 2
		for _, stage := range []string{"collect", "honeypot"} {
			ctx := ContextWithStage(context.Background(), tr, stage)
			ctx = WithWorker(ctx, worker)
			ctx = WithBot(ctx, bot, "bot")
			StartStage(ctx)()
		}
	}
	tr.Instant(0, "collect", "steal", "", PackStealValue(1, 3))
	tr.Sample(1, "collect", "queue_depth", 5)
	tr.StartRunSpan("collect")()

	p := tr.BuildProfile()
	if p.Schema != ProfileSchema || len(p.Bots) != 4 || p.Shards != 2 {
		t.Fatalf("profile %+v malformed", p)
	}
	if p.Bots[0].StageMS["collect"] <= 0 || p.Bots[0].StageMS["honeypot"] <= 0 {
		t.Fatalf("bot 1 stage split missing: %+v", p.Bots[0])
	}
	if len(p.ShardTL) != 2 {
		t.Fatalf("shard timeline %+v, want 2 shards", p.ShardTL)
	}
	var st0 ShardTimeline
	for _, e := range p.ShardTL {
		if e.Shard == 0 {
			st0 = e
		}
	}
	if len(st0.Steals) != 1 || st0.Steals[0].Worker != 1 || st0.Steals[0].Depth != 3 {
		t.Fatalf("steal event %+v, want worker=1 depth=3", st0.Steals)
	}

	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatalf("WriteProfile: %v", err)
	}
	got, err := DecodeProfile(&buf)
	if err != nil {
		t.Fatalf("DecodeProfile: %v", err)
	}
	if got.RunID != p.RunID || len(got.Bots) != len(p.Bots) ||
		got.Bots[2].TotalMS != p.Bots[2].TotalMS || len(got.ShardTL) != len(p.ShardTL) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if _, err := DecodeProfile(strings.NewReader(`{"schema":"other/9"}`)); err == nil {
		t.Fatal("foreign profile schema accepted")
	}
}

func TestProfileDepthDownsample(t *testing.T) {
	tr := newFakeTracer(1, LevelBots)
	for i := 0; i < 3*maxDepthSamples; i++ {
		tr.Sample(0, "collect", "queue_depth", int64(i))
	}
	p := tr.BuildProfile()
	if len(p.ShardTL) != 1 || len(p.ShardTL[0].Depth) != maxDepthSamples {
		t.Fatalf("depth series len %d, want %d", len(p.ShardTL[0].Depth), maxDepthSamples)
	}
}

func TestSummarizeAndSlowest(t *testing.T) {
	tr := newFakeTracer(2, LevelFull)
	mk := func(worker, bot int, stage string, subops int) {
		ctx := ContextWithStage(context.Background(), tr, stage)
		ctx = WithWorker(ctx, worker)
		ctx = WithBot(ctx, bot, "bot")
		end := StartStage(ctx)
		for i := 0; i < subops; i++ {
			StartOp(ctx, "page_fetch")()
		}
		end()
	}
	// bot 2 is the expensive one: more sub-ops → fake clock advances
	// further inside its stage span.
	mk(0, 1, "collect", 0)
	mk(1, 2, "collect", 10)
	mk(0, 3, "collect", 1)
	tr.Instant(0, "collect", "steal", "", PackStealValue(1, 1))

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	h, ops, _, err := DecodeJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(h, ops)
	if s.Bots != 3 || s.StageOps != 3 || s.SubOps != 11 || s.Steals != 1 {
		t.Fatalf("summary %+v, want 3 bots, 3 stage ops, 11 sub-ops, 1 steal", s)
	}
	if len(s.Stages) != 1 || s.Stages[0].MaxBot != 2 {
		t.Fatalf("stage cost %+v, want max bot 2", s.Stages)
	}

	slow := SlowestBots(ops, 2)
	if len(slow) != 2 || slow[0].BotID != 2 {
		t.Fatalf("slowest = %+v, want bot 2 first", slow)
	}
	if slow[0].StageMS["collect"] != slow[0].TotalMS {
		t.Fatalf("per-stage split %+v doesn't sum to total", slow[0])
	}
}

func TestCriticalPath(t *testing.T) {
	tr := newFakeTracer(2, LevelBots)
	// Shard 1 is the long lane: bots 2 and 4 back-to-back; bot 4 ends
	// last so the path walks 4 <- 2 on shard 1.
	mk := func(worker, bot int) {
		ctx := ContextWithStage(context.Background(), tr, "collect")
		ctx = WithWorker(ctx, worker)
		ctx = WithBot(ctx, bot, "bot")
		StartStage(ctx)()
	}
	mk(0, 1)
	mk(1, 2)
	mk(1, 4)
	path := CriticalPath(tr.Ops())
	if len(path) != 2 {
		t.Fatalf("path %+v, want 2 steps", path)
	}
	if path[0].Op.BotID != 2 || path[1].Op.BotID != 4 {
		t.Fatalf("path order %d -> %d, want 2 -> 4", path[0].Op.BotID, path[1].Op.BotID)
	}
	for _, st := range path {
		if st.Op.Shard != 1 {
			t.Fatalf("path step off the terminal shard: %+v", st)
		}
	}
	if CriticalPath(nil) != nil {
		t.Fatal("empty ops must give an empty path")
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindStage; k <= KindRun; k++ {
		b, err := k.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var got Kind
		if err := got.UnmarshalJSON(b); err != nil || got != k {
			t.Fatalf("kind %v round-trip: got %v err %v", k, got, err)
		}
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"martian"`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
