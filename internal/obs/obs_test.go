package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				r.Counter("reqs_total").Inc()
				r.Gauge("inflight").Add(1)
				r.Histogram("lat_seconds").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("reqs_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat_seconds").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterIgnoresNegativeAndNil(t *testing.T) {
	var c *Counter
	c.Inc() // must not panic
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	c = &Counter{}
	c.Add(-5)
	if c.Value() != 0 {
		t.Errorf("negative add changed counter: %d", c.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2}, // 3µs rounds up to the le=4µs bucket
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},         // 1024µs = 1µs<<10
		{time.Second, 20},              // ~1.05s bound at 1µs<<20
		{10 * time.Minute, numBuckets}, // past the largest finite bound
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	// Every finite bucket bound must actually cover its index.
	for i := 0; i < numBuckets; i++ {
		if bucketIndex(BucketBound(i)) != i {
			t.Errorf("bound %v does not map back to bucket %d", BucketBound(i), i)
		}
	}
}

func TestHistogramStatsAndQuantile(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 90*time.Millisecond + 10*time.Second
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	// p50 lands in the ~1ms bucket, p99 in the ~1s bucket.
	if q := h.Quantile(0.50); q > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", q)
	}
	if q := h.Quantile(0.99); q < 500*time.Millisecond {
		t.Errorf("p99 = %v, want ~1s", q)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("pipeline")
	collect := tr.StartSpan("collect")
	page := collect.StartSpan("page")
	page.End()
	bot := collect.StartSpan("bot")
	bot.End()
	collect.End()
	tr.StartSpan("honeypot").End()

	roots := tr.Spans()
	if len(roots) != 2 || roots[0].Name != "collect" || roots[1].Name != "honeypot" {
		t.Fatalf("roots = %+v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name != "page" || kids[1].Name != "bot" {
		t.Fatalf("children = %+v", kids)
	}
	sum := tr.Summary()
	if sum.Name != "pipeline" || len(sum.Spans) != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Spans[0].Children) != 2 {
		t.Errorf("summary children = %+v", sum.Spans[0].Children)
	}
	if d := roots[0].Duration(); d < 0 {
		t.Errorf("negative duration %v", d)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	child := s.StartSpan("x")
	if child != nil {
		t.Error("nil span produced a child")
	}
	s.End()
	if s.Duration() != 0 || s.Children() != nil {
		t.Error("nil span not inert")
	}
}

func TestSpanContextPlumbing(t *testing.T) {
	tr := NewTrace("t")
	root := tr.StartSpan("root")
	ctx := ContextWithSpan(context.Background(), root)
	ctx2, child := StartChild(ctx, "child")
	if child == nil || SpanFromContext(ctx2) != child {
		t.Fatal("child span not carried by context")
	}
	child.End()
	if got := root.Children(); len(got) != 1 || got[0].Name != "child" {
		t.Errorf("children = %+v", got)
	}
	// A context with no span yields a safe nil child.
	ctx3, none := StartChild(context.Background(), "x")
	if none != nil || SpanFromContext(ctx3) != nil {
		t.Error("expected nil span from bare context")
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("scraper_requests_total").Add(5)
	r.Counter(`canary_triggers_total{kind="url"}`).Inc()
	r.Counter(`canary_triggers_total{kind="pdf"}`).Inc()
	r.Gauge("gateway_sessions").Set(3)
	r.Histogram("scraper_fetch_seconds").Observe(3 * time.Microsecond)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE scraper_requests_total counter",
		"scraper_requests_total 5",
		"# TYPE canary_triggers_total counter",
		`canary_triggers_total{kind="pdf"} 1`,
		`canary_triggers_total{kind="url"} 1`,
		"# TYPE gateway_sessions gauge",
		"gateway_sessions 3",
		"# TYPE scraper_fetch_seconds histogram",
		`scraper_fetch_seconds_bucket{le="+Inf"} 1`,
		"scraper_fetch_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The labelled family must emit exactly one TYPE line.
	if n := strings.Count(out, "# TYPE canary_triggers_total"); n != 1 {
		t.Errorf("TYPE line for labelled family emitted %d times", n)
	}
	// Buckets are cumulative: +Inf equals the count.
	if !strings.Contains(out, `scraper_fetch_seconds_bucket{le="4e-06"} 1`) {
		t.Errorf("3µs observation missing from le=4e-06 bucket\n%s", out)
	}
}

func TestJSONSnapshotIncludesTraces(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	tr := r.StartTrace("pipeline")
	tr.StartSpan("collect").End()

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"a_total": 1`, `"pipeline"`, `"collect"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON snapshot missing %q\n%s", want, out)
		}
	}
}

func TestSleepContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := SleepContext(ctx, time.Hour); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled sleep did not return promptly")
	}
	if err := SleepContext(context.Background(), time.Millisecond); err != nil {
		t.Errorf("uncancelled sleep err = %v", err)
	}
}

func TestOrDefault(t *testing.T) {
	if Or(nil) != Default() {
		t.Error("Or(nil) is not the default registry")
	}
	r := NewRegistry()
	if Or(r) != r {
		t.Error("Or(r) did not pass through")
	}
}

func TestConcurrentBusyMSNestedConcurrentChild(t *testing.T) {
	tr := NewTrace("pipeline")
	base := tr.started
	cur := base
	tr.now = func() time.Time { return cur }
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }

	outer := tr.StartSpan("stages")
	outer.MarkConcurrent()

	// Concurrent child: two grandchildren overlap the same 100ms
	// window, so its wall is 100ms but its busy time is 200ms.
	inner := outer.StartSpan("collect")
	inner.MarkConcurrent()
	g1 := inner.StartSpan("bot-1")
	g2 := inner.StartSpan("bot-2")
	cur = at(100)
	g1.End()
	g2.End()
	inner.End()

	// Plain sibling: 50ms of wall time.
	sib := outer.StartSpan("code")
	cur = at(150)
	sib.End()
	outer.End()

	sum := tr.Summary()
	root := sum.Spans[0]
	if !root.Concurrent || len(root.Children) != 2 {
		t.Fatalf("root summary = %+v", root)
	}
	if root.Children[0].BusyMS != 200 {
		t.Fatalf("inner BusyMS = %v, want 200 (two overlapped 100ms bots)", root.Children[0].BusyMS)
	}
	// The concurrent child contributes its BusyMS (200), not its wall
	// window (100), so the outer figure counts the overlapped
	// grandchildren exactly once each: 200 + 50.
	if root.BusyMS != 250 {
		t.Fatalf("outer BusyMS = %v, want 250", root.BusyMS)
	}
}
