package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// bareName strips a label suffix: `foo_total{kind="url"}` -> foo_total.
func bareName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WriteProm renders every metric in the Prometheus text exposition
// format, names sorted for determinism.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		if bare := bareName(name); !typed[bare] {
			typed[bare] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", bare, kind)
		}
	}
	for _, name := range sortedNames(counters) {
		writeType(name, "counter")
		fmt.Fprintf(w, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range sortedNames(gauges) {
		writeType(name, "gauge")
		fmt.Fprintf(w, "%s %d\n", name, gauges[name].Value())
	}
	for _, name := range sortedNames(hists) {
		h := hists[name]
		writeType(name, "histogram")
		cum := h.snapshot()
		for i := 0; i < numBuckets; i++ {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, BucketBound(i).Seconds(), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[numBuckets])
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
	return nil
}

// HistogramSummary is the JSON shape of one histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot is the JSON shape of a whole registry.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	Traces     []TraceSummary              `json:"traces,omitempty"`
}

// Snapshot captures every metric and trace as plain data.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSummary, len(r.hists)),
	}
	for n, c := range r.counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		snap.Histograms[n] = HistogramSummary{
			Count: h.Count(),
			SumMS: float64(h.Sum()) / float64(time.Millisecond),
			P50MS: float64(h.Quantile(0.50)) / float64(time.Millisecond),
			P95MS: float64(h.Quantile(0.95)) / float64(time.Millisecond),
			P99MS: float64(h.Quantile(0.99)) / float64(time.Millisecond),
		}
	}
	traces := make([]*Trace, len(r.traces))
	copy(traces, r.traces)
	r.mu.RUnlock()

	for _, t := range traces {
		snap.Traces = append(snap.Traces, t.Summary())
	}
	return snap
}

// WriteJSON renders the registry snapshot (metrics and traces) as
// indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry over HTTP: text exposition by default,
// the JSON snapshot with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}

// SleepContext waits for d or until ctx is cancelled, returning
// ctx.Err() when the wait was cut short — the cancellation-aware
// replacement for bare time.Sleep in pipeline hot loops.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
