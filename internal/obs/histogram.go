package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the finite bucket count. Buckets are log-spaced powers
// of two of a microsecond: bucket i holds observations d with
// d <= 1µs<<i, so the range spans 1µs .. ~134s before the overflow
// (+Inf) bucket.
const numBuckets = 28

// Histogram is a log-bucketed latency histogram, safe for concurrent
// use without locks. A nil Histogram is a valid no-op.
type Histogram struct {
	count   atomic.Int64
	sumNano atomic.Int64
	buckets [numBuckets + 1]atomic.Int64 // last bucket is +Inf
}

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// bucketIndex returns the index of the smallest bucket whose bound is
// >= d, or numBuckets for the +Inf bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if idx > numBuckets {
		return numBuckets
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNano.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNano.Load())
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// snapshot copies the bucket counts (cumulative, Prometheus-style).
func (h *Histogram) snapshot() (cum [numBuckets + 1]int64) {
	var running int64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1) from the bucket bounds; observations past the largest
// finite bucket report that bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	cum := h.snapshot()
	for i := 0; i <= numBuckets; i++ {
		if cum[i] >= rank {
			if i >= numBuckets {
				return BucketBound(numBuckets - 1)
			}
			return BucketBound(i)
		}
	}
	return BucketBound(numBuckets - 1)
}
