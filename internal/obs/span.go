package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace is a tree of timed spans for one pipeline run. Spans may be
// started and ended from any goroutine.
type Trace struct {
	Name string

	mu      sync.Mutex
	started time.Time
	roots   []*Span
	now     func() time.Time
}

// NewTrace starts an empty trace.
func NewTrace(name string) *Trace {
	t := &Trace{Name: name, now: time.Now}
	t.started = t.now()
	return t
}

// StartTrace creates a trace and registers it with the registry so the
// JSON exposition includes it.
func (r *Registry) StartTrace(name string) *Trace {
	t := NewTrace(name)
	r.RegisterTrace(t)
	return t
}

// StartSpan opens a new top-level stage span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{trace: t, Name: name, start: t.now()}
	t.roots = append(t.roots, s)
	return s
}

// Spans returns the top-level spans in start order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// Span is one timed region of a trace; child spans nest under it.
// A nil *Span is a valid no-op, so instrumented code never needs to
// check whether tracing is enabled.
type Span struct {
	trace *Trace
	Name  string

	start      time.Time
	end        time.Time
	children   []*Span
	concurrent bool
}

// MarkConcurrent flags the span as one of several stages interleaving
// over the same wall-clock window (the sharded executor's per-stage
// spans). Reports render such spans by summed child-span time instead
// of wall time, which would double-count the overlapped window.
func (s *Span) MarkConcurrent() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.concurrent = true
	s.trace.mu.Unlock()
}

// StartSpan opens a child span.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	c := &Span{trace: s.trace, Name: name, start: s.trace.now()}
	s.children = append(s.children, c)
	return c
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if s.end.IsZero() {
		s.end = s.trace.now()
	}
}

// Duration reports the span length; an unfinished span measures up to
// now.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	end := s.end
	if end.IsZero() {
		end = s.trace.now()
	}
	return end.Sub(s.start)
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// SpanSummary is the JSON shape of one span.
type SpanSummary struct {
	Name       string  `json:"name"`
	StartMS    int64   `json:"start_ms"` // offset from trace start
	DurationMS float64 `json:"duration_ms"`
	// Concurrent marks a stage span that interleaved with sibling
	// stages; its DurationMS is a shared wall-clock window, and BusyMS
	// (summed child-span time) is the honest per-stage figure.
	Concurrent bool          `json:"concurrent,omitempty"`
	BusyMS     float64       `json:"busy_ms,omitempty"`
	Children   []SpanSummary `json:"children,omitempty"`
}

func (s *Span) summaryLocked(traceStart time.Time) SpanSummary {
	out := SpanSummary{
		Name:       s.Name,
		StartMS:    s.start.Sub(traceStart).Milliseconds(),
		DurationMS: float64(s.durationLocked()) / float64(time.Millisecond),
		Concurrent: s.concurrent,
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.summaryLocked(traceStart))
	}
	if s.concurrent {
		for _, c := range out.Children {
			// A concurrent child's wall duration is itself a shared
			// window; its BusyMS is the de-overlapped figure. Summing
			// DurationMS there would count overlapped grandchildren
			// twice.
			if c.Concurrent && c.BusyMS > 0 {
				out.BusyMS += c.BusyMS
			} else {
				out.BusyMS += c.DurationMS
			}
		}
	}
	return out
}

// TraceSummary is the JSON shape of a whole trace.
type TraceSummary struct {
	Name  string        `json:"name"`
	Spans []SpanSummary `json:"spans"`
}

// Summary snapshots the trace into its JSON shape.
func (t *Trace) Summary() TraceSummary {
	if t == nil {
		return TraceSummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceSummary{Name: t.Name}
	for _, s := range t.roots {
		out.Spans = append(out.Spans, s.summaryLocked(t.started))
	}
	return out
}

// WriteJSON renders the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Summary())
}

// ---- context plumbing ----

type spanKey struct{}

// ContextWithSpan returns a context carrying the span, so lower layers
// can attach child spans without new parameters.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil — and nil is
// safe to call StartSpan/End on.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartChild opens a child of the context's span (a no-op nil span
// when the context carries none) and returns a context carrying the
// child.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	c := SpanFromContext(ctx).StartSpan(name)
	if c == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, c), c
}
