package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// sealedJournal opens a ledgered file journal, emits n events, and
// closes it — which must write the external anchor side file.
func sealedJournal(t *testing.T, dir string, n int) string {
	t.Helper()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := Open(path, Options{
		Obs:    obs.NewRegistry(),
		Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j.Emit(Event{Kind: KindPageFetched, BotID: i + 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCloseWritesAnchorThatVerifies(t *testing.T) {
	path := sealedJournal(t, t.TempDir(), 9)
	a, err := ReadAnchor(AnchorPath(path))
	if err != nil {
		t.Fatalf("anchor side file missing or invalid after sealed close: %v", err)
	}
	if a.Schema != AnchorSchema || a.Mode != LedgerMerkle || a.Head == "" || a.Seq == 0 {
		t.Errorf("anchor contents incomplete: %+v", a)
	}
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.AnchorChecked || !res.AnchorOK {
		t.Fatalf("sealed journal + its own anchor do not verify: %+v", res)
	}
	if res.Head != a.Head {
		t.Errorf("replayed head %s disagrees with anchored head %s", res.Head, a.Head)
	}
}

// TestAnchorDetectsWholesaleRewrite covers the attack in-file
// verification cannot see: the journal is replaced outright with a
// shorter, internally consistent ledgered journal. The chain verifies;
// only the external anchor convicts it.
func TestAnchorDetectsWholesaleRewrite(t *testing.T) {
	dir := t.TempDir()
	path := sealedJournal(t, dir, 9)
	rewrite := sealedJournal(t, t.TempDir(), 3)
	data, err := os.ReadFile(rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("rewritten journal should be internally consistent, got in-file error %q", res.Err)
	}
	if res.OK || !res.AnchorChecked || res.AnchorOK {
		t.Fatalf("wholesale rewrite not convicted by the anchor: %+v", res)
	}
	if !strings.Contains(res.AnchorErr, "anchor mismatch") {
		t.Errorf("AnchorErr %q does not classify the rewrite", res.AnchorErr)
	}
}

func TestFreshOpenRemovesStaleAnchor(t *testing.T) {
	dir := t.TempDir()
	path := sealedJournal(t, dir, 5)
	// A non-resume Open truncates the journal; a surviving anchor from
	// the previous run would falsely incriminate the new one.
	j, err := Open(path, Options{
		Obs:    obs.NewRegistry(),
		Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(AnchorPath(path)); !os.IsNotExist(err) {
		t.Errorf("stale anchor survived a truncating open: %v", err)
	}
	j.Emit(Event{Kind: KindPageFetched, BotID: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.AnchorChecked || !res.AnchorOK {
		t.Fatalf("re-opened journal does not verify against its new anchor: %+v", res)
	}
}

func TestResumeReanchorsSideFile(t *testing.T) {
	dir := t.TempDir()
	path := sealedJournal(t, dir, 5)
	first, err := ReadAnchor(AnchorPath(path))
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, Options{
		Obs:    obs.NewRegistry(),
		Resume: true,
		Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Kind: KindPageFetched, BotID: 99})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	second, err := ReadAnchor(AnchorPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if second.Head == first.Head || second.Seq <= first.Seq {
		t.Errorf("resume did not advance the anchor: first %+v, second %+v", first, second)
	}
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.AnchorOK || res.Segments != 2 {
		t.Fatalf("resumed journal does not verify against the re-written anchor: %+v", res)
	}
}

func TestReadAnchorRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := ReadAnchor(filepath.Join(dir, "absent.anchor")); err == nil {
		t.Error("missing anchor read without error")
	}
	if _, err := ReadAnchor(write("garbage.anchor", "not json")); err == nil {
		t.Error("non-JSON anchor read without error")
	}
	if _, err := ReadAnchor(write("empty-head.anchor", `{"anchor_schema":1,"head":""}`)); err == nil {
		t.Error("anchor with empty head read without error")
	}
	future, _ := json.Marshal(Anchor{Schema: AnchorSchema + 1, Head: "aa"})
	if _, err := ReadAnchor(write("future.anchor", string(future))); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("future-schema anchor not rejected: %v", err)
	}
}
