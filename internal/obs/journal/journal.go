// Package journal is the pipeline's event-level audit trail: an
// append-only, schema-versioned JSONL journal of typed milestone events
// (page fetched, captcha solved, bot discovered, policy audited,
// experiment started/settled, canary triggered, permission denied, code
// flagged), each stamped with the correlation identifiers — run ID, bot
// ID, experiment ID — carried through the pipeline via context.Context.
//
// Where internal/obs answers "how many and how fast" in aggregate, the
// journal answers "what happened to bot X in run Y": every event is one
// self-describing JSON line, so a journal file can be filtered,
// summarized, and replayed into a per-bot timeline (`botscan journal`)
// long after the run that produced it.
//
// The writer never blocks the pipeline: events go through a bounded
// channel drained by a background flusher, and when the buffer is
// saturated the event is dropped and counted on the obs.Registry
// (`journal_events_dropped_total`) instead of stalling a hot path.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the version stamped on every event this build
// writes. Decoders skip events from future schemas rather than
// guessing at their shape.
const SchemaVersion = 1

// Kind names one typed pipeline milestone.
type Kind string

// The event vocabulary, one constant per pipeline milestone.
const (
	// Crawl stage.
	KindPageFetched   Kind = "page_fetched"
	KindCaptchaSolved Kind = "captcha_solved"
	KindBotDiscovered Kind = "bot_discovered"

	// Traceability stage.
	KindPolicyAudited Kind = "policy_audited"

	// Code-analysis stage.
	KindCodeFlag Kind = "code_analysis_flag"

	// Honeypot stage.
	KindExperimentStarted Kind = "experiment_started"
	KindExperimentSettled Kind = "experiment_settled"
	KindCanaryTriggered   Kind = "canary_triggered"

	// Platform enforcement.
	KindPermissionDenied Kind = "permission_denied"

	// Pipeline orchestration.
	KindStageStarted   Kind = "stage_started"
	KindStageCompleted Kind = "stage_completed"

	// Degradation & chaos: emitted when a stage finishes with partial
	// results, a bot is quarantined after exhausting its retries, or the
	// fault injector fires.
	KindStageDegraded  Kind = "stage_degraded"
	KindBotQuarantined Kind = "bot_quarantined"
	KindFaultInjected  Kind = "fault_injected"

	// Crash-safety: checkpoint/resume progress, endpoint circuit
	// breakers, and the per-stage watchdog.
	KindCheckpointWritten Kind = "checkpoint_written"
	KindRunResumed        Kind = "run_resumed"
	KindWorkSkipped       Kind = "work_skipped"
	KindBreakerOpened     Kind = "breaker_opened"
	KindBreakerClosed     Kind = "breaker_closed"
	KindStageStalled      Kind = "stage_stalled"

	// Sharded executor: one shard's deque ran dry (its remaining items
	// stolen or executed) — the scheduler-level milestone that lets a
	// journal reader reconstruct shard balance after the fact.
	KindShardDrained Kind = "shard_drained"
)

// Event is one journal line. Zero-valued correlation fields are omitted
// from the JSON so unrelated events stay small.
type Event struct {
	Schema    int       `json:"schema"`
	At        time.Time `json:"at"`
	Kind      Kind      `json:"kind"`
	Component string    `json:"component,omitempty"`

	// Correlation identifiers, normally filled from the context by Emit.
	RunID        string `json:"run_id,omitempty"`
	BotID        int    `json:"bot_id,omitempty"`
	Bot          string `json:"bot,omitempty"`
	ExperimentID string `json:"experiment_id,omitempty"`

	// Fields carries the kind-specific payload (URL fetched, verdict
	// class, token kind, …).
	Fields map[string]any `json:"fields,omitempty"`
}

// Options configures a Journal.
type Options struct {
	// Buffer is the bounded channel capacity between emitters and the
	// flusher (default 1024). When full, Emit drops instead of blocking.
	Buffer int
	// Obs receives the journal's emitted/dropped/write-error counters;
	// nil uses the process-default registry.
	Obs *obs.Registry
	// Now supplies event timestamps; defaults to time.Now.
	Now func() time.Time
}

// Journal is the non-blocking JSONL writer. A nil *Journal is a valid
// no-op, so instrumented code never needs to check whether journaling
// is enabled.
type Journal struct {
	now func() time.Time

	ch   chan Event
	quit chan struct{} // closed by Close; tells the flusher to drain
	done chan struct{} // closed when the flusher has flushed and exited

	closeOnce sync.Once
	closer    io.Closer // underlying file when opened via Open

	cEmitted *obs.Counter
	cDropped *obs.Counter
	cErrors  *obs.Counter
}

// New starts a journal writing JSONL to w. The caller must Close it to
// flush buffered events; w is not closed.
func New(w io.Writer, opts Options) *Journal {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	reg := obs.Or(opts.Obs)
	j := &Journal{
		now:      opts.Now,
		ch:       make(chan Event, opts.Buffer),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		cEmitted: reg.Counter("journal_events_total"),
		cDropped: reg.Counter("journal_events_dropped_total"),
		cErrors:  reg.Counter("journal_write_errors_total"),
	}
	go j.flusher(w)
	return j
}

// Open creates (or truncates) a journal file at path and starts a
// journal over it. Close flushes and closes the file.
func Open(path string, opts Options) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	j := New(f, opts)
	j.closer = f
	return j, nil
}

// Emit appends an event, stamping the schema version and (when unset)
// the timestamp. It never blocks: with the buffer saturated, the event
// is dropped and the dropped-event counter incremented. Safe for
// concurrent use and safe (a counted drop) after Close.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	if e.Schema == 0 {
		e.Schema = SchemaVersion
	}
	if e.At.IsZero() {
		e.At = j.now()
	}
	select {
	case <-j.quit:
		j.cDropped.Inc()
	default:
		select {
		case j.ch <- e:
			j.cEmitted.Inc()
		default:
			j.cDropped.Inc()
		}
	}
}

// EmitBatch appends a batch of events under one channel pass. It has
// identical semantics to calling Emit per event — non-blocking, drops
// counted individually — but gives batching emitters (the sharded
// executor's per-shard drain) a single call site.
func (j *Journal) EmitBatch(events []Event) {
	if j == nil {
		return
	}
	for _, e := range events {
		j.Emit(e)
	}
}

// Close stops the flusher after draining every buffered event, then
// closes the underlying file when the journal was opened via Open.
// Emit after Close counts drops instead of panicking.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.closeOnce.Do(func() { close(j.quit) })
	<-j.done
	if j.closer != nil {
		return j.closer.Close()
	}
	return nil
}

// flusher drains the channel onto w, flushing whenever the buffer goes
// idle so a live tail of the file stays current.
func (j *Journal) flusher(w io.Writer) {
	defer close(j.done)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	write := func(e Event) {
		if err := enc.Encode(e); err != nil {
			j.cErrors.Inc()
		}
	}
	for {
		select {
		case e := <-j.ch:
			write(e)
			if len(j.ch) == 0 {
				if err := bw.Flush(); err != nil {
					j.cErrors.Inc()
				}
			}
		case <-j.quit:
			for {
				select {
				case e := <-j.ch:
					write(e)
				default:
					if err := bw.Flush(); err != nil {
						j.cErrors.Inc()
					}
					return
				}
			}
		}
	}
}
