// Package journal is the pipeline's event-level audit trail: an
// append-only, schema-versioned JSONL journal of typed milestone events
// (page fetched, captcha solved, bot discovered, policy audited,
// experiment started/settled, canary triggered, permission denied, code
// flagged), each stamped with the correlation identifiers — run ID, bot
// ID, experiment ID — carried through the pipeline via context.Context.
//
// Where internal/obs answers "how many and how fast" in aggregate, the
// journal answers "what happened to bot X in run Y": every event is one
// self-describing JSON line, so a journal file can be filtered,
// summarized, and replayed into a per-bot timeline (`botscan journal`)
// long after the run that produced it.
//
// The writer never blocks the pipeline: events go through a bounded
// channel drained by a background flusher, and when the buffer is
// saturated the event is dropped and counted on the obs.Registry
// (`journal_events_dropped_total`) instead of stalling a hot path.
//
// With Options.Ledger enabled, the journal is also tamper-evident: the
// flusher maintains a SHA-256 hash chain over every raw line and
// interleaves ledger records (anchors, Merkle-batched commitments, a
// closing seal) into the same file — see ledger.go and Verify.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the version stamped on every event this build
// writes. Decoders skip events from future schemas rather than
// guessing at their shape.
const SchemaVersion = 1

// Kind names one typed pipeline milestone.
type Kind string

// The event vocabulary, one constant per pipeline milestone.
const (
	// Crawl stage.
	KindPageFetched   Kind = "page_fetched"
	KindCaptchaSolved Kind = "captcha_solved"
	KindBotDiscovered Kind = "bot_discovered"

	// Traceability stage.
	KindPolicyAudited Kind = "policy_audited"

	// Code-analysis stage.
	KindCodeFlag Kind = "code_analysis_flag"

	// Honeypot stage.
	KindExperimentStarted Kind = "experiment_started"
	KindExperimentSettled Kind = "experiment_settled"
	KindCanaryTriggered   Kind = "canary_triggered"

	// Platform enforcement.
	KindPermissionDenied Kind = "permission_denied"

	// Pipeline orchestration.
	KindStageStarted   Kind = "stage_started"
	KindStageCompleted Kind = "stage_completed"

	// Degradation & chaos: emitted when a stage finishes with partial
	// results, a bot is quarantined after exhausting its retries, or the
	// fault injector fires.
	KindStageDegraded  Kind = "stage_degraded"
	KindBotQuarantined Kind = "bot_quarantined"
	KindFaultInjected  Kind = "fault_injected"

	// Crash-safety: checkpoint/resume progress, endpoint circuit
	// breakers, and the per-stage watchdog.
	KindCheckpointWritten Kind = "checkpoint_written"
	KindRunResumed        Kind = "run_resumed"
	KindWorkSkipped       Kind = "work_skipped"
	KindBreakerOpened     Kind = "breaker_opened"
	KindBreakerClosed     Kind = "breaker_closed"
	KindStageStalled      Kind = "stage_stalled"

	// Sharded executor: one shard's deque ran dry (its remaining items
	// stolen or executed) — the scheduler-level milestone that lets a
	// journal reader reconstruct shard balance after the fact.
	KindShardDrained Kind = "shard_drained"

	// Gateway traffic plane: session lifecycle and overload shedding.
	// session_shed marks a connection refused by admission control
	// (fields.reason: max_sessions | identify_rate | tenant_rate);
	// events_dropped
	// aggregates one session's slow-consumer losses at close.
	KindSessionOpened Kind = "session_opened"
	KindSessionClosed Kind = "session_closed"
	KindSessionShed   Kind = "session_shed"
	KindEventsDropped Kind = "events_dropped"
)

// Event is one journal line. Zero-valued correlation fields are omitted
// from the JSON so unrelated events stay small.
type Event struct {
	Schema    int       `json:"schema"`
	At        time.Time `json:"at"`
	Kind      Kind      `json:"kind"`
	Component string    `json:"component,omitempty"`

	// Correlation identifiers, normally filled from the context by Emit.
	RunID        string `json:"run_id,omitempty"`
	BotID        int    `json:"bot_id,omitempty"`
	Bot          string `json:"bot,omitempty"`
	ExperimentID string `json:"experiment_id,omitempty"`

	// Fields carries the kind-specific payload (URL fetched, verdict
	// class, token kind, …).
	Fields map[string]any `json:"fields,omitempty"`
}

// Options configures a Journal.
type Options struct {
	// Buffer is the bounded channel capacity between emitters and the
	// flusher (default 1024). When full, Emit drops instead of blocking.
	Buffer int
	// Obs receives the journal's emitted/dropped/write-error counters;
	// nil uses the process-default registry.
	Obs *obs.Registry
	// Now supplies event timestamps; defaults to time.Now.
	Now func() time.Time
	// Ledger enables tamper-evident hash chaining over the written
	// lines; the zero value leaves it off.
	Ledger LedgerOptions
	// Resume makes Open append to an existing journal instead of
	// truncating it. With the ledger enabled, the prior file is scanned
	// and the new segment's chain re-anchored on its head; a prior file
	// that fails verification refuses to resume.
	Resume bool
}

// Journal is the non-blocking JSONL writer. A nil *Journal is a valid
// no-op, so instrumented code never needs to check whether journaling
// is enabled.
type Journal struct {
	now func() time.Time

	ch   chan Event
	quit chan struct{} // closed by Close; tells the flusher to drain
	done chan struct{} // closed when the flusher has flushed and exited

	// emitMu fences Emit against Close: Close sets closed under the
	// write lock before signalling the flusher, so no emitter can
	// enqueue (and count) an event the final drain will never see.
	emitMu sync.RWMutex
	closed bool

	closeOnce sync.Once
	closeErr  error
	closer    io.Closer // underlying file when opened via Open
	path      string    // file path when opened via Open (anchor sink target)

	ledger *ledgerState // nil when the ledger is off
	// stats carries the ledger accounting: anchor fields are fixed
	// before the flusher starts, the totals are written by the flusher
	// at exit under statsMu.
	statsMu sync.Mutex
	stats   LedgerStats

	cEmitted *obs.Counter
	cDropped *obs.Counter
	cErrors  *obs.Counter
}

// New starts a journal writing JSONL to w. The caller must Close it to
// flush buffered events; w is not closed. With Options.Ledger enabled
// the stream starts at the genesis anchor; use Open for resume-aware
// re-anchoring onto an existing file.
func New(w io.Writer, opts Options) *Journal {
	return newJournal(w, opts, resumeState{}, false)
}

// newJournal builds the journal and, when resuming, seeds the ledger
// with the prior segment's state before the flusher goroutine starts —
// the flusher writes the segment anchor as its first act.
func newJournal(w io.Writer, opts Options, st resumeState, resumed bool) *Journal {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	reg := obs.Or(opts.Obs)
	j := &Journal{
		now:      opts.Now,
		ch:       make(chan Event, opts.Buffer),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		cEmitted: reg.Counter("journal_events_total"),
		cDropped: reg.Counter("journal_events_dropped_total"),
		cErrors:  reg.Counter("journal_write_errors_total"),
	}
	if opts.Ledger.enabled() {
		l := newLedgerState(opts.Ledger, opts.Now)
		if resumed {
			l.resumed = true
			l.priorSeq = st.seq
			l.recovered = len(st.pending)
			l.priorHead = st.lastRec
			l.seq = st.seq
			l.chain = st.chain
			l.lastRec = st.lastRec
			l.pending = st.pending
		}
		j.ledger = l
		j.stats.Mode = l.opts.Mode
		j.stats.Resumed = l.resumed
		j.stats.PriorEvents = l.priorSeq
		j.stats.Recovered = l.recovered
		j.stats.PriorHead = l.priorHead
	}
	go j.flusher(w)
	return j
}

// Open starts a journal over a file at path. Without Options.Resume the
// file is created fresh (truncating any previous one); with Resume it
// is opened append-only so a pre-crash journal survives. When both
// Resume and the ledger are enabled, the existing file is verified and
// the new segment's chain anchored on its head — committing any
// uncovered tail the crashed segment left behind — so one file verifies
// end-to-end across every segment boundary. A prior file that fails
// verification (tampering, not crash damage) refuses to resume.
// Close flushes and closes the file.
func Open(path string, opts Options) (*Journal, error) {
	if !opts.Resume {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("journal: open: %w", err)
		}
		// A fresh journal invalidates any anchor a previous run left for
		// this path; a stale one would falsely flag the new file.
		os.Remove(AnchorPath(path))
		j := New(f, opts)
		j.closer = f
		j.path = path
		return j, nil
	}

	var st resumeState
	if opts.Ledger.enabled() {
		prior, err := os.Open(path)
		switch {
		case os.IsNotExist(err):
			// First segment; nothing to anchor on.
		case err != nil:
			return nil, fmt.Errorf("journal: open: %w", err)
		default:
			st, err = resumeScan(prior)
			prior.Close()
			if err != nil {
				return nil, err
			}
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	if st.torn {
		// The prior segment died mid-write: its final line has no
		// newline. The scan hashed the partial bytes as a line, so
		// completing it keeps file and chain consistent.
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: repair torn tail: %w", err)
		}
	}
	resumed := st.priorRecords > 0 || st.seq > 0 || len(st.pending) > 0
	j := newJournal(f, opts, st, resumed)
	j.closer = f
	j.path = path
	return j, nil
}

// Emit appends an event, stamping the schema version and (when unset)
// the timestamp. It never blocks: with the buffer saturated, the event
// is dropped and the dropped-event counter incremented. Safe for
// concurrent use and safe (a counted drop) after Close.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	if e.Schema == 0 {
		e.Schema = SchemaVersion
	}
	if e.At.IsZero() {
		e.At = j.now()
	}
	// The read lock pins Close's closed-flag flip: once Emit passes the
	// check, Close cannot complete the flip until Emit's send has
	// landed, so every event counted as emitted is in the channel
	// before the flusher's final drain begins.
	j.emitMu.RLock()
	if j.closed {
		j.emitMu.RUnlock()
		j.cDropped.Inc()
		return
	}
	select {
	case j.ch <- e:
		j.cEmitted.Inc()
	default:
		j.cDropped.Inc()
	}
	j.emitMu.RUnlock()
}

// EmitBatch appends a batch of events under one channel pass. It has
// identical semantics to calling Emit per event — non-blocking, drops
// counted individually — but gives batching emitters (the sharded
// executor's per-shard drain) a single call site.
func (j *Journal) EmitBatch(events []Event) {
	if j == nil {
		return
	}
	for _, e := range events {
		j.Emit(e)
	}
}

// Close stops the flusher after draining every buffered event — with
// the ledger enabled, committing the final batch and writing the seal
// record — then closes the underlying file when the journal was opened
// via Open. Emit after (or racing) Close counts drops instead of
// losing counted events. Idempotent; later calls return the first
// error.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.closeOnce.Do(func() {
		j.emitMu.Lock()
		j.closed = true
		j.emitMu.Unlock()
		close(j.quit)
		<-j.done
		if j.closer != nil {
			j.closeErr = j.closer.Close()
		}
		// External anchor sink: export the sealed chain head beside the
		// file, so verification can detect a wholesale rewrite that the
		// in-file chain alone cannot. Stats are final once done is closed.
		if j.ledger != nil && j.path != "" {
			if err := writeAnchor(j.path, j.Ledger()); err != nil && j.closeErr == nil {
				j.closeErr = fmt.Errorf("journal: write anchor: %w", err)
			}
		}
	})
	<-j.done
	return j.closeErr
}

// Ledger reports the journal's ledger accounting. The resume-anchor
// fields are valid from Open; Seq, Head, and Records settle once Close
// has returned. The zero value (Mode "") means the ledger is off.
func (j *Journal) Ledger() LedgerStats {
	if j == nil {
		return LedgerStats{}
	}
	j.statsMu.Lock()
	defer j.statsMu.Unlock()
	return j.stats
}

// lineSink adapts the flusher's bufio.Writer to the ledger's line
// interface, counting write errors like event writes do.
type lineSink struct {
	bw *bufio.Writer
	j  *Journal
}

func (s lineSink) writeLine(line []byte) error {
	if _, err := s.bw.Write(line); err != nil {
		s.j.cErrors.Inc()
		return err
	}
	if err := s.bw.WriteByte('\n'); err != nil {
		s.j.cErrors.Inc()
		return err
	}
	return nil
}

// flusher drains the channel onto w, flushing whenever the buffer goes
// idle so a live tail of the file stays current. With the ledger
// enabled it writes the segment anchor first, folds each line into the
// hash chain, commits full batches inline, commits partial batches
// after the ledger's Wait, and seals the stream on shutdown.
func (j *Journal) flusher(w io.Writer) {
	defer close(j.done)
	bw := bufio.NewWriter(w)
	sink := lineSink{bw: bw, j: j}
	led := j.ledger

	// waitC fires when a partial batch has sat uncommitted for the
	// ledger's Wait; nil (blocks forever) while nothing is pending.
	var waitTimer *time.Timer
	var waitC <-chan time.Time
	armWait := func() {
		if led == nil || len(led.pending) == 0 {
			return
		}
		if waitTimer == nil {
			waitTimer = time.NewTimer(led.opts.Wait)
		} else {
			waitTimer.Reset(led.opts.Wait)
		}
		waitC = waitTimer.C
	}
	disarmWait := func() {
		if waitTimer != nil && !waitTimer.Stop() {
			select {
			case <-waitTimer.C:
			default:
			}
		}
		waitC = nil
	}

	if led != nil {
		if err := led.anchor(sink); err != nil {
			j.cErrors.Inc()
		}
		bw.Flush()
	}

	write := func(e Event) {
		line, err := json.Marshal(e)
		if err != nil {
			j.cErrors.Inc()
			return
		}
		if err := sink.writeLine(line); err != nil {
			return
		}
		if led != nil {
			committed, err := led.note(sink, line)
			if err != nil {
				j.cErrors.Inc()
			}
			if committed {
				disarmWait()
			} else if waitC == nil {
				armWait()
			}
		}
	}
	finish := func() {
		if led != nil {
			if err := led.seal(sink); err != nil {
				j.cErrors.Inc()
			}
			j.statsMu.Lock()
			j.stats.Seq = led.seq
			j.stats.Head = hexDigest(led.chain)
			j.stats.Records = led.records
			j.statsMu.Unlock()
		}
		if err := bw.Flush(); err != nil {
			j.cErrors.Inc()
		}
	}

	for {
		select {
		case e := <-j.ch:
			write(e)
			if len(j.ch) == 0 {
				if err := bw.Flush(); err != nil {
					j.cErrors.Inc()
				}
			}
		case <-waitC:
			waitC = nil
			if led != nil && len(led.pending) > 0 {
				if err := led.commit(sink); err != nil {
					j.cErrors.Inc()
				}
				if err := bw.Flush(); err != nil {
					j.cErrors.Inc()
				}
			}
		case <-j.quit:
			for {
				select {
				case e := <-j.ch:
					write(e)
				default:
					disarmWait()
					finish()
					return
				}
			}
		}
	}
}
