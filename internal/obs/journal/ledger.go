// The tamper-evident evidence ledger: a running SHA-256 hash chain over
// the journal's raw JSONL lines, periodically committed as ledger
// records interleaved in the same file. The journal's output is the
// pipeline's security *evidence* (canary triggers, honeypot verdicts,
// policy classifications), and the ledger makes that evidence
// forensically trustworthy — any flipped byte, deleted line, reordered
// line, or truncated tail after the fact is detectable, and the first
// unverifiable line can be pinpointed.
//
// Three modes, selectable per run:
//
//   - LedgerOff:    today's plain JSONL — no chain, no records.
//   - LedgerChain:  the direct ledger — one record per event, exact
//     per-line tamper pinpointing, maximal write amplification.
//   - LedgerMerkle: batched commitment — events accumulate into batches
//     of LedgerOptions.Batch leaves (sealed early after
//     LedgerOptions.Wait), each committed as one record carrying the
//     batch's Merkle root; tampering localizes to a batch.
//
// The chain state after line i is C_i = SHA-256(C_{i-1} || line_i),
// anchored at a fixed genesis constant (or, for a resumed segment, at
// the prior segment's head — see Open). The Merkle tree for a batch is
// built over the batch's chain states with domain-separated node
// hashes, odd nodes promoted. Because leaves are chain states, one
// hash per event covers both content and order.
//
// Ledger records are JSONL lines in the same file, distinguished from
// events by their "ledger" field; Decode skips them silently, so every
// existing journal reader keeps working. Records are linked to each
// other through Prev (the chain value at the previous record), so
// deleting or reordering whole batches — records included — breaks
// continuity.
//
// The scheme is tamper-EVIDENT, not tamper-proof: an attacker who
// rewrites the file from some point onward and recomputes every
// subsequent hash produces a self-consistent file with a different
// head. Anchor the head externally (verify-ledger prints it; so does
// botscan at seal time) to close that hole.
package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"time"
)

// LedgerMode selects the journal's tamper-evidence scheme.
type LedgerMode string

// The ledger modes.
const (
	LedgerOff    LedgerMode = "off"
	LedgerChain  LedgerMode = "chain"
	LedgerMerkle LedgerMode = "merkle"
)

// ParseLedgerMode resolves a -ledger-mode flag value; the empty string
// means LedgerOff.
func ParseLedgerMode(s string) (LedgerMode, error) {
	switch LedgerMode(s) {
	case "", LedgerOff:
		return LedgerOff, nil
	case LedgerChain:
		return LedgerChain, nil
	case LedgerMerkle:
		return LedgerMerkle, nil
	}
	return LedgerOff, fmt.Errorf("journal: unknown ledger mode %q (want off, chain, or merkle)", s)
}

// LedgerOptions configures the tamper-evidence scheme of a Journal.
type LedgerOptions struct {
	// Mode selects the scheme; empty and LedgerOff disable the ledger.
	Mode LedgerMode
	// Batch is the Merkle batch size (default 64). LedgerChain behaves
	// as Batch 1 regardless.
	Batch int
	// Wait bounds how long a partial batch may sit uncommitted before
	// it is sealed early (default 50ms), so a live tail of the file is
	// never more than Wait behind the chain.
	Wait time.Duration
}

func (o LedgerOptions) enabled() bool { return o.Mode == LedgerChain || o.Mode == LedgerMerkle }

// withDefaults resolves zero knobs.
func (o LedgerOptions) withDefaults() LedgerOptions {
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Wait <= 0 {
		o.Wait = 50 * time.Millisecond
	}
	if o.Mode == LedgerChain {
		o.Batch = 1
	}
	return o
}

// LedgerSchema is the version stamped on every ledger record; verifiers
// refuse records from future schemas rather than guessing.
const LedgerSchema = 1

// Record kinds: an anchor opens a segment (and, on resume, commits the
// prior segment's uncovered tail), a batch commits a run of events, and
// a seal closes the stream on a clean shutdown.
const (
	RecordAnchor = "anchor"
	RecordBatch  = "batch"
	RecordSeal   = "seal"
)

// Record is one ledger line. It never collides with an Event: events
// have no "ledger" field, records have no "kind" field.
type Record struct {
	Ledger int        `json:"ledger"` // LedgerSchema
	LKind  string     `json:"lkind"`  // anchor | batch | seal
	Mode   LedgerMode `json:"mode,omitempty"`
	// Seq is the chain sequence (1-based count of event lines since
	// genesis, across all segments) this record covers up to.
	Seq uint64 `json:"seq"`
	// Count is how many event lines this record commits (the batch
	// size; for an anchor, the recovered tail of the prior segment).
	Count int `json:"n,omitempty"`
	// Chain is the running chain head C_Seq, hex.
	Chain string `json:"chain"`
	// Root is the Merkle root over the committed batch's chain-state
	// leaves, hex; omitted when Count is 0.
	Root string `json:"root,omitempty"`
	// Prev is the chain value at the previous record (continuity link);
	// empty only on the very first record of a file.
	Prev string    `json:"prev"`
	At   time.Time `json:"at,omitempty"`
}

// isRecordLine reports whether a raw journal line is a ledger record,
// decoding it when so.
func isRecordLine(line []byte) (Record, bool) {
	var r Record
	if json.Unmarshal(line, &r) != nil || r.Ledger <= 0 {
		return Record{}, false
	}
	return r, true
}

// digest is one SHA-256 state in the chain or tree.
type digest = [sha256.Size]byte

// genesis is the chain anchor for the first segment of every journal.
func genesis() digest {
	return sha256.Sum256([]byte("repro/obs/journal/ledger-genesis/v1"))
}

// chainHasher folds lines into the chain with one reusable SHA-256
// state, so the per-event hot path (every journal write when the ledger
// is on) allocates nothing.
type chainHasher struct{ h hash.Hash }

func newChainHasher() chainHasher { return chainHasher{h: sha256.New()} }

// step computes C_i = SHA-256(C_{i-1} || line).
func (c chainHasher) step(prev digest, line []byte) digest {
	c.h.Reset()
	c.h.Write(prev[:])
	c.h.Write(line)
	var out digest
	c.h.Sum(out[:0])
	return out
}

// chainStep is the one-shot form, for tests and non-hot-path callers.
func chainStep(prev digest, line []byte) digest {
	return newChainHasher().step(prev, line)
}

// merkleNode hashes one interior node with domain separation from the
// chain: SHA-256(0x01 || left || right). One-shot Sum256 over a stack
// buffer — ~1 node per leaf, so this is as hot as step.
func merkleNode(l, r digest) digest {
	var buf [1 + 2*sha256.Size]byte
	buf[0] = 0x01
	copy(buf[1:], l[:])
	copy(buf[1+sha256.Size:], r[:])
	return sha256.Sum256(buf[:])
}

// merkleRoot builds the batch commitment over chain-state leaves, odd
// nodes promoted. A single leaf is its own root, which makes chain-mode
// records (Batch 1) a degenerate Merkle commitment verified by the same
// code path. Levels are folded in place over a scratch slice the caller
// may reuse across batches.
func merkleRoot(leaves []digest) digest {
	return merkleRootInto(nil, leaves)
}

func merkleRootInto(scratch, leaves []digest) digest {
	if len(leaves) == 0 {
		return digest{}
	}
	level := append(scratch[:0], leaves...)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				break
			}
			next = append(next, merkleNode(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

func hexDigest(d digest) string { return hex.EncodeToString(d[:]) }

// ledgerState is the writer-side chain accumulator, owned entirely by
// the flusher goroutine (no locking needed). The flusher feeds it each
// event line's raw bytes and asks it to commit batches, anchors, and
// the final seal as ledger record lines on the same writer.
type ledgerState struct {
	opts LedgerOptions
	now  func() time.Time
	h    chainHasher
	tree []digest // merkleRootInto scratch, sized to one batch

	seq     uint64
	chain   digest
	lastRec string // chain hex at the last record written (Prev link)
	pending []digest
	records int

	// anchor captures what Open learned about the prior segment when
	// resuming; zero for a fresh file.
	resumed   bool
	priorSeq  uint64 // seq at the resume anchor (events inherited)
	recovered int    // prior uncovered tail lines the anchor commits
	priorHead string
}

// newLedgerState starts a fresh-segment accumulator.
func newLedgerState(opts LedgerOptions, now func() time.Time) *ledgerState {
	opts = opts.withDefaults()
	return &ledgerState{
		opts:  opts,
		now:   now,
		h:     newChainHasher(),
		tree:  make([]digest, 0, opts.Batch),
		chain: genesis(),
	}
}

// record marshals and writes one ledger record line, updating the
// continuity link.
func (l *ledgerState) record(w lineWriter, kind string, count int, root string) error {
	rec := Record{
		Ledger: LedgerSchema,
		LKind:  kind,
		Mode:   l.opts.Mode,
		Seq:    l.seq,
		Count:  count,
		Chain:  hexDigest(l.chain),
		Root:   root,
		Prev:   l.lastRec,
		At:     l.now(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := w.writeLine(line); err != nil {
		return err
	}
	l.lastRec = rec.Chain
	l.records++
	return nil
}

// lineWriter is the flusher-side sink for raw JSONL lines.
type lineWriter interface {
	writeLine(line []byte) error
}

// anchor opens the segment: a fresh file gets a genesis anchor, a
// resumed one an anchor that commits the prior segment's uncovered
// tail and links back to its last record.
func (l *ledgerState) anchor(w lineWriter) error {
	root := ""
	if len(l.pending) > 0 {
		root = hexDigest(merkleRootInto(l.tree, l.pending))
	}
	count := len(l.pending)
	l.pending = l.pending[:0]
	return l.record(w, RecordAnchor, count, root)
}

// note folds one written event line into the chain and commits a batch
// record when the batch is full. It reports whether a record was
// written (so the flusher can disarm its wait timer).
func (l *ledgerState) note(w lineWriter, line []byte) (committed bool, err error) {
	l.seq++
	l.chain = l.h.step(l.chain, line)
	l.pending = append(l.pending, l.chain)
	if len(l.pending) >= l.opts.Batch {
		return true, l.commit(w)
	}
	return false, nil
}

// commit seals the pending batch as one record; a no-op when the batch
// is empty.
func (l *ledgerState) commit(w lineWriter) error {
	if len(l.pending) == 0 {
		return nil
	}
	root := hexDigest(merkleRootInto(l.tree, l.pending))
	n := len(l.pending)
	l.pending = l.pending[:0]
	return l.record(w, RecordBatch, n, root)
}

// seal commits any pending batch and closes the stream with a seal
// record — the mark Verify requires to treat a journal as complete.
func (l *ledgerState) seal(w lineWriter) error {
	if err := l.commit(w); err != nil {
		return err
	}
	return l.record(w, RecordSeal, 0, "")
}

// LedgerStats is the journal's ledger accounting, exposed by
// Journal.Ledger. The anchor fields (Resumed, PriorEvents, Recovered,
// PriorHead) are fixed at Open; Seq, Head, and Records settle when
// Close returns.
type LedgerStats struct {
	Mode    LedgerMode
	Seq     uint64 // event lines covered by the chain
	Head    string // final chain head, hex (valid after Close)
	Records int    // ledger records written by this segment

	Resumed     bool
	PriorEvents uint64 // chain seq inherited from the prior segment(s)
	Recovered   int    // prior uncovered tail lines the anchor committed
	PriorHead   string // chain head at the last prior record
}
