package journal

import "context"

// Corr is the set of correlation identifiers an event inherits from its
// context: which pipeline run, which bot, which honeypot experiment.
type Corr struct {
	RunID        string
	BotID        int
	Bot          string
	ExperimentID string
}

type journalKey struct{}
type corrKey struct{}

// NewContext returns a context carrying the journal, so lower pipeline
// layers can emit events without new parameters.
func NewContext(ctx context.Context, j *Journal) context.Context {
	return context.WithValue(ctx, journalKey{}, j)
}

// FromContext returns the journal carried by ctx, or nil — and nil is
// safe to Emit on.
func FromContext(ctx context.Context) *Journal {
	j, _ := ctx.Value(journalKey{}).(*Journal)
	return j
}

// CorrFromContext returns the correlation identifiers accumulated on
// ctx (zero-valued when none were attached).
func CorrFromContext(ctx context.Context) Corr {
	c, _ := ctx.Value(corrKey{}).(Corr)
	return c
}

func withCorr(ctx context.Context, f func(*Corr)) context.Context {
	c := CorrFromContext(ctx)
	f(&c)
	return context.WithValue(ctx, corrKey{}, c)
}

// WithRunID returns a context whose events carry the pipeline run ID.
func WithRunID(ctx context.Context, runID string) context.Context {
	return withCorr(ctx, func(c *Corr) { c.RunID = runID })
}

// WithBot returns a context whose events carry the bot under work.
func WithBot(ctx context.Context, botID int, name string) context.Context {
	return withCorr(ctx, func(c *Corr) { c.BotID = botID; c.Bot = name })
}

// WithExperiment returns a context whose events carry the honeypot
// experiment identifier (the isolated guild tag).
func WithExperiment(ctx context.Context, expID string) context.Context {
	return withCorr(ctx, func(c *Corr) { c.ExperimentID = expID })
}

// Emit appends an event to the context's journal — a no-op when ctx
// carries none — filling the correlation fields from the context. This
// is the one-liner instrumented components call:
//
//	journal.Emit(ctx, "scraper", journal.KindPageFetched,
//	    map[string]any{"ref": ref, "status": code})
func Emit(ctx context.Context, component string, kind Kind, fields map[string]any) {
	j := FromContext(ctx)
	if j == nil {
		return
	}
	c := CorrFromContext(ctx)
	j.Emit(Event{
		Kind:         kind,
		Component:    component,
		RunID:        c.RunID,
		BotID:        c.BotID,
		Bot:          c.Bot,
		ExperimentID: c.ExperimentID,
		Fields:       fields,
	})
}
