package journal

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger builds the per-component leveled logger the daemons use: a
// text slog.Logger whose every record carries component= and — when the
// log call's context holds journal correlation (WithRunID, WithBot,
// WithExperiment) — the same run_id/bot/experiment_id fields the
// journal stamps on events, so log lines and journal lines join on the
// same keys.
func NewLogger(component string, w io.Writer, level slog.Leveler) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(&corrHandler{inner: h}).With(slog.String("component", component))
}

// corrHandler decorates records with the context's correlation fields
// before delegating to the wrapped handler.
type corrHandler struct {
	inner slog.Handler
}

func (h *corrHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *corrHandler) Handle(ctx context.Context, rec slog.Record) error {
	c := CorrFromContext(ctx)
	if c.RunID != "" {
		rec.AddAttrs(slog.String("run_id", c.RunID))
	}
	if c.BotID != 0 {
		rec.AddAttrs(slog.Int("bot_id", c.BotID))
	}
	if c.Bot != "" {
		rec.AddAttrs(slog.String("bot", c.Bot))
	}
	if c.ExperimentID != "" {
		rec.AddAttrs(slog.String("experiment_id", c.ExperimentID))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *corrHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &corrHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *corrHandler) WithGroup(name string) slog.Handler {
	return &corrHandler{inner: h.inner.WithGroup(name)}
}
