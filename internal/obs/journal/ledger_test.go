package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// ledgered writes n events through a journal in the given mode and
// returns the raw file bytes after a clean Close.
func ledgered(t *testing.T, mode LedgerMode, batch, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := New(&buf, Options{
		Obs:    obs.NewRegistry(),
		Now:    testClock(),
		Ledger: LedgerOptions{Mode: mode, Batch: batch},
	})
	for i := 0; i < n; i++ {
		j.Emit(Event{Kind: KindPageFetched, BotID: i + 1, Fields: map[string]any{"ref": fmt.Sprintf("/bot/%d", i+1)}})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLedgerRoundTripVerifies(t *testing.T) {
	for _, tc := range []struct {
		mode    LedgerMode
		batch   int
		events  int
		batches int
	}{
		{LedgerChain, 0, 10, 10}, // chain: one record per event
		{LedgerMerkle, 4, 10, 3}, // merkle: 4+4+2
		{LedgerMerkle, 64, 0, 0}, // no events: anchor + seal only
		{LedgerMerkle, 64, 1, 1}, // single-leaf batch
		{LedgerMerkle, 3, 9, 3},  // exact multiple
		{LedgerChain, 99, 3, 3},  // chain ignores batch size
	} {
		t.Run(fmt.Sprintf("%s-b%d-n%d", tc.mode, tc.batch, tc.events), func(t *testing.T) {
			raw := ledgered(t, tc.mode, tc.batch, tc.events)
			res := Verify(bytes.NewReader(raw))
			if !res.OK {
				t.Fatalf("verify failed: %s\n%s", res.Err, raw)
			}
			if res.Events != tc.events || res.Batches != tc.batches || res.Segments != 1 || res.Seals != 1 {
				t.Errorf("result = %+v, want %d events / %d batches / 1 segment / 1 seal", res, tc.events, tc.batches)
			}
			if !res.Sealed || res.Uncovered != 0 || res.Head == "" {
				t.Errorf("seal state = %+v", res)
			}
			// The events are still fully decodable; records don't count
			// as skipped.
			events, skipped, err := Decode(bytes.NewReader(raw))
			if err != nil || skipped != 0 || len(events) != tc.events {
				t.Errorf("decode: err=%v skipped=%d events=%d, want %d", err, skipped, len(events), tc.events)
			}
		})
	}
}

func TestVerifyRejectsUnledgeredJournal(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, Options{Obs: obs.NewRegistry(), Now: testClock()})
	j.Emit(Event{Kind: KindPageFetched})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	res := Verify(&buf)
	if res.OK || !strings.Contains(res.Err, "no ledger records") {
		t.Errorf("verify of off-mode journal = %+v", res)
	}
	if res := Verify(strings.NewReader("")); res.OK || !strings.Contains(res.Err, "empty") {
		t.Errorf("verify of empty input = %+v", res)
	}
}

// lineOf returns the 1-based index of the k-th event (non-record) line.
func eventLines(raw []byte) []int {
	var out []int
	for i, line := range bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n")) {
		if _, isRec := isRecordLine(line); !isRec {
			out = append(out, i+1)
		}
	}
	return out
}

func TestVerifyDetectsFlippedByte(t *testing.T) {
	for _, mode := range []LedgerMode{LedgerChain, LedgerMerkle} {
		t.Run(string(mode), func(t *testing.T) {
			raw := ledgered(t, mode, 4, 12)
			lines := bytes.SplitAfter(raw, []byte("\n"))
			evs := eventLines(raw)
			target := evs[5] // 6th event line
			tampered := bytes.Join(lines, nil)
			// Flip one byte inside the target line: locate its offset.
			off := 0
			for i := 0; i < target-1; i++ {
				off += len(lines[i])
			}
			tampered = append([]byte(nil), raw...)
			tampered[off+10] ^= 0x01
			res := Verify(bytes.NewReader(tampered))
			if res.OK {
				t.Fatal("flipped byte not detected")
			}
			if res.FirstBad == 0 || res.FirstBad > target || res.BadEnd < target {
				t.Errorf("blast radius [%d,%d] does not bound tampered line %d: %s", res.FirstBad, res.BadEnd, target, res.Err)
			}
			if mode == LedgerChain && res.FirstBad != target {
				t.Errorf("chain mode should pinpoint line %d exactly, got %d (%s)", target, res.FirstBad, res.Err)
			}
		})
	}
}

func TestVerifyDetectsDeletedLine(t *testing.T) {
	raw := ledgered(t, LedgerMerkle, 4, 12)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	evs := eventLines(raw)
	target := evs[4]
	tampered := append(append([]byte(nil), bytes.Join(lines[:target-1], nil)...), bytes.Join(lines[target:], nil)...)
	res := Verify(bytes.NewReader(tampered))
	if res.OK {
		t.Fatal("deleted line not detected")
	}
	if !strings.Contains(res.Err, "deleted") && !strings.Contains(res.Err, "mismatch") {
		t.Errorf("unexpected error: %s", res.Err)
	}
	if res.FirstBad == 0 {
		t.Errorf("no blast radius reported: %+v", res)
	}
}

func TestVerifyDetectsDeletedRecord(t *testing.T) {
	raw := ledgered(t, LedgerMerkle, 4, 12)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	// Delete the second ledger record (first batch record after the
	// anchor): record continuity via prev must break.
	recIdx := -1
	seen := 0
	for i, line := range lines {
		if _, isRec := isRecordLine(bytes.TrimSuffix(line, []byte("\n"))); isRec {
			seen++
			if seen == 2 {
				recIdx = i
				break
			}
		}
	}
	if recIdx < 0 {
		t.Fatal("no second record found")
	}
	tampered := append(append([]byte(nil), bytes.Join(lines[:recIdx], nil)...), bytes.Join(lines[recIdx+1:], nil)...)
	res := Verify(bytes.NewReader(tampered))
	if res.OK {
		t.Fatal("deleted record not detected")
	}
}

func TestVerifyDetectsReorderedLines(t *testing.T) {
	raw := ledgered(t, LedgerMerkle, 8, 12)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	evs := eventLines(raw)
	// Swap two event lines inside the same batch: the chain states (and
	// so the Merkle root and record chain) change.
	a, b := evs[2], evs[3]
	lines[a-1], lines[b-1] = lines[b-1], lines[a-1]
	res := Verify(bytes.NewReader(bytes.Join(lines, nil)))
	if res.OK {
		t.Fatal("reordered lines not detected")
	}
	if res.FirstBad == 0 || res.FirstBad > a {
		t.Errorf("blast radius [%d,%d] misses first reordered line %d: %s", res.FirstBad, res.BadEnd, a, res.Err)
	}
}

func TestVerifyDetectsTruncatedTail(t *testing.T) {
	raw := ledgered(t, LedgerMerkle, 4, 12)

	// Truncate after the last batch record (drop the seal): unsealed.
	lines := bytes.SplitAfter(raw, []byte("\n"))
	noSeal := bytes.Join(lines[:len(lines)-2], nil) // final entry of SplitAfter is empty
	res := Verify(bytes.NewReader(noSeal))
	if res.OK || !strings.Contains(res.Err, "unsealed") {
		t.Errorf("missing seal not detected: %+v", res)
	}

	// Truncate mid-line: torn final write.
	res = Verify(bytes.NewReader(raw[:len(raw)-7]))
	if res.OK || !strings.Contains(res.Err, "torn") {
		t.Errorf("torn tail not detected: %+v", res)
	}

	// Events appended after the seal without re-anchoring.
	appended := append(append([]byte(nil), raw...), []byte(`{"schema":1,"kind":"page_fetched","bot_id":999}`+"\n")...)
	res = Verify(bytes.NewReader(appended))
	if res.OK || !strings.Contains(res.Err, "after seal") {
		t.Errorf("post-seal append not detected: %+v", res)
	}
}

func TestOpenResumeAppendsInsteadOfTruncating(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	reg := obs.NewRegistry()

	j, err := Open(path, Options{Obs: reg, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Kind: KindBotDiscovered, BotID: 1, Bot: "A"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume without the ledger: plain append, prior events survive.
	j, err = Open(path, Options{Obs: reg, Now: testClock(), Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Kind: KindBotDiscovered, BotID: 2, Bot: "B"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := Decode(f)
	if err != nil || skipped != 0 {
		t.Fatalf("decode: err=%v skipped=%d", err, skipped)
	}
	if len(events) != 2 || events[0].BotID != 1 || events[1].BotID != 2 {
		t.Fatalf("resume lost events: %+v", events)
	}

	// Without Resume, Open still starts fresh.
	j, err = Open(path, Options{Obs: reg, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Errorf("fresh Open did not truncate: size=%d err=%v", fi.Size(), err)
	}
}

func TestLedgerResumeReanchorsAcrossSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	opts := func() Options {
		return Options{
			Obs:    obs.NewRegistry(),
			Now:    testClock(),
			Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4},
		}
	}

	j, err := Open(path, opts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		j.Emit(Event{Kind: KindPageFetched, BotID: i + 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ro := opts()
	ro.Resume = true
	j, err = Open(path, ro)
	if err != nil {
		t.Fatal(err)
	}
	st := j.Ledger()
	if !st.Resumed || st.PriorEvents != 6 || st.Recovered != 0 {
		t.Errorf("resume anchor stats = %+v", st)
	}
	for i := 6; i < 10; i++ {
		j.Emit(Event{Kind: KindPageFetched, BotID: i + 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st = j.Ledger()
	if st.Seq != 10 || st.Head == "" {
		t.Errorf("final ledger stats = %+v", st)
	}

	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("resumed journal does not verify: %s", res.Err)
	}
	if res.Events != 10 || res.Segments != 2 || res.Seals != 2 {
		t.Errorf("result = %+v, want 10 events / 2 segments / 2 seals", res)
	}
}

// crashImage runs a ledgered journal, lets the flusher land wantLines
// lines, and returns the file bytes as they stood — the moral
// equivalent of a SIGKILL before Close ever ran (the leaked flusher
// keeps a file handle, but the copied image is what a crashed process
// leaves on disk).
func crashImage(t *testing.T, dir string, events int, wantLines int) []byte {
	t.Helper()
	path := filepath.Join(dir, "crash.jsonl")
	j, err := Open(path, Options{
		Obs:    obs.NewRegistry(),
		Now:    testClock(),
		Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4, Wait: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < events; i++ {
		j.Emit(Event{Kind: KindExperimentSettled, BotID: i + 1, Fields: map[string]any{"verdict": "leaky"}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Count(raw, []byte("\n")) >= wantLines {
			// No Close: simulate the crash by abandoning the journal.
			return raw
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher landed only %d lines, want %d:\n%s", bytes.Count(raw, []byte("\n")), wantLines, raw)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestKillResumePreservesPreKillEvents(t *testing.T) {
	dir := t.TempDir()
	// 10 events, batch 4: anchor + 10 event lines + at least 2 batch
	// records must land; the wait timer commits the final partial batch.
	img := crashImage(t, dir, 10, 13)

	path := filepath.Join(dir, "resumed.jsonl")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	// The crash image must NOT verify: it is unsealed (or torn).
	if res := Verify(bytes.NewReader(img)); res.OK {
		t.Fatalf("crash image verified clean: %+v", res)
	}

	j, err := Open(path, Options{
		Obs:    obs.NewRegistry(),
		Now:    testClock(),
		Resume: true,
		Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := j.Ledger()
	if !st.Resumed {
		t.Errorf("resume stats = %+v", st)
	}
	for i := 10; i < 15; i++ {
		j.Emit(Event{Kind: KindExperimentSettled, BotID: i + 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("killed-and-resumed journal does not verify: %s", res.Err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := Decode(f)
	if err != nil || skipped != 0 {
		t.Fatalf("decode: err=%v skipped=%d", err, skipped)
	}
	if len(events) != 15 {
		t.Fatalf("events = %d, want 15 (pre-kill events lost)", len(events))
	}
	for i, e := range events {
		if e.BotID != i+1 {
			t.Fatalf("event %d has bot_id %d — order or content lost", i, e.BotID)
		}
	}
}

func TestResumeRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	img := crashImage(t, dir, 10, 13)
	// Tear the final line mid-write.
	img = img[:len(img)-5]

	path := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, Options{
		Obs:    obs.NewRegistry(),
		Now:    testClock(),
		Resume: true,
		Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Kind: KindExperimentSettled, BotID: 99})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("torn-tail resume does not verify: %s", res.Err)
	}
	// The torn line survives as bytes (chained, unparseable, skipped by
	// Decode) — evidence is preserved, not silently rewritten.
	f, _ := os.Open(path)
	defer f.Close()
	events, skipped, err := Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want exactly the torn line", skipped)
	}
	if events[len(events)-1].BotID != 99 {
		t.Errorf("post-resume event missing: %+v", events)
	}
}

func TestResumeRefusesTamperedJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	j, err := Open(path, Options{
		Obs:    obs.NewRegistry(),
		Now:    testClock(),
		Ledger: LedgerOptions{Mode: LedgerChain},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		j.Emit(Event{Kind: KindCanaryTriggered, BotID: i + 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs := eventLines(raw)
	off := 0
	for i, line := range bytes.SplitAfter(raw, []byte("\n")) {
		if i+1 == evs[2] {
			break
		}
		off += len(line)
	}
	raw[off+8] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(path, Options{
		Obs:    obs.NewRegistry(),
		Now:    testClock(),
		Resume: true,
		Ledger: LedgerOptions{Mode: LedgerChain},
	})
	if err == nil || !strings.Contains(err.Error(), "tampered") {
		t.Fatalf("resume onto tampered journal: err = %v, want refusal", err)
	}
}

func TestLedgerResumeUpgradesOffModeJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, Options{Obs: obs.NewRegistry(), Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j.Emit(Event{Kind: KindPageFetched, BotID: i + 1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j, err = Open(path, Options{
		Obs:    obs.NewRegistry(),
		Now:    testClock(),
		Resume: true,
		Ledger: LedgerOptions{Mode: LedgerMerkle, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := j.Ledger()
	if !st.Resumed || st.Recovered != 3 {
		t.Errorf("off-mode upgrade stats = %+v (want 3 recovered lines)", st)
	}
	j.Emit(Event{Kind: KindPageFetched, BotID: 4})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Events != 4 {
		t.Errorf("upgraded journal verify = %+v", res)
	}
}

func TestParseLedgerMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want LedgerMode
		ok   bool
	}{
		{"", LedgerOff, true},
		{"off", LedgerOff, true},
		{"chain", LedgerChain, true},
		{"merkle", LedgerMerkle, true},
		{"sha", LedgerOff, false},
	} {
		got, err := ParseLedgerMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseLedgerMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestMerkleRootProperties(t *testing.T) {
	leaves := make([]digest, 7)
	for i := range leaves {
		leaves[i] = chainStep(genesis(), []byte{byte(i)})
	}
	root := merkleRoot(leaves)
	if root == (digest{}) {
		t.Fatal("zero root")
	}
	if merkleRoot(leaves) != root {
		t.Error("root not deterministic")
	}
	// Any reorder or substitution changes the root.
	swapped := append([]digest(nil), leaves...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if merkleRoot(swapped) == root {
		t.Error("reorder did not change root")
	}
	if merkleRoot(leaves[:6]) == root {
		t.Error("truncation did not change root")
	}
	// Single leaf is its own root (chain mode's degenerate tree).
	if merkleRoot(leaves[:1]) != leaves[0] {
		t.Error("single-leaf root != leaf")
	}
}
