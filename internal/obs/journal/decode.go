package journal

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// maxLine bounds one journal line during decoding; longer lines are
// treated as corrupt and skipped, not errors.
const maxLine = 1 << 20

// Decode reads a JSONL journal leniently: malformed or truncated lines
// and events stamped with a future schema version are counted in
// skipped and dropped, never returned as errors — a partially written
// journal from a crashed run must still be inspectable. Events with
// unknown kinds are kept verbatim (a newer writer's vocabulary is still
// evidence). Ledger records interleaved by a ledgered writer are part
// of the format, not corruption: they are passed over silently, not
// counted as skipped. The error reports only reader-level failures.
func Decode(r io.Reader) (events []Event, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		if _, isRec := isRecordLine(line); isRec {
			continue
		}
		var e Event
		if json.Unmarshal(line, &e) != nil {
			skipped++
			continue
		}
		if e.Schema > SchemaVersion || e.Kind == "" {
			skipped++
			continue
		}
		events = append(events, e)
	}
	if serr := sc.Err(); serr != nil {
		// A too-long line is corruption, not a decode failure.
		if serr == bufio.ErrTooLong {
			return events, skipped + 1, nil
		}
		return events, skipped, serr
	}
	return events, skipped, nil
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// Query filters a decoded journal; zero-valued fields match everything.
type Query struct {
	Kind      Kind
	Component string
	RunID     string
	BotID     int    // match a specific bot ID (0 = any)
	Bot       string // match a bot by name
}

// Filter returns the events matching q, in journal order.
func Filter(events []Event, q Query) []Event {
	var out []Event
	for _, e := range events {
		if q.Kind != "" && e.Kind != q.Kind {
			continue
		}
		if q.Component != "" && e.Component != q.Component {
			continue
		}
		if q.RunID != "" && e.RunID != q.RunID {
			continue
		}
		if q.BotID != 0 && e.BotID != q.BotID {
			continue
		}
		if q.Bot != "" && e.Bot != q.Bot {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Summary aggregates a decoded journal.
type Summary struct {
	Total       int
	ByKind      map[Kind]int
	ByComponent map[string]int
	Runs        []string // distinct run IDs, first-seen order
	Bots        int      // distinct correlated bots
	Experiments int      // distinct experiment IDs
}

// Summarize computes the per-kind / per-component / per-run breakdown
// of a decoded journal.
func Summarize(events []Event) Summary {
	s := Summary{
		ByKind:      make(map[Kind]int),
		ByComponent: make(map[string]int),
	}
	runs := make(map[string]bool)
	bots := make(map[int]bool)
	exps := make(map[string]bool)
	for _, e := range events {
		s.Total++
		s.ByKind[e.Kind]++
		if e.Component != "" {
			s.ByComponent[e.Component]++
		}
		if e.RunID != "" && !runs[e.RunID] {
			runs[e.RunID] = true
			s.Runs = append(s.Runs, e.RunID)
		}
		if e.BotID != 0 {
			bots[e.BotID] = true
		}
		if e.ExperimentID != "" {
			exps[e.ExperimentID] = true
		}
	}
	s.Bots = len(bots)
	s.Experiments = len(exps)
	return s
}

// Kinds returns the summary's kinds sorted by descending count (ties by
// name), for deterministic rendering.
func (s Summary) Kinds() []Kind {
	kinds := make([]Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if s.ByKind[kinds[i]] != s.ByKind[kinds[j]] {
			return s.ByKind[kinds[i]] > s.ByKind[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	return kinds
}
