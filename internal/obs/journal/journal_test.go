package journal

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func testClock() func() time.Time {
	var mu sync.Mutex
	t := time.Date(2022, 10, 25, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestEmitWritesSchemaVersionedJSONL(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	j := New(&buf, Options{Obs: reg, Now: testClock()})
	j.Emit(Event{Kind: KindPageFetched, Component: "scraper", BotID: 7, Fields: map[string]any{"ref": "/bot/7"}})
	j.Emit(Event{Kind: KindCanaryTriggered, Component: "canary", ExperimentID: "hp-x"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2: %q", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Schema != SchemaVersion || e.Kind != KindPageFetched || e.BotID != 7 || e.At.IsZero() {
		t.Errorf("event = %+v", e)
	}
	if got := reg.Counter("journal_events_total").Value(); got != 2 {
		t.Errorf("emitted counter = %d, want 2", got)
	}
	if got := reg.Counter("journal_events_dropped_total").Value(); got != 0 {
		t.Errorf("dropped counter = %d, want 0", got)
	}
}

// blockingWriter lets a test saturate the journal buffer by holding the
// flusher's first write until released.
type blockingWriter struct {
	release chan struct{}
	once    sync.Once
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { <-w.release })
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestEmitDropsInsteadOfBlockingWhenSaturated(t *testing.T) {
	reg := obs.NewRegistry()
	w := &blockingWriter{release: make(chan struct{})}
	j := New(w, Options{Buffer: 4, Obs: reg, Now: testClock()})

	// The flusher is stuck on its first write; fill the buffer and then
	// some. Every Emit must return promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			j.Emit(Event{Kind: KindPageFetched})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a saturated buffer")
	}
	close(w.release)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	emitted := reg.Counter("journal_events_total").Value()
	dropped := reg.Counter("journal_events_dropped_total").Value()
	if emitted+dropped != 100 {
		t.Errorf("emitted %d + dropped %d != 100", emitted, dropped)
	}
	if dropped == 0 {
		t.Error("expected drops with a 4-slot buffer and a stuck flusher")
	}
}

func TestEmitAfterCloseCountsDrop(t *testing.T) {
	reg := obs.NewRegistry()
	j := New(io.Discard, Options{Obs: reg})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Kind: KindPageFetched}) // must not panic or block
	if got := reg.Counter("journal_events_dropped_total").Value(); got != 1 {
		t.Errorf("dropped counter = %d, want 1", got)
	}
}

// TestEmitCloseRaceLosesNoCountedEvent guards the accounting invariant
// that closes the Emit/Close window: an event counted in
// journal_events_total must be on disk after Close returns. Before the
// closed-flag fence, an emitter that had passed the quit check could
// enqueue after the flusher's final drain — counted, never written.
// Run under -race; the exact decoded == emitted assertion catches the
// lost-event symptom even when the schedule doesn't trip the detector.
func TestEmitCloseRaceLosesNoCountedEvent(t *testing.T) {
	for round := 0; round < 50; round++ {
		var buf bytes.Buffer
		reg := obs.NewRegistry()
		j := New(&buf, Options{Buffer: 8, Obs: reg})

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 25; i++ {
					j.Emit(Event{Kind: KindPageFetched, BotID: i})
				}
			}()
		}
		close(start)
		// Close while the emitters are mid-flight.
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		events, skipped, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil || skipped != 0 {
			t.Fatalf("decode: err=%v skipped=%d", err, skipped)
		}
		emitted := reg.Counter("journal_events_total").Value()
		dropped := reg.Counter("journal_events_dropped_total").Value()
		if int64(len(events)) != emitted {
			t.Fatalf("round %d: %d events written but %d counted as emitted (counted event lost in Emit/Close race)", round, len(events), emitted)
		}
		if emitted+dropped != 100 {
			t.Fatalf("round %d: emitted %d + dropped %d != 100", round, emitted, dropped)
		}
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.Emit(Event{Kind: KindPageFetched})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Emit via a context carrying no journal is also a no-op.
	Emit(context.Background(), "scraper", KindPageFetched, nil)
}

func TestContextCorrelationFlowsIntoEvents(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, Options{Obs: obs.NewRegistry(), Now: testClock()})
	ctx := NewContext(context.Background(), j)
	ctx = WithRunID(ctx, "run-1")
	botCtx := WithBot(ctx, 42, "HelperBot")
	expCtx := WithExperiment(botCtx, "hp-HelperBot")

	Emit(expCtx, "honeypot", KindExperimentStarted, map[string]any{"personas": 5})
	Emit(ctx, "core", KindStageStarted, map[string]any{"stage": "collect"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	events, skipped, err := Decode(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("decode: err=%v skipped=%d", err, skipped)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	e := events[0]
	if e.RunID != "run-1" || e.BotID != 42 || e.Bot != "HelperBot" || e.ExperimentID != "hp-HelperBot" {
		t.Errorf("correlation = %+v", e)
	}
	// The bot correlation must not leak onto the sibling context.
	if events[1].BotID != 0 || events[1].RunID != "run-1" {
		t.Errorf("stage event correlation = %+v", events[1])
	}
}

func TestConcurrentEmitters(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	j := New(&buf, Options{Buffer: 64, Obs: reg})
	var wg sync.WaitGroup
	const goroutines, per = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Emit(Event{Kind: KindPageFetched, BotID: g*per + i})
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := Decode(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("decode: err=%v skipped=%d", err, skipped)
	}
	emitted := reg.Counter("journal_events_total").Value()
	if int64(len(events)) < emitted-64 || int64(len(events)) > emitted {
		t.Errorf("decoded %d events, emitted counter %d", len(events), emitted)
	}
	total := emitted + reg.Counter("journal_events_dropped_total").Value()
	if total != goroutines*per {
		t.Errorf("emitted+dropped = %d, want %d", total, goroutines*per)
	}
}

func TestOpenWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Kind: KindBotDiscovered, BotID: 1, Bot: "A"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, _, err := Decode(f)
	if err != nil || len(events) != 1 {
		t.Fatalf("decode file: %v, %d events", err, len(events))
	}
}

func TestDecodeLenience(t *testing.T) {
	input := strings.Join([]string{
		`{"schema":1,"at":"2022-10-25T12:00:00Z","kind":"page_fetched","bot_id":1}`,
		`{"schema":1,"at":"2022-10-25T12:00:01Z","kind":"some_future_kind","bot_id":2}`, // unknown kind: kept
		`{"schema":99,"kind":"page_fetched"}`,                                           // future schema: skipped
		`{"schema":1,"kind":"trunca`,                                                    // truncated: skipped
		`not json at all`,                                                               // garbage: skipped
		``,                                                                              // blank: ignored
		`{"schema":1,"kind":"canary_triggered","experiment_id":"hp-x"}`,
	}, "\n")
	events, skipped, err := Decode(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Errorf("events = %d, want 3 (%+v)", len(events), events)
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3", skipped)
	}
	if events[1].Kind != "some_future_kind" {
		t.Errorf("unknown kind not preserved: %+v", events[1])
	}
}

func TestFilterAndSummarize(t *testing.T) {
	events := []Event{
		{Kind: KindPageFetched, Component: "scraper", RunID: "r1", BotID: 1, Bot: "A"},
		{Kind: KindPageFetched, Component: "scraper", RunID: "r1", BotID: 2, Bot: "B"},
		{Kind: KindCanaryTriggered, Component: "canary", RunID: "r1", ExperimentID: "hp-A"},
		{Kind: KindPolicyAudited, Component: "core", RunID: "r2", BotID: 1, Bot: "A"},
	}
	if got := Filter(events, Query{BotID: 1}); len(got) != 2 {
		t.Errorf("filter bot 1 = %d events, want 2", len(got))
	}
	if got := Filter(events, Query{Kind: KindPageFetched, RunID: "r1"}); len(got) != 2 {
		t.Errorf("filter kind+run = %d events, want 2", len(got))
	}
	if got := Filter(events, Query{Bot: "B"}); len(got) != 1 || got[0].BotID != 2 {
		t.Errorf("filter by name = %+v", got)
	}
	s := Summarize(events)
	if s.Total != 4 || s.Bots != 2 || s.Experiments != 1 || len(s.Runs) != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.ByKind[KindPageFetched] != 2 || s.ByComponent["canary"] != 1 {
		t.Errorf("summary breakdown = %+v", s)
	}
	kinds := s.Kinds()
	if len(kinds) != 3 || kinds[0] != KindPageFetched {
		t.Errorf("sorted kinds = %v", kinds)
	}
}

func TestLoggerCarriesCorrelationFields(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger("scraper", &buf, slog.LevelInfo)
	ctx := WithBot(WithRunID(context.Background(), "run-9"), 13, "EvilBot")
	logger.InfoContext(ctx, "fetched page", "status", 200)
	out := buf.String()
	for _, want := range []string{"component=scraper", "run_id=run-9", "bot_id=13", "bot=EvilBot", "status=200"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
	// Debug is below the level: suppressed.
	buf.Reset()
	logger.DebugContext(ctx, "noise")
	if buf.Len() != 0 {
		t.Errorf("debug line not suppressed: %s", buf.String())
	}
}
