package journal

import (
	"encoding/json"
	"fmt"
	"os"
)

// AnchorSchema versions the external anchor side file.
const AnchorSchema = 1

// Anchor is the chain head exported to a `<journal>.anchor` side file
// when a sealed ledgered journal closes. It is the minimal external
// commitment: anyone holding the side file can detect a wholesale
// rewrite of the journal — including a rewrite that internally
// re-chains consistently, which in-file verification alone cannot see.
type Anchor struct {
	Schema  int        `json:"anchor_schema"`
	Mode    LedgerMode `json:"mode"`
	Seq     uint64     `json:"seq"`
	Head    string     `json:"head"`
	Records int        `json:"records"`
}

// AnchorPath maps a journal path to its anchor side file.
func AnchorPath(journalPath string) string {
	return journalPath + ".anchor"
}

// ReadAnchor reads and validates an anchor side file.
func ReadAnchor(anchorPath string) (Anchor, error) {
	data, err := os.ReadFile(anchorPath)
	if err != nil {
		return Anchor{}, err
	}
	var a Anchor
	if err := json.Unmarshal(data, &a); err != nil {
		return Anchor{}, fmt.Errorf("journal: anchor %s: %w", anchorPath, err)
	}
	if a.Schema > AnchorSchema {
		return Anchor{}, fmt.Errorf("journal: anchor %s: schema %d is newer than supported %d", anchorPath, a.Schema, AnchorSchema)
	}
	if a.Head == "" {
		return Anchor{}, fmt.Errorf("journal: anchor %s: empty head", anchorPath)
	}
	return a, nil
}

// writeAnchor writes the anchor atomically (temp file + rename), so a
// crash mid-write can never leave a torn anchor that falsely incriminates
// an honest journal.
func writeAnchor(journalPath string, st LedgerStats) error {
	a := Anchor{
		Schema:  AnchorSchema,
		Mode:    st.Mode,
		Seq:     st.Seq,
		Head:    st.Head,
		Records: st.Records,
	}
	data, err := json.Marshal(a)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := AnchorPath(journalPath)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
