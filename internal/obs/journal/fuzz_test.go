package journal

import (
	"strings"
	"testing"
)

// FuzzDecode guards the lenience contract: whatever bytes a crashed or
// future-version writer left behind, Decode must neither panic nor
// error on line content — truncated lines, unknown kinds, and future
// schema versions are skipped or kept, never fatal.
func FuzzDecode(f *testing.F) {
	f.Add(`{"schema":1,"at":"2022-10-25T12:00:00Z","kind":"page_fetched","bot_id":1,"fields":{"ref":"/bot/1"}}`)
	f.Add(`{"schema":1,"kind":"trunca`)
	f.Add(`{"schema":99,"kind":"from_the_future","fields":{"x":[1,2,3]}}`)
	f.Add(`{"schema":1,"kind":"unknown_kind_is_kept"}`)
	f.Add("not json\n\x00\xff binary junk\n")
	f.Add(`{"schema":-5,"kind":""}`)
	f.Add(strings.Repeat(`{"schema":1,"kind":"page_fetched"}`+"\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		events, skipped, err := Decode(strings.NewReader(input))
		if err != nil {
			// Only reader-level failures may error, and a string reader
			// has none.
			t.Fatalf("Decode returned error on in-memory input: %v", err)
		}
		for _, e := range events {
			if e.Schema > SchemaVersion {
				t.Errorf("future-schema event leaked through: %+v", e)
			}
			if e.Kind == "" {
				t.Errorf("kindless event leaked through: %+v", e)
			}
		}
		_ = skipped
		// Summarize and Filter must hold on arbitrary decoded output too.
		_ = Summarize(events)
		_ = Filter(events, Query{Kind: KindPageFetched})
	})
}
