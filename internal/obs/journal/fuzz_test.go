package journal

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// FuzzDecode guards the lenience contract: whatever bytes a crashed or
// future-version writer left behind, Decode must neither panic nor
// error on line content — truncated lines, unknown kinds, and future
// schema versions are skipped or kept, never fatal.
func FuzzDecode(f *testing.F) {
	f.Add(`{"schema":1,"at":"2022-10-25T12:00:00Z","kind":"page_fetched","bot_id":1,"fields":{"ref":"/bot/1"}}`)
	f.Add(`{"schema":1,"kind":"trunca`)
	f.Add(`{"schema":99,"kind":"from_the_future","fields":{"x":[1,2,3]}}`)
	f.Add(`{"schema":1,"kind":"unknown_kind_is_kept"}`)
	f.Add("not json\n\x00\xff binary junk\n")
	f.Add(`{"schema":-5,"kind":""}`)
	f.Add(strings.Repeat(`{"schema":1,"kind":"page_fetched"}`+"\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		events, skipped, err := Decode(strings.NewReader(input))
		if err != nil {
			// Only reader-level failures may error, and a string reader
			// has none.
			t.Fatalf("Decode returned error on in-memory input: %v", err)
		}
		for _, e := range events {
			if e.Schema > SchemaVersion {
				t.Errorf("future-schema event leaked through: %+v", e)
			}
			if e.Kind == "" {
				t.Errorf("kindless event leaked through: %+v", e)
			}
		}
		_ = skipped
		// Summarize and Filter must hold on arbitrary decoded output too.
		_ = Summarize(events)
		_ = Filter(events, Query{Kind: KindPageFetched})
	})
}

// fuzzLedgerSeed produces a well-formed ledgered journal for the fuzz
// corpus; mutation then explores the space around valid inputs, where
// verifier bugs (accepting a forgery, panicking on a near-valid record)
// would live.
func fuzzLedgerSeed(mode LedgerMode, batch, n int) string {
	var buf bytes.Buffer
	j := New(&buf, Options{
		Obs:    obs.NewRegistry(),
		Ledger: LedgerOptions{Mode: mode, Batch: batch},
	})
	for i := 0; i < n; i++ {
		j.Emit(Event{Kind: KindPageFetched, BotID: i + 1})
	}
	j.Close()
	return buf.String()
}

// FuzzVerifyLedger guards the verifier the way FuzzDecode guards the
// decoder: whatever bytes it is handed — valid ledgers, tampered ones,
// record-shaped garbage, binary junk — Verify must neither panic nor
// return an inconsistent verdict. It cannot prove forgery resistance
// (that's the adversarial tests' job), but it pins the invariants every
// verdict must satisfy.
func FuzzVerifyLedger(f *testing.F) {
	f.Add(fuzzLedgerSeed(LedgerChain, 1, 5))
	f.Add(fuzzLedgerSeed(LedgerMerkle, 4, 10))
	f.Add(fuzzLedgerSeed(LedgerMerkle, 64, 1))
	f.Add(fuzzLedgerSeed(LedgerMerkle, 3, 0))
	f.Add(`{"ledger":1,"lkind":"anchor","seq":0,"chain":"00","prev":""}`)
	f.Add(`{"ledger":1,"lkind":"batch","seq":3,"n":3,"chain":"zz","root":"zz","prev":"00"}`)
	f.Add(`{"ledger":99,"lkind":"from_the_future"}`)
	f.Add(`{"ledger":1,"lkind":"seal","seq":0,"chain":"bad","prev":""}`)
	f.Add("{\"schema\":1,\"kind\":\"page_fetched\"}\nnot json\n\x00\xff junk")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		res := Verify(strings.NewReader(input))
		if res.OK && res.Err != "" {
			t.Fatalf("OK verdict with error %q", res.Err)
		}
		if !res.OK && res.Err == "" {
			t.Fatalf("failed verdict with no error: %+v", res)
		}
		if res.OK && (!res.Sealed || res.Uncovered != 0 || res.Records == 0) {
			t.Fatalf("OK verdict on unsealed/uncovered input: %+v", res)
		}
		if res.FirstBad > res.BadEnd {
			t.Fatalf("inverted blast radius [%d,%d]: %+v", res.FirstBad, res.BadEnd, res)
		}
		if res.Events+res.Records > res.Lines {
			t.Fatalf("line accounting broken: %+v", res)
		}
	})
}
