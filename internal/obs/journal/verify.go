package journal

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// VerifyResult is the outcome of replaying a journal's ledger. When OK
// is false, Err says what failed and FirstBad/BadEnd bound where: in
// chain mode (batch size 1) FirstBad is the exact corrupted line; in
// merkle mode the failure localizes to [FirstBad, BadEnd] — the failing
// batch's first uncommitted event line through the record that rejected
// it.
type VerifyResult struct {
	Mode LedgerMode // mode of the last record seen

	Lines    int // total lines (events + records)
	Events   int // event lines folded into the chain
	Records  int // ledger record lines
	Batches  int // batch records
	Segments int // anchor records (1 fresh + 1 per resume)
	Seals    int // seal records

	Seq  uint64 // final chain sequence
	Head string // final chain head, hex

	Sealed    bool // stream ends in a seal with nothing pending
	Uncovered int  // event lines after the last record (crash tail)

	OK       bool
	Err      string
	FirstBad int // 1-based line number bounding the failure (0 = none)
	BadEnd   int // last line of the failing range (0 = none)

	// External anchor cross-check (VerifyFile only). AnchorChecked is
	// true when a `<path>.anchor` side file exists; AnchorOK then says
	// whether the recomputed head matches it, and AnchorErr classifies a
	// mismatch distinctly from in-file tampering: a failing chain with a
	// matching anchor is in-file damage, while a clean chain whose head
	// disagrees with the anchor is a wholesale rewrite.
	AnchorChecked bool
	AnchorOK      bool
	AnchorHead    string // head recorded in the side file
	AnchorSeq     uint64 // seq recorded in the side file
	AnchorErr     string
}

// fail stamps the result as a verification failure.
func (v *VerifyResult) fail(first, end int, format string, args ...any) {
	v.OK = false
	v.Err = fmt.Sprintf(format, args...)
	v.FirstBad = first
	v.BadEnd = end
}

// verifier replays a ledgered journal line by line, recomputing the
// chain and checking every record against it. The same machine backs
// Verify (forensic check) and the resume scan in Open (state
// extraction), so a journal that resumes is by construction one that
// verifies.
type verifier struct {
	res VerifyResult

	h       chainHasher
	chain   digest
	lastRec string
	pending []digest
	// pendingStart is the 1-based line number of the first event in the
	// pending batch — the start of the blast radius if its record fails.
	pendingStart int

	lastSealed bool // last record seen was a seal
}

func newVerifier() *verifier {
	return &verifier{h: newChainHasher(), chain: genesis()}
}

// line folds one raw line (no trailing newline) into the verifier.
// It returns false when verification has already failed and further
// lines are pointless.
func (v *verifier) line(raw []byte) bool {
	if v.res.Err != "" {
		return false
	}
	v.res.Lines++
	n := v.res.Lines

	rec, ok := isRecordLine(raw)
	if !ok {
		// Every non-record line — valid event, malformed garbage,
		// anything — is chained. The ledger covers bytes, not schema.
		if v.lastSealed && v.res.Seals > 0 {
			v.res.fail(n, n, "event line %d after seal (appended post-close without re-anchoring)", n)
			return false
		}
		v.res.Events++
		v.res.Seq++
		v.chain = v.h.step(v.chain, raw)
		if len(v.pending) == 0 {
			v.pendingStart = n
		}
		v.pending = append(v.pending, v.chain)
		return true
	}

	if rec.Ledger > LedgerSchema {
		v.res.fail(n, n, "line %d: ledger record schema %d is newer than supported %d", n, rec.Ledger, LedgerSchema)
		return false
	}
	v.res.Records++
	v.res.Mode = rec.Mode
	badStart := v.pendingStart
	if badStart == 0 {
		badStart = n
	}

	if rec.Prev != v.lastRec {
		v.res.fail(badStart, n, "line %d: record continuity broken — prev %s does not match last record chain %s (record deleted or reordered)", n, abbrev(rec.Prev), abbrev(v.lastRec))
		return false
	}

	switch rec.LKind {
	case RecordAnchor:
		// An anchor opens a segment. Mid-file anchors (resume) must
		// commit exactly the uncovered tail of the prior segment.
		v.res.Segments++
		if rec.Count != len(v.pending) {
			v.res.fail(badStart, n, "line %d: anchor covers %d recovered lines but %d are uncommitted (lines lost across resume)", n, rec.Count, len(v.pending))
			return false
		}
		if !v.checkCommit(rec, n, badStart) {
			return false
		}
		v.lastSealed = false
	case RecordBatch:
		if v.res.Segments == 0 {
			v.res.fail(badStart, n, "line %d: batch record before any anchor", n)
			return false
		}
		if v.lastSealed {
			v.res.fail(badStart, n, "line %d: batch record after seal without re-anchoring", n)
			return false
		}
		if rec.Count != len(v.pending) {
			v.res.fail(badStart, n, "line %d: batch commits %d events but %d are pending (line deleted or injected)", n, rec.Count, len(v.pending))
			return false
		}
		if !v.checkCommit(rec, n, badStart) {
			return false
		}
		v.res.Batches++
	case RecordSeal:
		if v.res.Segments == 0 {
			v.res.fail(badStart, n, "line %d: seal before any anchor", n)
			return false
		}
		if len(v.pending) != 0 {
			v.res.fail(badStart, n, "line %d: seal with %d uncommitted events", n, len(v.pending))
			return false
		}
		if rec.Seq != v.res.Seq || rec.Chain != hexDigest(v.chain) {
			v.res.fail(badStart, n, "line %d: seal chain mismatch (recomputed %s, recorded %s)", n, abbrev(hexDigest(v.chain)), abbrev(rec.Chain))
			return false
		}
		v.res.Seals++
		v.lastRec = rec.Chain
		v.lastSealed = true
	default:
		v.res.fail(n, n, "line %d: unknown ledger record kind %q", n, rec.LKind)
		return false
	}
	return true
}

// checkCommit validates a committing record (anchor or batch) against
// the recomputed chain and pending leaves, then consumes the batch.
func (v *verifier) checkCommit(rec Record, n, badStart int) bool {
	if rec.Seq != v.res.Seq {
		v.res.fail(badStart, n, "line %d: record seq %d, recomputed %d (lines deleted, injected, or reordered across a batch)", n, rec.Seq, v.res.Seq)
		return false
	}
	if rec.Chain != hexDigest(v.chain) {
		v.res.fail(badStart, n, "line %d: chain mismatch — a line in [%d,%d] was altered or reordered (recomputed %s, recorded %s)", n, badStart, n, abbrev(hexDigest(v.chain)), abbrev(rec.Chain))
		return false
	}
	wantRoot := ""
	if len(v.pending) > 0 {
		wantRoot = hexDigest(merkleRoot(v.pending))
	}
	if rec.Root != wantRoot {
		v.res.fail(badStart, n, "line %d: merkle root mismatch over lines [%d,%d] (recomputed %s, recorded %s)", n, badStart, n, abbrev(wantRoot), abbrev(rec.Root))
		return false
	}
	v.pending = v.pending[:0]
	v.pendingStart = 0
	v.lastRec = rec.Chain
	return true
}

// finish closes the replay and renders the verdict. torn reports that
// the final line had no trailing newline (a torn write).
func (v *verifier) finish(torn bool) VerifyResult {
	v.res.Head = hexDigest(v.chain)
	v.res.Uncovered = len(v.pending)
	v.res.Sealed = v.lastSealed && len(v.pending) == 0
	if v.res.Err != "" {
		return v.res
	}
	switch {
	case v.res.Lines == 0:
		v.res.fail(0, 0, "empty journal")
	case v.res.Records == 0:
		v.res.fail(0, 0, "no ledger records (journal written with -ledger-mode off)")
	case torn:
		v.res.fail(v.res.Lines, v.res.Lines, "line %d: torn final write (no trailing newline)", v.res.Lines)
	case !v.lastSealed:
		v.res.fail(v.pendingStart, v.res.Lines, "unsealed journal: %d event lines after the last record are uncommitted (run crashed, or seal was truncated)", len(v.pending))
	default:
		v.res.OK = true
	}
	return v.res
}

// Verify replays a ledgered journal stream and checks every hash-chain
// and Merkle commitment in it. It fails on any tampering (flipped
// bytes, deleted/injected/reordered lines), on truncation (missing
// seal), and on journals written without a ledger.
func Verify(r io.Reader) VerifyResult {
	v := newVerifier()
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		torn := err == io.EOF && len(line) > 0
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		if len(line) > 0 {
			if !v.line(line) && !torn {
				return v.finish(false)
			}
		}
		if err == io.EOF {
			return v.finish(torn)
		}
		if err != nil {
			res := v.finish(false)
			if res.OK {
				res.fail(0, 0, "read: %v", err)
			}
			return res
		}
	}
}

// VerifyFile opens and verifies a journal file on disk. When an anchor
// side file (`<path>.anchor`, written on sealed Close) exists, the
// recomputed chain head is cross-checked against it: a mismatch fails
// verification with a classification distinct from in-file tampering,
// because only an external commitment can catch a journal rewritten
// wholesale with an internally consistent chain. A journal without an
// anchor file verifies exactly as before.
func VerifyFile(path string) (VerifyResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return VerifyResult{}, err
	}
	res := Verify(f)
	f.Close()

	ap := AnchorPath(path)
	if _, err := os.Stat(ap); err != nil {
		return res, nil // no anchor: in-file verdict stands
	}
	res.AnchorChecked = true
	a, err := ReadAnchor(ap)
	if err != nil {
		res.AnchorErr = fmt.Sprintf("anchor unreadable: %v", err)
		res.OK = false
		return res, nil
	}
	res.AnchorHead = a.Head
	res.AnchorSeq = a.Seq
	switch {
	case res.Records == 0:
		res.AnchorErr = "anchor present but journal carries no ledger records (ledger stripped by rewrite?)"
		res.OK = false
	case a.Head != res.Head || a.Seq != res.Seq:
		res.AnchorErr = fmt.Sprintf("anchor mismatch: side file commits head %s seq %d, file replays to %s seq %d (journal rewritten after sealing, or anchor from another run)", abbrev(a.Head), a.Seq, abbrev(res.Head), res.Seq)
		res.OK = false
	default:
		res.AnchorOK = true
	}
	return res, nil
}

// resumeScan replays an existing journal to extract the chain state a
// resumed segment must anchor on. It tolerates exactly two departures
// from a verifying file — an uncovered tail (the prior run crashed
// before committing) and a torn final line (crashed mid-write, repaired
// by repairTail) — and refuses anything that looks like tampering.
//
// A prior file written with the ledger off (no records at all) is also
// accepted: the resume anchor then commits every prior line as
// recovered tail, upgrading the file to ledgered from that point on.
func resumeScan(r io.Reader) (st resumeState, err error) {
	v := newVerifier()
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		line, rerr := br.ReadBytes('\n')
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		} else if rerr == io.EOF && n > 0 {
			st.torn = true
		}
		if len(line) > 0 && !v.line(line) {
			return st, fmt.Errorf("journal: refusing to resume onto a tampered journal: %s", v.res.Err)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return st, fmt.Errorf("journal: resume scan: %w", rerr)
		}
	}
	if v.res.Err != "" {
		return st, fmt.Errorf("journal: refusing to resume onto a tampered journal: %s", v.res.Err)
	}
	st.seq = v.res.Seq
	st.chain = v.chain
	st.lastRec = v.lastRec
	st.pending = append(st.pending, v.pending...)
	st.priorRecords = v.res.Records
	return st, nil
}

// resumeState is what a resumed segment inherits from the prior file.
type resumeState struct {
	seq          uint64
	chain        digest
	lastRec      string
	pending      []digest // prior uncovered tail, to be committed by the anchor
	torn         bool     // final line lacked '\n'; append one before writing
	priorRecords int
}

// abbrev shortens a hash for error messages; full values are in the
// file itself.
func abbrev(h string) string {
	if h == "" {
		return "<none>"
	}
	if len(h) > 12 {
		return h[:12] + "…"
	}
	return h
}
