// Package ops mounts the operational surfaces every long-running
// daemon in the pipeline exposes: Prometheus-style /metrics from an
// obs.Registry, liveness (/healthz) and readiness (/readyz) probes, and
// the net/http/pprof profiling endpoints under /debug/pprof/ — the
// health and profiling half of production-scale operation.
package ops

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// Mounter is anything that can register a handler on a path pattern —
// http.ServeMux and listing.Server both satisfy it.
type Mounter interface {
	Mount(pattern string, h http.Handler)
}

// muxMounter adapts an http.ServeMux to the Mounter shape.
type muxMounter struct{ mux *http.ServeMux }

func (m muxMounter) Mount(pattern string, h http.Handler) { m.mux.Handle(pattern, h) }

// Mount registers the full operational surface on m: /metrics (from
// reg, defaulting to the process-wide registry), /healthz (always 200
// while the process serves), /readyz (503 until ready returns true; a
// nil ready means always ready), and /debug/pprof/ with the cpu,
// symbol, cmdline and trace sub-handlers — heap, goroutine, block etc.
// are served by the pprof index handler itself.
func Mount(m Mounter, reg *obs.Registry, ready func() bool) {
	m.Mount("/metrics", obs.Or(reg).Handler())
	m.Mount("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	m.Mount("/readyz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ready != nil && !ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	}))
	m.Mount("/debug/pprof/", http.HandlerFunc(pprof.Index))
	m.Mount("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	m.Mount("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	m.Mount("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	m.Mount("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
}

// Mux returns a fresh ServeMux carrying the full operational surface —
// for daemons that have no HTTP server of their own (platformd's
// gateway speaks raw TCP) or want a dedicated ops listener.
func Mux(reg *obs.Registry, ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	Mount(muxMounter{mux}, reg, ready)
	return mux
}

// MountOn registers the surface on an existing ServeMux (botscan's
// -metrics-addr listener predates this package and builds its own mux).
func MountOn(mux *http.ServeMux, reg *obs.Registry, ready func() bool) {
	Mount(muxMounter{mux}, reg, ready)
}
