package ops

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestMuxServesOperationalSurfaces(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("test_total").Inc()
	srv := httptest.NewServer(Mux(reg, nil))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q", code, body)
	}
	if code, body := get(t, srv, "/metrics"); code != http.StatusOK || !strings.Contains(body, "test_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "heap") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get(t, srv, "/debug/pprof/heap"); code != http.StatusOK {
		t.Errorf("/debug/pprof/heap = %d", code)
	}
	if code, _ := get(t, srv, "/debug/pprof/goroutine"); code != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine = %d", code)
	}
}

func TestReadyzGatesOnCallback(t *testing.T) {
	ready := false
	srv := httptest.NewServer(Mux(obs.NewRegistry(), func() bool { return ready }))
	defer srv.Close()

	if code, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("not-ready /readyz = %d, want 503", code)
	}
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while not ready = %d, want 200 (liveness != readiness)", code)
	}
	ready = true
	if code, _ := get(t, srv, "/readyz"); code != http.StatusOK {
		t.Errorf("ready /readyz = %d, want 200", code)
	}
}
