// Package obs is the pipeline's observability substrate: a
// dependency-free registry of atomic counters, gauges, and log-bucketed
// latency histograms, plus hierarchical stage spans (traces) that
// record where wall-clock time goes across the crawl → traceability →
// code analysis → honeypot pipeline.
//
// Every instrumented component accepts an optional *Registry and falls
// back to the process-wide Default() registry when given nil, so a
// single binary can expose one coherent /metrics endpoint while tests
// isolate themselves with private registries. The registry renders both
// a Prometheus-style text exposition (WriteProm, Handler) and a
// structured JSON snapshot including traces (WriteJSON).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry names and owns a set of metrics and traces. The zero value
// is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	traces   []*Trace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the fallback every
// instrumented component uses when configured with a nil *Registry.
func Default() *Registry { return defaultRegistry }

// Or returns r, or the default registry when r is nil — the idiom for
// optional Registry fields in component options.
func Or(r *Registry) *Registry {
	if r == nil {
		return Default()
	}
	return r
}

// Counter returns the named monotonic counter, creating it on first
// use. Names may carry a Prometheus-style label suffix, e.g.
// `canary_triggers_total{kind="url"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterTrace attaches a trace to the registry so WriteJSON includes
// it. Duplicate registrations are ignored.
func (r *Registry) RegisterTrace(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.traces {
		if have == t {
			return
		}
	}
	r.traces = append(r.traces, t)
}

// Traces returns the registered traces in registration order.
func (r *Registry) Traces() []*Trace {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Trace, len(r.traces))
	copy(out, r.traces)
	return out
}

// sortedNames returns map keys sorted, for deterministic exposition.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing metric, safe for concurrent
// use. A nil Counter is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, safe for concurrent use.
// A nil Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
