package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/retry"
	"repro/internal/scraper"
)

// chaosAuditor stands up a full auditor with the given injector.
func chaosAuditor(t *testing.T, inj *faults.Injector, bots, sample int) *Auditor {
	t.Helper()
	a, err := NewAuditor(Options{
		Seed:    7,
		NumBots: bots,
		Honeypot: HoneypotOptions{
			Sample:      sample,
			Concurrency: 4,
			Settle:      300 * time.Millisecond,
		},
		Faults: FaultOptions{Injector: inj},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func runAll(t *testing.T, a *Auditor) *Results {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := a.RunAllContext(ctx)
	if err != nil {
		t.Fatalf("chaos pipeline errored: %v", err)
	}
	return res
}

func isInfra(err error) bool {
	return errors.Is(err, scraper.ErrUnavailable) ||
		errors.Is(err, retry.ErrExhausted) ||
		errors.Is(err, retry.ErrBudgetExhausted)
}

// TestChaosPipelineDegradesGracefully runs the full pipeline under the
// ~15% "moderate" profile plus one endpoint forced to always fail, and
// checks the run completes with honest partial results: verdicts for
// every non-quarantined bot and a quarantine ledger consistent with the
// injector's fault log.
func TestChaosPipelineDegradesGracefully(t *testing.T) {
	prof, err := faults.Named("moderate")
	if err != nil {
		t.Fatal(err)
	}
	// Bot 99's detail page always 503s: it must end up quarantined, not
	// mislabeled, no matter what the probabilistic faults do.
	prof.PerEndpoint = map[string]faults.Rates{"/bot/99": {ServerError: 1}}
	inj := faults.New(prof, 15, faults.Options{})

	const sample = 12
	a := chaosAuditor(t, inj, 120, sample)
	res := runAll(t, a)

	if len(res.Records) == 0 {
		t.Fatal("chaos run produced no records at all")
	}
	// Every sampled bot is accounted for: a verdict or a quarantine.
	hpQ := 0
	var collectQ []QuarantinedBot
	for _, q := range res.Quarantined {
		switch q.Stage {
		case "honeypot":
			hpQ++
		case "collect":
			collectQ = append(collectQ, q)
		}
	}
	if res.Honeypot == nil || res.Honeypot.Tested+hpQ != sample {
		t.Fatalf("Tested (%d) + honeypot quarantined (%d) != sample %d",
			res.Honeypot.Tested, hpQ, sample)
	}

	// The always-failing bot is quarantined and yields no record.
	found99 := false
	for _, q := range collectQ {
		if q.BotID == 99 {
			found99 = true
		}
		if !isInfra(q.Err) {
			t.Errorf("collect quarantine for bot %d is not an infrastructure error: %v", q.BotID, q.Err)
		}
	}
	if !found99 {
		t.Fatalf("bot 99 (always-503 detail page) not quarantined; ledger: %+v", collectQ)
	}
	for _, r := range res.Records {
		if r.ID == 99 {
			t.Fatal("quarantined bot 99 must not also have a record")
		}
	}

	// Quarantines match the fault log: a collect quarantine requires the
	// injector to have actually broken that bot's endpoints at least
	// TransportRetries+1 times in a row.
	failing := func(k faults.Kind) bool {
		return k == faults.KindServerError || k == faults.KindConnReset || k == faults.KindTruncatedBody
	}
	for _, q := range collectQ {
		n := 0
		detail := fmt.Sprintf("GET /bot/%d", q.BotID)
		invite := fmt.Sprintf("bot_id=%d&", q.BotID)
		for _, f := range res.FaultLog {
			if failing(f.Kind) && (f.Endpoint == detail || strings.Contains(f.Endpoint, invite)) {
				n++
			}
		}
		if n < 4 {
			t.Errorf("bot %d quarantined but the fault log shows only %d failing faults on its endpoints", q.BotID, n)
		}
	}

	// Results carry the injector's full ledger and the degradation map.
	if len(res.FaultLog) != inj.Count() {
		t.Fatalf("FaultLog has %d entries, injector recorded %d", len(res.FaultLog), inj.Count())
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("moderate profile injected no faults at all")
	}
	if !res.Degraded {
		t.Fatal("run with quarantines must report Degraded")
	}
	if got := res.Degradation["collect"].Quarantined; got != len(collectQ) {
		t.Fatalf("Degradation[collect].Quarantined = %d, want %d", got, len(collectQ))
	}
	if res.Degradation["honeypot"].Quarantined != hpQ {
		t.Fatalf("Degradation[honeypot].Quarantined = %d, want %d", res.Degradation["honeypot"].Quarantined, hpQ)
	}
}

// TestChaosSmoke is the CI-fast variant: a tiny ecosystem under 15%
// faults must still complete end to end.
func TestChaosSmoke(t *testing.T) {
	prof, err := faults.Named("moderate")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(prof, 3, faults.Options{})
	a, err := NewAuditor(Options{
		Seed:    3,
		NumBots: 40,
		Honeypot: HoneypotOptions{
			Sample:      4,
			Concurrency: 4,
			Settle:      200 * time.Millisecond,
		},
		Faults: FaultOptions{Injector: inj},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := runAll(t, a)
	hpQ := 0
	for _, q := range res.Quarantined {
		if q.Stage == "honeypot" {
			hpQ++
		}
	}
	if res.Honeypot.Tested+hpQ != 4 {
		t.Fatalf("Tested (%d) + quarantined (%d) != sample 4", res.Honeypot.Tested, hpQ)
	}
	var sb strings.Builder
	res.Report(&sb) // the degraded report must render
	if !strings.Contains(sb.String(), "Fault injection:") {
		t.Fatal("report of a faulted run must include the fault-injection summary")
	}
}

// quarantineKey flattens a ledger entry for set comparison.
func quarantineKey(q QuarantinedBot) string {
	return fmt.Sprintf("%s/%d/%s/%s", q.Stage, q.BotID, q.Name, q.Link)
}

// TestChaosDeterministicLedger: same seed + same profile must replay a
// byte-identical fault ledger and the same quarantine set. Uses a
// profile without gateway rates — gateway frame faults depend on event
// timing, HTTP faults do not.
func TestChaosDeterministicLedger(t *testing.T) {
	run := func() ([]byte, []string, *Results) {
		prof, err := faults.Named("mild")
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(prof, 21, faults.Options{})
		a := chaosAuditor(t, inj, 80, 8)
		res := runAll(t, a)
		var buf bytes.Buffer
		if err := inj.WriteLedger(&buf); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(res.Quarantined))
		for _, q := range res.Quarantined {
			keys = append(keys, quarantineKey(q))
		}
		sort.Strings(keys)
		return buf.Bytes(), keys, res
	}

	led1, q1, res1 := run()
	led2, q2, res2 := run()
	if len(led1) == 0 {
		t.Fatal("mild profile injected no faults")
	}
	if !bytes.Equal(led1, led2) {
		t.Fatalf("fault ledgers differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", led1, led2)
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatalf("quarantine sets differ: %v vs %v", q1, q2)
	}
	if len(res1.StageErrors) != len(res2.StageErrors) {
		t.Fatalf("stage errors differ: %v vs %v", res1.StageErrors, res2.StageErrors)
	}
}

// TestZeroFaultIdenticalResults: wiring the injector with the "none"
// profile must change nothing — records identical to a run with no
// injector at all, same triggered bots, no degradation.
func TestZeroFaultIdenticalResults(t *testing.T) {
	run := func(inj *faults.Injector) *Results {
		a, err := NewAuditor(Options{
			Seed:    7,
			NumBots: 80,
			Honeypot: HoneypotOptions{
				Sample:      8,
				Concurrency: 4,
				Settle:      700 * time.Millisecond,
			},
			Faults: FaultOptions{Injector: inj},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		return runAll(t, a)
	}

	prof, err := faults.Named("none")
	if err != nil {
		t.Fatal(err)
	}
	plain := run(nil)
	wired := run(faults.New(prof, 1, faults.Options{}))

	if !reflect.DeepEqual(plain.Records, wired.Records) {
		t.Fatal("zero-fault profile changed the scraped records")
	}
	names := func(r *Results) []string {
		out := make([]string, 0, len(r.Honeypot.Triggered))
		for _, v := range r.Honeypot.Triggered {
			out = append(out, v.Subject.Name)
		}
		sort.Strings(out)
		return out
	}
	if got, want := names(wired), names(plain); !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-fault profile changed the triggered set: %v vs %v", got, want)
	}
	if wired.Degraded {
		t.Fatal("zero-fault run must not be degraded")
	}
	if len(wired.FaultLog) != 0 {
		t.Fatalf("zero-fault run logged %d faults", len(wired.FaultLog))
	}
	if len(wired.Quarantined) != 0 || len(wired.StageErrors) != 0 {
		t.Fatal("zero-fault run must have an empty quarantine ledger")
	}
}
