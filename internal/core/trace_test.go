// Tests for the per-bot tracing layer under both executors: span
// coverage per stage, export well-formedness, and the profile
// artifact.
package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	bottrace "repro/internal/obs/trace"
)

func tracedOpts(shards int, level bottrace.Level) Options {
	return Options{
		Seed:    11,
		NumBots: 60,
		Honeypot: HoneypotOptions{
			Sample:      6,
			Concurrency: 4,
			Settle:      300 * time.Millisecond,
		},
		Exec:  ExecOptions{Shards: shards},
		Trace: TraceOptions{Level: level},
		Obs:   obs.NewRegistry(),
	}
}

func TestShardedRunRecordsBotSpans(t *testing.T) {
	a, err := NewAuditor(tracedOpts(4, bottrace.LevelFull))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := runAll(t, a)

	tr := res.BotTrace
	if tr == nil {
		t.Fatal("traced run returned no BotTrace")
	}
	if tr.RunID() != res.RunID {
		t.Errorf("tracer run ID %q != results run ID %q", tr.RunID(), res.RunID)
	}

	ops := tr.Ops()
	stageBots := map[string]map[int32]bool{}
	subOps := map[string]int{}
	runSpans := map[string]bool{}
	for _, op := range ops {
		switch op.Kind {
		case bottrace.KindStage:
			if stageBots[op.Stage] == nil {
				stageBots[op.Stage] = map[int32]bool{}
			}
			stageBots[op.Stage][op.BotID] = true
			if op.Shard < 0 || int(op.Shard) >= tr.Shards() {
				t.Fatalf("bot span off any worker shard: %+v", op)
			}
		case bottrace.KindOp:
			subOps[op.Name]++
		case bottrace.KindRun:
			runSpans[op.Stage] = true
		}
	}
	// Every listed bot gets a collect span; every perms-valid record a
	// traceability span; every sampled bot a honeypot span.
	if got := len(stageBots["collect"]); got != len(a.Ecosystem().Bots) {
		t.Errorf("collect spans cover %d bots, want %d", got, len(a.Ecosystem().Bots))
	}
	valid := 0
	for _, r := range res.Records {
		if r.PermsValid {
			valid++
		}
	}
	if got := len(stageBots["traceability"]); got != valid {
		t.Errorf("traceability spans cover %d bots, want %d perms-valid", got, valid)
	}
	if got := len(stageBots["honeypot"]); got != 6 {
		t.Errorf("honeypot spans cover %d bots, want the sample of 6", got)
	}
	for _, stage := range []string{"collect", "traceability", "codeanalysis", "honeypot", "vetting"} {
		if !runSpans[stage] {
			t.Errorf("run-level span missing for stage %s", stage)
		}
	}
	// Full level records the instrumented sub-operations.
	for _, name := range []string{"page_fetch", "invite_redirect", "policy_audit", "honeypot_settle"} {
		if subOps[name] == 0 {
			t.Errorf("no %s sub-operations recorded", name)
		}
	}

	// Exports stay well-formed on a real run.
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := bottrace.ValidateChromeTrace(chrome.Bytes()); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	h, decoded, skipped, err := bottrace.DecodeJSONL(&jsonl)
	if err != nil || skipped != 0 || len(decoded) != len(ops) {
		t.Fatalf("span log round-trip: %d/%d ops, skipped %d, err %v", len(decoded), len(ops), skipped, err)
	}
	if h.RunID != res.RunID {
		t.Errorf("span log header run ID %q, want %q", h.RunID, res.RunID)
	}

	// The profile names every traced bot and a timeline per shard.
	p := tr.BuildProfile()
	if len(p.Bots) == 0 || len(p.ShardTL) != 4 {
		t.Fatalf("profile: %d bots, %d shard timelines (want 4)", len(p.Bots), len(p.ShardTL))
	}
	var pbuf bytes.Buffer
	if err := bottrace.WriteProfile(&pbuf, p); err != nil {
		t.Fatal(err)
	}
	got, err := bottrace.DecodeProfile(&pbuf)
	if err != nil || len(got.Bots) != len(p.Bots) {
		t.Fatalf("profile round-trip: %d bots, err %v", len(got.Bots), err)
	}
}

func TestSequentialRunTracesAtBotLevel(t *testing.T) {
	a, err := NewAuditor(tracedOpts(0, bottrace.LevelBots))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := runAll(t, a)

	tr := res.BotTrace
	if tr == nil {
		t.Fatal("traced run returned no BotTrace")
	}
	stages, subops := 0, 0
	for _, op := range tr.Ops() {
		switch op.Kind {
		case bottrace.KindStage:
			stages++
		case bottrace.KindOp:
			subops++
		}
	}
	if stages == 0 {
		t.Fatal("sequential executor recorded no bot-stage spans")
	}
	if subops != 0 {
		t.Fatalf("level bots recorded %d sub-operations, want 0", subops)
	}
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := bottrace.ValidateChromeTrace(chrome.Bytes()); err != nil {
		t.Fatalf("sequential chrome trace invalid: %v", err)
	}
}

func TestTracingOffRecordsNothing(t *testing.T) {
	a, err := NewAuditor(tracedOpts(2, bottrace.LevelOff))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := runAll(t, a)
	if res.BotTrace != nil {
		t.Fatal("tracing off still built a tracer")
	}
}
