// Tests for the sharded work-stealing executor: outcome parity with
// the sequential executor on a fixed seed, graceful degradation under
// chaos, crash/resume convergence mid-shard, and the concurrent
// stage-timing report.
package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/canary"
	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/honeypot"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// comparableVerdict projects a honeypot verdict onto its deterministic
// fields: trigger timestamps, remote addresses, token IDs, and raw
// trigger multiplicities are run-specific (wall clock, ephemeral
// ports, random token minting, and how often a snooping bot re-hits a
// canary inside the watch window), so parity compares what was
// detected — the distinct trigger kinds per bot — not when, how many
// times, or through which token.
type comparableVerdict struct {
	ListingID          int
	Name               string
	GuildTag           string
	Triggered          bool
	TriggerKinds       []canary.Kind
	TriggeredKinds     []canary.Kind
	BotMessages        []string
	Responded          bool
	WebhookPersistence bool
}

func normalizeVerdicts(vs []*honeypot.Verdict) []comparableVerdict {
	out := make([]comparableVerdict, 0, len(vs))
	for _, v := range vs {
		cv := comparableVerdict{
			ListingID:          v.Subject.ListingID,
			Name:               v.Subject.Name,
			GuildTag:           v.GuildTag,
			Triggered:          v.Triggered,
			TriggeredKinds:     append([]canary.Kind(nil), v.TriggeredKinds...),
			BotMessages:        v.BotMessages,
			Responded:          v.Responded,
			WebhookPersistence: v.WebhookPersistence,
		}
		kinds := map[canary.Kind]bool{}
		for _, tr := range v.Triggers {
			kinds[tr.Kind] = true
		}
		for k := range kinds {
			cv.TriggerKinds = append(cv.TriggerKinds, k)
		}
		sort.Slice(cv.TriggerKinds, func(i, j int) bool { return cv.TriggerKinds[i] < cv.TriggerKinds[j] })
		// TriggeredKinds preserves first-arrival order, which legitimately
		// varies with scheduling; compare it as a set too.
		sort.Slice(cv.TriggeredKinds, func(i, j int) bool { return cv.TriggeredKinds[i] < cv.TriggeredKinds[j] })
		out = append(out, cv)
	}
	return out
}

// TestShardedMatchesSequential is the parity gate: on the same seed, a
// fault-free sharded run must produce outcome-equivalent results to the
// sequential executor — identical records, traceability tables, code
// analysis, quarantine ledger (empty), and honeypot detections.
func TestShardedMatchesSequential(t *testing.T) {
	newOpts := func(shards int) Options {
		return Options{
			Seed:    11,
			NumBots: 150,
			Honeypot: HoneypotOptions{
				Sample:      15,
				Concurrency: 4,
				Settle:      400 * time.Millisecond,
			},
			Exec: ExecOptions{Shards: shards},
			Obs:  obs.NewRegistry(),
		}
	}
	runWith := func(shards int) *Results {
		a, err := NewAuditor(newOpts(shards))
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		return runAll(t, a)
	}

	seq := runWith(0)
	shd := runWith(4)

	if seq.Scale != nil {
		t.Fatal("sequential run reported ScaleStats")
	}
	if shd.Scale == nil {
		t.Fatal("sharded run reported no ScaleStats")
	}
	if !reflect.DeepEqual(shd.Records, seq.Records) {
		t.Fatalf("records diverged: sharded %d, sequential %d", len(shd.Records), len(seq.Records))
	}
	if !reflect.DeepEqual(shd.PermDist, seq.PermDist) {
		t.Fatal("permission distribution diverged")
	}
	if !reflect.DeepEqual(shd.Table2, seq.Table2) {
		t.Fatalf("Table2 diverged: %+v vs %+v", shd.Table2, seq.Table2)
	}
	if !reflect.DeepEqual(shd.DataTypes, seq.DataTypes) {
		t.Fatal("data-type analysis diverged")
	}
	if !reflect.DeepEqual(shd.Code, seq.Code) {
		t.Fatal("code-analysis result diverged")
	}
	if !reflect.DeepEqual(shd.Analyses, seq.Analyses) {
		t.Fatal("per-repo analyses diverged")
	}
	if len(shd.Quarantined) != 0 || len(seq.Quarantined) != 0 {
		t.Fatalf("fault-free runs must not quarantine (sharded %d, sequential %d)",
			len(shd.Quarantined), len(seq.Quarantined))
	}
	if shd.Honeypot.Tested != seq.Honeypot.Tested {
		t.Fatalf("Tested = %d, sequential %d", shd.Honeypot.Tested, seq.Honeypot.Tested)
	}
	if got, want := triggeredNames(shd), triggeredNames(seq); !reflect.DeepEqual(got, want) {
		t.Fatalf("triggered set %v, sequential %v", got, want)
	}
	if got, want := normalizeVerdicts(shd.Honeypot.Verdicts), normalizeVerdicts(seq.Honeypot.Verdicts); !reflect.DeepEqual(got, want) {
		for i := range got {
			if i < len(want) && !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("verdict %d diverged:\nsharded    %+v\nsequential %+v", i, got[i], want[i])
			}
		}
		t.Fatalf("normalized verdicts diverged (%d vs %d)", len(got), len(want))
	}

	s := shd.Scale
	if s.Shards != 4 || s.Workers != 4 {
		t.Fatalf("Scale reports %d shards × %d workers, want 4 × 4", s.Shards, s.Workers)
	}
	if s.Items != len(seq.Records) {
		t.Fatalf("scheduled %d items, want one per listed bot (%d)", s.Items, len(seq.Records))
	}
	var executed int64
	for _, n := range s.ExecutedPerShard {
		executed += n
	}
	if executed != int64(s.Items) {
		t.Fatalf("shards executed %d items, want %d (none lost, none doubled)", executed, s.Items)
	}
	if len(s.Stages) != 4 {
		t.Fatalf("Scale has %d stage gates, want 4", len(s.Stages))
	}
	for _, g := range s.Stages {
		if g.MaxInflight > g.Limit {
			t.Fatalf("stage %s peaked at %d in-flight, over its limit %d", g.Stage, g.MaxInflight, g.Limit)
		}
	}
	if s.BotsPerSec <= 0 {
		t.Fatalf("BotsPerSec = %v, want > 0", s.BotsPerSec)
	}
}

// TestShardedStageWorkerBounds pins the per-stage concurrency knobs:
// explicit StageWorkers limits are what the gates enforce.
func TestShardedStageWorkerBounds(t *testing.T) {
	a, err := NewAuditor(Options{
		Seed:    13,
		NumBots: 80,
		Honeypot: HoneypotOptions{
			Sample:      8,
			Concurrency: 4,
			Settle:      300 * time.Millisecond,
		},
		Exec: ExecOptions{
			Shards:       6,
			StageWorkers: StageWorkers{Collect: 2, Code: 3, Honeypot: 1},
		},
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := runAll(t, a)
	want := map[string]int{"collect": 2, "traceability": 6, "codeanalysis": 3, "honeypot": 1}
	for _, g := range res.Scale.Stages {
		if g.Limit != want[g.Stage] {
			t.Errorf("stage %s gate limit = %d, want %d", g.Stage, g.Limit, want[g.Stage])
		}
		if g.MaxInflight > g.Limit {
			t.Errorf("stage %s peaked at %d in-flight, over its limit %d", g.Stage, g.MaxInflight, g.Limit)
		}
	}
}

// TestShardedChaosDeterministic: under the moderate fault profile the
// sharded executor degrades instead of failing, quarantines only on
// infrastructure errors, and — because fault decisions are a pure
// function of (seed, endpoint, attempt) and every bot is carried by
// exactly one worker — replays the identical quarantine ledger run
// after run, matching the sequential executor's ledger too.
func TestShardedChaosDeterministic(t *testing.T) {
	run := func(shards int) *Results {
		prof, err := faults.Named("moderate")
		if err != nil {
			t.Fatal(err)
		}
		inj := faults.New(prof, 21, faults.Options{})
		a, err := NewAuditor(Options{
			Seed:    7,
			NumBots: 120,
			Honeypot: HoneypotOptions{
				Sample:      12,
				Concurrency: 4,
				Settle:      300 * time.Millisecond,
			},
			Exec:   ExecOptions{Shards: shards},
			Faults: FaultOptions{Injector: inj},
			Obs:    obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		return runAll(t, a)
	}
	keys := func(r *Results) []string {
		out := []string{}
		for _, q := range r.Quarantined {
			out = append(out, quarantineKey(q))
		}
		sort.Strings(out)
		return out
	}

	first := run(4)
	for _, q := range first.Quarantined {
		if !isInfra(q.Err) {
			t.Errorf("quarantined %s/bot %d on a non-infrastructure error: %v", q.Stage, q.BotID, q.Err)
		}
	}
	second := run(4)
	if got, want := keys(second), keys(first); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded chaos ledger not deterministic:\n%v\nvs\n%v", got, want)
	}
	seq := run(0)
	if got, want := keys(first), keys(seq); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded chaos ledger diverged from sequential:\n%v\nvs\n%v", got, want)
	}
	if !reflect.DeepEqual(first.Table2, seq.Table2) {
		t.Fatal("chaos Table2 diverged from sequential")
	}
}

// TestShardedKillResumeNoReexecution is the resume-mid-shard gate: kill
// a sharded run at successive checkpoint writes, resume each time, and
// require convergence to the uninterrupted sequential baseline with
// zero bots lost and zero settled work re-executed.
func TestShardedKillResumeNoReexecution(t *testing.T) {
	const (
		seed   = 7
		bots   = 60
		sample = 6
	)
	newOpts := func(shards int) Options {
		return Options{
			Seed:    seed,
			NumBots: bots,
			Honeypot: HoneypotOptions{
				Sample:      sample,
				Concurrency: 4,
				Settle:      300 * time.Millisecond,
			},
			Exec: ExecOptions{Shards: shards},
			Obs:  obs.NewRegistry(),
		}
	}

	base := func() *Results {
		a, err := NewAuditor(newOpts(0))
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		return runAll(t, a)
	}()

	st, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	kills := []int{1, 2, 3}
	var final *Results
	firstRunID := ""
	resumeFrom := ""
	for attempt := 0; ; attempt++ {
		if attempt > len(kills)+3 {
			t.Fatalf("sharded pipeline did not converge after %d attempts", attempt)
		}
		opts := newOpts(4)
		opts.Checkpoint = CheckpointOptions{Store: st, Every: 3, Resume: resumeFrom}
		var buf bytes.Buffer
		jnl := journal.New(&buf, journal.Options{Obs: opts.Obs})
		opts.Journal = jnl

		var snap *checkpoint.Snapshot
		if resumeFrom != "" {
			if snap, err = st.Latest(); err != nil {
				t.Fatal(err)
			}
		}

		a, err := NewAuditor(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		var ab *faults.AbortInjector
		if attempt < len(kills) {
			ab = faults.NewAbort(kills[attempt], cancel)
		}
		st.AfterSave = func(*checkpoint.Snapshot) { ab.Tick() }
		res, runErr := a.RunAllContext(ctx)
		st.AfterSave = nil
		cancel()
		a.Close()
		if err := jnl.Close(); err != nil {
			t.Fatal(err)
		}
		events, _, err := journal.Decode(&buf)
		if err != nil {
			t.Fatalf("attempt %d journal: %v", attempt, err)
		}

		if snap != nil {
			verifyNoReexecution(t, attempt, snap, events)
		}
		if firstRunID == "" {
			got, err := st.Latest()
			if err != nil {
				t.Fatalf("attempt %d wrote no snapshot: %v", attempt, err)
			}
			firstRunID = got.RunID
		}

		if runErr == nil {
			final = res
			break
		}
		if !errors.Is(runErr, context.Canceled) {
			t.Fatalf("attempt %d died with %v, want the injected abort (context.Canceled)", attempt, runErr)
		}
		if !ab.Fired() {
			t.Fatalf("attempt %d aborted without the injector firing", attempt)
		}
		resumeFrom = ResumeLatest
	}

	if final.RunID != firstRunID {
		t.Fatalf("resumed run minted a new run ID %s, want the original %s", final.RunID, firstRunID)
	}
	if !reflect.DeepEqual(final.Records, base.Records) {
		t.Fatal("resumed sharded records diverged from the sequential baseline")
	}
	if !reflect.DeepEqual(final.Table2, base.Table2) {
		t.Fatalf("resumed Table2 diverged: %+v vs %+v", final.Table2, base.Table2)
	}
	if !reflect.DeepEqual(final.Code, base.Code) {
		t.Fatal("resumed code-analysis result diverged from baseline")
	}
	if final.Honeypot.Tested != base.Honeypot.Tested {
		t.Fatalf("resumed Tested = %d, baseline %d (bots lost or doubled)", final.Honeypot.Tested, base.Honeypot.Tested)
	}
	if got, want := triggeredNames(final), triggeredNames(base); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed triggered set %v, baseline %v", got, want)
	}
	if len(final.Quarantined) != 0 {
		t.Fatalf("zero-fault resumed run quarantined %d bots", len(final.Quarantined))
	}
	last, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if !last.Completed {
		t.Fatal("final snapshot not marked Completed")
	}
	if len(last.Records) != len(base.Records) {
		t.Fatalf("final snapshot has %d records, baseline %d", len(last.Records), len(base.Records))
	}
}

// TestShardedConcurrentTimingsReport: interleaved stages render as
// summed span time with the explicit concurrent marker, plus the scale
// accounting block, instead of a meaningless wall-clock sum.
func TestShardedConcurrentTimingsReport(t *testing.T) {
	a, err := NewAuditor(Options{
		Seed:    11,
		NumBots: 60,
		Honeypot: HoneypotOptions{
			Sample:      6,
			Concurrency: 4,
			Settle:      300 * time.Millisecond,
		},
		Exec: ExecOptions{Shards: 2},
		Obs:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := runAll(t, a)

	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	if !strings.Contains(out, "ms*") {
		t.Error("report lacks the per-stage concurrent marker (ms*)")
	}
	if !strings.Contains(out, "* concurrent stage") {
		t.Error("report lacks the concurrent-stage footnote")
	}
	if !strings.Contains(out, "Sharded executor:") {
		t.Error("report lacks the sharded-executor scale block")
	}
	for _, stage := range []string{"collect", "traceability", "codeanalysis", "honeypot"} {
		if !strings.Contains(out, "stage "+stage) {
			t.Errorf("scale block lacks stage %s", stage)
		}
	}

	// The trace itself records the four analysis stages as concurrent
	// and the surrounding stages (vetting) as plain.
	concurrent := map[string]bool{}
	for _, s := range res.Trace.Summary().Spans {
		concurrent[s.Name] = s.Concurrent
	}
	for _, stage := range []string{"collect", "traceability", "codeanalysis", "honeypot"} {
		if !concurrent[stage] {
			t.Errorf("stage %s span not marked concurrent", stage)
		}
	}
	if concurrent["vetting"] {
		t.Error("vetting span wrongly marked concurrent")
	}
}
