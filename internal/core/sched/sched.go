// Package sched implements the sharded work-stealing scheduler that
// drives the per-bot pipeline executor. The bot population is
// partitioned across N shards, each backed by a double-ended queue:
// a shard's own workers pop from the front, and workers whose shard
// has drained steal from the back of the most loaded remaining shard.
// All work is enqueued before Run starts, so an empty sweep across
// every deque is a terminal condition, not a race.
//
// Per-stage concurrency is bounded separately by Gates — counting
// semaphores that also account items, busy time, and peak in-flight
// occupancy, which is where the per-stage bots/sec figures in
// BENCH_SCALE.json come from.
package sched

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// deque is one shard's work queue. The owner pops from the front
// (preserving listing-order locality); thieves take from the back so
// owner and thief contend on opposite ends.
type deque struct {
	mu    sync.Mutex
	items []int
	head  int
}

// popFront and stealBack also report the deque's remaining depth, so
// the caller can publish queue-depth metrics and trace samples without
// a second lock round-trip.
func (d *deque) popFront() (item, depth int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, 0, false
	}
	it := d.items[d.head]
	d.head++
	return it, len(d.items) - d.head, true
}

func (d *deque) stealBack() (item, depth int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, 0, false
	}
	it := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return it, len(d.items) - d.head, true
}

func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items) - d.head
}

// Partition splits item indexes 0..n-1 into k contiguous shards of
// near-equal size. Contiguous ranges keep each shard aligned with a
// span of the listing, so shard imbalance directly reflects where the
// expensive bots cluster — which is what work stealing is for.
func Partition(n, k int) [][]int {
	if k <= 0 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	out := make([][]int, k)
	if n <= 0 {
		for i := range out {
			out[i] = []int{}
		}
		return out
	}
	base, rem := n/k, n%k
	next := 0
	for s := 0; s < k; s++ {
		size := base
		if s < rem {
			size++
		}
		shard := make([]int, size)
		for i := 0; i < size; i++ {
			shard[i] = next
			next++
		}
		out[s] = shard
	}
	return out
}

// Stats is the scheduler's execution accounting.
type Stats struct {
	Shards   int     `json:"shards"`
	Workers  int     `json:"workers"`
	Executed []int64 `json:"executed_per_shard"`
	Stolen   []int64 `json:"stolen_per_shard"`
	// PerWorker counts items each worker settled (owner pops plus
	// steals) — a fairness view orthogonal to the shard view.
	PerWorker []int64 `json:"executed_per_worker"`
	Steals    int64   `json:"steals"`
}

// Hooks lets a run publish its scheduling decisions as it makes them:
// live counters/gauges into an obs Registry (so /metrics shows steal
// and imbalance figures during a run, not only in BENCH_SCALE.json
// afterwards) and steal/queue-depth events onto the tracer's shard
// tracks. The zero value disables everything.
type Hooks struct {
	Obs    *obs.Registry
	Tracer *trace.Tracer
	// Stage labels the trace events this run emits (e.g. "sharded").
	Stage string
}

// shardMetrics is the per-shard registry instruments, resolved once
// before the workers start so the hot loop never formats label names.
type shardMetrics struct {
	steals   *obs.Counter // total across shards
	executed []*obs.Counter
	stolen   []*obs.Counter
	depth    []*obs.Gauge
	busyUS   []*obs.Counter // per worker
}

func newShardMetrics(r *obs.Registry, shards, workers int) *shardMetrics {
	m := &shardMetrics{
		steals:   r.Counter("sched_steals_total"),
		executed: make([]*obs.Counter, shards),
		stolen:   make([]*obs.Counter, shards),
		depth:    make([]*obs.Gauge, shards),
		busyUS:   make([]*obs.Counter, workers),
	}
	for s := 0; s < shards; s++ {
		label := `{shard="` + strconv.Itoa(s) + `"}`
		m.executed[s] = r.Counter("sched_shard_executed_total" + label)
		m.stolen[s] = r.Counter("sched_shard_stolen_total" + label)
		m.depth[s] = r.Gauge("sched_shard_queue_depth" + label)
	}
	for w := 0; w < workers; w++ {
		m.busyUS[w] = r.Counter(`sched_worker_busy_us_total{worker="` + strconv.Itoa(w) + `"}`)
	}
	return m
}

// Run executes fn once for every item across the shards using the
// given number of workers. Worker w is homed on shard w mod len(shards)
// and scans the remaining shards round-robin once its own drains.
// Run returns when every item has been executed or ctx is cancelled;
// fn is responsible for honouring ctx promptly.
func Run(ctx context.Context, shards [][]int, workers int, fn func(ctx context.Context, worker, item int)) *Stats {
	return RunHooked(ctx, shards, workers, fn, Hooks{})
}

// RunHooked is Run with live observability: scheduling decisions are
// mirrored into h.Obs metrics and h.Tracer shard-track events as they
// happen.
func RunHooked(ctx context.Context, shards [][]int, workers int, fn func(ctx context.Context, worker, item int), h Hooks) *Stats {
	ns := len(shards)
	st := &Stats{Shards: ns, Workers: workers}
	if ns == 0 {
		return st
	}
	if workers <= 0 {
		workers = ns
		st.Workers = workers
	}
	dq := make([]*deque, ns)
	for i, items := range shards {
		dq[i] = &deque{items: append([]int(nil), items...)}
	}
	st.Executed = make([]int64, ns)
	st.Stolen = make([]int64, ns)
	st.PerWorker = make([]int64, workers)

	var m *shardMetrics
	if h.Obs != nil {
		m = newShardMetrics(h.Obs, ns, st.Workers)
	}
	tr := h.Tracer
	traced := tr.Level() >= trace.LevelBots

	var wg sync.WaitGroup
	for w := 0; w < st.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := w % ns
			for ctx.Err() == nil {
				item, from, depth, ok := next(dq, own)
				if !ok {
					return
				}
				atomic.AddInt64(&st.Executed[from], 1)
				atomic.AddInt64(&st.PerWorker[w], 1)
				stolen := from != own
				if stolen {
					atomic.AddInt64(&st.Stolen[from], 1)
					atomic.AddInt64(&st.Steals, 1)
				}
				if m != nil {
					m.executed[from].Inc()
					m.depth[from].Set(int64(depth))
					if stolen {
						m.steals.Inc()
						m.stolen[from].Inc()
					}
				}
				if traced {
					// Steal instants land on the victim shard's track;
					// the packed value carries thief worker + depth left.
					if stolen {
						tr.Instant(from, h.Stage, "steal", "worker "+strconv.Itoa(w), trace.PackStealValue(w, depth))
					}
					tr.Sample(from, h.Stage, "queue_depth", int64(depth))
				}
				if m != nil {
					start := time.Now()
					fn(ctx, w, item)
					m.busyUS[w].Add(time.Since(start).Microseconds())
				} else {
					fn(ctx, w, item)
				}
			}
		}(w)
	}
	wg.Wait()
	return st
}

// next takes the worker's own front item, or failing that steals from
// the back of the most loaded other shard. Returns ok=false only when
// every deque was empty at scan time — terminal, since nothing is ever
// re-enqueued. depth is the source deque's remaining size.
func next(dq []*deque, own int) (item, from, depth int, ok bool) {
	if it, d, popped := dq[own].popFront(); popped {
		return it, own, d, true
	}
	// Steal from the most loaded shard so stealing also rebalances.
	victim, best := -1, 0
	for s := range dq {
		if s == own {
			continue
		}
		if n := dq[s].size(); n > best {
			victim, best = s, n
		}
	}
	if victim >= 0 {
		if it, d, stole := dq[victim].stealBack(); stole {
			return it, victim, d, true
		}
	}
	// The sized scan raced with other thieves; fall back to a direct
	// sweep before declaring the pool drained.
	for off := 1; off < len(dq); off++ {
		s := (own + off) % len(dq)
		if it, d, stole := dq[s].stealBack(); stole {
			return it, s, d, true
		}
	}
	return 0, 0, 0, false
}

// Gate bounds how many workers may occupy one pipeline stage at once,
// so each backing service (listing server, code host, gateway) sees
// tunable pressure regardless of total worker count. It doubles as the
// stage's throughput meter.
type Gate struct {
	name  string
	limit int
	sem   chan struct{}

	mu          sync.Mutex
	items       int64
	busy        time.Duration
	first       time.Time
	last        time.Time
	inflight    int
	maxInflight int
}

// NewGate creates a gate admitting at most limit concurrent holders.
func NewGate(name string, limit int) *Gate {
	if limit <= 0 {
		limit = 1
	}
	return &Gate{name: name, limit: limit, sem: make(chan struct{}, limit)}
}

// Limit reports the gate's admission bound.
func (g *Gate) Limit() int { return g.limit }

// Acquire blocks until a slot frees or ctx is cancelled, returning the
// release func for the slot. Release is idempotent.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case g.sem <- struct{}{}:
	}
	start := time.Now()
	g.mu.Lock()
	if g.first.IsZero() {
		g.first = start
	}
	g.inflight++
	if g.inflight > g.maxInflight {
		g.maxInflight = g.inflight
	}
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			end := time.Now()
			g.mu.Lock()
			g.items++
			g.busy += end.Sub(start)
			g.last = end
			g.inflight--
			g.mu.Unlock()
			<-g.sem
		})
	}, nil
}

// GateStats is one stage's throughput accounting. BusyMS sums the
// span each holder occupied a slot (so BusyMS can exceed WallMS when
// the stage ran concurrently); WallMS spans first acquire to last
// release; ItemsPerSec is items over wall time.
type GateStats struct {
	Stage       string  `json:"stage"`
	Limit       int     `json:"limit"`
	Items       int64   `json:"items"`
	BusyMS      float64 `json:"busy_ms"`
	WallMS      float64 `json:"wall_ms"`
	ItemsPerSec float64 `json:"items_per_sec"`
	MaxInflight int     `json:"max_inflight"`
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := GateStats{
		Stage:       g.name,
		Limit:       g.limit,
		Items:       g.items,
		BusyMS:      float64(g.busy) / float64(time.Millisecond),
		MaxInflight: g.maxInflight,
	}
	if !g.first.IsZero() && g.last.After(g.first) {
		wall := g.last.Sub(g.first)
		s.WallMS = float64(wall) / float64(time.Millisecond)
		s.ItemsPerSec = float64(g.items) / wall.Seconds()
	}
	return s
}
