package sched

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func TestPartitionCoversEveryItemOnce(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 8}, {5, 5}, {3, 10}, {20915, 8},
	} {
		shards := Partition(tc.n, tc.k)
		seen := make(map[int]bool)
		for _, sh := range shards {
			for _, it := range sh {
				if seen[it] {
					t.Fatalf("n=%d k=%d: item %d appears twice", tc.n, tc.k, it)
				}
				seen[it] = true
			}
		}
		if len(seen) != tc.n {
			t.Fatalf("n=%d k=%d: covered %d items", tc.n, tc.k, len(seen))
		}
		// Near-equal: sizes differ by at most one.
		min, max := tc.n, 0
		for _, sh := range shards {
			if len(sh) < min {
				min = len(sh)
			}
			if len(sh) > max {
				max = len(sh)
			}
		}
		if tc.n > 0 && max-min > 1 {
			t.Errorf("n=%d k=%d: shard sizes range %d..%d", tc.n, tc.k, min, max)
		}
	}
}

func TestPartitionDegenerateShardCount(t *testing.T) {
	if got := len(Partition(10, 0)); got != 1 {
		t.Errorf("k=0 should clamp to one shard, got %d", got)
	}
	if got := len(Partition(3, 8)); got != 3 {
		t.Errorf("k>n should clamp to n shards, got %d", got)
	}
}

// TestWorkStealingFairness loads one shard far more heavily than the
// rest: idle workers must steal, every item must run exactly once, and
// every worker must end up with a share of the load.
func TestWorkStealingFairness(t *testing.T) {
	shards := [][]int{
		make([]int, 120), // heavily loaded
		{120, 121, 122, 123},
		{124, 125},
		{126},
	}
	for i := range shards[0] {
		shards[0][i] = i
	}
	total := 127
	counts := make([]int64, total)
	st := Run(context.Background(), shards, 4, func(_ context.Context, _, item int) {
		atomic.AddInt64(&counts[item], 1)
		time.Sleep(200 * time.Microsecond) // give thieves time to drain their own shard
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d executed %d times", i, c)
		}
	}
	var exec int64
	for _, e := range st.Executed {
		exec += e
	}
	if exec != int64(total) {
		t.Fatalf("executed %d of %d", exec, total)
	}
	if st.Steals == 0 {
		t.Error("skewed shards produced zero steals")
	}
	if st.Stolen[0] == 0 {
		t.Error("nothing stolen from the loaded shard")
	}
	for w, n := range st.PerWorker {
		if n == 0 {
			t.Errorf("worker %d sat idle while shard 0 held %d items", w, len(shards[0]))
		}
	}
}

// TestGateBoundsConcurrency drives many workers through a narrow gate
// and asserts (under -race) the occupancy bound holds.
func TestGateBoundsConcurrency(t *testing.T) {
	const limit = 3
	g := NewGate("collect", limit)
	var inflight, peak int64
	shards := Partition(60, 6)
	Run(context.Background(), shards, 12, func(ctx context.Context, _, _ int) {
		rel, err := g.Acquire(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		cur := atomic.AddInt64(&inflight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&inflight, -1)
		rel()
	})
	if peak > limit {
		t.Fatalf("observed %d concurrent holders, gate limit %d", peak, limit)
	}
	st := g.Stats()
	if st.Items != 60 {
		t.Errorf("gate items = %d", st.Items)
	}
	if st.MaxInflight > limit {
		t.Errorf("gate max inflight = %d > limit %d", st.MaxInflight, limit)
	}
	if st.BusyMS <= 0 || st.WallMS <= 0 || st.ItemsPerSec <= 0 {
		t.Errorf("gate stats not populated: %+v", st)
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate("x", 1)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a second slot
	if st := g.Stats(); st.Items != 1 {
		t.Errorf("items = %d after double release", st.Items)
	}
	if _, err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestGateAcquireHonoursCancel(t *testing.T) {
	g := NewGate("x", 1)
	rel, _ := g.Acquire(context.Background())
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(ctx); err == nil {
		t.Fatal("acquire on a full gate with cancelled ctx should fail")
	}
}

func TestRunStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done int64
	var once sync.Once
	st := Run(ctx, Partition(1000, 4), 4, func(ctx context.Context, _, _ int) {
		atomic.AddInt64(&done, 1)
		once.Do(cancel)
	})
	if done == 0 {
		t.Fatal("nothing executed")
	}
	var exec int64
	for _, e := range st.Executed {
		exec += e
	}
	if exec >= 1000 {
		t.Error("cancellation did not stop the scheduler early")
	}
}

// TestRunDeterministicCoverage: regardless of scheduling, the set of
// executed items is exactly the input set — the property the executor
// parity test builds on.
func TestRunDeterministicCoverage(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		n := 257
		var mu sync.Mutex
		got := make(map[int]int)
		Run(context.Background(), Partition(n, 5), 9, func(_ context.Context, _, item int) {
			mu.Lock()
			got[item]++
			mu.Unlock()
		})
		if len(got) != n {
			t.Fatalf("trial %d: %d distinct items", trial, len(got))
		}
		for it, c := range got {
			if c != 1 {
				t.Fatalf("trial %d: item %d ran %d times", trial, it, c)
			}
		}
	}
}

// TestRunHookedPublishesMetricsAndTraceEvents drives a skewed workload
// through RunHooked and asserts the live registry instruments and the
// tracer's shard-track events agree exactly with the run's Stats.
func TestRunHookedPublishesMetricsAndTraceEvents(t *testing.T) {
	shards := [][]int{
		make([]int, 80), // heavily loaded
		{80, 81},
		{82},
		{83},
	}
	for i := range shards[0] {
		shards[0][i] = i
	}
	total := 84
	reg := obs.NewRegistry()
	tr := trace.New("run-hooked", len(shards), trace.LevelBots)
	st := RunHooked(context.Background(), shards, 4, func(_ context.Context, _, _ int) {
		time.Sleep(200 * time.Microsecond)
	}, Hooks{Obs: reg, Tracer: tr, Stage: "sharded"})

	if st.Steals == 0 {
		t.Fatal("skewed shards produced zero steals")
	}
	if got := reg.Counter("sched_steals_total").Value(); got != st.Steals {
		t.Errorf("sched_steals_total = %d, want %d", got, st.Steals)
	}
	var execMetric int64
	for s := range shards {
		label := `{shard="` + strconv.Itoa(s) + `"}`
		execMetric += reg.Counter("sched_shard_executed_total" + label).Value()
		if got := reg.Counter("sched_shard_stolen_total" + label).Value(); got != st.Stolen[s] {
			t.Errorf("shard %d stolen metric = %d, want %d", s, got, st.Stolen[s])
		}
	}
	if execMetric != int64(total) {
		t.Errorf("executed metrics sum %d, want %d", execMetric, total)
	}
	var busy int64
	for w := 0; w < st.Workers; w++ {
		busy += reg.Counter(`sched_worker_busy_us_total{worker="` + strconv.Itoa(w) + `"}`).Value()
	}
	if busy == 0 {
		t.Error("worker busy time not accounted")
	}

	steals, depths := 0, 0
	for _, op := range tr.Ops() {
		switch {
		case op.Kind == trace.KindInstant && op.Name == "steal":
			steals++
			if op.Stage != "sharded" {
				t.Errorf("steal instant carries stage %q", op.Stage)
			}
		case op.Kind == trace.KindCounter && op.Name == "queue_depth":
			depths++
		}
	}
	if int64(steals) != st.Steals {
		t.Errorf("traced %d steals, stats say %d", steals, st.Steals)
	}
	if depths != total {
		t.Errorf("traced %d depth samples, want one per item (%d)", depths, total)
	}
}

// TestRunHookedZeroHooksMatchesRun keeps the hookless path identical.
func TestRunHookedZeroHooksMatchesRun(t *testing.T) {
	shards := Partition(50, 4)
	counts := make([]int64, 50)
	st := RunHooked(context.Background(), shards, 0, func(_ context.Context, _, item int) {
		atomic.AddInt64(&counts[item], 1)
	}, Hooks{})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d executed %d times", i, c)
		}
	}
	if st.Workers != 4 {
		t.Errorf("workers defaulted to %d, want shard count 4", st.Workers)
	}
}
