package core

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/report"
)

// TestRunAllEmitsCorrelatedJournal is the issue's acceptance check: one
// full pipeline run must leave a journal with at least one correlated
// event per stage — crawl, traceability, code analysis, honeypot — all
// stamped with the run's ID, and the journal must replay into a per-bot
// timeline.
func TestRunAllEmitsCorrelatedJournal(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	j := journal.New(&buf, journal.Options{Obs: reg})
	a, err := NewAuditor(Options{
		Seed:    23,
		NumBots: 80,
		Honeypot: HoneypotOptions{
			Sample:      5,
			Concurrency: 4,
			Settle:      200 * time.Millisecond,
		},
		Obs:     reg,
		Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	res, err := a.RunAllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.RunID == "" {
		t.Fatal("no run ID minted")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	events, skipped, err := journal.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if skipped != 0 {
		t.Errorf("journal has %d undecodable lines", skipped)
	}
	if len(events) == 0 {
		t.Fatal("journal is empty")
	}

	// One correlated event per stage. The map value records whether that
	// kind must also carry bot correlation.
	perStage := map[journal.Kind]bool{
		journal.KindPageFetched:       false, // crawl
		journal.KindBotDiscovered:     true,  // crawl
		journal.KindPolicyAudited:     true,  // traceability
		journal.KindCodeFlag:          true,  // code analysis
		journal.KindExperimentStarted: true,  // honeypot
		journal.KindExperimentSettled: true,  // honeypot
		journal.KindStageStarted:      false,
		journal.KindStageCompleted:    false,
	}
	sum := journal.Summarize(events)
	for kind, wantBot := range perStage {
		matching := journal.Filter(events, journal.Query{Kind: kind})
		if len(matching) == 0 {
			t.Errorf("no %s events in journal", kind)
			continue
		}
		for _, e := range matching {
			if e.RunID != res.RunID {
				t.Errorf("%s event run ID = %q, want %q", kind, e.RunID, res.RunID)
				break
			}
		}
		if wantBot && matching[0].BotID == 0 {
			t.Errorf("%s events carry no bot correlation", kind)
		}
	}
	if len(sum.Runs) != 1 || sum.Runs[0] != res.RunID {
		t.Errorf("summary runs = %v, want exactly %q", sum.Runs, res.RunID)
	}
	if sum.Bots == 0 {
		t.Error("summary correlates no bots")
	}
	if sum.Experiments == 0 {
		t.Error("summary correlates no experiments")
	}

	// The stage brackets cover every pipeline stage.
	stages := map[string]bool{}
	for _, e := range journal.Filter(events, journal.Query{Kind: journal.KindStageCompleted}) {
		if s, ok := e.Fields["stage"].(string); ok {
			stages[s] = true
		}
	}
	for _, want := range []string{"collect", "traceability", "codeanalysis", "honeypot", "vetting"} {
		if !stages[want] {
			t.Errorf("no stage_completed event for %q", want)
		}
	}

	// The journal replays into a per-bot timeline naming real bots.
	var timeline bytes.Buffer
	report.JournalTimeline(&timeline, events)
	out := timeline.String()
	if !strings.Contains(out, "Journal timeline:") {
		t.Fatalf("timeline did not render:\n%s", out)
	}
	settled := journal.Filter(events, journal.Query{Kind: journal.KindExperimentSettled})
	if len(settled) > 0 && !strings.Contains(out, settled[0].Bot) {
		t.Errorf("timeline does not mention experimented bot %q", settled[0].Bot)
	}
}

// TestAuditorOperationalSurface verifies the listing server answers the
// liveness/readiness probes and exposes pprof next to /metrics.
func TestAuditorOperationalSurface(t *testing.T) {
	a := newSmallAuditor(t, 10)
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/pprof/heap"} {
		resp, err := http.Get(a.ListingURL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s returned an empty body", path)
		}
	}
}
