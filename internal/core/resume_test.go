package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/retry"
)

// triggeredNames flattens the honeypot triggered set for comparison.
func triggeredNames(r *Results) []string {
	out := make([]string, 0, len(r.Honeypot.Triggered))
	for _, v := range r.Honeypot.Triggered {
		out = append(out, v.Subject.Name)
	}
	sort.Strings(out)
	return out
}

// TestKillResumeConvergesToBaseline is the crash-safety acceptance
// test: the pipeline is SIGKILL'd (run context cancelled by a
// faults.AbortInjector wired to the checkpoint store's AfterSave, so
// the "process death" lands right after a snapshot is durable) at
// three different checkpoints, resumed each time, and the eventual
// Results must match an uninterrupted zero-fault baseline — with zero
// settled (bot, stage) pairs re-executed, verified by work_skipped
// journal accounting on every resumed attempt.
func TestKillResumeConvergesToBaseline(t *testing.T) {
	const (
		seed   = 7
		bots   = 60
		sample = 6
	)
	newOpts := func() Options {
		return Options{
			Seed:    seed,
			NumBots: bots,
			Honeypot: HoneypotOptions{
				Sample:      sample,
				Concurrency: 4,
				Settle:      300 * time.Millisecond,
			},
			Obs: obs.NewRegistry(),
		}
	}

	base := func() *Results {
		a, err := NewAuditor(newOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		return runAll(t, a)
	}()

	st, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Die at the 1st, 2nd, and 3rd checkpoint write of successive
	// attempts; the fourth attempt runs to completion.
	kills := []int{1, 2, 3}
	var final *Results
	firstRunID := ""
	resumeFrom := ""
	for attempt := 0; ; attempt++ {
		if attempt > len(kills)+3 {
			t.Fatalf("pipeline did not converge after %d attempts", attempt)
		}
		opts := newOpts()
		opts.Checkpoint = CheckpointOptions{Store: st, Every: 3, Resume: resumeFrom}
		var buf bytes.Buffer
		jnl := journal.New(&buf, journal.Options{Obs: opts.Obs})
		opts.Journal = jnl

		// The settled work this attempt must NOT re-execute.
		var snap *checkpoint.Snapshot
		if resumeFrom != "" {
			if snap, err = st.Latest(); err != nil {
				t.Fatal(err)
			}
		}

		a, err := NewAuditor(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		var ab *faults.AbortInjector
		if attempt < len(kills) {
			ab = faults.NewAbort(kills[attempt], cancel)
		}
		st.AfterSave = func(*checkpoint.Snapshot) { ab.Tick() }
		res, runErr := a.RunAllContext(ctx)
		st.AfterSave = nil
		cancel()
		a.Close()
		if err := jnl.Close(); err != nil {
			t.Fatal(err)
		}
		events, _, err := journal.Decode(&buf)
		if err != nil {
			t.Fatalf("attempt %d journal: %v", attempt, err)
		}

		if snap != nil {
			verifyNoReexecution(t, attempt, snap, events)
		}
		if firstRunID == "" {
			got, err := st.Latest()
			if err != nil {
				t.Fatalf("attempt %d wrote no snapshot: %v", attempt, err)
			}
			firstRunID = got.RunID
		}

		if runErr == nil {
			final = res
			break
		}
		if !errors.Is(runErr, context.Canceled) {
			t.Fatalf("attempt %d died with %v, want the injected abort (context.Canceled)", attempt, runErr)
		}
		if !ab.Fired() {
			t.Fatalf("attempt %d aborted without the injector firing", attempt)
		}
		resumeFrom = ResumeLatest
	}

	if final.RunID != firstRunID {
		t.Fatalf("resumed run minted a new run ID %s, want the original %s", final.RunID, firstRunID)
	}
	if !reflect.DeepEqual(final.Records, base.Records) {
		t.Fatal("resumed run's records diverged from the uninterrupted baseline")
	}
	if !reflect.DeepEqual(final.Table2, base.Table2) {
		t.Fatalf("resumed Table2 diverged: %+v vs %+v", final.Table2, base.Table2)
	}
	if !reflect.DeepEqual(final.DataTypes, base.DataTypes) {
		t.Fatal("resumed data-type analysis diverged from baseline")
	}
	if !reflect.DeepEqual(final.Code, base.Code) {
		t.Fatal("resumed code-analysis result diverged from baseline")
	}
	if final.Honeypot.Tested != base.Honeypot.Tested {
		t.Fatalf("resumed Tested = %d, baseline %d", final.Honeypot.Tested, base.Honeypot.Tested)
	}
	if got, want := triggeredNames(final), triggeredNames(base); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed triggered set %v, baseline %v", got, want)
	}
	if len(final.Quarantined) != 0 || len(base.Quarantined) != 0 {
		t.Fatalf("zero-fault runs must not quarantine (final %d, base %d)",
			len(final.Quarantined), len(base.Quarantined))
	}

	// The final snapshot is marked complete and holds the whole run.
	last, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if !last.Completed {
		t.Fatal("final snapshot not marked Completed")
	}
	if len(last.Records) != len(base.Records) {
		t.Fatalf("final snapshot has %d records, baseline %d", len(last.Records), len(base.Records))
	}
}

// verifyNoReexecution checks one resumed attempt's journal against the
// snapshot it resumed from: every settled (bot, stage) pair must show
// up as work_skipped, and none may appear as fresh work.
func verifyNoReexecution(t *testing.T, attempt int, snap *checkpoint.Snapshot, events []journal.Event) {
	t.Helper()
	settledCollect := make(map[int]bool)
	for _, r := range snap.Records {
		settledCollect[r.ID] = true
	}
	for _, q := range snap.CollectQuarantine {
		settledCollect[q.BotID] = true
	}
	settledHP := make(map[int]bool)
	for _, v := range snap.Verdicts {
		settledHP[v.Subject.ListingID] = true
	}
	for _, q := range snap.HoneypotQuarantine {
		settledHP[q.BotID] = true
	}

	skips := map[string]int{}
	resumedEvents := 0
	for _, e := range events {
		switch e.Kind {
		case journal.KindRunResumed:
			resumedEvents++
			if got, want := e.Fields["settled"], float64(snap.Settled()); got != want {
				t.Errorf("attempt %d run_resumed settled = %v, want %v", attempt, got, want)
			}
		case journal.KindWorkSkipped:
			skips[e.Fields["stage"].(string)]++
		case journal.KindBotDiscovered:
			if settledCollect[e.BotID] {
				t.Errorf("attempt %d re-executed settled collect work for bot %d", attempt, e.BotID)
			}
		case journal.KindExperimentStarted:
			if settledHP[e.BotID] {
				t.Errorf("attempt %d re-ran settled experiment for bot %d", attempt, e.BotID)
			}
		}
	}
	if resumedEvents != 1 {
		t.Errorf("attempt %d journaled %d run_resumed events, want 1", attempt, resumedEvents)
	}
	if got, want := skips["collect"], len(settledCollect); got != want {
		t.Errorf("attempt %d collect work_skipped = %d, want %d (one per settled bot)", attempt, got, want)
	}
	if got, want := skips["honeypot"], len(settledHP); got != want {
		t.Errorf("attempt %d honeypot work_skipped = %d, want %d", attempt, got, want)
	}
	if got, min := skips["codeanalysis"], len(snap.CodeLinks)+len(snap.CodeLinkErrs); got < min {
		t.Errorf("attempt %d codeanalysis work_skipped = %d, want >= %d settled links", attempt, got, min)
	}
}

// TestBreakerFailFastDeterministic: a single persistently failing
// detail endpoint trips the /bot endpoint-class breaker, the remaining
// bots in the class fail fast on ErrBreakerOpen instead of burning
// retry schedules, and — under a fixed fault seed and one crawl
// worker — the transition sequence and quarantine set replay
// identically.
func TestBreakerFailFastDeterministic(t *testing.T) {
	run := func() (trans []string, quarantine []string, res *Results) {
		prof, err := faults.Named("none")
		if err != nil {
			t.Fatal(err)
		}
		prof.PerEndpoint = map[string]faults.Rates{"/bot/99": {ServerError: 1}}
		inj := faults.New(prof, 9, faults.Options{})

		var mu sync.Mutex
		bs := retry.NewBreakerSet(retry.BreakerConfig{
			Window:      8,
			MinSamples:  4,
			FailureRate: 0.5,
			OpenFor:     time.Hour, // never recovers within the run
		}, retry.BreakerOptions{
			Obs: obs.NewRegistry(),
			OnTransition: func(key string, from, to retry.BreakerState) {
				// Strip the listener host: the port changes run to run.
				if i := strings.Index(key, " "); i >= 0 {
					key = key[i:]
				}
				mu.Lock()
				trans = append(trans, fmt.Sprintf("%s %s->%s", key, from, to))
				mu.Unlock()
			},
		})
		a, err := NewAuditor(Options{
			Seed:    7,
			NumBots: 120,
			Honeypot: HoneypotOptions{
				Sample:      4,
				Concurrency: 4,
				Settle:      200 * time.Millisecond,
			},
			Scrape:   ScrapeOptions{Workers: 1}, // sequential crawl: deterministic breaker history
			Faults:   FaultOptions{Injector: inj},
			Breakers: BreakerOptions{Set: bs},
			Obs:      obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		res = runAll(t, a)
		// The breaker key embeds the listener address; blank the port so
		// the two runs compare on substance.
		addr := strings.TrimPrefix(a.ListingURL(), "http://")
		for _, q := range res.Quarantined {
			quarantine = append(quarantine,
				strings.ReplaceAll(quarantineKey(q)+"/"+q.Err.Error(), addr, "HOST"))
		}
		sort.Strings(quarantine)
		return trans, quarantine, res
	}

	t1, q1, res1 := run()
	t2, q2, _ := run()

	if want := []string{" /bot closed->open"}; !reflect.DeepEqual(t1, want) {
		t.Fatalf("breaker transitions = %v, want %v", t1, want)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("breaker transitions differ between identical runs: %v vs %v", t1, t2)
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatalf("quarantine sets differ between identical runs:\n%v\nvs\n%v", q1, q2)
	}

	// Bot 99 exhausted real retries; everyone after it short-circuited.
	failFast, found99 := 0, false
	for _, q := range res1.Quarantined {
		if q.Stage != "collect" {
			continue
		}
		if q.BotID == 99 {
			found99 = true
		}
		if strings.Contains(q.Err.Error(), retry.ErrBreakerOpen.Error()) {
			failFast++
			if !isInfra(q.Err) {
				t.Errorf("breaker quarantine for bot %d is not an infrastructure error: %v", q.BotID, q.Err)
			}
		}
	}
	if !found99 {
		t.Fatal("the always-503 bot 99 was not quarantined")
	}
	if failFast == 0 {
		t.Fatal("no bot failed fast on the open breaker")
	}
	// Only bot 99's four attempts ever reached the network: the breaker
	// kept every short-circuited bot out of the fault log entirely.
	if len(res1.FaultLog) != 4 {
		t.Fatalf("fault log has %d entries, want exactly bot 99's 4 failed attempts", len(res1.FaultLog))
	}
}

// TestStageWatchdogStalls: a stage running past StageSoftDeadline is
// cancelled with ErrStageStalled and leaves a stage_stalled journal
// event carrying a goroutine dump.
func TestStageWatchdogStalls(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	jnl := journal.New(&buf, journal.Options{Obs: reg})
	a, err := NewAuditor(Options{
		Seed:    7,
		NumBots: 2000, // far more than 1ms of crawling
		Honeypot: HoneypotOptions{
			Sample: 2,
			Settle: 100 * time.Millisecond,
		},
		Journal: jnl,
		Exec:    ExecOptions{StageSoftDeadline: time.Millisecond},
		Obs:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res, err := a.RunAllContext(context.Background())
	if err == nil {
		t.Fatal("a 1ms soft deadline must stall the collect stage")
	}
	if !errors.Is(err, ErrStageStalled) {
		t.Fatalf("err = %v, want ErrStageStalled", err)
	}
	if res != nil {
		t.Fatal("a stalled run must not return results")
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	events, _, err := journal.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stalled := 0
	for _, e := range events {
		if e.Kind != journal.KindStageStalled {
			continue
		}
		stalled++
		if e.Fields["stage"] != "collect" {
			t.Errorf("stage_stalled stage = %v, want collect", e.Fields["stage"])
		}
		dump, _ := e.Fields["goroutines"].(string)
		if !strings.Contains(dump, "goroutine") {
			t.Error("stage_stalled carries no goroutine dump")
		}
	}
	if stalled == 0 {
		t.Fatal("no stage_stalled event journaled")
	}
}

// TestStageBudgetSurfaced: with StageRetryBudget set, the per-stage
// remainders appear in Degradation and render as the trace table's
// "Budget left" column; unbudgeted stages render "-".
func TestStageBudgetSurfaced(t *testing.T) {
	a, err := NewAuditor(Options{
		Seed:    7,
		NumBots: 40,
		Honeypot: HoneypotOptions{
			Sample:      3,
			Concurrency: 4,
			Settle:      200 * time.Millisecond,
		},
		Exec: ExecOptions{StageRetryBudget: 50},
		Obs:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := runAll(t, a)
	if got := res.Degradation["collect"].BudgetLeft; got < 0 || got > 50 {
		t.Fatalf("collect BudgetLeft = %d, want 0..50", got)
	}
	if got := res.Degradation["codeanalysis"].BudgetLeft; got < 0 || got > 50 {
		t.Fatalf("codeanalysis BudgetLeft = %d, want 0..50", got)
	}
	if got := res.Degradation["honeypot"].BudgetLeft; got != -1 {
		t.Fatalf("honeypot BudgetLeft = %d, want -1 (unbudgeted)", got)
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "Budget left") {
		t.Fatal("report's stage table lacks the Budget left column")
	}
}
