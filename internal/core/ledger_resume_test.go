package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// TestLedgeredJournalSurvivesKillResume is the evidence-preservation
// acceptance test: a pipeline run journaling in merkle ledger mode is
// aborted mid-run, resumed from its checkpoint, and run to completion —
// onto the SAME journal file. The pre-kill journal must survive
// byte-for-byte (Open used to os.Create and destroy it on -resume), the
// resumed segment must re-anchor the hash chain on the prior segment's
// head, and the finished file must verify end-to-end across the
// segment boundary with zero pre-kill events lost.
func TestLedgeredJournalSurvivesKillResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "run.jsonl")
	st, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	newOpts := func() Options {
		return Options{
			Seed:    7,
			NumBots: 60,
			Honeypot: HoneypotOptions{
				Sample:      6,
				Concurrency: 4,
				Settle:      300 * time.Millisecond,
			},
			Obs: obs.NewRegistry(),
		}
	}

	kills := []int{2}
	resumeFrom := ""
	var prefix []byte
	var preKill int
	attempts := 0
	for attempt := 0; ; attempt++ {
		if attempt > len(kills)+3 {
			t.Fatalf("pipeline did not converge after %d attempts", attempt)
		}
		attempts++
		opts := newOpts()
		opts.Checkpoint = CheckpointOptions{Store: st, Every: 3, Resume: resumeFrom}
		jnl, err := journal.Open(jpath, journal.Options{
			Obs:    opts.Obs,
			Resume: attempt > 0,
			Ledger: journal.LedgerOptions{Mode: journal.LedgerMerkle, Batch: 8},
		})
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if attempt > 0 {
			if ls := jnl.Ledger(); !ls.Resumed || ls.PriorEvents == 0 {
				t.Fatalf("attempt %d did not re-anchor on the prior segment: %+v", attempt, ls)
			}
		}
		opts.Journal = jnl

		a, err := NewAuditor(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		var ab *faults.AbortInjector
		if attempt < len(kills) {
			ab = faults.NewAbort(kills[attempt], cancel)
		}
		st.AfterSave = func(*checkpoint.Snapshot) { ab.Tick() }
		_, runErr := a.RunAllContext(ctx)
		st.AfterSave = nil
		cancel()
		a.Close()
		if err := jnl.Close(); err != nil {
			t.Fatal(err)
		}

		if attempt == 0 {
			// Snapshot the pre-kill evidence for the append-only check.
			if prefix, err = os.ReadFile(jpath); err != nil {
				t.Fatal(err)
			}
			events, _, err := journal.Decode(bytes.NewReader(prefix))
			if err != nil {
				t.Fatal(err)
			}
			preKill = len(events)
			if preKill == 0 {
				t.Fatal("aborted attempt journaled no events; kill landed too early to test anything")
			}
		}

		if runErr == nil {
			break
		}
		if !errors.Is(runErr, context.Canceled) {
			t.Fatalf("attempt %d died with %v, want the injected abort", attempt, runErr)
		}
		resumeFrom = ResumeLatest
	}

	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, prefix) {
		t.Fatal("resume rewrote or truncated the pre-kill journal (append-only violated)")
	}

	res, err := journal.VerifyFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("killed-and-resumed journal does not verify: %s", res.Err)
	}
	if res.Segments != attempts {
		t.Errorf("segments = %d, want one per attempt (%d)", res.Segments, attempts)
	}

	events, skipped, err := journal.Decode(bytes.NewReader(raw))
	if err != nil || skipped != 0 {
		t.Fatalf("decode: err=%v skipped=%d", err, skipped)
	}
	if len(events) < preKill {
		t.Fatalf("final journal has %d events, fewer than the %d pre-kill ones", len(events), preKill)
	}
	// The resumed attempts journaled run_resumed events stamped with
	// the ledger anchor, tying checkpoint resume and chain re-anchoring
	// together in-band.
	resumed := 0
	for _, e := range events {
		if e.Kind != journal.KindRunResumed {
			continue
		}
		resumed++
		if e.Fields["ledger_mode"] != string(journal.LedgerMerkle) {
			t.Errorf("run_resumed ledger_mode = %v", e.Fields["ledger_mode"])
		}
		if seq, _ := e.Fields["ledger_anchor_seq"].(float64); seq <= 0 {
			t.Errorf("run_resumed ledger_anchor_seq = %v, want > 0", e.Fields["ledger_anchor_seq"])
		}
	}
	if resumed != attempts-1 {
		t.Errorf("run_resumed events = %d, want %d (one per resumed attempt)", resumed, attempts-1)
	}
}
