// Package core wires the reproduction together into the paper's
// Figure 1 pipeline: data collection over the listing site,
// keyword-based traceability analysis of the collected privacy
// policies, static code analysis of the linked repositories, and
// dynamic honeypot analysis of the most-voted bots — all running
// against in-process but socket-real services.
//
// The Auditor owns the full infrastructure (listing server, code host,
// messaging platform + gateway, canary trigger service) so a single
// call sequence reproduces the paper end to end:
//
//	a, _ := core.NewAuditor(core.Options{Seed: 1, NumBots: 2000})
//	defer a.Close()
//	res, _ := a.RunAllContext(ctx)
//	res.Report(os.Stdout)
//
// Two executors share the same per-bot machinery: the default
// sequential one runs the four stages as whole-population batches, and
// the sharded one (Options.Exec.Shards >= 1) carries each bot through
// collect → traceability → code analysis → honeypot on a work-stealing
// scheduler with per-stage concurrency gates.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/canary"
	"repro/internal/checkpoint"
	"repro/internal/codeanalysis"
	"repro/internal/codehost"
	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/honeypot"
	"repro/internal/listing"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/ops"
	bottrace "repro/internal/obs/trace"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/retry"
	"repro/internal/scraper"
	"repro/internal/synth"
	"repro/internal/traceability"
	"repro/internal/vetting"
)

// ScrapeOptions groups the collection-stage knobs.
type ScrapeOptions struct {
	// AntiScrape configures the listing site's defences; zero value
	// disables them for fast runs.
	AntiScrape listing.AntiScrape
	// Timeout bounds each scraper fetch (default 500ms — shorter than
	// the slow-redirect delay, as the paper's timeouts were).
	Timeout time.Duration
	// Workers is the crawl parallelism (default 8). The sharded
	// executor uses Exec.StageWorkers.Collect instead.
	Workers int
	// Solver answers captchas for both the scraper and the honeypot
	// installer; defaults to a TwoCaptchaSim.
	Solver scraper.Solver
}

// HoneypotOptions groups the dynamic-analysis knobs.
type HoneypotOptions struct {
	// Sample is how many most-voted bots the dynamic analysis tests
	// (default: the paper's 500, capped at the population).
	Sample int
	// Concurrency bounds simultaneous guild experiments in the
	// sequential executor (default 8); the sharded executor uses
	// Exec.StageWorkers.Honeypot.
	Concurrency int
	// Settle is the per-bot trigger-watch window (default 500ms).
	Settle time.Duration
}

// StageWorkers bounds the sharded executor's per-stage concurrency:
// how many workers may simultaneously occupy each stage's gate, i.e.
// how much pressure the listing server, code host, and gateway each
// see. Zero fields default to Exec.Shards.
type StageWorkers struct {
	Collect  int
	Code     int
	Honeypot int
}

// ExecOptions selects and tunes the pipeline executor.
type ExecOptions struct {
	// Strict restores fail-fast semantics: the first stage-level or
	// per-bot failure aborts the pipeline instead of quarantining the
	// bot and continuing with partial results.
	Strict bool
	// Shards switches RunAllContext to the sharded work-stealing
	// executor with that many shards: each worker carries one bot
	// through all four stages, stealing from loaded shards when its
	// own drains. Zero (the default) keeps the sequential
	// stage-at-a-time executor.
	Shards int
	// StageWorkers bounds per-stage concurrency under the sharded
	// executor; zero fields default to Shards.
	StageWorkers StageWorkers
	// StageSoftDeadline, when positive, arms a watchdog over each
	// pipeline stage: a stage running past the deadline gets a
	// stage_stalled journal event carrying a full goroutine dump, then
	// its context is cancelled with ErrStageStalled as the cause.
	// Under the sharded executor stages share one wall-clock window,
	// so the deadline spans the whole pipelined phase.
	StageSoftDeadline time.Duration
	// StageRetryBudget, when positive, gives each network stage
	// (collect, codeanalysis) its own shared retry budget of that many
	// retries, surfaced as the trace table's "Budget left" column and
	// persisted across checkpoint/resume. Zero keeps the historical
	// per-fetch pools.
	StageRetryBudget int
}

// TraceOptions configures the per-bot tracing layer: a span per bot
// per stage plus (at full level) sub-operation spans, collected into
// per-shard buffers and exported as a JSONL span log, a
// Perfetto-loadable Chrome trace, and the profile.json timing artifact
// that seeds the steal-aware partitioner.
type TraceOptions struct {
	// Level selects recording depth: off (default, near-zero cost),
	// bots (one span per bot per stage + scheduler events), or full
	// (adds sub-operation spans: page fetches, retries, captcha solves,
	// invite redirects, policy audits, honeypot settles, codehost
	// fetches).
	Level bottrace.Level
	// Tracer overrides the run-built tracer (tests and benchmarks).
	Tracer *bottrace.Tracer
}

// FaultOptions configures deterministic fault injection. When enabled
// the injector is installed as middleware on the listing server and
// code host and as the gateway's event-fault policy, so the whole
// pipeline runs against a deterministically misbehaving substrate.
type FaultOptions struct {
	// Profile names a built-in fault profile (faults.Names()); empty
	// disables injection.
	Profile string
	// Seed drives the injector; same seed + profile replays the same
	// fault ledger.
	Seed int64
	// Injector overrides Profile/Seed with a prebuilt injector.
	Injector *faults.Injector
}

// BreakerOptions configures per-endpoint-class circuit breakers around
// the scraper, code-host, and gateway transports: persistently failing
// endpoints short-circuit (and quarantine their bots fast) instead of
// burning full retry schedules.
type BreakerOptions struct {
	// Enabled builds a breaker set from Config, reporting to the
	// auditor's registry and journal.
	Enabled bool
	// Config tunes the breakers built when Enabled; zero uses the
	// retry package defaults.
	Config retry.BreakerConfig
	// Set overrides Enabled/Config with a prebuilt breaker set.
	Set *retry.BreakerSet
}

// Options configures an Auditor. Identity fields (Seed, NumBots,
// Ecosystem) sit at the top level; everything else is grouped by
// subsystem so cmd/botscan collapses to one constructor call.
type Options struct {
	// Seed drives every generator; equal seeds give equal ecosystems.
	Seed int64
	// NumBots is the listing population (default: the paper's 20,915).
	NumBots int
	// Ecosystem overrides generation with a prebuilt population.
	Ecosystem *synth.Ecosystem

	// Scrape tunes stage 1 (collection).
	Scrape ScrapeOptions
	// Honeypot tunes stage 4 (dynamic analysis).
	Honeypot HoneypotOptions
	// Exec selects the executor and its safety envelope.
	Exec ExecOptions
	// Faults configures deterministic fault injection.
	Faults FaultOptions
	// Checkpoint enables crash-safe snapshots and resume; see
	// CheckpointOptions.
	Checkpoint CheckpointOptions
	// Breakers configures transport circuit breakers.
	Breakers BreakerOptions
	// Trace configures per-bot tracing (off by default).
	Trace TraceOptions

	// Obs receives every stage's counters, histograms, and pipeline
	// traces; nil uses the process-default registry. Its text exposition
	// is also mounted at /metrics on the listing server.
	Obs *obs.Registry
	// Journal receives one correlated event per pipeline milestone (page
	// fetched, bot discovered, policy audited, experiment settled, canary
	// triggered, permission denied, ...). Nil disables the journal; every
	// emission site is nil-safe.
	Journal *journal.Journal
}

// Auditor owns the simulated ecosystem and its services.
type Auditor struct {
	opts     Options
	eco      *synth.Ecosystem
	obs      *obs.Registry
	journal  *journal.Journal
	faults   *faults.Injector
	breakers *retry.BreakerSet

	listingSrv *listing.Server
	hostSrv    *codehost.Server
	plat       *platform.Platform
	gw         *gateway.Server
	canarySvc  *canary.Service

	listClient *scraper.Client
	codeClient *scraper.Client
}

// QuarantinedBot is one entry in the run's unified quarantine ledger:
// a bot (or bot-owned link) whose stage work failed on infrastructure
// errors and was set aside so the rest of the run could complete.
type QuarantinedBot struct {
	Stage string // "collect", "codeanalysis", or "honeypot"
	BotID int
	Name  string // honeypot only
	Link  string // codeanalysis only
	Err   error
}

// Results bundles every stage's output.
type Results struct {
	// Stage 1: data collection.
	Records  []*scraper.Record
	PermDist []scraper.PermissionShare
	Scraper  scraper.Stats

	// Stage 2: traceability.
	Table2 report.Table2Data
	// DataTypes is the ontology-based refinement: per-data-type
	// exposure vs. disclosure.
	DataTypes *traceability.DataTypeResult

	// Stage 3: code analysis.
	Code     *codeanalysis.Result
	Analyses []*codeanalysis.RepoAnalysis

	// Stage 4: dynamic analysis.
	Honeypot *honeypot.CampaignResult

	// Mitigation: listing-time vetting verdicts (§7 recommendation).
	Vetting        []*vetting.Report
	VettingSummary vetting.Summary

	// Developer attribution (Table 1).
	BotsPerDeveloper map[string]int

	// Trace is the pipeline's stage-span tree; Report renders it as a
	// per-stage timing table.
	Trace *obs.Trace

	// BotTrace is the per-bot tracer (nil when Options.Trace.Level is
	// off): every bot-stage span, sub-operation, and scheduler event
	// the run recorded, exportable via its WriteJSONL /
	// WriteChromeTrace / BuildProfile methods.
	BotTrace *bottrace.Tracer

	// RunID is the correlation identifier stamped on every journal event
	// this run emitted (empty when no journal is configured — the ID is
	// minted regardless so reports can cite it).
	RunID string

	// Scale is the sharded executor's scheduler/throughput accounting
	// (nil under the sequential executor) — the source of
	// BENCH_SCALE.json.
	Scale *ScaleStats

	// Degraded reports whether any stage absorbed an error or
	// quarantined a bot; the fields below itemize the damage so partial
	// results are honest about what they omit.
	Degraded bool
	// StageErrors records stage-level errors absorbed in lenient mode
	// (e.g. a listing page that never came back), keyed by stage name.
	StageErrors map[string]error
	// Quarantined is the unified per-bot quarantine ledger across all
	// stages.
	Quarantined []QuarantinedBot
	// Degradation carries per-stage retry/quarantine/error tallies,
	// rendered as extra columns of the stage-timings table.
	Degradation map[string]report.StageDegradation
	// FaultLog is the injector's canonical fault ledger for this run
	// (nil when no injector is configured).
	FaultLog []faults.Fault
}

// NewAuditor generates the ecosystem, resolves every subsystem option
// (fault profile → injector, checkpoint dir → store, breaker config →
// breaker set), and starts all services.
func NewAuditor(opts Options) (*Auditor, error) {
	if opts.Scrape.Timeout <= 0 {
		opts.Scrape.Timeout = 500 * time.Millisecond
	}
	if opts.Scrape.Workers <= 0 {
		opts.Scrape.Workers = 8
	}
	if opts.Scrape.Solver == nil {
		opts.Scrape.Solver = &scraper.TwoCaptchaSim{CostPerSolve: 299}
	}
	if opts.Honeypot.Sample <= 0 {
		opts.Honeypot.Sample = 500
	}
	if opts.Honeypot.Concurrency <= 0 {
		opts.Honeypot.Concurrency = 8
	}
	if opts.Honeypot.Settle <= 0 {
		opts.Honeypot.Settle = 500 * time.Millisecond
	}

	eco := opts.Ecosystem
	if eco == nil {
		eco = synth.Generate(synth.Config{Seed: opts.Seed, NumBots: opts.NumBots})
	}
	a := &Auditor{opts: opts, eco: eco, obs: obs.Or(opts.Obs), journal: opts.Journal}

	a.faults = opts.Faults.Injector
	if a.faults == nil && opts.Faults.Profile != "" {
		prof, err := faults.Named(opts.Faults.Profile)
		if err != nil {
			return nil, fmt.Errorf("core: fault profile: %w", err)
		}
		a.faults = faults.New(prof, opts.Faults.Seed, faults.Options{Obs: a.obs, Journal: opts.Journal})
	}
	a.breakers = opts.Breakers.Set
	if a.breakers == nil && opts.Breakers.Enabled {
		a.breakers = retry.NewBreakerSet(opts.Breakers.Config, retry.BreakerOptions{Obs: a.obs, Journal: opts.Journal})
	}
	if a.opts.Checkpoint.Store == nil && a.opts.Checkpoint.Dir != "" {
		st, err := checkpoint.NewStore(a.opts.Checkpoint.Dir)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint store: %w", err)
		}
		a.opts.Checkpoint.Store = st
	}
	if a.opts.Checkpoint.Resume != "" && a.opts.Checkpoint.Store == nil {
		return nil, fmt.Errorf("core: checkpoint resume requires a store or dir")
	}

	var err error
	if a.listingSrv, err = listing.NewServer(listing.NewDirectory(eco.Bots), opts.Scrape.AntiScrape, "127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("core: listing server: %w", err)
	}
	// Full operational surface on the listing server: /metrics plus
	// /healthz, /readyz, and /debug/pprof/*.
	ops.Mount(a.listingSrv, a.obs, nil)
	if a.hostSrv, err = codehost.NewServer(eco.Host, "127.0.0.1:0"); err != nil {
		a.Close()
		return nil, fmt.Errorf("core: code host: %w", err)
	}
	a.plat = platform.New(platform.Options{Obs: a.obs, Journal: opts.Journal})
	if a.gw, err = gateway.NewServer(a.plat, "127.0.0.1:0"); err != nil {
		a.Close()
		return nil, fmt.Errorf("core: gateway: %w", err)
	}
	a.gw.SetObs(a.obs)
	a.gw.SetJournal(opts.Journal)
	if a.canarySvc, err = canary.NewService("127.0.0.1:0", nil); err != nil {
		a.Close()
		return nil, fmt.Errorf("core: canary service: %w", err)
	}
	a.canarySvc.SetObs(a.obs)
	a.canarySvc.SetJournal(opts.Journal)
	if a.listClient, err = scraper.NewClient(scraper.ClientConfig{
		BaseURL:  a.listingSrv.BaseURL(),
		Timeout:  opts.Scrape.Timeout,
		Solver:   opts.Scrape.Solver,
		Obs:      a.obs,
		Breakers: a.breakers,
	}); err != nil {
		a.Close()
		return nil, err
	}
	// The code host imposes no defences; give it a generous timeout.
	if a.codeClient, err = scraper.NewClient(scraper.ClientConfig{
		BaseURL:  a.hostSrv.BaseURL(),
		Timeout:  5 * time.Second,
		Solver:   opts.Scrape.Solver,
		Obs:      a.obs,
		Breakers: a.breakers,
	}); err != nil {
		a.Close()
		return nil, err
	}
	if a.faults != nil {
		// Chaos harness: the same seeded injector misbehaves on the
		// listing site, the code host, and the gateway event stream.
		a.listingSrv.SetMiddleware(a.faults.Middleware)
		a.hostSrv.SetMiddleware(a.faults.Middleware)
		a.gw.SetFaultPolicy(a.faults)
	}
	return a, nil
}

// Faults returns the configured fault injector (nil when the run is
// fault-free).
func (a *Auditor) Faults() *faults.Injector { return a.faults }

// Obs returns the auditor's observability registry.
func (a *Auditor) Obs() *obs.Registry { return a.obs }

// Journal returns the configured event journal (nil when disabled).
func (a *Auditor) Journal() *journal.Journal { return a.journal }

// Breakers returns the resolved circuit-breaker set (nil when
// disabled).
func (a *Auditor) Breakers() *retry.BreakerSet { return a.breakers }

// Gateway returns the live gateway server, so a harness can flip its
// Limits or point external traffic (loadgen personas) at its address.
func (a *Auditor) Gateway() *gateway.Server { return a.gw }

// Platform returns the hosted platform, so a harness can graft extra
// guilds and traffic onto the same world the pipeline audits.
func (a *Auditor) Platform() *platform.Platform { return a.plat }

// SetResume changes which snapshot the NEXT RunAllContext call resumes
// from ("" fresh, ResumeLatest, or a run ID). It exists for kill/resume
// harnesses that re-enter RunAllContext on one long-lived Auditor; do
// not call it while a run is in flight.
func (a *Auditor) SetResume(run string) { a.opts.Checkpoint.Resume = run }

// SetJournal re-points every journal-emitting component — the auditor
// itself, platform, gateway, canary service, fault injector, and
// breaker set — at a new journal. A kill/resume harness uses it between
// run segments after closing the crashed segment's journal and
// reopening it with Resume; do not call it while a run is in flight.
func (a *Auditor) SetJournal(j *journal.Journal) {
	a.journal = j
	a.opts.Journal = j
	if a.plat != nil {
		a.plat.SetJournal(j)
	}
	if a.gw != nil {
		a.gw.SetJournal(j)
	}
	if a.canarySvc != nil {
		a.canarySvc.SetJournal(j)
	}
	a.faults.SetJournal(j)
	a.breakers.SetJournal(j)
}

// MetricsURL returns the Prometheus-style text exposition endpoint
// mounted on the listing server.
func (a *Auditor) MetricsURL() string { return a.listingSrv.BaseURL() + "/metrics" }

// Ecosystem exposes the generated ground truth (for validation and
// examples).
func (a *Auditor) Ecosystem() *synth.Ecosystem { return a.eco }

// CanaryTriggers returns every trigger the canary service recorded.
func (a *Auditor) CanaryTriggers() []canary.Trigger { return a.canarySvc.Triggers() }

// ListingURL returns the listing site base URL.
func (a *Auditor) ListingURL() string { return a.listingSrv.BaseURL() }

// Close tears down every service.
func (a *Auditor) Close() {
	if a.listingSrv != nil {
		a.listingSrv.Close()
	}
	if a.hostSrv != nil {
		a.hostSrv.Close()
	}
	if a.gw != nil {
		a.gw.Close()
	}
	if a.canarySvc != nil {
		a.canarySvc.Close()
	}
	if a.plat != nil {
		a.plat.Close()
	}
}

// CollectContext runs stage 1: crawl the listing and decode
// permissions, failing fast on the first lost bot.
func (a *Auditor) CollectContext(ctx context.Context) ([]*scraper.Record, error) {
	res, err := scraper.CrawlResultContext(ctx, a.listClient, scraper.Config{
		Workers: a.opts.Scrape.Workers,
		Strict:  true,
	})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("core: collect: %w", err)
	}
	return res.Records, nil
}

// auditOne folds one perms-valid record into the traceability
// aggregates and emits its policy_audited event. Both executors route
// every record through it, so per-record traceability is identical
// whether it runs in a batch loop or interleaved per bot; the
// aggregates themselves are commutative counters.
func auditOne(ctx context.Context, an *traceability.Analyzer, d *report.Table2Data, dt *traceability.DataTypeResult, r *scraper.Record) {
	ctx = bottrace.WithBot(ctx, r.ID, r.Name)
	defer bottrace.StartStage(ctx)()
	d.ActiveBots++
	if r.HasWebsite {
		d.WebsiteLink++
	}
	if r.PolicyLinkFound {
		d.PolicyLink++
		if !r.PolicyLinkDead {
			d.PolicyValid++
		}
	}
	v := an.AnalyzePolicyContext(ctx, r.PolicyText, r.Perms)
	d.Traceability.Add(v)
	dt.Add(r.PolicyText, r.Perms)
	journal.Emit(journal.WithBot(ctx, r.ID, r.Name), "core", journal.KindPolicyAudited, map[string]any{
		"verdict":           v.Class.String(),
		"has_policy":        v.HasPolicy,
		"covered":           len(v.Covered),
		"undisclosed_perms": len(v.UndisclosedPerms),
	})
}

// TraceabilityContext runs stage 2 over collected records — the
// Table 2 counts plus the ontology-based per-data-type refinement —
// with ctx carrying the run's journal correlation: every audited
// policy becomes a policy_audited event recording the bot and its
// disclosure verdict.
func (a *Auditor) TraceabilityContext(ctx context.Context, records []*scraper.Record) (report.Table2Data, *traceability.DataTypeResult) {
	var d report.Table2Data
	var an traceability.Analyzer
	dt := traceability.NewDataTypeResult()
	for _, r := range records {
		if r == nil || !r.PermsValid {
			continue
		}
		auditOne(ctx, &an, &d, dt, r)
	}
	return d, dt
}

// CodeAnalysisContext runs stage 3 over collected records.
func (a *Auditor) CodeAnalysisContext(ctx context.Context, records []*scraper.Record) (*codeanalysis.Result, []*codeanalysis.RepoAnalysis, error) {
	return codeanalysis.AnalyzeContext(ctx, a.codeClient, records, a.opts.Scrape.Workers)
}

// DynamicAnalysisContext runs stage 4: the honeypot campaign over the
// most-voted sample.
func (a *Auditor) DynamicAnalysisContext(ctx context.Context) (*honeypot.CampaignResult, error) {
	return honeypot.CampaignContext(ctx, a.honeypotEnv(), a.eco, a.campaignConfig(nil, nil))
}

// honeypotEnv assembles the experiment environment shared by every
// campaign this auditor runs.
func (a *Auditor) honeypotEnv() honeypot.Env {
	return honeypot.Env{
		Platform: a.plat,
		Gateway:  a.gw.Addr(),
		Canary:   a.canarySvc,
		Minter:   a.canarySvc.NewMinter("canary.invalid", nil),
		Feed:     corpus.New(a.opts.Seed ^ 0xfeed),
		Obs:      a.obs,
		Breakers: a.breakers,
	}
}

// campaignConfig assembles the campaign configuration with optional
// checkpoint hooks: a resume state replaying settled experiments and a
// settle observer feeding the checkpointer.
func (a *Auditor) campaignConfig(resume *honeypot.CampaignResume, onSettled func(int, *honeypot.Verdict, error)) honeypot.CampaignConfig {
	expCfg := honeypot.DefaultConfig()
	expCfg.Settle = a.opts.Honeypot.Settle
	expCfg.Solver = a.opts.Scrape.Solver
	return honeypot.CampaignConfig{
		SampleSize:  a.opts.Honeypot.Sample,
		Concurrency: a.opts.Honeypot.Concurrency,
		Experiment:  expCfg,
		Strict:      a.opts.Exec.Strict,
		Resume:      resume,
		OnSettled:   onSettled,
	}
}

// run carries one RunAllContext invocation's shared state between the
// prologue, the chosen executor, and the epilogue.
type run struct {
	a      *Auditor
	ctx    context.Context
	res    *Results
	trace  *obs.Trace
	tracer *bottrace.Tracer
	ck     *ckptState

	scrapeRes *scraper.ResumeState
	codeRes   *codeanalysis.AnalyzeResume
	hpRes     *honeypot.CampaignResume

	collectBudget *retry.Budget
	codeBudget    *retry.Budget
	cDegraded     *obs.Counter
}

// stage opens a stage span with watchdog and journal brackets; the
// returned func closes all three.
func (r *run) stage(name string) (context.Context, func()) {
	sp := r.trace.StartSpan(name)
	sctx := obs.ContextWithSpan(r.ctx, sp)
	sctx = bottrace.ContextWithStage(sctx, r.tracer, name)
	endRunSpan := r.tracer.StartRunSpan(name)
	stopWatchdog := func() {}
	if dl := r.a.opts.Exec.StageSoftDeadline; dl > 0 {
		var cancel context.CancelCauseFunc
		sctx, cancel = context.WithCancelCause(sctx)
		stopWatchdog = watchdog(sctx, name, dl, cancel)
	}
	journal.Emit(sctx, "core", journal.KindStageStarted, map[string]any{"stage": name})
	return sctx, func() {
		stopWatchdog()
		endRunSpan()
		sp.End()
		journal.Emit(sctx, "core", journal.KindStageCompleted, map[string]any{
			"stage":   name,
			"seconds": sp.Duration().Seconds(),
		})
	}
}

// stageFail translates a stage error: watchdog stalls surface as
// ErrStageStalled, outer cancellation as the context's error.
func (r *run) stageFail(sctx context.Context, name string, err error) error {
	if cause := context.Cause(sctx); cause != nil && errors.Is(cause, ErrStageStalled) {
		return cause
	}
	if ctxErr := r.ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return fmt.Errorf("core: %s: %w", name, err)
}

// note records a stage's degradation tallies; a stage with absorbed
// errors or quarantines marks the whole run degraded and emits one
// stage_degraded event so the journal tells the story end to end.
func (r *run) note(sctx context.Context, name string, d report.StageDegradation) {
	r.res.Degradation[name] = d
	if d.Quarantined == 0 && d.Errors == 0 {
		return
	}
	r.res.Degraded = true
	r.cDegraded.Inc()
	journal.Emit(sctx, "core", journal.KindStageDegraded, map[string]any{
		"stage":       name,
		"quarantined": d.Quarantined,
		"errors":      d.Errors,
		"retries":     d.Retries,
	})
}

func retriesOf(c *scraper.Client) int {
	s := c.Stats()
	return s.Retries + s.TransientRetries
}

// RunAllContext executes the full Figure 1 pipeline with cancellation:
// cancelling ctx aborts the pipeline at its next wait point and
// returns the context's error. The run is recorded as a "pipeline"
// trace with one span per stage, and — when a journal is configured —
// as a stream of correlated events sharing one run ID, bracketed by
// stage_started/stage_completed pairs.
//
// With Options.Exec.Shards >= 1 the four analysis stages run on the
// sharded work-stealing executor; fault-free runs produce verdicts,
// quarantines, and aggregates identical to the sequential executor on
// the same seed.
func (a *Auditor) RunAllContext(ctx context.Context) (*Results, error) {
	trace := a.obs.StartTrace("pipeline")
	runID := fmt.Sprintf("run-%d", time.Now().UnixNano())

	// Checkpointing: load the resume snapshot (keeping its run ID so
	// the journal reads as one logical run), or start a fresh one.
	var ck *ckptState
	var resumed *checkpoint.Snapshot
	var scrapeRes *scraper.ResumeState
	var codeRes *codeanalysis.AnalyzeResume
	var hpRes *honeypot.CampaignResume
	if cc := a.opts.Checkpoint; cc.Store != nil {
		base := &checkpoint.Snapshot{
			RunID:          runID,
			Seed:           a.opts.Seed,
			NumBots:        a.opts.NumBots,
			HoneypotSample: a.opts.Honeypot.Sample,
		}
		if cc.Resume != "" {
			snap, err := a.loadResume()
			if err != nil {
				return nil, err
			}
			resumed = snap
			runID = snap.RunID
			base = snap
			// The resumed run re-finalizes; Completed is re-stamped by
			// the final snapshot.
			base.Completed = false
			scrapeRes = scraperResume(snap)
			codeRes = codeResume(snap)
			hpRes = honeypotResume(snap)
		}
		ck = newCkptState(cc, base, a.obs)
	}

	res := &Results{
		Trace:       trace,
		RunID:       runID,
		StageErrors: make(map[string]error),
		Degradation: make(map[string]report.StageDegradation),
	}
	ctx = journal.WithRunID(journal.NewContext(ctx, a.journal), runID)
	if ck != nil {
		ck.ctx = ctx
	}
	if resumed != nil {
		fields := map[string]any{
			"settled":     resumed.Settled(),
			"records":     len(resumed.Records),
			"code_links":  len(resumed.CodeLinks),
			"verdicts":    len(resumed.Verdicts),
			"quarantined": len(resumed.CollectQuarantine) + len(resumed.HoneypotQuarantine),
		}
		// When the journal is ledgered, stamp the resume event with the
		// chain anchor so the evidence trail records, in-band, where the
		// resumed segment attached to the pre-crash one.
		if ls := a.journal.Ledger(); ls.Mode != "" && ls.Mode != journal.LedgerOff {
			fields["ledger_mode"] = string(ls.Mode)
			fields["ledger_anchor_seq"] = ls.PriorEvents
			fields["ledger_recovered"] = ls.Recovered
			if ls.PriorHead != "" {
				fields["ledger_prior_head"] = ls.PriorHead
			}
		}
		journal.Emit(ctx, "core", journal.KindRunResumed, fields)
	}

	// Per-bot tracer: sharded by the executor's worker count (the
	// sequential executor hashes bots across the same buffer count).
	tracer := a.opts.Trace.Tracer
	if tracer == nil && a.opts.Trace.Level != bottrace.LevelOff {
		shards := a.opts.Exec.Shards
		if shards <= 0 {
			shards = a.opts.Scrape.Workers
		}
		tracer = bottrace.New(runID, shards, a.opts.Trace.Level)
	}
	res.BotTrace = tracer

	r := &run{
		a:         a,
		ctx:       ctx,
		res:       res,
		trace:     trace,
		tracer:    tracer,
		ck:        ck,
		scrapeRes: scrapeRes,
		codeRes:   codeRes,
		hpRes:     hpRes,
		cDegraded: a.obs.Counter("core_stages_degraded_total"),
	}

	// Per-stage retry budgets, restored to their checkpointed
	// remainders on resume so a resumed run cannot out-retry an
	// uninterrupted one.
	if a.opts.Exec.StageRetryBudget > 0 {
		nCollect, nCode := a.opts.Exec.StageRetryBudget, a.opts.Exec.StageRetryBudget
		if resumed != nil {
			if left, ok := resumed.BudgetLeft["collect"]; ok {
				nCollect = left
			}
			if left, ok := resumed.BudgetLeft["codeanalysis"]; ok {
				nCode = left
			}
		}
		r.collectBudget = retry.NewBudget(nCollect)
		r.codeBudget = retry.NewBudget(nCode)
		a.listClient.SetRetryBudget(r.collectBudget)
		a.codeClient.SetRetryBudget(r.codeBudget)
		ck.trackBudget("collect", r.collectBudget)
		ck.trackBudget("codeanalysis", r.codeBudget)
	}

	var err error
	if a.opts.Exec.Shards > 0 {
		err = a.runSharded(r)
	} else {
		err = a.runSequential(r)
	}
	if err != nil {
		return nil, err
	}

	_, endVet := r.stage("vetting")
	res.Vetting, res.VettingSummary = vetting.VetAll(res.Records)
	endVet()

	res.BotsPerDeveloper = make(map[string]int)
	for dev, ids := range a.eco.Developers {
		res.BotsPerDeveloper[dev] = len(ids)
	}
	if a.faults != nil {
		res.FaultLog = a.faults.Log()
	}
	ck.finish()
	return res, nil
}

// runSequential is the historical stage-at-a-time executor: each stage
// processes the whole population before the next begins.
func (a *Auditor) runSequential(r *run) error {
	res := r.res

	collectCtx, endCollect := r.stage("collect")
	listRetries := retriesOf(a.listClient)
	crawl, err := scraper.CrawlResultContext(collectCtx, a.listClient, scraper.Config{
		Workers:   a.opts.Scrape.Workers,
		Strict:    a.opts.Exec.Strict,
		Resume:    r.scrapeRes,
		OnSettled: r.ck.noteCollect,
		OnListed:  r.ck.noteListed,
	})
	endCollect()
	if err != nil {
		return r.stageFail(collectCtx, "collect", err)
	}
	r.ck.boundary("collect")
	res.Records = crawl.Records
	d := report.StageDegradation{
		Retries:     retriesOf(a.listClient) - listRetries,
		Quarantined: len(crawl.Quarantined),
		BudgetLeft:  r.collectBudget.Remaining(),
	}
	if crawl.ListErr != nil {
		res.StageErrors["collect"] = crawl.ListErr
		d.Errors++
	}
	for _, q := range crawl.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "collect", BotID: q.BotID, Err: q.Err})
	}
	r.note(collectCtx, "collect", d)
	res.PermDist = scraper.PermissionDistribution(res.Records)
	res.Scraper = a.listClient.Stats()

	traceCtx, endTrace := r.stage("traceability")
	res.Table2, res.DataTypes = a.TraceabilityContext(traceCtx, res.Records)
	endTrace()

	codeCtx, endCode := r.stage("codeanalysis")
	codeRetries := retriesOf(a.codeClient)
	res.Code, res.Analyses, err = codeanalysis.AnalyzeOptionsContext(codeCtx, a.codeClient, res.Records, codeanalysis.AnalyzeOptions{
		Workers: a.opts.Scrape.Workers,
		Resume:  r.codeRes,
		OnLink:  r.ck.noteLink,
	})
	endCode()
	if err != nil {
		return r.stageFail(codeCtx, "codeanalysis", err)
	}
	r.ck.boundary("codeanalysis")
	d = report.StageDegradation{
		Retries:     retriesOf(a.codeClient) - codeRetries,
		Quarantined: len(res.Code.Quarantined),
		BudgetLeft:  r.codeBudget.Remaining(),
	}
	for _, q := range res.Code.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "codeanalysis", BotID: q.BotID, Link: q.Link, Err: q.Err})
	}
	r.note(codeCtx, "codeanalysis", d)

	hpCtx, endHoneypot := r.stage("honeypot")
	res.Honeypot, err = honeypot.CampaignContext(hpCtx, a.honeypotEnv(), a.eco, a.campaignConfig(r.hpRes, r.ck.noteVerdict))
	endHoneypot()
	if err != nil {
		return r.stageFail(hpCtx, "honeypot", err)
	}
	r.ck.boundary("honeypot")
	d = report.StageDegradation{Quarantined: len(res.Honeypot.Quarantined), BudgetLeft: -1}
	for _, q := range res.Honeypot.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "honeypot", BotID: q.BotID, Name: q.Name, Err: q.Err})
	}
	r.note(hpCtx, "honeypot", d)
	return nil
}

// Report renders every table and figure to w.
func (r *Results) Report(w io.Writer) {
	report.ScrapeYield(w, r.Records)
	fmt.Fprintln(w)
	report.Figure3(w, r.PermDist)
	fmt.Fprintln(w)
	report.Table1(w, r.BotsPerDeveloper)
	fmt.Fprintln(w)
	report.Table2(w, r.Table2)
	fmt.Fprintln(w)
	if r.DataTypes != nil {
		report.DataTypes(w, r.DataTypes)
		fmt.Fprintln(w)
	}
	if r.Code != nil {
		report.CodeTaxonomy(w, r.Code)
		fmt.Fprintln(w)
		report.Table3(w, r.Code)
		fmt.Fprintln(w)
	}
	if r.Honeypot != nil {
		report.Honeypot(w, r.Honeypot)
	}
	if r.VettingSummary.Total > 0 {
		fmt.Fprintln(w)
		report.Vetting(w, r.VettingSummary)
	}
	fmt.Fprintf(w, "\nScraper stats: %d requests, %d throttled, %d captchas solved, %d timeouts, %d retries, %d transient retries\n",
		r.Scraper.Requests, r.Scraper.Throttled, r.Scraper.CaptchasSolved, r.Scraper.Timeouts, r.Scraper.Retries, r.Scraper.TransientRetries)
	if r.Trace != nil {
		fmt.Fprintln(w)
		report.StageTimingsDegraded(w, r.Trace, r.Degradation)
	}
	if r.Scale != nil {
		fmt.Fprintln(w)
		r.Scale.Report(w)
	}
	if len(r.FaultLog) > 0 {
		byKind := make(map[string]int)
		for _, f := range r.FaultLog {
			byKind[string(f.Kind)]++
		}
		kinds := make([]string, 0, len(byKind))
		for k := range byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "\nFault injection: %d fault(s) injected:", len(r.FaultLog))
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%d", k, byKind[k])
		}
		fmt.Fprintln(w)
	}
	if r.Degraded {
		fmt.Fprintf(w, "\nDegraded run: %d stage error(s) absorbed, %d bot(s) quarantined\n",
			len(r.StageErrors), len(r.Quarantined))
		stages := make([]string, 0, len(r.StageErrors))
		for s := range r.StageErrors {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			fmt.Fprintf(w, "  stage %-14s %v\n", s+":", r.StageErrors[s])
		}
		for _, q := range r.Quarantined {
			id := fmt.Sprintf("bot %d", q.BotID)
			if q.Name != "" {
				id += " (" + q.Name + ")"
			}
			if q.Link != "" {
				id += " link " + q.Link
			}
			fmt.Fprintf(w, "  quarantined [%s] %s: %v\n", q.Stage, id, q.Err)
		}
	}
}
